#!/usr/bin/env bash
# Kill -9 smoke for the durability plane: a checkpointed daemon is
# murdered over and over — once raw mid-stream, then repeatedly at
# random armed crashpoints (STREAMSHARE_CRASHPOINT, the named windows
# inside the WAL append, the compaction rename dance, and startup
# recovery), plus once via SIGTERM with the drain window armed — and
# after every death the next life recovers from checkpoint + write-ahead
# log and keeps feeding. The final life replays the full history to a
# fresh client (attach @0) and the per-query `q<id> items= bytes= hash=`
# lines must be byte-identical to an uninterrupted streamshare_sim
# --query-stats batch run: ARCHITECTURE invariant 11, a crash is
# indistinguishable from a drain for every acknowledged operation.
#
# Usage: scripts/crash_smoke.sh [BUILD_DIR] [ARTIFACT_DIR]
#   BUILD_DIR    default: build
#   ARTIFACT_DIR when set, logs + checkpoint + WAL are copied there on
#                failure (CI uploads them)

set -euo pipefail

BUILD_DIR="${1:-build}"
ARTIFACT_DIR="${2:-}"
SERVE="${BUILD_DIR}/tools/streamshare_serve"
CLIENT="${BUILD_DIR}/tools/streamshare_client"
SIM="${BUILD_DIR}/tools/streamshare_sim"
WORK="$(mktemp -d)"
CKPT="${WORK}/crash.ckpt"
ITEMS=500
SERVE_PID=""
CRASHES=0

cleanup() {
  local rc=$?
  if [[ -n "${SERVE_PID}" ]] && kill -0 "${SERVE_PID}" 2>/dev/null; then
    kill -9 "${SERVE_PID}" 2>/dev/null || true
  fi
  if [[ ${rc} -ne 0 && -n "${ARTIFACT_DIR}" ]]; then
    mkdir -p "${ARTIFACT_DIR}"
    cp -r "${WORK}"/. "${ARTIFACT_DIR}/" 2>/dev/null || true
    echo "artifacts copied to ${ARTIFACT_DIR}"
  fi
  rm -rf "${WORK}"
  exit "${rc}"
}
trap cleanup EXIT

# Starts the daemon (crashpoint spec in $1, may be empty; log in $2).
# Returns 1 — without killing the script — when it died before binding,
# which is exactly what an armed startup-recovery crashpoint does.
start_daemon() {
  local spec="$1" log="$2"
  STREAMSHARE_CRASHPOINT="${spec}" "${SERVE}" --port=0 --seed=11 \
    --checkpoint="${CKPT}" --wal-compact-bytes=2048 > "${log}" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    if grep -q '^listening port=' "${log}"; then break; fi
    if ! kill -0 "${SERVE_PID}" 2>/dev/null; then break; fi
    sleep 0.1
  done
  PORT="$(sed -n 's/^listening port=\([0-9]*\).*/\1/p' "${log}" | head -1)"
  [[ -n "${PORT}" ]] || return 1
}

# Waits for the current daemon to die on its own (the armed crashpoint
# firing); falls back to a raw kill -9 if the workload never reached the
# window. Either way this life ends murdered, never drained.
finish_life_dead() {
  local fired=1
  for _ in $(seq 1 50); do
    if ! kill -0 "${SERVE_PID}" 2>/dev/null; then fired=0; break; fi
    sleep 0.1
  done
  if [[ ${fired} -ne 0 ]]; then
    kill -9 "${SERVE_PID}" 2>/dev/null || true
  fi
  wait "${SERVE_PID}" 2>/dev/null || true
  SERVE_PID=""
  CRASHES=$((CRASHES + 1))
}

echo "=== batch reference (uninterrupted, ${ITEMS} items) ==="
"${SIM}" --scenario=extended --queries=4 --items="${ITEMS}" --seed=11 \
  --query-stats > "${WORK}/batch.txt"
grep -E '^q[0-9]+ items=' "${WORK}/batch.txt" > "${WORK}/expect.txt"
cat "${WORK}/expect.txt"

echo "=== life 1: subscribe + feed, then raw kill -9 mid-life ==="
start_daemon "" "${WORK}/life1.log" || { echo "life 1 did not start"; exit 1; }
"${CLIENT}" --port="${PORT}" \
  --subscribe=q1@1 --subscribe=q2@7 --subscribe=q3@3 --subscribe=q4@0 \
  --feed=100 --detach > "${WORK}/client1.txt"
grep -q '^subscribed q1$' "${WORK}/client1.txt"
kill -9 "${SERVE_PID}"
wait "${SERVE_PID}" 2>/dev/null || true
SERVE_PID=""
CRASHES=$((CRASHES + 1))
test -s "${CKPT}.wal"

echo "=== lives 2..7: random armed crashpoints, 60 items each ==="
POINTS=(wal-pre-append wal-mid-record wal-post-append-pre-sync
        wal-post-sync-pre-ack feed-post-feed-pre-log ckpt-pre-temp-write
        ckpt-mid-temp-write ckpt-pre-rename ckpt-post-rename-pre-wal-reset
        recover-post-fold-pre-listen)
RANDOM=42  # seeded: reruns murder at the same spots
for life in 2 3 4 5 6 7; do
  POINT="${POINTS[$((RANDOM % ${#POINTS[@]}))]}"
  echo "life ${life}: armed ${POINT}:1"
  if ! start_daemon "${POINT}:1" "${WORK}/life${life}.log"; then
    # Died inside startup recovery — that IS the crash; the next life
    # must pick up from whatever this one left on disk.
    wait "${SERVE_PID}" 2>/dev/null || true
    SERVE_PID=""
    CRASHES=$((CRASHES + 1))
    continue
  fi
  # The client may lose the connection mid-command when the point fires;
  # that is the point.
  "${CLIENT}" --port="${PORT}" --feed=60 --detach \
    > "${WORK}/client${life}.txt" 2>&1 || true
  finish_life_dead
done

echo "=== drain window: SIGTERM with drain-pre-checkpoint armed ==="
if start_daemon "drain-pre-checkpoint:1" "${WORK}/drain.log"; then
  "${CLIENT}" --port="${PORT}" --feed=20 --detach \
    > "${WORK}/client_drain.txt" 2>&1 || true
  kill -TERM "${SERVE_PID}"
  finish_life_dead
else
  echo "drain life did not start"; exit 1
fi

echo "=== final life: recover, replay everything, finish the feed ==="
start_daemon "" "${WORK}/final.log" || { echo "final life did not start"; exit 1; }
# Stats-only probe: a client that ATTACHES and then vanishes would make
# the daemon unsubscribe those queries (vanished-client GC, durably
# logged) — so the probe must not attach.
"${CLIENT}" --port="${PORT}" --stats > "${WORK}/probe.txt"
FED="$(sed -n 's/^connected epoch=[0-9]* items_fed=\([0-9]*\).*/\1/p' \
  "${WORK}/probe.txt" | head -1)"
[[ -n "${FED}" ]] || { echo "could not scrape items_fed"; exit 1; }
echo "durable items_fed after $((CRASHES)) kills: ${FED}"
[[ "${FED}" -le "${ITEMS}" ]] || { echo "FAIL: overfed past the target"; exit 1; }
grep -q 'wal appends=' "${WORK}/probe.txt"

"${CLIENT}" --port="${PORT}" --attach=0@0 --attach=1@0 --attach=2@0 \
  --attach=3@0 --feed=$((ITEMS - FED)) --drain=final --wait-eos \
  > "${WORK}/client_final.txt"
wait "${SERVE_PID}" 2>/dev/null || true
SERVE_PID=""
grep -q '^eos final=1' "${WORK}/client_final.txt"

grep -E '^q[0-9]+ items=' "${WORK}/client_final.txt" > "${WORK}/got.txt"
diff -u "${WORK}/expect.txt" "${WORK}/got.txt" \
  || { echo "FAIL: recovered history diverged from the batch run"; exit 1; }

[[ "${CRASHES}" -ge 8 ]] || { echo "FAIL: only ${CRASHES} kills happened"; exit 1; }
echo "crash smoke passed: ${CRASHES} kills, history byte-identical"
