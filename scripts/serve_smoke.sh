#!/usr/bin/env bash
# End-to-end smoke of the serve plane against real processes, proving the
# ARCHITECTURE invariant live: a live-subscribed query's results are
# byte-identical (counts, bytes, content hashes) to a batch run of the
# same query over the same items —
#
#   1. across a full daemon lifecycle: subscribe four sharing-compatible
#      paper queries, stream half the items, SIGTERM-drain (checkpoint),
#      restart, re-attach, assert the catch-up plus the second half
#      equals an uninterrupted 500-item batch run, and
#   2. under chaos: the same workload with a FailPeer mid-stream on both
#      sides of the diff.
#
# Usage: scripts/serve_smoke.sh [BUILD_DIR]   (default: build)

set -euo pipefail

BUILD_DIR="${1:-build}"
SERVE="${BUILD_DIR}/tools/streamshare_serve"
CLIENT="${BUILD_DIR}/tools/streamshare_client"
SIM="${BUILD_DIR}/tools/streamshare_sim"
WORK="$(mktemp -d)"
SERVE_PID=""

cleanup() {
  if [[ -n "${SERVE_PID}" ]] && kill -0 "${SERVE_PID}" 2>/dev/null; then
    kill -9 "${SERVE_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT

# Starts the daemon with the given extra flags, scrapes the bound
# ephemeral port into $PORT, leaves the pid in $SERVE_PID.
start_daemon() {
  local log="$1"; shift
  "${SERVE}" --port=0 --seed=11 "$@" > "${log}" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 100); do
    if grep -q '^listening port=' "${log}"; then break; fi
    sleep 0.1
  done
  PORT="$(sed -n 's/^listening port=\([0-9]*\).*/\1/p' "${log}" | head -1)"
  [[ -n "${PORT}" ]] || { echo "daemon did not come up"; cat "${log}"; exit 1; }
}

extract_query_lines() {
  grep -E '^q[0-9]+ items=' "$1"
}

echo "=== batch references ==="
"${SIM}" --scenario=extended --queries=4 --items=500 --seed=11 \
  --query-stats > "${WORK}/batch_clean.txt"
extract_query_lines "${WORK}/batch_clean.txt" > "${WORK}/expect_clean.txt"
"${SIM}" --scenario=extended --queries=4 --items=500 --seed=11 \
  --fail-peer=5@250 --query-stats > "${WORK}/batch_chaos.txt"
extract_query_lines "${WORK}/batch_chaos.txt" > "${WORK}/expect_chaos.txt"
cat "${WORK}/expect_clean.txt"

echo "=== serve lifecycle: subscribe, stream, drain, restart, catch up ==="
start_daemon "${WORK}/serve1.log" --checkpoint="${WORK}/smoke.ckpt"
"${CLIENT}" --port="${PORT}" \
  --subscribe=q1@1 --subscribe=q2@7 --subscribe=q3@3 --subscribe=q4@0 \
  --feed=250 --detach | tee "${WORK}/client1.txt"
grep -q '^subscribed q1$' "${WORK}/client1.txt"

# Graceful drain via SIGTERM: the daemon checkpoints and exits cleanly.
kill -TERM "${SERVE_PID}"
wait "${SERVE_PID}"
SERVE_PID=""
test -s "${WORK}/smoke.ckpt"
grep -q '^drained epoch=0' "${WORK}/serve1.log"

# Second service life: resume from the checkpoint, re-attach from seq 0
# (replay rebuilt the sinks, so catch-up re-delivers epoch 0's results),
# stream the rest, final-drain.
start_daemon "${WORK}/serve2.log" --checkpoint="${WORK}/smoke.ckpt"
grep -q 'epoch=1' "${WORK}/serve2.log"
"${CLIENT}" --port="${PORT}" \
  --attach=0@0 --attach=1@0 --attach=2@0 --attach=3@0 \
  --feed=250 --drain=final --wait-eos | tee "${WORK}/client2.txt"
wait "${SERVE_PID}"
SERVE_PID=""
grep -q '^eos final=1' "${WORK}/client2.txt"

extract_query_lines "${WORK}/client2.txt" > "${WORK}/live_clean.txt"
diff -u "${WORK}/expect_clean.txt" "${WORK}/live_clean.txt" \
  || { echo "FAIL: live results diverged from the batch run"; exit 1; }
echo "live-across-restart == batch: OK"

echo "=== chaos variant: FailPeer mid-stream on both sides ==="
# SP5 relays the deployed streams, so killing it forces real re-plans
# (and destroys in-flight windows) on both sides of the diff.
start_daemon "${WORK}/serve3.log"
"${CLIENT}" --port="${PORT}" \
  --subscribe=q1@1 --subscribe=q2@7 --subscribe=q3@3 --subscribe=q4@0 \
  --feed=250 --fail-peer=5 --feed=250 \
  --drain=final --wait-eos | tee "${WORK}/client3.txt"
wait "${SERVE_PID}"
SERVE_PID=""
grep -q '^recovered replans=[1-9]' "${WORK}/client3.txt"

extract_query_lines "${WORK}/client3.txt" > "${WORK}/live_chaos.txt"
diff -u "${WORK}/expect_chaos.txt" "${WORK}/live_chaos.txt" \
  || { echo "FAIL: churned live results diverged from the churned batch"; exit 1; }
echo "chaos live == chaos batch: OK"

echo "serve smoke passed"
