#include "wxquery/parser.h"

#include <cctype>

#include "common/string_util.h"

namespace streamshare::wxquery {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) ||
         std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '.';
}

bool IsNumberStart(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
         c == '+' || c == '.';
}

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<ExprPtr> ParseComplete() {
    SkipWs();
    SS_ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    SkipWs();
    if (!AtEnd()) {
      return Error("unexpected trailing input");
    }
    return expr;
  }

 private:
  // --- low-level machinery -----------------------------------------------

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  void Advance() {
    if (AtEnd()) return;
    if (input_[pos_] == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    ++pos_;
  }

  void SkipWs() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
        continue;
      }
      // XQuery comment "(: ... :)" (nesting supported).
      if (c == '(' && Peek(1) == ':') {
        int depth = 0;
        while (!AtEnd()) {
          if (Peek() == '(' && Peek(1) == ':') {
            ++depth;
            Advance();
            Advance();
          } else if (Peek() == ':' && Peek(1) == ')') {
            --depth;
            Advance();
            Advance();
            if (depth == 0) break;
          } else {
            Advance();
          }
        }
        continue;
      }
      break;
    }
  }

  Status Error(std::string message) const {
    return Status::ParseError(message + " at " + std::to_string(line_) +
                              ":" + std::to_string(column_));
  }

  bool LookingAt(std::string_view text) const {
    return input_.substr(pos_).starts_with(text);
  }

  /// Matches a keyword: the text followed by a non-name character.
  bool LookingAtKeyword(std::string_view word) const {
    if (!LookingAt(word)) return false;
    char next = Peek(word.size());
    return !IsNameChar(next);
  }

  bool ConsumeIf(std::string_view text) {
    if (!LookingAt(text)) return false;
    for (size_t i = 0; i < text.size(); ++i) Advance();
    return true;
  }

  bool ConsumeKeyword(std::string_view word) {
    if (!LookingAtKeyword(word)) return false;
    for (size_t i = 0; i < word.size(); ++i) Advance();
    return true;
  }

  Status Expect(std::string_view text) {
    if (!ConsumeIf(text)) {
      return Error("expected '" + std::string(text) + "'");
    }
    return Status::Ok();
  }

  Result<std::string> ParseName() {
    if (AtEnd() || !IsNameStartChar(Peek())) {
      return Error("expected a name");
    }
    std::string name;
    while (!AtEnd() && IsNameChar(Peek())) {
      name += Peek();
      Advance();
    }
    return name;
  }

  Result<std::string> ParseVariable() {
    SS_RETURN_IF_ERROR(Expect("$"));
    return ParseName();
  }

  Result<Decimal> ParseNumber() {
    std::string text;
    if (Peek() == '-' || Peek() == '+') {
      text += Peek();
      Advance();
    }
    while (!AtEnd() && (std::isdigit(static_cast<unsigned char>(Peek())) ||
                        Peek() == '.')) {
      text += Peek();
      Advance();
    }
    Result<Decimal> value = Decimal::Parse(text);
    if (!value.ok()) return Error("invalid number '" + text + "'");
    return value;
  }

  Result<std::string> ParseStringLiteral() {
    SS_RETURN_IF_ERROR(Expect("\""));
    std::string text;
    while (!AtEnd() && Peek() != '"') {
      text += Peek();
      Advance();
    }
    SS_RETURN_IF_ERROR(Expect("\""));
    return text;
  }

  /// Parses a relative path "a/b/c" (no leading '/'). Stops before '[',
  /// whitespace, or any non-name, non-'/' character.
  Result<xml::Path> ParseRelativePath() {
    std::vector<std::string> steps;
    while (true) {
      SS_ASSIGN_OR_RETURN(std::string step, ParseName());
      steps.push_back(std::move(step));
      if (Peek() == '/' && IsNameStartChar(Peek(1))) {
        Advance();
        continue;
      }
      break;
    }
    return xml::Path(std::move(steps));
  }

  // --- conditions ---------------------------------------------------------

  /// Operand of a comparison: $v(/path)?, a bare path (inside bracket
  /// conditions), or a number. Exactly one of (var_path, constant) is set.
  struct Operand {
    std::optional<VarPath> var_path;
    Decimal constant;
  };

  Result<Operand> ParseOperand(bool allow_bare_path) {
    Operand operand;
    if (Peek() == '$') {
      VarPath vp;
      SS_ASSIGN_OR_RETURN(vp.var, ParseVariable());
      if (Peek() == '/' && IsNameStartChar(Peek(1))) {
        Advance();
        SS_ASSIGN_OR_RETURN(vp.path, ParseRelativePath());
      }
      operand.var_path = std::move(vp);
      return operand;
    }
    if (allow_bare_path && IsNameStartChar(Peek())) {
      VarPath vp;  // empty var = relative to the condition's context node
      SS_ASSIGN_OR_RETURN(vp.path, ParseRelativePath());
      operand.var_path = std::move(vp);
      return operand;
    }
    if (IsNumberStart(Peek())) {
      SS_ASSIGN_OR_RETURN(operand.constant, ParseNumber());
      return operand;
    }
    return Error("expected a variable, path, or number");
  }

  Result<predicate::ComparisonOp> ParseComparisonOp() {
    if (ConsumeIf("<=")) return predicate::ComparisonOp::kLe;
    if (ConsumeIf(">=")) return predicate::ComparisonOp::kGe;
    if (ConsumeIf("=")) return predicate::ComparisonOp::kEq;
    if (ConsumeIf("<")) return predicate::ComparisonOp::kLt;
    if (ConsumeIf(">")) return predicate::ComparisonOp::kGt;
    return Error("expected a comparison operator");
  }

  /// atom := operand θ operand [± number]. The grammar requires the lhs to
  /// be a variable/path; a constant lhs is normalized by flipping.
  Result<WhereAtom> ParseAtom(bool allow_bare_path) {
    SS_ASSIGN_OR_RETURN(Operand lhs, ParseOperand(allow_bare_path));
    SkipWs();
    SS_ASSIGN_OR_RETURN(predicate::ComparisonOp op, ParseComparisonOp());
    SkipWs();
    SS_ASSIGN_OR_RETURN(Operand rhs, ParseOperand(allow_bare_path));
    // Optional trailing "± number" after a variable rhs.
    Decimal offset;
    SkipWs();
    if (rhs.var_path.has_value() && (Peek() == '+' || Peek() == '-')) {
      bool negative = Peek() == '-';
      Advance();
      SkipWs();
      SS_ASSIGN_OR_RETURN(offset, ParseNumber());
      if (negative) offset = -offset;
    }

    if (!lhs.var_path.has_value() && !rhs.var_path.has_value()) {
      return Error("comparison between two constants");
    }
    WhereAtom atom;
    if (!lhs.var_path.has_value()) {
      // c θ $v: flip to $v θ' c.
      atom.lhs = std::move(*rhs.var_path);
      switch (op) {
        case predicate::ComparisonOp::kLt:
          atom.op = predicate::ComparisonOp::kGt;
          break;
        case predicate::ComparisonOp::kLe:
          atom.op = predicate::ComparisonOp::kGe;
          break;
        case predicate::ComparisonOp::kGt:
          atom.op = predicate::ComparisonOp::kLt;
          break;
        case predicate::ComparisonOp::kGe:
          atom.op = predicate::ComparisonOp::kLe;
          break;
        case predicate::ComparisonOp::kEq:
          atom.op = predicate::ComparisonOp::kEq;
          break;
      }
      atom.constant = lhs.constant;
      return atom;
    }
    atom.lhs = std::move(*lhs.var_path);
    atom.op = op;
    if (rhs.var_path.has_value()) {
      atom.rhs = std::move(*rhs.var_path);
      atom.constant = offset;
    } else {
      atom.constant = rhs.constant;
    }
    return atom;
  }

  Result<std::vector<WhereAtom>> ParseConjunction(bool allow_bare_path) {
    std::vector<WhereAtom> atoms;
    while (true) {
      SkipWs();
      SS_ASSIGN_OR_RETURN(WhereAtom atom, ParseAtom(allow_bare_path));
      atoms.push_back(std::move(atom));
      SkipWs();
      if (!ConsumeKeyword("and")) break;
    }
    return atoms;
  }

  // --- windows ------------------------------------------------------------

  Result<properties::WindowSpec> ParseWindow() {
    SS_RETURN_IF_ERROR(Expect("|"));
    SkipWs();
    properties::WindowSpec spec;
    if (ConsumeKeyword("count")) {
      SkipWs();
      SS_ASSIGN_OR_RETURN(Decimal size, ParseNumber());
      spec.type = properties::WindowType::kCount;
      spec.size = size;
    } else {
      SS_ASSIGN_OR_RETURN(xml::Path reference, ParseRelativePath());
      SkipWs();
      if (!ConsumeKeyword("diff")) {
        return Error("expected 'diff' in time-based window");
      }
      SkipWs();
      SS_ASSIGN_OR_RETURN(Decimal size, ParseNumber());
      spec.type = properties::WindowType::kDiff;
      spec.reference = std::move(reference);
      spec.size = size;
    }
    SkipWs();
    if (ConsumeKeyword("step")) {
      SkipWs();
      SS_ASSIGN_OR_RETURN(spec.step, ParseNumber());
    } else {
      spec.step = spec.size;
    }
    SkipWs();
    SS_RETURN_IF_ERROR(Expect("|"));
    Status valid = spec.Validate();
    if (!valid.ok()) return Error(std::string(valid.message()));
    return spec;
  }

  // --- FLWR ----------------------------------------------------------------

  Result<ForClause> ParseForClause() {
    // "for" was already consumed.
    ForClause clause;
    SkipWs();
    SS_ASSIGN_OR_RETURN(clause.var, ParseVariable());
    SkipWs();
    if (!ConsumeKeyword("in")) return Error("expected 'in'");
    SkipWs();
    if (LookingAtKeyword("stream")) {
      ConsumeKeyword("stream");
      SkipWs();
      SS_RETURN_IF_ERROR(Expect("("));
      SkipWs();
      SS_ASSIGN_OR_RETURN(clause.source_stream, ParseStringLiteral());
      SkipWs();
      SS_RETURN_IF_ERROR(Expect(")"));
    } else if (Peek() == '$') {
      SS_ASSIGN_OR_RETURN(clause.source_var, ParseVariable());
    } else {
      return Error("expected stream(\"...\") or a variable");
    }
    if (Peek() == '/') {
      Advance();
      SS_ASSIGN_OR_RETURN(clause.path, ParseRelativePath());
    }
    SkipWs();
    if (Peek() == '[') {
      Advance();
      SS_ASSIGN_OR_RETURN(clause.path_conditions,
                          ParseConjunction(/*allow_bare_path=*/true));
      SkipWs();
      SS_RETURN_IF_ERROR(Expect("]"));
      SkipWs();
    }
    if (Peek() == '|') {
      SS_ASSIGN_OR_RETURN(auto window, ParseWindow());
      clause.window = std::move(window);
    }
    return clause;
  }

  Result<LetClause> ParseLetClause() {
    // "let" was already consumed.
    LetClause clause;
    SkipWs();
    SS_ASSIGN_OR_RETURN(clause.var, ParseVariable());
    SkipWs();
    SS_RETURN_IF_ERROR(Expect(":="));
    SkipWs();
    SS_ASSIGN_OR_RETURN(std::string func_name, ParseName());
    if (func_name == "min") {
      clause.func = properties::AggregateFunc::kMin;
    } else if (func_name == "max") {
      clause.func = properties::AggregateFunc::kMax;
    } else if (func_name == "sum") {
      clause.func = properties::AggregateFunc::kSum;
    } else if (func_name == "count") {
      clause.func = properties::AggregateFunc::kCount;
    } else if (func_name == "avg") {
      clause.func = properties::AggregateFunc::kAvg;
    } else {
      return Error("unknown aggregation function '" + func_name + "'");
    }
    SkipWs();
    SS_RETURN_IF_ERROR(Expect("("));
    SkipWs();
    SS_ASSIGN_OR_RETURN(clause.source_var, ParseVariable());
    if (Peek() == '/') {
      Advance();
      SS_ASSIGN_OR_RETURN(clause.path, ParseRelativePath());
    }
    SkipWs();
    SS_RETURN_IF_ERROR(Expect(")"));
    return clause;
  }

  Result<ExprPtr> ParseFlwr() {
    FlwrExpr flwr;
    while (true) {
      SkipWs();
      if (ConsumeKeyword("for")) {
        SS_ASSIGN_OR_RETURN(ForClause clause, ParseForClause());
        flwr.clauses.emplace_back(std::move(clause));
      } else if (ConsumeKeyword("let")) {
        SS_ASSIGN_OR_RETURN(LetClause clause, ParseLetClause());
        flwr.clauses.emplace_back(std::move(clause));
      } else {
        break;
      }
    }
    if (flwr.clauses.empty()) {
      return Error("FLWR expression requires at least one for/let clause");
    }
    SkipWs();
    if (ConsumeKeyword("where")) {
      SS_ASSIGN_OR_RETURN(flwr.where,
                          ParseConjunction(/*allow_bare_path=*/false));
      SkipWs();
    }
    if (!ConsumeKeyword("return")) return Error("expected 'return'");
    SkipWs();
    SS_ASSIGN_OR_RETURN(flwr.return_expr, ParseExpr());
    return std::make_unique<Expr>(Expr{std::move(flwr)});
  }

  // --- element constructors -------------------------------------------------

  Result<ExprPtr> ParseElement() {
    SS_RETURN_IF_ERROR(Expect("<"));
    ElementExpr element;
    SS_ASSIGN_OR_RETURN(element.tag, ParseName());
    SkipWs();
    if (ConsumeIf("/>")) {
      return std::make_unique<Expr>(Expr{std::move(element)});
    }
    SS_RETURN_IF_ERROR(Expect(">"));
    while (true) {
      SkipWs();
      if (LookingAt("</")) break;
      if (Peek() == '<') {
        SS_ASSIGN_OR_RETURN(ExprPtr child, ParseElement());
        element.content.push_back(std::move(child));
        continue;
      }
      if (Peek() == '{') {
        Advance();
        SkipWs();
        SS_ASSIGN_OR_RETURN(ExprPtr child, ParseExpr());
        element.content.push_back(std::move(child));
        SkipWs();
        SS_RETURN_IF_ERROR(Expect("}"));
        continue;
      }
      return Error(
          "element content must be a nested constructor or a braced "
          "expression");
    }
    SS_RETURN_IF_ERROR(Expect("</"));
    SS_ASSIGN_OR_RETURN(std::string closing, ParseName());
    if (closing != element.tag) {
      return Error("mismatched closing tag </" + closing + "> for <" +
                   element.tag + ">");
    }
    SkipWs();
    SS_RETURN_IF_ERROR(Expect(">"));
    return std::make_unique<Expr>(Expr{std::move(element)});
  }

  // --- top-level dispatch ----------------------------------------------------

  Result<ExprPtr> ParseExpr() {
    SkipWs();
    if (AtEnd()) return Error("unexpected end of input");
    if (Peek() == '<') return ParseElement();
    if (LookingAtKeyword("for") || LookingAtKeyword("let")) {
      return ParseFlwr();
    }
    if (ConsumeKeyword("if")) {
      IfExpr cond;
      SS_ASSIGN_OR_RETURN(cond.condition,
                          ParseConjunction(/*allow_bare_path=*/false));
      SkipWs();
      if (!ConsumeKeyword("then")) return Error("expected 'then'");
      SS_ASSIGN_OR_RETURN(cond.then_expr, ParseExpr());
      SkipWs();
      if (!ConsumeKeyword("else")) return Error("expected 'else'");
      SS_ASSIGN_OR_RETURN(cond.else_expr, ParseExpr());
      return std::make_unique<Expr>(Expr{std::move(cond)});
    }
    if (Peek() == '$') {
      std::string var;
      {
        SS_ASSIGN_OR_RETURN(var, ParseVariable());
      }
      if (Peek() == '/' && IsNameStartChar(Peek(1))) {
        // π̄: conditioned path — a bracket group may follow any step.
        PathOutputExpr path_out;
        path_out.var = std::move(var);
        while (Peek() == '/' && IsNameStartChar(Peek(1))) {
          Advance();
          PathStep step;
          SS_ASSIGN_OR_RETURN(step.name, ParseName());
          if (Peek() == '[') {
            Advance();
            SS_ASSIGN_OR_RETURN(
                step.conditions,
                ParseConjunction(/*allow_bare_path=*/true));
            SkipWs();
            SS_RETURN_IF_ERROR(Expect("]"));
          }
          path_out.steps.push_back(std::move(step));
        }
        return std::make_unique<Expr>(Expr{std::move(path_out)});
      }
      return std::make_unique<Expr>(Expr{VarOutputExpr{std::move(var)}});
    }
    if (Peek() == '(') {
      Advance();
      SequenceExpr sequence;
      SkipWs();
      if (!ConsumeIf(")")) {
        while (true) {
          SS_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
          sequence.items.push_back(std::move(item));
          SkipWs();
          if (ConsumeIf(",")) continue;
          break;
        }
        SS_RETURN_IF_ERROR(Expect(")"));
      }
      return std::make_unique<Expr>(Expr{std::move(sequence)});
    }
    return Error("expected an expression");
  }

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

Result<ExprPtr> ParseQuery(std::string_view input) {
  Parser parser(input);
  return parser.ParseComplete();
}

}  // namespace streamshare::wxquery
