// Abstract syntax tree for WXQuery (Definition 2.1). The seven expression
// forms map onto six node types (the two element-constructor forms share
// ElementExpr). Conditions — whether in a where clause or in a path — are
// conjunctions of WhereAtoms; window definitions reuse
// properties::WindowSpec.

#ifndef STREAMSHARE_WXQUERY_AST_H_
#define STREAMSHARE_WXQUERY_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/decimal.h"
#include "predicate/atomic.h"
#include "properties/operators.h"
#include "properties/window.h"
#include "xml/path.h"

namespace streamshare::wxquery {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// A variable with an optional relative path: $v or $v/a/b. An empty var
/// denotes the implicit context of a path condition ([ra >= 120.0] inside
/// a binding path — the paths are relative to the bound item).
struct VarPath {
  std::string var;
  xml::Path path;

  std::string ToString() const;
  bool operator==(const VarPath& other) const = default;
};

/// One atomic condition: lhs θ c or lhs θ rhs + c.
struct WhereAtom {
  VarPath lhs;
  predicate::ComparisonOp op = predicate::ComparisonOp::kEq;
  std::optional<VarPath> rhs;
  Decimal constant;

  std::string ToString() const;
  bool operator==(const WhereAtom& other) const = default;
};

/// for $x in $y[/π̄]? [|window|]?  — the binding source is either a data
/// stream (stream("name")) or a previously bound variable.
struct ForClause {
  std::string var;
  /// Exactly one of source_stream / source_var is non-empty.
  std::string source_stream;
  std::string source_var;
  /// Relative path after the source. For a stream source the first step is
  /// the stream's root element (e.g. "photons/photon").
  xml::Path path;
  /// Conditions from a bracket group on the final path step; their VarPath
  /// vars are empty (relative to the bound node).
  std::vector<WhereAtom> path_conditions;
  std::optional<properties::WindowSpec> window;

  std::string ToString() const;
};

/// let $a := Φ($y[/π]?).
struct LetClause {
  std::string var;
  properties::AggregateFunc func = properties::AggregateFunc::kAvg;
  std::string source_var;
  xml::Path path;

  std::string ToString() const;
};

/// FLWR expression: (for | let)+ [where]? return α.
struct FlwrExpr {
  std::vector<std::variant<ForClause, LetClause>> clauses;
  std::vector<WhereAtom> where;
  ExprPtr return_expr;
};

/// <t/> and <t>...</t>. Content entries are either nested element
/// constructors or braced expressions; the distinction is syntactic only
/// and not preserved.
struct ElementExpr {
  std::string tag;
  std::vector<ExprPtr> content;
};

/// if χ then α else β.
struct IfExpr {
  std::vector<WhereAtom> condition;
  ExprPtr then_expr;
  ExprPtr else_expr;
};

/// One step of a conditioned path π̄: a child-axis step with an optional
/// bracket condition group filtering the nodes selected at this step
/// (condition paths are relative to the selected node).
struct PathStep {
  std::string name;
  std::vector<WhereAtom> conditions;

  std::string ToString() const;
};

/// $y/π̄ — outputs the subtrees reached through the conditioned path
/// (form 5). Conditions may appear after any step, per Definition 2.1.
struct PathOutputExpr {
  std::string var;
  std::vector<PathStep> steps;

  /// The path with conditions stripped.
  xml::Path PlainPath() const;
  bool HasConditions() const;
};

/// $z — outputs the subtree (or aggregate value) bound to a variable
/// (form 6).
struct VarOutputExpr {
  std::string var;
};

/// ( α, β, ... ) (form 7).
struct SequenceExpr {
  std::vector<ExprPtr> items;
};

/// Any WXQuery expression.
struct Expr {
  std::variant<ElementExpr, FlwrExpr, IfExpr, PathOutputExpr, VarOutputExpr,
               SequenceExpr>
      node;

  template <typename T>
  const T* As() const {
    return std::get_if<T>(&node);
  }
  template <typename T>
  bool Is() const {
    return std::holds_alternative<T>(node);
  }
};

/// Pretty-prints an expression back to WXQuery syntax (parse ∘ print is
/// the identity on ASTs; tested as such).
std::string PrintExpr(const Expr& expr);

/// Renders a conjunction "a and b and c".
std::string PrintCondition(const std::vector<WhereAtom>& atoms);

}  // namespace streamshare::wxquery

#endif  // STREAMSHARE_WXQUERY_AST_H_
