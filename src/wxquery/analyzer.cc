#include "wxquery/analyzer.h"

#include <algorithm>
#include <map>
#include <set>

#include "wxquery/parser.h"

namespace streamshare::wxquery {

namespace {

using predicate::AtomicPredicate;
using properties::AggregationOp;
using properties::Operator;
using properties::ProjectionOp;
using properties::SelectionOp;
using properties::UserDefinedOp;

/// Counts FLWR expressions in a subtree.
int CountFlwrs(const Expr& expr) {
  if (const auto* element = expr.As<ElementExpr>()) {
    int count = 0;
    for (const ExprPtr& child : element->content) {
      count += CountFlwrs(*child);
    }
    return count;
  }
  if (const auto* flwr = expr.As<FlwrExpr>()) {
    return 1 + CountFlwrs(*flwr->return_expr);
  }
  if (const auto* cond = expr.As<IfExpr>()) {
    return CountFlwrs(*cond->then_expr) + CountFlwrs(*cond->else_expr);
  }
  if (const auto* sequence = expr.As<SequenceExpr>()) {
    int count = 0;
    for (const ExprPtr& item : sequence->items) {
      count += CountFlwrs(*item);
    }
    return count;
  }
  return 0;
}

/// Finds the unique FLWR (depth-first) and the wrapper tag if the root is
/// an element constructor directly containing it.
const FlwrExpr* FindFlwr(const Expr& expr) {
  if (const auto* flwr = expr.As<FlwrExpr>()) return flwr;
  if (const auto* element = expr.As<ElementExpr>()) {
    for (const ExprPtr& child : element->content) {
      if (const FlwrExpr* found = FindFlwr(*child)) return found;
    }
    return nullptr;
  }
  if (const auto* cond = expr.As<IfExpr>()) {
    if (const FlwrExpr* found = FindFlwr(*cond->then_expr)) return found;
    return FindFlwr(*cond->else_expr);
  }
  if (const auto* sequence = expr.As<SequenceExpr>()) {
    for (const ExprPtr& item : sequence->items) {
      if (const FlwrExpr* found = FindFlwr(*item)) return found;
    }
  }
  return nullptr;
}

class Analyzer {
 public:
  Result<AnalyzedQuery> Run(ExprPtr root) {
    AnalyzedQuery query;
    query.root = std::move(root);

    int flwr_count = CountFlwrs(*query.root);
    if (flwr_count == 0) {
      return Status::InvalidArgument(
          "subscription contains no FLWR expression over a data stream");
    }
    if (flwr_count > 1) {
      return Status::Unsupported(
          "nested or multiple FLWR expressions are not supported by the "
          "flat properties approach (paper future work)");
    }
    query.flwr = FindFlwr(*query.root);
    if (const auto* element = query.root->As<ElementExpr>()) {
      query.wrapper_tag = element->tag;
    }

    SS_RETURN_IF_ERROR(ProcessClauses(*query.flwr));
    SS_RETURN_IF_ERROR(ProcessWhere(*query.flwr));
    SS_RETURN_IF_ERROR(
        CollectOutput(*query.flwr->return_expr, /*output_position=*/true));

    if (order_.size() > 1) {
      // Multi-input combination supports plain bindings: windows and
      // aggregates would give the combination unbounded state.
      for (const Binding& binding : order_) {
        if (binding.info.window.has_value() ||
            binding.info.aggregate.has_value()) {
          return Status::Unsupported(
              "multi-input subscriptions with windows or aggregates are "
              "not supported");
        }
      }
    }

    query.join_conditions = std::move(join_conditions_);
    for (Binding& binding : order_) {
      FinalizeReferenced(binding);
      query.bindings.push_back(std::move(binding.info));
    }
    SS_ASSIGN_OR_RETURN(query.props, BuildProperties(query.bindings));
    return query;
  }

 private:
  struct Binding {
    StreamBinding info;
    std::set<xml::Path> referenced;
    std::set<xml::Path> output;
  };

  Binding* FindBinding(const std::string& var) {
    for (Binding& binding : order_) {
      if (binding.info.var == var) return &binding;
    }
    return nullptr;
  }

  Binding* FindBindingByAggVar(const std::string& var) {
    for (Binding& binding : order_) {
      if (binding.info.aggregate.has_value() &&
          binding.info.aggregate->var == var) {
        return &binding;
      }
    }
    return nullptr;
  }

  Status ProcessClauses(const FlwrExpr& flwr) {
    for (const auto& clause : flwr.clauses) {
      if (const auto* for_clause = std::get_if<ForClause>(&clause)) {
        SS_RETURN_IF_ERROR(ProcessFor(*for_clause));
      } else {
        SS_RETURN_IF_ERROR(ProcessLet(std::get<LetClause>(clause)));
      }
    }
    if (order_.empty()) {
      return Status::InvalidArgument(
          "subscription binds no data stream (no for clause over "
          "stream(...))");
    }
    return Status::Ok();
  }

  Status ProcessFor(const ForClause& clause) {
    if (clause.source_stream.empty()) {
      return Status::Unsupported(
          "for clauses must bind directly from stream(...); binding from "
          "another variable is not supported");
    }
    if (FindBinding(clause.var) != nullptr ||
        FindBindingByAggVar(clause.var) != nullptr) {
      return Status::InvalidArgument("variable $" + clause.var +
                                     " is bound twice");
    }
    if (clause.path.size() < 2) {
      return Status::InvalidArgument(
          "stream binding path must name the stream root element and the "
          "item element, e.g. stream(\"photons\")/photons/photon");
    }
    Binding binding;
    binding.info.var = clause.var;
    binding.info.stream_name = clause.source_stream;
    binding.info.stream_root = clause.path.steps()[0];
    binding.info.item_path = xml::Path(std::vector<std::string>(
        clause.path.steps().begin() + 1, clause.path.steps().end()));
    binding.info.window = clause.window;
    if (clause.window.has_value() && !clause.window->reference.empty()) {
      // The ordered reference element controls the window downstream, so
      // it must survive projection.
      binding.referenced.insert(clause.window->reference);
    }
    for (const WhereAtom& atom : clause.path_conditions) {
      SS_ASSIGN_OR_RETURN(std::optional<AtomicPredicate> pred,
                          AtomToItemPredicate(atom, clause.var, &binding));
      if (!pred.has_value()) {
        return Status::InvalidArgument(
            "bracket conditions cannot reference other bindings");
      }
      binding.info.item_predicates.push_back(std::move(*pred));
    }
    order_.push_back(std::move(binding));
    return Status::Ok();
  }

  Status ProcessLet(const LetClause& clause) {
    Binding* source = FindBinding(clause.source_var);
    if (source == nullptr) {
      return Status::InvalidArgument("let clause aggregates over undefined "
                                     "variable $" +
                                     clause.source_var);
    }
    if (!source->info.window.has_value()) {
      return Status::InvalidArgument(
          "window-based aggregation requires a data window on $" +
          clause.source_var);
    }
    if (source->info.aggregate.has_value()) {
      return Status::Unsupported(
          "multiple aggregates over one window are not supported");
    }
    if (FindBinding(clause.var) != nullptr) {
      return Status::InvalidArgument("variable $" + clause.var +
                                     " is bound twice");
    }
    source->info.aggregate =
        AggregateInfo{clause.var, clause.func, clause.path};
    source->referenced.insert(clause.path);
    return Status::Ok();
  }

  /// Converts a WhereAtom whose lhs belongs to item-bound variable
  /// `binding_var` into an item-relative atomic predicate, recording the
  /// referenced paths. A cross-binding comparison instead lands in the
  /// query's join conditions (evaluated during final combination) and
  /// yields no predicate.
  Result<std::optional<AtomicPredicate>> AtomToItemPredicate(
      const WhereAtom& atom, const std::string& binding_var,
      Binding* binding) {
    AtomicPredicate pred;
    pred.lhs = atom.lhs.path;
    pred.op = atom.op;
    pred.constant = atom.constant;
    binding->referenced.insert(atom.lhs.path);
    if (atom.rhs.has_value()) {
      const std::string& rhs_var =
          atom.rhs->var.empty() ? binding_var : atom.rhs->var;
      if (rhs_var != binding_var) {
        Binding* other = FindBinding(rhs_var);
        if (other == nullptr) {
          return Status::InvalidArgument(
              "predicate references undefined variable $" + rhs_var);
        }
        // Join condition: both sides must survive projection.
        other->referenced.insert(atom.rhs->path);
        join_conditions_.push_back(atom);
        return std::optional<AtomicPredicate>();
      }
      pred.rhs_var = atom.rhs->path;
      binding->referenced.insert(atom.rhs->path);
    }
    return std::optional<AtomicPredicate>(std::move(pred));
  }

  Status ProcessWhere(const FlwrExpr& flwr) {
    for (const WhereAtom& atom : flwr.where) {
      if (atom.lhs.var.empty()) {
        return Status::InvalidArgument(
            "where atoms must reference a bound variable");
      }
      if (Binding* binding = FindBinding(atom.lhs.var)) {
        SS_ASSIGN_OR_RETURN(
            std::optional<AtomicPredicate> pred,
            AtomToItemPredicate(atom, atom.lhs.var, binding));
        if (pred.has_value()) {
          binding->info.item_predicates.push_back(std::move(*pred));
        }
        continue;
      }
      if (Binding* binding = FindBindingByAggVar(atom.lhs.var)) {
        if (!atom.lhs.path.empty()) {
          return Status::InvalidArgument(
              "aggregate variable $" + atom.lhs.var +
              " is a value; it has no sub-elements");
        }
        if (atom.rhs.has_value()) {
          return Status::Unsupported(
              "aggregate values can only be compared against constants");
        }
        AtomicPredicate pred;
        pred.lhs = properties::AggregateValuePath();
        pred.op = atom.op;
        pred.constant = atom.constant;
        binding->info.result_filter.push_back(std::move(pred));
        continue;
      }
      return Status::InvalidArgument("where atom references undefined "
                                     "variable $" +
                                     atom.lhs.var);
    }
    return Status::Ok();
  }

  /// Walks the return expression, validating variable uses and collecting
  /// output / referenced paths.
  Status CollectOutput(const Expr& expr, bool output_position) {
    if (const auto* element = expr.As<ElementExpr>()) {
      for (const ExprPtr& child : element->content) {
        SS_RETURN_IF_ERROR(CollectOutput(*child, output_position));
      }
      return Status::Ok();
    }
    if (expr.Is<FlwrExpr>()) {
      return Status::Internal("nested FLWR slipped past the counter");
    }
    if (const auto* cond = expr.As<IfExpr>()) {
      for (const WhereAtom& atom : cond->condition) {
        SS_RETURN_IF_ERROR(RecordConditionAtom(atom));
      }
      SS_RETURN_IF_ERROR(CollectOutput(*cond->then_expr, output_position));
      return CollectOutput(*cond->else_expr, output_position);
    }
    if (const auto* path_out = expr.As<PathOutputExpr>()) {
      Binding* binding = FindBinding(path_out->var);
      if (binding == nullptr) {
        return Status::InvalidArgument(
            "return clause references undefined variable $" +
            path_out->var);
      }
      xml::Path plain = path_out->PlainPath();
      binding->referenced.insert(plain);
      if (output_position) binding->output.insert(plain);
      // Bracket conditions are relative to the node selected at their
      // step; record the full item-relative paths so they survive
      // projection.
      std::vector<std::string> prefix;
      for (const PathStep& step : path_out->steps) {
        prefix.push_back(step.name);
        xml::Path step_path(prefix);
        for (const WhereAtom& atom : step.conditions) {
          if (!atom.lhs.var.empty() ||
              (atom.rhs.has_value() && !atom.rhs->var.empty())) {
            return Status::Unsupported(
                "path conditions must be relative to the selected node");
          }
          binding->referenced.insert(step_path.Concat(atom.lhs.path));
          if (atom.rhs.has_value()) {
            binding->referenced.insert(
                step_path.Concat(atom.rhs->path));
          }
        }
      }
      return Status::Ok();
    }
    if (const auto* var_out = expr.As<VarOutputExpr>()) {
      if (Binding* binding = FindBinding(var_out->var)) {
        binding->info.returns_whole_item = true;
        return Status::Ok();
      }
      if (FindBindingByAggVar(var_out->var) != nullptr) {
        return Status::Ok();  // outputs the aggregate value
      }
      return Status::InvalidArgument(
          "return clause references undefined variable $" + var_out->var);
    }
    const auto& sequence = std::get<SequenceExpr>(expr.node);
    for (const ExprPtr& item : sequence.items) {
      SS_RETURN_IF_ERROR(CollectOutput(*item, output_position));
    }
    return Status::Ok();
  }

  /// Conditions inside if-expressions reference bound variables; they only
  /// affect restructuring, but their paths must survive projection.
  Status RecordConditionAtom(const WhereAtom& atom) {
    auto record = [&](const VarPath& vp) -> Status {
      if (vp.var.empty()) {
        return Status::InvalidArgument(
            "conditions in return expressions must reference a bound "
            "variable");
      }
      if (Binding* binding = FindBinding(vp.var)) {
        binding->referenced.insert(vp.path);
        return Status::Ok();
      }
      if (FindBindingByAggVar(vp.var) != nullptr) return Status::Ok();
      return Status::InvalidArgument("condition references undefined "
                                     "variable $" +
                                     vp.var);
    };
    SS_RETURN_IF_ERROR(record(atom.lhs));
    if (atom.rhs.has_value()) SS_RETURN_IF_ERROR(record(*atom.rhs));
    return Status::Ok();
  }

  void FinalizeReferenced(Binding& binding) {
    binding.info.referenced_paths.assign(binding.referenced.begin(),
                                         binding.referenced.end());
    binding.info.output_paths.assign(binding.output.begin(),
                                     binding.output.end());
  }

  static Result<properties::Properties> BuildProperties(
      const std::vector<StreamBinding>& bindings) {
    properties::Properties props;
    for (const StreamBinding& binding : bindings) {
      properties::InputStreamProperties& input =
          props.AddInput(binding.stream_name);
      if (binding.aggregate.has_value()) {
        // Aggregate subscriptions expose their pre-selection and their
        // referenced elements as σ and Π operators *in addition to* the
        // embedded copies inside the AggregationOp: Algorithm 2 compares
        // operators by kind, and only this layout lets an aggregate
        // subscription reuse a merely selected/projected stream (e.g. Q3
        // reusing Q1's filtered stream). The Π of an aggregate entry sets
        // output = referenced — the aggregate stream conceptually covers
        // exactly those elements; actual data availability between two
        // aggregate entries is guarded by MatchAggregations.
        if (!binding.item_predicates.empty()) {
          SS_ASSIGN_OR_RETURN(SelectionOp selection,
                              SelectionOp::Create(binding.item_predicates));
          input.operators.emplace_back(std::move(selection));
        }
        ProjectionOp projection;
        projection.referenced = binding.referenced_paths;
        projection.output = binding.referenced_paths;
        input.operators.emplace_back(std::move(projection));
        SS_ASSIGN_OR_RETURN(
            AggregationOp agg,
            AggregationOp::Create(binding.aggregate->func,
                                  binding.aggregate->path, *binding.window,
                                  binding.item_predicates,
                                  binding.result_filter));
        input.operators.emplace_back(std::move(agg));
        continue;
      }
      if (!binding.item_predicates.empty()) {
        SS_ASSIGN_OR_RETURN(SelectionOp selection,
                            SelectionOp::Create(binding.item_predicates));
        input.operators.emplace_back(std::move(selection));
      }
      if (binding.window.has_value()) {
        // A window whose contents are returned verbatim (no aggregate):
        // sharable only with an identical window, modeled as an opaque
        // operator per §3.3's unknown-operator rule. The spec fields are
        // the operator's parameter vector — identical parameters ⇔
        // identical window — and let the cost model recover the window.
        const properties::WindowSpec& window = *binding.window;
        input.operators.emplace_back(UserDefinedOp{
            "window-contents",
            {window.type == properties::WindowType::kCount ? "count"
                                                           : "diff",
             window.size.ToString(), window.step.ToString(),
             window.reference.ToString()}});
      }
      if (!binding.returns_whole_item) {
        // The materialized stream keeps every referenced element (return
        // outputs plus elements the final restructuring's conditions read);
        // output = referenced keeps the properties honest about the
        // stream's physical content and maximizes reusability.
        ProjectionOp projection;
        projection.referenced = binding.referenced_paths;
        projection.output = binding.referenced_paths;
        input.operators.emplace_back(std::move(projection));
      }
    }
    return props;
  }

  std::vector<Binding> order_;
  std::vector<WhereAtom> join_conditions_;
};

}  // namespace

Result<AnalyzedQuery> Analyze(ExprPtr root) {
  Analyzer analyzer;
  return analyzer.Run(std::move(root));
}

Result<AnalyzedQuery> ParseAndAnalyze(std::string_view query_text) {
  SS_ASSIGN_OR_RETURN(ExprPtr root, ParseQuery(query_text));
  return Analyze(std::move(root));
}

}  // namespace streamshare::wxquery
