#include "wxquery/ast.h"

#include "common/string_util.h"

namespace streamshare::wxquery {

std::string VarPath::ToString() const {
  std::string out;
  if (!var.empty()) {
    out += "$" + var;
    if (!path.empty()) out += "/";
  }
  out += path.ToString();
  return out;
}

std::string WhereAtom::ToString() const {
  std::string out = lhs.ToString();
  out += ' ';
  out += predicate::ComparisonOpToString(op);
  out += ' ';
  if (rhs.has_value()) {
    out += rhs->ToString();
    Decimal zero;
    if (constant != zero) {
      if (constant < zero) {
        out += " - " + (-constant).ToString();
      } else {
        out += " + " + constant.ToString();
      }
    }
  } else {
    out += constant.ToString();
  }
  return out;
}

std::string PrintCondition(const std::vector<WhereAtom>& atoms) {
  std::vector<std::string> parts;
  parts.reserve(atoms.size());
  for (const WhereAtom& atom : atoms) parts.push_back(atom.ToString());
  return Join(parts, " and ");
}

std::string PathStep::ToString() const {
  std::string out = name;
  if (!conditions.empty()) {
    out += "[" + PrintCondition(conditions) + "]";
  }
  return out;
}

xml::Path PathOutputExpr::PlainPath() const {
  std::vector<std::string> names;
  names.reserve(steps.size());
  for (const PathStep& step : steps) names.push_back(step.name);
  return xml::Path(std::move(names));
}

bool PathOutputExpr::HasConditions() const {
  for (const PathStep& step : steps) {
    if (!step.conditions.empty()) return true;
  }
  return false;
}

std::string ForClause::ToString() const {
  std::string out = "for $" + var + " in ";
  if (!source_stream.empty()) {
    out += "stream(\"" + source_stream + "\")";
  } else {
    out += "$" + source_var;
  }
  if (!path.empty()) out += "/" + path.ToString();
  if (!path_conditions.empty()) {
    out += "[" + PrintCondition(path_conditions) + "]";
  }
  if (window.has_value()) out += " " + window->ToString();
  return out;
}

std::string LetClause::ToString() const {
  std::string out = "let $" + var + " := ";
  out += properties::AggregateFuncToString(func);
  out += "($" + source_var;
  if (!path.empty()) out += "/" + path.ToString();
  out += ")";
  return out;
}

namespace {

void PrintTo(const Expr& expr, std::string* out);

void PrintFlwr(const FlwrExpr& flwr, std::string* out) {
  for (const auto& clause : flwr.clauses) {
    if (const auto* for_clause = std::get_if<ForClause>(&clause)) {
      out->append(for_clause->ToString());
    } else {
      out->append(std::get<LetClause>(clause).ToString());
    }
    out->append(" ");
  }
  if (!flwr.where.empty()) {
    out->append("where ").append(PrintCondition(flwr.where)).append(" ");
  }
  out->append("return ");
  PrintTo(*flwr.return_expr, out);
}

void PrintTo(const Expr& expr, std::string* out) {
  if (const auto* element = expr.As<ElementExpr>()) {
    if (element->content.empty()) {
      out->append("<").append(element->tag).append("/>");
      return;
    }
    out->append("<").append(element->tag).append(">");
    for (const ExprPtr& child : element->content) {
      if (child->Is<ElementExpr>()) {
        PrintTo(*child, out);
      } else {
        out->append(" { ");
        PrintTo(*child, out);
        out->append(" } ");
      }
    }
    out->append("</").append(element->tag).append(">");
    return;
  }
  if (const auto* flwr = expr.As<FlwrExpr>()) {
    PrintFlwr(*flwr, out);
    return;
  }
  if (const auto* cond = expr.As<IfExpr>()) {
    out->append("if ").append(PrintCondition(cond->condition));
    out->append(" then ");
    PrintTo(*cond->then_expr, out);
    out->append(" else ");
    PrintTo(*cond->else_expr, out);
    return;
  }
  if (const auto* path_out = expr.As<PathOutputExpr>()) {
    out->append("$").append(path_out->var);
    for (const PathStep& step : path_out->steps) {
      out->append("/").append(step.ToString());
    }
    return;
  }
  if (const auto* var_out = expr.As<VarOutputExpr>()) {
    out->append("$").append(var_out->var);
    return;
  }
  const auto& sequence = std::get<SequenceExpr>(expr.node);
  out->append("(");
  for (size_t i = 0; i < sequence.items.size(); ++i) {
    if (i > 0) out->append(", ");
    PrintTo(*sequence.items[i], out);
  }
  out->append(")");
}

}  // namespace

std::string PrintExpr(const Expr& expr) {
  std::string out;
  PrintTo(expr, &out);
  return out;
}

}  // namespace streamshare::wxquery
