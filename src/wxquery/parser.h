// Recursive-descent parser for WXQuery (Definition 2.1). The grammar mixes
// XML syntax (direct element constructors) with query syntax (FLWR, paths,
// windows), so the parser works at character level and switches context
// explicitly instead of using a fixed token stream. XQuery comments
// "(: ... :)" are accepted anywhere whitespace is.

#ifndef STREAMSHARE_WXQUERY_PARSER_H_
#define STREAMSHARE_WXQUERY_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "wxquery/ast.h"

namespace streamshare::wxquery {

/// Parses a complete WXQuery subscription. The whole input must be
/// consumed; trailing garbage is a parse error. Errors carry 1-based
/// line:column positions.
Result<ExprPtr> ParseQuery(std::string_view input);

}  // namespace streamshare::wxquery

#endif  // STREAMSHARE_WXQUERY_PARSER_H_
