// Semantic analysis of WXQuery subscriptions: validates the restrictions
// the paper imposes (flat queries, defined variables, stream-rooted
// bindings, conjunctive conditions) and derives the properties
// representation of §3.1 — per input stream, the selection, projection and
// window-aggregation operators with their conditions. The AST is retained
// because the final restructuring step (the return clause) executes from
// it; restructuring details never enter the properties.

#ifndef STREAMSHARE_WXQUERY_ANALYZER_H_
#define STREAMSHARE_WXQUERY_ANALYZER_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "properties/properties.h"
#include "wxquery/ast.h"

namespace streamshare::wxquery {

/// The aggregation requested by a let clause.
struct AggregateInfo {
  std::string var;  // $a
  properties::AggregateFunc func = properties::AggregateFunc::kAvg;
  xml::Path path;  // aggregated element, relative to the window items
};

/// Everything the system needs to know about one stream-bound for clause.
struct StreamBinding {
  /// The for variable ($p, $w).
  std::string var;
  /// The referenced input data stream ("photons").
  std::string stream_name;
  /// The stream's root element (first step of the binding path).
  std::string stream_root;
  /// Path from the root to the bound item (remaining steps, usually one:
  /// the item element name, e.g. "photon").
  xml::Path item_path;
  /// Conjunction of all selection predicates on the bound items (bracket
  /// conditions merged with where atoms over this binding's variable);
  /// paths are relative to the item.
  std::vector<predicate::AtomicPredicate> item_predicates;
  std::optional<properties::WindowSpec> window;
  std::optional<AggregateInfo> aggregate;
  /// Predicates on the aggregate value (lhs = AggregateValuePath()).
  std::vector<predicate::AtomicPredicate> result_filter;
  /// R′: all item-relative element paths the query touches.
  std::vector<xml::Path> referenced_paths;
  /// R: item-relative element paths present in the result stream.
  std::vector<xml::Path> output_paths;
  /// True if the query returns the bound item in full ($z form); output
  /// then covers the whole item and no projection applies.
  bool returns_whole_item = false;
};

/// A validated subscription: AST + derived metadata + properties.
struct AnalyzedQuery {
  ExprPtr root;
  /// The single FLWR expression of the (flat) query; points into root.
  const FlwrExpr* flwr = nullptr;
  /// Tag of the enclosing element constructor, if the query wraps its
  /// FLWR in one (e.g. "photons" in the paper's examples); empty
  /// otherwise.
  std::string wrapper_tag;
  std::vector<StreamBinding> bindings;
  /// Cross-binding where atoms (join conditions). They never enter any
  /// input's properties — the paper performs stream combination in the
  /// final post-processing step at the query's super-peer, and its result
  /// is not considered for reuse (§3.1).
  std::vector<WhereAtom> join_conditions;
  properties::Properties props;
};

/// Analyzes a parsed query. Fails with kUnsupported for nested FLWRs (the
/// paper's properties approach handles flat queries; nesting is its future
/// work), kUnsatisfiable for contradictory predicates, kInvalidArgument /
/// kNotFound for semantic errors.
Result<AnalyzedQuery> Analyze(ExprPtr root);

/// Convenience: parse + analyze.
Result<AnalyzedQuery> ParseAndAnalyze(std::string_view query_text);

}  // namespace streamshare::wxquery

#endif  // STREAMSHARE_WXQUERY_ANALYZER_H_
