#include "matching/match_properties.h"

#include "matching/match_aggregations.h"
#include "matching/match_predicates.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace streamshare::matching {

using properties::AggregationOp;
using properties::InputStreamProperties;
using properties::Operator;
using properties::OperatorKind;
using properties::ProjectionOp;
using properties::SelectionOp;
using properties::UserDefinedOp;

bool ProjectionCovers(const std::vector<xml::Path>& output,
                      const std::vector<xml::Path>& referenced) {
  for (const xml::Path& needed : referenced) {
    bool covered = false;
    for (const xml::Path& kept : output) {
      if (kept.IsPrefixOf(needed)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

namespace {

/// Lines 9–30 of Algorithm 2: does subscription operator `sub_op` make
/// stream operator `stream_op` acceptable?
bool OperatorsCompatible(const Operator& stream_op, const Operator& sub_op,
                         const MatchOptions& options) {
  if (KindOf(stream_op) != KindOf(sub_op)) return false;
  switch (KindOf(stream_op)) {
    case OperatorKind::kSelection: {
      const auto& stream_sel = std::get<SelectionOp>(stream_op);
      const auto& sub_sel = std::get<SelectionOp>(sub_op);
      return options.edge_local_predicates
                 ? MatchPredicatesEdgeLocal(stream_sel.graph, sub_sel.graph)
                 : MatchPredicatesComplete(stream_sel.graph, sub_sel.graph);
    }
    case OperatorKind::kProjection: {
      // R (what the stream still carries) must cover R′ (everything the
      // subscription references, marked or not).
      const auto& stream_proj = std::get<ProjectionOp>(stream_op);
      const auto& sub_proj = std::get<ProjectionOp>(sub_op);
      return ProjectionCovers(stream_proj.output, sub_proj.referenced);
    }
    case OperatorKind::kAggregation:
      return MatchAggregations(std::get<AggregationOp>(stream_op),
                               std::get<AggregationOp>(sub_op));
    case OperatorKind::kUserDefined: {
      // Unknown operators: deterministic and invoked identically (same
      // operator, same input vector).
      const auto& stream_udf = std::get<UserDefinedOp>(stream_op);
      const auto& sub_udf = std::get<UserDefinedOp>(sub_op);
      return stream_udf.name == sub_udf.name &&
             stream_udf.params == sub_udf.params;
    }
  }
  return false;
}

}  // namespace

bool MatchProperties(const InputStreamProperties& stream,
                     const InputStreamProperties& sub,
                     const MatchOptions& options) {
  static obs::Counter* calls =
      obs::MetricsRegistry::Default().GetCounter(
          "matching.properties.calls");
  static obs::Counter* matches =
      obs::MetricsRegistry::Default().GetCounter(
          "matching.properties.matched");
  const bool count = obs::Enabled();
  if (count) calls->Add(1);
  obs::TraceSpan span(&obs::TraceRecorder::Default(), "MatchProperties",
                      "matching");
  if (span.active()) {
    span.AddArg(obs::TraceArg::Str("stream", stream.stream_name));
  }

  // Lines 1–4: both must transform the same original input stream.
  if (stream.stream_name != sub.stream_name) return false;

  // Lines 6–36: every operator already applied to the stream needs a
  // compatible counterpart in the subscription; otherwise the stream has
  // dropped or transformed data the subscription still needs. Extra
  // subscription operators are fine — they run downstream of the reuse.
  for (const Operator& stream_op : stream.operators) {
    bool matched = false;
    for (const Operator& sub_op : sub.operators) {
      if (OperatorsCompatible(stream_op, sub_op, options)) {
        matched = true;
        break;
      }
    }
    if (!matched) return false;
  }
  if (count) matches->Add(1);
  return true;
}

}  // namespace streamshare::matching
