// Algorithm 2 (MatchProperties): decides whether a data stream available in
// the network can be reused to answer (part of) a new subscription. Both
// sides are per-input-stream property entries (§3.1); the Subscribe
// algorithm invokes this once per candidate stream and per subscription
// input.

#ifndef STREAMSHARE_MATCHING_MATCH_PROPERTIES_H_
#define STREAMSHARE_MATCHING_MATCH_PROPERTIES_H_

#include "properties/properties.h"

namespace streamshare::matching {

struct MatchOptions {
  /// Use the paper's edge-local Algorithm 3 for selection predicates
  /// (default). When false, the complete shortest-path implication is
  /// used instead (ablation A3).
  bool edge_local_predicates = true;
};

/// True if the stream described by `stream` contains everything the
/// subscription input `sub` needs: same original input stream, and for
/// every operator already applied to the stream a compatible counterpart
/// in the subscription (selection containment, projection coverage,
/// aggregation compatibility, identical user-defined invocations).
bool MatchProperties(const properties::InputStreamProperties& stream,
                     const properties::InputStreamProperties& sub,
                     const MatchOptions& options = {});

/// Projection coverage: every path in `referenced` lies under some path in
/// `output` (R ⊇ R′ with ancestor paths covering their subtrees).
bool ProjectionCovers(const std::vector<xml::Path>& output,
                      const std::vector<xml::Path>& referenced);

}  // namespace streamshare::matching

#endif  // STREAMSHARE_MATCHING_MATCH_PROPERTIES_H_
