// Algorithm 3 (MatchPredicates): the paper's edge-local implication test on
// predicate graphs. G is the graph of the data stream considered for
// sharing, G′ that of the new subscription; the test succeeds when the
// predicates of G′ imply those of G — i.e. every item the subscription
// wants survives the stream's selection.
//
// The edge-local test is cheaper but conservative compared to full
// shortest-path implication (it only compares direct edges, never derived
// bounds). Both are exposed; the ablation bench A3 quantifies the gap.

#ifndef STREAMSHARE_MATCHING_MATCH_PREDICATES_H_
#define STREAMSHARE_MATCHING_MATCH_PREDICATES_H_

#include "predicate/graph.h"

namespace streamshare::matching {

/// Algorithm 3: true if every node of `stream_graph` has an equivalent
/// node in `sub_graph` and every edge incident to it is implied by some
/// edge incident to the equivalent node (ζ(x) ⇐ ζ(y)).
bool MatchPredicatesEdgeLocal(const predicate::PredicateGraph& stream_graph,
                              const predicate::PredicateGraph& sub_graph);

/// Complete implication: true if sub_graph ⇒ stream_graph via tightest
/// derivable bounds. Never rejects a shareable stream the edge-local test
/// accepts; may accept more.
bool MatchPredicatesComplete(const predicate::PredicateGraph& stream_graph,
                             const predicate::PredicateGraph& sub_graph);

}  // namespace streamshare::matching

#endif  // STREAMSHARE_MATCHING_MATCH_PREDICATES_H_
