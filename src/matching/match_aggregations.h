// MatchAggregations (§3.3, "Window-based Aggregation"): decides whether an
// existing window-aggregate result stream can answer a new window-aggregate
// subscription. The checks, in the paper's order:
//
//   1. Compatible aggregation operators — equal, or the reused stream is an
//      avg (internally carried as sum/count, so it can also serve sum and
//      count subscriptions).
//   2. Same aggregated element over the same input data.
//   3. Identical pre-aggregation selection (stricter than plain selection
//      sharing: equality, not containment).
//   4. Result-filter compatibility: an unfiltered stream serves anyone; a
//      filtered stream only serves subscriptions whose filter is the same
//      or more restrictive — and, because filtered-out values cannot be
//      recovered, only with an identical window (no coarsening).
//   5. Window compatibility: same window type (and same ordered reference
//      element for time-based windows), Δ′ mod Δ = 0, Δ mod µ = 0,
//      µ′ mod µ = 0 (primed = new subscription).

#ifndef STREAMSHARE_MATCHING_MATCH_AGGREGATIONS_H_
#define STREAMSHARE_MATCHING_MATCH_AGGREGATIONS_H_

#include "properties/operators.h"

namespace streamshare::matching {

/// True if `divisor` evenly divides `value` (exact decimal arithmetic).
bool DecimalDivides(const Decimal& divisor, const Decimal& value);

/// Window compatibility alone (check 5): can values of `reused` windows be
/// recombined into `sub` windows?
bool WindowsCompatible(const properties::WindowSpec& reused,
                       const properties::WindowSpec& sub);

/// Aggregate-function compatibility alone (check 1).
bool AggregateFuncsCompatible(properties::AggregateFunc reused,
                              properties::AggregateFunc sub);

/// The full MatchAggregations test: true if the stream produced by
/// `reused` can be transformed into the result of `sub`.
bool MatchAggregations(const properties::AggregationOp& reused,
                       const properties::AggregationOp& sub);

}  // namespace streamshare::matching

#endif  // STREAMSHARE_MATCHING_MATCH_AGGREGATIONS_H_
