#include "matching/match_aggregations.h"

namespace streamshare::matching {

using properties::AggregateFunc;
using properties::AggregationOp;
using properties::WindowSpec;
using properties::WindowType;

bool DecimalDivides(const Decimal& divisor, const Decimal& value) {
  Decimal zero;
  if (divisor == zero) return false;
  int scale = std::max(divisor.scale(), value.scale());
  int64_t d = divisor.Rescaled(scale).unscaled();
  int64_t v = value.Rescaled(scale).unscaled();
  return v % d == 0;
}

bool WindowsCompatible(const WindowSpec& reused, const WindowSpec& sub) {
  if (reused.type != sub.type) return false;
  if (reused.type == WindowType::kDiff &&
      reused.reference != sub.reference) {
    return false;  // different ordered reference elements
  }
  // Identical windows share without any recombination; the divisibility
  // rules below only gate the Fig.-5 recombination of finer windows into
  // coarser ones.
  if (reused.size == sub.size && reused.step == sub.step) return true;
  // Δ′ mod Δ = 0: a fixed number of reused windows fits one new window.
  if (!DecimalDivides(reused.size, sub.size)) return false;
  // Δ mod µ = 0: non-overlapping reused windows tile the input.
  if (!DecimalDivides(reused.step, reused.size)) return false;
  // µ′ mod µ = 0: a reused value is available whenever a new one is due.
  if (!DecimalDivides(reused.step, sub.step)) return false;
  return true;
}

bool AggregateFuncsCompatible(AggregateFunc reused, AggregateFunc sub) {
  if (reused == sub) return true;
  // avg is carried as (sum, count) in the network (§3.3), so an avg stream
  // also answers sum and count subscriptions.
  return reused == AggregateFunc::kAvg &&
         (sub == AggregateFunc::kSum || sub == AggregateFunc::kCount);
}

bool MatchAggregations(const AggregationOp& reused,
                       const AggregationOp& sub) {
  // Check 1: compatible aggregation operators.
  if (!AggregateFuncsCompatible(reused.func, sub.func)) return false;

  // Check 2: same aggregated element. (Same input data is established by
  // Algorithm 2 before operators are compared.)
  if (reused.aggregated_element != sub.aggregated_element) return false;

  // Check 3: pre-aggregation selections must be identical — a reused
  // aggregate computed over a differently filtered input is a different
  // value, containment is not enough here.
  if (!reused.pre_selection_graph.EquivalentTo(sub.pre_selection_graph)) {
    return false;
  }

  // Check 4: result-filter compatibility.
  const bool reused_filtered = reused.result_filter_graph.edge_count() > 0;
  if (reused_filtered) {
    // Filtered values are gone; coarser windows would need them. Only an
    // identical window with a same-or-stricter filter can share. Filters
    // compare values of the same function, so the functions must be equal.
    if (reused.func != sub.func) return false;
    if (reused.window != sub.window) return false;
    if (!sub.result_filter_graph.Implies(reused.result_filter_graph)) {
      return false;
    }
    return true;
  }

  // Check 5: window compatibility.
  return WindowsCompatible(reused.window, sub.window);
}

}  // namespace streamshare::matching
