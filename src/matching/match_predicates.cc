#include "matching/match_predicates.h"

#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace streamshare::matching {

using predicate::PredicateGraph;

namespace {

/// ζ(x) ⇐ ζ(y): the atomic predicate of edge y (in the subscription graph)
/// implies that of edge x (in the stream graph). Requires the same
/// source/target element labels and an at-least-as-tight bound.
bool EdgeImplies(const PredicateGraph& stream_graph,
                 const PredicateGraph::Edge& x,
                 const PredicateGraph& sub_graph,
                 const PredicateGraph::Edge& y) {
  if (stream_graph.nodes()[x.source] != sub_graph.nodes()[y.source]) {
    return false;
  }
  if (stream_graph.nodes()[x.target] != sub_graph.nodes()[y.target]) {
    return false;
  }
  return y.bound.ImpliesBound(x.bound);
}

}  // namespace

bool MatchPredicatesEdgeLocal(const PredicateGraph& stream_graph,
                              const PredicateGraph& sub_graph) {
  static obs::Counter* calls =
      obs::MetricsRegistry::Default().GetCounter(
          "matching.predicates.edge_local");
  if (obs::Enabled()) calls->Add(1);
  obs::TraceSpan span(&obs::TraceRecorder::Default(),
                      "MatchPredicates.edge_local", "matching");
  const auto& nodes = stream_graph.nodes();
  for (size_t v = 0; v < nodes.size(); ++v) {
    std::vector<PredicateGraph::Edge> incident =
        stream_graph.EdgesConnectedTo(static_cast<int>(v));
    if (v != 0 && incident.empty()) continue;  // unconstrained variable
    // Line 4: find the equivalent node v′ (same element) in G′.
    std::optional<int> v_sub = sub_graph.FindNode(nodes[v]);
    if (!v_sub.has_value()) {
      if (incident.empty()) continue;  // nothing to imply
      return false;
    }
    std::vector<PredicateGraph::Edge> sub_incident =
        sub_graph.EdgesConnectedTo(*v_sub);
    // Lines 6–16: every incident edge x must be implied by some incident
    // edge y of the equivalent node.
    for (const PredicateGraph::Edge& x : incident) {
      bool matched = false;
      for (const PredicateGraph::Edge& y : sub_incident) {
        if (EdgeImplies(stream_graph, x, sub_graph, y)) {
          matched = true;
          break;
        }
      }
      if (!matched) return false;
    }
  }
  return true;
}

bool MatchPredicatesComplete(const PredicateGraph& stream_graph,
                             const PredicateGraph& sub_graph) {
  static obs::Counter* calls =
      obs::MetricsRegistry::Default().GetCounter(
          "matching.predicates.complete");
  if (obs::Enabled()) calls->Add(1);
  obs::TraceSpan span(&obs::TraceRecorder::Default(),
                      "MatchPredicates.complete", "matching");
  return sub_graph.Implies(stream_graph);
}

}  // namespace streamshare::matching
