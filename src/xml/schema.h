// Stream schema: the DTD-like element tree of a data stream's items,
// annotated with the statistics the paper's cost model consumes — average
// occurrence of each element per item and average serialized size of its
// text payload. The workload module instantiates the photon schema of the
// ROSAT example; the cost module reads occurrences and sizes from here.

#ifndef STREAMSHARE_XML_SCHEMA_H_
#define STREAMSHARE_XML_SCHEMA_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/path.h"
#include "xml/xml_node.h"

namespace streamshare::xml {

/// One element declaration in a stream schema.
struct SchemaElement {
  std::string name;
  /// Average number of occurrences of this element per occurrence of its
  /// parent (1.0 for required singleton children).
  double avg_occurrence = 1.0;
  /// Average size in bytes of the element's text payload (0 for pure
  /// structure elements).
  double avg_text_size = 0.0;
  std::vector<std::unique_ptr<SchemaElement>> children;

  SchemaElement(std::string n, double occ, double text_size)
      : name(std::move(n)),
        avg_occurrence(occ),
        avg_text_size(text_size) {}

  SchemaElement* AddChild(std::string child_name, double occ = 1.0,
                          double text_size = 0.0);
};

/// The schema of a data stream: the item element (e.g. <photon>) and its
/// element tree. The stream (root) element wrapping all items is implicit.
class StreamSchema {
 public:
  StreamSchema(std::string stream_name, std::string item_name);

  const std::string& stream_name() const { return stream_name_; }
  SchemaElement& item() { return *item_; }
  const SchemaElement& item() const { return *item_; }

  /// Resolves a path relative to the item element; nullptr if the path
  /// does not exist in the schema.
  const SchemaElement* Resolve(const Path& path) const;

  /// True if `path` names a declared element.
  bool Contains(const Path& path) const { return Resolve(path) != nullptr; }

  /// Average occurrences per item of the element at `path` (product of
  /// occurrence factors along the path); 0 if the path is undeclared.
  double OccurrencePerItem(const Path& path) const;

  /// Average serialized size in bytes of one instance of the element at
  /// `path`, counting its tags, its text, and all its descendants
  /// (weighted by their occurrences). 0 if the path is undeclared.
  double AvgSubtreeSize(const Path& path) const;

  /// Average serialized size in bytes of one whole item.
  double AvgItemSize() const;

  /// All leaf paths (elements without children), relative to the item.
  std::vector<Path> LeafPaths() const;

  /// All element paths (internal and leaf), relative to the item, in
  /// pre-order; the empty path (the item itself) is not included.
  std::vector<Path> AllPaths() const;

 private:
  std::string stream_name_;
  std::unique_ptr<SchemaElement> item_;
};

}  // namespace streamshare::xml

#endif  // STREAMSHARE_XML_SCHEMA_H_
