// A lightweight element-only XML tree. The paper restricts itself to
// element-structured XML (attributes are assumed converted to elements), so
// a node is an element with a tag name, an optional text payload, and child
// elements. One stream item (e.g. one <photon>) is one tree.

#ifndef STREAMSHARE_XML_XML_NODE_H_
#define STREAMSHARE_XML_XML_NODE_H_

#include <atomic>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace streamshare::xml {

/// An XML element. Owns its children. Mixed content is supported in the
/// limited form the system needs: a node has a text payload (concatenation
/// of its direct character data) and a list of child elements.
class XmlNode {
 public:
  explicit XmlNode(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) {
    text_ = std::move(text);
    cached_size_.store(0, std::memory_order_relaxed);
  }
  void append_text(std::string_view text) {
    text_.append(text);
    cached_size_.store(0, std::memory_order_relaxed);
  }

  const std::vector<std::unique_ptr<XmlNode>>& children() const {
    return children_;
  }

  /// Pre-sizes the child vector (decoders know the child count up front).
  void ReserveChildren(size_t n) { children_.reserve(n); }

  /// Appends a child element and returns a pointer to it (owned by this).
  XmlNode* AddChild(std::string name);
  /// Appends an already-built subtree.
  XmlNode* AddChild(std::unique_ptr<XmlNode> child);
  /// Convenience: appends <name>text</name>.
  XmlNode* AddLeaf(std::string name, std::string text);

  /// First child element with the given tag name, or nullptr.
  const XmlNode* FirstChild(std::string_view name) const;
  /// All child elements with the given tag name.
  std::vector<const XmlNode*> Children(std::string_view name) const;

  /// True if the node has no child elements (its value is its text).
  bool IsLeaf() const { return children_.empty(); }

  /// Deep copy of this subtree.
  std::unique_ptr<XmlNode> Clone() const;

  /// Structural equality: same name, same text, same children in order.
  bool Equals(const XmlNode& other) const;

  /// Total serialized size in bytes (tags + text), matching XmlWriter's
  /// compact output. Used by the cost model and traffic accounting.
  /// Memoized on first call: stream items are immutable once flowing, and
  /// every link and sink they cross re-asks for the size. Mutating this
  /// node invalidates its own cache but not an ancestor's — compute sizes
  /// only once a subtree is fully built (items are const after MakeItem).
  size_t SerializedSize() const;

  /// Tag-overhead bytes of one element in XmlWriter's compact form:
  /// `<name/>` when empty, `<name>…</name>` otherwise. The schema-based
  /// size estimators (cost model) delegate here so estimate and
  /// serialization agree on what a byte is.
  static size_t TagBytes(size_t name_size, bool empty) {
    return empty ? name_size + 3 : 2 * name_size + 5;
  }
  /// Size of `text` after escaping &, <, > as entities, matching
  /// XmlWriter's output.
  static size_t EscapedTextBytes(std::string_view text);

 private:
  std::string name_;
  std::string text_;
  std::vector<std::unique_ptr<XmlNode>> children_;
  /// 0 = not yet computed (a node never serializes to 0 bytes). Atomic so
  /// concurrent first calls from parallel workers are a benign double
  /// compute, not a data race.
  mutable std::atomic<size_t> cached_size_{0};
};

}  // namespace streamshare::xml

#endif  // STREAMSHARE_XML_XML_NODE_H_
