#include "xml/xml_parser.h"

#include <cctype>

namespace streamshare::xml {

namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) ||
         std::isdigit(static_cast<unsigned char>(c)) || c == '-' || c == '.';
}

bool IsWhitespaceOnly(std::string_view text) {
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

// Decodes the five predefined entities plus numeric character references
// (decimal and hex, ASCII range only — sufficient for this system's data).
Result<std::string> DecodeEntities(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  size_t i = 0;
  while (i < raw.size()) {
    char c = raw[i];
    if (c != '&') {
      out += c;
      ++i;
      continue;
    }
    size_t semi = raw.find(';', i + 1);
    if (semi == std::string_view::npos) {
      return Status::ParseError("unterminated entity reference");
    }
    std::string_view entity = raw.substr(i + 1, semi - i - 1);
    if (entity == "amp") {
      out += '&';
    } else if (entity == "lt") {
      out += '<';
    } else if (entity == "gt") {
      out += '>';
    } else if (entity == "quot") {
      out += '"';
    } else if (entity == "apos") {
      out += '\'';
    } else if (!entity.empty() && entity[0] == '#') {
      int base = 10;
      std::string_view digits = entity.substr(1);
      if (!digits.empty() && (digits[0] == 'x' || digits[0] == 'X')) {
        base = 16;
        digits = digits.substr(1);
      }
      if (digits.empty()) {
        return Status::ParseError("empty character reference");
      }
      long code = 0;
      for (char d : digits) {
        int v;
        if (d >= '0' && d <= '9') {
          v = d - '0';
        } else if (base == 16 && d >= 'a' && d <= 'f') {
          v = d - 'a' + 10;
        } else if (base == 16 && d >= 'A' && d <= 'F') {
          v = d - 'A' + 10;
        } else {
          return Status::ParseError("invalid character reference '&" +
                                    std::string(entity) + ";'");
        }
        code = code * base + v;
        if (code > 0x10FFFF) {
          return Status::ParseError("character reference out of range");
        }
      }
      if (code > 0x7F) {
        return Status::ParseError(
            "non-ASCII character references are not supported");
      }
      out += static_cast<char>(code);
    } else {
      return Status::ParseError("unknown entity reference '&" +
                                std::string(entity) + ";'");
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace

void XmlPullParser::CompactBuffer() {
  if (pos_ == 0) return;
  buffer_.erase(0, pos_);
  pos_ = 0;
}

Result<XmlEvent> XmlPullParser::Next() {
  if (pending_end_) {
    pending_end_ = false;
    std::string name = open_elements_.back();
    open_elements_.pop_back();
    --depth_;
    return XmlEvent{XmlEvent::Kind::kEndElement, std::move(name), {}};
  }
  while (true) {
    // Character data runs until the next '<'.
    if (pos_ < buffer_.size() && buffer_[pos_] != '<') {
      size_t lt = buffer_.find('<', pos_);
      if (lt == std::string::npos) {
        if (!finalized_) {
          return XmlEvent{XmlEvent::Kind::kNeedMoreData, "", {}};
        }
        lt = buffer_.size();
      }
      std::string_view raw(buffer_.data() + pos_, lt - pos_);
      // A trailing '&' may belong to an entity split across chunks.
      size_t last_amp = raw.rfind('&');
      if (!finalized_ && last_amp != std::string_view::npos &&
          raw.find(';', last_amp) == std::string_view::npos) {
        return XmlEvent{XmlEvent::Kind::kNeedMoreData, "", {}};
      }
      pos_ = lt;
      if (!IsWhitespaceOnly(raw)) {
        if (depth_ == 0) {
          return Status::ParseError("character data outside root element");
        }
        SS_ASSIGN_OR_RETURN(std::string text, DecodeEntities(raw));
        return XmlEvent{XmlEvent::Kind::kText, std::move(text), {}};
      }
      continue;  // skip inter-element whitespace
    }

    if (pos_ >= buffer_.size()) {
      if (!finalized_) {
        return XmlEvent{XmlEvent::Kind::kNeedMoreData, "", {}};
      }
      if (depth_ != 0) {
        return Status::ParseError("unexpected end of input inside element <" +
                                  open_elements_.back() + ">");
      }
      if (!seen_root_) {
        return Status::ParseError("empty document: no root element");
      }
      return XmlEvent{XmlEvent::Kind::kEndOfDocument, "", {}};
    }

    XmlEvent event;
    SS_ASSIGN_OR_RETURN(bool have_event, ParseMarkup(&event));
    if (!have_event) {
      if (event.kind == XmlEvent::Kind::kNeedMoreData) return event;
      continue;  // consumed a comment / PI / DOCTYPE; keep scanning
    }
    return event;
  }
}

// Precondition: buffer_[pos_] == '<'. On success either fills *event and
// returns true, or consumes ignorable markup and returns false. If the
// construct is incomplete in the buffer and input is not finalized, leaves
// pos_ unchanged, sets event->kind = kNeedMoreData, and returns false.
Result<bool> XmlPullParser::ParseMarkup(XmlEvent* event) {
  const size_t start = pos_;
  auto need_more = [&]() -> Result<bool> {
    if (!finalized_) {
      pos_ = start;
      event->kind = XmlEvent::Kind::kNeedMoreData;
      return false;
    }
    return Status::ParseError("unexpected end of input in markup");
  };

  // The buffer may end inside one of the special markup prefixes; wait for
  // enough bytes to disambiguate before classifying.
  auto ends_in_prefix_of = [&](std::string_view marker) {
    size_t avail = buffer_.size() - pos_;
    if (avail >= marker.size()) return false;
    return buffer_.compare(pos_, avail, marker.data(), avail) == 0;
  };
  if (!finalized_ &&
      (ends_in_prefix_of("<?") || ends_in_prefix_of("<!--") ||
       ends_in_prefix_of("<![CDATA[") || ends_in_prefix_of("<!DOCTYPE") ||
       ends_in_prefix_of("</"))) {
    return need_more();
  }

  // Processing instruction / XML declaration.
  if (buffer_.compare(pos_, 2, "<?") == 0) {
    size_t end = buffer_.find("?>", pos_ + 2);
    if (end == std::string::npos) return need_more();
    pos_ = end + 2;
    return false;
  }
  // Comment.
  if (buffer_.compare(pos_, 4, "<!--") == 0) {
    size_t end = buffer_.find("-->", pos_ + 4);
    if (end == std::string::npos) return need_more();
    pos_ = end + 3;
    return false;
  }
  // CDATA section: raw character data.
  if (buffer_.compare(pos_, 9, "<![CDATA[") == 0) {
    size_t end = buffer_.find("]]>", pos_ + 9);
    if (end == std::string::npos) return need_more();
    if (depth_ == 0) {
      return Status::ParseError("CDATA outside root element");
    }
    event->kind = XmlEvent::Kind::kText;
    event->name_or_text = buffer_.substr(pos_ + 9, end - pos_ - 9);
    pos_ = end + 3;
    return true;
  }
  // DOCTYPE (skipped; an optional internal subset in [] is tolerated).
  if (buffer_.compare(pos_, 9, "<!DOCTYPE") == 0) {
    int bracket_depth = 0;
    for (size_t i = pos_ + 9; i < buffer_.size(); ++i) {
      char c = buffer_[i];
      if (c == '[') ++bracket_depth;
      if (c == ']') --bracket_depth;
      if (c == '>' && bracket_depth == 0) {
        pos_ = i + 1;
        return false;
      }
    }
    return need_more();
  }
  // End tag.
  if (buffer_.compare(pos_, 2, "</") == 0) {
    size_t i = pos_ + 2;
    size_t name_start = i;
    while (i < buffer_.size() && IsNameChar(buffer_[i])) ++i;
    while (i < buffer_.size() &&
           std::isspace(static_cast<unsigned char>(buffer_[i]))) {
      ++i;
    }
    if (i >= buffer_.size()) return need_more();
    if (buffer_[i] != '>') {
      return Status::ParseError("malformed end tag");
    }
    std::string name = buffer_.substr(name_start, i - name_start);
    name = name.substr(0, name.find_first_of(" \t\r\n"));
    if (open_elements_.empty()) {
      return Status::ParseError("end tag </" + name +
                                "> with no open element");
    }
    if (open_elements_.back() != name) {
      return Status::ParseError("mismatched end tag: expected </" +
                                open_elements_.back() + ">, found </" +
                                name + ">");
    }
    open_elements_.pop_back();
    --depth_;
    pos_ = i + 1;
    event->kind = XmlEvent::Kind::kEndElement;
    event->name_or_text = std::move(name);
    return true;
  }

  // Start tag (possibly self-closing).
  size_t i = pos_ + 1;
  if (i >= buffer_.size()) return need_more();
  if (!IsNameStartChar(buffer_[i])) {
    return Status::ParseError("invalid character after '<'");
  }
  size_t name_start = i;
  while (i < buffer_.size() && IsNameChar(buffer_[i])) ++i;
  if (i >= buffer_.size()) return need_more();
  std::string name = buffer_.substr(name_start, i - name_start);

  std::vector<std::pair<std::string, std::string>> attributes;
  bool self_closing = false;
  while (true) {
    while (i < buffer_.size() &&
           std::isspace(static_cast<unsigned char>(buffer_[i]))) {
      ++i;
    }
    if (i >= buffer_.size()) return need_more();
    if (buffer_[i] == '>') {
      ++i;
      break;
    }
    if (buffer_[i] == '/') {
      if (i + 1 >= buffer_.size()) return need_more();
      if (buffer_[i + 1] != '>') {
        return Status::ParseError("'/' not followed by '>' in tag <" +
                                  name + ">");
      }
      self_closing = true;
      i += 2;
      break;
    }
    // Attribute: name = "value" | 'value'.
    if (!IsNameStartChar(buffer_[i])) {
      return Status::ParseError("malformed attribute in tag <" + name +
                                ">");
    }
    size_t attr_start = i;
    while (i < buffer_.size() && IsNameChar(buffer_[i])) ++i;
    if (i >= buffer_.size()) return need_more();
    std::string attr_name = buffer_.substr(attr_start, i - attr_start);
    while (i < buffer_.size() &&
           std::isspace(static_cast<unsigned char>(buffer_[i]))) {
      ++i;
    }
    if (i >= buffer_.size()) return need_more();
    if (buffer_[i] != '=') {
      return Status::ParseError("attribute '" + attr_name +
                                "' missing '='");
    }
    ++i;
    while (i < buffer_.size() &&
           std::isspace(static_cast<unsigned char>(buffer_[i]))) {
      ++i;
    }
    if (i >= buffer_.size()) return need_more();
    char quote = buffer_[i];
    if (quote != '"' && quote != '\'') {
      return Status::ParseError("attribute value for '" + attr_name +
                                "' is not quoted");
    }
    size_t value_start = i + 1;
    size_t value_end = buffer_.find(quote, value_start);
    if (value_end == std::string::npos) return need_more();
    SS_ASSIGN_OR_RETURN(
        std::string value,
        DecodeEntities(std::string_view(buffer_.data() + value_start,
                                        value_end - value_start)));
    attributes.emplace_back(std::move(attr_name), std::move(value));
    i = value_end + 1;
  }

  if (depth_ == 0 && seen_root_) {
    return Status::ParseError("multiple root elements (second root <" +
                              name + ">)");
  }
  seen_root_ = true;
  pos_ = i;
  open_elements_.push_back(name);
  ++depth_;
  // A self-closing tag is surfaced as a start event followed by a
  // synthesized end event on the next call.
  pending_end_ = self_closing;
  event->kind = XmlEvent::Kind::kStartElement;
  event->name_or_text = std::move(name);
  event->attributes = std::move(attributes);
  return true;
}

Result<std::unique_ptr<XmlNode>> ParseDocument(std::string_view input) {
  XmlPullParser parser(input);
  std::vector<XmlNode*> stack;
  std::unique_ptr<XmlNode> root;
  while (true) {
    SS_ASSIGN_OR_RETURN(XmlEvent event, parser.Next());
    switch (event.kind) {
      case XmlEvent::Kind::kStartElement: {
        XmlNode* node;
        if (stack.empty()) {
          root = std::make_unique<XmlNode>(event.name_or_text);
          node = root.get();
        } else {
          node = stack.back()->AddChild(event.name_or_text);
        }
        for (auto& [attr_name, attr_value] : event.attributes) {
          node->AddLeaf(attr_name, std::move(attr_value));
        }
        stack.push_back(node);
        break;
      }
      case XmlEvent::Kind::kEndElement:
        stack.pop_back();
        break;
      case XmlEvent::Kind::kText:
        stack.back()->append_text(event.name_or_text);
        break;
      case XmlEvent::Kind::kNeedMoreData:
        return Status::Internal("finalized parser reported NeedMoreData");
      case XmlEvent::Kind::kEndOfDocument:
        return root;
    }
  }
}

Result<std::unique_ptr<XmlNode>> XmlItemReader::NextItem() {
  if (at_end_) return std::unique_ptr<XmlNode>();
  while (true) {
    SS_ASSIGN_OR_RETURN(XmlEvent event, parser_.Next());
    switch (event.kind) {
      case XmlEvent::Kind::kStartElement: {
        if (stream_name_.empty()) {
          stream_name_ = event.name_or_text;
          break;  // the root itself is not an item
        }
        XmlNode* node;
        if (stack_.empty()) {
          item_ = std::make_unique<XmlNode>(event.name_or_text);
          node = item_.get();
        } else {
          node = stack_.back()->AddChild(event.name_or_text);
        }
        for (auto& [attr_name, attr_value] : event.attributes) {
          node->AddLeaf(attr_name, std::move(attr_value));
        }
        stack_.push_back(node);
        break;
      }
      case XmlEvent::Kind::kEndElement:
        if (stack_.empty()) {
          // Root closed.
          at_end_ = true;
          return std::unique_ptr<XmlNode>();
        }
        stack_.pop_back();
        if (stack_.empty()) {
          parser_.CompactBuffer();
          return std::move(item_);
        }
        break;
      case XmlEvent::Kind::kText:
        if (!stack_.empty()) stack_.back()->append_text(event.name_or_text);
        break;
      case XmlEvent::Kind::kNeedMoreData:
        // Partial item state (item_ / stack_) survives in members; the
        // caller feeds more input and retries.
        return std::unique_ptr<XmlNode>();
      case XmlEvent::Kind::kEndOfDocument:
        at_end_ = true;
        return std::unique_ptr<XmlNode>();
    }
  }
}

}  // namespace streamshare::xml
