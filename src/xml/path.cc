#include "xml/path.h"

#include <ostream>

#include "common/string_util.h"

namespace streamshare::xml {

Result<Path> Path::Parse(std::string_view text) {
  if (text.empty()) return Path();
  std::vector<std::string> steps = Split(text, '/');
  for (const std::string& step : steps) {
    if (step.empty()) {
      return Status::ParseError("empty step in path '" + std::string(text) +
                                "' (descendant axis is not supported)");
    }
    if (step == "*") {
      return Status::ParseError("wildcard step in path '" +
                                std::string(text) + "'");
    }
    if (step.find('[') != std::string::npos) {
      return Status::ParseError(
          "condition inside path '" + std::string(text) +
          "' must be handled at the WXQuery level");
    }
  }
  return Path(std::move(steps));
}

std::string Path::ToString() const { return Join(steps_, "/"); }

std::vector<const XmlNode*> Path::Evaluate(const XmlNode& context) const {
  std::vector<const XmlNode*> current = {&context};
  for (const std::string& step : steps_) {
    std::vector<const XmlNode*> next;
    for (const XmlNode* node : current) {
      for (const auto& child : node->children()) {
        if (child->name() == step) next.push_back(child.get());
      }
    }
    if (next.empty()) return {};
    current = std::move(next);
  }
  return current;
}

const XmlNode* Path::EvaluateFirst(const XmlNode& context) const {
  const XmlNode* node = &context;
  for (const std::string& step : steps_) {
    node = node->FirstChild(step);
    if (node == nullptr) return nullptr;
  }
  return node;
}

bool Path::IsPrefixOf(const Path& other) const {
  if (steps_.size() > other.steps_.size()) return false;
  for (size_t i = 0; i < steps_.size(); ++i) {
    if (steps_[i] != other.steps_[i]) return false;
  }
  return true;
}

Path Path::Concat(const Path& suffix) const {
  std::vector<std::string> steps = steps_;
  steps.insert(steps.end(), suffix.steps_.begin(), suffix.steps_.end());
  return Path(std::move(steps));
}

std::ostream& operator<<(std::ostream& os, const Path& path) {
  return os << path.ToString();
}

}  // namespace streamshare::xml
