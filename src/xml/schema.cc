#include "xml/schema.h"

#include "xml/xml_node.h"

namespace streamshare::xml {

SchemaElement* SchemaElement::AddChild(std::string child_name, double occ,
                                       double text_size) {
  children.push_back(std::make_unique<SchemaElement>(std::move(child_name),
                                                     occ, text_size));
  return children.back().get();
}

StreamSchema::StreamSchema(std::string stream_name, std::string item_name)
    : stream_name_(std::move(stream_name)),
      item_(std::make_unique<SchemaElement>(std::move(item_name), 1.0,
                                            0.0)) {}

const SchemaElement* StreamSchema::Resolve(const Path& path) const {
  const SchemaElement* current = item_.get();
  for (const std::string& step : path.steps()) {
    const SchemaElement* next = nullptr;
    for (const auto& child : current->children) {
      if (child->name == step) {
        next = child.get();
        break;
      }
    }
    if (next == nullptr) return nullptr;
    current = next;
  }
  return current;
}

double StreamSchema::OccurrencePerItem(const Path& path) const {
  const SchemaElement* current = item_.get();
  double occurrence = 1.0;
  for (const std::string& step : path.steps()) {
    const SchemaElement* next = nullptr;
    for (const auto& child : current->children) {
      if (child->name == step) {
        next = child.get();
        break;
      }
    }
    if (next == nullptr) return 0.0;
    occurrence *= next->avg_occurrence;
    current = next;
  }
  return occurrence;
}

namespace {

double SubtreeSize(const SchemaElement& element) {
  // Delegates the tag accounting to XmlNode::SerializedSize so estimate
  // and serialization agree byte for byte. We use the non-empty form
  // since generated data always carries text at leaves.
  double size = static_cast<double>(
      XmlNode::TagBytes(element.name.size(), /*empty=*/false));
  size += element.avg_text_size;
  for (const auto& child : element.children) {
    size += child->avg_occurrence * SubtreeSize(*child);
  }
  return size;
}

void CollectPaths(const SchemaElement& element, std::vector<std::string>* prefix,
                  bool leaves_only, std::vector<Path>* out) {
  for (const auto& child : element.children) {
    prefix->push_back(child->name);
    if (!leaves_only || child->children.empty()) {
      out->push_back(Path(*prefix));
    }
    CollectPaths(*child, prefix, leaves_only, out);
    prefix->pop_back();
  }
}

}  // namespace

double StreamSchema::AvgSubtreeSize(const Path& path) const {
  const SchemaElement* element = Resolve(path);
  if (element == nullptr) return 0.0;
  return SubtreeSize(*element);
}

double StreamSchema::AvgItemSize() const { return SubtreeSize(*item_); }

std::vector<Path> StreamSchema::LeafPaths() const {
  std::vector<Path> out;
  std::vector<std::string> prefix;
  CollectPaths(*item_, &prefix, /*leaves_only=*/true, &out);
  return out;
}

std::vector<Path> StreamSchema::AllPaths() const {
  std::vector<Path> out;
  std::vector<std::string> prefix;
  CollectPaths(*item_, &prefix, /*leaves_only=*/false, &out);
  return out;
}

}  // namespace streamshare::xml
