#include "xml/xml_node.h"

namespace streamshare::xml {

size_t XmlNode::EscapedTextBytes(std::string_view text) {
  size_t size = 0;
  for (char c : text) {
    switch (c) {
      case '&':
        size += 5;  // &amp;
        break;
      case '<':
        size += 4;  // &lt;
        break;
      case '>':
        size += 4;  // &gt;
        break;
      default:
        size += 1;
    }
  }
  return size;
}

XmlNode* XmlNode::AddChild(std::string name) {
  children_.push_back(std::make_unique<XmlNode>(std::move(name)));
  cached_size_.store(0, std::memory_order_relaxed);
  return children_.back().get();
}

XmlNode* XmlNode::AddChild(std::unique_ptr<XmlNode> child) {
  children_.push_back(std::move(child));
  cached_size_.store(0, std::memory_order_relaxed);
  return children_.back().get();
}

XmlNode* XmlNode::AddLeaf(std::string name, std::string text) {
  XmlNode* child = AddChild(std::move(name));
  child->set_text(std::move(text));
  return child;
}

const XmlNode* XmlNode::FirstChild(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::vector<const XmlNode*> XmlNode::Children(std::string_view name) const {
  std::vector<const XmlNode*> out;
  for (const auto& child : children_) {
    if (child->name() == name) out.push_back(child.get());
  }
  return out;
}

std::unique_ptr<XmlNode> XmlNode::Clone() const {
  auto copy = std::make_unique<XmlNode>(name_);
  copy->text_ = text_;
  copy->children_.reserve(children_.size());
  for (const auto& child : children_) {
    copy->children_.push_back(child->Clone());
  }
  copy->cached_size_.store(cached_size_.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  return copy;
}

bool XmlNode::Equals(const XmlNode& other) const {
  if (name_ != other.name_ || text_ != other.text_ ||
      children_.size() != other.children_.size()) {
    return false;
  }
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

size_t XmlNode::SerializedSize() const {
  size_t cached = cached_size_.load(std::memory_order_relaxed);
  if (cached != 0) return cached;
  bool empty = children_.empty() && text_.empty();
  size_t size = TagBytes(name_.size(), empty);
  if (!empty) {
    size += EscapedTextBytes(text_);
    for (const auto& child : children_) {
      size += child->SerializedSize();
    }
  }
  cached_size_.store(size, std::memory_order_relaxed);
  return size;
}

}  // namespace streamshare::xml
