// Serialization of XmlNode trees back to XML text.

#ifndef STREAMSHARE_XML_XML_WRITER_H_
#define STREAMSHARE_XML_XML_WRITER_H_

#include <string>
#include <string_view>

#include "xml/xml_node.h"

namespace streamshare::xml {

/// Escapes &, <, > in character data.
std::string EscapeText(std::string_view text);

/// Serializes `node` compactly (no whitespace between tags). An empty
/// element is written as <name/>. XmlNode::SerializedSize() returns the
/// length of exactly this form.
std::string WriteCompact(const XmlNode& node);

/// Serializes `node` with newlines and two-space indentation, for human
/// consumption in examples and logs.
std::string WritePretty(const XmlNode& node);

}  // namespace streamshare::xml

#endif  // STREAMSHARE_XML_XML_WRITER_H_
