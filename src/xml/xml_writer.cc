#include "xml/xml_writer.h"

namespace streamshare::xml {

namespace {

void WriteCompactTo(const XmlNode& node, std::string* out) {
  if (node.children().empty() && node.text().empty()) {
    out->append("<").append(node.name()).append("/>");
    return;
  }
  out->append("<").append(node.name()).append(">");
  out->append(EscapeText(node.text()));
  for (const auto& child : node.children()) {
    WriteCompactTo(*child, out);
  }
  out->append("</").append(node.name()).append(">");
}

void WritePrettyTo(const XmlNode& node, int depth, std::string* out) {
  out->append(static_cast<size_t>(depth) * 2, ' ');
  if (node.children().empty() && node.text().empty()) {
    out->append("<").append(node.name()).append("/>\n");
    return;
  }
  out->append("<").append(node.name()).append(">");
  if (node.children().empty()) {
    out->append(EscapeText(node.text()));
    out->append("</").append(node.name()).append(">\n");
    return;
  }
  out->append("\n");
  if (!node.text().empty()) {
    out->append(static_cast<size_t>(depth + 1) * 2, ' ');
    out->append(EscapeText(node.text())).append("\n");
  }
  for (const auto& child : node.children()) {
    WritePrettyTo(*child, depth + 1, out);
  }
  out->append(static_cast<size_t>(depth) * 2, ' ');
  out->append("</").append(node.name()).append(">\n");
}

}  // namespace

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string WriteCompact(const XmlNode& node) {
  std::string out;
  out.reserve(node.SerializedSize());
  WriteCompactTo(node, &out);
  return out;
}

std::string WritePretty(const XmlNode& node) {
  std::string out;
  WritePrettyTo(node, 0, &out);
  return out;
}

}  // namespace streamshare::xml
