// Relative child-axis paths (the paper's π): a '/'-separated list of tag
// names with no wildcards, conditions, or other axes. Conditions inside
// paths (the paper's π̄) are handled at the WXQuery level; by the time a
// path reaches the XML layer it is pure.

#ifndef STREAMSHARE_XML_PATH_H_
#define STREAMSHARE_XML_PATH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/xml_node.h"

namespace streamshare::xml {

/// An immutable relative path of child steps, e.g. "coord/cel/ra".
class Path {
 public:
  /// The empty path (resolves to the context node itself).
  Path() = default;

  explicit Path(std::vector<std::string> steps) : steps_(std::move(steps)) {}

  /// Parses "a/b/c". Rejects empty steps ("a//b"), wildcards, descendant
  /// axes, and embedded conditions.
  static Result<Path> Parse(std::string_view text);

  const std::vector<std::string>& steps() const { return steps_; }
  bool empty() const { return steps_.empty(); }
  size_t size() const { return steps_.size(); }

  /// "a/b/c" form.
  std::string ToString() const;

  /// All nodes reached from `context` by following the steps (child axis,
  /// document order).
  std::vector<const XmlNode*> Evaluate(const XmlNode& context) const;

  /// The first node reached, or nullptr if the path selects nothing.
  const XmlNode* EvaluateFirst(const XmlNode& context) const;

  /// True if this path is a prefix of (or equal to) `other`.
  bool IsPrefixOf(const Path& other) const;

  /// Concatenation: this path followed by `suffix`.
  Path Concat(const Path& suffix) const;

  bool operator==(const Path& other) const { return steps_ == other.steps_; }
  bool operator<(const Path& other) const { return steps_ < other.steps_; }

 private:
  std::vector<std::string> steps_;
};

std::ostream& operator<<(std::ostream& os, const Path& path);

}  // namespace streamshare::xml

#endif  // STREAMSHARE_XML_PATH_H_
