// Streaming XML parsing. XmlPullParser is an incremental event parser that
// can be fed input in arbitrary chunks (the shape a network transport
// delivers); ParseDocument builds a full XmlNode tree from a complete
// document. The dialect is the element-centric subset the paper uses:
// elements, character data, comments, processing instructions, a DOCTYPE
// prologue, and the five predefined plus numeric character entities.
// Attributes are accepted and surfaced on start-element events; the DOM
// builder converts each into a leading child element, per the paper's
// remark that attributes can always be converted into elements.

#ifndef STREAMSHARE_XML_XML_PARSER_H_
#define STREAMSHARE_XML_XML_PARSER_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "xml/xml_node.h"

namespace streamshare::xml {

/// One parse event.
struct XmlEvent {
  enum class Kind {
    kStartElement,
    kEndElement,
    kText,
    kNeedMoreData,    // buffer exhausted mid-construct; call Feed() first
    kEndOfDocument,   // root element closed (or finalized empty input)
  };

  Kind kind;
  /// Element name for start/end events; decoded character data for kText.
  std::string name_or_text;
  /// Attribute name/value pairs for kStartElement, in document order.
  std::vector<std::pair<std::string, std::string>> attributes;
};

/// Incremental event-based parser. Feed() appends raw bytes; Next() returns
/// the next complete event or kNeedMoreData if the buffered input ends in
/// the middle of a construct (the parse position is then unchanged, so the
/// caller can Feed() and retry). Finalize() declares end of input, after
/// which a dangling construct is a parse error.
class XmlPullParser {
 public:
  XmlPullParser() = default;
  /// Convenience: construct over a complete document.
  explicit XmlPullParser(std::string_view input) {
    Feed(input);
    Finalize();
  }

  /// Appends raw input bytes.
  void Feed(std::string_view chunk) { buffer_.append(chunk); }
  /// Declares that no more input will arrive.
  void Finalize() { finalized_ = true; }

  /// Parses the next event. Whitespace-only character data between elements
  /// is suppressed. Returns a parse error on malformed input, including
  /// mismatched end tags.
  Result<XmlEvent> Next();

  /// Nesting depth after the last returned event (root start => 1).
  int depth() const { return depth_; }

  /// Discards consumed input from the internal buffer. Call periodically in
  /// long-running streams to bound memory.
  void CompactBuffer();

 private:
  // Either consumes input and fills *event (returning true), consumes
  // ignorable markup (returning false), or — when the buffered input ends
  // mid-construct and input is not finalized — restores pos_ and reports
  // kNeedMoreData via *event (returning false).
  Result<bool> ParseMarkup(XmlEvent* event);

  std::string buffer_;
  size_t pos_ = 0;
  bool finalized_ = false;
  bool seen_root_ = false;
  // Set by a self-closing tag: the next Next() emits the end event.
  bool pending_end_ = false;
  int depth_ = 0;
  std::vector<std::string> open_elements_;
};

/// Parses a complete XML document into a tree. Attributes become leading
/// child leaf elements.
Result<std::unique_ptr<XmlNode>> ParseDocument(std::string_view input);

/// Reads stream items: given a document whose root is the stream element
/// (e.g. <photons>), yields each direct child element (each <photon>) as a
/// complete tree. Supports incremental feeding for transport use.
class XmlItemReader {
 public:
  XmlItemReader() = default;
  explicit XmlItemReader(std::string_view input) {
    parser_.Feed(input);
    parser_.Finalize();
  }

  void Feed(std::string_view chunk) { parser_.Feed(chunk); }
  void Finalize() { parser_.Finalize(); }

  /// Returns the next complete item, nullptr if no complete item is
  /// buffered yet (call Feed and retry) or the stream has ended. Use
  /// AtEnd() to distinguish the two nullptr cases.
  Result<std::unique_ptr<XmlNode>> NextItem();

  /// True once the root element has been closed.
  bool AtEnd() const { return at_end_; }

  /// The stream (root) element name; empty until the root start tag has
  /// been consumed.
  const std::string& stream_name() const { return stream_name_; }

 private:
  XmlPullParser parser_;
  std::string stream_name_;
  bool at_end_ = false;
  // Partial parse state of the item under construction; preserved across
  // NextItem() calls so feeding may be chunked at arbitrary byte
  // boundaries.
  std::unique_ptr<XmlNode> item_;
  std::vector<XmlNode*> stack_;
};

}  // namespace streamshare::xml

#endif  // STREAMSHARE_XML_XML_PARSER_H_
