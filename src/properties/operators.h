// Operator descriptors stored inside properties (§3.1). These describe how
// an input stream was (or would be) transformed — they are metadata for
// matching and costing, not executable operators (the executable versions
// live in src/engine/). Selection predicates are kept both as the original
// conjunction (for execution and display) and as their minimized predicate
// graph (for matching).

#ifndef STREAMSHARE_PROPERTIES_OPERATORS_H_
#define STREAMSHARE_PROPERTIES_OPERATORS_H_

#include <string>
#include <variant>
#include <vector>

#include "predicate/atomic.h"
#include "predicate/graph.h"
#include "properties/window.h"
#include "xml/path.h"

namespace streamshare::properties {

/// The lhs path predicate graphs use for the aggregate result value in a
/// result filter (a reserved name that cannot collide with element paths).
xml::Path AggregateValuePath();

/// Selection σ: keeps items satisfying a conjunctive predicate.
struct SelectionOp {
  std::vector<predicate::AtomicPredicate> predicates;
  predicate::PredicateGraph graph;

  /// Builds the descriptor, constructing and minimizing the graph. Fails
  /// with kUnsatisfiable if the conjunction admits no item (the paper
  /// rejects such subscriptions at registration).
  static Result<SelectionOp> Create(
      std::vector<predicate::AtomicPredicate> predicates);

  std::string ToString() const;
  bool operator==(const SelectionOp& other) const = default;
};

/// Projection Π: the paper distinguishes elements merely referenced by the
/// query (needed to evaluate it) from elements actually returned in the
/// result stream (marked with bullets in Fig. 3). For a stream to be
/// reusable, its *output* set must cover the new query's *referenced* set.
struct ProjectionOp {
  /// R′: every element the query touches (selection inputs + outputs).
  std::vector<xml::Path> referenced;
  /// R ⊆ referenced: elements present in the result stream.
  std::vector<xml::Path> output;

  std::string ToString() const;
  bool operator==(const ProjectionOp& other) const = default;
};

enum class AggregateFunc { kMin, kMax, kSum, kCount, kAvg };

std::string_view AggregateFuncToString(AggregateFunc func);

/// Whether the function is distributive (min/max/sum/count) or algebraic
/// (avg); the paper handles both, excluding holistic aggregates.
bool IsDistributive(AggregateFunc func);

/// Window-based aggregation Φ over a data window.
struct AggregationOp {
  AggregateFunc func = AggregateFunc::kAvg;
  /// The aggregated element, e.g. "en" in avg($w/en).
  xml::Path aggregated_element;
  WindowSpec window;
  /// Selection applied to the stream before windowing (path conditions of
  /// the for clause). Aggregate sharing requires it to be *identical* in
  /// both subscriptions (§3.3), so we keep the graph for the equivalence
  /// check.
  std::vector<predicate::AtomicPredicate> pre_selection;
  predicate::PredicateGraph pre_selection_graph;
  /// Filter on the aggregate value (e.g. $a >= 1.3 in Q4); predicates use
  /// AggregateValuePath() as their lhs.
  std::vector<predicate::AtomicPredicate> result_filter;
  predicate::PredicateGraph result_filter_graph;

  static Result<AggregationOp> Create(
      AggregateFunc func, xml::Path aggregated_element, WindowSpec window,
      std::vector<predicate::AtomicPredicate> pre_selection = {},
      std::vector<predicate::AtomicPredicate> result_filter = {});

  std::string ToString() const;
  bool operator==(const AggregationOp& other) const = default;
};

/// An opaque user-defined operator: shareable only when deterministic and
/// invoked with an identical parameter vector (§3.3, case 4).
struct UserDefinedOp {
  std::string name;
  std::vector<std::string> params;

  std::string ToString() const;
  bool operator==(const UserDefinedOp& other) const = default;
};

/// Any operator a properties entry can carry.
using Operator =
    std::variant<SelectionOp, ProjectionOp, AggregationOp, UserDefinedOp>;

/// Coarse operator kind, used by Algorithm 2's o = o′ comparison.
enum class OperatorKind { kSelection, kProjection, kAggregation, kUserDefined };

OperatorKind KindOf(const Operator& op);
std::string OperatorToString(const Operator& op);

}  // namespace streamshare::properties

#endif  // STREAMSHARE_PROPERTIES_OPERATORS_H_
