// The properties data structure (§3.1). Subscriptions and data streams are
// represented symmetrically: a set of original input data streams, and for
// each input the operators transforming it into the represented (result)
// stream. Properties serve two purposes — they state what a subscription
// needs from its inputs, and they describe what a produced stream contains
// relative to those inputs. Restructuring details of the return clause are
// deliberately absent (the paper performs restructuring in a final
// post-processing step whose output is never shared).

#ifndef STREAMSHARE_PROPERTIES_PROPERTIES_H_
#define STREAMSHARE_PROPERTIES_PROPERTIES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "properties/operators.h"

namespace streamshare::properties {

/// The transformation pipeline applied to one original input stream.
struct InputStreamProperties {
  /// Name of the original (registered) input data stream, e.g. "photons".
  std::string stream_name;
  /// Operators applied to that input, in application order.
  std::vector<Operator> operators;

  /// First operator of the given kind, or nullptr.
  const SelectionOp* selection() const;
  const ProjectionOp* projection() const;
  const AggregationOp* aggregation() const;

  std::string ToString() const;

  /// Exact structural equality (used by the candidate index to intern
  /// shapes; streams with equal entries are interchangeable for matching).
  bool operator==(const InputStreamProperties& other) const = default;
};

/// Properties of a subscription or a data stream.
class Properties {
 public:
  Properties() = default;

  /// Properties of an original, untransformed data stream: one input (the
  /// stream itself) and no operators.
  static Properties ForOriginalStream(std::string stream_name);

  /// Adds an input stream entry and returns a reference to it.
  InputStreamProperties& AddInput(std::string stream_name);

  const std::vector<InputStreamProperties>& inputs() const {
    return inputs_;
  }
  std::vector<InputStreamProperties>& mutable_inputs() { return inputs_; }

  /// The entry for `stream_name`, or nullptr.
  const InputStreamProperties* FindInput(std::string_view stream_name) const;

  /// True if no operators transform any input (the properties describe an
  /// original stream verbatim).
  bool IsOriginal() const;

  std::string ToString() const;

 private:
  std::vector<InputStreamProperties> inputs_;
};

}  // namespace streamshare::properties

#endif  // STREAMSHARE_PROPERTIES_PROPERTIES_H_
