#include "properties/signature.h"

#include "predicate/graph.h"

namespace streamshare::properties {
namespace {

uint32_t KindBit(OperatorKind kind) {
  return 1u << static_cast<uint32_t>(kind);
}

/// Appends (or merges into) the interval for `path`.
PathInterval& IntervalFor(std::vector<PathInterval>& intervals,
                          const xml::Path& path) {
  for (PathInterval& interval : intervals) {
    if (interval.path == path) return interval;
  }
  intervals.push_back(PathInterval{path, std::nullopt, std::nullopt});
  return intervals.back();
}

/// Stream side: the zero-incident *edges* of the selection graph. These
/// are exactly the constraints the complete implication test iterates for
/// the stream graph, so failing to imply one of them refutes the match.
SelectionSignature EdgeIntervals(const predicate::PredicateGraph& graph) {
  SelectionSignature sig;
  for (const predicate::PredicateGraph::Edge& edge : graph.edges()) {
    if (edge.source == 0 && edge.target != 0) {
      // 0 ≤ path + c, i.e. path ≥ -c.
      IntervalFor(sig.intervals, graph.nodes()[edge.target]).lower =
          edge.bound;
    } else if (edge.target == 0 && edge.source != 0) {
      // path ≤ c.
      IntervalFor(sig.intervals, graph.nodes()[edge.source]).upper =
          edge.bound;
    }
  }
  return sig;
}

/// Probe side: the tightest *derivable* zero-incident bounds (closure).
/// These are what the implication test compares against stream edges.
SelectionSignature ClosureIntervals(const predicate::PredicateGraph& graph) {
  SelectionSignature sig;
  const std::vector<xml::Path>& nodes = graph.nodes();
  for (int i = 1; i < static_cast<int>(nodes.size()); ++i) {
    std::optional<predicate::Bound> upper = graph.TightestBound(i, 0);
    std::optional<predicate::Bound> lower = graph.TightestBound(0, i);
    if (!upper && !lower) continue;
    PathInterval& interval = IntervalFor(sig.intervals, nodes[i]);
    interval.upper = upper;
    interval.lower = lower;
  }
  return sig;
}

AggregationSignature AggSignature(const AggregationOp& op) {
  return AggregationSignature{op.func, op.aggregated_element, op.window};
}

}  // namespace

StreamSignature ComputeStreamSignature(const InputStreamProperties& props) {
  StreamSignature sig;
  for (const Operator& op : props.operators) {
    OperatorKind kind = KindOf(op);
    sig.kind_mask |= KindBit(kind);
    switch (kind) {
      case OperatorKind::kSelection:
        sig.selections.push_back(EdgeIntervals(std::get<SelectionOp>(op).graph));
        break;
      case OperatorKind::kProjection:
        sig.projection_outputs.push_back(std::get<ProjectionOp>(op).output);
        break;
      case OperatorKind::kAggregation:
        sig.aggregations.push_back(AggSignature(std::get<AggregationOp>(op)));
        sig.epoch_safe = false;
        break;
      case OperatorKind::kUserDefined:
        sig.udfs.push_back(std::get<UserDefinedOp>(op));
        sig.epoch_safe = false;
        break;
    }
  }
  return sig;
}

SubscriptionProbe ComputeSubscriptionProbe(const InputStreamProperties& sub) {
  SubscriptionProbe probe;
  for (const Operator& op : sub.operators) {
    OperatorKind kind = KindOf(op);
    probe.kind_mask |= KindBit(kind);
    switch (kind) {
      case OperatorKind::kSelection:
        probe.selections.push_back(
            ClosureIntervals(std::get<SelectionOp>(op).graph));
        break;
      case OperatorKind::kProjection:
        probe.projection_referenced.push_back(
            std::get<ProjectionOp>(op).referenced);
        break;
      case OperatorKind::kAggregation:
        probe.aggregations.push_back(AggSignature(std::get<AggregationOp>(op)));
        break;
      case OperatorKind::kUserDefined:
        probe.udfs.push_back(std::get<UserDefinedOp>(op));
        break;
    }
  }
  return probe;
}

}  // namespace streamshare::properties
