// Serialization of properties to and from XML. In StreamGlobe, super-peers
// exchange stream and subscription metadata across the backbone; the
// properties data structure (§3.1) is exactly that metadata, and this
// module gives it a canonical wire format:
//
//   <properties>
//     <input stream="...">          <!-- attributes become elements -->
//       <selection><pred>ra &gt;= 120.0</pred>...</selection>
//       <projection><out>coord/cel/ra</out>...<ref>...</ref></projection>
//       <aggregation fn="avg" element="en"> ... </aggregation>
//       <udf name="..."><param>...</param></udf>
//     </input>
//   </properties>
//
// Parsing is the exact inverse; round-tripping preserves semantic
// equality (predicate graphs are rebuilt and re-minimized on parse).

#ifndef STREAMSHARE_PROPERTIES_SERIALIZE_H_
#define STREAMSHARE_PROPERTIES_SERIALIZE_H_

#include <memory>
#include <string>
#include <string_view>

#include "properties/properties.h"
#include "xml/xml_node.h"

namespace streamshare::properties {

/// Serializes properties into a <properties> element.
std::unique_ptr<xml::XmlNode> PropertiesToXml(const Properties& props);

/// Serializes to compact XML text.
std::string PropertiesToText(const Properties& props);

/// Parses a <properties> element. Fails on unknown operator elements,
/// malformed predicates/windows, or unsatisfiable selections.
Result<Properties> PropertiesFromXml(const xml::XmlNode& node);

/// Parses from XML text.
Result<Properties> PropertiesFromText(std::string_view text);

/// Serializes a single atomic predicate as its textual form
/// ("coord/cel/ra >= 120.0", "a <= b + 3").
std::string PredicateToText(const predicate::AtomicPredicate& pred);

/// Parses the textual form back.
Result<predicate::AtomicPredicate> PredicateFromText(
    std::string_view text);

}  // namespace streamshare::properties

#endif  // STREAMSHARE_PROPERTIES_SERIALIZE_H_
