#include "properties/window.h"

namespace streamshare::properties {

Result<WindowSpec> WindowSpec::Count(int64_t size, int64_t step) {
  WindowSpec spec;
  spec.type = WindowType::kCount;
  spec.size = Decimal::FromInt(size);
  spec.step = Decimal::FromInt(step == 0 ? size : step);
  SS_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

Result<WindowSpec> WindowSpec::Diff(xml::Path reference, Decimal size,
                                    Decimal step) {
  WindowSpec spec;
  spec.type = WindowType::kDiff;
  spec.reference = std::move(reference);
  spec.size = size;
  spec.step = step == Decimal() ? size : step;
  SS_RETURN_IF_ERROR(spec.Validate());
  return spec;
}

Status WindowSpec::Validate() const {
  Decimal zero;
  if (size <= zero) {
    return Status::InvalidArgument("window size must be positive, got " +
                                   size.ToString());
  }
  if (step <= zero) {
    return Status::InvalidArgument("window step must be positive, got " +
                                   step.ToString());
  }
  if (type == WindowType::kCount) {
    if (size.scale() != 0 || step.scale() != 0) {
      return Status::InvalidArgument(
          "item-based windows require integral size and step");
    }
    if (!reference.empty()) {
      return Status::InvalidArgument(
          "item-based windows take no reference element");
    }
  } else {
    if (reference.empty()) {
      return Status::InvalidArgument(
          "time-based windows require a reference element");
    }
  }
  return Status::Ok();
}

std::string WindowSpec::ToString() const {
  std::string out = "|";
  if (type == WindowType::kCount) {
    out += "count " + size.ToString();
  } else {
    out += reference.ToString() + " diff " + size.ToString();
  }
  if (step != size) {
    out += " step " + step.ToString();
  }
  out += "|";
  return out;
}

}  // namespace streamshare::properties
