#include "properties/properties.h"

namespace streamshare::properties {

const SelectionOp* InputStreamProperties::selection() const {
  for (const Operator& op : operators) {
    if (const auto* sel = std::get_if<SelectionOp>(&op)) return sel;
  }
  return nullptr;
}

const ProjectionOp* InputStreamProperties::projection() const {
  for (const Operator& op : operators) {
    if (const auto* proj = std::get_if<ProjectionOp>(&op)) return proj;
  }
  return nullptr;
}

const AggregationOp* InputStreamProperties::aggregation() const {
  for (const Operator& op : operators) {
    if (const auto* agg = std::get_if<AggregationOp>(&op)) return agg;
  }
  return nullptr;
}

std::string InputStreamProperties::ToString() const {
  std::string out = "input '" + stream_name + "'";
  for (const Operator& op : operators) {
    out += " -> " + OperatorToString(op);
  }
  return out;
}

Properties Properties::ForOriginalStream(std::string stream_name) {
  Properties props;
  props.AddInput(std::move(stream_name));
  return props;
}

InputStreamProperties& Properties::AddInput(std::string stream_name) {
  inputs_.push_back(InputStreamProperties{std::move(stream_name), {}});
  return inputs_.back();
}

const InputStreamProperties* Properties::FindInput(
    std::string_view stream_name) const {
  for (const InputStreamProperties& input : inputs_) {
    if (input.stream_name == stream_name) return &input;
  }
  return nullptr;
}

bool Properties::IsOriginal() const {
  for (const InputStreamProperties& input : inputs_) {
    if (!input.operators.empty()) return false;
  }
  return true;
}

std::string Properties::ToString() const {
  std::string out = "Properties {\n";
  for (const InputStreamProperties& input : inputs_) {
    out += "  " + input.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace streamshare::properties
