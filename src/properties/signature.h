// Conservative matching signatures for candidate indexing. A
// StreamSignature distills the per-input properties of a registered stream
// into the facts a match *requires* of any subscription: which operator
// kinds are present, which UDF invocations must be repeated verbatim,
// which aggregate/window shapes must be compatible, which projection
// output set must cover the subscription's references, and which
// zero-incident difference bounds the subscription's selection must imply.
// A SubscriptionProbe is the subscription-side counterpart, precomputed
// once per Subscribe call.
//
// The derived check (sharing::SignatureCouldMatch) is a *necessary*
// condition for matching::MatchProperties under either predicate mode
// (edge-local or complete): when it fails, no match is possible, so the
// candidate index may prune the stream without consulting the matcher.
// It is deliberately incomplete — pre-selection and result-filter
// equivalence for aggregates, and variable-vs-variable predicate edges,
// are left to the full matcher.

#ifndef STREAMSHARE_PROPERTIES_SIGNATURE_H_
#define STREAMSHARE_PROPERTIES_SIGNATURE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "predicate/atomic.h"
#include "properties/properties.h"

namespace streamshare::properties {

/// Zero-incident bounds on one path: `path ≤ upper` and `path ≥ -lower`
/// in difference-bound form (either side may be absent).
struct PathInterval {
  xml::Path path;
  /// Direct/derived bound path → zero: path ≤ value (strict: <).
  std::optional<predicate::Bound> upper;
  /// Direct/derived bound zero → path: 0 ≤ path + value, i.e.
  /// path ≥ -value (strict: >).
  std::optional<predicate::Bound> lower;
};

/// Signature of one selection operator.
struct SelectionSignature {
  /// For a stream: the zero-incident *edges* of the minimized predicate
  /// graph (the constraints the full Implies test iterates). For a probe:
  /// the *tightest derivable* zero-incident bounds (graph closure).
  std::vector<PathInterval> intervals;
};

/// Window-divisor signature of one aggregation operator: the fields every
/// MatchAggregations branch requires to be compatible.
struct AggregationSignature {
  AggregateFunc func = AggregateFunc::kAvg;
  xml::Path aggregated_element;
  WindowSpec window;
};

/// What a registered stream demands of any subscription that reuses it.
struct StreamSignature {
  /// Bit (1 << OperatorKind) per operator kind present in the stream.
  uint32_t kind_mask = 0;
  /// True iff the stream carries no aggregation/UDF operators, i.e. it is
  /// reusable under epoch-safe-only planning (recovery, re-optimization).
  bool epoch_safe = true;
  std::vector<UserDefinedOp> udfs;
  std::vector<AggregationSignature> aggregations;
  /// Output path set per projection operator.
  std::vector<std::vector<xml::Path>> projection_outputs;
  /// Zero-incident edge bounds per selection operator.
  std::vector<SelectionSignature> selections;
};

/// What a subscription input offers: the counterpart facts a stream's
/// requirements are tested against.
struct SubscriptionProbe {
  uint32_t kind_mask = 0;
  std::vector<UserDefinedOp> udfs;
  std::vector<AggregationSignature> aggregations;
  /// Referenced path set per projection operator.
  std::vector<std::vector<xml::Path>> projection_referenced;
  /// Tightest derivable zero-incident bounds per selection operator.
  std::vector<SelectionSignature> selections;
};

/// Builds the stream-side signature from a registered stream's per-input
/// properties entry.
StreamSignature ComputeStreamSignature(const InputStreamProperties& props);

/// Builds the subscription-side probe from one subscription input binding.
SubscriptionProbe ComputeSubscriptionProbe(const InputStreamProperties& sub);

}  // namespace streamshare::properties

#endif  // STREAMSHARE_PROPERTIES_SIGNATURE_H_
