#include "properties/operators.h"

#include "common/string_util.h"

namespace streamshare::properties {

xml::Path AggregateValuePath() {
  return xml::Path(std::vector<std::string>{"$agg"});
}

Result<SelectionOp> SelectionOp::Create(
    std::vector<predicate::AtomicPredicate> predicates) {
  SelectionOp op;
  op.predicates = std::move(predicates);
  op.graph = predicate::PredicateGraph::Build(op.predicates);
  if (!op.graph.IsSatisfiable()) {
    return Status::Unsatisfiable("selection predicate is unsatisfiable: " +
                                 op.ToString());
  }
  op.graph.Minimize();
  return op;
}

std::string SelectionOp::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(predicates.size());
  for (const auto& pred : predicates) parts.push_back(pred.ToString());
  return "σ[" + Join(parts, " and ") + "]";
}

std::string ProjectionOp::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(output.size());
  for (const auto& path : output) parts.push_back(path.ToString());
  return "π{" + Join(parts, ", ") + "}";
}

std::string_view AggregateFuncToString(AggregateFunc func) {
  switch (func) {
    case AggregateFunc::kMin:
      return "min";
    case AggregateFunc::kMax:
      return "max";
    case AggregateFunc::kSum:
      return "sum";
    case AggregateFunc::kCount:
      return "count";
    case AggregateFunc::kAvg:
      return "avg";
  }
  return "?";
}

bool IsDistributive(AggregateFunc func) {
  return func != AggregateFunc::kAvg;
}

Result<AggregationOp> AggregationOp::Create(
    AggregateFunc func, xml::Path aggregated_element, WindowSpec window,
    std::vector<predicate::AtomicPredicate> pre_selection,
    std::vector<predicate::AtomicPredicate> result_filter) {
  SS_RETURN_IF_ERROR(window.Validate());
  AggregationOp op;
  op.func = func;
  op.aggregated_element = std::move(aggregated_element);
  op.window = std::move(window);
  op.pre_selection = std::move(pre_selection);
  op.pre_selection_graph = predicate::PredicateGraph::Build(op.pre_selection);
  if (!op.pre_selection_graph.IsSatisfiable()) {
    return Status::Unsatisfiable(
        "aggregation pre-selection is unsatisfiable");
  }
  op.pre_selection_graph.Minimize();
  op.result_filter = std::move(result_filter);
  op.result_filter_graph = predicate::PredicateGraph::Build(op.result_filter);
  if (!op.result_filter_graph.IsSatisfiable()) {
    return Status::Unsatisfiable(
        "aggregation result filter is unsatisfiable");
  }
  op.result_filter_graph.Minimize();
  return op;
}

std::string AggregationOp::ToString() const {
  std::string out(AggregateFuncToString(func));
  out += "(" + aggregated_element.ToString() + ") over " +
         window.ToString();
  if (!pre_selection.empty()) {
    std::vector<std::string> parts;
    parts.reserve(pre_selection.size());
    for (const auto& pred : pre_selection) parts.push_back(pred.ToString());
    out += " where-input[" + Join(parts, " and ") + "]";
  }
  if (!result_filter.empty()) {
    std::vector<std::string> parts;
    parts.reserve(result_filter.size());
    for (const auto& pred : result_filter) parts.push_back(pred.ToString());
    out += " having[" + Join(parts, " and ") + "]";
  }
  return out;
}

std::string UserDefinedOp::ToString() const {
  return name + "(" + Join(params, ", ") + ")";
}

OperatorKind KindOf(const Operator& op) {
  if (std::holds_alternative<SelectionOp>(op)) {
    return OperatorKind::kSelection;
  }
  if (std::holds_alternative<ProjectionOp>(op)) {
    return OperatorKind::kProjection;
  }
  if (std::holds_alternative<AggregationOp>(op)) {
    return OperatorKind::kAggregation;
  }
  return OperatorKind::kUserDefined;
}

std::string OperatorToString(const Operator& op) {
  return std::visit([](const auto& o) { return o.ToString(); }, op);
}

}  // namespace streamshare::properties
