#include "properties/serialize.h"

#include "common/string_util.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace streamshare::properties {

namespace {

using predicate::AtomicPredicate;
using predicate::ComparisonOp;

std::string_view FuncName(AggregateFunc func) {
  return AggregateFuncToString(func);
}

Result<AggregateFunc> FuncFromName(std::string_view name) {
  if (name == "min") return AggregateFunc::kMin;
  if (name == "max") return AggregateFunc::kMax;
  if (name == "sum") return AggregateFunc::kSum;
  if (name == "count") return AggregateFunc::kCount;
  if (name == "avg") return AggregateFunc::kAvg;
  return Status::ParseError("unknown aggregate function '" +
                            std::string(name) + "'");
}

void AppendPredicates(const std::vector<AtomicPredicate>& predicates,
                      xml::XmlNode* parent) {
  for (const AtomicPredicate& pred : predicates) {
    parent->AddLeaf("pred", PredicateToText(pred));
  }
}

Result<std::vector<AtomicPredicate>> ParsePredicates(
    const xml::XmlNode& parent) {
  std::vector<AtomicPredicate> out;
  for (const xml::XmlNode* pred : parent.Children("pred")) {
    SS_ASSIGN_OR_RETURN(AtomicPredicate parsed,
                        PredicateFromText(pred->text()));
    out.push_back(std::move(parsed));
  }
  return out;
}

void AppendWindow(const WindowSpec& window, xml::XmlNode* parent) {
  xml::XmlNode* node = parent->AddChild("window");
  node->AddLeaf("type",
                window.type == WindowType::kCount ? "count" : "diff");
  node->AddLeaf("size", window.size.ToString());
  node->AddLeaf("step", window.step.ToString());
  if (!window.reference.empty()) {
    node->AddLeaf("ref", window.reference.ToString());
  }
}

Result<WindowSpec> ParseWindow(const xml::XmlNode& node) {
  WindowSpec window;
  const xml::XmlNode* type = node.FirstChild("type");
  const xml::XmlNode* size = node.FirstChild("size");
  const xml::XmlNode* step = node.FirstChild("step");
  if (type == nullptr || size == nullptr || step == nullptr) {
    return Status::ParseError("window element missing type/size/step");
  }
  if (type->text() == "count") {
    window.type = WindowType::kCount;
  } else if (type->text() == "diff") {
    window.type = WindowType::kDiff;
  } else {
    return Status::ParseError("unknown window type '" + type->text() +
                              "'");
  }
  SS_ASSIGN_OR_RETURN(window.size, Decimal::Parse(Trim(size->text())));
  SS_ASSIGN_OR_RETURN(window.step, Decimal::Parse(Trim(step->text())));
  if (const xml::XmlNode* ref = node.FirstChild("ref")) {
    SS_ASSIGN_OR_RETURN(window.reference, xml::Path::Parse(ref->text()));
  }
  SS_RETURN_IF_ERROR(window.Validate());
  return window;
}

void AppendPaths(const std::vector<xml::Path>& paths, const char* tag,
                 xml::XmlNode* parent) {
  for (const xml::Path& path : paths) {
    parent->AddLeaf(tag, path.ToString());
  }
}

Result<std::vector<xml::Path>> ParsePaths(const xml::XmlNode& parent,
                                          const char* tag) {
  std::vector<xml::Path> out;
  for (const xml::XmlNode* node : parent.Children(tag)) {
    SS_ASSIGN_OR_RETURN(xml::Path path, xml::Path::Parse(node->text()));
    out.push_back(std::move(path));
  }
  return out;
}

}  // namespace

std::string PredicateToText(const AtomicPredicate& pred) {
  return pred.ToString();
}

Result<AtomicPredicate> PredicateFromText(std::string_view text) {
  std::vector<std::string> raw = Split(std::string(Trim(text)), ' ');
  std::vector<std::string> tokens;
  for (std::string& token : raw) {
    if (!token.empty()) tokens.push_back(std::move(token));
  }
  if (tokens.size() != 3 && tokens.size() != 5) {
    return Status::ParseError("malformed predicate '" + std::string(text) +
                              "'");
  }
  if (Decimal::Parse(tokens[0]).ok()) {
    return Status::ParseError("predicate lhs must be an element path, got "
                              "constant '" +
                              tokens[0] + "'");
  }
  SS_ASSIGN_OR_RETURN(xml::Path lhs, xml::Path::Parse(tokens[0]));
  ComparisonOp op;
  if (tokens[1] == "=") {
    op = ComparisonOp::kEq;
  } else if (tokens[1] == "<") {
    op = ComparisonOp::kLt;
  } else if (tokens[1] == "<=") {
    op = ComparisonOp::kLe;
  } else if (tokens[1] == ">") {
    op = ComparisonOp::kGt;
  } else if (tokens[1] == ">=") {
    op = ComparisonOp::kGe;
  } else {
    return Status::ParseError("unknown comparison '" + tokens[1] + "'");
  }
  // rhs: a constant, or a path with an optional "± constant" tail.
  Result<Decimal> constant = Decimal::Parse(tokens[2]);
  if (constant.ok()) {
    if (tokens.size() != 3) {
      return Status::ParseError("trailing tokens after constant in '" +
                                std::string(text) + "'");
    }
    return AtomicPredicate::Compare(std::move(lhs), op, *constant);
  }
  SS_ASSIGN_OR_RETURN(xml::Path rhs, xml::Path::Parse(tokens[2]));
  Decimal offset;
  if (tokens.size() == 5) {
    SS_ASSIGN_OR_RETURN(offset, Decimal::Parse(tokens[4]));
    if (tokens[3] == "-") {
      offset = -offset;
    } else if (tokens[3] != "+") {
      return Status::ParseError("expected '+' or '-' in '" +
                                std::string(text) + "'");
    }
  }
  return AtomicPredicate::CompareVars(std::move(lhs), op, std::move(rhs),
                                      offset);
}

std::unique_ptr<xml::XmlNode> PropertiesToXml(const Properties& props) {
  auto root = std::make_unique<xml::XmlNode>("properties");
  for (const InputStreamProperties& input : props.inputs()) {
    xml::XmlNode* input_node = root->AddChild("input");
    input_node->AddLeaf("stream", input.stream_name);
    for (const Operator& op : input.operators) {
      switch (KindOf(op)) {
        case OperatorKind::kSelection: {
          xml::XmlNode* node = input_node->AddChild("selection");
          AppendPredicates(std::get<SelectionOp>(op).predicates, node);
          break;
        }
        case OperatorKind::kProjection: {
          const auto& projection = std::get<ProjectionOp>(op);
          xml::XmlNode* node = input_node->AddChild("projection");
          AppendPaths(projection.output, "out", node);
          AppendPaths(projection.referenced, "ref", node);
          break;
        }
        case OperatorKind::kAggregation: {
          const auto& aggregation = std::get<AggregationOp>(op);
          xml::XmlNode* node = input_node->AddChild("aggregation");
          node->AddLeaf("fn", std::string(FuncName(aggregation.func)));
          node->AddLeaf("element",
                        aggregation.aggregated_element.ToString());
          AppendWindow(aggregation.window, node);
          xml::XmlNode* pre = node->AddChild("pre");
          AppendPredicates(aggregation.pre_selection, pre);
          xml::XmlNode* having = node->AddChild("having");
          AppendPredicates(aggregation.result_filter, having);
          break;
        }
        case OperatorKind::kUserDefined: {
          const auto& udf = std::get<UserDefinedOp>(op);
          xml::XmlNode* node = input_node->AddChild("udf");
          node->AddLeaf("name", udf.name);
          for (const std::string& param : udf.params) {
            node->AddLeaf("param", param);
          }
          break;
        }
      }
    }
  }
  return root;
}

std::string PropertiesToText(const Properties& props) {
  return xml::WriteCompact(*PropertiesToXml(props));
}

Result<Properties> PropertiesFromXml(const xml::XmlNode& node) {
  if (node.name() != "properties") {
    return Status::ParseError("expected <properties>, got <" + node.name() +
                              ">");
  }
  Properties props;
  for (const xml::XmlNode* input_node : node.Children("input")) {
    const xml::XmlNode* stream = input_node->FirstChild("stream");
    if (stream == nullptr) {
      return Status::ParseError("<input> without <stream>");
    }
    InputStreamProperties& input = props.AddInput(stream->text());
    for (const auto& child : input_node->children()) {
      if (child->name() == "stream") continue;
      if (child->name() == "selection") {
        SS_ASSIGN_OR_RETURN(std::vector<AtomicPredicate> predicates,
                            ParsePredicates(*child));
        SS_ASSIGN_OR_RETURN(SelectionOp selection,
                            SelectionOp::Create(std::move(predicates)));
        input.operators.emplace_back(std::move(selection));
      } else if (child->name() == "projection") {
        ProjectionOp projection;
        SS_ASSIGN_OR_RETURN(projection.output, ParsePaths(*child, "out"));
        SS_ASSIGN_OR_RETURN(projection.referenced,
                            ParsePaths(*child, "ref"));
        input.operators.emplace_back(std::move(projection));
      } else if (child->name() == "aggregation") {
        const xml::XmlNode* fn = child->FirstChild("fn");
        const xml::XmlNode* element = child->FirstChild("element");
        const xml::XmlNode* window = child->FirstChild("window");
        if (fn == nullptr || element == nullptr || window == nullptr) {
          return Status::ParseError(
              "<aggregation> missing fn/element/window");
        }
        SS_ASSIGN_OR_RETURN(AggregateFunc func, FuncFromName(fn->text()));
        SS_ASSIGN_OR_RETURN(xml::Path aggregated,
                            xml::Path::Parse(element->text()));
        SS_ASSIGN_OR_RETURN(WindowSpec spec, ParseWindow(*window));
        std::vector<AtomicPredicate> pre;
        if (const xml::XmlNode* pre_node = child->FirstChild("pre")) {
          SS_ASSIGN_OR_RETURN(pre, ParsePredicates(*pre_node));
        }
        std::vector<AtomicPredicate> having;
        if (const xml::XmlNode* having_node =
                child->FirstChild("having")) {
          SS_ASSIGN_OR_RETURN(having, ParsePredicates(*having_node));
        }
        SS_ASSIGN_OR_RETURN(
            AggregationOp aggregation,
            AggregationOp::Create(func, std::move(aggregated),
                                  std::move(spec), std::move(pre),
                                  std::move(having)));
        input.operators.emplace_back(std::move(aggregation));
      } else if (child->name() == "udf") {
        const xml::XmlNode* name = child->FirstChild("name");
        if (name == nullptr) {
          return Status::ParseError("<udf> without <name>");
        }
        UserDefinedOp udf;
        udf.name = name->text();
        for (const xml::XmlNode* param : child->Children("param")) {
          udf.params.push_back(param->text());
        }
        input.operators.emplace_back(std::move(udf));
      } else {
        return Status::ParseError("unknown operator element <" +
                                  child->name() + ">");
      }
    }
  }
  return props;
}

Result<Properties> PropertiesFromText(std::string_view text) {
  SS_ASSIGN_OR_RETURN(std::unique_ptr<xml::XmlNode> node,
                      xml::ParseDocument(text));
  return PropertiesFromXml(*node);
}

}  // namespace streamshare::properties
