// Data window specifications (§2). An item-based window |count Δ step µ|
// always holds Δ items and slides by µ items; a time-based window
// |ref diff Δ step µ| holds items whose reference element value spans Δ
// time units and slides by µ units. The step defaults to the window size
// (tumbling window).

#ifndef STREAMSHARE_PROPERTIES_WINDOW_H_
#define STREAMSHARE_PROPERTIES_WINDOW_H_

#include <cstdint>
#include <string>

#include "common/decimal.h"
#include "common/status.h"
#include "xml/path.h"

namespace streamshare::properties {

enum class WindowType {
  kCount,  // item-based
  kDiff,   // time-based over an ordered reference element
};

/// A window definition as stored in properties and executed by the engine.
struct WindowSpec {
  WindowType type = WindowType::kCount;
  /// Reference element controlling a time-based window (e.g. det_time);
  /// empty for item-based windows.
  xml::Path reference;
  /// Window size Δ: an item count for kCount, a value span for kDiff.
  Decimal size;
  /// Step µ: update interval. Defaults to size (tumbling).
  Decimal step;

  /// Item-based window. `step` of 0 means "default to size".
  static Result<WindowSpec> Count(int64_t size, int64_t step = 0);
  /// Time-based window over `reference`.
  static Result<WindowSpec> Diff(xml::Path reference, Decimal size,
                                 Decimal step = Decimal());

  /// Validates invariants: positive size, positive step, count windows
  /// have integral size/step, diff windows have a reference element.
  Status Validate() const;

  /// "|count 20 step 10|" / "|det_time diff 60 step 40|" form.
  std::string ToString() const;

  bool operator==(const WindowSpec& other) const = default;
};

}  // namespace streamshare::properties

#endif  // STREAMSHARE_PROPERTIES_WINDOW_H_
