// Measured (not estimated) resource consumption of a running deployment:
// bytes actually transmitted per network connection and work units actually
// spent per peer. The figure benches derive the paper's kbps / CPU-%
// series from these counters and the simulated stream duration.

#ifndef STREAMSHARE_ENGINE_METRICS_H_
#define STREAMSHARE_ENGINE_METRICS_H_

#include <cstdint>
#include <vector>

#include "network/topology.h"

namespace streamshare::engine {

class Metrics {
 public:
  Metrics() = default;
  explicit Metrics(const network::Topology& topology)
      : bytes_per_link_(topology.link_count(), 0),
        work_per_peer_(topology.peer_count(), 0.0),
        items_per_peer_(topology.peer_count(), 0) {}
  /// A zeroed shard shaped like `other` — the parallel executor gives
  /// every worker one so the hot path stays free of atomics and merges
  /// the shards at end of stream.
  static Metrics ShardLike(const Metrics& other) {
    Metrics shard;
    shard.bytes_per_link_.assign(other.bytes_per_link_.size(), 0);
    shard.work_per_peer_.assign(other.work_per_peer_.size(), 0.0);
    shard.items_per_peer_.assign(other.items_per_peer_.size(), 0);
    return shard;
  }

  /// Adds every counter of `other` (a worker-local shard) into this.
  void MergeFrom(const Metrics& other) {
    for (size_t i = 0; i < other.bytes_per_link_.size(); ++i) {
      bytes_per_link_[i] += other.bytes_per_link_[i];
    }
    for (size_t i = 0; i < other.work_per_peer_.size(); ++i) {
      work_per_peer_[i] += other.work_per_peer_[i];
      items_per_peer_[i] += other.items_per_peer_[i];
    }
  }

  void AddBytes(network::LinkId link, uint64_t bytes) {
    bytes_per_link_[link] += bytes;
  }
  void AddWork(network::NodeId peer, double work_units) {
    work_per_peer_[peer] += work_units;
    items_per_peer_[peer] += 1;
  }
  /// N invocations of AddWork in one call (a batch push). Loops the
  /// floating-point adds instead of multiplying, so a batch of n items
  /// bills bit-identically to n single pushes.
  void AddWorkN(network::NodeId peer, double work_units, size_t n) {
    double& work = work_per_peer_[peer];
    for (size_t i = 0; i < n; ++i) work += work_units;
    items_per_peer_[peer] += n;
  }
  /// Adds already-aggregated measurements — merging a shard whose raw
  /// vectors arrived over a cross-process report channel, where AddWork's
  /// one-invocation-per-call accounting does not apply.
  void AddMeasured(network::NodeId peer, double work_units,
                   uint64_t invocations) {
    work_per_peer_[peer] += work_units;
    items_per_peer_[peer] += invocations;
  }

  uint64_t BytesOnLink(network::LinkId link) const {
    return bytes_per_link_[link];
  }
  double WorkAtPeer(network::NodeId peer) const {
    return work_per_peer_[peer];
  }
  uint64_t OperatorInvocationsAtPeer(network::NodeId peer) const {
    return items_per_peer_[peer];
  }

  uint64_t TotalBytes() const {
    uint64_t total = 0;
    for (uint64_t bytes : bytes_per_link_) total += bytes;
    return total;
  }
  double TotalWork() const {
    double total = 0.0;
    for (double work : work_per_peer_) total += work;
    return total;
  }

  size_t link_count() const { return bytes_per_link_.size(); }
  size_t peer_count() const { return work_per_peer_.size(); }

  /// Average traffic on a connection in kbit/s given the simulated stream
  /// duration.
  double LinkKbps(network::LinkId link, double duration_s) const {
    return duration_s > 0.0
               ? static_cast<double>(bytes_per_link_[link]) * 8.0 /
                     1000.0 / duration_s
               : 0.0;
  }

  /// Average CPU load of a peer in percent of its capacity.
  double PeerCpuPercent(network::NodeId peer, double duration_s,
                        double max_load) const {
    if (duration_s <= 0.0 || max_load <= 0.0) return 0.0;
    return work_per_peer_[peer] / duration_s / max_load * 100.0;
  }

 private:
  std::vector<uint64_t> bytes_per_link_;
  std::vector<double> work_per_peer_;
  std::vector<uint64_t> items_per_peer_;
};

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_METRICS_H_
