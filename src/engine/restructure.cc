#include "engine/restructure.h"

#include "engine/record.h"
#include "engine/return_eval.h"
#include "engine/window_agg.h"
#include "predicate/eval.h"

namespace streamshare::engine {

namespace {

using wxquery::ElementExpr;
using wxquery::Expr;
using wxquery::FlwrExpr;
using wxquery::IfExpr;
using wxquery::PathOutputExpr;
using wxquery::SequenceExpr;
using wxquery::VarOutputExpr;
using wxquery::WhereAtom;

/// One condition atom compiled against the photon schema. Mirrors
/// EvaluateReturnCondition exactly: an absent (or off-schema) operand is
/// NotFound, which makes the condition false.
struct CompiledCond {
  int lhs_node = -1;   // -1: never found
  int rhs_node = -2;   // -2: no rhs variable
  predicate::ComparisonOp op = predicate::ComparisonOp::kEq;
  Decimal constant;
};

}  // namespace

/// A return expression compiled to run directly over PhotonRecords. Only
/// shapes whose DOM evaluation this reproduces byte-for-byte (including
/// which errors can arise — none) are compiled; everything else keeps the
/// DOM path.
struct RestructureOp::CompiledReturn {
  enum class Kind { kElement, kSequence, kIf, kPathOutput, kWholeItem };
  Kind kind = Kind::kSequence;
  // kElement
  std::string tag;
  // kElement / kSequence children, kIf {then, else}
  std::vector<CompiledReturn> children;
  // kIf
  std::vector<CompiledCond> conditions;
  // kPathOutput: resolved schema node, -1 when the path never matches
  int node = -1;

  void Run(const PhotonRecord& record, xml::XmlNode* parent,
           ItemBatch* out) const {
    switch (kind) {
      case Kind::kElement: {
        auto element = std::make_unique<xml::XmlNode>(tag);
        for (const CompiledReturn& child : children) {
          child.Run(record, element.get(), nullptr);
        }
        if (parent != nullptr) {
          parent->AddChild(std::move(element));
        } else {
          out->AppendItem(MakeItem(std::move(element)), /*adopt=*/false);
        }
        return;
      }
      case Kind::kSequence:
        for (const CompiledReturn& child : children) {
          child.Run(record, parent, out);
        }
        return;
      case Kind::kIf: {
        bool satisfied = true;
        for (const CompiledCond& cond : conditions) {
          int lhs_field =
              cond.lhs_node >= 0 ? PhotonSchema::FieldOf(cond.lhs_node) : -1;
          if (lhs_field < 0 || !record.has_field(lhs_field)) {
            satisfied = false;  // NotFound
            break;
          }
          Decimal rhs = cond.constant;
          if (cond.rhs_node != -2) {
            int rhs_field =
                cond.rhs_node >= 0 ? PhotonSchema::FieldOf(cond.rhs_node)
                                   : -1;
            if (rhs_field < 0 || !record.has_field(rhs_field)) {
              satisfied = false;
              break;
            }
            rhs = record.value(rhs_field) + cond.constant;
          }
          if (!predicate::Compare(record.value(lhs_field), cond.op, rhs)) {
            satisfied = false;
            break;
          }
        }
        children[satisfied ? 0 : 1].Run(record, parent, out);
        return;
      }
      case Kind::kPathOutput:
        if (node >= 0 && record.has_node(node)) {
          if (parent != nullptr) {
            parent->AddChild(record.MaterializeSubtree(node));
          } else {
            out->AppendItem(MakeItem(record.MaterializeSubtree(node)),
                            /*adopt=*/false);
          }
        }
        return;
      case Kind::kWholeItem:
        if (parent != nullptr) {
          parent->AddChild(record.MaterializeXml());
        } else {
          out->AppendItem(MakeItem(record.MaterializeXml()),
                          /*adopt=*/false);
        }
        return;
    }
  }
};

namespace {

/// Resolves a condition operand path to a schema *leaf* node. Structural
/// nodes are rejected (their DOM evaluation raises ParseError, which a
/// compiled program must not swallow); off-schema paths compile to -1
/// (never found, condition false).
bool CompileCondOperand(const wxquery::VarPath& operand,
                        const std::string& bound_var, int* node_out) {
  if (operand.var != bound_var) return false;
  int node = PhotonSchema::Resolve(operand.path);
  if (node >= 0 && PhotonSchema::FieldOf(node) < 0) return false;
  *node_out = node;
  return true;
}

bool CompileConditions(const std::vector<WhereAtom>& atoms,
                       const std::string& bound_var,
                       std::vector<CompiledCond>* out) {
  for (const WhereAtom& atom : atoms) {
    CompiledCond cond;
    if (!CompileCondOperand(atom.lhs, bound_var, &cond.lhs_node)) {
      return false;
    }
    if (atom.rhs.has_value() &&
        !CompileCondOperand(*atom.rhs, bound_var, &cond.rhs_node)) {
      return false;
    }
    cond.op = atom.op;
    cond.constant = atom.constant;
    out->push_back(cond);
  }
  return true;
}

bool CompileExpr(const Expr& expr, const std::string& bound_var,
                 RestructureOp::CompiledReturn* out);

bool CompileChildren(const std::vector<wxquery::ExprPtr>& exprs,
                     const std::string& bound_var,
                     std::vector<RestructureOp::CompiledReturn>* out) {
  for (const wxquery::ExprPtr& expr : exprs) {
    RestructureOp::CompiledReturn child;
    if (!CompileExpr(*expr, bound_var, &child)) return false;
    out->push_back(std::move(child));
  }
  return true;
}

bool CompileExpr(const Expr& expr, const std::string& bound_var,
                 RestructureOp::CompiledReturn* out) {
  using CompiledReturn = RestructureOp::CompiledReturn;
  if (const auto* element = expr.As<ElementExpr>()) {
    out->kind = CompiledReturn::Kind::kElement;
    out->tag = element->tag;
    return CompileChildren(element->content, bound_var, &out->children);
  }
  if (expr.Is<FlwrExpr>()) return false;  // DOM path raises Unsupported
  if (const auto* cond = expr.As<IfExpr>()) {
    out->kind = CompiledReturn::Kind::kIf;
    if (!CompileConditions(cond->condition, bound_var, &out->conditions)) {
      return false;
    }
    out->children.resize(2);
    return CompileExpr(*cond->then_expr, bound_var, &out->children[0]) &&
           CompileExpr(*cond->else_expr, bound_var, &out->children[1]);
  }
  if (const auto* path_out = expr.As<PathOutputExpr>()) {
    if (path_out->var != bound_var || path_out->HasConditions()) {
      return false;
    }
    out->kind = CompiledReturn::Kind::kPathOutput;
    out->node = PhotonSchema::Resolve(path_out->PlainPath());
    return true;
  }
  if (const auto* var_out = expr.As<VarOutputExpr>()) {
    if (var_out->var != bound_var) return false;
    out->kind = CompiledReturn::Kind::kWholeItem;
    return true;
  }
  const auto& sequence = std::get<SequenceExpr>(expr.node);
  out->kind = CompiledReturn::Kind::kSequence;
  return CompileChildren(sequence.items, bound_var, &out->children);
}

}  // namespace

RestructureOp::RestructureOp(
    std::string label, std::shared_ptr<const wxquery::AnalyzedQuery> query)
    : Operator(std::move(label)), query_(std::move(query)) {
  binding_ = &query_->bindings.front();
  if (!binding_->window.has_value() && !binding_->aggregate.has_value()) {
    auto program = std::make_unique<CompiledReturn>();
    if (CompileExpr(*query_->flwr->return_expr, binding_->var,
                    program.get())) {
      program_ = std::move(program);
    }
  }
}

RestructureOp::~RestructureOp() = default;

Status RestructureOp::EvaluateTree(const xml::XmlNode& item,
                                   ItemBatch* out) {
  ReturnEnv env;
  if (binding_->window.has_value() && !binding_->aggregate.has_value()) {
    // Window-contents query: the incoming item is a <window> wrapper; the
    // for variable binds the member sequence.
    if (item.name() != "window") {
      return Status::InvalidArgument(
          "window-contents restructuring expected a <window> item, got <" +
          item.name() + ">");
    }
    std::vector<const xml::XmlNode*> members;
    for (const auto& child : item.children()) {
      if (child->name() != "seq") members.push_back(child.get());
    }
    env.windows[binding_->var] = std::move(members);
  } else if (binding_->aggregate.has_value()) {
    SS_ASSIGN_OR_RETURN(AggItem agg, ParseAggItem(item));
    Result<Decimal> value = agg.Finalize(binding_->aggregate->func);
    if (!value.ok()) {
      if (value.status().IsOutOfRange()) return Status::Ok();  // empty
      return value.status();
    }
    env.aggregates[binding_->aggregate->var] = *value;
  } else {
    env.items[binding_->var] = &item;
  }

  std::vector<ReturnOutput> outputs;
  SS_RETURN_IF_ERROR(
      EvaluateReturn(*query_->flwr->return_expr, env, &outputs));
  for (ReturnOutput& output : outputs) {
    if (auto* node = std::get_if<std::unique_ptr<xml::XmlNode>>(&output)) {
      out->AppendItem(MakeItem(std::move(*node)), /*adopt=*/false);
    } else {
      // A bare text output at top level (e.g. "return $a") is wrapped so
      // the result stream stays element-structured.
      auto wrapper = std::make_unique<xml::XmlNode>("value");
      wrapper->set_text(std::get<std::string>(output));
      out->AppendItem(MakeItem(std::move(wrapper)), /*adopt=*/false);
    }
  }
  return Status::Ok();
}

Status RestructureOp::Process(const ItemPtr& item) {
  ItemBatch out;
  SS_RETURN_IF_ERROR(EvaluateTree(*item, &out));
  for (size_t i = 0; i < out.size(); ++i) {
    SS_RETURN_IF_ERROR(Emit(out.slot(i).item));
  }
  return Status::Ok();
}

Status RestructureOp::ProcessBatch(ItemBatch* batch) {
  scratch_.clear();
  Status failure = Status::Ok();
  for (size_t i = 0; i < batch->size(); ++i) {
    ItemBatch::Slot& slot = batch->slot(i);
    size_t first_output = scratch_.size();
    if (program_ != nullptr && slot.is_record) {
      program_->Run(slot.record, nullptr, &scratch_);
    } else {
      failure = EvaluateTree(*batch->Materialize(i), &scratch_);
    }
    // Every restructured output derives from this one input item, so its
    // latency stamp carries over (including any outputs emitted before an
    // evaluation error — the per-item path delivers that prefix too).
    for (size_t j = first_output; j < scratch_.size(); ++j) {
      scratch_.slot(j).stamp = slot.stamp;
    }
    if (!failure.ok()) break;
  }
  if (!scratch_.empty()) {
    SS_RETURN_IF_ERROR(EmitBatch(&scratch_));
    scratch_.clear();
  }
  return failure;
}

}  // namespace streamshare::engine
