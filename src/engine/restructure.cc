#include "engine/restructure.h"

#include "engine/return_eval.h"
#include "engine/window_agg.h"

namespace streamshare::engine {

RestructureOp::RestructureOp(
    std::string label, std::shared_ptr<const wxquery::AnalyzedQuery> query)
    : Operator(std::move(label)), query_(std::move(query)) {
  binding_ = &query_->bindings.front();
}

Status RestructureOp::Process(const ItemPtr& item) {
  ReturnEnv env;
  if (binding_->window.has_value() && !binding_->aggregate.has_value()) {
    // Window-contents query: the incoming item is a <window> wrapper; the
    // for variable binds the member sequence.
    if (item->name() != "window") {
      return Status::InvalidArgument(
          "window-contents restructuring expected a <window> item, got <" +
          item->name() + ">");
    }
    std::vector<const xml::XmlNode*> members;
    for (const auto& child : item->children()) {
      if (child->name() != "seq") members.push_back(child.get());
    }
    env.windows[binding_->var] = std::move(members);
  } else if (binding_->aggregate.has_value()) {
    SS_ASSIGN_OR_RETURN(AggItem agg, ParseAggItem(*item));
    Result<Decimal> value = agg.Finalize(binding_->aggregate->func);
    if (!value.ok()) {
      if (value.status().IsOutOfRange()) return Status::Ok();  // empty
      return value.status();
    }
    env.aggregates[binding_->aggregate->var] = *value;
  } else {
    env.items[binding_->var] = item.get();
  }

  std::vector<ReturnOutput> outputs;
  SS_RETURN_IF_ERROR(
      EvaluateReturn(*query_->flwr->return_expr, env, &outputs));
  for (ReturnOutput& output : outputs) {
    if (auto* node = std::get_if<std::unique_ptr<xml::XmlNode>>(&output)) {
      SS_RETURN_IF_ERROR(Emit(MakeItem(std::move(*node))));
    } else {
      // A bare text output at top level (e.g. "return $a") is wrapped so
      // the result stream stays element-structured.
      auto wrapper = std::make_unique<xml::XmlNode>("value");
      wrapper->set_text(std::get<std::string>(output));
      SS_RETURN_IF_ERROR(Emit(MakeItem(std::move(wrapper))));
    }
  }
  return Status::Ok();
}

}  // namespace streamshare::engine
