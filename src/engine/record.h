// Compact record representation of the fixed photon schema, and the
// batch container the engine hands between operators. The paper's premise
// is that sharing saves network and CPU; per-item DOM trees drown those
// savings in allocation, so items conforming to the photon DTD
//
//   photon { phc, coord { cel { ra, dec }, det { dx, dy } }, en, det_time }
//
// travel as flat PhotonRecords: a presence bitmask over the 11 schema
// nodes (document order) plus inline leaf texts with their parsed decimal
// values. Selection evaluates compiled predicates on the decimals,
// projection is a mask intersection, link/sink byte accounting and the
// content hash are computed straight from the mask and texts — all
// byte-identical to what the DOM path produces, which the differential
// oracle enforces. Items that do not conform (wagg aggregates, window
// contents, restructured results, malformed photons) ride along in the
// same batch as opaque XML slots and take the operators' DOM path.
//
// XML trees are materialized lazily: only sinks that keep items, window
// contents, restructuring and other tree-shaped consumers pay for a DOM,
// and a slot caches its materialization so fan-out shares one tree.

#ifndef STREAMSHARE_ENGINE_RECORD_H_
#define STREAMSHARE_ENGINE_RECORD_H_

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "common/decimal.h"
#include "common/status.h"
#include "engine/item.h"
#include "engine/latency.h"
#include "predicate/atomic.h"
#include "xml/path.h"
#include "xml/xml_node.h"

namespace streamshare::engine {

/// Static tables of the photon schema. Node ids are document order.
struct PhotonSchema {
  static constexpr int kNodeCount = 11;
  static constexpr int kFieldCount = 7;  // leaves, in document order

  // Node ids in document order.
  static constexpr int kPhoton = 0;
  static constexpr int kPhc = 1;
  static constexpr int kCoord = 2;
  static constexpr int kCel = 3;
  static constexpr int kRa = 4;
  static constexpr int kDec = 5;
  static constexpr int kDet = 6;
  static constexpr int kDx = 7;
  static constexpr int kDy = 8;
  static constexpr int kEn = 9;
  static constexpr int kDetTime = 10;

  // Field indices (leaves in document order).
  static constexpr int kFieldPhc = 0;
  static constexpr int kFieldRa = 1;
  static constexpr int kFieldDec = 2;
  static constexpr int kFieldDx = 3;
  static constexpr int kFieldDy = 4;
  static constexpr int kFieldEn = 5;
  static constexpr int kFieldDetTime = 6;

  static constexpr uint16_t kRootBit = 1;
  static constexpr uint16_t kFullMask = (1u << kNodeCount) - 1;

  /// Tag name of each node.
  static std::string_view Name(int node);
  /// Parent node id (-1 for the root).
  static int Parent(int node);
  /// Child node ids in document order (empty span for leaves).
  static std::span<const int> Children(int node);
  /// Field index of a leaf node, -1 for structural nodes.
  static int FieldOf(int node);
  /// Leaf node id of a field index.
  static int NodeOf(int field);

  /// Resolves a child-axis path (relative to <photon>) to a schema node
  /// id, or -1 when the path leaves the schema. The empty path resolves
  /// to the root.
  static int Resolve(const xml::Path& path);
};

/// One photon item as a flat record. Trivially copyable; leaf texts are
/// stored inline exactly as they appeared in the XML (materialization and
/// byte accounting reproduce them verbatim), next to the decimal value
/// predicates and aggregations consume.
class PhotonRecord {
 public:
  /// Longest leaf text carried inline; photons with longer texts fall
  /// back to the XML representation.
  static constexpr size_t kMaxFieldText = 30;

  PhotonRecord() = default;

  /// Presence mask over the schema nodes (bit i = node i present).
  uint16_t mask() const { return mask_; }
  bool has_node(int node) const { return (mask_ >> node) & 1; }
  bool has_field(int field) const {
    return has_node(PhotonSchema::NodeOf(field));
  }

  /// Raw text of a present leaf field.
  std::string_view text(int field) const {
    return std::string_view(fields_[field].text, fields_[field].len);
  }
  /// Parsed decimal value of a present leaf field.
  const Decimal& value(int field) const { return fields_[field].value; }

  /// Sets a leaf field (marks the node, and its ancestors, present).
  /// `text` must fit kMaxFieldText; `value` must be Decimal::Parse of the
  /// trimmed text.
  void SetField(int field, std::string_view text, const Decimal& value);

  /// Marks a structural node (and its ancestors) present without a value
  /// — empty structural elements survive projection, so decoders need it.
  void MarkNode(int node);

  /// Converts a DOM item. Returns false (leaving *out untouched) when the
  /// item does not conform: wrong root, children out of document order or
  /// duplicated, unexpected names, text on structural nodes, leaf text
  /// that is over-long or not a decimal.
  static bool FromXml(const xml::XmlNode& item, PhotonRecord* out);

  /// Rebuilds the exact XML tree this record was adopted from (or would
  /// serialize as): present nodes in document order, leaf texts verbatim.
  std::unique_ptr<xml::XmlNode> MaterializeXml() const;

  /// Rebuilds the subtree rooted at one present schema node (the tree a
  /// DOM path evaluation would select and clone). `node` must be present.
  std::unique_ptr<xml::XmlNode> MaterializeSubtree(int node) const;

  /// Serialized size in bytes, matching XmlNode::SerializedSize() of the
  /// materialized tree. Cached (records are immutable once flowing).
  size_t SerializedSize() const;

  /// Content hash matching HashItemContent() of the materialized tree.
  uint64_t ContentHash() const;

  /// The record with only `keep_mask` nodes (root always kept); the
  /// counterpart of ProjectOp on the materialized tree.
  PhotonRecord Project(uint16_t keep_mask) const;

 private:
  struct Field {
    Decimal value;
    uint8_t len = 0;
    char text[kMaxFieldText];
  };

  uint16_t mask_ = PhotonSchema::kRootBit;
  /// 0 = not yet computed (a record never serializes to 0 bytes).
  mutable uint32_t size_cache_ = 0;
  Field fields_[PhotonSchema::kFieldCount];
};

/// A batch of stream items: each slot is either a PhotonRecord or an
/// opaque XML item, with a lazily-filled materialization cache on record
/// slots so fan-out consumers share one DOM tree. Batches flow by pointer
/// through one worker at a time; receivers may Materialize (filling the
/// cache) but must not otherwise mutate a batch they were pushed.
class ItemBatch {
 public:
  struct Slot {
    PhotonRecord record;  // meaningful iff is_record
    /// The opaque item (is_record false), or the cached materialization
    /// of `record` (is_record true; null until first Materialize).
    ItemPtr item;
    bool is_record = false;
    /// Measured-latency stamp (latency.h). Unstamped by default; the
    /// executors stamp freshly fed slots, AppendSlot forwards the stamp,
    /// and operators that build new slots copy it explicitly. Excluded
    /// from content hashes and equality — stamps never change results.
    latency::ItemStamp stamp;
  };

  ItemBatch() = default;

  size_t size() const { return slots_.size(); }
  bool empty() const { return slots_.empty(); }
  void clear() { slots_.clear(); }
  void reserve(size_t n) { slots_.reserve(n); }

  const Slot& slot(size_t i) const { return slots_[i]; }
  Slot& slot(size_t i) { return slots_[i]; }

  void AppendRecord(const PhotonRecord& record) {
    Slot slot;
    slot.record = record;
    slot.is_record = true;
    slots_.push_back(std::move(slot));
  }
  /// Appends an XML item; with `adopt`, photon-conforming items are
  /// converted to records (the item pointer is kept as the ready-made
  /// materialization, so adopting never loses the original tree).
  void AppendItem(const ItemPtr& item, bool adopt);
  /// Appends a copy of another batch's slot (forwarding).
  void AppendSlot(const Slot& slot) { slots_.push_back(slot); }

  /// The XML tree of slot `i`, materializing (and caching) record slots
  /// on first use.
  const ItemPtr& Materialize(size_t i);

  /// Wraps a list of DOM items (see AppendItem for `adopt`).
  static ItemBatch FromItems(std::span<const ItemPtr> items, bool adopt);

 private:
  std::vector<Slot> slots_;
};

/// One atomic predicate compiled against the photon schema: path lookups
/// become node-id checks, constants stay exact decimals. Evaluation over
/// a record reproduces predicate::EvaluatePredicate on the materialized
/// tree exactly, including NotFound-as-false and the ParseError raised by
/// structural (non-leaf) operands.
struct CompiledPredicate {
  int lhs_node = -1;  // -1: path leaves the schema (never found)
  int rhs_node = -2;  // -2: constant rhs; -1: never found
  predicate::ComparisonOp op = predicate::ComparisonOp::kEq;
  Decimal constant;
  /// Path strings for the ParseError message on structural operands.
  std::string lhs_path;
  std::string rhs_path;
};

/// Compiles a conjunction. The compiled form is schema-only (no per-item
/// state) and valid until the predicates change.
std::vector<CompiledPredicate> CompilePredicates(
    const std::vector<predicate::AtomicPredicate>& predicates);

/// Evaluates a compiled conjunction over one record (short-circuit, in
/// order, mirroring predicate::EvaluateConjunction).
Result<bool> EvalCompiledPredicates(
    const std::vector<CompiledPredicate>& predicates,
    const PhotonRecord& record);

/// predicate::ExtractValue over a record: same value and the exact same
/// error statuses (NotFound / ParseError, messages included) as running
/// it on the materialized tree. `node` is the precompiled
/// PhotonSchema::Resolve of the path (-1 when off-schema) and
/// `path_string` its ToString, both computed once per operator.
Result<Decimal> ExtractRecordValue(const PhotonRecord& record, int node,
                                   const std::string& path_string);

/// Compiles projection output paths to a keep mask: node kept iff some
/// output path covers it (the path is a prefix of the node's path) or
/// needs it as structure (the node's path is a prefix of the output
/// path). Intersecting a record's mask with this mask reproduces
/// ProjectOp on the materialized tree.
uint16_t CompileProjectionMask(const std::vector<xml::Path>& output_paths);

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_RECORD_H_
