// Push-based streaming operators. An operator receives items via Push,
// transforms them, and emits results to its downstream operators; fan-out
// (the paper's stream duplication at a super-peer) is simply multiple
// downstreams sharing the immutable items. Each operator is placed on a
// peer and bills work units to the deployment's Metrics on every
// invocation, so measured per-peer CPU load falls out of execution.

#ifndef STREAMSHARE_ENGINE_OPERATOR_H_
#define STREAMSHARE_ENGINE_OPERATOR_H_

#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/item.h"
#include "engine/latency.h"
#include "engine/metrics.h"
#include "engine/record.h"
#include "predicate/atomic.h"
#include "xml/path.h"

namespace streamshare::obs {
class Histogram;
}  // namespace streamshare::obs

namespace streamshare::engine {

class Operator {
 public:
  explicit Operator(std::string label) : label_(std::move(label)) {}
  virtual ~Operator() = default;

  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  const std::string& label() const { return label_; }

  /// Attaches a downstream consumer (not owned).
  void AddDownstream(Operator* downstream) {
    downstreams_.push_back(downstream);
  }
  /// Detaches a downstream consumer (query deregistration); no-op if it
  /// is not attached.
  void RemoveDownstream(Operator* downstream) {
    downstreams_.erase(
        std::remove(downstreams_.begin(), downstreams_.end(), downstream),
        downstreams_.end());
  }
  /// Swaps `from` for `to` in place, preserving emission order. Used by
  /// the parallel executor to splice queue ports into cross-peer edges
  /// (and to splice the original consumers back afterwards).
  void ReplaceDownstream(Operator* from, Operator* to) {
    std::replace(downstreams_.begin(), downstreams_.end(), from, to);
  }
  const std::vector<Operator*>& downstreams() const { return downstreams_; }

  /// Successors invoked through direct pointers rather than the
  /// downstream list (e.g. a combine port feeding its combiner). They
  /// share this operator's state unsynchronized, so a partitioned
  /// executor must keep them on the same worker.
  virtual void AppendHardSuccessors(std::vector<Operator*>*) {}

  /// Metrics sinks this operator writes to (accounting, link traffic).
  virtual void AppendMetricsTargets(std::vector<Metrics*>* out) {
    if (metrics_ != nullptr) out->push_back(metrics_);
  }
  /// Redirects every metrics pointer currently equal to `from` to `to` —
  /// the parallel executor points operators at per-worker shards for the
  /// duration of a run, then back.
  virtual void RebindMetrics(Metrics* from, Metrics* to) {
    if (metrics_ == from) metrics_ = to;
  }

  /// Bills `work_per_item` units to `peer` in `metrics` on every Push.
  void SetAccounting(Metrics* metrics, network::NodeId peer,
                     double work_per_item) {
    metrics_ = metrics;
    peer_ = peer;
    work_per_item_ = work_per_item;
  }
  network::NodeId peer() const { return peer_; }

  /// Feeds one item through this operator.
  Status Push(const ItemPtr& item) {
    if (metrics_ != nullptr) metrics_->AddWork(peer_, work_per_item_);
    return Process(item);
  }

  /// Feeds a batch of items. Billing is identical to size() Push calls
  /// (AddWorkN loops the adds); ProcessBatch gives operators a whole-batch
  /// hot path over the compact record slots. The batch stays owned by the
  /// caller: receivers may materialize slots (filling the lazy XML cache)
  /// but must not reshape the batch itself.
  Status PushBatch(ItemBatch* batch) {
    if (batch->empty()) return Status::Ok();
    if (metrics_ != nullptr) {
      metrics_->AddWorkN(peer_, work_per_item_, batch->size());
    }
    return ProcessBatch(batch);
  }

  /// Signals end of stream; flushes buffered state downstream. Idempotent.
  Status Finish();

  /// Windows currently open in this operator that hold partial content —
  /// state that is destroyed (not flushed) when the operator is detached
  /// by failure recovery. Stateless operators report 0. Recovery sums
  /// this over a torn-down plan into the recover.lost_windows counter.
  virtual size_t OpenWindowCount() const { return 0; }

 protected:
  virtual Status Process(const ItemPtr& item) = 0;
  /// Batch hook. The default materializes each slot and loops Process, so
  /// operators that genuinely need tree structure (window contents,
  /// combine, restructure) keep exact per-item semantics. Vectorized
  /// overrides that buffer output slots must flush the buffered results
  /// downstream *before* returning an error, so a failing run delivers
  /// exactly the prefix the per-item path would have.
  virtual Status ProcessBatch(ItemBatch* batch) {
    for (size_t i = 0; i < batch->size(); ++i) {
      // The per-item fallback re-enters the synchronous DOM push path;
      // surface the slot's latency stamp as the thread-local ambient so
      // sinks (and window flushes triggered by this item) still see it.
      latency::AmbientScope stamp(batch->slot(i).stamp);
      SS_RETURN_IF_ERROR(Process(batch->Materialize(i)));
    }
    return Status::Ok();
  }
  /// Flush hook for stateful operators; may Emit.
  virtual Status OnFinish() { return Status::Ok(); }

  /// Forwards an item to all downstreams.
  Status Emit(const ItemPtr& item);
  /// Forwards a batch to all downstreams.
  Status EmitBatch(ItemBatch* batch);

 private:
  std::string label_;
  std::vector<Operator*> downstreams_;
  Metrics* metrics_ = nullptr;
  network::NodeId peer_ = -1;
  double work_per_item_ = 0.0;
  bool finished_ = false;
};

/// σ: forwards items satisfying a conjunctive predicate.
class SelectOp : public Operator {
 public:
  SelectOp(std::string label,
           std::vector<predicate::AtomicPredicate> predicates)
      : Operator(std::move(label)), predicates_(std::move(predicates)) {}

  const std::vector<predicate::AtomicPredicate>& predicates() const {
    return predicates_;
  }
  /// Reconfigures the predicate in place — stream widening (paper §6)
  /// relaxes a deployed stream's selection so it regains data a new
  /// subscription needs.
  void set_predicates(std::vector<predicate::AtomicPredicate> predicates) {
    predicates_ = std::move(predicates);
    compiled_valid_ = false;
  }

 protected:
  Status Process(const ItemPtr& item) override;
  /// Evaluates the conjunction compiled against the photon schema over
  /// record slots, falling back to tree evaluation for opaque slots.
  Status ProcessBatch(ItemBatch* batch) override;

 private:
  std::vector<predicate::AtomicPredicate> predicates_;
  std::vector<CompiledPredicate> compiled_;
  bool compiled_valid_ = false;
  ItemBatch scratch_;
};

/// Π: rebuilds each item keeping only the subtrees covered by the output
/// paths (ancestors of kept subtrees survive as structure).
class ProjectOp : public Operator {
 public:
  ProjectOp(std::string label, std::vector<xml::Path> output_paths)
      : Operator(std::move(label)),
        output_paths_(std::move(output_paths)) {}

  const std::vector<xml::Path>& output_paths() const {
    return output_paths_;
  }
  /// Reconfigures the kept paths in place (stream widening).
  void set_output_paths(std::vector<xml::Path> output_paths) {
    output_paths_ = std::move(output_paths);
    mask_valid_ = false;
  }

 protected:
  Status Process(const ItemPtr& item) override;
  /// Projects record slots by mask intersection (no allocation), opaque
  /// slots by the tree rebuild.
  Status ProcessBatch(ItemBatch* batch) override;

 private:
  std::vector<xml::Path> output_paths_;
  uint16_t keep_mask_ = 0;
  bool mask_valid_ = false;
  ItemBatch scratch_;
};

/// Transmission over one network connection: counts the item's serialized
/// bytes against the link, then forwards.
class LinkOp : public Operator {
 public:
  LinkOp(std::string label, Metrics* metrics, network::LinkId link)
      : Operator(std::move(label)), link_metrics_(metrics), link_(link) {}

  void AppendMetricsTargets(std::vector<Metrics*>* out) override {
    Operator::AppendMetricsTargets(out);
    if (link_metrics_ != nullptr) out->push_back(link_metrics_);
  }
  void RebindMetrics(Metrics* from, Metrics* to) override {
    Operator::RebindMetrics(from, to);
    if (link_metrics_ == from) link_metrics_ = to;
  }

  /// The topology connection this operator transmits over — lets the
  /// transport layer attribute measured bytes-on-wire to the same link
  /// the cost model predicted u_b(e) for.
  network::LinkId link() const { return link_; }

 protected:
  Status Process(const ItemPtr& item) override;
  /// Bills record sizes without materializing, then forwards the batch.
  Status ProcessBatch(ItemBatch* batch) override;

 private:
  Metrics* link_metrics_;
  network::LinkId link_;
};

/// Terminal collector: counts items and (optionally) keeps them.
class SinkOp : public Operator {
 public:
  explicit SinkOp(std::string label, bool keep_items = false)
      : Operator(std::move(label)), keep_items_(keep_items) {}

  uint64_t item_count() const { return item_count_; }
  uint64_t total_bytes() const { return total_bytes_; }
  const std::vector<ItemPtr>& items() const { return items_; }

  /// Starts folding every received item into content_hash() (an
  /// order-insensitive structural hash). Off by default so the hot path
  /// of ordinary runs is unchanged; the transport runner enables it to
  /// compare results across execution modes.
  void EnableContentHash() { hash_items_ = true; }
  uint64_t content_hash() const { return content_hash_; }

  /// Folds counts collected by another process's copy of this sink (the
  /// transport layer's multi-process mode reports them back over a pipe).
  void MergeCounts(uint64_t item_count, uint64_t total_bytes,
                   uint64_t content_hash) {
    item_count_ += item_count;
    total_bytes_ += total_bytes;
    content_hash_ += content_hash;
  }

  /// Starts recording measured end-to-end latency of stamped arrivals
  /// into latency.query.<query>.{e2e_us,stage.*_us} histograms in the
  /// default registry (sharded; fork-per-worker children report them back
  /// through the transport pipe protocol). Stage attribution: queue-wait
  /// and transport time accumulate in the stamp on the way here, pipeline
  /// time is the end-to-end remainder. Unstamped items are skipped.
  void EnableLatencyRecording(const std::string& query);

  /// e2e histogram installed by EnableLatencyRecording (null before).
  const obs::Histogram* latency_histogram() const { return lat_e2e_; }
  /// Stamped arrivals recorded by this sink instance.
  uint64_t stamped_count() const { return stamped_count_; }
  /// Arrivals whose ingress tick ran backwards vs. the previous stamped
  /// arrival. A serial run feeds and delivers in order, so the fuzz
  /// oracle requires 0 here on its stamped serial run.
  uint64_t stamp_regressions() const { return stamp_regressions_; }

 protected:
  Status Process(const ItemPtr& item) override;
  /// Counts, sizes and hashes straight off the record slots; materializes
  /// a tree only when the sink keeps items.
  Status ProcessBatch(ItemBatch* batch) override;
  /// Folds any batched latency observations into the shared histograms.
  Status OnFinish() override;

 private:
  /// Latency observations accumulate in these plain (single-writer)
  /// shards — a sink is only ever driven by one thread — and fold into
  /// the sharded registry histograms every kLatencyFlushInterval stamped
  /// arrivals and at Finish. Four atomic observes per delivered item
  /// would dominate the record hot path otherwise.
  struct LocalHist {
    std::vector<uint64_t> buckets;
    uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
  };
  static void ObserveLocal(LocalHist* local, const obs::Histogram& hist,
                           double value);
  void FlushLatency();
  /// `now` is the arrival tick — NowUs() read once per delivered batch
  /// (slots of one batch share their arrival instant, like a fed chunk
  /// shares its ingress tick).
  void RecordLatency(const latency::ItemStamp& stamp, uint64_t now);

  bool keep_items_;
  bool hash_items_ = false;
  uint64_t item_count_ = 0;
  uint64_t total_bytes_ = 0;
  uint64_t content_hash_ = 0;
  std::vector<ItemPtr> items_;
  obs::Histogram* lat_e2e_ = nullptr;
  obs::Histogram* lat_pipeline_ = nullptr;
  obs::Histogram* lat_queue_ = nullptr;
  obs::Histogram* lat_transport_ = nullptr;
  LocalHist loc_e2e_;
  LocalHist loc_pipeline_;
  LocalHist loc_queue_;
  LocalHist loc_transport_;
  uint64_t unflushed_ = 0;
  uint64_t last_ingress_us_ = 0;
  uint64_t stamped_count_ = 0;
  uint64_t stamp_regressions_ = 0;
};

/// Identity operator marking a tap point (stream entry at a node).
class PassOp : public Operator {
 public:
  explicit PassOp(std::string label) : Operator(std::move(label)) {}

 protected:
  Status Process(const ItemPtr& item) override { return Emit(item); }
  Status ProcessBatch(ItemBatch* batch) override { return EmitBatch(batch); }
};

/// Order-sensitive structural hash of one item (names, texts, children in
/// pre-order). Sinks sum these per item into an order-insensitive
/// aggregate; PhotonRecord::ContentHash() matches this exactly.
uint64_t HashItemContent(const xml::XmlNode& item);

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_OPERATOR_H_
