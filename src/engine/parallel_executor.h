// Peer-partitioned parallel execution of a deployed operator network.
//
// The serial executor pushes every item through every peer's operators on
// one thread; here the operator graph is partitioned by the peer each
// operator is deployed on (the paper's unit of concurrency — a super-peer
// evaluates its resident operators independently), every edge that
// crosses a partition is spliced onto a bounded MPSC LinkQueue, and one
// worker thread drives each partition. Workers are formed in topological
// order of the operator DAG: a peer's operators stay on one worker unless
// that would close a cycle among workers — then the peer splits into a
// second worker — so blocking pushes always point down a DAG and
// backpressure cannot deadlock. (A Tarjan SCC pass remains as a safety
// net for graphs that are themselves cyclic.)
//
// End of stream uses poison pills: each producer (the feeder, and every
// upstream worker) enqueues one pill after its last item; once a worker
// has collected all expected pills it calls Finish() on its boundary
// operators — exactly once per operator, on the operator's own thread.
//
// Metrics are sharded per worker: operators are rebound to a worker-local
// Metrics for the duration of the run (the hot path stays atomic-free)
// and the shards are merged into the original Metrics at the end.

#ifndef STREAMSHARE_ENGINE_PARALLEL_EXECUTOR_H_
#define STREAMSHARE_ENGINE_PARALLEL_EXECUTOR_H_

#include <cstdint>
#include <vector>

#include "engine/operator.h"

namespace streamshare::engine {

struct ParallelOptions {
  /// Items each worker's inbound queue holds before producers block
  /// (pills count as one item; a batch is admitted whole once any space
  /// is free).
  size_t queue_capacity = 1024;
  /// Items per ItemBatch handoff: the feeder and every queue port flush
  /// once they have buffered this many.
  size_t batch_size = 64;
  /// Cap on worker threads; 0 means std::thread::hardware_concurrency().
  /// Peer partitions beyond the cap are coalesced along the worker DAG
  /// (CoalesceWorkers), so one thread drives several peers instead of
  /// oversubscribing the machine.
  size_t max_workers = 0;
  /// Convert photon-conforming items into compact records while feeding
  /// (the batched hot path). Off, every slot stays an opaque tree and
  /// operators take the same evaluation path as the serial executor.
  bool adopt_records = true;
};

/// Per-worker observability for one Run (queue pressure, partition
/// shape). Indexed by worker id.
struct ParallelWorkerStats {
  /// Peers whose operators run on this worker (usually exactly one; a
  /// peer may also appear on several workers when its operators were
  /// split to keep the worker handoff graph acyclic).
  std::vector<network::NodeId> peers;
  size_t operator_count = 0;
  /// Items pushed into this worker's queue, poison pills included.
  uint64_t entries_received = 0;
  /// Time producers spent blocked on this worker's full queue.
  uint64_t producer_blocked_ns = 0;
  /// Time this worker spent blocked waiting for input.
  uint64_t consumer_blocked_ns = 0;
  /// High-water mark of this worker's queue depth (pills included).
  uint64_t max_queue_depth = 0;
};

class ParallelExecutor {
 public:
  explicit ParallelExecutor(ParallelOptions options = ParallelOptions());

  /// Feeds `item_lists[s]` into `entries[s]` (round-robin across streams,
  /// per-stream order preserved), then signals end of stream — the same
  /// single-shot contract as RunStreams(..., finish=true). The operator
  /// graph is restored to its serial wiring before returning, so serial
  /// and parallel runs can alternate on one deployment. With
  /// finish=false the workers drain their pills but skip Finish(), so
  /// windowed state survives for a later segment (mid-run churn).
  Status Run(const std::vector<Operator*>& entries,
             const std::vector<std::vector<ItemPtr>>& item_lists,
             bool finish = true);

  /// Single-stream convenience, mirroring RunStream.
  Status Run(Operator* entry, const std::vector<ItemPtr>& items);

  /// Stats of the most recent Run.
  const std::vector<ParallelWorkerStats>& worker_stats() const {
    return worker_stats_;
  }

 private:
  ParallelOptions options_;
  std::vector<ParallelWorkerStats> worker_stats_;
};

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_PARALLEL_EXECUTOR_H_
