// Peer-partition planning for a deployed operator network, shared by the
// in-process parallel executor and the transport layer's partitioned
// runner. The operator graph is discovered from the entry operators,
// every operator is resolved to the super-peer it is deployed on, and
// operators are grouped into workers (one per peer, splitting a peer when
// merging would close a cycle among workers) so that every cross-worker
// handoff points down a DAG — bounded blocking on such edges cannot
// deadlock, and the end-of-stream pill protocol terminates.

#ifndef STREAMSHARE_ENGINE_PARTITION_H_
#define STREAMSHARE_ENGINE_PARTITION_H_

#include <cstdint>
#include <set>
#include <unordered_map>
#include <vector>

#include "engine/operator.h"

namespace streamshare::engine {

/// The partition of one operator graph: which worker drives each
/// operator, and which edges cross workers. Operator indices are
/// discovery order (BFS from the entries) — deterministic for a given
/// deployment, so two processes that built the same deployment agree on
/// every index.
struct PartitionPlan {
  /// Discovered operators in discovery order; the index into this vector
  /// is the operator's stable id.
  std::vector<Operator*> ops;
  std::unordered_map<Operator*, size_t> op_index;
  /// Downstream edges by operator index (the serial wiring; hard
  /// successors are not included).
  std::vector<std::vector<size_t>> succ;
  /// Resolved super-peer of each operator (operators without accounting
  /// inherit from the nearest accounted neighbor; isolated chains fall
  /// back to peer of worker 0).
  std::vector<int> peer_key;
  /// Worker driving each operator.
  std::vector<size_t> worker_of;
  size_t worker_count = 0;

  /// One deduplicated cross-worker edge, in discovery order.
  struct CrossEdge {
    size_t source = 0;  // op index on worker_of[source]
    size_t target = 0;  // op index on worker_of[target], a different worker
  };
  std::vector<CrossEdge> cross_edges;

  /// Peers whose operators run on each worker (a peer may appear on
  /// several workers when it was split to keep the handoff graph
  /// acyclic).
  std::vector<std::vector<network::NodeId>> worker_peers;
  std::vector<size_t> worker_operator_count;
  /// Workers each worker feeds across at least one cross edge.
  std::vector<std::set<size_t>> worker_downstream;

  size_t WorkerOf(Operator* op) const {
    return worker_of[op_index.at(op)];
  }
};

/// Plans the peer partition of the graph reachable from `entries`.
/// Fails on null entries. The graph is left untouched — callers splice
/// their own ports into the cross edges.
Status PlanPeerPartitions(const std::vector<Operator*>& entries,
                          PartitionPlan* plan);

/// Merges the plan's workers down to at most `max_workers` (no-op when
/// already within the cap or `max_workers` is 0). Workers are cut into
/// contiguous segments of a topological order of the worker handoff DAG,
/// balanced by operator count, so every surviving handoff edge still
/// points down a DAG and the pill protocol stays deadlock-free. The
/// in-process parallel executor applies this against hardware
/// concurrency; the transport runner does not (its workers model distinct
/// peers, which is semantic, not a tuning knob).
void CoalesceWorkers(PartitionPlan* plan, size_t max_workers);

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_PARTITION_H_
