#include "engine/record.h"

#include <cassert>

#include "common/string_util.h"
#include "predicate/eval.h"

namespace streamshare::engine {

namespace {

constexpr std::string_view kNames[PhotonSchema::kNodeCount] = {
    "photon", "phc", "coord", "cel", "ra", "dec",
    "det",    "dx",  "dy",    "en",  "det_time"};

constexpr int kParents[PhotonSchema::kNodeCount] = {-1, 0, 0, 2, 3, 3,
                                                    2,  6, 6, 0, 0};

constexpr int kPhotonChildren[] = {PhotonSchema::kPhc, PhotonSchema::kCoord,
                                   PhotonSchema::kEn,
                                   PhotonSchema::kDetTime};
constexpr int kCoordChildren[] = {PhotonSchema::kCel, PhotonSchema::kDet};
constexpr int kCelChildren[] = {PhotonSchema::kRa, PhotonSchema::kDec};
constexpr int kDetChildren[] = {PhotonSchema::kDx, PhotonSchema::kDy};

constexpr int kFieldOf[PhotonSchema::kNodeCount] = {-1, 0,  -1, -1, 1, 2,
                                                    -1, 3,  4,  5,  6};

constexpr int kNodeOf[PhotonSchema::kFieldCount] = {
    PhotonSchema::kPhc, PhotonSchema::kRa, PhotonSchema::kDec,
    PhotonSchema::kDx,  PhotonSchema::kDy, PhotonSchema::kEn,
    PhotonSchema::kDetTime};

// Same constants and mixing as operator.cc's sink hash, so
// PhotonRecord::ContentHash() equals HashItemContent() of the
// materialized tree byte for byte.
constexpr uint64_t kFnvSeed = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t MixBytes(uint64_t hash, std::string_view bytes) {
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  hash ^= 0xff;
  hash *= kFnvPrime;
  return hash;
}

}  // namespace

std::string_view PhotonSchema::Name(int node) { return kNames[node]; }

int PhotonSchema::Parent(int node) { return kParents[node]; }

std::span<const int> PhotonSchema::Children(int node) {
  switch (node) {
    case kPhoton:
      return kPhotonChildren;
    case kCoord:
      return kCoordChildren;
    case kCel:
      return kCelChildren;
    case kDet:
      return kDetChildren;
    default:
      return {};
  }
}

int PhotonSchema::FieldOf(int node) { return kFieldOf[node]; }

int PhotonSchema::NodeOf(int field) { return kNodeOf[field]; }

int PhotonSchema::Resolve(const xml::Path& path) {
  int node = kPhoton;
  for (const std::string& step : path.steps()) {
    int next = -1;
    for (int child : Children(node)) {
      if (Name(child) == step) {
        next = child;
        break;
      }
    }
    if (next < 0) return -1;
    node = next;
  }
  return node;
}

void PhotonRecord::SetField(int field, std::string_view text,
                            const Decimal& value) {
  assert(text.size() <= kMaxFieldText);
  Field& f = fields_[field];
  f.value = value;
  f.len = static_cast<uint8_t>(text.size());
  text.copy(f.text, text.size());
  MarkNode(PhotonSchema::NodeOf(field));
}

void PhotonRecord::MarkNode(int node) {
  for (; node >= 0; node = PhotonSchema::Parent(node)) {
    mask_ |= static_cast<uint16_t>(1u << node);
  }
  size_cache_ = 0;
}

bool PhotonRecord::FromXml(const xml::XmlNode& item, PhotonRecord* out) {
  if (item.name() != PhotonSchema::Name(PhotonSchema::kPhoton)) return false;
  PhotonRecord rec;
  // Children must be a subsequence of the schema's children in document
  // order (so sibling names are unique and EvaluateFirst, projection and
  // materialization are all exact over the mask).
  auto adopt = [&rec](auto&& self, const xml::XmlNode& x, int node) -> bool {
    int field = PhotonSchema::FieldOf(node);
    if (field >= 0) {
      if (!x.children().empty()) return false;
      if (x.text().size() > kMaxFieldText) return false;
      Result<Decimal> value = Decimal::Parse(Trim(x.text()));
      if (!value.ok()) return false;
      rec.SetField(field, x.text(), *value);
      return true;
    }
    if (!x.text().empty()) return false;
    rec.mask_ |= static_cast<uint16_t>(1u << node);
    std::span<const int> schema_children = PhotonSchema::Children(node);
    size_t k = 0;
    for (const auto& child : x.children()) {
      while (k < schema_children.size() &&
             PhotonSchema::Name(schema_children[k]) != child->name()) {
        ++k;
      }
      if (k == schema_children.size()) return false;
      if (!self(self, *child, schema_children[k])) return false;
      ++k;
    }
    return true;
  };
  if (!adopt(adopt, item, PhotonSchema::kPhoton)) return false;
  *out = rec;
  return true;
}

namespace {

std::unique_ptr<xml::XmlNode> BuildNode(const PhotonRecord& rec, int node) {
  auto built =
      std::make_unique<xml::XmlNode>(std::string(PhotonSchema::Name(node)));
  int field = PhotonSchema::FieldOf(node);
  if (field >= 0) {
    built->set_text(std::string(rec.text(field)));
    return built;
  }
  for (int child : PhotonSchema::Children(node)) {
    if (rec.has_node(child)) built->AddChild(BuildNode(rec, child));
  }
  return built;
}

}  // namespace

std::unique_ptr<xml::XmlNode> PhotonRecord::MaterializeXml() const {
  return BuildNode(*this, PhotonSchema::kPhoton);
}

std::unique_ptr<xml::XmlNode> PhotonRecord::MaterializeSubtree(
    int node) const {
  return BuildNode(*this, node);
}

size_t PhotonRecord::SerializedSize() const {
  if (size_cache_ != 0) return size_cache_;
  size_t size = 0;
  for (int node = 0; node < PhotonSchema::kNodeCount; ++node) {
    if (!has_node(node)) continue;
    int field = PhotonSchema::FieldOf(node);
    if (field >= 0) {
      std::string_view t = text(field);
      size += xml::XmlNode::TagBytes(PhotonSchema::Name(node).size(),
                                     t.empty()) +
              xml::XmlNode::EscapedTextBytes(t);
      continue;
    }
    bool empty = true;
    for (int child : PhotonSchema::Children(node)) {
      if (has_node(child)) {
        empty = false;
        break;
      }
    }
    size += xml::XmlNode::TagBytes(PhotonSchema::Name(node).size(), empty);
  }
  size_cache_ = static_cast<uint32_t>(size);
  return size;
}

namespace {

uint64_t HashNode(const PhotonRecord& rec, int node, uint64_t hash) {
  hash = MixBytes(hash, PhotonSchema::Name(node));
  int field = PhotonSchema::FieldOf(node);
  hash = MixBytes(hash, field >= 0 ? rec.text(field) : std::string_view());
  for (int child : PhotonSchema::Children(node)) {
    if (rec.has_node(child)) hash = HashNode(rec, child, hash);
  }
  return hash;
}

}  // namespace

uint64_t PhotonRecord::ContentHash() const {
  return HashNode(*this, PhotonSchema::kPhoton, kFnvSeed);
}

PhotonRecord PhotonRecord::Project(uint16_t keep_mask) const {
  PhotonRecord projected = *this;
  projected.mask_ = static_cast<uint16_t>((mask_ & keep_mask) |
                                          PhotonSchema::kRootBit);
  projected.size_cache_ = 0;
  return projected;
}

void ItemBatch::AppendItem(const ItemPtr& item, bool adopt) {
  Slot slot;
  if (adopt && PhotonRecord::FromXml(*item, &slot.record)) {
    slot.is_record = true;
  }
  // Conforming items keep their original tree as the ready-made
  // materialization; opaque items are the tree.
  slot.item = item;
  slots_.push_back(std::move(slot));
}

const ItemPtr& ItemBatch::Materialize(size_t i) {
  Slot& slot = slots_[i];
  if (slot.item == nullptr) slot.item = MakeItem(slot.record.MaterializeXml());
  return slot.item;
}

ItemBatch ItemBatch::FromItems(std::span<const ItemPtr> items, bool adopt) {
  ItemBatch batch;
  batch.reserve(items.size());
  for (const ItemPtr& item : items) batch.AppendItem(item, adopt);
  return batch;
}

std::vector<CompiledPredicate> CompilePredicates(
    const std::vector<predicate::AtomicPredicate>& predicates) {
  std::vector<CompiledPredicate> compiled;
  compiled.reserve(predicates.size());
  for (const predicate::AtomicPredicate& pred : predicates) {
    CompiledPredicate c;
    c.lhs_node = PhotonSchema::Resolve(pred.lhs);
    c.lhs_path = pred.lhs.ToString();
    c.op = pred.op;
    c.constant = pred.constant;
    if (pred.rhs_var.has_value()) {
      c.rhs_node = PhotonSchema::Resolve(*pred.rhs_var);
      c.rhs_path = pred.rhs_var->ToString();
    } else {
      c.rhs_node = -2;
    }
    compiled.push_back(std::move(c));
  }
  return compiled;
}

namespace {

// The exact ParseError ExtractValue raises on a structural operand: the
// node exists but its text is empty (conforming records never carry text
// on structural nodes), and empty text is not a decimal.
Status StructuralOperandError(const std::string& path) {
  return Status::ParseError("element '" + path +
                            "' does not contain a decimal value: ''");
}

}  // namespace

Result<bool> EvalCompiledPredicates(
    const std::vector<CompiledPredicate>& predicates,
    const PhotonRecord& record) {
  for (const CompiledPredicate& pred : predicates) {
    if (pred.lhs_node < 0 || !record.has_node(pred.lhs_node)) return false;
    int lhs_field = PhotonSchema::FieldOf(pred.lhs_node);
    if (lhs_field < 0) return StructuralOperandError(pred.lhs_path);
    const Decimal& lhs = record.value(lhs_field);
    Decimal rhs = pred.constant;
    if (pred.rhs_node != -2) {
      if (pred.rhs_node < 0 || !record.has_node(pred.rhs_node)) return false;
      int rhs_field = PhotonSchema::FieldOf(pred.rhs_node);
      if (rhs_field < 0) return StructuralOperandError(pred.rhs_path);
      rhs = record.value(rhs_field) + pred.constant;
    }
    if (!predicate::Compare(lhs, pred.op, rhs)) return false;
  }
  return true;
}

Result<Decimal> ExtractRecordValue(const PhotonRecord& record, int node,
                                   const std::string& path_string) {
  if (node < 0 || !record.has_node(node)) {
    return Status::NotFound("path '" + path_string +
                            "' selects no element in item <photon>");
  }
  int field = PhotonSchema::FieldOf(node);
  if (field < 0) return StructuralOperandError(path_string);
  return record.value(field);
}

uint16_t CompileProjectionMask(const std::vector<xml::Path>& output_paths) {
  uint16_t mask = PhotonSchema::kRootBit;
  for (int node = 1; node < PhotonSchema::kNodeCount; ++node) {
    std::vector<std::string> steps;
    for (int n = node; n != PhotonSchema::kPhoton;
         n = PhotonSchema::Parent(n)) {
      steps.insert(steps.begin(), std::string(PhotonSchema::Name(n)));
    }
    xml::Path node_path(std::move(steps));
    for (const xml::Path& out : output_paths) {
      if (out.IsPrefixOf(node_path) || node_path.IsPrefixOf(out)) {
        mask |= static_cast<uint16_t>(1u << node);
        break;
      }
    }
  }
  return mask;
}

}  // namespace streamshare::engine
