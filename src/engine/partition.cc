#include "engine/partition.h"

#include <algorithm>
#include <map>

namespace streamshare::engine {

namespace {

/// Union-find over dense ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// Iterative Tarjan SCC; returns a component id per node such that the
/// condensation is a DAG.
std::vector<size_t> StronglyConnectedComponents(
    const std::vector<std::set<size_t>>& adj, size_t* component_count) {
  size_t n = adj.size();
  std::vector<size_t> index(n, SIZE_MAX), lowlink(n, 0), comp(n, SIZE_MAX);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  size_t next_index = 0, components = 0;

  struct Frame {
    size_t node;
    std::set<size_t>::const_iterator it;
  };
  for (size_t start = 0; start < n; ++start) {
    if (index[start] != SIZE_MAX) continue;
    std::vector<Frame> frames;
    frames.push_back({start, adj[start].begin()});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      size_t v = frame.node;
      if (frame.it != adj[v].end()) {
        size_t w = *frame.it++;
        if (index[w] == SIZE_MAX) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, adj[w].begin()});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          while (true) {
            size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = components;
            if (w == v) break;
          }
          ++components;
        }
        frames.pop_back();
        if (!frames.empty()) {
          size_t parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  *component_count = components;
  return comp;
}

}  // namespace

Status PlanPeerPartitions(const std::vector<Operator*>& entries,
                          PartitionPlan* plan) {
  *plan = PartitionPlan();
  for (Operator* entry : entries) {
    if (entry == nullptr) {
      return Status::InvalidArgument(
          "PlanPeerPartitions: null entry operator");
    }
  }

  // --- Discover the reachable operator graph (BFS from the entries). ---
  std::vector<Operator*>& ops = plan->ops;
  std::unordered_map<Operator*, size_t>& op_index = plan->op_index;
  auto intern = [&](Operator* op) -> size_t {
    auto [it, inserted] = op_index.emplace(op, ops.size());
    if (inserted) ops.push_back(op);
    return it->second;
  };
  for (Operator* entry : entries) intern(entry);
  {
    std::vector<Operator*> hard_succ;
    for (size_t i = 0; i < ops.size(); ++i) {  // ops grows as we discover
      for (Operator* down : ops[i]->downstreams()) intern(down);
      hard_succ.clear();
      ops[i]->AppendHardSuccessors(&hard_succ);
      for (Operator* next : hard_succ) intern(next);
    }
  }
  std::vector<std::vector<size_t>>& succ = plan->succ;
  succ.assign(ops.size(), {});
  std::vector<std::vector<size_t>> pred(ops.size()), hard(ops.size());
  {
    std::vector<Operator*> hard_succ;
    for (size_t i = 0; i < ops.size(); ++i) {
      for (Operator* down : ops[i]->downstreams()) {
        size_t j = op_index[down];
        succ[i].push_back(j);
        pred[j].push_back(i);
      }
      hard_succ.clear();
      ops[i]->AppendHardSuccessors(&hard_succ);
      for (Operator* next : hard_succ) {
        size_t j = op_index[next];
        hard[i].push_back(j);
        pred[j].push_back(i);
      }
    }
  }

  // --- Resolve each operator's peer partition. Operators without
  // accounting (entry taps, sinks, combiners) inherit from the nearest
  // accounted neighbor: first along upstream edges, else downstream. ---
  std::vector<int>& peer_key = plan->peer_key;
  peer_key.assign(ops.size(), -2);
  std::vector<bool> visiting(ops.size(), false);
  auto resolve = [&](auto&& self, size_t i) -> int {
    if (peer_key[i] != -2) return peer_key[i];
    if (ops[i]->peer() >= 0) return peer_key[i] = ops[i]->peer();
    if (visiting[i]) return -2;
    visiting[i] = true;
    int resolved = -2;
    for (size_t p : pred[i]) {
      resolved = self(self, p);
      if (resolved >= 0) break;
    }
    if (resolved < 0) {
      for (size_t s : succ[i]) {
        resolved = self(self, s);
        if (resolved >= 0) break;
      }
    }
    if (resolved < 0) {
      for (size_t s : hard[i]) {
        resolved = self(self, s);
        if (resolved >= 0) break;
      }
    }
    visiting[i] = false;
    if (resolved < 0) resolved = 0;  // isolated chain: any worker will do
    return peer_key[i] = resolved;
  };
  for (size_t i = 0; i < ops.size(); ++i) resolve(resolve, i);

  // --- Contract hard-linked operators (unsynchronized shared state, must
  // share a thread) into clusters. ---
  UnionFind uf(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j : hard[i]) uf.Union(i, j);
  }
  std::map<size_t, size_t> rep_to_cluster;
  std::vector<size_t> cluster_of(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    cluster_of[i] = rep_to_cluster.emplace(uf.Find(i), rep_to_cluster.size())
                        .first->second;
  }
  size_t cluster_count = rep_to_cluster.size();
  std::vector<int> cluster_key(cluster_count, -2);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (cluster_key[cluster_of[i]] == -2) {
      cluster_key[cluster_of[i]] = peer_key[i];
    }
  }
  std::vector<std::set<size_t>> csucc(cluster_count), cpred(cluster_count);
  std::vector<size_t> indegree(cluster_count, 0);
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j : succ[i]) {
      size_t a = cluster_of[i], b = cluster_of[j];
      if (a != b && csucc[a].insert(b).second) {
        cpred[b].insert(a);
        ++indegree[b];
      }
    }
  }

  // --- Assign clusters to worker groups in topological order. A cluster
  // joins an existing group of its peer unless the new handoff edges
  // would close a cycle among groups — bounded blocking on a cycle can
  // deadlock and the pill protocol needs a DAG — in which case the peer's
  // operators split into a fresh group. Traffic flowing both ways between
  // two peers therefore costs an extra worker, not a merged one. ---
  std::vector<size_t> topo;
  topo.reserve(cluster_count);
  {
    std::vector<bool> emitted(cluster_count, false);
    for (size_t c = 0; c < cluster_count; ++c) {
      if (indegree[c] == 0) topo.push_back(c);
    }
    for (size_t head = 0; head < topo.size(); ++head) {
      emitted[topo[head]] = true;
      for (size_t d : csucc[topo[head]]) {
        if (--indegree[d] == 0) topo.push_back(d);
      }
    }
    // A cyclic operator graph never comes out of the planner; if one
    // appears anyway, append the leftovers — the SCC pass below merges
    // whatever group cycles result.
    for (size_t c = 0; c < cluster_count; ++c) {
      if (!emitted[c]) topo.push_back(c);
    }
  }
  std::vector<size_t> group_of_cluster(cluster_count, SIZE_MAX);
  std::vector<std::set<size_t>> group_succ;
  std::map<int, std::vector<size_t>> groups_for_peer;
  auto reaches = [&](size_t from, const std::set<size_t>& targets) {
    std::vector<size_t> frontier{from};
    std::set<size_t> seen{from};
    while (!frontier.empty()) {
      size_t g = frontier.back();
      frontier.pop_back();
      if (targets.count(g)) return true;
      for (size_t next : group_succ[g]) {
        if (seen.insert(next).second) frontier.push_back(next);
      }
    }
    return false;
  };
  for (size_t c : topo) {
    std::set<size_t> pred_groups;
    for (size_t p : cpred[c]) {
      if (group_of_cluster[p] != SIZE_MAX) {
        pred_groups.insert(group_of_cluster[p]);
      }
    }
    size_t chosen = SIZE_MAX;
    for (size_t g : groups_for_peer[cluster_key[c]]) {
      std::set<size_t> others = pred_groups;
      others.erase(g);
      if (others.empty() || !reaches(g, others)) {
        chosen = g;
        break;
      }
    }
    if (chosen == SIZE_MAX) {
      chosen = group_succ.size();
      group_succ.emplace_back();
      groups_for_peer[cluster_key[c]].push_back(chosen);
    }
    group_of_cluster[c] = chosen;
    for (size_t pg : pred_groups) {
      if (pg != chosen) group_succ[pg].insert(chosen);
    }
    for (size_t s : csucc[c]) {  // only relevant on the cyclic fallback
      if (group_of_cluster[s] != SIZE_MAX && group_of_cluster[s] != chosen) {
        group_succ[chosen].insert(group_of_cluster[s]);
      }
    }
  }

  // Safety net: the greedy pass keeps group_succ acyclic for any operator
  // DAG, so this is an identity map unless the graph itself was cyclic.
  size_t component_count = 0;
  std::vector<size_t> component =
      StronglyConnectedComponents(group_succ, &component_count);

  // Dense worker ids in first-use order over the operators.
  std::vector<size_t>& worker_of = plan->worker_of;
  worker_of.assign(ops.size(), 0);
  std::map<size_t, size_t> comp_to_worker;
  for (size_t i = 0; i < ops.size(); ++i) {
    size_t comp = component[group_of_cluster[cluster_of[i]]];
    worker_of[i] =
        comp_to_worker.emplace(comp, comp_to_worker.size()).first->second;
  }
  plan->worker_count = comp_to_worker.size();

  plan->worker_peers.assign(plan->worker_count, {});
  plan->worker_operator_count.assign(plan->worker_count, 0);
  plan->worker_downstream.assign(plan->worker_count, {});
  for (size_t i = 0; i < ops.size(); ++i) {
    size_t w = worker_of[i];
    ++plan->worker_operator_count[w];
    if (peer_key[i] >= 0 &&
        std::find(plan->worker_peers[w].begin(),
                  plan->worker_peers[w].end(),
                  peer_key[i]) == plan->worker_peers[w].end()) {
      plan->worker_peers[w].push_back(peer_key[i]);
    }
  }

  // --- Deduplicated cross-worker edges, in discovery order. ---
  std::set<std::pair<size_t, size_t>> seen_edges;
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j : succ[i]) {
      if (worker_of[i] == worker_of[j]) continue;
      if (!seen_edges.emplace(i, j).second) continue;
      plan->cross_edges.push_back(PartitionPlan::CrossEdge{i, j});
      plan->worker_downstream[worker_of[i]].insert(worker_of[j]);
    }
  }
  return Status::Ok();
}

void CoalesceWorkers(PartitionPlan* plan, size_t max_workers) {
  if (max_workers == 0 || plan->worker_count <= max_workers) return;
  size_t n = plan->worker_count;

  // Topological order of the worker handoff DAG (Kahn). The planner
  // guarantees acyclicity; leftovers are appended defensively.
  std::vector<size_t> indegree(n, 0);
  for (size_t w = 0; w < n; ++w) {
    for (size_t d : plan->worker_downstream[w]) ++indegree[d];
  }
  std::vector<size_t> topo;
  topo.reserve(n);
  for (size_t w = 0; w < n; ++w) {
    if (indegree[w] == 0) topo.push_back(w);
  }
  for (size_t head = 0; head < topo.size(); ++head) {
    for (size_t d : plan->worker_downstream[topo[head]]) {
      if (--indegree[d] == 0) topo.push_back(d);
    }
  }
  if (topo.size() < n) {
    std::vector<bool> placed(n, false);
    for (size_t w : topo) placed[w] = true;
    for (size_t w = 0; w < n; ++w) {
      if (!placed[w]) topo.push_back(w);
    }
  }

  // Cut the topo order into contiguous segments balanced by operator
  // count. Every edge goes to an equal-or-later topo position, so mapping
  // contiguous positions to one segment keeps the quotient a DAG.
  size_t total = 0;
  for (size_t w = 0; w < n; ++w) total += plan->worker_operator_count[w];
  std::vector<size_t> segment_of(n, 0);
  size_t seg = 0, acc = 0, remaining = total;
  size_t quota = (total + max_workers - 1) / max_workers;
  for (size_t w : topo) {
    if (acc >= quota && seg + 1 < max_workers) {
      ++seg;
      acc = 0;
      size_t segs_left = max_workers - seg;
      quota = (remaining + segs_left - 1) / segs_left;
    }
    segment_of[w] = seg;
    acc += plan->worker_operator_count[w];
    remaining -= plan->worker_operator_count[w];
  }

  // Remap to dense worker ids in first-use order over the operators (the
  // same id discipline the planner uses) and rebuild the derived fields.
  std::map<size_t, size_t> to_new;
  for (size_t i = 0; i < plan->ops.size(); ++i) {
    size_t s = segment_of[plan->worker_of[i]];
    plan->worker_of[i] = to_new.emplace(s, to_new.size()).first->second;
  }
  plan->worker_count = to_new.size();

  plan->worker_peers.assign(plan->worker_count, {});
  plan->worker_operator_count.assign(plan->worker_count, 0);
  plan->worker_downstream.assign(plan->worker_count, {});
  for (size_t i = 0; i < plan->ops.size(); ++i) {
    size_t w = plan->worker_of[i];
    ++plan->worker_operator_count[w];
    if (plan->peer_key[i] >= 0 &&
        std::find(plan->worker_peers[w].begin(), plan->worker_peers[w].end(),
                  plan->peer_key[i]) == plan->worker_peers[w].end()) {
      plan->worker_peers[w].push_back(plan->peer_key[i]);
    }
  }
  plan->cross_edges.clear();
  std::set<std::pair<size_t, size_t>> seen_edges;
  for (size_t i = 0; i < plan->ops.size(); ++i) {
    for (size_t j : plan->succ[i]) {
      if (plan->worker_of[i] == plan->worker_of[j]) continue;
      if (!seen_edges.emplace(i, j).second) continue;
      plan->cross_edges.push_back(PartitionPlan::CrossEdge{i, j});
      plan->worker_downstream[plan->worker_of[i]].insert(plan->worker_of[j]);
    }
  }
}

}  // namespace streamshare::engine
