// Shared evaluation of WXQuery return expressions against an environment
// of bound variables. Used by RestructureOp (single-input post-processing)
// and CombineOp (multi-input combination at the query's super-peer).

#ifndef STREAMSHARE_ENGINE_RETURN_EVAL_H_
#define STREAMSHARE_ENGINE_RETURN_EVAL_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "wxquery/ast.h"
#include "xml/xml_node.h"

namespace streamshare::engine {

/// Variable bindings for one return-clause evaluation.
struct ReturnEnv {
  /// Plain for-variables bound to one item each.
  std::map<std::string, const xml::XmlNode*> items;
  /// Window-contents for-variables bound to member sequences.
  std::map<std::string, std::vector<const xml::XmlNode*>> windows;
  /// Let-variables bound to finalized aggregate values.
  std::map<std::string, Decimal> aggregates;
};

/// One evaluation output: an element node or a text fragment.
using ReturnOutput =
    std::variant<std::unique_ptr<xml::XmlNode>, std::string>;

/// Resolves the decimal value of $var/path under `env`. NotFound when the
/// path selects nothing (conditions treat that as false).
Result<Decimal> ResolveValue(const wxquery::VarPath& var_path,
                             const ReturnEnv& env);

/// Evaluates a conjunction of condition atoms under `env`.
Result<bool> EvaluateReturnCondition(
    const std::vector<wxquery::WhereAtom>& atoms, const ReturnEnv& env);

/// Evaluates `expr` under `env`, appending outputs.
Status EvaluateReturn(const wxquery::Expr& expr, const ReturnEnv& env,
                      std::vector<ReturnOutput>* outputs);

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_RETURN_EVAL_H_
