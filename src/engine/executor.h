// Driving a deployed operator network: owns operators, feeds source items,
// and propagates end-of-stream. The operator graph is a forest rooted at
// per-stream entry operators; fan-out happens wherever a stream is shared.

#ifndef STREAMSHARE_ENGINE_EXECUTOR_H_
#define STREAMSHARE_ENGINE_EXECUTOR_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "engine/operator.h"

namespace streamshare::engine {

/// Canonical context prefix for a Status escaping `op` during `action`
/// ("push" or "finish"): "<action> <label>". Both the serial and the
/// parallel executor wrap operator failures through WrapOperatorFailure,
/// so a failing query reports the same string either way.
std::string OperatorContext(std::string_view action, const Operator& op);

/// Prefixes `status` with OperatorContext and emits an error event to the
/// default obs::EventLog (when a sink is installed).
Status WrapOperatorFailure(Status status, std::string_view action,
                           const Operator& op);

/// Owns a set of operators wired into a dataflow graph.
class OperatorGraph {
 public:
  /// Constructs and registers an operator; returns a borrowed pointer
  /// valid for the lifetime of the graph.
  template <typename Op, typename... Args>
  Op* Add(Args&&... args) {
    auto op = std::make_unique<Op>(std::forward<Args>(args)...);
    Op* raw = op.get();
    operators_.push_back(std::move(op));
    return raw;
  }

  size_t size() const { return operators_.size(); }

 private:
  std::vector<std::unique_ptr<Operator>> operators_;
};

/// Feeds `items` into `entry` one by one, then signals end of stream.
Status RunStream(Operator* entry, const std::vector<ItemPtr>& items);

/// Interleaves several sources round-robin (approximating concurrent
/// streams of equal rate). When `finish` is true (the default), signals
/// end of stream afterwards — a single-shot run. Pass false to keep the
/// streams live (continuous operation with more feeds to come); note that
/// end-of-stream is a one-shot signal per operator, so finishing is only
/// meaningful once.
Status RunStreams(const std::vector<Operator*>& entries,
                  const std::vector<std::vector<ItemPtr>>& item_lists,
                  bool finish = true);

/// Batched drive of the same streams: chunks each stream's items into
/// ItemBatches of `batch_size` (adopting photon-conforming items into
/// compact records when `adopt` is true) and round-robins whole chunks
/// across streams. Per-stream order and all sink aggregates match
/// RunStreams; only the cross-stream interleave granularity differs
/// (chunks instead of single items).
Status RunStreamsBatched(const std::vector<Operator*>& entries,
                         const std::vector<std::vector<ItemPtr>>& item_lists,
                         size_t batch_size, bool adopt, bool finish = true);

/// Round-robins pre-built per-stream batch lists (generator- or
/// decoder-fed runs that never had a DOM to chunk). Batches are consumed
/// in place: pushing may fill their lazy materialization caches.
Status RunBatchStreams(const std::vector<Operator*>& entries,
                       std::vector<std::vector<ItemBatch>>* batch_lists,
                       bool finish = true);

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_EXECUTOR_H_
