// Local (single-process) WXQuery evaluation: run a subscription over an
// XML document or a vector of items without any network, planner, or
// deployment — the smallest way to use the query machinery as a library,
// and the reference evaluator the distributed paths are tested against.

#ifndef STREAMSHARE_ENGINE_LOCAL_QUERY_H_
#define STREAMSHARE_ENGINE_LOCAL_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "engine/item.h"
#include "wxquery/analyzer.h"

namespace streamshare::engine {

/// The result of a local evaluation.
struct LocalQueryResult {
  /// Result items, in order (one per return-clause evaluation output).
  std::vector<ItemPtr> items;
  /// The wrapper element tag of the query (e.g. "photons"), empty if the
  /// query has none.
  std::string wrapper_tag;

  /// Serializes the result as one document wrapped in the wrapper tag
  /// (or "result" if the query has none).
  std::string ToDocument() const;
};

/// Evaluates an analyzed single-input query over stream items. Items must
/// be the query's input stream items (e.g. <photon> elements).
Result<LocalQueryResult> RunLocalQuery(
    const wxquery::AnalyzedQuery& query,
    const std::vector<ItemPtr>& items);

/// Convenience: parse + analyze + evaluate over an XML document whose
/// root is the stream element. The document's root element name must
/// match the stream root in the query's binding path.
Result<LocalQueryResult> RunLocalQuery(std::string_view query_text,
                                       std::string_view xml_document);

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_LOCAL_QUERY_H_
