#include "engine/window_agg.h"

#include <algorithm>

#include "common/string_util.h"
#include "predicate/eval.h"

namespace streamshare::engine {

using properties::AggregateFunc;
using properties::WindowSpec;
using properties::WindowType;

Result<Decimal> AggItem::Finalize(AggregateFunc func) const {
  switch (func) {
    case AggregateFunc::kSum:
      if (!sum.has_value()) {
        return Status::InvalidArgument("aggregate item carries no sum");
      }
      return *sum;
    case AggregateFunc::kCount:
      if (!count.has_value()) {
        return Status::InvalidArgument("aggregate item carries no count");
      }
      return Decimal::FromInt(*count);
    case AggregateFunc::kAvg: {
      if (!sum.has_value() || !count.has_value()) {
        return Status::InvalidArgument(
            "aggregate item carries no sum/count pair");
      }
      if (*count == 0) {
        return Status::OutOfRange("average of an empty window");
      }
      return Decimal::FromDouble(
          sum->ToDouble() / static_cast<double>(*count), 6);
    }
    case AggregateFunc::kMin:
    case AggregateFunc::kMax:
      if (!value.has_value()) {
        return Status::OutOfRange("extremum of an empty window");
      }
      return *value;
  }
  return Status::Internal("unknown aggregate function");
}

ItemPtr MakeAggItem(const AggItem& agg) {
  auto node = std::make_unique<xml::XmlNode>("wagg");
  node->AddLeaf("seq", std::to_string(agg.seq));
  if (agg.sum.has_value()) node->AddLeaf("sum", agg.sum->ToString());
  if (agg.count.has_value()) {
    node->AddLeaf("cnt", std::to_string(*agg.count));
  }
  if (agg.value.has_value()) node->AddLeaf("val", agg.value->ToString());
  return MakeItem(std::move(node));
}

Result<AggItem> ParseAggItem(const xml::XmlNode& item) {
  if (item.name() != "wagg") {
    return Status::InvalidArgument("expected a <wagg> item, got <" +
                                   item.name() + ">");
  }
  AggItem agg;
  const xml::XmlNode* seq = item.FirstChild("seq");
  if (seq == nullptr) {
    return Status::InvalidArgument("<wagg> item without <seq>");
  }
  SS_ASSIGN_OR_RETURN(Decimal seq_value, Decimal::Parse(Trim(seq->text())));
  if (seq_value.scale() != 0) {
    return Status::InvalidArgument("<seq> must be integral");
  }
  agg.seq = seq_value.unscaled();
  if (const xml::XmlNode* sum = item.FirstChild("sum")) {
    SS_ASSIGN_OR_RETURN(Decimal value, Decimal::Parse(Trim(sum->text())));
    agg.sum = value;
  }
  if (const xml::XmlNode* count = item.FirstChild("cnt")) {
    SS_ASSIGN_OR_RETURN(Decimal value, Decimal::Parse(Trim(count->text())));
    if (value.scale() != 0) {
      return Status::InvalidArgument("<cnt> must be integral");
    }
    agg.count = value.unscaled();
  }
  if (const xml::XmlNode* value = item.FirstChild("val")) {
    SS_ASSIGN_OR_RETURN(Decimal parsed, Decimal::Parse(Trim(value->text())));
    agg.value = parsed;
  }
  return agg;
}

WindowAggOp::WindowAggOp(std::string label, AggregateFunc func,
                         xml::Path aggregated_element, WindowSpec window,
                         bool resume)
    : Operator(std::move(label)),
      func_(func),
      aggregated_element_(std::move(aggregated_element)),
      tracker_(std::move(window)) {
  if (resume) tracker_.EnableResume();
  if (tracker_.window().type != WindowType::kCount) {
    ref_node_ = PhotonSchema::Resolve(tracker_.window().reference);
    ref_path_ = tracker_.window().reference.ToString();
  }
  agg_node_ = PhotonSchema::Resolve(aggregated_element_);
  agg_path_ = aggregated_element_.ToString();
}

size_t WindowAggOp::OpenWindowCount() const {
  size_t open = 0;
  for (const auto& [seq, window] : open_) {
    if (window.count > 0) ++open;
  }
  return open;
}

void WindowAggOp::Accumulate(WindowState* window, const Decimal& value) {
  window->sum = window->sum + value;
  window->count += 1;
  if (!window->extremum.has_value()) {
    window->extremum = value;
  } else if (func_ == AggregateFunc::kMin) {
    if (value < *window->extremum) window->extremum = value;
  } else if (func_ == AggregateFunc::kMax) {
    if (value > *window->extremum) window->extremum = value;
  }
}

Status WindowAggOp::EmitWindow(int64_t seq, const WindowState& window) {
  AggItem agg;
  agg.seq = seq;
  if (func_ == AggregateFunc::kMin || func_ == AggregateFunc::kMax) {
    agg.value = window.extremum;
    // Empty extremum windows are emitted valueless so that sequence
    // numbers stay contiguous for downstream recombination.
  } else {
    agg.sum = window.sum;
    agg.count = window.count;
  }
  return Emit(MakeAggItem(agg));
}

Status WindowAggOp::Process(const ItemPtr& item) {
  Result<WindowTracker::Update> update = [&]() {
    if (tracker_.window().type == WindowType::kCount) {
      return tracker_.OnItemCount();
    }
    Result<Decimal> ref =
        predicate::ExtractValue(*item, tracker_.window().reference);
    if (!ref.ok()) {
      return Result<WindowTracker::Update>(ref.status().WithContext(
          "time-based window reference element"));
    }
    return tracker_.OnPosition(*ref);
  }();
  SS_RETURN_IF_ERROR(update.status());

  for (int64_t seq : update->closed) {
    SS_RETURN_IF_ERROR(EmitWindow(seq, open_[seq]));  // empty windows too
    open_.erase(seq);
  }
  SS_ASSIGN_OR_RETURN(Decimal value, [&]() -> Result<Decimal> {
    if (func_ == AggregateFunc::kCount && aggregated_element_.empty()) {
      return Decimal::FromInt(1);  // count(*) style
    }
    return predicate::ExtractValue(*item, aggregated_element_);
  }());
  for (int64_t seq : update->contains) {
    Accumulate(&open_[seq], value);
  }
  return Status::Ok();
}

Status WindowAggOp::ProcessRecord(const PhotonRecord& record) {
  Result<WindowTracker::Update> update = [&]() {
    if (tracker_.window().type == WindowType::kCount) {
      return tracker_.OnItemCount();
    }
    Result<Decimal> ref = ExtractRecordValue(record, ref_node_, ref_path_);
    if (!ref.ok()) {
      return Result<WindowTracker::Update>(ref.status().WithContext(
          "time-based window reference element"));
    }
    return tracker_.OnPosition(*ref);
  }();
  SS_RETURN_IF_ERROR(update.status());

  for (int64_t seq : update->closed) {
    SS_RETURN_IF_ERROR(EmitWindow(seq, open_[seq]));  // empty windows too
    open_.erase(seq);
  }
  SS_ASSIGN_OR_RETURN(Decimal value, [&]() -> Result<Decimal> {
    if (func_ == AggregateFunc::kCount && aggregated_element_.empty()) {
      return Decimal::FromInt(1);  // count(*) style
    }
    return ExtractRecordValue(record, agg_node_, agg_path_);
  }());
  for (int64_t seq : update->contains) {
    Accumulate(&open_[seq], value);
  }
  return Status::Ok();
}

Status WindowAggOp::ProcessBatch(ItemBatch* batch) {
  for (size_t i = 0; i < batch->size(); ++i) {
    const ItemBatch::Slot& slot = batch->slot(i);
    // Window emissions ride the per-item Emit path; scope the triggering
    // slot's stamp so a window that closes here is attributed to the item
    // that closed it (matching the per-item fallback's semantics).
    latency::AmbientScope stamp(slot.stamp);
    if (slot.is_record) {
      SS_RETURN_IF_ERROR(ProcessRecord(slot.record));
    } else {
      SS_RETURN_IF_ERROR(Process(batch->Materialize(i)));
    }
  }
  return Status::Ok();
}

Status WindowAggOp::OnFinish() {
  // Emit windows that already have content; never-filled trailing windows
  // are dropped (the stream ended inside them).
  for (int64_t seq : tracker_.Flush()) {
    auto it = open_.find(seq);
    if (it != open_.end() && it->second.count > 0) {
      SS_RETURN_IF_ERROR(EmitWindow(seq, it->second));
    }
  }
  open_.clear();
  return Status::Ok();
}

WindowContentsOp::WindowContentsOp(std::string label, WindowSpec window,
                                   bool resume)
    : Operator(std::move(label)), tracker_(std::move(window)) {
  if (resume) tracker_.EnableResume();
}

size_t WindowContentsOp::OpenWindowCount() const {
  size_t open = 0;
  for (const auto& [seq, members] : open_) {
    if (!members.empty()) ++open;
  }
  return open;
}

Status WindowContentsOp::EmitWindow(int64_t seq) {
  auto node = std::make_unique<xml::XmlNode>("window");
  node->AddLeaf("seq", std::to_string(seq));
  auto it = open_.find(seq);
  if (it != open_.end()) {
    for (const ItemPtr& member : it->second) {
      node->AddChild(member->Clone());
    }
    open_.erase(it);
  }
  return Emit(MakeItem(std::move(node)));
}

Status WindowContentsOp::Process(const ItemPtr& item) {
  Result<WindowTracker::Update> update = [&]() {
    if (tracker_.window().type == WindowType::kCount) {
      return tracker_.OnItemCount();
    }
    Result<Decimal> ref =
        predicate::ExtractValue(*item, tracker_.window().reference);
    if (!ref.ok()) {
      return Result<WindowTracker::Update>(ref.status().WithContext(
          "time-based window reference element"));
    }
    return tracker_.OnPosition(*ref);
  }();
  SS_RETURN_IF_ERROR(update.status());
  for (int64_t seq : update->closed) {
    SS_RETURN_IF_ERROR(EmitWindow(seq));
  }
  for (int64_t seq : update->contains) {
    open_[seq].push_back(item);
  }
  return Status::Ok();
}

Status WindowContentsOp::OnFinish() {
  for (int64_t seq : tracker_.Flush()) {
    auto it = open_.find(seq);
    if (it != open_.end() && !it->second.empty()) {
      SS_RETURN_IF_ERROR(EmitWindow(seq));
    }
  }
  open_.clear();
  return Status::Ok();
}

AggCombineOp::AggCombineOp(std::string label, AggregateFunc func,
                           WindowSpec fine, WindowSpec coarse)
    : Operator(std::move(label)), func_(func) {
  // The MatchAggregations divisibility rules guarantee exactness here.
  int scale = std::max({fine.size.scale(), fine.step.scale(),
                        coarse.size.scale(), coarse.step.scale()});
  int64_t fine_step = fine.step.Rescaled(scale).unscaled();
  fine_size_steps_ = fine.size.Rescaled(scale).unscaled() / fine_step;
  coarse_size_steps_ = coarse.size.Rescaled(scale).unscaled() / fine_step;
  coarse_step_steps_ = coarse.step.Rescaled(scale).unscaled() / fine_step;
}

size_t AggCombineOp::OpenWindowCount() const {
  // Coarse windows at or past next_coarse_ with at least one buffered
  // fine part: partially recombined state a teardown destroys.
  if (buffer_.empty()) return 0;
  const int64_t parts = coarse_size_steps_ / fine_size_steps_;
  size_t open = 0;
  int64_t last = buffer_.rbegin()->first / coarse_step_steps_ + 1;
  for (int64_t j = next_coarse_; j <= last; ++j) {
    for (int64_t t = 0; t < parts; ++t) {
      if (buffer_.count(j * coarse_step_steps_ + t * fine_size_steps_)) {
        ++open;
        break;
      }
    }
  }
  return open;
}

Status AggCombineOp::Process(const ItemPtr& item) {
  SS_ASSIGN_OR_RETURN(AggItem agg, ParseAggItem(*item));
  if (first_fine_seen_ < 0) first_fine_seen_ = agg.seq;
  max_fine_seen_ = std::max(max_fine_seen_, agg.seq);
  buffer_[agg.seq] = agg;
  return TryEmit();
}

Status AggCombineOp::TryEmit() {
  const int64_t parts = coarse_size_steps_ / fine_size_steps_;
  while (true) {
    // Fine windows needed for coarse window next_coarse_.
    int64_t base = next_coarse_ * coarse_step_steps_;
    bool all_present = true;
    bool impossible = false;
    for (int64_t t = 0; t < parts; ++t) {
      int64_t needed = base + t * fine_size_steps_;
      if (buffer_.find(needed) == buffer_.end()) {
        all_present = false;
        if (first_fine_seen_ >= 0 && needed < first_fine_seen_) {
          impossible = true;  // the stream started after this window
        }
        break;
      }
    }
    if (impossible) {
      ++next_coarse_;
      continue;
    }
    if (!all_present) return Status::Ok();

    AggItem coarse;
    coarse.seq = next_coarse_;
    if (func_ == AggregateFunc::kMin || func_ == AggregateFunc::kMax) {
      for (int64_t t = 0; t < parts; ++t) {
        const AggItem& fine = buffer_[base + t * fine_size_steps_];
        if (!fine.value.has_value()) continue;  // empty fine window
        if (!coarse.value.has_value()) {
          coarse.value = fine.value;
        } else if (func_ == AggregateFunc::kMin) {
          if (*fine.value < *coarse.value) coarse.value = fine.value;
        } else {
          if (*fine.value > *coarse.value) coarse.value = fine.value;
        }
      }
    } else {
      Decimal sum;
      int64_t count = 0;
      for (int64_t t = 0; t < parts; ++t) {
        const AggItem& fine = buffer_[base + t * fine_size_steps_];
        if (fine.sum.has_value()) sum = sum + *fine.sum;
        if (fine.count.has_value()) count += *fine.count;
      }
      coarse.sum = sum;
      coarse.count = count;
    }
    SS_RETURN_IF_ERROR(Emit(MakeAggItem(coarse)));
    ++next_coarse_;
    // Evict fine windows below the next coarse window's first need.
    buffer_.erase(buffer_.begin(),
                  buffer_.lower_bound(next_coarse_ * coarse_step_steps_));
  }
}

Status AggCombineOp::OnFinish() {
  // End of stream: mirror WindowAggOp's flush semantics exactly. The
  // direct coarse aggregation emits its still-open windows when they hold
  // data; here the trailing fine windows were flushed as partials (or
  // dropped when empty), so combining whatever parts are present yields
  // the same partial coarse values. Empty trailing windows stay silent.
  const int64_t parts = coarse_size_steps_ / fine_size_steps_;
  while (next_coarse_ * coarse_step_steps_ <= max_fine_seen_) {
    int64_t base = next_coarse_ * coarse_step_steps_;
    AggItem coarse;
    coarse.seq = next_coarse_;
    if (func_ == AggregateFunc::kMin || func_ == AggregateFunc::kMax) {
      for (int64_t t = 0; t < parts; ++t) {
        auto it = buffer_.find(base + t * fine_size_steps_);
        if (it == buffer_.end() || !it->second.value.has_value()) continue;
        const Decimal& value = *it->second.value;
        if (!coarse.value.has_value()) {
          coarse.value = value;
        } else if (func_ == AggregateFunc::kMin) {
          if (value < *coarse.value) coarse.value = value;
        } else {
          if (value > *coarse.value) coarse.value = value;
        }
      }
      if (coarse.value.has_value()) {
        SS_RETURN_IF_ERROR(Emit(MakeAggItem(coarse)));
      }
    } else {
      Decimal sum;
      int64_t count = 0;
      for (int64_t t = 0; t < parts; ++t) {
        auto it = buffer_.find(base + t * fine_size_steps_);
        if (it == buffer_.end()) continue;
        if (it->second.sum.has_value()) sum = sum + *it->second.sum;
        if (it->second.count.has_value()) count += *it->second.count;
      }
      if (count > 0) {
        coarse.sum = sum;
        coarse.count = count;
        SS_RETURN_IF_ERROR(Emit(MakeAggItem(coarse)));
      }
    }
    ++next_coarse_;
  }
  buffer_.clear();
  return Status::Ok();
}

Status AggFilterOp::Process(const ItemPtr& item) {
  SS_ASSIGN_OR_RETURN(AggItem agg, ParseAggItem(*item));
  Result<Decimal> value = agg.Finalize(func_);
  if (!value.ok()) {
    if (value.status().IsOutOfRange()) return Status::Ok();  // empty window
    return value.status();
  }
  for (const predicate::AtomicPredicate& pred : predicates_) {
    if (pred.rhs_var.has_value()) {
      return Status::Unsupported(
          "aggregate filters only compare against constants");
    }
    if (!predicate::Compare(*value, pred.op, pred.constant)) {
      return Status::Ok();
    }
  }
  return Emit(item);
}

}  // namespace streamshare::engine
