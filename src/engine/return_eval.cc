#include "engine/return_eval.h"

#include "predicate/eval.h"

namespace streamshare::engine {

namespace {

using wxquery::ElementExpr;
using wxquery::Expr;
using wxquery::FlwrExpr;
using wxquery::IfExpr;
using wxquery::PathOutputExpr;
using wxquery::SequenceExpr;
using wxquery::VarOutputExpr;
using wxquery::WhereAtom;

}  // namespace

Result<Decimal> ResolveValue(const wxquery::VarPath& var_path,
                             const ReturnEnv& env) {
  auto agg = env.aggregates.find(var_path.var);
  if (agg != env.aggregates.end()) {
    if (!var_path.path.empty()) {
      return Status::InvalidArgument("aggregate variable $" + var_path.var +
                                     " has no sub-elements");
    }
    return agg->second;
  }
  auto item = env.items.find(var_path.var);
  if (item != env.items.end()) {
    return predicate::ExtractValue(*item->second, var_path.path);
  }
  auto window = env.windows.find(var_path.var);
  if (window != env.windows.end()) {
    // A window variable binds a sequence; a scalar condition reads the
    // first member carrying the element.
    for (const xml::XmlNode* member : window->second) {
      Result<Decimal> value =
          predicate::ExtractValue(*member, var_path.path);
      if (value.ok() || !value.status().IsNotFound()) return value;
    }
    return Status::NotFound("no window member carries '" +
                            var_path.path.ToString() + "'");
  }
  return Status::InvalidArgument("unbound variable $" + var_path.var +
                                 " in return expression");
}

Result<bool> EvaluateReturnCondition(const std::vector<WhereAtom>& atoms,
                                     const ReturnEnv& env) {
  for (const WhereAtom& atom : atoms) {
    Result<Decimal> lhs = ResolveValue(atom.lhs, env);
    if (!lhs.ok()) {
      if (lhs.status().IsNotFound()) return false;
      return lhs.status();
    }
    Decimal rhs = atom.constant;
    if (atom.rhs.has_value()) {
      Result<Decimal> rhs_value = ResolveValue(*atom.rhs, env);
      if (!rhs_value.ok()) {
        if (rhs_value.status().IsNotFound()) return false;
        return rhs_value.status();
      }
      rhs = *rhs_value + atom.constant;
    }
    if (!predicate::Compare(*lhs, atom.op, rhs)) return false;
  }
  return true;
}

namespace {

Status EvalElement(const ElementExpr& element, const ReturnEnv& env,
                   std::vector<ReturnOutput>* outputs) {
  auto node = std::make_unique<xml::XmlNode>(element.tag);
  for (const wxquery::ExprPtr& child : element.content) {
    std::vector<ReturnOutput> child_outputs;
    SS_RETURN_IF_ERROR(EvaluateReturn(*child, env, &child_outputs));
    for (ReturnOutput& output : child_outputs) {
      if (auto* child_node =
              std::get_if<std::unique_ptr<xml::XmlNode>>(&output)) {
        node->AddChild(std::move(*child_node));
      } else {
        node->append_text(std::get<std::string>(output));
      }
    }
  }
  outputs->emplace_back(std::move(node));
  return Status::Ok();
}

}  // namespace

Status EvaluateReturn(const Expr& expr, const ReturnEnv& env,
                      std::vector<ReturnOutput>* outputs) {
  if (const auto* element = expr.As<ElementExpr>()) {
    return EvalElement(*element, env, outputs);
  }
  if (expr.Is<FlwrExpr>()) {
    return Status::Unsupported("nested FLWR in return expression");
  }
  if (const auto* cond = expr.As<IfExpr>()) {
    SS_ASSIGN_OR_RETURN(bool satisfied,
                        EvaluateReturnCondition(cond->condition, env));
    return EvaluateReturn(satisfied ? *cond->then_expr : *cond->else_expr,
                          env, outputs);
  }
  if (const auto* path_out = expr.As<PathOutputExpr>()) {
    std::vector<const xml::XmlNode*> current;
    auto item = env.items.find(path_out->var);
    if (item != env.items.end()) {
      current.push_back(item->second);
    } else {
      auto window = env.windows.find(path_out->var);
      if (window == env.windows.end()) {
        return Status::InvalidArgument(
            "path output over unbound variable $" + path_out->var);
      }
      current = window->second;
    }
    // Navigate π̄ step by step; each step's bracket conditions filter the
    // nodes selected at that step (relative to the selected node).
    for (const wxquery::PathStep& step : path_out->steps) {
      std::vector<predicate::AtomicPredicate> preds;
      preds.reserve(step.conditions.size());
      for (const WhereAtom& atom : step.conditions) {
        if (!atom.lhs.var.empty() ||
            (atom.rhs.has_value() && !atom.rhs->var.empty())) {
          return Status::Unsupported(
              "output-path conditions must be relative to the selected "
              "node");
        }
        predicate::AtomicPredicate pred;
        pred.lhs = atom.lhs.path;
        pred.op = atom.op;
        pred.constant = atom.constant;
        if (atom.rhs.has_value()) pred.rhs_var = atom.rhs->path;
        preds.push_back(std::move(pred));
      }
      std::vector<const xml::XmlNode*> next;
      for (const xml::XmlNode* node : current) {
        for (const auto& child : node->children()) {
          if (child->name() != step.name) continue;
          if (!preds.empty()) {
            SS_ASSIGN_OR_RETURN(
                bool keep, predicate::EvaluateConjunction(preds, *child));
            if (!keep) continue;
          }
          next.push_back(child.get());
        }
      }
      current = std::move(next);
      if (current.empty()) break;
    }
    for (const xml::XmlNode* node : current) {
      outputs->emplace_back(node->Clone());
    }
    return Status::Ok();
  }
  if (const auto* var_out = expr.As<VarOutputExpr>()) {
    auto agg = env.aggregates.find(var_out->var);
    if (agg != env.aggregates.end()) {
      outputs->emplace_back(agg->second.ToString());
      return Status::Ok();
    }
    auto item = env.items.find(var_out->var);
    if (item != env.items.end()) {
      outputs->emplace_back(item->second->Clone());
      return Status::Ok();
    }
    auto window = env.windows.find(var_out->var);
    if (window != env.windows.end()) {
      for (const xml::XmlNode* member : window->second) {
        outputs->emplace_back(member->Clone());
      }
      return Status::Ok();
    }
    return Status::InvalidArgument("output of unbound variable $" +
                                   var_out->var);
  }
  const auto& sequence = std::get<SequenceExpr>(expr.node);
  for (const wxquery::ExprPtr& item : sequence.items) {
    SS_RETURN_IF_ERROR(EvaluateReturn(*item, env, outputs));
  }
  return Status::Ok();
}

}  // namespace streamshare::engine
