// Shared window bookkeeping for the windowed operators (aggregation and
// window-contents). Tracks which windows are open on the item/time axis,
// which close as a new item arrives, and which contain the item. Window i
// spans [i·µ, i·µ + Δ) on the axis; time axes are anchored at absolute 0
// so windows of different subscriptions over the same reference element
// align (Fig. 5), and the tracker fast-forwards past windows that ended
// before the stream's first item.

#ifndef STREAMSHARE_ENGINE_WINDOW_TRACKER_H_
#define STREAMSHARE_ENGINE_WINDOW_TRACKER_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "common/status.h"
#include "properties/window.h"

namespace streamshare::engine {

class WindowTracker {
 public:
  explicit WindowTracker(properties::WindowSpec window)
      : window_(std::move(window)) {}

  const properties::WindowSpec& window() const { return window_; }

  struct Update {
    /// Windows that completed, in sequence order (including windows that
    /// were never populated — emitted for sequence continuity).
    std::vector<int64_t> closed;
    /// Open windows containing the new item (accumulate it into these).
    std::vector<int64_t> contains;
  };

  /// Resume mode, for operators rebuilt mid-stream after a failure: the
  /// first position anchors at the first window whose *start* is at or
  /// after it, instead of the first window still open at it. Windows
  /// straddling the resume point would be partially aggregated (their
  /// head was lost with the failed plan), so they are suppressed
  /// entirely — the gap-not-garbage guarantee. Call before the first
  /// item. No effect on a fresh stream starting at position 0.
  void EnableResume() { resume_ = true; }

  /// Advances the axis to `position` (the item index for count windows,
  /// the reference element value for diff windows). Fails on unsorted
  /// positions.
  Result<Update> OnPosition(const Decimal& position);

  /// Item-based convenience: advances by one item.
  Result<Update> OnItemCount() {
    return OnPosition(Decimal::FromInt(items_seen_));
  }

  /// The number of positions consumed so far.
  int64_t items_seen() const { return items_seen_; }

  /// End of stream: returns the still-open windows in sequence order and
  /// clears the tracker.
  std::vector<int64_t> Flush();

 private:
  properties::WindowSpec window_;
  int64_t items_seen_ = 0;
  Decimal last_position_;
  bool anchored_ = false;
  bool resume_ = false;
  std::deque<int64_t> open_;
  int64_t next_seq_ = 0;
};

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_WINDOW_TRACKER_H_
