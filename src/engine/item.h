// Stream items. One item is one immutable XML tree (e.g. one <photon>),
// shared by reference so stream duplication (the paper's stream sharing at
// a peer) costs nothing per fan-out.

#ifndef STREAMSHARE_ENGINE_ITEM_H_
#define STREAMSHARE_ENGINE_ITEM_H_

#include <memory>

#include "xml/xml_node.h"

namespace streamshare::engine {

using ItemPtr = std::shared_ptr<const xml::XmlNode>;

inline ItemPtr MakeItem(std::unique_ptr<xml::XmlNode> node) {
  return ItemPtr(std::move(node));
}

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_ITEM_H_
