#include "engine/operator.h"

#include "predicate/eval.h"

namespace streamshare::engine {

Status Operator::Finish() {
  if (finished_) return Status::Ok();
  finished_ = true;
  SS_RETURN_IF_ERROR(OnFinish());
  for (Operator* downstream : downstreams_) {
    SS_RETURN_IF_ERROR(downstream->Finish());
  }
  return Status::Ok();
}

Status Operator::Emit(const ItemPtr& item) {
  for (Operator* downstream : downstreams_) {
    SS_RETURN_IF_ERROR(downstream->Push(item));
  }
  return Status::Ok();
}

Status SelectOp::Process(const ItemPtr& item) {
  SS_ASSIGN_OR_RETURN(bool keep,
                      predicate::EvaluateConjunction(predicates_, *item));
  if (keep) return Emit(item);
  return Status::Ok();
}

namespace {

/// Selectively clones `node` keeping subtrees covered by `output`.
/// Returns nullptr when nothing under `node` is kept.
std::unique_ptr<xml::XmlNode> ProjectNode(
    const xml::XmlNode& node, std::vector<std::string>* prefix,
    const std::vector<xml::Path>& output) {
  xml::Path current(*prefix);
  for (const xml::Path& out : output) {
    if (out.IsPrefixOf(current)) return node.Clone();
  }
  bool is_ancestor = false;
  for (const xml::Path& out : output) {
    if (current.IsPrefixOf(out)) {
      is_ancestor = true;
      break;
    }
  }
  if (!is_ancestor) return nullptr;
  auto copy = std::make_unique<xml::XmlNode>(node.name());
  copy->set_text(node.text());
  for (const auto& child : node.children()) {
    prefix->push_back(child->name());
    std::unique_ptr<xml::XmlNode> kept = ProjectNode(*child, prefix, output);
    prefix->pop_back();
    if (kept != nullptr) copy->AddChild(std::move(kept));
  }
  return copy;
}

}  // namespace

Status ProjectOp::Process(const ItemPtr& item) {
  std::vector<std::string> prefix;  // paths are relative to the item root
  std::unique_ptr<xml::XmlNode> projected =
      ProjectNode(*item, &prefix, output_paths_);
  if (projected == nullptr) {
    // Projection keeps the item element itself even when empty (the item
    // boundary is part of the stream structure).
    projected = std::make_unique<xml::XmlNode>(item->name());
  }
  return Emit(MakeItem(std::move(projected)));
}

Status LinkOp::Process(const ItemPtr& item) {
  link_metrics_->AddBytes(link_, item->SerializedSize());
  return Emit(item);
}

namespace {

/// Order-sensitive FNV-1a over one subtree's structure (name, text,
/// children). Sinks sum these per item, so the aggregate is insensitive
/// to cross-stream arrival order — which execution modes do not fix —
/// while any changed or missing item changes the sum.
uint64_t MixBytes(uint64_t hash, std::string_view bytes) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kPrime;
  }
  hash ^= 0xff;  // separator, so ("ab","c") != ("a","bc")
  hash *= kPrime;
  return hash;
}

uint64_t HashSubtree(const xml::XmlNode& node, uint64_t hash) {
  hash = MixBytes(hash, node.name());
  hash = MixBytes(hash, node.text());
  for (const auto& child : node.children()) {
    hash = HashSubtree(*child, hash);
  }
  return hash;
}

}  // namespace

Status SinkOp::Process(const ItemPtr& item) {
  ++item_count_;
  total_bytes_ += item->SerializedSize();
  if (hash_items_) {
    content_hash_ += HashSubtree(*item, 14695981039346656037ull);
  }
  if (keep_items_) items_.push_back(item);
  return Status::Ok();
}

}  // namespace streamshare::engine
