#include "engine/operator.h"

#include "predicate/eval.h"

namespace streamshare::engine {

namespace {

size_t SlotSerializedSize(const ItemBatch::Slot& slot) {
  return slot.is_record ? slot.record.SerializedSize()
                        : slot.item->SerializedSize();
}

}  // namespace

Status Operator::Finish() {
  if (finished_) return Status::Ok();
  finished_ = true;
  SS_RETURN_IF_ERROR(OnFinish());
  for (Operator* downstream : downstreams_) {
    SS_RETURN_IF_ERROR(downstream->Finish());
  }
  return Status::Ok();
}

Status Operator::Emit(const ItemPtr& item) {
  for (Operator* downstream : downstreams_) {
    SS_RETURN_IF_ERROR(downstream->Push(item));
  }
  return Status::Ok();
}

Status Operator::EmitBatch(ItemBatch* batch) {
  for (Operator* downstream : downstreams_) {
    SS_RETURN_IF_ERROR(downstream->PushBatch(batch));
  }
  return Status::Ok();
}

Status SelectOp::Process(const ItemPtr& item) {
  SS_ASSIGN_OR_RETURN(bool keep,
                      predicate::EvaluateConjunction(predicates_, *item));
  if (keep) return Emit(item);
  return Status::Ok();
}

Status SelectOp::ProcessBatch(ItemBatch* batch) {
  if (!compiled_valid_) {
    compiled_ = CompilePredicates(predicates_);
    compiled_valid_ = true;
  }
  scratch_.clear();
  Status failure;
  for (size_t i = 0; i < batch->size(); ++i) {
    const ItemBatch::Slot& slot = batch->slot(i);
    Result<bool> keep =
        slot.is_record
            ? EvalCompiledPredicates(compiled_, slot.record)
            : predicate::EvaluateConjunction(predicates_, *slot.item);
    if (!keep.ok()) {
      failure = keep.status();
      break;
    }
    if (*keep) scratch_.AppendSlot(slot);
  }
  // Flush the passers gathered so far even when evaluation failed, so the
  // sink sees exactly the prefix the per-item path delivers before an
  // abort; a downstream failure on those items takes precedence (it is
  // the earlier item's error).
  Status emitted = EmitBatch(&scratch_);
  scratch_.clear();
  if (!emitted.ok()) return emitted;
  return failure;
}

namespace {

/// Selectively clones `node` keeping subtrees covered by `output`.
/// Returns nullptr when nothing under `node` is kept.
std::unique_ptr<xml::XmlNode> ProjectNode(
    const xml::XmlNode& node, std::vector<std::string>* prefix,
    const std::vector<xml::Path>& output) {
  xml::Path current(*prefix);
  for (const xml::Path& out : output) {
    if (out.IsPrefixOf(current)) return node.Clone();
  }
  bool is_ancestor = false;
  for (const xml::Path& out : output) {
    if (current.IsPrefixOf(out)) {
      is_ancestor = true;
      break;
    }
  }
  if (!is_ancestor) return nullptr;
  auto copy = std::make_unique<xml::XmlNode>(node.name());
  copy->set_text(node.text());
  for (const auto& child : node.children()) {
    prefix->push_back(child->name());
    std::unique_ptr<xml::XmlNode> kept = ProjectNode(*child, prefix, output);
    prefix->pop_back();
    if (kept != nullptr) copy->AddChild(std::move(kept));
  }
  return copy;
}

std::unique_ptr<xml::XmlNode> ProjectTree(
    const xml::XmlNode& item, const std::vector<xml::Path>& output) {
  std::vector<std::string> prefix;  // paths are relative to the item root
  std::unique_ptr<xml::XmlNode> projected =
      ProjectNode(item, &prefix, output);
  if (projected == nullptr) {
    // Projection keeps the item element itself even when empty (the item
    // boundary is part of the stream structure).
    projected = std::make_unique<xml::XmlNode>(item.name());
  }
  return projected;
}

}  // namespace

Status ProjectOp::Process(const ItemPtr& item) {
  return Emit(MakeItem(ProjectTree(*item, output_paths_)));
}

Status ProjectOp::ProcessBatch(ItemBatch* batch) {
  if (!mask_valid_) {
    keep_mask_ = CompileProjectionMask(output_paths_);
    mask_valid_ = true;
  }
  scratch_.clear();
  scratch_.reserve(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    const ItemBatch::Slot& slot = batch->slot(i);
    if (slot.is_record) {
      scratch_.AppendRecord(slot.record.Project(keep_mask_));
    } else {
      scratch_.AppendItem(MakeItem(ProjectTree(*slot.item, output_paths_)),
                          /*adopt=*/false);
    }
  }
  Status emitted = EmitBatch(&scratch_);
  scratch_.clear();
  return emitted;
}

Status LinkOp::Process(const ItemPtr& item) {
  link_metrics_->AddBytes(link_, item->SerializedSize());
  return Emit(item);
}

Status LinkOp::ProcessBatch(ItemBatch* batch) {
  for (size_t i = 0; i < batch->size(); ++i) {
    link_metrics_->AddBytes(link_, SlotSerializedSize(batch->slot(i)));
  }
  return EmitBatch(batch);
}

namespace {

/// Order-sensitive FNV-1a over one subtree's structure (name, text,
/// children). Sinks sum these per item, so the aggregate is insensitive
/// to cross-stream arrival order — which execution modes do not fix —
/// while any changed or missing item changes the sum.
uint64_t MixBytes(uint64_t hash, std::string_view bytes) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kPrime;
  }
  hash ^= 0xff;  // separator, so ("ab","c") != ("a","bc")
  hash *= kPrime;
  return hash;
}

uint64_t HashSubtree(const xml::XmlNode& node, uint64_t hash) {
  hash = MixBytes(hash, node.name());
  hash = MixBytes(hash, node.text());
  for (const auto& child : node.children()) {
    hash = HashSubtree(*child, hash);
  }
  return hash;
}

}  // namespace

uint64_t HashItemContent(const xml::XmlNode& item) {
  return HashSubtree(item, 14695981039346656037ull);
}

Status SinkOp::Process(const ItemPtr& item) {
  ++item_count_;
  total_bytes_ += item->SerializedSize();
  if (hash_items_) {
    content_hash_ += HashItemContent(*item);
  }
  if (keep_items_) items_.push_back(item);
  return Status::Ok();
}

Status SinkOp::ProcessBatch(ItemBatch* batch) {
  item_count_ += batch->size();
  for (size_t i = 0; i < batch->size(); ++i) {
    const ItemBatch::Slot& slot = batch->slot(i);
    total_bytes_ += SlotSerializedSize(slot);
    if (hash_items_) {
      content_hash_ += slot.is_record ? slot.record.ContentHash()
                                      : HashItemContent(*slot.item);
    }
    if (keep_items_) items_.push_back(batch->Materialize(i));
  }
  return Status::Ok();
}

}  // namespace streamshare::engine
