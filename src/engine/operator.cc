#include "engine/operator.h"

#include <algorithm>

#include "obs/metrics_registry.h"
#include "predicate/eval.h"

namespace streamshare::engine {

namespace {

size_t SlotSerializedSize(const ItemBatch::Slot& slot) {
  return slot.is_record ? slot.record.SerializedSize()
                        : slot.item->SerializedSize();
}

}  // namespace

Status Operator::Finish() {
  if (finished_) return Status::Ok();
  finished_ = true;
  SS_RETURN_IF_ERROR(OnFinish());
  for (Operator* downstream : downstreams_) {
    SS_RETURN_IF_ERROR(downstream->Finish());
  }
  return Status::Ok();
}

Status Operator::Emit(const ItemPtr& item) {
  for (Operator* downstream : downstreams_) {
    SS_RETURN_IF_ERROR(downstream->Push(item));
  }
  return Status::Ok();
}

Status Operator::EmitBatch(ItemBatch* batch) {
  for (Operator* downstream : downstreams_) {
    SS_RETURN_IF_ERROR(downstream->PushBatch(batch));
  }
  return Status::Ok();
}

Status SelectOp::Process(const ItemPtr& item) {
  SS_ASSIGN_OR_RETURN(bool keep,
                      predicate::EvaluateConjunction(predicates_, *item));
  if (keep) return Emit(item);
  return Status::Ok();
}

Status SelectOp::ProcessBatch(ItemBatch* batch) {
  if (!compiled_valid_) {
    compiled_ = CompilePredicates(predicates_);
    compiled_valid_ = true;
  }
  scratch_.clear();
  Status failure;
  for (size_t i = 0; i < batch->size(); ++i) {
    const ItemBatch::Slot& slot = batch->slot(i);
    Result<bool> keep =
        slot.is_record
            ? EvalCompiledPredicates(compiled_, slot.record)
            : predicate::EvaluateConjunction(predicates_, *slot.item);
    if (!keep.ok()) {
      failure = keep.status();
      break;
    }
    if (*keep) scratch_.AppendSlot(slot);
  }
  // Flush the passers gathered so far even when evaluation failed, so the
  // sink sees exactly the prefix the per-item path delivers before an
  // abort; a downstream failure on those items takes precedence (it is
  // the earlier item's error).
  Status emitted = EmitBatch(&scratch_);
  scratch_.clear();
  if (!emitted.ok()) return emitted;
  return failure;
}

namespace {

/// Selectively clones `node` keeping subtrees covered by `output`.
/// Returns nullptr when nothing under `node` is kept.
std::unique_ptr<xml::XmlNode> ProjectNode(
    const xml::XmlNode& node, std::vector<std::string>* prefix,
    const std::vector<xml::Path>& output) {
  xml::Path current(*prefix);
  for (const xml::Path& out : output) {
    if (out.IsPrefixOf(current)) return node.Clone();
  }
  bool is_ancestor = false;
  for (const xml::Path& out : output) {
    if (current.IsPrefixOf(out)) {
      is_ancestor = true;
      break;
    }
  }
  if (!is_ancestor) return nullptr;
  auto copy = std::make_unique<xml::XmlNode>(node.name());
  copy->set_text(node.text());
  for (const auto& child : node.children()) {
    prefix->push_back(child->name());
    std::unique_ptr<xml::XmlNode> kept = ProjectNode(*child, prefix, output);
    prefix->pop_back();
    if (kept != nullptr) copy->AddChild(std::move(kept));
  }
  return copy;
}

std::unique_ptr<xml::XmlNode> ProjectTree(
    const xml::XmlNode& item, const std::vector<xml::Path>& output) {
  std::vector<std::string> prefix;  // paths are relative to the item root
  std::unique_ptr<xml::XmlNode> projected =
      ProjectNode(item, &prefix, output);
  if (projected == nullptr) {
    // Projection keeps the item element itself even when empty (the item
    // boundary is part of the stream structure).
    projected = std::make_unique<xml::XmlNode>(item.name());
  }
  return projected;
}

}  // namespace

Status ProjectOp::Process(const ItemPtr& item) {
  return Emit(MakeItem(ProjectTree(*item, output_paths_)));
}

Status ProjectOp::ProcessBatch(ItemBatch* batch) {
  if (!mask_valid_) {
    keep_mask_ = CompileProjectionMask(output_paths_);
    mask_valid_ = true;
  }
  scratch_.clear();
  scratch_.reserve(batch->size());
  for (size_t i = 0; i < batch->size(); ++i) {
    const ItemBatch::Slot& slot = batch->slot(i);
    if (slot.is_record) {
      scratch_.AppendRecord(slot.record.Project(keep_mask_));
    } else {
      scratch_.AppendItem(MakeItem(ProjectTree(*slot.item, output_paths_)),
                          /*adopt=*/false);
    }
    // Append* builds a fresh (unstamped) slot; the projected item is still
    // the same logical item, so its latency stamp rides along.
    scratch_.slot(scratch_.size() - 1).stamp = slot.stamp;
  }
  Status emitted = EmitBatch(&scratch_);
  scratch_.clear();
  return emitted;
}

Status LinkOp::Process(const ItemPtr& item) {
  link_metrics_->AddBytes(link_, item->SerializedSize());
  return Emit(item);
}

Status LinkOp::ProcessBatch(ItemBatch* batch) {
  for (size_t i = 0; i < batch->size(); ++i) {
    link_metrics_->AddBytes(link_, SlotSerializedSize(batch->slot(i)));
  }
  return EmitBatch(batch);
}

namespace {

/// Order-sensitive FNV-1a over one subtree's structure (name, text,
/// children). Sinks sum these per item, so the aggregate is insensitive
/// to cross-stream arrival order — which execution modes do not fix —
/// while any changed or missing item changes the sum.
uint64_t MixBytes(uint64_t hash, std::string_view bytes) {
  constexpr uint64_t kPrime = 1099511628211ull;
  for (char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kPrime;
  }
  hash ^= 0xff;  // separator, so ("ab","c") != ("a","bc")
  hash *= kPrime;
  return hash;
}

uint64_t HashSubtree(const xml::XmlNode& node, uint64_t hash) {
  hash = MixBytes(hash, node.name());
  hash = MixBytes(hash, node.text());
  for (const auto& child : node.children()) {
    hash = HashSubtree(*child, hash);
  }
  return hash;
}

}  // namespace

uint64_t HashItemContent(const xml::XmlNode& item) {
  return HashSubtree(item, 14695981039346656037ull);
}

void SinkOp::EnableLatencyRecording(const std::string& query) {
  // ~50us .. ~2.5s at factor 1.6: covers sub-millisecond in-process hops
  // and multi-second backlogged queues with 25 buckets.
  std::vector<double> bounds =
      obs::Histogram::ExponentialBounds(50.0, 1.6, 24);
  obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
  std::string prefix = "latency.query." + query;
  lat_e2e_ = registry.GetHistogram(prefix + ".e2e_us", bounds);
  lat_pipeline_ =
      registry.GetHistogram(prefix + ".stage.pipeline_us", bounds);
  lat_queue_ = registry.GetHistogram(prefix + ".stage.queue_us", bounds);
  lat_transport_ =
      registry.GetHistogram(prefix + ".stage.transport_us", bounds);
  for (LocalHist* local :
       {&loc_e2e_, &loc_pipeline_, &loc_queue_, &loc_transport_}) {
    local->buckets.assign(lat_e2e_->bucket_count(), 0);
  }
}

namespace {
// Stamped arrivals between registry folds. Large enough that the four
// atomic MergeCounts amortize away, small enough that a mid-stream
// metrics scrape (service-mode Feed) is at most this stale.
constexpr uint64_t kLatencyFlushInterval = 512;
}  // namespace

void SinkOp::ObserveLocal(LocalHist* local, const obs::Histogram& hist,
                          double value) {
  // In-process latencies mostly land under the first bound (50us); skip
  // the binary search for them — this runs per delivered item.
  size_t bucket =
      value <= hist.bounds().front() ? 0 : hist.BucketFor(value);
  ++local->buckets[bucket];
  ++local->count;
  local->sum += value;
  if (value > local->max) local->max = value;
}

void SinkOp::FlushLatency() {
  if (unflushed_ == 0) return;
  auto fold = [](LocalHist* local, obs::Histogram* hist) {
    if (local->count == 0) return;
    hist->MergeCounts(local->buckets, local->count, local->sum,
                      local->max);
    std::fill(local->buckets.begin(), local->buckets.end(), 0);
    local->count = 0;
    local->sum = 0.0;
    local->max = 0.0;  // the shared histogram's max only ever raises
  };
  fold(&loc_e2e_, lat_e2e_);
  fold(&loc_pipeline_, lat_pipeline_);
  fold(&loc_queue_, lat_queue_);
  fold(&loc_transport_, lat_transport_);
  unflushed_ = 0;
}

Status SinkOp::OnFinish() {
  FlushLatency();
  return Status::Ok();
}

void SinkOp::RecordLatency(const latency::ItemStamp& stamp,
                           uint64_t now) {
  if (lat_e2e_ == nullptr || !stamp.stamped() || !latency::Enabled()) {
    return;
  }
  uint64_t e2e = now > stamp.ingress_us ? now - stamp.ingress_us : 0;
  // Pipeline time is what remains of the end-to-end span after the
  // explicitly measured queue-wait and transport stages.
  uint64_t overhead = stamp.queue_us + stamp.transport_us;
  uint64_t pipeline = e2e > overhead ? e2e - overhead : 0;
  ObserveLocal(&loc_e2e_, *lat_e2e_, static_cast<double>(e2e));
  ObserveLocal(&loc_pipeline_, *lat_pipeline_,
               static_cast<double>(pipeline));
  // Queue and transport stages record only deliveries the stage actually
  // touched: a zero wait is the absence of a queue (or wire) on the
  // item's path, not a measurement of one — and skipping it keeps two
  // histogram updates off the serial hot path, where both are always 0.
  if (stamp.queue_us != 0) {
    ObserveLocal(&loc_queue_, *lat_queue_,
                 static_cast<double>(stamp.queue_us));
  }
  if (stamp.transport_us != 0) {
    ObserveLocal(&loc_transport_, *lat_transport_,
                 static_cast<double>(stamp.transport_us));
  }
  ++stamped_count_;
  if (stamp.ingress_us < last_ingress_us_) {
    ++stamp_regressions_;
  } else {
    last_ingress_us_ = stamp.ingress_us;
  }
  if (++unflushed_ >= kLatencyFlushInterval) FlushLatency();
}

Status SinkOp::Process(const ItemPtr& item) {
  ++item_count_;
  total_bytes_ += item->SerializedSize();
  if (hash_items_) {
    content_hash_ += HashItemContent(*item);
  }
  if (keep_items_) items_.push_back(item);
  // The DOM push path carries the stamp in the thread-local ambient.
  RecordLatency(latency::Ambient(), latency::NowUs());
  return Status::Ok();
}

Status SinkOp::ProcessBatch(ItemBatch* batch) {
  item_count_ += batch->size();
  // One arrival tick for the whole batch — the slots are delivered by
  // this very call, so they share an arrival instant the same way a fed
  // chunk shares its ingress tick. Keeps the clock off the per-item path.
  uint64_t now = lat_e2e_ != nullptr && latency::Enabled()
                     ? latency::NowUs()
                     : 0;
  for (size_t i = 0; i < batch->size(); ++i) {
    const ItemBatch::Slot& slot = batch->slot(i);
    total_bytes_ += SlotSerializedSize(slot);
    if (hash_items_) {
      content_hash_ += slot.is_record ? slot.record.ContentHash()
                                      : HashItemContent(*slot.item);
    }
    if (keep_items_) items_.push_back(batch->Materialize(i));
    RecordLatency(slot.stamp, now);
  }
  return Status::Ok();
}

}  // namespace streamshare::engine
