#include "engine/parallel_executor.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>

#include "engine/executor.h"
#include "engine/latency.h"
#include "engine/link_queue.h"
#include "engine/metrics.h"
#include "engine/partition.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace streamshare::engine {

namespace {

/// Registry series fed by every parallel run. Looked up once; updates are
/// per-shard relaxed adds on the worker's pinned shard.
struct ParallelSeries {
  obs::Counter* items;
  obs::Counter* batches;
  obs::Histogram* batch_items;

  static const ParallelSeries& Get() {
    static const ParallelSeries series = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      return ParallelSeries{
          registry.GetCounter("engine.parallel.items"),
          registry.GetCounter("engine.parallel.batches"),
          registry.GetHistogram("engine.parallel.batch_items",
                                obs::Histogram::ExponentialBounds(1, 2, 12)),
      };
    }();
    return series;
  }
};

/// Sending half of a cross-worker edge: accumulates emitted slots into a
/// pending ItemBatch and hands the whole batch to the consumer worker's
/// queue as one entry — one lock acquisition and one wakeup per batch.
/// Lives on the producer's thread; never bills metrics (the replaced
/// edge's target still does its own accounting when the consumer pushes
/// into it).
class QueuePortOp final : public Operator {
 public:
  QueuePortOp(Operator* target, LinkQueue* queue, size_t buffer_limit)
      : Operator("queue-port:" + target->label()),
        target_(target),
        queue_(queue),
        buffer_limit_(buffer_limit == 0 ? 1 : buffer_limit) {
    pending_.reserve(buffer_limit_);
  }

  void Flush() {
    if (pending_.empty()) return;
    queue_->Push(LinkQueue::Entry{target_, std::move(pending_)});
    pending_ = ItemBatch();
    pending_.reserve(buffer_limit_);
  }

 protected:
  Status Process(const ItemPtr& item) override {
    pending_.AppendItem(item, /*adopt=*/false);
    // A DOM-path emit carries its latency stamp in the thread-local
    // ambient; persist it on the slot before the batch crosses threads.
    pending_.slot(pending_.size() - 1).stamp = latency::Ambient();
    if (pending_.size() >= buffer_limit_) Flush();
    return Status::Ok();
  }

  Status ProcessBatch(ItemBatch* batch) override {
    for (size_t i = 0; i < batch->size(); ++i) {
      pending_.AppendSlot(batch->slot(i));
      if (pending_.size() >= buffer_limit_) Flush();
    }
    return Status::Ok();
  }

 private:
  Operator* target_;
  LinkQueue* queue_;
  size_t buffer_limit_;
  ItemBatch pending_;
};

struct WorkerPlan {
  std::unique_ptr<LinkQueue> queue;
  std::vector<network::NodeId> peers;
  size_t operator_count = 0;
  /// Boundary operators this worker finishes once all pills arrived:
  /// entry operators assigned here plus targets of inbound cross edges,
  /// in discovery order.
  std::vector<Operator*> roots;
  std::set<Operator*> root_set;
  /// Sending ports owned by this worker (flushed before pills go out).
  std::vector<QueuePortOp*> ports;
  /// Workers this one feeds across an edge (one pill each at the end).
  std::set<size_t> downstream_workers;
  size_t expected_pills = 0;
  /// Worker-local metrics shard per original Metrics sink.
  std::map<Metrics*, std::unique_ptr<Metrics>> shards;

  void AddRoot(Operator* op) {
    if (root_set.insert(op).second) roots.push_back(op);
  }
};

class AbortState {
 public:
  void Record(Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_.ok()) first_error_ = std::move(status);
    aborted_.store(true, std::memory_order_release);
  }
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  Status TakeStatus() {
    std::lock_guard<std::mutex> lock(mu_);
    return first_error_;
  }

 private:
  std::mutex mu_;
  Status first_error_ = Status::Ok();
  std::atomic<bool> aborted_{false};
};

void WorkerMain(WorkerPlan* plan, std::vector<WorkerPlan>* all,
                size_t batch_size, AbortState* abort, bool finish) {
  size_t worker_index = static_cast<size_t>(plan - all->data());
  // Pin this worker's registry updates to its own shard so worker
  // threads never contend on a metric cache line.
  obs::ScopedShard pinned(worker_index);
  obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  if (recorder.enabled()) {
    std::string name = "worker-" + std::to_string(worker_index);
    if (!plan->peers.empty()) {
      name += " [";
      for (size_t i = 0; i < plan->peers.size(); ++i) {
        if (i > 0) name += ",";
        name += "SP" + std::to_string(plan->peers[i]);
      }
      name += "]";
    }
    recorder.SetThreadName(std::move(name));
  }
  const ParallelSeries& series = ParallelSeries::Get();
  const bool count_metrics = obs::Enabled();

  std::vector<LinkQueue::Entry> batch;
  size_t pills = 0;
  while (pills < plan->expected_pills) {
    batch.clear();
    plan->queue->PopBatch(&batch, batch_size);
    for (LinkQueue::Entry& entry : batch) {
      if (entry.target == nullptr) {
        ++pills;
        continue;
      }
      if (abort->aborted()) continue;  // drain without processing
      uint64_t span_start = 0;
      const bool tracing = recorder.enabled();
      if (tracing) span_start = recorder.NowMicros();
      Status status = entry.target->PushBatch(&entry.batch);
      if (tracing) {
        recorder.RecordComplete(
            entry.target->label(), "op", span_start,
            recorder.NowMicros() - span_start,
            {obs::TraceArg::Num("items",
                                static_cast<double>(entry.batch.size()))});
      }
      if (count_metrics) {
        series.items->AddToShard(worker_index, entry.batch.size());
        series.batches->AddToShard(worker_index, 1);
        series.batch_items->ObserveToShard(
            worker_index, static_cast<double>(entry.batch.size()));
      }
      if (!status.ok()) {
        abort->Record(
            WrapOperatorFailure(std::move(status), "push", *entry.target));
      }
    }
  }
  if (finish && !abort->aborted()) {
    for (Operator* root : plan->roots) {
      obs::TraceSpan finish_span(&recorder, "finish:" + root->label(),
                                 "op");
      Status status = root->Finish();
      if (!status.ok()) {
        abort->Record(
            WrapOperatorFailure(std::move(status), "finish", *root));
        break;
      }
    }
  }
  if (!abort->aborted()) {
    for (QueuePortOp* port : plan->ports) port->Flush();
  }
  for (size_t downstream : plan->downstream_workers) {
    (*all)[downstream].queue->Push(LinkQueue::Entry{});
  }
}

}  // namespace

ParallelExecutor::ParallelExecutor(ParallelOptions options)
    : options_(options) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.batch_size == 0) options_.batch_size = 1;
}

Status ParallelExecutor::Run(Operator* entry,
                             const std::vector<ItemPtr>& items) {
  return Run(std::vector<Operator*>{entry},
             std::vector<std::vector<ItemPtr>>{items});
}

Status ParallelExecutor::Run(
    const std::vector<Operator*>& entries,
    const std::vector<std::vector<ItemPtr>>& item_lists, bool finish) {
  worker_stats_.clear();
  if (entries.size() != item_lists.size()) {
    return Status::InvalidArgument(
        "ParallelExecutor::Run: entries and item lists differ in count");
  }
  // --- Plan the peer partition (discovery, peer resolution, worker
  // grouping, cross edges) — shared with the transport runner. ---
  PartitionPlan partition;
  Status plan_status = PlanPeerPartitions(entries, &partition);
  if (!plan_status.ok()) return plan_status;
  size_t max_workers = options_.max_workers != 0
                           ? options_.max_workers
                           : std::max(1u, std::thread::hardware_concurrency());
  CoalesceWorkers(&partition, max_workers);
  const std::vector<Operator*>& ops = partition.ops;
  const std::vector<size_t>& worker_of = partition.worker_of;
  size_t worker_count = partition.worker_count;

  std::vector<WorkerPlan> workers(worker_count);
  const bool stamping = latency::Enabled();
  for (size_t w = 0; w < worker_count; ++w) {
    workers[w].queue = std::make_unique<LinkQueue>(options_.queue_capacity);
    workers[w].queue->ResetStats();  // per-run stats even on reused queues
    if (stamping && obs::Enabled()) {
      workers[w].queue->SetResidencyHistogram(
          obs::MetricsRegistry::Default().GetHistogram(
              "engine.queue.worker." + std::to_string(w) + ".residency_us",
              obs::Histogram::ExponentialBounds(50.0, 1.6, 24)));
    }
    workers[w].peers = partition.worker_peers[w];
    workers[w].operator_count = partition.worker_operator_count[w];
    workers[w].downstream_workers = partition.worker_downstream[w];
  }

  // --- Splice queue ports into every cross-worker edge. ---
  struct Splice {
    Operator* source;
    Operator* original;
    std::unique_ptr<QueuePortOp> port;
  };
  std::vector<Splice> splices;
  for (const PartitionPlan::CrossEdge& edge : partition.cross_edges) {
    Operator* source = ops[edge.source];
    Operator* target = ops[edge.target];
    size_t src = worker_of[edge.source], dst = worker_of[edge.target];
    auto port = std::make_unique<QueuePortOp>(
        target, workers[dst].queue.get(), options_.batch_size);
    source->ReplaceDownstream(target, port.get());
    workers[src].ports.push_back(port.get());
    workers[dst].AddRoot(target);
    splices.push_back(Splice{source, target, std::move(port)});
  }
  std::set<size_t> fed_workers;
  for (Operator* entry : entries) {
    size_t w = partition.WorkerOf(entry);
    fed_workers.insert(w);
    workers[w].AddRoot(entry);
  }
  for (size_t w = 0; w < worker_count; ++w) {
    workers[w].expected_pills = fed_workers.count(w);
  }
  for (size_t w = 0; w < worker_count; ++w) {
    for (size_t downstream : workers[w].downstream_workers) {
      ++workers[downstream].expected_pills;
    }
  }

  // --- Rebind metrics to per-worker shards (hot path stays lock- and
  // atomic-free; shards merge back after the run). ---
  struct Rebind {
    Operator* op;
    Metrics* original;
    Metrics* shard;
  };
  std::vector<Rebind> rebinds;
  {
    std::vector<Metrics*> targets;
    for (size_t i = 0; i < ops.size(); ++i) {
      targets.clear();
      ops[i]->AppendMetricsTargets(&targets);
      WorkerPlan& plan = workers[worker_of[i]];
      for (Metrics* original : targets) {
        auto it = plan.shards.find(original);
        if (it == plan.shards.end()) {
          it = plan.shards
                   .emplace(original, std::make_unique<Metrics>(
                                          Metrics::ShardLike(*original)))
                   .first;
        }
        ops[i]->RebindMetrics(original, it->second.get());
        rebinds.push_back(Rebind{ops[i], original, it->second.get()});
      }
    }
  }

  // --- Run: one thread per worker, the calling thread feeds. ---
  obs::TraceSpan run_span(&obs::TraceRecorder::Default(), "parallel.run",
                          "engine");
  run_span.AddArg(
      obs::TraceArg::Num("workers", static_cast<double>(worker_count)));
  run_span.AddArg(
      obs::TraceArg::Num("operators", static_cast<double>(ops.size())));
  AbortState abort;
  std::vector<std::thread> threads;
  threads.reserve(worker_count);
  for (size_t w = 0; w < worker_count; ++w) {
    threads.emplace_back(WorkerMain, &workers[w], &workers,
                         options_.batch_size, &abort, finish);
  }

  {
    // Per-stream pending batches: items are adopted into compact records
    // while buffering and each full batch crosses the queue as a single
    // entry (one lock, one wakeup).
    std::vector<ItemBatch> buffers(entries.size());
    std::vector<size_t> cursors(entries.size(), 0);
    std::vector<size_t> active;
    for (size_t s = 0; s < entries.size(); ++s) {
      buffers[s].reserve(options_.batch_size);
      if (!item_lists[s].empty()) active.push_back(s);
    }
    while (!active.empty() && !abort.aborted()) {
      size_t write = 0;
      for (size_t idx = 0; idx < active.size(); ++idx) {
        size_t s = active[idx];
        buffers[s].AppendItem(item_lists[s][cursors[s]++],
                              options_.adopt_records);
        if (stamping) {
          buffers[s].slot(buffers[s].size() - 1).stamp.ingress_us =
              latency::NowUs();
        }
        if (buffers[s].size() >= options_.batch_size) {
          workers[partition.WorkerOf(entries[s])].queue->Push(
              LinkQueue::Entry{entries[s], std::move(buffers[s])});
          buffers[s] = ItemBatch();
          buffers[s].reserve(options_.batch_size);
        }
        if (cursors[s] < item_lists[s].size()) active[write++] = s;
      }
      active.resize(write);
    }
    if (!abort.aborted()) {
      for (size_t s = 0; s < entries.size(); ++s) {
        if (buffers[s].empty()) continue;
        workers[partition.WorkerOf(entries[s])].queue->Push(
            LinkQueue::Entry{entries[s], std::move(buffers[s])});
      }
    }
    for (size_t w : fed_workers) {
      workers[w].queue->Push(LinkQueue::Entry{});
    }
  }
  for (std::thread& thread : threads) thread.join();

  // --- Restore the serial wiring and metrics, merge the shards. ---
  for (Splice& splice : splices) {
    splice.source->ReplaceDownstream(splice.port.get(), splice.original);
  }
  for (const Rebind& rebind : rebinds) {
    rebind.op->RebindMetrics(rebind.shard, rebind.original);
  }
  for (WorkerPlan& plan : workers) {
    for (auto& [original, shard] : plan.shards) {
      original->MergeFrom(*shard);
    }
  }

  worker_stats_.reserve(worker_count);
  for (WorkerPlan& plan : workers) {
    ParallelWorkerStats stats;
    stats.peers = plan.peers;
    stats.operator_count = plan.operator_count;
    stats.entries_received = plan.queue->pushed_count();
    stats.producer_blocked_ns = plan.queue->producer_blocked_ns();
    stats.consumer_blocked_ns = plan.queue->consumer_blocked_ns();
    stats.max_queue_depth = plan.queue->max_depth();
    worker_stats_.push_back(std::move(stats));
  }
  return abort.TakeStatus();
}

}  // namespace streamshare::engine
