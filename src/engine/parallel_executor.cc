#include "engine/parallel_executor.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <utility>

#include "engine/executor.h"
#include "engine/link_queue.h"
#include "engine/metrics.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace streamshare::engine {

namespace {

/// Registry series fed by every parallel run. Looked up once; updates are
/// per-shard relaxed adds on the worker's pinned shard.
struct ParallelSeries {
  obs::Counter* items;
  obs::Counter* batches;
  obs::Histogram* batch_items;

  static const ParallelSeries& Get() {
    static const ParallelSeries series = [] {
      obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
      return ParallelSeries{
          registry.GetCounter("engine.parallel.items"),
          registry.GetCounter("engine.parallel.batches"),
          registry.GetHistogram("engine.parallel.batch_items",
                                obs::Histogram::ExponentialBounds(1, 2, 12)),
      };
    }();
    return series;
  }
};

/// Sending half of a cross-worker edge: buffers emitted items and flushes
/// them onto the consumer worker's queue in batches. Lives on the
/// producer's thread; never bills metrics (the replaced edge's target
/// still does its own accounting when the consumer pushes into it).
class QueuePortOp final : public Operator {
 public:
  QueuePortOp(Operator* target, LinkQueue* queue, size_t buffer_limit)
      : Operator("queue-port:" + target->label()),
        target_(target),
        queue_(queue),
        buffer_limit_(buffer_limit == 0 ? 1 : buffer_limit) {
    buffer_.reserve(buffer_limit_);
  }

  void Flush() { queue_->PushBatch(&buffer_); }

 protected:
  Status Process(const ItemPtr& item) override {
    buffer_.push_back(LinkQueue::Entry{target_, item});
    if (buffer_.size() >= buffer_limit_) Flush();
    return Status::Ok();
  }

 private:
  Operator* target_;
  LinkQueue* queue_;
  size_t buffer_limit_;
  std::vector<LinkQueue::Entry> buffer_;
};

/// Union-find over dense ids.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = i;
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

/// Iterative Tarjan SCC; returns a component id per node such that the
/// condensation is a DAG.
std::vector<size_t> StronglyConnectedComponents(
    const std::vector<std::set<size_t>>& adj, size_t* component_count) {
  size_t n = adj.size();
  std::vector<size_t> index(n, SIZE_MAX), lowlink(n, 0), comp(n, SIZE_MAX);
  std::vector<bool> on_stack(n, false);
  std::vector<size_t> stack;
  size_t next_index = 0, components = 0;

  struct Frame {
    size_t node;
    std::set<size_t>::const_iterator it;
  };
  for (size_t start = 0; start < n; ++start) {
    if (index[start] != SIZE_MAX) continue;
    std::vector<Frame> frames;
    frames.push_back({start, adj[start].begin()});
    index[start] = lowlink[start] = next_index++;
    stack.push_back(start);
    on_stack[start] = true;
    while (!frames.empty()) {
      Frame& frame = frames.back();
      size_t v = frame.node;
      if (frame.it != adj[v].end()) {
        size_t w = *frame.it++;
        if (index[w] == SIZE_MAX) {
          index[w] = lowlink[w] = next_index++;
          stack.push_back(w);
          on_stack[w] = true;
          frames.push_back({w, adj[w].begin()});
        } else if (on_stack[w]) {
          lowlink[v] = std::min(lowlink[v], index[w]);
        }
      } else {
        if (lowlink[v] == index[v]) {
          while (true) {
            size_t w = stack.back();
            stack.pop_back();
            on_stack[w] = false;
            comp[w] = components;
            if (w == v) break;
          }
          ++components;
        }
        frames.pop_back();
        if (!frames.empty()) {
          size_t parent = frames.back().node;
          lowlink[parent] = std::min(lowlink[parent], lowlink[v]);
        }
      }
    }
  }
  *component_count = components;
  return comp;
}

struct WorkerPlan {
  std::unique_ptr<LinkQueue> queue;
  std::vector<network::NodeId> peers;
  size_t operator_count = 0;
  /// Boundary operators this worker finishes once all pills arrived:
  /// entry operators assigned here plus targets of inbound cross edges,
  /// in discovery order.
  std::vector<Operator*> roots;
  std::set<Operator*> root_set;
  /// Sending ports owned by this worker (flushed before pills go out).
  std::vector<QueuePortOp*> ports;
  /// Workers this one feeds across an edge (one pill each at the end).
  std::set<size_t> downstream_workers;
  size_t expected_pills = 0;
  /// Worker-local metrics shard per original Metrics sink.
  std::map<Metrics*, std::unique_ptr<Metrics>> shards;

  void AddRoot(Operator* op) {
    if (root_set.insert(op).second) roots.push_back(op);
  }
};

class AbortState {
 public:
  void Record(Status status) {
    std::lock_guard<std::mutex> lock(mu_);
    if (first_error_.ok()) first_error_ = std::move(status);
    aborted_.store(true, std::memory_order_release);
  }
  bool aborted() const { return aborted_.load(std::memory_order_acquire); }
  Status TakeStatus() {
    std::lock_guard<std::mutex> lock(mu_);
    return first_error_;
  }

 private:
  std::mutex mu_;
  Status first_error_ = Status::Ok();
  std::atomic<bool> aborted_{false};
};

void WorkerMain(WorkerPlan* plan, std::vector<WorkerPlan>* all,
                size_t batch_size, AbortState* abort) {
  size_t worker_index = static_cast<size_t>(plan - all->data());
  // Pin this worker's registry updates to its own shard so worker
  // threads never contend on a metric cache line.
  obs::ScopedShard pinned(worker_index);
  obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  if (recorder.enabled()) {
    std::string name = "worker-" + std::to_string(worker_index);
    if (!plan->peers.empty()) {
      name += " [";
      for (size_t i = 0; i < plan->peers.size(); ++i) {
        if (i > 0) name += ",";
        name += "SP" + std::to_string(plan->peers[i]);
      }
      name += "]";
    }
    recorder.SetThreadName(std::move(name));
  }
  const ParallelSeries& series = ParallelSeries::Get();
  const bool count_metrics = obs::Enabled();

  std::vector<LinkQueue::Entry> batch;
  batch.reserve(batch_size);
  std::vector<ItemPtr> scratch;
  scratch.reserve(batch_size);
  size_t pills = 0;
  while (pills < plan->expected_pills) {
    batch.clear();
    plan->queue->PopBatch(&batch, batch_size);
    size_t idx = 0;
    while (idx < batch.size()) {
      if (batch[idx].target == nullptr) {
        ++pills;
        ++idx;
        continue;
      }
      if (abort->aborted()) {  // drain without processing
        ++idx;
        continue;
      }
      Operator* target = batch[idx].target;
      scratch.clear();
      while (idx < batch.size() && batch[idx].target == target) {
        scratch.push_back(std::move(batch[idx].item));
        ++idx;
      }
      uint64_t span_start = 0;
      const bool tracing = recorder.enabled();
      if (tracing) span_start = recorder.NowMicros();
      Status status = target->PushBatch(scratch);
      if (tracing) {
        recorder.RecordComplete(
            target->label(), "op", span_start,
            recorder.NowMicros() - span_start,
            {obs::TraceArg::Num("items",
                                static_cast<double>(scratch.size()))});
      }
      if (count_metrics) {
        series.items->AddToShard(worker_index, scratch.size());
        series.batches->AddToShard(worker_index, 1);
        series.batch_items->ObserveToShard(
            worker_index, static_cast<double>(scratch.size()));
      }
      if (!status.ok()) {
        abort->Record(
            WrapOperatorFailure(std::move(status), "push", *target));
      }
    }
  }
  if (!abort->aborted()) {
    for (Operator* root : plan->roots) {
      obs::TraceSpan finish_span(&recorder, "finish:" + root->label(),
                                 "op");
      Status status = root->Finish();
      if (!status.ok()) {
        abort->Record(
            WrapOperatorFailure(std::move(status), "finish", *root));
        break;
      }
    }
  }
  if (!abort->aborted()) {
    for (QueuePortOp* port : plan->ports) port->Flush();
  }
  for (size_t downstream : plan->downstream_workers) {
    (*all)[downstream].queue->Push(LinkQueue::Entry{nullptr, nullptr});
  }
}

}  // namespace

ParallelExecutor::ParallelExecutor(ParallelOptions options)
    : options_(options) {
  if (options_.queue_capacity == 0) options_.queue_capacity = 1;
  if (options_.batch_size == 0) options_.batch_size = 1;
}

Status ParallelExecutor::Run(Operator* entry,
                             const std::vector<ItemPtr>& items) {
  return Run(std::vector<Operator*>{entry},
             std::vector<std::vector<ItemPtr>>{items});
}

Status ParallelExecutor::Run(
    const std::vector<Operator*>& entries,
    const std::vector<std::vector<ItemPtr>>& item_lists) {
  worker_stats_.clear();
  if (entries.size() != item_lists.size()) {
    return Status::InvalidArgument(
        "ParallelExecutor::Run: entries and item lists differ in count");
  }
  for (Operator* entry : entries) {
    if (entry == nullptr) {
      return Status::InvalidArgument(
          "ParallelExecutor::Run: null entry operator");
    }
  }

  // --- Discover the reachable operator graph (BFS from the entries). ---
  std::vector<Operator*> ops;
  std::unordered_map<Operator*, size_t> op_index;
  auto intern = [&](Operator* op) -> size_t {
    auto [it, inserted] = op_index.emplace(op, ops.size());
    if (inserted) ops.push_back(op);
    return it->second;
  };
  for (Operator* entry : entries) intern(entry);
  {
    std::vector<Operator*> hard_succ;
    for (size_t i = 0; i < ops.size(); ++i) {  // ops grows as we discover
      for (Operator* down : ops[i]->downstreams()) intern(down);
      hard_succ.clear();
      ops[i]->AppendHardSuccessors(&hard_succ);
      for (Operator* next : hard_succ) intern(next);
    }
  }
  std::vector<std::vector<size_t>> succ(ops.size()), pred(ops.size()),
      hard(ops.size());
  {
    std::vector<Operator*> hard_succ;
    for (size_t i = 0; i < ops.size(); ++i) {
      for (Operator* down : ops[i]->downstreams()) {
        size_t j = op_index[down];
        succ[i].push_back(j);
        pred[j].push_back(i);
      }
      hard_succ.clear();
      ops[i]->AppendHardSuccessors(&hard_succ);
      for (Operator* next : hard_succ) {
        size_t j = op_index[next];
        hard[i].push_back(j);
        pred[j].push_back(i);
      }
    }
  }

  // --- Resolve each operator's peer partition. Operators without
  // accounting (entry taps, sinks, combiners) inherit from the nearest
  // accounted neighbor: first along upstream edges, else downstream. ---
  std::vector<int> peer_key(ops.size(), -2);
  std::vector<bool> visiting(ops.size(), false);
  auto resolve = [&](auto&& self, size_t i) -> int {
    if (peer_key[i] != -2) return peer_key[i];
    if (ops[i]->peer() >= 0) return peer_key[i] = ops[i]->peer();
    if (visiting[i]) return -2;
    visiting[i] = true;
    int resolved = -2;
    for (size_t p : pred[i]) {
      resolved = self(self, p);
      if (resolved >= 0) break;
    }
    if (resolved < 0) {
      for (size_t s : succ[i]) {
        resolved = self(self, s);
        if (resolved >= 0) break;
      }
    }
    if (resolved < 0) {
      for (size_t s : hard[i]) {
        resolved = self(self, s);
        if (resolved >= 0) break;
      }
    }
    visiting[i] = false;
    if (resolved < 0) resolved = 0;  // isolated chain: any worker will do
    return peer_key[i] = resolved;
  };
  for (size_t i = 0; i < ops.size(); ++i) resolve(resolve, i);

  // --- Contract hard-linked operators (unsynchronized shared state, must
  // share a thread) into clusters. ---
  UnionFind uf(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j : hard[i]) uf.Union(i, j);
  }
  std::map<size_t, size_t> rep_to_cluster;
  std::vector<size_t> cluster_of(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) {
    cluster_of[i] = rep_to_cluster.emplace(uf.Find(i), rep_to_cluster.size())
                        .first->second;
  }
  size_t cluster_count = rep_to_cluster.size();
  std::vector<int> cluster_key(cluster_count, -2);
  for (size_t i = 0; i < ops.size(); ++i) {
    if (cluster_key[cluster_of[i]] == -2) {
      cluster_key[cluster_of[i]] = peer_key[i];
    }
  }
  std::vector<std::set<size_t>> csucc(cluster_count), cpred(cluster_count);
  std::vector<size_t> indegree(cluster_count, 0);
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j : succ[i]) {
      size_t a = cluster_of[i], b = cluster_of[j];
      if (a != b && csucc[a].insert(b).second) {
        cpred[b].insert(a);
        ++indegree[b];
      }
    }
  }

  // --- Assign clusters to worker groups in topological order. A cluster
  // joins an existing group of its peer unless the new handoff edges
  // would close a cycle among groups — bounded blocking on a cycle can
  // deadlock and the pill protocol needs a DAG — in which case the peer's
  // operators split into a fresh group. Traffic flowing both ways between
  // two peers therefore costs an extra worker, not a merged one. ---
  std::vector<size_t> topo;
  topo.reserve(cluster_count);
  {
    std::vector<bool> emitted(cluster_count, false);
    for (size_t c = 0; c < cluster_count; ++c) {
      if (indegree[c] == 0) topo.push_back(c);
    }
    for (size_t head = 0; head < topo.size(); ++head) {
      emitted[topo[head]] = true;
      for (size_t d : csucc[topo[head]]) {
        if (--indegree[d] == 0) topo.push_back(d);
      }
    }
    // A cyclic operator graph never comes out of the planner; if one
    // appears anyway, append the leftovers — the SCC pass below merges
    // whatever group cycles result.
    for (size_t c = 0; c < cluster_count; ++c) {
      if (!emitted[c]) topo.push_back(c);
    }
  }
  std::vector<size_t> group_of_cluster(cluster_count, SIZE_MAX);
  std::vector<std::set<size_t>> group_succ;
  std::map<int, std::vector<size_t>> groups_for_peer;
  auto reaches = [&](size_t from, const std::set<size_t>& targets) {
    std::vector<size_t> frontier{from};
    std::set<size_t> seen{from};
    while (!frontier.empty()) {
      size_t g = frontier.back();
      frontier.pop_back();
      if (targets.count(g)) return true;
      for (size_t next : group_succ[g]) {
        if (seen.insert(next).second) frontier.push_back(next);
      }
    }
    return false;
  };
  for (size_t c : topo) {
    std::set<size_t> pred_groups;
    for (size_t p : cpred[c]) {
      if (group_of_cluster[p] != SIZE_MAX) {
        pred_groups.insert(group_of_cluster[p]);
      }
    }
    size_t chosen = SIZE_MAX;
    for (size_t g : groups_for_peer[cluster_key[c]]) {
      std::set<size_t> others = pred_groups;
      others.erase(g);
      if (others.empty() || !reaches(g, others)) {
        chosen = g;
        break;
      }
    }
    if (chosen == SIZE_MAX) {
      chosen = group_succ.size();
      group_succ.emplace_back();
      groups_for_peer[cluster_key[c]].push_back(chosen);
    }
    group_of_cluster[c] = chosen;
    for (size_t pg : pred_groups) {
      if (pg != chosen) group_succ[pg].insert(chosen);
    }
    for (size_t s : csucc[c]) {  // only relevant on the cyclic fallback
      if (group_of_cluster[s] != SIZE_MAX && group_of_cluster[s] != chosen) {
        group_succ[chosen].insert(group_of_cluster[s]);
      }
    }
  }

  // Safety net: the greedy pass keeps group_succ acyclic for any operator
  // DAG, so this is an identity map unless the graph itself was cyclic.
  size_t component_count = 0;
  std::vector<size_t> component =
      StronglyConnectedComponents(group_succ, &component_count);

  // Dense worker ids in first-use order over the operators.
  std::vector<size_t> worker_of(ops.size());
  std::map<size_t, size_t> comp_to_worker;
  for (size_t i = 0; i < ops.size(); ++i) {
    size_t comp = component[group_of_cluster[cluster_of[i]]];
    worker_of[i] =
        comp_to_worker.emplace(comp, comp_to_worker.size()).first->second;
  }
  size_t worker_count = comp_to_worker.size();

  std::vector<WorkerPlan> workers(worker_count);
  for (size_t w = 0; w < worker_count; ++w) {
    workers[w].queue = std::make_unique<LinkQueue>(options_.queue_capacity);
  }
  for (size_t i = 0; i < ops.size(); ++i) {
    WorkerPlan& plan = workers[worker_of[i]];
    ++plan.operator_count;
    if (peer_key[i] >= 0 &&
        std::find(plan.peers.begin(), plan.peers.end(), peer_key[i]) ==
            plan.peers.end()) {
      plan.peers.push_back(peer_key[i]);
    }
  }

  // --- Splice queue ports into every cross-worker edge. ---
  struct Splice {
    Operator* source;
    Operator* original;
    std::unique_ptr<QueuePortOp> port;
  };
  std::vector<Splice> splices;
  std::set<std::pair<Operator*, Operator*>> spliced;
  for (size_t i = 0; i < ops.size(); ++i) {
    for (size_t j : succ[i]) {
      if (worker_of[i] == worker_of[j]) continue;
      if (!spliced.emplace(ops[i], ops[j]).second) continue;
      size_t src = worker_of[i], dst = worker_of[j];
      auto port = std::make_unique<QueuePortOp>(
          ops[j], workers[dst].queue.get(), options_.batch_size);
      ops[i]->ReplaceDownstream(ops[j], port.get());
      workers[src].ports.push_back(port.get());
      workers[src].downstream_workers.insert(dst);
      workers[dst].AddRoot(ops[j]);
      splices.push_back(Splice{ops[i], ops[j], std::move(port)});
    }
  }
  std::set<size_t> fed_workers;
  for (Operator* entry : entries) {
    size_t w = worker_of[op_index[entry]];
    fed_workers.insert(w);
    workers[w].AddRoot(entry);
  }
  for (size_t w = 0; w < worker_count; ++w) {
    workers[w].expected_pills = fed_workers.count(w);
  }
  for (size_t w = 0; w < worker_count; ++w) {
    for (size_t downstream : workers[w].downstream_workers) {
      ++workers[downstream].expected_pills;
    }
  }

  // --- Rebind metrics to per-worker shards (hot path stays lock- and
  // atomic-free; shards merge back after the run). ---
  struct Rebind {
    Operator* op;
    Metrics* original;
    Metrics* shard;
  };
  std::vector<Rebind> rebinds;
  {
    std::vector<Metrics*> targets;
    for (size_t i = 0; i < ops.size(); ++i) {
      targets.clear();
      ops[i]->AppendMetricsTargets(&targets);
      WorkerPlan& plan = workers[worker_of[i]];
      for (Metrics* original : targets) {
        auto it = plan.shards.find(original);
        if (it == plan.shards.end()) {
          it = plan.shards
                   .emplace(original, std::make_unique<Metrics>(
                                          Metrics::ShardLike(*original)))
                   .first;
        }
        ops[i]->RebindMetrics(original, it->second.get());
        rebinds.push_back(Rebind{ops[i], original, it->second.get()});
      }
    }
  }

  // --- Run: one thread per worker, the calling thread feeds. ---
  obs::TraceSpan run_span(&obs::TraceRecorder::Default(), "parallel.run",
                          "engine");
  run_span.AddArg(
      obs::TraceArg::Num("workers", static_cast<double>(worker_count)));
  run_span.AddArg(
      obs::TraceArg::Num("operators", static_cast<double>(ops.size())));
  AbortState abort;
  std::vector<std::thread> threads;
  threads.reserve(worker_count);
  for (size_t w = 0; w < worker_count; ++w) {
    threads.emplace_back(WorkerMain, &workers[w], &workers,
                         options_.batch_size, &abort);
  }

  {
    std::vector<std::vector<LinkQueue::Entry>> buffers(entries.size());
    std::vector<size_t> cursors(entries.size(), 0);
    std::vector<size_t> active;
    for (size_t s = 0; s < entries.size(); ++s) {
      buffers[s].reserve(options_.batch_size);
      if (!item_lists[s].empty()) active.push_back(s);
    }
    while (!active.empty() && !abort.aborted()) {
      size_t write = 0;
      for (size_t idx = 0; idx < active.size(); ++idx) {
        size_t s = active[idx];
        buffers[s].push_back(
            LinkQueue::Entry{entries[s], item_lists[s][cursors[s]++]});
        if (buffers[s].size() >= options_.batch_size) {
          workers[worker_of[op_index[entries[s]]]].queue->PushBatch(
              &buffers[s]);
        }
        if (cursors[s] < item_lists[s].size()) active[write++] = s;
      }
      active.resize(write);
    }
    if (!abort.aborted()) {
      for (size_t s = 0; s < entries.size(); ++s) {
        workers[worker_of[op_index[entries[s]]]].queue->PushBatch(
            &buffers[s]);
      }
    }
    for (size_t w : fed_workers) {
      workers[w].queue->Push(LinkQueue::Entry{nullptr, nullptr});
    }
  }
  for (std::thread& thread : threads) thread.join();

  // --- Restore the serial wiring and metrics, merge the shards. ---
  for (Splice& splice : splices) {
    splice.source->ReplaceDownstream(splice.port.get(), splice.original);
  }
  for (const Rebind& rebind : rebinds) {
    rebind.op->RebindMetrics(rebind.shard, rebind.original);
  }
  for (WorkerPlan& plan : workers) {
    for (auto& [original, shard] : plan.shards) {
      original->MergeFrom(*shard);
    }
  }

  worker_stats_.reserve(worker_count);
  for (WorkerPlan& plan : workers) {
    ParallelWorkerStats stats;
    stats.peers = plan.peers;
    stats.operator_count = plan.operator_count;
    stats.entries_received = plan.queue->pushed_count();
    stats.producer_blocked_ns = plan.queue->producer_blocked_ns();
    stats.consumer_blocked_ns = plan.queue->consumer_blocked_ns();
    stats.max_queue_depth = plan.queue->max_depth();
    worker_stats_.push_back(std::move(stats));
  }
  return abort.TakeStatus();
}

}  // namespace streamshare::engine
