// The post-processing (restructuring) step of §2: evaluating the return
// clause of a WXQuery at the super-peer the subscribing peer is connected
// to. The input is the shared-format stream (projected items, or <wagg>
// aggregate items); the output is the subscriber-visible result stream
// whose structure the return clause dictates. Restructured streams are
// never registered for reuse.

#ifndef STREAMSHARE_ENGINE_RESTRUCTURE_H_
#define STREAMSHARE_ENGINE_RESTRUCTURE_H_

#include <memory>

#include "engine/operator.h"
#include "wxquery/analyzer.h"

namespace streamshare::engine {

/// Evaluates the query's return expression once per incoming item. For
/// plain queries the item is bound to the for variable; for aggregate
/// queries the incoming <wagg> item is finalized (avg = sum/cnt) and bound
/// to the let variable; empty windows are skipped. Each top-level node the
/// return expression produces is emitted as one result item.
///
/// Plain (non-window, non-aggregate) queries whose return expression is
/// built from element constructors, sequences, condition-free output
/// paths, whole-item outputs and leaf-only conditions are compiled once
/// into a record program: record slots then produce their result trees
/// straight from the record fields — no input materialization, no path
/// navigation, no subtree cloning — byte-identical to the DOM evaluation.
class RestructureOp : public Operator {
 public:
  RestructureOp(std::string label,
                std::shared_ptr<const wxquery::AnalyzedQuery> query);
  ~RestructureOp() override;

  struct CompiledReturn;

 protected:
  Status Process(const ItemPtr& item) override;
  /// Record slots run the compiled return program (when the query shape
  /// admits one); opaque slots take the DOM evaluation. Buffered outputs
  /// are flushed downstream before any error returns.
  Status ProcessBatch(ItemBatch* batch) override;

 private:
  /// DOM-path evaluation of one input item, appending each produced
  /// result item to `out` (exactly the items Process would Emit).
  Status EvaluateTree(const xml::XmlNode& item, ItemBatch* out);

  std::shared_ptr<const wxquery::AnalyzedQuery> query_;
  const wxquery::StreamBinding* binding_;  // single-input queries
  /// Compiled record program; null when the query shape requires the DOM
  /// evaluation (window contents, aggregates, nested FLWR, step
  /// conditions, off-schema structural conditions).
  std::unique_ptr<CompiledReturn> program_;
  ItemBatch scratch_;
};

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_RESTRUCTURE_H_
