// The post-processing (restructuring) step of §2: evaluating the return
// clause of a WXQuery at the super-peer the subscribing peer is connected
// to. The input is the shared-format stream (projected items, or <wagg>
// aggregate items); the output is the subscriber-visible result stream
// whose structure the return clause dictates. Restructured streams are
// never registered for reuse.

#ifndef STREAMSHARE_ENGINE_RESTRUCTURE_H_
#define STREAMSHARE_ENGINE_RESTRUCTURE_H_

#include <memory>

#include "engine/operator.h"
#include "wxquery/analyzer.h"

namespace streamshare::engine {

/// Evaluates the query's return expression once per incoming item. For
/// plain queries the item is bound to the for variable; for aggregate
/// queries the incoming <wagg> item is finalized (avg = sum/cnt) and bound
/// to the let variable; empty windows are skipped. Each top-level node the
/// return expression produces is emitted as one result item.
class RestructureOp : public Operator {
 public:
  RestructureOp(std::string label,
                std::shared_ptr<const wxquery::AnalyzedQuery> query);

 protected:
  Status Process(const ItemPtr& item) override;

 private:
  std::shared_ptr<const wxquery::AnalyzedQuery> query_;
  const wxquery::StreamBinding* binding_;  // single-input queries
};

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_RESTRUCTURE_H_
