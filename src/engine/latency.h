// The measured-latency plane. Every item is stamped with an ingress tick
// when it enters the system (at the generator feed), and the stamp rides
// with the item — in its batch slot on the record path, in a thread-local
// ambient on the synchronous DOM push path, and as a varint frame
// extension on the transport wire — accumulating queue-residency and
// transport time along the way. Sinks turn arriving stamps into per-query
// end-to-end histograms with stage attribution (pipeline / queue-wait /
// transport).
//
// Stamps are metrics only: they are excluded from content hashes and
// never change what a query outputs (an ARCHITECTURE invariant the fuzz
// oracle enforces by diffing a stamped run against an unstamped one).

#ifndef STREAMSHARE_ENGINE_LATENCY_H_
#define STREAMSHARE_ENGINE_LATENCY_H_

#include <cstdint>

namespace streamshare::engine::latency {

/// The per-item stamp. `ingress_us == 0` means "unstamped" — items that
/// predate stamping (old wire frames, runs with stamping off) and
/// operator outputs with no single originating item flow unstamped and
/// are simply skipped by sink recording.
struct ItemStamp {
  /// NowUs() at the moment the item entered the system.
  uint64_t ingress_us = 0;
  /// Accumulated residency in bounded LinkQueues (parallel / transport
  /// workers), µs.
  uint64_t queue_us = 0;
  /// Accumulated time on transport wires (send tick to receive tick,
  /// summed over hops), µs.
  uint64_t transport_us = 0;

  bool stamped() const { return ingress_us != 0; }
};

/// Microseconds on the steady clock. On Linux this is CLOCK_MONOTONIC,
/// which is system-wide — ticks taken in fork-per-worker transport
/// children compare directly against the parent's. Never returns 0.
uint64_t NowUs();

/// Runtime master switch, default on. Stamping costs one clock read per
/// item at the feed and one per queue/wire hop; the perf_smoke CI gate
/// holds the overhead under 5%.
bool Enabled();
void SetEnabled(bool on);

/// Conjunctive scoped override: enables stamping only if it was already
/// enabled AND `on` is true; restores the previous state on destruction.
/// System run paths wrap runs in this so SystemConfig::measure_latency
/// composes with a process-wide --no-stamping.
class ScopedEnabled {
 public:
  explicit ScopedEnabled(bool on) : previous_(Enabled()) {
    SetEnabled(previous_ && on);
  }
  ~ScopedEnabled() { SetEnabled(previous_); }
  ScopedEnabled(const ScopedEnabled&) = delete;
  ScopedEnabled& operator=(const ScopedEnabled&) = delete;

 private:
  bool previous_;
};

/// Ambient stamp of the item currently being pushed on this thread. The
/// DOM path pushes items one by one through a synchronous operator
/// cascade, so the stamp of the item under evaluation — and of anything
/// it causes to be emitted, window flushes included — is a thread-local,
/// not a slot field. Returns an unstamped ItemStamp outside a push.
const ItemStamp& Ambient();
void SetAmbient(const ItemStamp& stamp);
void ClearAmbient();

/// Sets the ambient stamp for one item push and restores the previous
/// ambient on destruction (batch fallbacks nest inside feed loops).
class AmbientScope {
 public:
  explicit AmbientScope(const ItemStamp& stamp) : previous_(Ambient()) {
    SetAmbient(stamp);
  }
  ~AmbientScope() { SetAmbient(previous_); }
  AmbientScope(const AmbientScope&) = delete;
  AmbientScope& operator=(const AmbientScope&) = delete;

 private:
  ItemStamp previous_;
};

}  // namespace streamshare::engine::latency

#endif  // STREAMSHARE_ENGINE_LATENCY_H_
