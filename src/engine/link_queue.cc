#include "engine/link_queue.h"

#include <chrono>

#include "engine/latency.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace streamshare::engine {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           since)
          .count());
}

/// Records the just-finished blocked interval on the calling thread's
/// trace track, so stalls show up as explicit spans in chrome://tracing.
void TraceBlocked(const char* name, uint64_t blocked_ns) {
  obs::TraceRecorder& recorder = obs::TraceRecorder::Default();
  if (!recorder.enabled()) return;
  uint64_t duration_us = blocked_ns / 1000;
  uint64_t end_us = recorder.NowMicros();
  recorder.RecordComplete(name, "queue",
                          end_us > duration_us ? end_us - duration_us : 0,
                          duration_us, {});
}

}  // namespace

LinkQueue::LinkQueue(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void LinkQueue::ResetStats() {
  std::lock_guard<std::mutex> lock(mu_);
  pushed_count_.store(0, std::memory_order_relaxed);
  producer_blocked_ns_.store(0, std::memory_order_relaxed);
  consumer_blocked_ns_.store(0, std::memory_order_relaxed);
  max_depth_.store(size_, std::memory_order_relaxed);
}

void LinkQueue::Push(Entry entry) {
  if (entry.enqueued_us == 0 && latency::Enabled()) {
    entry.enqueued_us = latency::NowUs();
  }
  size_t weight = Weight(entry);
  std::unique_lock<std::mutex> lock(mu_);
  if (size_ >= capacity_) {
    Clock::time_point start = Clock::now();
    not_full_.wait(lock, [this] { return size_ < capacity_; });
    uint64_t blocked = ElapsedNs(start);
    producer_blocked_ns_.fetch_add(blocked, std::memory_order_relaxed);
    TraceBlocked("queue.blocked.producer", blocked);
  }
  bool was_empty = entries_.empty();
  entries_.push_back(std::move(entry));
  size_ += weight;
  NoteDepthLocked();
  pushed_count_.fetch_add(weight, std::memory_order_relaxed);
  // The consumer only ever waits on an empty queue, so one entry is
  // enough to wake it; notify under the lock to keep TSAN-obvious.
  if (was_empty) not_empty_.notify_one();
}

void LinkQueue::PushBatch(std::vector<Entry>* batch) {
  if (batch->empty()) return;
  if (latency::Enabled()) {
    uint64_t now = latency::NowUs();
    for (Entry& entry : *batch) {
      if (entry.enqueued_us == 0) entry.enqueued_us = now;
    }
  }
  std::unique_lock<std::mutex> lock(mu_);
  size_t pushed = 0;
  for (Entry& entry : *batch) {
    size_t weight = Weight(entry);
    if (size_ >= capacity_) {
      if (pushed > 0) not_empty_.notify_one();
      Clock::time_point start = Clock::now();
      not_full_.wait(lock, [this] { return size_ < capacity_; });
      uint64_t blocked = ElapsedNs(start);
      producer_blocked_ns_.fetch_add(blocked, std::memory_order_relaxed);
      TraceBlocked("queue.blocked.producer", blocked);
    }
    entries_.push_back(std::move(entry));
    size_ += weight;
    NoteDepthLocked();
    pushed += weight;
  }
  pushed_count_.fetch_add(pushed, std::memory_order_relaxed);
  not_empty_.notify_one();
  batch->clear();
}

void LinkQueue::PopBatch(std::vector<Entry>* out, size_t max_items) {
  std::unique_lock<std::mutex> lock(mu_);
  if (entries_.empty()) {
    Clock::time_point start = Clock::now();
    not_empty_.wait(lock, [this] { return !entries_.empty(); });
    uint64_t blocked = ElapsedNs(start);
    consumer_blocked_ns_.fetch_add(blocked, std::memory_order_relaxed);
    TraceBlocked("queue.blocked.consumer", blocked);
  }
  size_t first_taken = out->size();
  size_t taken = 0;
  while (!entries_.empty() && (taken == 0 || taken < max_items)) {
    taken += Weight(entries_.front());
    out->push_back(std::move(entries_.front()));
    entries_.pop_front();
  }
  size_ -= taken;
  // Waking every blocked producer is correct (they re-check capacity) and
  // cheap: producers block only when the queue was full, and we just made
  // room.
  not_full_.notify_all();
  lock.unlock();

  // Queue residency: how long each just-dequeued entry sat in the queue.
  // Credited to every stamped slot (stage attribution at the sink) and
  // observed once per entry on the residency histogram.
  if (!latency::Enabled()) return;
  uint64_t now = latency::NowUs();
  for (size_t e = first_taken; e < out->size(); ++e) {
    Entry& entry = (*out)[e];
    if (entry.enqueued_us == 0) continue;
    uint64_t wait_us = now > entry.enqueued_us ? now - entry.enqueued_us : 0;
    entry.enqueued_us = 0;
    if (residency_us_ != nullptr) {
      residency_us_->Observe(static_cast<double>(wait_us));
    }
    if (entry.target == nullptr) continue;
    for (size_t i = 0; i < entry.batch.size(); ++i) {
      ItemBatch::Slot& slot = entry.batch.slot(i);
      if (slot.stamp.stamped()) slot.stamp.queue_us += wait_us;
    }
  }
}

}  // namespace streamshare::engine
