#include "engine/executor.h"

namespace streamshare::engine {

Status RunStream(Operator* entry, const std::vector<ItemPtr>& items) {
  for (const ItemPtr& item : items) {
    SS_RETURN_IF_ERROR(entry->Push(item));
  }
  return entry->Finish();
}

Status RunStreams(const std::vector<Operator*>& entries,
                  const std::vector<std::vector<ItemPtr>>& item_lists,
                  bool finish) {
  if (entries.size() != item_lists.size()) {
    return Status::InvalidArgument(
        "RunStreams: entries and item lists differ in count");
  }
  // Round-robin over the streams that still have items: exhausted streams
  // drop out of `active` instead of being re-tested every round.
  std::vector<size_t> cursors(entries.size(), 0);
  std::vector<size_t> active;
  active.reserve(entries.size());
  for (size_t s = 0; s < entries.size(); ++s) {
    if (!item_lists[s].empty()) active.push_back(s);
  }
  while (!active.empty()) {
    size_t write = 0;
    for (size_t idx = 0; idx < active.size(); ++idx) {
      size_t s = active[idx];
      SS_RETURN_IF_ERROR(entries[s]->Push(item_lists[s][cursors[s]++]));
      if (cursors[s] < item_lists[s].size()) active[write++] = s;
    }
    active.resize(write);
  }
  if (finish) {
    for (Operator* entry : entries) {
      SS_RETURN_IF_ERROR(entry->Finish());
    }
  }
  return Status::Ok();
}

}  // namespace streamshare::engine
