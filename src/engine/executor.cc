#include "engine/executor.h"

namespace streamshare::engine {

Status RunStream(Operator* entry, const std::vector<ItemPtr>& items) {
  for (const ItemPtr& item : items) {
    SS_RETURN_IF_ERROR(entry->Push(item));
  }
  return entry->Finish();
}

Status RunStreams(const std::vector<Operator*>& entries,
                  const std::vector<std::vector<ItemPtr>>& item_lists,
                  bool finish) {
  if (entries.size() != item_lists.size()) {
    return Status::InvalidArgument(
        "RunStreams: entries and item lists differ in count");
  }
  size_t max_items = 0;
  for (const auto& items : item_lists) {
    max_items = std::max(max_items, items.size());
  }
  for (size_t i = 0; i < max_items; ++i) {
    for (size_t s = 0; s < entries.size(); ++s) {
      if (i < item_lists[s].size()) {
        SS_RETURN_IF_ERROR(entries[s]->Push(item_lists[s][i]));
      }
    }
  }
  if (finish) {
    for (Operator* entry : entries) {
      SS_RETURN_IF_ERROR(entry->Finish());
    }
  }
  return Status::Ok();
}

}  // namespace streamshare::engine
