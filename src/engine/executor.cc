#include "engine/executor.h"

#include "engine/latency.h"
#include "obs/event_log.h"

namespace streamshare::engine {

std::string OperatorContext(std::string_view action, const Operator& op) {
  return std::string(action) + " " + op.label();
}

Status WrapOperatorFailure(Status status, std::string_view action,
                           const Operator& op) {
  obs::EventLog& log = obs::EventLog::Default();
  if (log.ShouldLog(obs::Severity::kError)) {
    log.Log(obs::Severity::kError, "engine", "operator failed",
            {obs::F("action", action), obs::F("operator", op.label()),
             obs::F("status", status.ToString())});
  }
  return status.WithContext(OperatorContext(action, op));
}

Status RunStream(Operator* entry, const std::vector<ItemPtr>& items) {
  const bool stamping = latency::Enabled();
  for (const ItemPtr& item : items) {
    // DOM pushes are synchronous, so the ingress stamp travels as the
    // thread-local ambient; the scope clears it before Finish below, so
    // window flushes emitted at end-of-stream stay unstamped.
    latency::ItemStamp stamp;
    if (stamping) stamp.ingress_us = latency::NowUs();
    latency::AmbientScope scope(stamp);
    Status status = entry->Push(item);
    if (!status.ok()) {
      return WrapOperatorFailure(std::move(status), "push", *entry);
    }
  }
  Status status = entry->Finish();
  if (!status.ok()) {
    return WrapOperatorFailure(std::move(status), "finish", *entry);
  }
  return Status::Ok();
}

Status RunStreams(const std::vector<Operator*>& entries,
                  const std::vector<std::vector<ItemPtr>>& item_lists,
                  bool finish) {
  if (entries.size() != item_lists.size()) {
    return Status::InvalidArgument(
        "RunStreams: entries and item lists differ in count");
  }
  // Round-robin over the streams that still have items: exhausted streams
  // drop out of `active` instead of being re-tested every round.
  std::vector<size_t> cursors(entries.size(), 0);
  std::vector<size_t> active;
  active.reserve(entries.size());
  for (size_t s = 0; s < entries.size(); ++s) {
    if (!item_lists[s].empty()) active.push_back(s);
  }
  const bool stamping = latency::Enabled();
  while (!active.empty()) {
    size_t write = 0;
    for (size_t idx = 0; idx < active.size(); ++idx) {
      size_t s = active[idx];
      latency::ItemStamp stamp;
      if (stamping) stamp.ingress_us = latency::NowUs();
      latency::AmbientScope scope(stamp);
      Status status = entries[s]->Push(item_lists[s][cursors[s]++]);
      if (!status.ok()) {
        return WrapOperatorFailure(std::move(status), "push", *entries[s]);
      }
      if (cursors[s] < item_lists[s].size()) active[write++] = s;
    }
    active.resize(write);
  }
  if (finish) {
    for (Operator* entry : entries) {
      Status status = entry->Finish();
      if (!status.ok()) {
        return WrapOperatorFailure(std::move(status), "finish", *entry);
      }
    }
  }
  return Status::Ok();
}

Status RunStreamsBatched(const std::vector<Operator*>& entries,
                         const std::vector<std::vector<ItemPtr>>& item_lists,
                         size_t batch_size, bool adopt, bool finish) {
  if (entries.size() != item_lists.size()) {
    return Status::InvalidArgument(
        "RunStreamsBatched: entries and item lists differ in count");
  }
  if (batch_size == 0) batch_size = 1;
  std::vector<size_t> cursors(entries.size(), 0);
  std::vector<size_t> active;
  active.reserve(entries.size());
  for (size_t s = 0; s < entries.size(); ++s) {
    if (!item_lists[s].empty()) active.push_back(s);
  }
  const bool stamping = latency::Enabled();
  ItemBatch batch;
  while (!active.empty()) {
    size_t write = 0;
    for (size_t idx = 0; idx < active.size(); ++idx) {
      size_t s = active[idx];
      const std::vector<ItemPtr>& items = item_lists[s];
      size_t end = std::min(items.size(), cursors[s] + batch_size);
      batch.clear();
      batch.reserve(end - cursors[s]);
      // One ingress tick per chunk: the whole chunk enters the pipeline
      // at this instant, and a single clock read keeps stamping overhead
      // off the per-item fast path.
      uint64_t now = stamping ? latency::NowUs() : 0;
      for (; cursors[s] < end; ++cursors[s]) {
        batch.AppendItem(items[cursors[s]], adopt);
        if (stamping) batch.slot(batch.size() - 1).stamp.ingress_us = now;
      }
      Status status = entries[s]->PushBatch(&batch);
      if (!status.ok()) {
        return WrapOperatorFailure(std::move(status), "push", *entries[s]);
      }
      if (cursors[s] < items.size()) active[write++] = s;
    }
    active.resize(write);
  }
  if (finish) {
    for (Operator* entry : entries) {
      Status status = entry->Finish();
      if (!status.ok()) {
        return WrapOperatorFailure(std::move(status), "finish", *entry);
      }
    }
  }
  return Status::Ok();
}

Status RunBatchStreams(const std::vector<Operator*>& entries,
                       std::vector<std::vector<ItemBatch>>* batch_lists,
                       bool finish) {
  if (entries.size() != batch_lists->size()) {
    return Status::InvalidArgument(
        "RunBatchStreams: entries and batch lists differ in count");
  }
  std::vector<size_t> cursors(entries.size(), 0);
  std::vector<size_t> active;
  active.reserve(entries.size());
  for (size_t s = 0; s < entries.size(); ++s) {
    if (!(*batch_lists)[s].empty()) active.push_back(s);
  }
  const bool stamping = latency::Enabled();
  while (!active.empty()) {
    size_t write = 0;
    for (size_t idx = 0; idx < active.size(); ++idx) {
      size_t s = active[idx];
      ItemBatch& batch = (*batch_lists)[s][cursors[s]++];
      if (stamping) {
        uint64_t now = latency::NowUs();
        for (size_t i = 0; i < batch.size(); ++i) {
          ItemBatch::Slot& slot = batch.slot(i);
          if (!slot.stamp.stamped()) slot.stamp.ingress_us = now;
        }
      }
      Status status = entries[s]->PushBatch(&batch);
      if (!status.ok()) {
        return WrapOperatorFailure(std::move(status), "push", *entries[s]);
      }
      if (cursors[s] < (*batch_lists)[s].size()) active[write++] = s;
    }
    active.resize(write);
  }
  if (finish) {
    for (Operator* entry : entries) {
      Status status = entry->Finish();
      if (!status.ok()) {
        return WrapOperatorFailure(std::move(status), "finish", *entry);
      }
    }
  }
  return Status::Ok();
}

}  // namespace streamshare::engine
