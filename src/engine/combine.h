// Multi-input combination at the query's super-peer. The paper handles
// each input stream of a subscription individually (Algorithm 1 iterates
// per input, delivering the relevant parts of every input to the query's
// super-peer) and performs "any combination of input data streams as
// demanded by the subscription ... during the final post-processing step"
// whose output is never shared (§3.3, §2).
//
// CombineOp implements that post-processing for multi-for subscriptions
// with XQuery's nested-loop semantics over the *delivered* finite
// streams: each input is buffered behind a port; when every input has
// finished, the cartesian product of bound items is filtered by the
// query's cross-binding join conditions and fed through the return
// clause. (Bindings with windows or aggregates are single-input only —
// the analyzer enforces this.)

#ifndef STREAMSHARE_ENGINE_COMBINE_H_
#define STREAMSHARE_ENGINE_COMBINE_H_

#include <memory>
#include <vector>

#include "engine/operator.h"
#include "wxquery/analyzer.h"

namespace streamshare::engine {

class CombineOp;

/// One input port of a CombineOp. Construct one per subscription input
/// and wire the input's chain into it; the port buffers items into the
/// combiner and, on end of stream, triggers the combination once all
/// ports are done.
class CombinePortOp : public Operator {
 public:
  CombinePortOp(std::string label, CombineOp* parent, size_t index);

  /// The combiner is invoked through a direct pointer (all ports mutate
  /// its buffers), so a partitioned executor must co-locate it with its
  /// ports.
  void AppendHardSuccessors(std::vector<Operator*>* out) override;

 protected:
  Status Process(const ItemPtr& item) override;
  Status OnFinish() override;

 private:
  CombineOp* parent_;
  size_t index_;
};

class CombineOp : public Operator {
 public:
  /// Guard against cartesian blow-ups: combinations beyond this bound
  /// fail with kOutOfRange instead of consuming unbounded time/memory.
  static constexpr uint64_t kMaxCombinations = 5'000'000;

  CombineOp(std::string label,
            std::shared_ptr<const wxquery::AnalyzedQuery> query);

  size_t input_count() const { return buffers_.size(); }

 protected:
  /// Items are never pushed into the combiner directly — only through
  /// its ports.
  Status Process(const ItemPtr& item) override;

 private:
  friend class CombinePortOp;

  Status BufferItem(size_t index, const ItemPtr& item);
  Status PortFinished();
  /// Nested-loop evaluation over all buffered inputs.
  Status EvaluateAll();

  std::shared_ptr<const wxquery::AnalyzedQuery> query_;
  std::vector<std::vector<ItemPtr>> buffers_;
  size_t finished_ports_ = 0;
};

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_COMBINE_H_
