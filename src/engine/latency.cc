#include "engine/latency.h"

#include <atomic>
#include <chrono>

namespace streamshare::engine::latency {

namespace {

std::atomic<bool> g_enabled{true};

thread_local ItemStamp t_ambient;

}  // namespace

uint64_t NowUs() {
  auto now = std::chrono::steady_clock::now().time_since_epoch();
  uint64_t us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(now).count());
  // 0 means "unstamped"; the steady clock could in principle read 0 in
  // the first microsecond after boot.
  return us == 0 ? 1 : us;
}

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

void SetEnabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

const ItemStamp& Ambient() { return t_ambient; }

void SetAmbient(const ItemStamp& stamp) { t_ambient = stamp; }

void ClearAmbient() { t_ambient = ItemStamp(); }

}  // namespace streamshare::engine::latency
