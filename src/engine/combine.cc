#include "engine/combine.h"

#include "engine/return_eval.h"

namespace streamshare::engine {

CombinePortOp::CombinePortOp(std::string label, CombineOp* parent,
                             size_t index)
    : Operator(std::move(label)), parent_(parent), index_(index) {}

void CombinePortOp::AppendHardSuccessors(std::vector<Operator*>* out) {
  out->push_back(parent_);
}

Status CombinePortOp::Process(const ItemPtr& item) {
  return parent_->BufferItem(index_, item);
}

Status CombinePortOp::OnFinish() { return parent_->PortFinished(); }

CombineOp::CombineOp(std::string label,
                     std::shared_ptr<const wxquery::AnalyzedQuery> query)
    : Operator(std::move(label)), query_(std::move(query)) {
  buffers_.resize(query_->bindings.size());
}

Status CombineOp::Process(const ItemPtr&) {
  return Status::Internal(
      "CombineOp receives items only through its ports");
}

Status CombineOp::BufferItem(size_t index, const ItemPtr& item) {
  buffers_[index].push_back(item);
  return Status::Ok();
}

Status CombineOp::PortFinished() {
  ++finished_ports_;
  if (finished_ports_ < buffers_.size()) return Status::Ok();
  SS_RETURN_IF_ERROR(EvaluateAll());
  // Propagate end of stream to the query's sink.
  return Finish();
}

Status CombineOp::EvaluateAll() {
  uint64_t combinations = 1;
  for (const std::vector<ItemPtr>& buffer : buffers_) {
    if (buffer.empty()) return Status::Ok();  // empty cartesian product
    combinations *= static_cast<uint64_t>(buffer.size());
    if (combinations > kMaxCombinations) {
      return Status::OutOfRange(
          "combination of input streams exceeds " +
          std::to_string(kMaxCombinations) + " tuples");
    }
  }

  // Odometer over the buffers, outermost binding varying slowest — the
  // FLWR's nested-loop order.
  std::vector<size_t> index(buffers_.size(), 0);
  ReturnEnv env;
  while (true) {
    for (size_t b = 0; b < buffers_.size(); ++b) {
      env.items[query_->bindings[b].var] = buffers_[b][index[b]].get();
    }
    SS_ASSIGN_OR_RETURN(
        bool joined,
        EvaluateReturnCondition(query_->join_conditions, env));
    if (joined) {
      std::vector<ReturnOutput> outputs;
      SS_RETURN_IF_ERROR(
          EvaluateReturn(*query_->flwr->return_expr, env, &outputs));
      for (ReturnOutput& output : outputs) {
        if (auto* node =
                std::get_if<std::unique_ptr<xml::XmlNode>>(&output)) {
          SS_RETURN_IF_ERROR(Emit(MakeItem(std::move(*node))));
        } else {
          auto wrapper = std::make_unique<xml::XmlNode>("value");
          wrapper->set_text(std::get<std::string>(output));
          SS_RETURN_IF_ERROR(Emit(MakeItem(std::move(wrapper))));
        }
      }
    }
    // Advance the odometer (innermost = last binding fastest).
    size_t b = buffers_.size();
    while (b > 0) {
      --b;
      if (++index[b] < buffers_[b].size()) break;
      index[b] = 0;
      if (b == 0) return Status::Ok();
    }
  }
}

}  // namespace streamshare::engine
