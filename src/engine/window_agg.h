// Window-based aggregation operators and the internal aggregate stream
// format. Aggregate result streams flowing in the super-peer network carry
// one <wagg> item per window update:
//
//   <wagg><seq>i</seq><sum>S</sum><cnt>C</cnt></wagg>   (sum/count/avg)
//   <wagg><seq>i</seq><val>V</val></wagg>               (min/max)
//
// avg is deliberately carried as (sum, count) — the paper's internal
// representation (§3.3), which is what makes an avg stream reusable for
// sum and count subscriptions; the final avg value is computed at the
// target super-peer during restructuring.
//
// Window sequence numbers anchor sharing: window i spans
//   item-based:  items  [i·µ, i·µ + Δ)       (indices within the stream)
//   time-based:  values [i·µ, i·µ + Δ)       (of the ordered reference
//                                             element, anchored at 0)
// Anchoring time windows at absolute 0 makes windows of different
// subscriptions over the same reference element align, as Fig. 5 assumes.

#ifndef STREAMSHARE_ENGINE_WINDOW_AGG_H_
#define STREAMSHARE_ENGINE_WINDOW_AGG_H_

#include <cstdint>
#include <deque>
#include <map>
#include <optional>

#include "engine/operator.h"
#include "engine/window_tracker.h"
#include "properties/operators.h"
#include "properties/window.h"

namespace streamshare::engine {

/// The decoded payload of one <wagg> item.
struct AggItem {
  int64_t seq = 0;
  /// sum/count representation (sum, count, avg) ...
  std::optional<Decimal> sum;
  std::optional<int64_t> count;
  /// ... or extremum representation (min, max).
  std::optional<Decimal> value;

  /// The final aggregate value under `func` (avg divides sum by count).
  Result<Decimal> Finalize(properties::AggregateFunc func) const;
};

/// Builds the <wagg> XML item for an aggregate value.
ItemPtr MakeAggItem(const AggItem& agg);

/// Parses a <wagg> item.
Result<AggItem> ParseAggItem(const xml::XmlNode& item);

/// Computes window aggregates over its input stream and emits one <wagg>
/// item per completed window, in sequence order. Supports item-based
/// (count) and time-based (diff) windows with arbitrary step sizes
/// (overlapping when µ < Δ, sampling when µ > Δ).
class WindowAggOp : public Operator {
 public:
  /// `resume` anchors the tracker in resume mode (see
  /// WindowTracker::EnableResume): the operator is being rebuilt
  /// mid-stream by failure recovery and must suppress windows already
  /// underway at its first input rather than emit them partially filled.
  WindowAggOp(std::string label, properties::AggregateFunc func,
              xml::Path aggregated_element, properties::WindowSpec window,
              bool resume = false);

  size_t OpenWindowCount() const override;

 protected:
  Status Process(const ItemPtr& item) override;
  /// Record slots update the trackers straight from the compiled field
  /// lookups (no tree); opaque slots take the per-item path.
  Status ProcessBatch(ItemBatch* batch) override;
  Status OnFinish() override;

 private:
  struct WindowState {
    Decimal sum;
    int64_t count = 0;
    std::optional<Decimal> extremum;
  };

  Status EmitWindow(int64_t seq, const WindowState& window);
  void Accumulate(WindowState* window, const Decimal& value);
  Status ProcessRecord(const PhotonRecord& record);

  properties::AggregateFunc func_;
  xml::Path aggregated_element_;
  WindowTracker tracker_;
  std::map<int64_t, WindowState> open_;
  // Reference and aggregated element compiled against the photon schema
  // (paths are fixed at construction).
  int ref_node_ = -1;
  std::string ref_path_;
  int agg_node_ = -1;
  std::string agg_path_;
};

/// Emits the *contents* of each completed data window as one
/// <window><seq>i</seq> item... item... </window> element — the stream a
/// WXQuery without a let-aggregate but with a window produces. Such
/// streams are shareable only with an identical window specification
/// (§3.3's unknown-operator rule applies to them).
class WindowContentsOp : public Operator {
 public:
  WindowContentsOp(std::string label, properties::WindowSpec window,
                   bool resume = false);

  size_t OpenWindowCount() const override;

 protected:
  Status Process(const ItemPtr& item) override;
  Status OnFinish() override;

 private:
  Status EmitWindow(int64_t seq);

  WindowTracker tracker_;
  std::map<int64_t, std::vector<ItemPtr>> open_;
};

/// Recombines a fine-grained aggregate stream (window Δ, step µ) into a
/// coarser one (window Δ′ = k·Δ, step µ′ = m·µ), the Fig. 5 reuse. Fine
/// windows arrive as <wagg> items; coarse window j combines the
/// non-overlapping fine windows starting at j·µ′ + t·Δ for t < k.
/// Preconditions are MatchAggregations' divisibility rules.
class AggCombineOp : public Operator {
 public:
  AggCombineOp(std::string label, properties::AggregateFunc func,
               properties::WindowSpec fine, properties::WindowSpec coarse);

  size_t OpenWindowCount() const override;

 protected:
  Status Process(const ItemPtr& item) override;
  Status OnFinish() override;

 private:
  Status TryEmit();

  properties::AggregateFunc func_;
  // All in units of the fine step µ.
  int64_t fine_size_steps_;    // Δ / µ
  int64_t coarse_size_steps_;  // Δ′ / µ
  int64_t coarse_step_steps_;  // µ′ / µ
  std::map<int64_t, AggItem> buffer_;  // fine seq → item
  int64_t next_coarse_ = 0;
  int64_t first_fine_seen_ = -1;
  int64_t max_fine_seen_ = -1;
};

/// Filters an aggregate stream on the (finalized) aggregate value — the
/// paper's result filter (Q4's "where $a >= 1.3"). Predicates use
/// properties::AggregateValuePath() as their lhs.
class AggFilterOp : public Operator {
 public:
  AggFilterOp(std::string label, properties::AggregateFunc func,
              std::vector<predicate::AtomicPredicate> predicates)
      : Operator(std::move(label)),
        func_(func),
        predicates_(std::move(predicates)) {}

 protected:
  Status Process(const ItemPtr& item) override;

 private:
  properties::AggregateFunc func_;
  std::vector<predicate::AtomicPredicate> predicates_;
};

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_WINDOW_AGG_H_
