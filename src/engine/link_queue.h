// Bounded MPSC handoff between execution workers. Every operator-graph
// edge that crosses a peer partition (a LinkOp boundary in the deployed
// network) is serviced by the consumer worker's LinkQueue: producers block
// when the queue is full (backpressure, so a fast upstream peer cannot
// flood a slow one), and each producer ends its stream with one poison
// pill so the consumer knows when every input is drained.
//
// Entries carry whole ItemBatches, so a producer takes the lock and rings
// the consumer once per batch instead of once per item — the contended
// hot path the speedup bench's consumer-blocked time measures. Capacity
// and all depth counters are in *items*, not entries (a pill counts as
// one), so the configured bound means the same thing at any batch size; a
// batch is admitted whole once any space is free, overshooting capacity
// by at most one batch.
//
// Blocked time is counted on both sides; the speedup bench reports it so
// queue-capacity tuning is measurable rather than guessed.

#ifndef STREAMSHARE_ENGINE_LINK_QUEUE_H_
#define STREAMSHARE_ENGINE_LINK_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "engine/record.h"

namespace streamshare::obs {
class Histogram;
}  // namespace streamshare::obs

namespace streamshare::engine {

class Operator;

class LinkQueue {
 public:
  /// One handoff: deliver every item of `batch` to `target` on the
  /// consumer's thread. A null target is a poison pill — "this producer
  /// is done" (its batch is empty).
  struct Entry {
    Operator* target = nullptr;
    ItemBatch batch;
    /// latency::NowUs() when the entry was enqueued (0 with stamping
    /// off). PopBatch turns it into queue residency: credited to every
    /// stamped slot's queue_us and observed on the residency histogram.
    uint64_t enqueued_us = 0;
  };

  explicit LinkQueue(size_t capacity);

  /// Enqueues one entry, blocking while the queue is at capacity.
  void Push(Entry entry);
  /// Enqueues a whole batch of entries in order, blocking for space as
  /// needed. The vector is consumed (entries are moved out).
  void PushBatch(std::vector<Entry>* batch);

  /// Dequeues entries into `out` (appended) until at least one entry and
  /// at most ~`max_items` items have been taken, blocking while the queue
  /// is empty. The first entry is always taken whole regardless of size.
  void PopBatch(std::vector<Entry>* out, size_t max_items);

  size_t capacity() const { return capacity_; }
  /// Total items ever pushed (each pill counting as one).
  uint64_t pushed_count() const {
    return pushed_count_.load(std::memory_order_relaxed);
  }
  /// Nanoseconds producers spent blocked on a full queue.
  uint64_t producer_blocked_ns() const {
    return producer_blocked_ns_.load(std::memory_order_relaxed);
  }
  /// Nanoseconds the consumer spent blocked on an empty queue.
  uint64_t consumer_blocked_ns() const {
    return consumer_blocked_ns_.load(std::memory_order_relaxed);
  }
  /// High-water mark of the queued item count (pills included). Shows how
  /// close the queue came to its capacity, i.e. whether backpressure
  /// engaged.
  uint64_t max_depth() const {
    return max_depth_.load(std::memory_order_relaxed);
  }

  /// Zeroes every counter, max_depth included, so a queue that outlives
  /// one executor run reports per-run stats instead of all-time ones.
  /// Call only while no producer or consumer is active.
  void ResetStats();

  /// Installs a queue-residency histogram (µs per dequeued entry).
  /// Optional; null disables observation. The executor that owns the
  /// queue names it (e.g. engine.queue.worker.<i>.residency_us).
  void SetResidencyHistogram(obs::Histogram* histogram) {
    residency_us_ = histogram;
  }

 private:
  /// Item weight of one entry: a pill stands for one item.
  static size_t Weight(const Entry& entry) {
    return entry.target == nullptr ? 1 : entry.batch.size();
  }

  /// Called with mu_ held after every insertion.
  void NoteDepthLocked() {
    if (size_ > max_depth_.load(std::memory_order_relaxed))
      max_depth_.store(size_, std::memory_order_relaxed);
  }

  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Entry> entries_;
  size_t size_ = 0;  // queued items (guarded by mu_)
  std::atomic<uint64_t> pushed_count_{0};
  std::atomic<uint64_t> producer_blocked_ns_{0};
  std::atomic<uint64_t> consumer_blocked_ns_{0};
  std::atomic<uint64_t> max_depth_{0};
  obs::Histogram* residency_us_ = nullptr;
};

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_LINK_QUEUE_H_
