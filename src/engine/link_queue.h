// Bounded MPSC handoff between execution workers. Every operator-graph
// edge that crosses a peer partition (a LinkOp boundary in the deployed
// network) is serviced by the consumer worker's LinkQueue: producers block
// when the queue is full (backpressure, so a fast upstream peer cannot
// flood a slow one), and each producer ends its stream with one poison
// pill so the consumer knows when every input is drained.
//
// Blocked time is counted on both sides; the speedup bench reports it so
// queue-capacity tuning is measurable rather than guessed.

#ifndef STREAMSHARE_ENGINE_LINK_QUEUE_H_
#define STREAMSHARE_ENGINE_LINK_QUEUE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "engine/item.h"

namespace streamshare::engine {

class Operator;

class LinkQueue {
 public:
  /// One handoff: deliver `item` to `target` on the consumer's thread.
  /// A null target is a poison pill — "this producer is done".
  struct Entry {
    Operator* target = nullptr;
    ItemPtr item;
  };

  explicit LinkQueue(size_t capacity);

  /// Enqueues one entry, blocking while the queue is at capacity.
  void Push(Entry entry);
  /// Enqueues a whole batch in order, blocking for space as needed. The
  /// batch is consumed (entries are moved out).
  void PushBatch(std::vector<Entry>* batch);

  /// Dequeues at least one and at most `max_entries` entries into `out`
  /// (appended), blocking while the queue is empty.
  void PopBatch(std::vector<Entry>* out, size_t max_entries);

  size_t capacity() const { return capacity_; }
  /// Total entries ever pushed (pills included).
  uint64_t pushed_count() const {
    return pushed_count_.load(std::memory_order_relaxed);
  }
  /// Nanoseconds producers spent blocked on a full queue.
  uint64_t producer_blocked_ns() const {
    return producer_blocked_ns_.load(std::memory_order_relaxed);
  }
  /// Nanoseconds the consumer spent blocked on an empty queue.
  uint64_t consumer_blocked_ns() const {
    return consumer_blocked_ns_.load(std::memory_order_relaxed);
  }
  /// High-water mark of the queue depth (pills included). Shows how close
  /// the queue came to its capacity, i.e. whether backpressure engaged.
  uint64_t max_depth() const {
    return max_depth_.load(std::memory_order_relaxed);
  }

  /// Zeroes every counter, max_depth included, so a queue that outlives
  /// one executor run reports per-run stats instead of all-time ones.
  /// Call only while no producer or consumer is active.
  void ResetStats();

 private:
  /// Called with mu_ held after every insertion.
  void NoteDepthLocked() {
    uint64_t depth = entries_.size();
    if (depth > max_depth_.load(std::memory_order_relaxed))
      max_depth_.store(depth, std::memory_order_relaxed);
  }

  const size_t capacity_;
  std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<Entry> entries_;
  std::atomic<uint64_t> pushed_count_{0};
  std::atomic<uint64_t> producer_blocked_ns_{0};
  std::atomic<uint64_t> consumer_blocked_ns_{0};
  std::atomic<uint64_t> max_depth_{0};
};

}  // namespace streamshare::engine

#endif  // STREAMSHARE_ENGINE_LINK_QUEUE_H_
