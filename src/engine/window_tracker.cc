#include "engine/window_tracker.h"

#include <algorithm>

namespace streamshare::engine {

namespace {

/// floor(a / b) for positive b, exact over decimals.
int64_t FloorDiv(const Decimal& a, const Decimal& b) {
  int scale = std::max(a.scale(), b.scale());
  int64_t numer = a.Rescaled(scale).unscaled();
  int64_t denom = b.Rescaled(scale).unscaled();
  int64_t quotient = numer / denom;
  if (numer % denom != 0 && (numer < 0) != (denom < 0)) --quotient;
  return quotient;
}

Decimal TimesInt(const Decimal& step, int64_t i) {
  return Decimal(step.unscaled() * i, step.scale());
}

}  // namespace

Result<WindowTracker::Update> WindowTracker::OnPosition(
    const Decimal& position) {
  if (window_.type == properties::WindowType::kDiff) {
    if (items_seen_ > 0 && position < last_position_) {
      return Status::InvalidArgument(
          "input stream is not sorted by reference element '" +
          window_.reference.ToString() + "'");
    }
    last_position_ = position;
  }
  ++items_seen_;

  if (!anchored_) {
    anchored_ = true;
    // Default: the first window still open at the position (fast-forward
    // past windows that ended before the stream began). Resume: the
    // first window *starting* at or after it — windows already underway
    // at the resume point would be partial, so they never open.
    int64_t first_alive =
        resume_ ? -FloorDiv(Decimal::FromInt(0) - position, window_.step)
                : FloorDiv(position - window_.size, window_.step) + 1;
    next_seq_ = std::max<int64_t>(0, first_alive);
  }

  Update update;
  // Close every window whose end i·µ + Δ lies at or before the position.
  while (!open_.empty()) {
    Decimal end = TimesInt(window_.step, open_.front()) + window_.size;
    if (end <= position) {
      update.closed.push_back(open_.front());
      open_.pop_front();
    } else {
      break;
    }
  }
  // Open every window whose start i·µ has been reached; windows that
  // would already be over close immediately (empty).
  while (TimesInt(window_.step, next_seq_) <= position) {
    Decimal end = TimesInt(window_.step, next_seq_) + window_.size;
    if (end <= position) {
      update.closed.push_back(next_seq_);
    } else {
      open_.push_back(next_seq_);
    }
    ++next_seq_;
  }
  // All open windows start at or before the position; with sampling steps
  // (µ > Δ) the item may fall between windows, covered by the end check.
  for (int64_t seq : open_) {
    Decimal end = TimesInt(window_.step, seq) + window_.size;
    if (position < end) update.contains.push_back(seq);
  }
  return update;
}

std::vector<int64_t> WindowTracker::Flush() {
  std::vector<int64_t> remaining(open_.begin(), open_.end());
  open_.clear();
  return remaining;
}

}  // namespace streamshare::engine
