#include "engine/local_query.h"

#include "engine/executor.h"
#include "engine/restructure.h"
#include "engine/window_agg.h"
#include "xml/xml_parser.h"
#include "xml/xml_writer.h"

namespace streamshare::engine {

std::string LocalQueryResult::ToDocument() const {
  std::string tag = wrapper_tag.empty() ? "result" : wrapper_tag;
  std::string out = "<" + tag + ">";
  for (const ItemPtr& item : items) {
    out += xml::WriteCompact(*item);
  }
  out += "</" + tag + ">";
  return out;
}

Result<LocalQueryResult> RunLocalQuery(const wxquery::AnalyzedQuery& query,
                                       const std::vector<ItemPtr>& items) {
  if (query.bindings.size() != 1) {
    return Status::Unsupported(
        "local evaluation supports single-input queries");
  }
  const wxquery::StreamBinding& binding = query.bindings.front();

  // Wire the canonical chain: σ → (window | window-agg + filter)? →
  // restructure → sink. Local evaluation needs no projection — nothing is
  // transmitted.
  OperatorGraph graph;
  Operator* entry = graph.Add<PassOp>("local:entry");
  Operator* current = entry;
  if (!binding.item_predicates.empty()) {
    Operator* select =
        graph.Add<SelectOp>("local:select", binding.item_predicates);
    current->AddDownstream(select);
    current = select;
  }
  if (binding.aggregate.has_value()) {
    Operator* agg = graph.Add<WindowAggOp>(
        "local:agg", binding.aggregate->func, binding.aggregate->path,
        *binding.window);
    current->AddDownstream(agg);
    current = agg;
    if (!binding.result_filter.empty()) {
      Operator* filter = graph.Add<AggFilterOp>(
          "local:filter", binding.aggregate->func, binding.result_filter);
      current->AddDownstream(filter);
      current = filter;
    }
  } else if (binding.window.has_value()) {
    Operator* contents =
        graph.Add<WindowContentsOp>("local:window", *binding.window);
    current->AddDownstream(contents);
    current = contents;
  }
  // RestructureOp holds a shared_ptr; alias the caller's query without
  // ownership (it outlives `graph`, which dies at the end of this call).
  std::shared_ptr<const wxquery::AnalyzedQuery> alias(
      std::shared_ptr<const wxquery::AnalyzedQuery>(), &query);
  Operator* restructure =
      graph.Add<RestructureOp>("local:restructure", alias);
  current->AddDownstream(restructure);
  auto* sink = graph.Add<SinkOp>("local:sink", /*keep_items=*/true);
  restructure->AddDownstream(sink);

  SS_RETURN_IF_ERROR(RunStream(entry, items));

  LocalQueryResult result;
  result.wrapper_tag = query.wrapper_tag;
  result.items = sink->items();
  return result;
}

Result<LocalQueryResult> RunLocalQuery(std::string_view query_text,
                                       std::string_view xml_document) {
  SS_ASSIGN_OR_RETURN(wxquery::AnalyzedQuery query,
                      wxquery::ParseAndAnalyze(query_text));
  if (query.bindings.size() != 1) {
    return Status::Unsupported(
        "local evaluation supports single-input queries");
  }
  xml::XmlItemReader reader(xml_document);
  std::vector<ItemPtr> items;
  while (true) {
    SS_ASSIGN_OR_RETURN(std::unique_ptr<xml::XmlNode> item,
                        reader.NextItem());
    if (item == nullptr) break;
    items.push_back(MakeItem(std::move(item)));
  }
  if (!reader.AtEnd()) {
    return Status::ParseError("incomplete stream document");
  }
  if (reader.stream_name() != query.bindings.front().stream_root) {
    return Status::InvalidArgument(
        "document root <" + reader.stream_name() +
        "> does not match the query's stream root element <" +
        query.bindings.front().stream_root + ">");
  }
  return RunLocalQuery(query, items);
}

}  // namespace streamshare::engine
