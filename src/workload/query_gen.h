// Template-based continuous query generation (§4): "queries were generated
// using query templates for selection, projection, and aggregation
// queries. Constant values ... were chosen uniformly from a predefined set
// of values to enable a certain degree of shareability." Three templates:
//
//   * selection+projection — a sky box (optionally narrowed), an optional
//     energy threshold, and one of several projection subsets;
//   * contained selection  — a sub-box of a predefined box (guaranteed
//     containment, like Q2 inside Q1);
//   * window aggregation   — a sky box pre-selection, a time window from a
//     predefined (Δ, µ) set, one aggregate function over en, and an
//     optional result filter.

#ifndef STREAMSHARE_WORKLOAD_QUERY_GEN_H_
#define STREAMSHARE_WORKLOAD_QUERY_GEN_H_

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "workload/photon_gen.h"

namespace streamshare::workload {

struct QueryGenConfig {
  uint64_t seed = 7;
  std::string stream_name = "photons";
  /// Predefined sky boxes (selection predicates draw from these).
  std::vector<SkyBox> boxes;
  /// Predefined energy thresholds for "en >= t" predicates.
  std::vector<double> energy_thresholds;
  /// Predefined time windows (Δ, µ) on det_time; pairs are chosen so that
  /// coarser windows are recombinable from finer ones.
  std::vector<std::pair<int, int>> windows;
  /// Contained-selection sub-boxes: number of discrete shrink fractions
  /// per box side. 0 keeps the historical continuous draw (every query a
  /// distinct box); N > 0 draws each side's shrink from N predefined
  /// steps, bounding the distinct-predicate pool the way the paper's
  /// evaluation does ("chosen uniformly from a predefined set of values
  /// to enable a certain degree of shareability", §4) — the regime the
  /// registration-scaling bench measures index behaviour in.
  int shrink_steps = 0;
  /// Template mix (normalized internally). The paper's evaluation uses
  /// "query templates for selection, projection, and aggregation
  /// queries"; contained-selection queries add the Q1/Q2 containment
  /// pattern of the running example.
  double selection_weight = 0.40;
  double projection_weight = 0.10;
  double contained_weight = 0.22;
  double aggregation_weight = 0.28;

  /// A default configuration seeded with the paper's vela / RX J0852
  /// boxes plus neighbours, thresholds, and Fig.-5-compatible windows.
  static QueryGenConfig Default(uint64_t seed = 7,
                                std::string stream_name = "photons");
};

class QueryGenerator {
 public:
  explicit QueryGenerator(QueryGenConfig config);

  /// Generates the next subscription text.
  std::string Next();

  /// Generates `count` subscriptions.
  std::vector<std::string> Generate(size_t count);

 private:
  std::string SelectionQuery();
  std::string ProjectionQuery();
  std::string ContainedSelectionQuery();
  std::string AggregationQuery();

  QueryGenConfig config_;
  std::mt19937_64 rng_;
};

}  // namespace streamshare::workload

#endif  // STREAMSHARE_WORKLOAD_QUERY_GEN_H_
