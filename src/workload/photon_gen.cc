#include "workload/photon_gen.h"

#include <cmath>
#include <cstdio>

namespace streamshare::workload {

namespace {

std::string FormatFixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

void SetDecimalField(engine::PhotonRecord* record, int field,
                     const std::string& text) {
  record->SetField(field, text, *Decimal::Parse(text));
}

}  // namespace

PhotonGenerator::PhotonGenerator(PhotonGenConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

engine::PhotonRecord PhotonGenerator::NextRecord() {
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  // Pick a region: hot regions by weight, otherwise the whole sky.
  double total_weight = config_.base_weight;
  for (double weight : config_.hot_weights) total_weight += weight;
  double pick = unit(rng_) * total_weight;
  SkyBox box;  // whole sky by default
  for (size_t i = 0; i < config_.hot_regions.size(); ++i) {
    double weight =
        i < config_.hot_weights.size() ? config_.hot_weights[i] : 1.0;
    if (pick < weight) {
      box = config_.hot_regions[i];
      break;
    }
    pick -= weight;
  }

  double ra = box.ra_min + unit(rng_) * (box.ra_max - box.ra_min);
  double dec = box.dec_min + unit(rng_) * (box.dec_max - box.dec_min);
  double en =
      config_.en_min + unit(rng_) * (config_.en_max - config_.en_min);
  std::exponential_distribution<double> increment(
      1.0 / config_.det_time_increment_mean);
  det_time_ += std::max(0.1, increment(rng_));
  std::uniform_int_distribution<int> phc_dist(0, 255);
  std::uniform_int_distribution<int> det_pixel(0, 511);

  engine::PhotonRecord record;
  SetDecimalField(&record, engine::PhotonSchema::kFieldPhc,
                  std::to_string(phc_dist(rng_)));
  SetDecimalField(&record, engine::PhotonSchema::kFieldRa,
                  FormatFixed(ra, 4));
  SetDecimalField(&record, engine::PhotonSchema::kFieldDec,
                  FormatFixed(dec, 4));
  SetDecimalField(&record, engine::PhotonSchema::kFieldDx,
                  std::to_string(det_pixel(rng_)));
  SetDecimalField(&record, engine::PhotonSchema::kFieldDy,
                  std::to_string(det_pixel(rng_)));
  SetDecimalField(&record, engine::PhotonSchema::kFieldEn,
                  FormatFixed(en, 3));
  SetDecimalField(&record, engine::PhotonSchema::kFieldDetTime,
                  FormatFixed(det_time_, 1));
  return record;
}

engine::ItemPtr PhotonGenerator::Next() {
  return engine::MakeItem(NextRecord().MaterializeXml());
}

std::vector<engine::ItemPtr> PhotonGenerator::Generate(size_t count) {
  std::vector<engine::ItemPtr> items;
  items.reserve(count);
  for (size_t i = 0; i < count; ++i) items.push_back(Next());
  return items;
}

std::vector<engine::ItemBatch> PhotonGenerator::GenerateBatches(
    size_t count, size_t batch_size) {
  if (batch_size == 0) batch_size = 1;
  std::vector<engine::ItemBatch> batches;
  batches.reserve((count + batch_size - 1) / batch_size);
  for (size_t i = 0; i < count; ++i) {
    if (i % batch_size == 0) {
      batches.emplace_back();
      batches.back().reserve(std::min(batch_size, count - i));
    }
    batches.back().AppendRecord(NextRecord());
  }
  return batches;
}

std::shared_ptr<const xml::StreamSchema> PhotonGenerator::Schema() {
  auto schema = std::make_shared<xml::StreamSchema>("photons", "photon");
  xml::SchemaElement& photon = schema->item();
  photon.AddChild("phc", 1.0, 3.0);
  xml::SchemaElement* coord = photon.AddChild("coord");
  xml::SchemaElement* cel = coord->AddChild("cel");
  cel->AddChild("ra", 1.0, 8.0);
  cel->AddChild("dec", 1.0, 8.0);
  xml::SchemaElement* det = coord->AddChild("det");
  det->AddChild("dx", 1.0, 3.0);
  det->AddChild("dy", 1.0, 3.0);
  photon.AddChild("en", 1.0, 5.0);
  photon.AddChild("det_time", 1.0, 8.0);
  return schema;
}

}  // namespace streamshare::workload
