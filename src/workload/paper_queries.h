// The four example subscriptions of the paper (§1 and §2), verbatim. Q1
// selects the vela supernova remnant region, Q2 a contained sub-region
// (RX J0852.0-4622) with an energy threshold, Q3 computes a sliding-window
// average energy over the vela region, and Q4 a coarser, filtered variant
// whose windows are recombinable from Q3's (Fig. 5).

#ifndef STREAMSHARE_WORKLOAD_PAPER_QUERIES_H_
#define STREAMSHARE_WORKLOAD_PAPER_QUERIES_H_

namespace streamshare::workload {

inline constexpr const char* kQuery1 = R"(
<photons>
{ for $p in stream("photons")/photons/photon
  where $p/coord/cel/ra >= 120.0 and $p/coord/cel/ra <= 138.0
    and $p/coord/cel/dec >= -49.0 and $p/coord/cel/dec <= -40.0
  return <vela> { $p/coord/cel/ra } { $p/coord/cel/dec }
         { $p/phc } { $p/en } { $p/det_time } </vela> }
</photons>
)";

inline constexpr const char* kQuery2 = R"(
<photons>
{ for $p in stream("photons")/photons/photon
  where $p/en >= 1.3
    and $p/coord/cel/ra >= 130.5 and $p/coord/cel/ra <= 135.5
    and $p/coord/cel/dec >= -48.0 and $p/coord/cel/dec <= -45.0
  return <rxj> { $p/coord/cel/ra } { $p/coord/cel/dec }
         { $p/en } { $p/det_time } </rxj> }
</photons>
)";

inline constexpr const char* kQuery3 = R"(
<photons>
{ for $w in stream("photons")/photons/photon
    [coord/cel/ra >= 120.0 and coord/cel/ra <= 138.0
     and coord/cel/dec >= -49.0 and coord/cel/dec <= -40.0]
    |det_time diff 20 step 10|
  let $a := avg($w/en)
  return <avg_en> { $a } </avg_en> }
</photons>
)";

inline constexpr const char* kQuery4 = R"(
<photons>
{ for $w in stream("photons")/photons/photon
    [coord/cel/ra >= 120.0 and coord/cel/ra <= 138.0
     and coord/cel/dec >= -49.0 and coord/cel/dec <= -40.0]
    |det_time diff 60 step 40|
  let $a := avg($w/en)
  where $a >= 1.3
  return <avg_en> { $a } </avg_en> }
</photons>
)";

}  // namespace streamshare::workload

#endif  // STREAMSHARE_WORKLOAD_PAPER_QUERIES_H_
