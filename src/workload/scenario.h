// The paper's two evaluation scenarios (§4), as reproducible specs:
//
//   Scenario 1 — "extended example": the 8-super-peer topology of Figs.
//   1/2, one photon stream at SP4, 25 queries (the paper's Q1–Q4 first,
//   then template-generated ones) registered at the super-peers the
//   example's thin peers attach to.
//
//   Scenario 2 — "4×4 grid": 16 super-peers, two photon streams at
//   opposite corners, 100 template-generated queries at uniformly chosen
//   super-peers.

#ifndef STREAMSHARE_WORKLOAD_SCENARIO_H_
#define STREAMSHARE_WORKLOAD_SCENARIO_H_

#include <memory>
#include <string>
#include <vector>

#include "sharing/system.h"
#include "workload/photon_gen.h"
#include "workload/query_gen.h"

namespace streamshare::workload {

struct StreamSpec {
  std::string name;
  network::NodeId source = 0;
  PhotonGenConfig gen;
};

struct QuerySpec {
  std::string text;
  network::NodeId target = 0;
};

struct ScenarioSpec {
  std::string name;
  network::Topology topology;
  std::vector<StreamSpec> streams;
  std::vector<QuerySpec> queries;
};

/// Default capacity parameters: chosen so that the default scenarios sit
/// comfortably below saturation (the paper's blades and 100 Mbit LAN do
/// too), while the E6 overload experiment caps them at 10% / 1 Mbit/s.
inline constexpr double kDefaultBandwidthKbps = 100000.0;  // 100 Mbit/s
inline constexpr double kDefaultMaxLoad = 5000.0;          // work units/s

/// Scenario 1. `query_count` defaults to the paper's 25.
ScenarioSpec ExtendedExampleScenario(uint64_t seed = 11,
                                     size_t query_count = 25);

/// Scenario 2. 4×4 grid, 2 streams, `query_count` defaults to 100.
/// Bandwidth/load caps are parameters so the overload experiment (E6) can
/// shrink them.
ScenarioSpec GridScenario(uint64_t seed = 13, size_t query_count = 100,
                          double bandwidth_kbps = kDefaultBandwidthKbps,
                          double max_load = kDefaultMaxLoad);

/// Registers the scenario's streams (with schema, frequency, value-range
/// and increment statistics) in a freshly constructed system.
Result<std::unique_ptr<sharing::StreamShareSystem>> BuildSystem(
    const ScenarioSpec& scenario, sharing::SystemConfig config);

struct ScenarioRun {
  std::unique_ptr<sharing::StreamShareSystem> system;
  /// Simulated stream duration in seconds (items / frequency).
  double duration_s = 0.0;
  int accepted = 0;
  int rejected = 0;
  int registration_failures = 0;  // parse/analysis errors (should be 0)
};

/// One mid-run failure injected into RunScenario: after `at_offset` items
/// per stream, FailPeer (kFailPeer) or CutLink (kCutLink) fires and the
/// remaining items keep flowing through the re-planned deployment. The
/// recovery reports land in system->recovery_reports().
struct ChurnEvent {
  enum class Kind { kFailPeer, kCutLink };

  Kind kind = Kind::kFailPeer;
  network::NodeId peer = 0;             // kFailPeer
  network::NodeId link_a = 0, link_b = 0;  // kCutLink
  size_t at_offset = 0;
};

/// Builds the system, registers all queries under `strategy`, generates
/// `items_per_stream` photons per stream, and runs them through the
/// deployed network. With `churn` events (sorted by offset) the items are
/// fed in segments with each failure applied at its offset; churn is
/// incompatible with transport_processes (per-segment Feed needs window
/// state in one address space).
Result<ScenarioRun> RunScenario(const ScenarioSpec& scenario,
                                sharing::Strategy strategy,
                                sharing::SystemConfig config,
                                size_t items_per_stream,
                                const std::vector<ChurnEvent>& churn = {});

}  // namespace streamshare::workload

#endif  // STREAMSHARE_WORKLOAD_SCENARIO_H_
