// Synthetic ROSAT All-Sky Survey photon stream. The paper evaluates on
// real RASS data obtained from MPE; this generator substitutes a synthetic
// stream with the same DTD —
//
//   photon { phc, coord { cel { ra, dec }, det { dx, dy } }, en, det_time }
//
// and controllable characteristics: uniform sky positions with optional
// hot regions (supernova remnants are bright, so selections on their boxes
// see elevated selectivity), energies in the ROSAT band, and a
// monotonically increasing detection time with configurable mean
// increment. The sharing algorithms only see schema, frequencies, value
// ranges and selectivities, all of which this generator reproduces.

#ifndef STREAMSHARE_WORKLOAD_PHOTON_GEN_H_
#define STREAMSHARE_WORKLOAD_PHOTON_GEN_H_

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "engine/item.h"
#include "engine/record.h"
#include "xml/schema.h"

namespace streamshare::workload {

struct SkyBox {
  double ra_min = 0.0;
  double ra_max = 360.0;
  double dec_min = -90.0;
  double dec_max = 90.0;
};

struct PhotonGenConfig {
  uint64_t seed = 42;
  /// Weighted hot regions; a photon falls into region i with probability
  /// weight_i / (Σ weights + base_weight), otherwise anywhere in the sky.
  std::vector<SkyBox> hot_regions;
  std::vector<double> hot_weights;
  double base_weight = 4.0;
  /// ROSAT PSPC energy band, keV.
  double en_min = 0.1;
  double en_max = 2.4;
  /// det_time advances by an exponentially distributed increment with
  /// this mean per photon.
  double det_time_increment_mean = 0.5;
  /// Stream item frequency (items/s) used for statistics.
  double frequency_hz = 100.0;
};

class PhotonGenerator {
 public:
  explicit PhotonGenerator(PhotonGenConfig config);

  /// Generates the next photon as a compact record (det_time strictly
  /// increasing) — no DOM tree is built.
  engine::PhotonRecord NextRecord();

  /// Generates the next photon item: the materialized tree of
  /// NextRecord(), for consumers that need a DOM.
  engine::ItemPtr Next();

  /// Generates `count` photons.
  std::vector<engine::ItemPtr> Generate(size_t count);

  /// Generates `count` photons straight into record batches of
  /// `batch_size` (the allocation-free feed for batched runs).
  std::vector<engine::ItemBatch> GenerateBatches(size_t count,
                                                 size_t batch_size);

  const PhotonGenConfig& config() const { return config_; }

  /// The photon stream schema with occurrence and average-size statistics
  /// matching this generator's output.
  static std::shared_ptr<const xml::StreamSchema> Schema();

 private:
  PhotonGenConfig config_;
  std::mt19937_64 rng_;
  double det_time_ = 0.0;
};

}  // namespace streamshare::workload

#endif  // STREAMSHARE_WORKLOAD_PHOTON_GEN_H_
