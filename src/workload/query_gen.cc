#include "workload/query_gen.h"

#include <cstdio>

namespace streamshare::workload {

namespace {

std::string FormatFixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

std::string BoxPredicate(const SkyBox& box, const std::string& var) {
  std::string prefix = var.empty() ? "" : "$" + var + "/";
  return prefix + "coord/cel/ra >= " + FormatFixed(box.ra_min, 1) +
         " and " + prefix + "coord/cel/ra <= " + FormatFixed(box.ra_max, 1) +
         " and " + prefix + "coord/cel/dec >= " +
         FormatFixed(box.dec_min, 1) + " and " + prefix +
         "coord/cel/dec <= " + FormatFixed(box.dec_max, 1);
}

// Projection subsets: every subset includes the elements selections
// reference (ra/dec); they differ in the payload carried along.
const char* const kProjectionSubsets[][6] = {
    {"coord/cel/ra", "coord/cel/dec", "phc", "en", "det_time", nullptr},
    {"coord/cel/ra", "coord/cel/dec", "en", "det_time", nullptr, nullptr},
    {"coord/cel/ra", "coord/cel/dec", "en", nullptr, nullptr, nullptr},
    {"coord/cel/ra", "coord/cel/dec", "det_time", nullptr, nullptr,
     nullptr},
};
constexpr size_t kProjectionSubsetCount =
    sizeof(kProjectionSubsets) / sizeof(kProjectionSubsets[0]);

const char* const kAggFuncs[] = {"avg", "sum", "count", "min", "max"};

}  // namespace

QueryGenConfig QueryGenConfig::Default(uint64_t seed,
                                       std::string stream_name) {
  QueryGenConfig config;
  config.seed = seed;
  config.stream_name = std::move(stream_name);
  // The paper's vela box, its RX J0852 sub-box, and neighbouring survey
  // fields. Repeats across queries are what create sharing opportunities.
  config.boxes = {
      {120.0, 138.0, -49.0, -40.0},  // vela (Q1)
      {130.5, 135.5, -48.0, -45.0},  // RX J0852.0-4622 (Q2)
      {80.0, 95.0, -72.0, -64.0},    // LMC field
      {160.0, 180.0, -60.0, -50.0},  // Carina field
      {120.0, 138.0, -49.0, -40.0},  // vela again (higher draw weight)
  };
  config.energy_thresholds = {0.5, 1.0, 1.3};
  // (Δ, µ) pairs chosen so each coarser pair is recombinable from the
  // finest (Fig. 5): Δ′ mod Δ = 0, Δ mod µ = 0, µ′ mod µ = 0.
  config.windows = {{20, 10}, {40, 20}, {60, 40}, {80, 40}};
  return config;
}

QueryGenerator::QueryGenerator(QueryGenConfig config)
    : config_(std::move(config)), rng_(config_.seed) {}

std::string QueryGenerator::Next() {
  double total = config_.selection_weight + config_.projection_weight +
                 config_.contained_weight + config_.aggregation_weight;
  std::uniform_real_distribution<double> unit(0.0, total);
  double pick = unit(rng_);
  if (pick < config_.selection_weight) return SelectionQuery();
  pick -= config_.selection_weight;
  if (pick < config_.projection_weight) return ProjectionQuery();
  pick -= config_.projection_weight;
  if (pick < config_.contained_weight) return ContainedSelectionQuery();
  return AggregationQuery();
}

std::vector<std::string> QueryGenerator::Generate(size_t count) {
  std::vector<std::string> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(Next());
  return out;
}

std::string QueryGenerator::SelectionQuery() {
  std::uniform_int_distribution<size_t> box_dist(0,
                                                 config_.boxes.size() - 1);
  const SkyBox& box = config_.boxes[box_dist(rng_)];
  std::uniform_int_distribution<size_t> subset_dist(
      0, kProjectionSubsetCount - 1);
  const char* const* subset = kProjectionSubsets[subset_dist(rng_)];
  std::uniform_int_distribution<int> coin(0, 1);

  std::string where = BoxPredicate(box, "p");
  if (coin(rng_) != 0 && !config_.energy_thresholds.empty()) {
    std::uniform_int_distribution<size_t> threshold_dist(
        0, config_.energy_thresholds.size() - 1);
    where += " and $p/en >= " +
             FormatFixed(config_.energy_thresholds[threshold_dist(rng_)], 1);
  }
  std::string returns;
  for (const char* const* path = subset; *path != nullptr; ++path) {
    returns += " { $p/";
    returns += *path;
    returns += " }";
  }
  return "<photons> { for $p in stream(\"" + config_.stream_name +
         "\")/photons/photon where " + where + " return <hit>" + returns +
         " </hit> } </photons>";
}

std::string QueryGenerator::ProjectionQuery() {
  // Pure projection: no predicate — the whole stream thinned to one of
  // the predefined element subsets.
  std::uniform_int_distribution<size_t> subset_dist(
      0, kProjectionSubsetCount - 1);
  const char* const* subset = kProjectionSubsets[subset_dist(rng_)];
  std::string returns;
  for (const char* const* path = subset; *path != nullptr; ++path) {
    returns += " { $p/";
    returns += *path;
    returns += " }";
  }
  return "<photons> { for $p in stream(\"" + config_.stream_name +
         "\")/photons/photon return <slim>" + returns +
         " </slim> } </photons>";
}

std::string QueryGenerator::ContainedSelectionQuery() {
  std::uniform_int_distribution<size_t> box_dist(0,
                                                 config_.boxes.size() - 1);
  SkyBox box = config_.boxes[box_dist(rng_)];
  // Shrink the box by a random fraction on each side (stays contained in
  // the predefined box, so a stream filtered by the outer box can serve).
  // With shrink_steps set, fractions come from a predefined discrete set.
  auto shrink = [this]() {
    if (config_.shrink_steps > 0) {
      std::uniform_int_distribution<int> step(0, config_.shrink_steps - 1);
      return 0.3 * step(rng_) / config_.shrink_steps;
    }
    std::uniform_real_distribution<double> fraction(0.0, 0.3);
    return fraction(rng_);
  };
  double ra_span = box.ra_max - box.ra_min;
  double dec_span = box.dec_max - box.dec_min;
  box.ra_min += shrink() * ra_span;
  box.ra_max -= shrink() * ra_span;
  box.dec_min += shrink() * dec_span;
  box.dec_max -= shrink() * dec_span;
  std::string where = BoxPredicate(box, "p");
  return "<photons> { for $p in stream(\"" + config_.stream_name +
         "\")/photons/photon where " + where +
         " return <hit> { $p/coord/cel/ra } { $p/coord/cel/dec } "
         "{ $p/en } </hit> } </photons>";
}

std::string QueryGenerator::AggregationQuery() {
  std::uniform_int_distribution<size_t> box_dist(0,
                                                 config_.boxes.size() - 1);
  const SkyBox& box = config_.boxes[box_dist(rng_)];
  std::uniform_int_distribution<size_t> window_dist(
      0, config_.windows.size() - 1);
  auto [size, step] = config_.windows[window_dist(rng_)];
  std::uniform_int_distribution<size_t> func_dist(
      0, sizeof(kAggFuncs) / sizeof(kAggFuncs[0]) - 1);
  const char* func = kAggFuncs[func_dist(rng_)];
  std::uniform_int_distribution<int> coin(0, 3);

  std::string query = "<photons> { for $w in stream(\"" +
                      config_.stream_name + "\")/photons/photon [" +
                      BoxPredicate(box, "") + "] |det_time diff " +
                      std::to_string(size) + " step " +
                      std::to_string(step) + "| let $a := " + func +
                      "($w/en)";
  if (coin(rng_) == 0 && std::string(func) == "avg" &&
      !config_.energy_thresholds.empty()) {
    std::uniform_int_distribution<size_t> threshold_dist(
        0, config_.energy_thresholds.size() - 1);
    query += " where $a >= " +
             FormatFixed(config_.energy_thresholds[threshold_dist(rng_)], 1);
  }
  query += " return <agg_en> { $a } </agg_en> } </photons>";
  return query;
}

}  // namespace streamshare::workload
