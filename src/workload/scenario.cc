#include "workload/scenario.h"

#include <algorithm>
#include <random>

#include "workload/paper_queries.h"

namespace streamshare::workload {

namespace {

PhotonGenConfig DefaultPhotonConfig(uint64_t seed) {
  PhotonGenConfig config;
  config.seed = seed;
  // The vela region and its neighbourhood are bright: selections on the
  // predefined boxes see a workload-relevant selectivity instead of the
  // vanishing fraction a uniform sky would give them.
  config.hot_regions = {
      {120.0, 138.0, -49.0, -40.0},  // vela
      {130.5, 135.5, -48.0, -45.0},  // RX J0852
      {80.0, 95.0, -72.0, -64.0},    // LMC
      {160.0, 180.0, -60.0, -50.0},  // Carina
  };
  config.hot_weights = {1.5, 0.5, 0.5, 0.5};
  config.base_weight = 4.0;
  return config;
}

Status InstallStatistics(sharing::StreamShareSystem* system,
                         const StreamSpec& stream) {
  auto path = [](const char* text) {
    return xml::Path::Parse(text).value();
  };
  SS_RETURN_IF_ERROR(system->SetRange(stream.name, path("coord/cel/ra"),
                                      {0.0, 360.0}));
  SS_RETURN_IF_ERROR(system->SetRange(stream.name, path("coord/cel/dec"),
                                      {-90.0, 90.0}));
  SS_RETURN_IF_ERROR(system->SetRange(
      stream.name, path("en"), {stream.gen.en_min, stream.gen.en_max}));
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("phc"), {0.0, 255.0}));
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("coord/det/dx"), {0.0, 511.0}));
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("coord/det/dy"), {0.0, 511.0}));
  // det_time spans the whole run; its range only matters for selections on
  // it (none in the templates), but its increment drives time-window
  // frequency estimation.
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("det_time"), {0.0, 1e9}));
  return system->SetAvgIncrement(stream.name, path("det_time"),
                                 stream.gen.det_time_increment_mean);
}

}  // namespace

ScenarioSpec ExtendedExampleScenario(uint64_t seed, size_t query_count) {
  ScenarioSpec scenario;
  scenario.name = "extended-example";
  scenario.topology = network::Topology::ExtendedExample(
      kDefaultBandwidthKbps, kDefaultMaxLoad);

  StreamSpec stream;
  stream.name = "photons";
  stream.source = 4;  // P0's super-peer
  stream.gen = DefaultPhotonConfig(seed);
  scenario.streams.push_back(std::move(stream));

  // The paper's four example queries at the super-peers their thin peers
  // attach to (P1@SP1, P2@SP7, P3@SP3, P4@SP0).
  scenario.queries.push_back({kQuery1, 1});
  scenario.queries.push_back({kQuery2, 7});
  scenario.queries.push_back({kQuery3, 3});
  scenario.queries.push_back({kQuery4, 0});

  QueryGenerator generator(QueryGenConfig::Default(seed + 1, "photons"));
  // Astronomer peers attach across the backbone; the source super-peer
  // itself registers no queries.
  const network::NodeId targets[] = {1, 7, 3, 0, 5, 2, 6};
  size_t target_index = 0;
  while (scenario.queries.size() < query_count) {
    scenario.queries.push_back(
        {generator.Next(),
         targets[target_index++ % (sizeof(targets) / sizeof(targets[0]))]});
  }
  return scenario;
}

ScenarioSpec GridScenario(uint64_t seed, size_t query_count,
                          double bandwidth_kbps, double max_load) {
  ScenarioSpec scenario;
  scenario.name = "grid-4x4";
  scenario.topology =
      network::Topology::Grid(4, 4, bandwidth_kbps, max_load);

  StreamSpec first;
  first.name = "photons";
  first.source = 0;
  first.gen = DefaultPhotonConfig(seed);
  scenario.streams.push_back(std::move(first));

  StreamSpec second;
  second.name = "photons2";
  second.source = 15;  // opposite corner
  second.gen = DefaultPhotonConfig(seed + 100);
  scenario.streams.push_back(std::move(second));

  QueryGenerator gen_first(QueryGenConfig::Default(seed + 1, "photons"));
  QueryGenerator gen_second(QueryGenConfig::Default(seed + 2, "photons2"));
  std::mt19937_64 rng(seed + 3);
  std::uniform_int_distribution<int> target_dist(0, 15);
  std::uniform_int_distribution<int> stream_dist(0, 1);
  for (size_t i = 0; i < query_count; ++i) {
    std::string text =
        stream_dist(rng) == 0 ? gen_first.Next() : gen_second.Next();
    scenario.queries.push_back({std::move(text), target_dist(rng)});
  }
  return scenario;
}

Result<std::unique_ptr<sharing::StreamShareSystem>> BuildSystem(
    const ScenarioSpec& scenario, sharing::SystemConfig config) {
  auto system = std::make_unique<sharing::StreamShareSystem>(
      scenario.topology, config);
  for (const StreamSpec& stream : scenario.streams) {
    SS_RETURN_IF_ERROR(system->RegisterStream(
        stream.name, PhotonGenerator::Schema(), stream.gen.frequency_hz,
        stream.source));
    SS_RETURN_IF_ERROR(InstallStatistics(system.get(), stream));
  }
  return system;
}

namespace {

/// Per-stream sub-batches [from, to) of the full item lists.
std::map<std::string, std::vector<engine::ItemPtr>> SliceItems(
    const std::map<std::string, std::vector<engine::ItemPtr>>& items,
    size_t from, size_t to) {
  std::map<std::string, std::vector<engine::ItemPtr>> slice;
  for (const auto& [name, list] : items) {
    size_t hi = std::min(to, list.size());
    size_t lo = std::min(from, hi);
    slice[name].assign(list.begin() + lo, list.begin() + hi);
  }
  return slice;
}

}  // namespace

Result<ScenarioRun> RunScenario(const ScenarioSpec& scenario,
                                sharing::Strategy strategy,
                                sharing::SystemConfig config,
                                size_t items_per_stream,
                                const std::vector<ChurnEvent>& churn) {
  ScenarioRun run;
  SS_ASSIGN_OR_RETURN(run.system, BuildSystem(scenario, config));
  for (const QuerySpec& query : scenario.queries) {
    Result<sharing::RegistrationResult> result =
        run.system->RegisterQuery(query.text, query.target, strategy);
    if (!result.ok()) {
      ++run.registration_failures;
      continue;
    }
    if (result->accepted) {
      ++run.accepted;
      // Kept results are there to be compared (query-stats, serve-plane
      // identity checks); the order-insensitive hash makes that cheap.
      if (config.keep_results && result->sink != nullptr) {
        result->sink->EnableContentHash();
      }
    } else {
      ++run.rejected;
    }
  }
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  double duration = 0.0;
  for (const StreamSpec& stream : scenario.streams) {
    PhotonGenerator generator(stream.gen);
    items[stream.name] = generator.Generate(items_per_stream);
    duration = std::max(duration, static_cast<double>(items_per_stream) /
                                      stream.gen.frequency_hz);
  }
  if (churn.empty()) {
    SS_RETURN_IF_ERROR(run.system->Run(items));
  } else {
    size_t fed = 0;
    for (const ChurnEvent& event : churn) {
      size_t upto = std::min(event.at_offset, items_per_stream);
      if (upto > fed) {
        SS_RETURN_IF_ERROR(run.system->Feed(SliceItems(items, fed, upto)));
        fed = upto;
      }
      if (event.kind == ChurnEvent::Kind::kFailPeer) {
        SS_RETURN_IF_ERROR(run.system->FailPeer(event.peer).status());
      } else {
        SS_RETURN_IF_ERROR(
            run.system->CutLink(event.link_a, event.link_b).status());
      }
    }
    if (fed < items_per_stream) {
      SS_RETURN_IF_ERROR(
          run.system->Feed(SliceItems(items, fed, items_per_stream)));
    }
    SS_RETURN_IF_ERROR(run.system->Shutdown());
  }
  run.duration_s = duration;
  return run;
}

}  // namespace streamshare::workload
