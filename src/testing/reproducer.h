// Reproducer emission. When a sweep finds a divergence, the harness
// shrinks the scenario and writes two artifacts: the scenario as replayable
// JSON (feed it back with `streamshare_fuzz --scenario FILE`) and a
// self-contained C++ gtest snippet that embeds the JSON and re-runs the
// oracle — paste it under tests/regression/ and it is a regression test.

#ifndef STREAMSHARE_TESTING_REPRODUCER_H_
#define STREAMSHARE_TESTING_REPRODUCER_H_

#include <string>

#include "common/status.h"
#include "testing/fuzz_scenario.h"
#include "testing/oracle.h"

namespace streamshare::testing {

/// The C++ regression-test snippet for a minimized failing scenario.
/// `failure` is the oracle's failure string (quoted in a comment so the
/// test file records what diverged); `test_name` must be a valid C++
/// identifier.
std::string ReproducerTestSnippet(const FuzzScenario& scenario,
                                  const std::string& test_name,
                                  const std::string& failure);

/// Writes `<dir>/repro_seed_<seed>.json` and `<dir>/repro_seed_<seed>.cc`.
/// Returns the JSON path. The directory must already exist.
Result<std::string> WriteReproducer(const FuzzScenario& scenario,
                                    const std::string& dir,
                                    const std::string& failure);

}  // namespace streamshare::testing

#endif  // STREAMSHARE_TESTING_REPRODUCER_H_
