#include "testing/scenario_json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

namespace streamshare::testing {

namespace {

// ---------------------------------------------------------------- writing

std::string NumberToJson(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

std::string StringToJson(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

std::string OptionalToJson(const std::optional<double>& value) {
  return value ? NumberToJson(*value) : "null";
}

// 64-bit seeds as strings: a JSON number is a double and drops bits past
// 2^53.
std::string SeedToJson(uint64_t seed) {
  return "\"" + std::to_string(seed) + "\"";
}

// ---------------------------------------------------------------- parsing

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    SS_ASSIGN_OR_RETURN(JsonValue value, ParseValue());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError("trailing bytes after JSON value");
    }
    return value;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\n' ||
            text_[pos_] == '\t' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Result<JsonValue> ParseValue() {
    SkipSpace();
    if (pos_ >= text_.size()) return Status::ParseError("unexpected end");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') return ParseString();
    if (c == 't' || c == 'f') return ParseBool();
    if (c == 'n') {
      if (text_.substr(pos_, 4) != "null") {
        return Status::ParseError("bad literal");
      }
      pos_ += 4;
      return JsonValue{};
    }
    return ParseNumber();
  }

  Result<JsonValue> ParseBool() {
    JsonValue value;
    value.type = JsonValue::Type::kBool;
    if (text_.substr(pos_, 4) == "true") {
      value.boolean = true;
      pos_ += 4;
      return value;
    }
    if (text_.substr(pos_, 5) == "false") {
      pos_ += 5;
      return value;
    }
    return Status::ParseError("bad literal");
  }

  Result<JsonValue> ParseNumber() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
    }
    if (pos_ == start) return Status::ParseError("expected number");
    JsonValue value;
    value.type = JsonValue::Type::kNumber;
    value.string.assign(text_.substr(start, pos_ - start));
    char* end = nullptr;
    value.number = std::strtod(value.string.c_str(), &end);
    if (end != value.string.c_str() + value.string.size()) {
      return Status::ParseError("malformed number '" + value.string + "'");
    }
    return value;
  }

  Result<JsonValue> ParseString() {
    ++pos_;  // opening quote
    JsonValue value;
    value.type = JsonValue::Type::kString;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          return Status::ParseError("unterminated escape");
        }
        c = text_[pos_++];
        if (c == 'n') c = '\n';
        if (c == 't') c = '\t';
      }
      value.string += c;
    }
    if (pos_ >= text_.size()) return Status::ParseError("unterminated string");
    ++pos_;  // closing quote
    return value;
  }

  Result<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue value;
    value.type = JsonValue::Type::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      SS_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.array.push_back(std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) return Status::ParseError("unclosed array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return value;
      }
      return Status::ParseError("expected ',' or ']'");
    }
  }

  Result<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue value;
    value.type = JsonValue::Type::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Status::ParseError("expected object key");
      }
      SS_ASSIGN_OR_RETURN(JsonValue key, ParseString());
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ':') {
        return Status::ParseError("expected ':'");
      }
      ++pos_;
      SS_ASSIGN_OR_RETURN(JsonValue element, ParseValue());
      value.object.emplace(std::move(key.string), std::move(element));
      SkipSpace();
      if (pos_ >= text_.size()) return Status::ParseError("unclosed object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return value;
      }
      return Status::ParseError("expected ',' or '}'");
    }
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// Typed field access.
Result<const JsonValue*> Field(const JsonValue& object,
                               const std::string& key) {
  auto it = object.object.find(key);
  if (it == object.object.end()) {
    return Status::ParseError("missing field '" + key + "'");
  }
  return &it->second;
}

Result<double> NumField(const JsonValue& object, const std::string& key) {
  SS_ASSIGN_OR_RETURN(const JsonValue* value, Field(object, key));
  if (value->type != JsonValue::Type::kNumber) {
    return Status::ParseError("field '" + key + "' is not a number");
  }
  return value->number;
}

Result<std::string> StrField(const JsonValue& object,
                             const std::string& key) {
  SS_ASSIGN_OR_RETURN(const JsonValue* value, Field(object, key));
  if (value->type != JsonValue::Type::kString) {
    return Status::ParseError("field '" + key + "' is not a string");
  }
  return value->string;
}

Result<uint64_t> SeedField(const JsonValue& object, const std::string& key) {
  SS_ASSIGN_OR_RETURN(std::string text, StrField(object, key));
  char* end = nullptr;
  uint64_t seed = std::strtoull(text.c_str(), &end, 10);
  if (end != text.c_str() + text.size()) {
    return Status::ParseError("field '" + key + "' is not a seed");
  }
  return seed;
}

Result<std::optional<double>> OptField(const JsonValue& object,
                                       const std::string& key) {
  SS_ASSIGN_OR_RETURN(const JsonValue* value, Field(object, key));
  if (value->type == JsonValue::Type::kNull) {
    return std::optional<double>();
  }
  if (value->type != JsonValue::Type::kNumber) {
    return Status::ParseError("field '" + key + "' is not a number/null");
  }
  return std::optional<double>(value->number);
}

}  // namespace

std::string ToJson(const FuzzScenario& scenario) {
  std::ostringstream out;
  out << "{\n  \"seed\": " << SeedToJson(scenario.seed) << ",\n";
  out << "  \"topology\": {\"peers\": " << scenario.topology.peers
      << ", \"bandwidth_kbps\": "
      << NumberToJson(scenario.topology.bandwidth_kbps)
      << ", \"max_load\": " << NumberToJson(scenario.topology.max_load)
      << ", \"links\": [";
  for (size_t i = 0; i < scenario.topology.links.size(); ++i) {
    if (i > 0) out << ", ";
    out << "[" << scenario.topology.links[i].first << ", "
        << scenario.topology.links[i].second << "]";
  }
  out << "]},\n  \"boxes\": [";
  for (size_t i = 0; i < scenario.boxes.size(); ++i) {
    const workload::SkyBox& box = scenario.boxes[i];
    if (i > 0) out << ", ";
    out << "[" << NumberToJson(box.ra_min) << ", "
        << NumberToJson(box.ra_max) << ", " << NumberToJson(box.dec_min)
        << ", " << NumberToJson(box.dec_max) << "]";
  }
  out << "],\n  \"streams\": [";
  for (size_t i = 0; i < scenario.streams.size(); ++i) {
    const FuzzStreamSpec& stream = scenario.streams[i];
    if (i > 0) out << ",";
    out << "\n    {\"name\": " << StringToJson(stream.name)
        << ", \"source\": " << stream.source
        << ", \"gen_seed\": " << SeedToJson(stream.gen_seed)
        << ", \"frequency_hz\": " << NumberToJson(stream.frequency_hz)
        << ", \"det_time_increment_mean\": "
        << NumberToJson(stream.det_time_increment_mean)
        << ", \"hot_weights\": [";
    for (size_t w = 0; w < stream.hot_weights.size(); ++w) {
      if (w > 0) out << ", ";
      out << NumberToJson(stream.hot_weights[w]);
    }
    out << "]}";
  }
  out << "\n  ],\n  \"queries\": [";
  for (size_t i = 0; i < scenario.queries.size(); ++i) {
    const FuzzQuerySpec& query = scenario.queries[i];
    if (i > 0) out << ",";
    out << "\n    {\"kind\": "
        << (query.kind == FuzzQuerySpec::Kind::kSelection
                ? "\"selection\""
                : "\"aggregation\"")
        << ", \"stream\": " << StringToJson(query.stream)
        << ", \"target\": " << query.target
        << ", \"ra_min\": " << OptionalToJson(query.ra_min)
        << ", \"ra_max\": " << OptionalToJson(query.ra_max)
        << ", \"dec_min\": " << OptionalToJson(query.dec_min)
        << ", \"dec_max\": " << OptionalToJson(query.dec_max)
        << ", \"en_threshold\": " << OptionalToJson(query.en_threshold)
        << ", \"det_skew\": " << OptionalToJson(query.det_skew)
        << ", \"projection\": [";
    for (size_t p = 0; p < query.projection.size(); ++p) {
      if (p > 0) out << ", ";
      out << StringToJson(query.projection[p]);
    }
    out << "], \"window_type\": "
        << (query.window_type == properties::WindowType::kDiff
                ? "\"diff\""
                : "\"count\"")
        << ", \"window_size\": " << query.window_size
        << ", \"window_step\": " << query.window_step
        << ", \"agg_func\": " << StringToJson(query.agg_func)
        << ", \"agg_filter\": " << OptionalToJson(query.agg_filter) << "}";
  }
  out << "\n  ],\n";
  // Omitted entirely for clean scenarios: their JSON stays byte-identical
  // to the format written before churn existed.
  if (!scenario.churn.empty()) {
    out << "  \"churn\": [";
    for (size_t i = 0; i < scenario.churn.size(); ++i) {
      const FuzzChurnEvent& event = scenario.churn[i];
      if (i > 0) out << ", ";
      if (event.kind == FuzzChurnEvent::Kind::kFailPeer) {
        out << "{\"kind\": \"fail-peer\", \"peer\": " << event.peer;
      } else {
        out << "{\"kind\": \"cut-link\", \"link_a\": " << event.link_a
            << ", \"link_b\": " << event.link_b;
      }
      out << ", \"at_offset\": " << event.at_offset << "}";
    }
    out << "],\n";
  }
  out << "  \"items_per_stream\": " << scenario.items_per_stream
      << "\n}\n";
  return out.str();
}

Result<FuzzScenario> FromJson(std::string_view json) {
  JsonParser parser(json);
  SS_ASSIGN_OR_RETURN(JsonValue root, parser.Parse());
  if (root.type != JsonValue::Type::kObject) {
    return Status::ParseError("scenario JSON is not an object");
  }
  FuzzScenario scenario;
  SS_ASSIGN_OR_RETURN(scenario.seed, SeedField(root, "seed"));

  SS_ASSIGN_OR_RETURN(const JsonValue* topology, Field(root, "topology"));
  SS_ASSIGN_OR_RETURN(double peers, NumField(*topology, "peers"));
  scenario.topology.peers = static_cast<int>(peers);
  SS_ASSIGN_OR_RETURN(scenario.topology.bandwidth_kbps,
                      NumField(*topology, "bandwidth_kbps"));
  SS_ASSIGN_OR_RETURN(scenario.topology.max_load,
                      NumField(*topology, "max_load"));
  SS_ASSIGN_OR_RETURN(const JsonValue* links, Field(*topology, "links"));
  for (const JsonValue& link : links->array) {
    if (link.array.size() != 2) {
      return Status::ParseError("link is not a pair");
    }
    scenario.topology.links.emplace_back(
        static_cast<int>(link.array[0].number),
        static_cast<int>(link.array[1].number));
  }

  SS_ASSIGN_OR_RETURN(const JsonValue* boxes, Field(root, "boxes"));
  for (const JsonValue& box : boxes->array) {
    if (box.array.size() != 4) return Status::ParseError("box is not 4-ary");
    scenario.boxes.push_back({box.array[0].number, box.array[1].number,
                              box.array[2].number, box.array[3].number});
  }

  SS_ASSIGN_OR_RETURN(const JsonValue* streams, Field(root, "streams"));
  for (const JsonValue& entry : streams->array) {
    FuzzStreamSpec stream;
    SS_ASSIGN_OR_RETURN(stream.name, StrField(entry, "name"));
    SS_ASSIGN_OR_RETURN(double source, NumField(entry, "source"));
    stream.source = static_cast<network::NodeId>(source);
    SS_ASSIGN_OR_RETURN(stream.gen_seed, SeedField(entry, "gen_seed"));
    SS_ASSIGN_OR_RETURN(stream.frequency_hz,
                        NumField(entry, "frequency_hz"));
    SS_ASSIGN_OR_RETURN(stream.det_time_increment_mean,
                        NumField(entry, "det_time_increment_mean"));
    SS_ASSIGN_OR_RETURN(const JsonValue* weights,
                        Field(entry, "hot_weights"));
    for (const JsonValue& weight : weights->array) {
      stream.hot_weights.push_back(weight.number);
    }
    scenario.streams.push_back(std::move(stream));
  }

  SS_ASSIGN_OR_RETURN(const JsonValue* queries, Field(root, "queries"));
  for (const JsonValue& entry : queries->array) {
    FuzzQuerySpec query;
    SS_ASSIGN_OR_RETURN(std::string kind, StrField(entry, "kind"));
    if (kind == "selection") {
      query.kind = FuzzQuerySpec::Kind::kSelection;
    } else if (kind == "aggregation") {
      query.kind = FuzzQuerySpec::Kind::kAggregation;
    } else {
      return Status::ParseError("unknown query kind '" + kind + "'");
    }
    SS_ASSIGN_OR_RETURN(query.stream, StrField(entry, "stream"));
    SS_ASSIGN_OR_RETURN(double target, NumField(entry, "target"));
    query.target = static_cast<network::NodeId>(target);
    SS_ASSIGN_OR_RETURN(query.ra_min, OptField(entry, "ra_min"));
    SS_ASSIGN_OR_RETURN(query.ra_max, OptField(entry, "ra_max"));
    SS_ASSIGN_OR_RETURN(query.dec_min, OptField(entry, "dec_min"));
    SS_ASSIGN_OR_RETURN(query.dec_max, OptField(entry, "dec_max"));
    SS_ASSIGN_OR_RETURN(query.en_threshold,
                        OptField(entry, "en_threshold"));
    SS_ASSIGN_OR_RETURN(query.det_skew, OptField(entry, "det_skew"));
    SS_ASSIGN_OR_RETURN(const JsonValue* projection,
                        Field(entry, "projection"));
    for (const JsonValue& path : projection->array) {
      query.projection.push_back(path.string);
    }
    SS_ASSIGN_OR_RETURN(std::string window_type,
                        StrField(entry, "window_type"));
    query.window_type = window_type == "diff"
                            ? properties::WindowType::kDiff
                            : properties::WindowType::kCount;
    SS_ASSIGN_OR_RETURN(double size, NumField(entry, "window_size"));
    SS_ASSIGN_OR_RETURN(double step, NumField(entry, "window_step"));
    query.window_size = static_cast<int>(size);
    query.window_step = static_cast<int>(step);
    SS_ASSIGN_OR_RETURN(query.agg_func, StrField(entry, "agg_func"));
    SS_ASSIGN_OR_RETURN(query.agg_filter, OptField(entry, "agg_filter"));
    scenario.queries.push_back(std::move(query));
  }

  // Optional for compatibility: reproducers written before churn existed
  // have no "churn" field and replay as clean scenarios.
  if (root.object.count("churn") != 0) {
    SS_ASSIGN_OR_RETURN(const JsonValue* churn, Field(root, "churn"));
    for (const JsonValue& entry : churn->array) {
      FuzzChurnEvent event;
      SS_ASSIGN_OR_RETURN(std::string kind, StrField(entry, "kind"));
      if (kind == "fail-peer") {
        event.kind = FuzzChurnEvent::Kind::kFailPeer;
        SS_ASSIGN_OR_RETURN(double peer, NumField(entry, "peer"));
        event.peer = static_cast<int>(peer);
      } else if (kind == "cut-link") {
        event.kind = FuzzChurnEvent::Kind::kCutLink;
        SS_ASSIGN_OR_RETURN(double a, NumField(entry, "link_a"));
        SS_ASSIGN_OR_RETURN(double b, NumField(entry, "link_b"));
        event.link_a = static_cast<int>(a);
        event.link_b = static_cast<int>(b);
      } else {
        return Status::ParseError("unknown churn kind '" + kind + "'");
      }
      SS_ASSIGN_OR_RETURN(double offset, NumField(entry, "at_offset"));
      event.at_offset = static_cast<size_t>(offset);
      scenario.churn.push_back(event);
    }
  }

  SS_ASSIGN_OR_RETURN(double items, NumField(root, "items_per_stream"));
  scenario.items_per_stream = static_cast<size_t>(items);
  return scenario;
}

Status WriteScenarioFile(const FuzzScenario& scenario,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::NotFound("cannot open '" + path + "' for write");
  out << ToJson(scenario);
  out.close();
  if (!out) return Status::Internal("write to '" + path + "' failed");
  return Status::Ok();
}

Result<FuzzScenario> ReadScenarioFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return FromJson(buffer.str());
}

}  // namespace streamshare::testing
