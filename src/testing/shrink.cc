#include "testing/shrink.h"

#include <algorithm>
#include <set>
#include <utility>
#include <vector>

namespace streamshare::testing {
namespace {

class Shrinker {
 public:
  Shrinker(FuzzScenario scenario, const FailurePredicate& still_fails,
           ShrinkStats* stats)
      : scenario_(std::move(scenario)),
        still_fails_(still_fails),
        stats_(stats) {}

  FuzzScenario Run(int max_rounds) {
    for (int round = 0; round < max_rounds; ++round) {
      bool changed = false;
      changed |= DropChurn();
      changed |= DropQueries();
      changed |= DropStreams();
      changed |= ReduceItems();
      changed |= SimplifyQueries();
      changed |= PrunePeers();
      if (!changed) break;
    }
    return scenario_;
  }

 private:
  /// Accepts `candidate` as the new current scenario iff it still fails.
  bool Try(const FuzzScenario& candidate) {
    if (stats_ != nullptr) ++stats_->predicate_runs;
    if (!still_fails_(candidate)) return false;
    scenario_ = candidate;
    if (stats_ != nullptr) ++stats_->accepted_steps;
    return true;
  }

  /// Churn first: a failure that reproduces without any churn (or with
  /// fewer events) is a plain differential bug, not a recovery bug, and
  /// the smaller event list pins down which failure actually matters.
  /// Dropping events never invalidates the list — independence (no
  /// repeated peer, no doubly-cut link) is closed under removal.
  bool DropChurn() {
    bool changed = false;
    if (!scenario_.churn.empty()) {
      FuzzScenario candidate = scenario_;
      candidate.churn.clear();
      if (Try(candidate)) return true;
    }
    for (size_t i = 0; i < scenario_.churn.size();) {
      FuzzScenario candidate = scenario_;
      candidate.churn.erase(candidate.churn.begin() + i);
      if (Try(candidate)) {
        changed = true;
      } else {
        ++i;
      }
    }
    return changed;
  }

  /// ddmin-style: first try removing halves, then individual queries.
  bool DropQueries() {
    bool changed = false;
    size_t n = scenario_.queries.size();
    for (size_t chunk = n / 2; chunk >= 1; chunk /= 2) {
      for (size_t start = 0; start + chunk <= scenario_.queries.size();) {
        if (scenario_.queries.size() <= 1) return changed;
        FuzzScenario candidate = scenario_;
        candidate.queries.erase(candidate.queries.begin() + start,
                                candidate.queries.begin() + start + chunk);
        if (Try(candidate)) {
          changed = true;  // same start now points at the next chunk
        } else {
          start += chunk;
        }
      }
      if (chunk == 1) break;
    }
    return changed;
  }

  /// A stream can go only when no remaining query reads it.
  bool DropStreams() {
    bool changed = false;
    for (size_t s = 0; s < scenario_.streams.size();) {
      bool referenced = false;
      for (const auto& q : scenario_.queries) {
        if (q.stream == scenario_.streams[s].name) referenced = true;
      }
      if (referenced || scenario_.streams.size() <= 1) {
        ++s;
        continue;
      }
      FuzzScenario candidate = scenario_;
      candidate.streams.erase(candidate.streams.begin() + s);
      if (Try(candidate)) {
        changed = true;
      } else {
        ++s;
      }
    }
    return changed;
  }

  bool ReduceItems() {
    bool changed = false;
    while (scenario_.items_per_stream > 8) {
      FuzzScenario candidate = scenario_;
      candidate.items_per_stream = scenario_.items_per_stream / 2;
      // Scale churn offsets along so events stay mid-run instead of
      // collecting past the (shrunken) end of the stream.
      for (FuzzChurnEvent& event : candidate.churn) {
        event.at_offset /= 2;
      }
      if (!Try(candidate)) break;
      changed = true;
    }
    return changed;
  }

  bool SimplifyQueries() {
    bool changed = false;
    for (size_t i = 0; i < scenario_.queries.size(); ++i) {
      changed |= SimplifyQuery(i);
    }
    return changed;
  }

  bool SimplifyQuery(size_t i) {
    bool changed = false;
    // Optional predicate atoms, one at a time.
    changed |= TryClear(i, [](FuzzQuerySpec& q) { q.det_skew.reset(); },
                        scenario_.queries[i].det_skew.has_value());
    changed |= TryClear(i, [](FuzzQuerySpec& q) { q.en_threshold.reset(); },
                        scenario_.queries[i].en_threshold.has_value());
    changed |= TryClear(i, [](FuzzQuerySpec& q) { q.ra_min.reset(); },
                        scenario_.queries[i].ra_min.has_value());
    changed |= TryClear(i, [](FuzzQuerySpec& q) { q.ra_max.reset(); },
                        scenario_.queries[i].ra_max.has_value());
    changed |= TryClear(i, [](FuzzQuerySpec& q) { q.dec_min.reset(); },
                        scenario_.queries[i].dec_min.has_value());
    changed |= TryClear(i, [](FuzzQuerySpec& q) { q.dec_max.reset(); },
                        scenario_.queries[i].dec_max.has_value());
    const FuzzQuerySpec& q = scenario_.queries[i];
    if (q.kind == FuzzQuerySpec::Kind::kSelection) {
      changed |= TryClear(i, [](FuzzQuerySpec& s) { s.projection.clear(); },
                          !q.projection.empty());
    } else {
      changed |= TryClear(i, [](FuzzQuerySpec& s) { s.agg_filter.reset(); },
                          q.agg_filter.has_value());
      // Shrink the window while preserving step | size divisibility when
      // it held before (non-divisible pairs stay non-divisible: keep size,
      // only halving would mend them, so shrink both by the same factor).
      while (scenario_.queries[i].window_size >= 4 &&
             scenario_.queries[i].window_step >= 2 &&
             scenario_.queries[i].window_size % 2 == 0 &&
             scenario_.queries[i].window_step % 2 == 0) {
        FuzzScenario candidate = scenario_;
        candidate.queries[i].window_size /= 2;
        candidate.queries[i].window_step /= 2;
        if (!Try(candidate)) break;
        changed = true;
      }
    }
    return changed;
  }

  template <typename Fn>
  bool TryClear(size_t i, Fn mutate, bool applicable) {
    if (!applicable) return false;
    FuzzScenario candidate = scenario_;
    mutate(candidate.queries[i]);
    return Try(candidate);
  }

  /// Removes peers that host no stream and no query target, splicing
  /// their links so the topology stays connected.
  bool PrunePeers() {
    bool changed = false;
    for (int p = scenario_.topology.peers - 1; p >= 0; --p) {
      if (scenario_.topology.peers <= 2) break;
      bool used = false;
      for (const auto& s : scenario_.streams) {
        if (s.source == p) used = true;
      }
      for (const auto& q : scenario_.queries) {
        if (q.target == p) used = true;
      }
      for (const auto& e : scenario_.churn) {
        if (e.kind == FuzzChurnEvent::Kind::kFailPeer) {
          if (e.peer == p) used = true;
        } else if (e.link_a == p || e.link_b == p) {
          used = true;
        }
      }
      if (used) continue;
      FuzzScenario candidate = scenario_;
      RemovePeer(&candidate.topology, p);
      for (auto& s : candidate.streams) {
        if (s.source > p) --s.source;
      }
      for (auto& q : candidate.queries) {
        if (q.target > p) --q.target;
      }
      for (auto& e : candidate.churn) {
        if (e.peer > p) --e.peer;
        if (e.link_a > p) --e.link_a;
        if (e.link_b > p) --e.link_b;
      }
      if (Try(candidate)) changed = true;
    }
    return changed;
  }

  static void RemovePeer(FuzzTopologySpec* topo, int p) {
    std::vector<int> neighbors;
    std::vector<std::pair<int, int>> kept;
    std::set<std::pair<int, int>> seen;
    for (const auto& [a, b] : topo->links) {
      if (a == p || b == p) {
        int other = (a == p) ? b : a;
        if (other != p) neighbors.push_back(other);
        continue;
      }
      auto key = std::minmax(a, b);
      if (seen.insert(key).second) kept.push_back({a, b});
    }
    // Chain the orphaned neighbors together so connectivity survives.
    for (size_t i = 0; i + 1 < neighbors.size(); ++i) {
      auto key = std::minmax(neighbors[i], neighbors[i + 1]);
      if (key.first != key.second && seen.insert(key).second) {
        kept.push_back({neighbors[i], neighbors[i + 1]});
      }
    }
    // Renumber peers above p down by one.
    for (auto& [a, b] : kept) {
      if (a > p) --a;
      if (b > p) --b;
    }
    topo->links = std::move(kept);
    --topo->peers;
  }

  FuzzScenario scenario_;
  const FailurePredicate& still_fails_;
  ShrinkStats* stats_;
};

}  // namespace

FuzzScenario Shrink(FuzzScenario scenario, const FailurePredicate& still_fails,
                    int max_rounds, ShrinkStats* stats) {
  Shrinker shrinker(std::move(scenario), still_fails, stats);
  return shrinker.Run(max_rounds);
}

}  // namespace streamshare::testing
