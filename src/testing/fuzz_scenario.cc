#include "testing/fuzz_scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <set>

namespace streamshare::testing {

namespace {

std::string FormatFixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.*f", decimals, value);
  return buffer;
}

/// Appends "lhs >= v" style conjuncts for the set box sides.
void AppendBoxConjuncts(const FuzzQuerySpec& spec, const std::string& prefix,
                        std::vector<std::string>* conjuncts) {
  if (spec.ra_min) {
    conjuncts->push_back(prefix + "coord/cel/ra >= " +
                         FormatFixed(*spec.ra_min, 1));
  }
  if (spec.ra_max) {
    conjuncts->push_back(prefix + "coord/cel/ra <= " +
                         FormatFixed(*spec.ra_max, 1));
  }
  if (spec.dec_min) {
    conjuncts->push_back(prefix + "coord/cel/dec >= " +
                         FormatFixed(*spec.dec_min, 1));
  }
  if (spec.dec_max) {
    conjuncts->push_back(prefix + "coord/cel/dec <= " +
                         FormatFixed(*spec.dec_max, 1));
  }
  if (spec.en_threshold) {
    conjuncts->push_back(prefix + "en >= " +
                         FormatFixed(*spec.en_threshold, 2));
  }
  if (spec.det_skew) {
    conjuncts->push_back(prefix + "coord/det/dx <= " + prefix +
                         "coord/det/dy + " + FormatFixed(*spec.det_skew, 1));
  }
}

std::string JoinAnd(const std::vector<std::string>& conjuncts) {
  std::string out;
  for (size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) out += " and ";
    out += conjuncts[i];
  }
  return out;
}

}  // namespace

uint64_t DetRng::Next() {
  // splitmix64: fully specified, so scenarios replay across platforms.
  uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t DetRng::Below(uint64_t n) {
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(Next()) * n) >> 64);
}

int64_t DetRng::Between(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
}

double DetRng::Unit() { return std::ldexp(static_cast<double>(Next() >> 11), -53); }

double DetRng::BetweenReal(double lo, double hi) {
  return lo + Unit() * (hi - lo);
}

std::string FuzzQuerySpec::ToQueryText() const {
  if (kind == Kind::kSelection) {
    std::vector<std::string> conjuncts;
    AppendBoxConjuncts(*this, "$p/", &conjuncts);
    std::string text = "<photons> { for $p in stream(\"" + stream +
                       "\")/photons/photon";
    if (!conjuncts.empty()) text += " where " + JoinAnd(conjuncts);
    if (projection.empty()) {
      text += " return $p } </photons>";
      return text;
    }
    text += " return <hit>";
    for (const std::string& path : projection) {
      text += " { $p/" + path + " }";
    }
    text += " </hit> } </photons>";
    return text;
  }

  std::vector<std::string> conjuncts;
  AppendBoxConjuncts(*this, "", &conjuncts);
  std::string text =
      "<photons> { for $w in stream(\"" + stream + "\")/photons/photon";
  if (!conjuncts.empty()) text += " [" + JoinAnd(conjuncts) + "]";
  if (window_type == properties::WindowType::kDiff) {
    text += " |det_time diff " + std::to_string(window_size) + " step " +
            std::to_string(window_step) + "|";
  } else {
    text += " |count " + std::to_string(window_size) + " step " +
            std::to_string(window_step) + "|";
  }
  text += " let $a := " + agg_func + "($w/en)";
  if (agg_filter) {
    text += " where $a >= " + FormatFixed(*agg_filter, 2);
  }
  text += " return <agg_en> { $a } </agg_en> } </photons>";
  return text;
}

workload::PhotonGenConfig FuzzStreamSpec::ToGenConfig() const {
  workload::PhotonGenConfig config;
  config.seed = gen_seed;
  config.frequency_hz = frequency_hz;
  config.det_time_increment_mean = det_time_increment_mean;
  // hot_regions are attached by StreamGenConfig from the scenario's pool.
  return config;
}

Result<network::Topology> FuzzTopologySpec::Build() const {
  network::Topology topology;
  for (int p = 0; p < peers; ++p) {
    topology.AddPeer("SP" + std::to_string(p), max_load);
  }
  for (const auto& [a, b] : links) {
    SS_RETURN_IF_ERROR(topology.AddLink(a, b, bandwidth_kbps).status());
  }
  return topology;
}

std::string FuzzScenario::ToString() const {
  std::string out = "scenario seed=" + std::to_string(seed) + " peers=" +
                    std::to_string(topology.peers) + " links=" +
                    std::to_string(topology.links.size()) + " items=" +
                    std::to_string(items_per_stream) + "\n";
  for (const FuzzStreamSpec& stream : streams) {
    out += "  stream " + stream.name + " @SP" +
           std::to_string(stream.source) + " " +
           FormatFixed(stream.frequency_hz, 1) + "Hz\n";
  }
  for (size_t q = 0; q < queries.size(); ++q) {
    out += "  q" + std::to_string(q) + " @SP" +
           std::to_string(queries[q].target) + ": " +
           queries[q].ToQueryText() + "\n";
  }
  for (const FuzzChurnEvent& event : churn) {
    if (event.kind == FuzzChurnEvent::Kind::kFailPeer) {
      out += "  churn fail-peer SP" + std::to_string(event.peer);
    } else {
      out += "  churn cut-link " + std::to_string(event.link_a) + "-" +
             std::to_string(event.link_b);
    }
    out += " @item " + std::to_string(event.at_offset) + "\n";
  }
  return out;
}

namespace {

/// Per-scenario sky-box pool: a handful of base boxes plus sub-boxes of
/// some of them (containment is what creates reuse-with-residual plans).
std::vector<workload::SkyBox> GenerateBoxPool(DetRng* rng) {
  std::vector<workload::SkyBox> boxes;
  int base_count = static_cast<int>(rng->Between(2, 4));
  for (int i = 0; i < base_count; ++i) {
    workload::SkyBox box;
    box.ra_min = rng->BetweenReal(0.0, 300.0);
    box.ra_max = box.ra_min + rng->BetweenReal(10.0, 50.0);
    box.dec_min = rng->BetweenReal(-85.0, 55.0);
    box.dec_max = box.dec_min + rng->BetweenReal(8.0, 30.0);
    boxes.push_back(box);
  }
  // Sub-boxes of random base boxes.
  int sub_count = static_cast<int>(rng->Between(1, 2));
  for (int i = 0; i < sub_count; ++i) {
    workload::SkyBox box = boxes[rng->Below(base_count)];
    double ra_span = box.ra_max - box.ra_min;
    double dec_span = box.dec_max - box.dec_min;
    box.ra_min += rng->BetweenReal(0.0, 0.3) * ra_span;
    box.ra_max -= rng->BetweenReal(0.0, 0.3) * ra_span;
    box.dec_min += rng->BetweenReal(0.0, 0.3) * dec_span;
    box.dec_max -= rng->BetweenReal(0.0, 0.3) * dec_span;
    boxes.push_back(box);
  }
  return boxes;
}

/// Projection subsets; selections always keep ra/dec so residual
/// re-filtering behind a projected shared stream stays possible.
const char* const kProjectionSubsets[][5] = {
    {"coord/cel/ra", "coord/cel/dec", "phc", "en", "det_time"},
    {"coord/cel/ra", "coord/cel/dec", "en", "det_time", nullptr},
    {"coord/cel/ra", "coord/cel/dec", "en", nullptr, nullptr},
    {"coord/cel/ra", "coord/cel/dec", "det_time", nullptr, nullptr},
};
constexpr size_t kProjectionSubsetCount =
    sizeof(kProjectionSubsets) / sizeof(kProjectionSubsets[0]);

const char* const kAggFuncs[] = {"avg", "sum", "count", "min", "max"};

FuzzQuerySpec GenerateQuery(DetRng* rng, const FuzzScenario& scenario,
                            const std::vector<std::pair<int, int>>& windows) {
  FuzzQuerySpec spec;
  const FuzzStreamSpec& stream =
      scenario.streams[rng->Below(scenario.streams.size())];
  spec.stream = stream.name;
  spec.target = static_cast<network::NodeId>(
      rng->Below(static_cast<uint64_t>(scenario.topology.peers)));

  // Predicates shared by both kinds: a pool box (sometimes shrunk, for
  // containment), an optional energy threshold, an optional cross-variable
  // detector atom. Sides drop independently with small probability so
  // half-open boxes appear too.
  auto fill_box = [&](FuzzQuerySpec* q) {
    if (rng->Chance(0.15)) return;  // no box at all
    workload::SkyBox box = scenario.boxes[rng->Below(scenario.boxes.size())];
    if (rng->Chance(0.35)) {  // contained sub-box
      double ra_span = box.ra_max - box.ra_min;
      double dec_span = box.dec_max - box.dec_min;
      box.ra_min += rng->BetweenReal(0.0, 0.25) * ra_span;
      box.ra_max -= rng->BetweenReal(0.0, 0.25) * ra_span;
      box.dec_min += rng->BetweenReal(0.0, 0.25) * dec_span;
      box.dec_max -= rng->BetweenReal(0.0, 0.25) * dec_span;
    }
    if (!rng->Chance(0.1)) q->ra_min = box.ra_min;
    if (!rng->Chance(0.1)) q->ra_max = box.ra_max;
    if (!rng->Chance(0.1)) q->dec_min = box.dec_min;
    if (!rng->Chance(0.1)) q->dec_max = box.dec_max;
  };
  fill_box(&spec);
  if (rng->Chance(0.4)) {
    spec.en_threshold = 0.25 * rng->Between(1, 8);  // 0.25 .. 2.0 keV
  }
  if (rng->Chance(0.2)) {
    spec.det_skew = 32.0 * rng->Between(0, 12);  // dx <= dy + skew
  }

  if (rng->Chance(0.65)) {
    spec.kind = FuzzQuerySpec::Kind::kSelection;
    if (!rng->Chance(0.25)) {  // 25% whole-item returns
      const char* const* subset =
          kProjectionSubsets[rng->Below(kProjectionSubsetCount)];
      for (size_t i = 0; i < 5 && subset[i] != nullptr; ++i) {
        spec.projection.push_back(subset[i]);
      }
    }
    return spec;
  }

  spec.kind = FuzzQuerySpec::Kind::kAggregation;
  auto [size, step] = windows[rng->Below(windows.size())];
  spec.window_size = size;
  spec.window_step = step;
  spec.window_type = rng->Chance(0.3) ? properties::WindowType::kCount
                                      : properties::WindowType::kDiff;
  spec.agg_func = kAggFuncs[rng->Below(5)];
  if (spec.agg_func == std::string("avg") && rng->Chance(0.3)) {
    spec.agg_filter = 0.25 * rng->Between(2, 6);
  }
  return spec;
}

}  // namespace

FuzzScenario GenerateScenario(uint64_t seed,
                              const GeneratorOptions& options) {
  DetRng rng(seed * 0x2545F4914F6CDD1Dull + 1);
  FuzzScenario scenario;
  scenario.seed = seed;

  // Topology: a random spanning tree (node i hangs off a random earlier
  // node) plus a few chords. Always connected; capacities high enough
  // that no plan is rejected — the differential oracle tests semantics,
  // not admission control.
  scenario.topology.peers = static_cast<int>(
      rng.Between(options.min_peers, options.max_peers));
  for (int p = 1; p < scenario.topology.peers; ++p) {
    scenario.topology.links.emplace_back(
        static_cast<int>(rng.Below(static_cast<uint64_t>(p))), p);
  }
  int chords = static_cast<int>(rng.Between(0, scenario.topology.peers / 2));
  for (int i = 0; i < chords; ++i) {
    int a = static_cast<int>(
        rng.Below(static_cast<uint64_t>(scenario.topology.peers)));
    int b = static_cast<int>(
        rng.Below(static_cast<uint64_t>(scenario.topology.peers)));
    if (a == b) continue;
    if (a > b) std::swap(a, b);
    bool duplicate = false;
    for (const auto& link : scenario.topology.links) {
      if (link == std::make_pair(a, b)) duplicate = true;
    }
    if (!duplicate) scenario.topology.links.emplace_back(a, b);
  }

  scenario.boxes = GenerateBoxPool(&rng);

  int stream_count = static_cast<int>(
      rng.Between(options.min_streams, options.max_streams));
  for (int s = 0; s < stream_count; ++s) {
    FuzzStreamSpec stream;
    stream.name = s == 0 ? "photons" : "photons" + std::to_string(s + 1);
    stream.source = static_cast<network::NodeId>(
        rng.Below(static_cast<uint64_t>(scenario.topology.peers)));
    stream.gen_seed = rng.Next() | 1;
    stream.frequency_hz = static_cast<double>(rng.Between(50, 200));
    stream.det_time_increment_mean = 0.125 * rng.Between(2, 8);
    for (size_t b = 0; b < scenario.boxes.size(); ++b) {
      stream.hot_weights.push_back(0.25 * rng.Between(0, 8));
    }
    scenario.streams.push_back(std::move(stream));
  }

  // Window (Δ, µ) pool: a recombinable family over a base step, plus one
  // deliberately non-dividing pair (µ ∤ Δ) — legal queries whose windows
  // simply never share.
  std::vector<std::pair<int, int>> windows;
  int base = static_cast<int>(rng.Between(4, 12));
  windows.emplace_back(2 * base, base);
  windows.emplace_back(4 * base, 2 * base);
  windows.emplace_back(6 * base, 2 * base);
  windows.emplace_back(8 * base, 4 * base);
  windows.emplace_back(3 * base + 1, 2 * base);  // µ ∤ Δ
  int query_count = static_cast<int>(
      rng.Between(options.min_queries, options.max_queries));
  for (int q = 0; q < query_count; ++q) {
    scenario.queries.push_back(GenerateQuery(&rng, scenario, windows));
  }

  scenario.items_per_stream = static_cast<size_t>(rng.Between(
      static_cast<int64_t>(options.min_items),
      static_cast<int64_t>(options.max_items)));

  // Churn draws come strictly after every clean draw, so enabling churn
  // never perturbs the clean part a seed generates.
  if (options.churn_probability > 0.0 &&
      rng.Chance(options.churn_probability)) {
    // Redundancy chords: recovery is only interesting when the residual
    // topology can still route around a failure, and random spanning
    // trees rarely can. Scenarios that carry churn get a few extra links
    // the clean generator would not have drawn — scenarios without churn
    // (in particular every scenario at the default probability 0) are
    // untouched.
    int extra_links = static_cast<int>(
        rng.Between(1, std::max(2, scenario.topology.peers / 2)));
    for (int i = 0; i < extra_links; ++i) {
      int a = static_cast<int>(
          rng.Below(static_cast<uint64_t>(scenario.topology.peers)));
      int b = static_cast<int>(
          rng.Below(static_cast<uint64_t>(scenario.topology.peers)));
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      bool duplicate = false;
      for (const auto& link : scenario.topology.links) {
        if (link == std::make_pair(a, b)) duplicate = true;
      }
      if (!duplicate) scenario.topology.links.emplace_back(a, b);
    }
    int count = static_cast<int>(rng.Between(options.min_churn_events,
                                             options.max_churn_events));
    // Mid-band offsets: early enough that windows are mid-flight, late
    // enough that pre-failure output exists to diff against.
    std::vector<size_t> offsets;
    for (int i = 0; i < count; ++i) {
      offsets.push_back(static_cast<size_t>(
          rng.Between(static_cast<int64_t>(scenario.items_per_stream / 4),
                      static_cast<int64_t>(
                          (scenario.items_per_stream * 3) / 4))));
    }
    std::sort(offsets.begin(), offsets.end());
    // Assign events in offset order so independence is checkable as we
    // go: no repeated peer, no link cut twice or after an endpoint died.
    // Stream sources never fail — killing the producer severs the whole
    // workload, which tests nothing recovery-specific.
    std::vector<bool> failed(scenario.topology.peers, false);
    std::vector<bool> source(scenario.topology.peers, false);
    for (const FuzzStreamSpec& stream : scenario.streams) {
      source[stream.source] = true;
    }
    std::set<std::pair<int, int>> cut;
    // True iff the surviving peers stay mutually reachable after also
    // failing `extra_peer` (or -1) and cutting `extra_cut` (or {-1,-1}).
    // Failures that keep the residual graph connected are the ones
    // recovery can *re-plan* around instead of tearing queries down, so
    // the generator prefers them — "gap, not garbage" is only testable
    // when a gap is actually recoverable.
    auto residual_connected = [&](int extra_peer,
                                  std::pair<int, int> extra_cut) {
      auto alive = [&](int p) { return !failed[p] && p != extra_peer; };
      std::vector<std::vector<int>> adjacency(scenario.topology.peers);
      for (const auto& link : scenario.topology.links) {
        if (cut.count(link) != 0 || link == extra_cut) continue;
        if (!alive(link.first) || !alive(link.second)) continue;
        adjacency[link.first].push_back(link.second);
        adjacency[link.second].push_back(link.first);
      }
      int start = -1, alive_count = 0;
      for (int p = 0; p < scenario.topology.peers; ++p) {
        if (!alive(p)) continue;
        ++alive_count;
        if (start < 0) start = p;
      }
      if (start < 0) return false;
      std::vector<bool> seen(scenario.topology.peers, false);
      std::vector<int> stack = {start};
      seen[start] = true;
      int visited = 1;
      while (!stack.empty()) {
        int p = stack.back();
        stack.pop_back();
        for (int n : adjacency[p]) {
          if (seen[n]) continue;
          seen[n] = true;
          ++visited;
          stack.push_back(n);
        }
      }
      return visited == alive_count;
    };
    for (size_t offset : offsets) {
      std::vector<int> peer_candidates;
      for (int p = 0; p < scenario.topology.peers; ++p) {
        if (!failed[p] && !source[p]) peer_candidates.push_back(p);
      }
      std::vector<std::pair<int, int>> link_candidates;
      for (const auto& link : scenario.topology.links) {
        if (failed[link.first] || failed[link.second]) continue;
        if (cut.count(link) != 0) continue;
        link_candidates.push_back(link);
      }
      // Prefer survivable events 3:1 when any exist; the disconnecting
      // ones stay in the mix to keep the kLost teardown path exercised.
      std::vector<int> safe_peers;
      for (int p : peer_candidates) {
        if (residual_connected(p, {-1, -1})) safe_peers.push_back(p);
      }
      std::vector<std::pair<int, int>> safe_links;
      for (const auto& link : link_candidates) {
        if (residual_connected(-1, link)) safe_links.push_back(link);
      }
      bool prefer_safe =
          (!safe_peers.empty() || !safe_links.empty()) && !rng.Chance(0.25);
      if (prefer_safe) {
        peer_candidates = safe_peers;
        link_candidates = safe_links;
      }
      if (peer_candidates.empty() && link_candidates.empty()) break;
      FuzzChurnEvent event;
      event.at_offset = offset;
      bool fail_peer = !peer_candidates.empty() &&
                       (link_candidates.empty() || rng.Chance(0.5));
      if (fail_peer) {
        event.kind = FuzzChurnEvent::Kind::kFailPeer;
        event.peer = peer_candidates[rng.Below(peer_candidates.size())];
        failed[event.peer] = true;
      } else {
        event.kind = FuzzChurnEvent::Kind::kCutLink;
        auto link = link_candidates[rng.Below(link_candidates.size())];
        event.link_a = link.first;
        event.link_b = link.second;
        cut.insert(link);
      }
      scenario.churn.push_back(event);
    }
  }
  return scenario;
}

workload::PhotonGenConfig StreamGenConfig(const FuzzScenario& scenario,
                                          const FuzzStreamSpec& stream) {
  workload::PhotonGenConfig config = stream.ToGenConfig();
  for (size_t b = 0; b < scenario.boxes.size(); ++b) {
    double weight =
        b < stream.hot_weights.size() ? stream.hot_weights[b] : 0.0;
    if (weight <= 0.0) continue;
    config.hot_regions.push_back(scenario.boxes[b]);
    config.hot_weights.push_back(weight);
  }
  return config;
}

}  // namespace streamshare::testing
