// Randomized differential-test scenarios. A FuzzScenario is a fully
// structured description of one end-to-end workload — topology, photon
// streams, and subscriptions — generated deterministically from a seed.
// Everything is kept in shrinkable, re-renderable form (query *specs*,
// not query text) so the shrinker can drop predicates, narrow windows,
// or remove queries and re-render, and the JSON codec can replay a
// scenario bit-identically on another machine.
//
// The generator favours shareable workloads the same way the paper's
// evaluation does: predicates draw their sky boxes from a small
// per-scenario pool (repeats create containment), and window (Δ, µ)
// pairs are drawn so coarser windows are recombinable from finer ones.

#ifndef STREAMSHARE_TESTING_FUZZ_SCENARIO_H_
#define STREAMSHARE_TESTING_FUZZ_SCENARIO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "network/topology.h"
#include "properties/window.h"
#include "workload/photon_gen.h"

namespace streamshare::testing {

/// Deterministic random helpers on top of mt19937_64 raw output. The
/// standard distributions are implementation-defined; these are not, so a
/// seed replays identically across standard libraries.
class DetRng {
 public:
  explicit DetRng(uint64_t seed) : state_(seed != 0 ? seed : 0x9e3779b9) {}

  /// Uniform in [0, n). n must be > 0.
  uint64_t Below(uint64_t n);
  /// Uniform in [lo, hi] inclusive.
  int64_t Between(int64_t lo, int64_t hi);
  /// Uniform in [0, 1).
  double Unit();
  /// Uniform in [lo, hi).
  double BetweenReal(double lo, double hi);
  /// True with probability p.
  bool Chance(double p) { return Unit() < p; }
  /// Raw 64-bit draw (splitmix64); seeds for nested generators.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// One subscription, structured. Rendered to WXQuery text on demand.
struct FuzzQuerySpec {
  enum class Kind {
    kSelection,    // σ + Π: box / threshold predicates, projected return
    kAggregation,  // windowed aggregate with optional result filter
  };

  Kind kind = Kind::kSelection;
  std::string stream = "photons";
  network::NodeId target = 0;

  /// Selection predicates; each side of the sky box is optional so the
  /// shrinker can drop them one at a time.
  std::optional<double> ra_min, ra_max, dec_min, dec_max;
  /// "en >= threshold", optional.
  std::optional<double> en_threshold;
  /// Cross-variable atom "dx <= dy + c" (detector coordinates), optional;
  /// exercises the $v θ $w + c predicate form end to end.
  std::optional<double> det_skew;

  /// Projected item-relative paths (kSelection only). Empty = return the
  /// whole item ($p form).
  std::vector<std::string> projection;

  // kAggregation only:
  /// "count" windows are item-based, "diff" windows ride det_time.
  properties::WindowType window_type = properties::WindowType::kDiff;
  int window_size = 40;
  int window_step = 20;
  std::string agg_func = "avg";  // avg | sum | count | min | max
  /// Result filter "$a >= value", optional (avg streams only, mirroring
  /// the workload generator's constraint).
  std::optional<double> agg_filter;

  /// Renders the spec as WXQuery subscription text.
  std::string ToQueryText() const;
};

/// One original photon stream.
struct FuzzStreamSpec {
  std::string name = "photons";
  network::NodeId source = 0;
  uint64_t gen_seed = 1;
  double frequency_hz = 100.0;
  double det_time_increment_mean = 0.5;
  /// Hot-region weights over the scenario's box pool (same length as
  /// FuzzScenario::boxes; 0 drops a region).
  std::vector<double> hot_weights;

  workload::PhotonGenConfig ToGenConfig() const;
};

/// An undirected connected topology, as edit-friendly data.
struct FuzzTopologySpec {
  int peers = 4;
  std::vector<std::pair<int, int>> links;
  double bandwidth_kbps = 100000.0;
  double max_load = 100000.0;

  Result<network::Topology> Build() const;
};

/// One mid-run failure. After `at_offset` items per stream have been fed,
/// the harness calls System::FailPeer (kFailPeer) or System::CutLink
/// (kCutLink) and keeps feeding — the recovery oracle then checks that
/// every surviving subscription matches a fresh no-failure run over the
/// post-recovery epochs. Events are kept sorted by offset and mutually
/// independent (no peer fails twice, no link is cut twice or after an
/// endpoint died), so replaying them in order can never hit the
/// "already dead / already down" argument errors.
struct FuzzChurnEvent {
  enum class Kind { kFailPeer, kCutLink };

  Kind kind = Kind::kFailPeer;
  int peer = 0;              // kFailPeer
  int link_a = 0, link_b = 0;  // kCutLink
  size_t at_offset = 0;
};

/// A complete differential-test scenario.
struct FuzzScenario {
  uint64_t seed = 0;
  FuzzTopologySpec topology;
  /// Per-scenario sky-box pool; queries and hot regions draw from it.
  std::vector<workload::SkyBox> boxes;
  std::vector<FuzzStreamSpec> streams;
  std::vector<FuzzQuerySpec> queries;
  /// Mid-run failures, sorted by offset; empty for a clean scenario.
  std::vector<FuzzChurnEvent> churn;
  size_t items_per_stream = 200;

  std::string ToString() const;
};

struct GeneratorOptions {
  int min_peers = 3, max_peers = 9;
  int min_streams = 1, max_streams = 2;
  int min_queries = 2, max_queries = 8;
  size_t min_items = 120, max_items = 320;
  /// Probability that a scenario carries churn events at all. The churn
  /// draws happen after every other draw, so at the default 0 a seed's
  /// scenario is bit-identical to what it generated before churn existed.
  /// A scenario that does draw churn additionally gains a few redundancy
  /// links (so failures are survivable, not just fatal) — its clean part
  /// is a superset of, not identical to, the churn-free scenario.
  double churn_probability = 0.0;
  int min_churn_events = 1, max_churn_events = 2;
};

/// Generates scenario `seed` deterministically (same seed + options →
/// bit-identical scenario, across platforms).
FuzzScenario GenerateScenario(uint64_t seed,
                              const GeneratorOptions& options = {});

/// The photon generator configuration of one scenario stream, with the
/// scenario's box pool installed as hot regions per the stream's weights.
workload::PhotonGenConfig StreamGenConfig(const FuzzScenario& scenario,
                                          const FuzzStreamSpec& stream);

}  // namespace streamshare::testing

#endif  // STREAMSHARE_TESTING_FUZZ_SCENARIO_H_
