// The differential oracle. One scenario is executed four ways — serial
// (the reference), parallel workers, transport over loopback pipes, and
// transport over localhost TCP — and every query's sink observations
// (item count, byte count, order-insensitive content hash) are N-way
// diffed. Separately the *sharing* oracle checks the paper's core claim:
// the stream-sharing deployment delivers item-identical results to an
// independent data-shipping evaluation of the same subscriptions, and the
// plan Subscribe chose never costs more than the no-sharing baseline plan
// it was allowed to fall back to.
//
// A divergence is a report, not an error Status: Status is reserved for
// infrastructure failures (a scenario that cannot even be built), so a
// sweep can distinguish "the system disagrees with itself" from "the
// harness broke".

#ifndef STREAMSHARE_TESTING_ORACLE_H_
#define STREAMSHARE_TESTING_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics_registry.h"
#include "testing/fuzz_scenario.h"

namespace streamshare::testing {

/// What one execution mode observed at one query's sink.
struct QueryObservation {
  bool accepted = false;
  std::string registration_error;  // non-empty if RegisterQuery failed
  uint64_t items = 0;
  uint64_t bytes = 0;
  uint64_t content_hash = 0;
};

struct ModeObservation {
  std::string mode;
  std::vector<QueryObservation> queries;
};

struct OracleOptions {
  bool run_parallel = true;
  bool run_loopback = true;
  bool run_tcp = true;
  /// Fork one OS process per partition in the TCP mode (slower; exercises
  /// the cross-process sink-report path).
  bool tcp_processes = false;

  /// Self-test hook: perturbs the named mode's observed content hash and
  /// item count for aggregation queries with window size >= min_window —
  /// a deliberately injected equivalence bug the harness must catch and
  /// shrink (tests/test_fuzz_harness.cc demos this).
  std::string inject_divergence_mode;
  int inject_min_window = 0;

  /// When set, per-scenario divergence counters are folded in:
  /// fuzz.scenarios, fuzz.queries, fuzz.divergences,
  /// fuzz.sharing_violations, fuzz.infra_failures.
  obs::MetricsRegistry* metrics = nullptr;
};

struct OracleReport {
  /// All executor modes agreed with the serial reference.
  bool equivalence_ok = true;
  /// Sharing-vs-baseline results identical and chosen C(P) <= baseline.
  bool sharing_ok = true;
  /// First divergence, human-readable; empty when ok().
  std::string failure;

  std::vector<ModeObservation> modes;
  int accepted = 0;
  uint64_t total_results = 0;
  /// Registrations whose chosen plan reuses a derived (non-original)
  /// stream — how much sharing the scenario actually exercised.
  int shared_reuses = 0;

  bool ok() const { return equivalence_ok && sharing_ok; }
};

/// Executes the scenario under every enabled mode and diffs. Status errors
/// are infrastructure failures only; divergences come back in the report.
Result<OracleReport> RunOracle(const FuzzScenario& scenario,
                               const OracleOptions& options = {});

}  // namespace streamshare::testing

#endif  // STREAMSHARE_TESTING_ORACLE_H_
