// The differential oracle. One scenario is executed four ways — serial
// (the reference), parallel workers, transport over loopback pipes, and
// transport over localhost TCP — and every query's sink observations
// (item count, byte count, order-insensitive content hash) are N-way
// diffed. Separately the *sharing* oracle checks the paper's core claim:
// the stream-sharing deployment delivers item-identical results to an
// independent data-shipping evaluation of the same subscriptions, and the
// plan Subscribe chose never costs more than the no-sharing baseline plan
// it was allowed to fall back to.
//
// Scenarios carrying churn events additionally exercise the *recovery*
// oracle: the same workload is replayed with peers killed / links cut at
// fixed item offsets (serial, parallel, and transport-TCP), and the
// invariant is "gap, not garbage" — every subscription re-planned at the
// last failure must produce post-recovery output item-identical to a
// fresh no-failure run restricted to the post-recovery epochs, every
// untouched subscription must match the clean reference exactly, and
// every torn-down subscription must emit nothing after its terminal
// event.
//
// A divergence is a report, not an error Status: Status is reserved for
// infrastructure failures (a scenario that cannot even be built), so a
// sweep can distinguish "the system disagrees with itself" from "the
// harness broke".

#ifndef STREAMSHARE_TESTING_ORACLE_H_
#define STREAMSHARE_TESTING_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "obs/metrics_registry.h"
#include "testing/fuzz_scenario.h"
#include "transport/flow.h"
#include "transport/tcp.h"

namespace streamshare::testing {

/// What one execution mode observed at one query's sink.
struct QueryObservation {
  bool accepted = false;
  std::string registration_error;  // non-empty if RegisterQuery failed
  uint64_t items = 0;
  uint64_t bytes = 0;
  uint64_t content_hash = 0;
};

struct ModeObservation {
  std::string mode;
  std::vector<QueryObservation> queries;
};

struct OracleOptions {
  bool run_parallel = true;
  bool run_loopback = true;
  bool run_tcp = true;
  /// Fork one OS process per partition in the TCP mode (slower; exercises
  /// the cross-process sink-report path).
  bool tcp_processes = false;

  /// Fifth arm: run the scenario through a live streamshare_serve daemon
  /// + client over localhost TCP (subscriptions via the CONTROL plane,
  /// deliveries via RESULT frames) and diff the client-side accumulation
  /// against the serial reference — churned scenarios diff against the
  /// serial churned run. Real sockets make it the slowest arm, so the
  /// fuzz tool gates it behind --serve.
  bool run_serve = false;

  /// Crash-durability arm: run the scenario through a daemon hosted in a
  /// forked child that SIGKILLs itself at crashpoints derived from the
  /// scenario seed (serve/crashpoint.h), recover each life from
  /// checkpoint + write-ahead log, and diff the client's accumulated
  /// deliveries against the same serial reference the serve arm uses.
  /// The invariant is ARCHITECTURE.md invariant 11: a crash is
  /// indistinguishable from a drain for every acknowledged operation.
  /// Forks real processes, so the fuzz tool gates it behind --crash.
  bool run_crash = false;

  /// Index-vs-BFS differential arm: replay the scenario on a serial
  /// system with the candidate index disabled (the flat per-node registry
  /// walk is Algorithm 1's oracle form) and demand identical planning
  /// outcomes — same acceptance, same reused stream / reuse node /
  /// widening / C(P) per input — and identical sink results. Scenarios
  /// with churn events additionally replay the churned run flat and diff
  /// final observations plus recovery outcomes (ARCHITECTURE.md
  /// invariant 10: the index never changes planning outcomes, only the
  /// set of candidates examined).
  bool run_flat_bfs = false;

  /// Self-test hook: perturbs the named mode's observed content hash and
  /// item count for aggregation queries with window size >= min_window —
  /// a deliberately injected equivalence bug the harness must catch and
  /// shrink (tests/test_fuzz_harness.cc demos this).
  std::string inject_divergence_mode;
  int inject_min_window = 0;

  /// Self-test hook for the recovery oracle: perturbs the named *churned*
  /// mode's final observations, a planted recovery bug that only
  /// reproduces while churn events remain — the shrinker must keep them.
  std::string inject_churn_mode;

  /// Drive the non-reference modes over the compact-record hot path
  /// (default). The serial reference always evaluates on DOM trees, so
  /// with this on every equivalence diff doubles as a DOM-vs-record
  /// differential. Off (the fuzz tool's --dom-path), every mode runs the
  /// DOM path — the pre-record behavior.
  bool record_path = true;

  /// Transport knobs under test: the credit window / timeout / retry
  /// configuration every transport-mode run uses, and the TCP connect
  /// retry policy. Defaults match production; the fuzz tool sweeps them.
  transport::FlowOptions flow;
  transport::TcpOptions tcp;

  /// When set, per-scenario divergence counters are folded in:
  /// fuzz.scenarios, fuzz.queries, fuzz.divergences,
  /// fuzz.sharing_violations, fuzz.recovery_violations,
  /// fuzz.index_violations, fuzz.infra_failures.
  obs::MetricsRegistry* metrics = nullptr;
};

struct OracleReport {
  /// All executor modes agreed with the serial reference.
  bool equivalence_ok = true;
  /// Sharing-vs-baseline results identical and chosen C(P) <= baseline.
  bool sharing_ok = true;
  /// Recovery invariants held under the scenario's churn events: all
  /// churned modes agreed, subscriptions untouched by any failure matched
  /// the no-failure reference exactly, subscriptions re-planned at the
  /// last failure produced post-recovery output item-identical to a fresh
  /// restricted (resume-mode) run, and torn-down subscriptions emitted
  /// nothing after their terminal event. Vacuously true without churn.
  bool recovery_ok = true;
  /// Latency-plane invariants held: a serial run with stamping disabled
  /// is bit-identical (counts, bytes, content hashes) to the stamped
  /// serial reference — stamping changes metrics, never results — and
  /// the stamped reference observed no ingress-tick regression at any
  /// sink (serial feeding is ordered, so measured stamps must be
  /// monotone non-decreasing).
  bool latency_ok = true;
  /// The serve arm's client-side deliveries (counts, bytes, content
  /// hashes and admission outcomes, accumulated over real TCP) matched
  /// the in-process reference for the same scenario. Vacuously true when
  /// the arm is disabled or the scenario has registration errors (the
  /// serve client surfaces those as call failures, not observations).
  bool serve_ok = true;
  /// The crash arm's recovered history (accumulated across however many
  /// kill-9/restart rounds the armed crashpoints caused) matched the
  /// uninterrupted reference byte-for-byte. Vacuously true when the arm
  /// is disabled or skipped (registration errors).
  bool crash_ok = true;
  /// The indexed run and the flat-BFS run planned identically (chosen
  /// plans, acceptance, C(P)) and delivered identical results, clean and
  /// churned. Vacuously true when the arm is disabled.
  bool index_ok = true;
  /// First divergence, human-readable; empty when ok().
  std::string failure;

  std::vector<ModeObservation> modes;
  int accepted = 0;
  uint64_t total_results = 0;
  /// Registrations whose chosen plan reuses a derived (non-original)
  /// stream — how much sharing the scenario actually exercised.
  int shared_reuses = 0;
  /// Churn events the scenario replayed, and how many subscriptions the
  /// recovery runs re-planned / lost across them (serial churned run).
  int churn_events = 0;
  int churn_replans = 0;
  int churn_lost = 0;
  /// Results the stamped serial reference measured latency for (0 when a
  /// scenario delivered nothing; otherwise every delivered item carried
  /// its stamp to the sink).
  uint64_t stamped_results = 0;

  /// Daemon lives / confirmed SIGKILL deaths the crash arm spanned (0
  /// when the arm is off).
  uint64_t crash_lives = 0;
  uint64_t crash_crashes = 0;

  bool ok() const {
    return equivalence_ok && sharing_ok && recovery_ok && latency_ok &&
           serve_ok && crash_ok && index_ok;
  }
};

/// Executes the scenario under every enabled mode and diffs. Status errors
/// are infrastructure failures only; divergences come back in the report.
Result<OracleReport> RunOracle(const FuzzScenario& scenario,
                               const OracleOptions& options = {});

}  // namespace streamshare::testing

#endif  // STREAMSHARE_TESTING_ORACLE_H_
