// Scenario minimization. Given a failing scenario and a predicate that
// re-runs the oracle, Shrink greedily applies reduction passes until a
// fixpoint: drop whole subscriptions (ddmin-style chunks, then singles),
// drop streams, halve the item count, simplify each query (drop optional
// predicates, projection, result filter; shrink windows), and prune
// unreferenced peers. Every accepted step keeps the scenario failing, so
// the result is a minimal reproducer of the same divergence.

#ifndef STREAMSHARE_TESTING_SHRINK_H_
#define STREAMSHARE_TESTING_SHRINK_H_

#include <functional>

#include "testing/fuzz_scenario.h"

namespace streamshare::testing {

/// Returns true when the candidate scenario still exhibits the failure
/// being minimized (divergence or sharing violation). Infrastructure
/// errors count as "does not fail" so shrinking never trades one bug for
/// a different breakage.
using FailurePredicate = std::function<bool(const FuzzScenario&)>;

struct ShrinkStats {
  int predicate_runs = 0;
  int accepted_steps = 0;
};

/// Minimizes `scenario` under `still_fails`. `still_fails(scenario)` must
/// be true on entry; the returned scenario also satisfies it. Runs at
/// most `max_rounds` full passes (each pass is O(queries + predicates)
/// predicate evaluations).
FuzzScenario Shrink(FuzzScenario scenario,
                    const FailurePredicate& still_fails,
                    int max_rounds = 4, ShrinkStats* stats = nullptr);

}  // namespace streamshare::testing

#endif  // STREAMSHARE_TESTING_SHRINK_H_
