#include "testing/oracle.h"

#include <map>
#include <memory>

#include "sharing/system.h"
#include "xml/xml_writer.h"

namespace streamshare::testing {

namespace {

using sharing::ExecutorKind;
using sharing::RegistrationResult;
using sharing::StreamShareSystem;
using sharing::SystemConfig;

/// The photon DTD statistics every scenario stream carries (mirrors
/// workload::BuildSystem's ranges; the generator varies rates and hot
/// regions, not the DTD).
Status InstallStatistics(StreamShareSystem* system,
                         const FuzzStreamSpec& stream,
                         const workload::PhotonGenConfig& gen) {
  auto path = [](const char* text) {
    return xml::Path::Parse(text).value();
  };
  SS_RETURN_IF_ERROR(system->SetRange(stream.name, path("coord/cel/ra"),
                                      {0.0, 360.0}));
  SS_RETURN_IF_ERROR(system->SetRange(stream.name, path("coord/cel/dec"),
                                      {-90.0, 90.0}));
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("en"), {gen.en_min, gen.en_max}));
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("phc"), {0.0, 255.0}));
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("coord/det/dx"), {0.0, 511.0}));
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("coord/det/dy"), {0.0, 511.0}));
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("det_time"), {0.0, 1e9}));
  return system->SetAvgIncrement(stream.name, path("det_time"),
                                 gen.det_time_increment_mean);
}

struct BuiltSystem {
  std::unique_ptr<StreamShareSystem> system;
  std::vector<QueryObservation> registrations;
  /// Scenario query index -> index into system->registrations(), or -1
  /// when RegisterQuery failed outright (failed calls append nothing).
  std::vector<int> registration_index;
};

/// Builds a system for the scenario, registers every stream and query
/// under `strategy`, and enables content hashing on all sinks. Keeps
/// results only when asked (the two serial systems that item-diff).
Result<BuiltSystem> BuildAndRegister(const FuzzScenario& scenario,
                                     sharing::Strategy strategy,
                                     SystemConfig config) {
  SS_ASSIGN_OR_RETURN(network::Topology topology,
                      scenario.topology.Build());
  BuiltSystem built;
  built.system =
      std::make_unique<StreamShareSystem>(std::move(topology), config);
  for (const FuzzStreamSpec& stream : scenario.streams) {
    workload::PhotonGenConfig gen = StreamGenConfig(scenario, stream);
    SS_RETURN_IF_ERROR(built.system->RegisterStream(
        stream.name, workload::PhotonGenerator::Schema(),
        gen.frequency_hz, stream.source));
    SS_RETURN_IF_ERROR(
        InstallStatistics(built.system.get(), stream, gen));
  }
  for (const FuzzQuerySpec& query : scenario.queries) {
    QueryObservation observation;
    Result<RegistrationResult> result = built.system->RegisterQuery(
        query.ToQueryText(), query.target, strategy);
    if (!result.ok()) {
      observation.registration_error = result.status().ToString();
      built.registration_index.push_back(-1);
    } else {
      observation.accepted = result->accepted;
      if (result->sink != nullptr) result->sink->EnableContentHash();
      built.registration_index.push_back(result->query_id);
    }
    built.registrations.push_back(std::move(observation));
  }
  return built;
}

std::map<std::string, std::vector<engine::ItemPtr>> GenerateItems(
    const FuzzScenario& scenario) {
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  for (const FuzzStreamSpec& stream : scenario.streams) {
    workload::PhotonGenerator generator(StreamGenConfig(scenario, stream));
    items[stream.name] = generator.Generate(scenario.items_per_stream);
  }
  return items;
}

/// Folds the post-run sink state into the registration observations.
void Observe(const BuiltSystem& built, ModeObservation* mode) {
  mode->queries = built.registrations;
  const std::vector<RegistrationResult>& registrations =
      built.system->registrations();
  for (size_t q = 0; q < mode->queries.size(); ++q) {
    int index = built.registration_index[q];
    if (index < 0) continue;
    const engine::SinkOp* sink = registrations[index].sink;
    if (sink == nullptr) continue;
    mode->queries[q].items = sink->item_count();
    mode->queries[q].bytes = sink->total_bytes();
    mode->queries[q].content_hash = sink->content_hash();
  }
}

std::string DescribeQuery(const FuzzScenario& scenario, size_t q) {
  return "q" + std::to_string(q) + " [" +
         scenario.queries[q].ToQueryText() + "]";
}

}  // namespace

Result<OracleReport> RunOracle(const FuzzScenario& scenario,
                               const OracleOptions& options) {
  OracleReport report;
  auto fail = [&report](std::string message) {
    if (report.failure.empty()) report.failure = std::move(message);
  };

  std::map<std::string, std::vector<engine::ItemPtr>> items =
      GenerateItems(scenario);

  // --- Reference: stream sharing, serial executor, kept results. -------
  SystemConfig serial_config;
  serial_config.keep_results = true;
  SS_ASSIGN_OR_RETURN(
      BuiltSystem reference,
      BuildAndRegister(scenario, sharing::Strategy::kStreamSharing,
                       serial_config));
  SS_RETURN_IF_ERROR(reference.system->Run(items));
  ModeObservation reference_mode;
  reference_mode.mode = "serial";
  Observe(reference, &reference_mode);
  report.modes.push_back(reference_mode);

  for (const QueryObservation& query : reference_mode.queries) {
    if (query.accepted) ++report.accepted;
    report.total_results += query.items;
  }
  for (const RegistrationResult& registration :
       reference.system->registrations()) {
    if (!registration.accepted || registration.plan.inputs.empty()) {
      continue;
    }
    bool derived = false;
    for (const sharing::InputPlan& input : registration.plan.inputs) {
      if (input.reused_stream >= 0 &&
          !reference.system->registry()
               .stream(input.reused_stream)
               .IsOriginal()) {
        derived = true;
      }
    }
    if (derived) ++report.shared_reuses;
  }

  // --- The other three executor modes. ---------------------------------
  struct ModeSpec {
    const char* name;
    ExecutorKind executor;
    const char* transport;
    bool processes;
  };
  std::vector<ModeSpec> mode_specs;
  if (options.run_parallel) {
    mode_specs.push_back({"parallel", ExecutorKind::kParallel, "", false});
  }
  if (options.run_loopback) {
    mode_specs.push_back(
        {"transport-loopback", ExecutorKind::kTransport, "loopback",
         false});
  }
  if (options.run_tcp) {
    mode_specs.push_back({"transport-tcp", ExecutorKind::kTransport, "tcp",
                          options.tcp_processes});
  }

  for (const ModeSpec& spec : mode_specs) {
    SystemConfig config;  // no keep_results: counts/bytes/hashes suffice
    config.executor = spec.executor;
    if (spec.transport[0] != '\0') {
      config.transport = spec.transport;
      config.transport_processes = spec.processes;
    }
    SS_ASSIGN_OR_RETURN(
        BuiltSystem built,
        BuildAndRegister(scenario, sharing::Strategy::kStreamSharing,
                         config));
    Status run_status = spec.executor == ExecutorKind::kTransport
                            ? built.system->RunTransport(items)
                            : built.system->RunParallel(items);
    SS_RETURN_IF_ERROR(run_status.WithContext(spec.name));
    ModeObservation mode;
    mode.mode = spec.name;
    Observe(built, &mode);

    if (!options.inject_divergence_mode.empty() &&
        options.inject_divergence_mode == spec.name) {
      // Deliberate equivalence bug (self-test): aggregation queries with
      // a big enough window report one item too few and a skewed hash.
      for (size_t q = 0; q < mode.queries.size(); ++q) {
        const FuzzQuerySpec& query = scenario.queries[q];
        if (query.kind == FuzzQuerySpec::Kind::kAggregation &&
            query.window_size >= options.inject_min_window &&
            mode.queries[q].items > 0) {
          mode.queries[q].items -= 1;
          mode.queries[q].content_hash ^= 0xDEADBEEF;
        }
      }
    }
    report.modes.push_back(std::move(mode));
  }

  // --- N-way diff against the serial reference. ------------------------
  for (size_t m = 1; m < report.modes.size(); ++m) {
    const ModeObservation& mode = report.modes[m];
    for (size_t q = 0; q < mode.queries.size(); ++q) {
      const QueryObservation& expected = reference_mode.queries[q];
      const QueryObservation& actual = mode.queries[q];
      if (expected.accepted != actual.accepted ||
          expected.registration_error != actual.registration_error) {
        report.equivalence_ok = false;
        fail(mode.mode + ": registration outcome diverged on " +
             DescribeQuery(scenario, q));
        continue;
      }
      if (expected.items != actual.items ||
          expected.bytes != actual.bytes ||
          expected.content_hash != actual.content_hash) {
        report.equivalence_ok = false;
        fail(mode.mode + ": results diverged on " +
             DescribeQuery(scenario, q) + " — serial items=" +
             std::to_string(expected.items) + " bytes=" +
             std::to_string(expected.bytes) + " hash=" +
             std::to_string(expected.content_hash) + ", " + mode.mode +
             " items=" + std::to_string(actual.items) + " bytes=" +
             std::to_string(actual.bytes) + " hash=" +
             std::to_string(actual.content_hash));
      }
    }
  }

  // --- Sharing oracle: item-identical to data shipping, C(P) no worse. --
  SS_ASSIGN_OR_RETURN(
      BuiltSystem baseline,
      BuildAndRegister(scenario, sharing::Strategy::kDataShipping,
                       serial_config));
  SS_RETURN_IF_ERROR(baseline.system->Run(items));

  const auto& all_shared_regs = reference.system->registrations();
  const auto& all_baseline_regs = baseline.system->registrations();
  for (size_t q = 0; q < scenario.queries.size(); ++q) {
    int shared_index = reference.registration_index[q];
    int baseline_index = baseline.registration_index[q];
    if ((shared_index < 0) != (baseline_index < 0)) {
      report.sharing_ok = false;
      fail("sharing oracle: " + DescribeQuery(scenario, q) +
           " registration outcome differs between sharing and data "
           "shipping");
      continue;
    }
    if (shared_index < 0) continue;
    const RegistrationResult& shared_reg = all_shared_regs[shared_index];
    const RegistrationResult& baseline_reg =
        all_baseline_regs[baseline_index];
    if (shared_reg.sink == nullptr || baseline_reg.sink == nullptr) {
      continue;
    }
    const auto& shared_items = shared_reg.sink->items();
    const auto& baseline_items = baseline_reg.sink->items();
    if (shared_items.size() != baseline_items.size()) {
      report.sharing_ok = false;
      fail("sharing oracle: " + DescribeQuery(scenario, q) +
           " delivered " + std::to_string(shared_items.size()) +
           " items shared vs " + std::to_string(baseline_items.size()) +
           " items independent");
      continue;
    }
    for (size_t i = 0; i < shared_items.size(); ++i) {
      if (!shared_items[i]->Equals(*baseline_items[i])) {
        report.sharing_ok = false;
        fail("sharing oracle: " + DescribeQuery(scenario, q) + " item " +
             std::to_string(i) + " differs — shared " +
             xml::WriteCompact(*shared_items[i]) + " vs independent " +
             xml::WriteCompact(*baseline_items[i]));
        break;
      }
    }

    // Plan-cost half: the chosen plan must never beat the fallback it
    // displaced on price. Per input stream: chosen C(P) <= baseline C(P).
    std::map<std::string, double> baseline_cost;
    for (const sharing::CandidatePlanInfo& candidate :
         shared_reg.search.candidates) {
      if (candidate.baseline) {
        baseline_cost.emplace(candidate.input_stream, candidate.cost);
      }
    }
    for (const sharing::CandidatePlanInfo& candidate :
         shared_reg.search.candidates) {
      if (!candidate.chosen) continue;
      auto it = baseline_cost.find(candidate.input_stream);
      if (it == baseline_cost.end()) continue;
      // Allow for FP noise in cost accumulation; a real regression is
      // orders of magnitude above this.
      if (candidate.cost > it->second * (1.0 + 1e-9) + 1e-12) {
        report.sharing_ok = false;
        fail("sharing oracle: " + DescribeQuery(scenario, q) +
             " chose a plan with C(P)=" + std::to_string(candidate.cost) +
             " over a cheaper no-sharing baseline C(P)=" +
             std::to_string(it->second));
      }
    }
  }

  if (options.metrics != nullptr) {
    options.metrics->GetCounter("fuzz.scenarios")->Add(1);
    options.metrics->GetCounter("fuzz.queries")
        ->Add(scenario.queries.size());
    if (!report.equivalence_ok) {
      options.metrics->GetCounter("fuzz.divergences")->Add(1);
    }
    if (!report.sharing_ok) {
      options.metrics->GetCounter("fuzz.sharing_violations")->Add(1);
    }
  }
  return report;
}

}  // namespace streamshare::testing
