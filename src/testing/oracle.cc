#include "testing/oracle.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <tuple>

#include <unistd.h>

#include <cstdio>
#include <cstring>

#include "serve/crash_oracle.h"
#include "serve/crashpoint.h"
#include "serve/serve_oracle.h"
#include "serve/wal.h"
#include "sharing/system.h"
#include "xml/xml_writer.h"

namespace streamshare::testing {

namespace {

using sharing::ExecutorKind;
using sharing::RegistrationResult;
using sharing::StreamShareSystem;
using sharing::SystemConfig;

/// The photon DTD statistics every scenario stream carries (mirrors
/// workload::BuildSystem's ranges; the generator varies rates and hot
/// regions, not the DTD).
Status InstallStatistics(StreamShareSystem* system,
                         const FuzzStreamSpec& stream,
                         const workload::PhotonGenConfig& gen) {
  auto path = [](const char* text) {
    return xml::Path::Parse(text).value();
  };
  SS_RETURN_IF_ERROR(system->SetRange(stream.name, path("coord/cel/ra"),
                                      {0.0, 360.0}));
  SS_RETURN_IF_ERROR(system->SetRange(stream.name, path("coord/cel/dec"),
                                      {-90.0, 90.0}));
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("en"), {gen.en_min, gen.en_max}));
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("phc"), {0.0, 255.0}));
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("coord/det/dx"), {0.0, 511.0}));
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("coord/det/dy"), {0.0, 511.0}));
  SS_RETURN_IF_ERROR(
      system->SetRange(stream.name, path("det_time"), {0.0, 1e9}));
  return system->SetAvgIncrement(stream.name, path("det_time"),
                                 gen.det_time_increment_mean);
}

struct BuiltSystem {
  std::unique_ptr<StreamShareSystem> system;
  std::vector<QueryObservation> registrations;
  /// Scenario query index -> index into system->registrations(), or -1
  /// when RegisterQuery failed outright (failed calls append nothing).
  std::vector<int> registration_index;
};

/// Builds a system for the scenario, registers every stream and query
/// under `strategy`, and enables content hashing on all sinks. Keeps
/// results only when asked (the two serial systems that item-diff).
/// The transport knobs under test ride along in every config so the
/// transport-mode runs exercise them.
Result<BuiltSystem> BuildAndRegister(const FuzzScenario& scenario,
                                     sharing::Strategy strategy,
                                     SystemConfig config,
                                     const OracleOptions& options) {
  config.flow = options.flow;
  config.tcp = options.tcp;
  SS_ASSIGN_OR_RETURN(network::Topology topology,
                      scenario.topology.Build());
  BuiltSystem built;
  built.system =
      std::make_unique<StreamShareSystem>(std::move(topology), config);
  for (const FuzzStreamSpec& stream : scenario.streams) {
    workload::PhotonGenConfig gen = StreamGenConfig(scenario, stream);
    SS_RETURN_IF_ERROR(built.system->RegisterStream(
        stream.name, workload::PhotonGenerator::Schema(),
        gen.frequency_hz, stream.source));
    SS_RETURN_IF_ERROR(
        InstallStatistics(built.system.get(), stream, gen));
  }
  for (const FuzzQuerySpec& query : scenario.queries) {
    QueryObservation observation;
    Result<RegistrationResult> result = built.system->RegisterQuery(
        query.ToQueryText(), query.target, strategy);
    if (!result.ok()) {
      observation.registration_error = result.status().ToString();
      built.registration_index.push_back(-1);
    } else {
      observation.accepted = result->accepted;
      if (result->sink != nullptr) result->sink->EnableContentHash();
      built.registration_index.push_back(result->query_id);
    }
    built.registrations.push_back(std::move(observation));
  }
  return built;
}

std::map<std::string, std::vector<engine::ItemPtr>> GenerateItems(
    const FuzzScenario& scenario) {
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  for (const FuzzStreamSpec& stream : scenario.streams) {
    workload::PhotonGenerator generator(StreamGenConfig(scenario, stream));
    items[stream.name] = generator.Generate(scenario.items_per_stream);
  }
  return items;
}

/// Folds the post-run sink state into the registration observations.
void Observe(const BuiltSystem& built, ModeObservation* mode) {
  mode->queries = built.registrations;
  const std::vector<RegistrationResult>& registrations =
      built.system->registrations();
  for (size_t q = 0; q < mode->queries.size(); ++q) {
    int index = built.registration_index[q];
    if (index < 0) continue;
    const engine::SinkOp* sink = registrations[index].sink;
    if (sink == nullptr) continue;
    mode->queries[q].items = sink->item_count();
    mode->queries[q].bytes = sink->total_bytes();
    mode->queries[q].content_hash = sink->content_hash();
  }
}

std::string DescribeQuery(const FuzzScenario& scenario, size_t q) {
  return "q" + std::to_string(q) + " [" +
         scenario.queries[q].ToQueryText() + "]";
}

// ------------------------------------------------------- churn machinery

/// Per-stream sub-batches [from, to) of the full item lists.
std::map<std::string, std::vector<engine::ItemPtr>> SliceItems(
    const std::map<std::string, std::vector<engine::ItemPtr>>& items,
    size_t from, size_t to) {
  std::map<std::string, std::vector<engine::ItemPtr>> slice;
  for (const auto& [name, list] : items) {
    size_t hi = std::min(to, list.size());
    size_t lo = std::min(from, hi);
    slice[name].assign(list.begin() + lo, list.begin() + hi);
  }
  return slice;
}

Status ApplyChurn(StreamShareSystem* system, const FuzzChurnEvent& event) {
  if (event.kind == FuzzChurnEvent::Kind::kFailPeer) {
    return system->FailPeer(event.peer).status();
  }
  return system->CutLink(event.link_a, event.link_b).status();
}

/// One churned execution: the scenario's items fed in segments with the
/// churn events applied at their offsets, plus what every sink held right
/// after each recovery completed (the epoch boundaries the invariants
/// diff against).
struct ChurnRun {
  ModeObservation final_mode;
  /// after_event[j][q]: query q's sink right after event j's recovery.
  std::vector<std::vector<QueryObservation>> after_event;
  std::vector<recover::RecoveryReport> reports;
  /// Scenario query index -> query id (as BuiltSystem::registration_index).
  std::vector<int> registration_index;
};

Result<ChurnRun> RunChurned(
    const FuzzScenario& scenario,
    const std::map<std::string, std::vector<engine::ItemPtr>>& items,
    SystemConfig config, const char* name, const OracleOptions& options) {
  SS_ASSIGN_OR_RETURN(
      BuiltSystem built,
      BuildAndRegister(scenario, sharing::Strategy::kStreamSharing,
                       config, options));
  ChurnRun run;
  size_t fed = 0;
  for (const FuzzChurnEvent& event : scenario.churn) {
    size_t upto = std::min(event.at_offset, scenario.items_per_stream);
    if (upto > fed) {
      SS_RETURN_IF_ERROR(
          built.system->Feed(SliceItems(items, fed, upto))
              .WithContext(name));
      fed = upto;
    }
    SS_RETURN_IF_ERROR(ApplyChurn(built.system.get(), event)
                           .WithContext(name));
    ModeObservation snapshot;
    Observe(built, &snapshot);
    run.after_event.push_back(std::move(snapshot.queries));
  }
  if (fed < scenario.items_per_stream) {
    SS_RETURN_IF_ERROR(
        built.system->Feed(SliceItems(items, fed,
                                      scenario.items_per_stream))
            .WithContext(name));
  }
  SS_RETURN_IF_ERROR(built.system->Shutdown().WithContext(name));
  run.final_mode.mode = name;
  Observe(built, &run.final_mode);
  run.reports = built.system->recovery_reports();
  run.registration_index = built.registration_index;
  return run;
}

/// The serve arm hosts a ScenarioSpec, not a FuzzScenario; render the
/// fuzz form down. workload::BuildSystem installs the same statistics as
/// InstallStatistics above (identical ranges, en from the gen config), so
/// the daemon's planner sees exactly what the in-process arms saw.
Result<workload::ScenarioSpec> ToScenarioSpec(
    const FuzzScenario& scenario) {
  workload::ScenarioSpec spec;
  spec.name = "fuzz-" + std::to_string(scenario.seed);
  SS_ASSIGN_OR_RETURN(spec.topology, scenario.topology.Build());
  for (const FuzzStreamSpec& stream : scenario.streams) {
    workload::StreamSpec out;
    out.name = stream.name;
    out.source = stream.source;
    out.gen = StreamGenConfig(scenario, stream);
    spec.streams.push_back(std::move(out));
  }
  for (const FuzzQuerySpec& query : scenario.queries) {
    spec.queries.push_back({query.ToQueryText(), query.target});
  }
  return spec;
}

workload::ChurnEvent ToWorkloadChurn(const FuzzChurnEvent& event) {
  workload::ChurnEvent out;
  out.kind = event.kind == FuzzChurnEvent::Kind::kFailPeer
                 ? workload::ChurnEvent::Kind::kFailPeer
                 : workload::ChurnEvent::Kind::kCutLink;
  out.peer = event.peer;
  out.link_a = event.link_a;
  out.link_b = event.link_b;
  out.at_offset = event.at_offset;
  return out;
}

bool SameObservation(const QueryObservation& a, const QueryObservation& b) {
  return a.accepted == b.accepted && a.items == b.items &&
         a.bytes == b.bytes && a.content_hash == b.content_hash;
}

std::string ObservationString(const QueryObservation& o) {
  return "items=" + std::to_string(o.items) + " bytes=" +
         std::to_string(o.bytes) + " hash=" +
         std::to_string(o.content_hash);
}

}  // namespace

Result<OracleReport> RunOracle(const FuzzScenario& scenario,
                               const OracleOptions& options) {
  OracleReport report;
  auto fail = [&report](std::string message) {
    if (report.failure.empty()) report.failure = std::move(message);
  };

  std::map<std::string, std::vector<engine::ItemPtr>> items =
      GenerateItems(scenario);

  // --- Reference: stream sharing, serial executor, kept results. The
  // reference always runs the per-item DOM path, so when the other modes
  // run the record path the N-way diff is also the DOM-vs-record
  // differential. -------------------------------------------------------
  SystemConfig serial_config;
  serial_config.keep_results = true;
  serial_config.record_path = false;
  SS_ASSIGN_OR_RETURN(
      BuiltSystem reference,
      BuildAndRegister(scenario, sharing::Strategy::kStreamSharing,
                       serial_config, options));
  SS_RETURN_IF_ERROR(reference.system->Run(items));
  ModeObservation reference_mode;
  reference_mode.mode = "serial";
  Observe(reference, &reference_mode);
  report.modes.push_back(reference_mode);

  for (const QueryObservation& query : reference_mode.queries) {
    if (query.accepted) ++report.accepted;
    report.total_results += query.items;
  }
  for (const RegistrationResult& registration :
       reference.system->registrations()) {
    if (!registration.accepted || registration.plan.inputs.empty()) {
      continue;
    }
    bool derived = false;
    for (const sharing::InputPlan& input : registration.plan.inputs) {
      if (input.reused_stream >= 0 &&
          !reference.system->registry()
               .stream(input.reused_stream)
               .IsOriginal()) {
        derived = true;
      }
    }
    if (derived) ++report.shared_reuses;
  }

  // --- The other three executor modes. ---------------------------------
  struct ModeSpec {
    const char* name;
    ExecutorKind executor;
    const char* transport;
    bool processes;
  };
  std::vector<ModeSpec> mode_specs;
  if (options.run_parallel) {
    mode_specs.push_back({"parallel", ExecutorKind::kParallel, "", false});
  }
  if (options.run_loopback) {
    mode_specs.push_back(
        {"transport-loopback", ExecutorKind::kTransport, "loopback",
         false});
  }
  if (options.run_tcp) {
    mode_specs.push_back({"transport-tcp", ExecutorKind::kTransport, "tcp",
                          options.tcp_processes});
  }

  for (const ModeSpec& spec : mode_specs) {
    SystemConfig config;  // no keep_results: counts/bytes/hashes suffice
    config.executor = spec.executor;
    config.record_path = options.record_path;
    if (spec.transport[0] != '\0') {
      config.transport = spec.transport;
      config.transport_processes = spec.processes;
    }
    SS_ASSIGN_OR_RETURN(
        BuiltSystem built,
        BuildAndRegister(scenario, sharing::Strategy::kStreamSharing,
                         config, options));
    Status run_status = spec.executor == ExecutorKind::kTransport
                            ? built.system->RunTransport(items)
                            : built.system->RunParallel(items);
    SS_RETURN_IF_ERROR(run_status.WithContext(spec.name));
    ModeObservation mode;
    mode.mode = spec.name;
    Observe(built, &mode);

    if (!options.inject_divergence_mode.empty() &&
        options.inject_divergence_mode == spec.name) {
      // Deliberate equivalence bug (self-test): aggregation queries with
      // a big enough window report one item too few and a skewed hash.
      for (size_t q = 0; q < mode.queries.size(); ++q) {
        const FuzzQuerySpec& query = scenario.queries[q];
        if (query.kind == FuzzQuerySpec::Kind::kAggregation &&
            query.window_size >= options.inject_min_window &&
            mode.queries[q].items > 0) {
          mode.queries[q].items -= 1;
          mode.queries[q].content_hash ^= 0xDEADBEEF;
        }
      }
    }
    report.modes.push_back(std::move(mode));
  }

  // --- N-way diff against the serial reference. ------------------------
  for (size_t m = 1; m < report.modes.size(); ++m) {
    const ModeObservation& mode = report.modes[m];
    for (size_t q = 0; q < mode.queries.size(); ++q) {
      const QueryObservation& expected = reference_mode.queries[q];
      const QueryObservation& actual = mode.queries[q];
      if (expected.accepted != actual.accepted ||
          expected.registration_error != actual.registration_error) {
        report.equivalence_ok = false;
        fail(mode.mode + ": registration outcome diverged on " +
             DescribeQuery(scenario, q));
        continue;
      }
      if (expected.items != actual.items ||
          expected.bytes != actual.bytes ||
          expected.content_hash != actual.content_hash) {
        report.equivalence_ok = false;
        fail(mode.mode + ": results diverged on " +
             DescribeQuery(scenario, q) + " — serial items=" +
             std::to_string(expected.items) + " bytes=" +
             std::to_string(expected.bytes) + " hash=" +
             std::to_string(expected.content_hash) + ", " + mode.mode +
             " items=" + std::to_string(actual.items) + " bytes=" +
             std::to_string(actual.bytes) + " hash=" +
             std::to_string(actual.content_hash));
      }
    }
  }

  // --- Latency-plane oracle: stamping must never change results. -------
  // The reference above ran with stamping on (the default). Re-run it
  // with measure_latency off and demand bit-identical sink observations;
  // then check the stamped reference itself saw monotone ingress ticks
  // (serial feeding is ordered) and never stamped more than it delivered.
  {
    SystemConfig unstamped_config = serial_config;
    unstamped_config.measure_latency = false;
    SS_ASSIGN_OR_RETURN(
        BuiltSystem unstamped,
        BuildAndRegister(scenario, sharing::Strategy::kStreamSharing,
                         unstamped_config, options));
    SS_RETURN_IF_ERROR(
        unstamped.system->Run(items).WithContext("serial-unstamped"));
    ModeObservation unstamped_mode;
    unstamped_mode.mode = "serial-unstamped";
    Observe(unstamped, &unstamped_mode);
    for (size_t q = 0; q < unstamped_mode.queries.size(); ++q) {
      if (!SameObservation(reference_mode.queries[q],
                           unstamped_mode.queries[q])) {
        report.latency_ok = false;
        fail("latency oracle: stamping changed results on " +
             DescribeQuery(scenario, q) + " — stamped " +
             ObservationString(reference_mode.queries[q]) +
             ", unstamped " +
             ObservationString(unstamped_mode.queries[q]));
      }
    }
    for (const RegistrationResult& registration :
         reference.system->registrations()) {
      if (!registration.accepted || registration.sink == nullptr) continue;
      report.stamped_results += registration.sink->stamped_count();
      if (registration.sink->stamp_regressions() != 0) {
        report.latency_ok = false;
        fail("latency oracle: q" +
             std::to_string(registration.query_id) + " observed " +
             std::to_string(registration.sink->stamp_regressions()) +
             " ingress-tick regressions on the serial reference");
      }
      // Every stamp belongs to a delivered item. Strict equality would be
      // wrong for windowed queries: windows flushed at Finish are emitted
      // after the feeding scopes unwind and are deliberately unstamped.
      if (registration.sink->stamped_count() >
          registration.sink->item_count()) {
        report.latency_ok = false;
        fail("latency oracle: q" +
             std::to_string(registration.query_id) + " stamped " +
             std::to_string(registration.sink->stamped_count()) + " of " +
             std::to_string(registration.sink->item_count()) +
             " delivered items on the serial reference");
      }
    }
  }

  // --- Sharing oracle: item-identical to data shipping, C(P) no worse. --
  SS_ASSIGN_OR_RETURN(
      BuiltSystem baseline,
      BuildAndRegister(scenario, sharing::Strategy::kDataShipping,
                       serial_config, options));
  SS_RETURN_IF_ERROR(baseline.system->Run(items));

  const auto& all_shared_regs = reference.system->registrations();
  const auto& all_baseline_regs = baseline.system->registrations();
  for (size_t q = 0; q < scenario.queries.size(); ++q) {
    int shared_index = reference.registration_index[q];
    int baseline_index = baseline.registration_index[q];
    if ((shared_index < 0) != (baseline_index < 0)) {
      report.sharing_ok = false;
      fail("sharing oracle: " + DescribeQuery(scenario, q) +
           " registration outcome differs between sharing and data "
           "shipping");
      continue;
    }
    if (shared_index < 0) continue;
    const RegistrationResult& shared_reg = all_shared_regs[shared_index];
    const RegistrationResult& baseline_reg =
        all_baseline_regs[baseline_index];
    if (shared_reg.sink == nullptr || baseline_reg.sink == nullptr) {
      continue;
    }
    const auto& shared_items = shared_reg.sink->items();
    const auto& baseline_items = baseline_reg.sink->items();
    if (shared_items.size() != baseline_items.size()) {
      report.sharing_ok = false;
      fail("sharing oracle: " + DescribeQuery(scenario, q) +
           " delivered " + std::to_string(shared_items.size()) +
           " items shared vs " + std::to_string(baseline_items.size()) +
           " items independent");
      continue;
    }
    for (size_t i = 0; i < shared_items.size(); ++i) {
      if (!shared_items[i]->Equals(*baseline_items[i])) {
        report.sharing_ok = false;
        fail("sharing oracle: " + DescribeQuery(scenario, q) + " item " +
             std::to_string(i) + " differs — shared " +
             xml::WriteCompact(*shared_items[i]) + " vs independent " +
             xml::WriteCompact(*baseline_items[i]));
        break;
      }
    }

    // Plan-cost half: the chosen plan must never beat the fallback it
    // displaced on price. Per input stream: chosen C(P) <= baseline C(P).
    std::map<std::string, double> baseline_cost;
    for (const sharing::CandidatePlanInfo& candidate :
         shared_reg.search.candidates) {
      if (candidate.baseline) {
        baseline_cost.emplace(candidate.input_stream, candidate.cost);
      }
    }
    for (const sharing::CandidatePlanInfo& candidate :
         shared_reg.search.candidates) {
      if (!candidate.chosen) continue;
      auto it = baseline_cost.find(candidate.input_stream);
      if (it == baseline_cost.end()) continue;
      // Allow for FP noise in cost accumulation; a real regression is
      // orders of magnitude above this.
      if (candidate.cost > it->second * (1.0 + 1e-9) + 1e-12) {
        report.sharing_ok = false;
        fail("sharing oracle: " + DescribeQuery(scenario, q) +
             " chose a plan with C(P)=" + std::to_string(candidate.cost) +
             " over a cheaper no-sharing baseline C(P)=" +
             std::to_string(it->second));
      }
    }
  }

  // --- Index-vs-BFS arm: the candidate index must never change planning
  // outcomes, only the set of candidates examined (ARCHITECTURE.md
  // invariant 10). Replay the registrations on a flat-BFS system and
  // demand identical chosen plans and identical delivered results; the
  // indexed run's generated candidates must be a subset of the flat
  // walk's, and its examination count no larger. -------------------------
  if (options.run_flat_bfs) {
    auto index_fail = [&](std::string message) {
      report.index_ok = false;
      fail("index oracle: " + std::move(message));
    };
    SystemConfig flat_config = serial_config;
    flat_config.candidate_index = false;
    SS_ASSIGN_OR_RETURN(
        BuiltSystem flat,
        BuildAndRegister(scenario, sharing::Strategy::kStreamSharing,
                         flat_config, options));
    const auto& indexed_regs = reference.system->registrations();
    const auto& flat_regs = flat.system->registrations();
    for (size_t q = 0; q < scenario.queries.size(); ++q) {
      int indexed_id = reference.registration_index[q];
      int flat_id = flat.registration_index[q];
      if ((indexed_id < 0) != (flat_id < 0)) {
        index_fail(DescribeQuery(scenario, q) +
                   " registration outcome differs between indexed and "
                   "flat lookup");
        continue;
      }
      if (indexed_id < 0) continue;
      const RegistrationResult& indexed = indexed_regs[indexed_id];
      const RegistrationResult& walked = flat_regs[flat_id];
      if (indexed.accepted != walked.accepted) {
        index_fail(DescribeQuery(scenario, q) +
                   " admission diverged — indexed accepted=" +
                   std::to_string(indexed.accepted) + ", flat accepted=" +
                   std::to_string(walked.accepted));
        continue;
      }
      if (indexed.plan.inputs.size() != walked.plan.inputs.size()) {
        index_fail(DescribeQuery(scenario, q) + " chose " +
                   std::to_string(indexed.plan.inputs.size()) +
                   " input plans indexed vs " +
                   std::to_string(walked.plan.inputs.size()) + " flat");
        continue;
      }
      for (size_t i = 0; i < indexed.plan.inputs.size(); ++i) {
        const sharing::InputPlan& a = indexed.plan.inputs[i];
        const sharing::InputPlan& b = walked.plan.inputs[i];
        // Both runs cost identical plans with identical arithmetic, so
        // C(P) must agree to the bit, not just within tolerance.
        if (a.reused_stream != b.reused_stream ||
            a.reuse_node != b.reuse_node ||
            a.widening.has_value() != b.widening.has_value() ||
            a.cost != b.cost || a.feasible != b.feasible) {
          index_fail(
              DescribeQuery(scenario, q) + " input " + a.input_stream_name +
              ": chosen plan diverged — indexed reuses stream " +
              std::to_string(a.reused_stream) + " at node " +
              std::to_string(a.reuse_node) + " C(P)=" +
              std::to_string(a.cost) + ", flat reuses stream " +
              std::to_string(b.reused_stream) + " at node " +
              std::to_string(b.reuse_node) + " C(P)=" +
              std::to_string(b.cost));
        }
      }
      if (indexed.search.candidates_examined >
          walked.search.candidates_examined) {
        index_fail(DescribeQuery(scenario, q) + ": indexed lookup examined " +
                   std::to_string(indexed.search.candidates_examined) +
                   " candidates, more than the flat walk's " +
                   std::to_string(walked.search.candidates_examined));
      }
      std::set<std::tuple<std::string, network::StreamId,
                          network::NodeId, bool>>
          flat_candidates;
      for (const sharing::CandidatePlanInfo& candidate :
           walked.search.candidates) {
        flat_candidates.emplace(candidate.input_stream,
                                candidate.reused_stream,
                                candidate.reuse_node, candidate.widening);
      }
      for (const sharing::CandidatePlanInfo& candidate :
           indexed.search.candidates) {
        if (flat_candidates.count({candidate.input_stream,
                                   candidate.reused_stream,
                                   candidate.reuse_node,
                                   candidate.widening}) == 0) {
          index_fail(DescribeQuery(scenario, q) +
                     ": indexed search generated a candidate the flat "
                     "walk never saw — stream " +
                     std::to_string(candidate.reused_stream) + " at node " +
                     std::to_string(candidate.reuse_node));
        }
      }
    }
    SS_RETURN_IF_ERROR(flat.system->Run(items).WithContext("serial-flat"));
    ModeObservation flat_mode;
    flat_mode.mode = "serial-flat-bfs";
    Observe(flat, &flat_mode);
    for (size_t q = 0; q < flat_mode.queries.size(); ++q) {
      if (!SameObservation(reference_mode.queries[q],
                           flat_mode.queries[q])) {
        index_fail("results diverged on " + DescribeQuery(scenario, q) +
                   " — indexed " +
                   ObservationString(reference_mode.queries[q]) +
                   ", flat " + ObservationString(flat_mode.queries[q]));
      }
    }
    report.modes.push_back(std::move(flat_mode));
  }

  // --- Recovery oracle: replay with churn and diff the epochs. ----------
  if (!scenario.churn.empty()) {
    report.churn_events = static_cast<int>(scenario.churn.size());
    auto recovery_fail = [&](std::string message) {
      report.recovery_ok = false;
      fail("recovery oracle: " + std::move(message));
    };

    struct ChurnSpec {
      const char* name;
      ExecutorKind executor;
      const char* transport;
      /// Disable the candidate index (the flat-BFS churn differential:
      /// install/GC/recovery index maintenance must keep planning
      /// outcomes identical through failures).
      bool flat = false;
    };
    std::vector<ChurnSpec> churn_specs = {
        {"serial+churn", ExecutorKind::kSerial, ""}};
    if (options.run_parallel) {
      churn_specs.push_back(
          {"parallel+churn", ExecutorKind::kParallel, ""});
    }
    if (options.run_tcp) {
      // Threads, not processes: segmented Feed needs the window state to
      // live in one address space across segments.
      churn_specs.push_back(
          {"transport-tcp+churn", ExecutorKind::kTransport, "tcp"});
    }
    if (options.run_flat_bfs) {
      churn_specs.push_back(
          {"serial-flat+churn", ExecutorKind::kSerial, "", true});
    }

    std::vector<ChurnRun> runs;
    for (const ChurnSpec& spec : churn_specs) {
      SystemConfig config;
      config.executor = spec.executor;
      config.record_path = options.record_path &&
                           spec.executor != ExecutorKind::kSerial;
      config.candidate_index = !spec.flat;
      if (spec.transport[0] != '\0') config.transport = spec.transport;
      SS_ASSIGN_OR_RETURN(
          ChurnRun run,
          RunChurned(scenario, items, config, spec.name, options));
      if (!options.inject_churn_mode.empty() &&
          options.inject_churn_mode == spec.name) {
        // Planted recovery bug (self-test): the mode under-reports — a
        // failure that only exists while churn events remain, so the
        // shrinker must preserve them.
        for (QueryObservation& query : run.final_mode.queries) {
          if (query.items > 0) {
            query.items -= 1;
            query.content_hash ^= 0xBADC0DEull;
          }
        }
      }
      report.modes.push_back(run.final_mode);
      runs.push_back(std::move(run));
    }

    const ChurnRun& serial_churn = runs.front();
    for (const recover::RecoveryReport& event : serial_churn.reports) {
      report.churn_replans += static_cast<int>(event.replans);
      report.churn_lost +=
          static_cast<int>(event.lost_queries + event.dead_targets);
    }

    // (i) Cross-mode agreement: final sinks, every post-recovery epoch
    // snapshot, and the recovery outcomes themselves.
    for (size_t m = 1; m < runs.size(); ++m) {
      const ChurnRun& other = runs[m];
      const std::string& mode = other.final_mode.mode;
      // A flat-BFS churn divergence is an index violation (the indexed
      // serial run is the arm under test), not a recovery bug.
      const bool flat_arm = mode.find("flat") != std::string::npos;
      auto churn_fail = [&](std::string message) {
        if (flat_arm) {
          report.index_ok = false;
          fail("index oracle: " + std::move(message));
        } else {
          recovery_fail(std::move(message));
        }
      };
      for (size_t q = 0; q < scenario.queries.size(); ++q) {
        if (!SameObservation(serial_churn.final_mode.queries[q],
                             other.final_mode.queries[q])) {
          churn_fail(
              mode + " diverged from serial+churn on " +
              DescribeQuery(scenario, q) + " — serial " +
              ObservationString(serial_churn.final_mode.queries[q]) +
              ", " + mode + " " +
              ObservationString(other.final_mode.queries[q]));
        }
      }
      for (size_t j = 0; j < serial_churn.after_event.size() &&
                         j < other.after_event.size();
           ++j) {
        for (size_t q = 0; q < scenario.queries.size(); ++q) {
          if (!SameObservation(serial_churn.after_event[j][q],
                               other.after_event[j][q])) {
            churn_fail(mode + ": post-recovery snapshot of event " +
                          std::to_string(j) + " diverged on " +
                          DescribeQuery(scenario, q));
          }
        }
      }
      if (other.reports.size() != serial_churn.reports.size()) {
        churn_fail(mode + ": recovered " +
                      std::to_string(other.reports.size()) +
                      " events, serial+churn recovered " +
                      std::to_string(serial_churn.reports.size()));
        continue;
      }
      for (size_t j = 0; j < serial_churn.reports.size(); ++j) {
        const auto& expected = serial_churn.reports[j].queries;
        const auto& actual = other.reports[j].queries;
        bool same = expected.size() == actual.size();
        for (size_t k = 0; same && k < expected.size(); ++k) {
          same = expected[k].query_id == actual[k].query_id &&
                 expected[k].outcome == actual[k].outcome;
        }
        if (!same) {
          churn_fail(mode + ": recovery outcomes of event " +
                        std::to_string(j) +
                        " diverged from serial+churn");
        }
      }
    }

    // Classify every query from the serial churned run's reports: touched
    // by any event, torn down at some event, re-planned at the last one.
    const size_t query_count = scenario.queries.size();
    std::vector<bool> affected(query_count, false);
    std::vector<bool> final_replanned(query_count, false);
    std::vector<int> terminal_event(query_count, -1);
    std::map<int, size_t> by_query_id;
    for (size_t q = 0; q < query_count; ++q) {
      if (serial_churn.registration_index[q] >= 0) {
        by_query_id[serial_churn.registration_index[q]] = q;
      }
    }
    for (size_t j = 0; j < serial_churn.reports.size(); ++j) {
      for (const recover::QueryRecovery& rec :
           serial_churn.reports[j].queries) {
        auto it = by_query_id.find(rec.query_id);
        if (it == by_query_id.end()) continue;
        size_t q = it->second;
        affected[q] = true;
        if (rec.outcome != recover::QueryRecovery::Outcome::kReplanned &&
            terminal_event[q] < 0) {
          terminal_event[q] = static_cast<int>(j);
        }
        if (j + 1 == serial_churn.reports.size()) {
          final_replanned[q] =
              rec.outcome == recover::QueryRecovery::Outcome::kReplanned;
        }
      }
    }

    // (ii) Subscriptions no failure touched must match the no-failure
    // reference bit for bit.
    for (size_t q = 0; q < query_count; ++q) {
      if (affected[q] || serial_churn.registration_index[q] < 0) continue;
      if (!SameObservation(serial_churn.final_mode.queries[q],
                           reference_mode.queries[q])) {
        recovery_fail(
            "untouched " + DescribeQuery(scenario, q) +
            " diverged from the no-failure reference — churned " +
            ObservationString(serial_churn.final_mode.queries[q]) +
            ", reference " +
            ObservationString(reference_mode.queries[q]));
      }
    }

    // (iii) Torn-down subscriptions (dead target, no surviving plan) must
    // emit nothing after their terminal event.
    for (size_t q = 0; q < query_count; ++q) {
      if (terminal_event[q] < 0) continue;
      const QueryObservation& at_teardown =
          serial_churn.after_event[terminal_event[q]][q];
      const QueryObservation& final_obs =
          serial_churn.final_mode.queries[q];
      if (final_obs.items != at_teardown.items ||
          final_obs.content_hash != at_teardown.content_hash) {
        recovery_fail("torn-down " + DescribeQuery(scenario, q) +
                      " kept producing after event " +
                      std::to_string(terminal_event[q]) + " — at teardown " +
                      ObservationString(at_teardown) + ", final " +
                      ObservationString(final_obs));
      }
    }

    // (iv) Gap, not garbage: a subscription re-planned at the last event
    // must produce post-recovery output item-identical to a fresh run
    // that never saw a failure — same damaged topology, resume-mode
    // deployment, fed only the post-recovery items. Counts, bytes and the
    // additive content hash all subtract across the epoch boundary.
    bool any_final_replan = false;
    for (size_t q = 0; q < query_count; ++q) {
      any_final_replan = any_final_replan || final_replanned[q];
    }
    if (any_final_replan) {
      size_t resume_from = std::min(scenario.churn.back().at_offset,
                                    scenario.items_per_stream);
      SystemConfig restricted_config;
      restricted_config.resume_mode = true;
      restricted_config.record_path = false;  // pure DOM reference
      SS_ASSIGN_OR_RETURN(
          BuiltSystem restricted,
          BuildAndRegister(scenario, sharing::Strategy::kStreamSharing,
                           restricted_config, options));
      for (const FuzzChurnEvent& event : scenario.churn) {
        SS_RETURN_IF_ERROR(ApplyChurn(restricted.system.get(), event)
                               .WithContext("restricted reference"));
      }
      SS_RETURN_IF_ERROR(
          restricted.system
              ->Feed(SliceItems(items, resume_from,
                                scenario.items_per_stream))
              .WithContext("restricted reference"));
      SS_RETURN_IF_ERROR(restricted.system->Shutdown().WithContext(
          "restricted reference"));
      ModeObservation restricted_mode;
      restricted_mode.mode = "restricted-reference";
      Observe(restricted, &restricted_mode);

      const std::vector<QueryObservation>& last_snapshot =
          serial_churn.after_event.back();
      for (size_t q = 0; q < query_count; ++q) {
        if (!final_replanned[q]) continue;
        const QueryObservation& final_obs =
            serial_churn.final_mode.queries[q];
        const QueryObservation& snap = last_snapshot[q];
        QueryObservation delta;
        delta.items = final_obs.items - snap.items;
        delta.bytes = final_obs.bytes - snap.bytes;
        delta.content_hash = final_obs.content_hash - snap.content_hash;
        const QueryObservation& fresh = restricted_mode.queries[q];
        if (delta.items != fresh.items || delta.bytes != fresh.bytes ||
            delta.content_hash != fresh.content_hash) {
          recovery_fail(
              "re-planned " + DescribeQuery(scenario, q) +
              " is not gap-clean — post-recovery delta " +
              ObservationString(delta) + ", fresh restricted run " +
              ObservationString(fresh));
        }
      }
    }
  }

  // --- Serve arm: the same scenario hosted by a live daemon, every
  // subscription installed over the CONTROL plane, every delivery
  // accumulated client-side from RESULT frames over real TCP. The diff
  // target is the serial reference — or, when the scenario churns, the
  // serial churned run, since the daemon applies the same events through
  // its FailPeer/CutLink verbs. ----------------------------------------
  if (options.run_serve) {
    bool registration_errors = false;
    for (const QueryObservation& query : reference_mode.queries) {
      registration_errors =
          registration_errors || !query.registration_error.empty();
    }
    // A subscription the planner cannot even parse comes back from the
    // daemon as a failed call, not an observation; nothing to diff.
    if (!registration_errors) {
      SS_ASSIGN_OR_RETURN(workload::ScenarioSpec spec,
                          ToScenarioSpec(scenario));
      serve::ServeRunOptions serve_options;
      serve_options.items_per_stream = scenario.items_per_stream;
      serve_options.feed_chunk = 13;  // ragged on purpose
      serve_options.system.record_path = options.record_path;
      for (const FuzzChurnEvent& event : scenario.churn) {
        serve_options.churn.push_back(ToWorkloadChurn(event));
      }
      SS_ASSIGN_OR_RETURN(
          serve::ServeRunReport serve_run,
          serve::RunScenarioThroughDaemon(spec, serve_options));

      const char* expected_name =
          scenario.churn.empty() ? "serial" : "serial+churn";
      const std::vector<QueryObservation>* expected =
          &reference_mode.queries;
      for (const ModeObservation& mode : report.modes) {
        if (mode.mode == expected_name) expected = &mode.queries;
      }

      ModeObservation serve_mode;
      serve_mode.mode = "serve";
      for (const serve::ServeQueryObservation& observed :
           serve_run.queries) {
        QueryObservation query;
        query.accepted = observed.accepted;
        query.items = observed.items;
        query.bytes = observed.bytes;
        query.content_hash = observed.content_hash;
        serve_mode.queries.push_back(std::move(query));
      }
      report.modes.push_back(serve_mode);

      if (serve_mode.queries.size() != expected->size()) {
        report.serve_ok = false;
        fail("serve arm: daemon answered " +
             std::to_string(serve_mode.queries.size()) +
             " subscriptions for " + std::to_string(expected->size()) +
             " queries");
      } else {
        for (size_t q = 0; q < expected->size(); ++q) {
          if ((*expected)[q].accepted != serve_mode.queries[q].accepted) {
            report.serve_ok = false;
            fail("serve arm: admission outcome diverged on " +
                 DescribeQuery(scenario, q) + " — " + expected_name +
                 " accepted=" +
                 std::to_string((*expected)[q].accepted) + ", serve " +
                 std::to_string(serve_mode.queries[q].accepted));
            continue;
          }
          if (!SameObservation((*expected)[q], serve_mode.queries[q])) {
            report.serve_ok = false;
            fail("serve arm: deliveries diverged on " +
                 DescribeQuery(scenario, q) + " — " + expected_name +
                 " " + ObservationString((*expected)[q]) + ", serve " +
                 ObservationString(serve_mode.queries[q]));
          }
        }
      }
    }
  }

  // --- Crash arm: the serve workload again, but the daemon lives in a
  // forked child armed with seed-derived crashpoints that SIGKILL it
  // mid-operation; every life recovers from checkpoint + WAL and the
  // run completes across however many deaths it takes. The recovered
  // history must equal the same reference the serve arm diffs against —
  // a crash indistinguishable from a drain for acked operations. -------
  if (options.run_crash) {
    bool registration_errors = false;
    for (const QueryObservation& query : reference_mode.queries) {
      registration_errors =
          registration_errors || !query.registration_error.empty();
    }
    if (!registration_errors) {
      SS_ASSIGN_OR_RETURN(workload::ScenarioSpec spec,
                          ToScenarioSpec(scenario));
      serve::CrashRunOptions crash_options;
      crash_options.items_per_stream = scenario.items_per_stream;
      crash_options.feed_chunk = 13;
      crash_options.system.record_path = options.record_path;
      for (const FuzzChurnEvent& event : scenario.churn) {
        crash_options.churn.push_back(ToWorkloadChurn(event));
      }
      // Derive which lives die where from the scenario seed: 1-3 armed
      // lives, each at a seed-chosen crashpoint, hit counts 1-4 so the
      // same point can pass a few times before firing (startup folds hit
      // checkpoint points once per recovery).
      const std::vector<std::string>& points =
          serve::crashpoint::AllPoints();
      DetRng crash_rng(scenario.seed ^ 0xc4a5ed0ull);
      int armed = static_cast<int>(crash_rng.Between(1, 3));
      for (int i = 0; i < armed; ++i) {
        const std::string& point = points[crash_rng.Below(points.size())];
        int hits = static_cast<int>(crash_rng.Between(1, 4));
        crash_options.crash_specs.push_back(point + ":" +
                                            std::to_string(hits));
      }
      char state_template[] = "/tmp/ss-crash-XXXXXX";
      char* state_dir = ::mkdtemp(state_template);
      if (state_dir == nullptr) {
        return Status::Internal("mkdtemp failed for the crash arm");
      }
      crash_options.state_dir = state_dir;
      Result<serve::CrashRunReport> crash_run =
          serve::RunCrashScenario(spec, crash_options);
      std::remove((crash_options.state_dir + "/checkpoint").c_str());
      std::remove(
          serve::DefaultWalPath(crash_options.state_dir + "/checkpoint")
              .c_str());
      ::rmdir(state_dir);
      SS_RETURN_IF_ERROR(crash_run.status());
      report.crash_lives = crash_run->lives;
      report.crash_crashes = crash_run->crashes;

      const char* expected_name =
          scenario.churn.empty() ? "serial" : "serial+churn";
      const std::vector<QueryObservation>* expected =
          &reference_mode.queries;
      for (const ModeObservation& mode : report.modes) {
        if (mode.mode == expected_name) expected = &mode.queries;
      }

      ModeObservation crash_mode;
      crash_mode.mode = "crash";
      for (const serve::ServeQueryObservation& observed :
           crash_run->queries) {
        QueryObservation query;
        query.accepted = observed.accepted;
        query.items = observed.items;
        query.bytes = observed.bytes;
        query.content_hash = observed.content_hash;
        crash_mode.queries.push_back(std::move(query));
      }
      report.modes.push_back(crash_mode);

      if (crash_mode.queries.size() != expected->size()) {
        report.crash_ok = false;
        fail("crash arm: recovered daemon answered " +
             std::to_string(crash_mode.queries.size()) +
             " subscriptions for " + std::to_string(expected->size()) +
             " queries (" + std::to_string(crash_run->crashes) +
             " crashes over " + std::to_string(crash_run->lives) +
             " lives)");
      } else {
        for (size_t q = 0; q < expected->size(); ++q) {
          if ((*expected)[q].accepted != crash_mode.queries[q].accepted) {
            report.crash_ok = false;
            fail("crash arm: admission outcome diverged on " +
                 DescribeQuery(scenario, q) + " — " + expected_name +
                 " accepted=" +
                 std::to_string((*expected)[q].accepted) + ", recovered " +
                 std::to_string(crash_mode.queries[q].accepted) + " (" +
                 std::to_string(crash_run->crashes) + " crashes over " +
                 std::to_string(crash_run->lives) + " lives)");
            continue;
          }
          if (!SameObservation((*expected)[q], crash_mode.queries[q])) {
            report.crash_ok = false;
            fail("crash arm: recovered history diverged on " +
                 DescribeQuery(scenario, q) + " — " + expected_name + " " +
                 ObservationString((*expected)[q]) + ", recovered " +
                 ObservationString(crash_mode.queries[q]) + " (" +
                 std::to_string(crash_run->crashes) + " crashes over " +
                 std::to_string(crash_run->lives) + " lives)");
          }
        }
      }
    }
  }

  if (options.metrics != nullptr) {
    options.metrics->GetCounter("fuzz.scenarios")->Add(1);
    options.metrics->GetCounter("fuzz.queries")
        ->Add(scenario.queries.size());
    if (!report.equivalence_ok) {
      options.metrics->GetCounter("fuzz.divergences")->Add(1);
    }
    if (!report.sharing_ok) {
      options.metrics->GetCounter("fuzz.sharing_violations")->Add(1);
    }
    if (!report.recovery_ok) {
      options.metrics->GetCounter("fuzz.recovery_violations")->Add(1);
    }
    if (!report.latency_ok) {
      options.metrics->GetCounter("fuzz.latency_violations")->Add(1);
    }
    if (!report.serve_ok) {
      options.metrics->GetCounter("fuzz.serve_violations")->Add(1);
    }
    if (!report.crash_ok) {
      options.metrics->GetCounter("fuzz.crash_violations")->Add(1);
    }
    if (!report.index_ok) {
      options.metrics->GetCounter("fuzz.index_violations")->Add(1);
    }
  }
  return report;
}

}  // namespace streamshare::testing
