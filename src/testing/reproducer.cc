#include "testing/reproducer.h"

#include <fstream>
#include <sstream>

#include "testing/scenario_json.h"

namespace streamshare::testing {
namespace {

/// Embeds arbitrary text as a C++ raw string literal, picking a delimiter
/// the text cannot contain.
std::string RawLiteral(const std::string& text) {
  std::string delim = "json";
  while (text.find(")" + delim + "\"") != std::string::npos) delim += "_";
  return "R\"" + delim + "(" + text + ")" + delim + "\"";
}

}  // namespace

std::string ReproducerTestSnippet(const FuzzScenario& scenario,
                                  const std::string& test_name,
                                  const std::string& failure) {
  std::ostringstream out;
  out << "// Minimized reproducer emitted by streamshare_fuzz (seed "
      << scenario.seed << ").\n";
  out << "// Original failure:\n";
  std::istringstream lines(failure);
  for (std::string line; std::getline(lines, line);) {
    out << "//   " << line << "\n";
  }
  out << "\n";
  out << "#include <gtest/gtest.h>\n";
  out << "\n";
  out << "#include \"testing/oracle.h\"\n";
  out << "#include \"testing/scenario_json.h\"\n";
  out << "\n";
  out << "namespace streamshare::testing {\n";
  out << "namespace {\n";
  out << "\n";
  out << "constexpr char kScenarioJson[] = " << RawLiteral(ToJson(scenario))
      << ";\n";
  out << "\n";
  out << "TEST(FuzzRegression, " << test_name << ") {\n";
  out << "  auto scenario = FromJson(kScenarioJson);\n";
  out << "  ASSERT_TRUE(scenario.ok()) << scenario.status().ToString();\n";
  out << "  auto report = RunOracle(*scenario);\n";
  out << "  ASSERT_TRUE(report.ok()) << report.status().ToString();\n";
  out << "  EXPECT_TRUE(report->ok()) << report->failure;\n";
  out << "}\n";
  out << "\n";
  out << "}  // namespace\n";
  out << "}  // namespace streamshare::testing\n";
  return out.str();
}

Result<std::string> WriteReproducer(const FuzzScenario& scenario,
                                    const std::string& dir,
                                    const std::string& failure) {
  const std::string stem = dir + "/repro_seed_" + std::to_string(scenario.seed);
  const std::string json_path = stem + ".json";
  SS_RETURN_IF_ERROR(WriteScenarioFile(scenario, json_path));

  const std::string cc_path = stem + ".cc";
  std::ofstream out(cc_path);
  if (!out) {
    return Status(StatusCode::kInternal,
                  "cannot write reproducer test: " + cc_path);
  }
  out << ReproducerTestSnippet(scenario,
                               "Seed" + std::to_string(scenario.seed),
                               failure);
  if (!out.flush()) {
    return Status(StatusCode::kInternal,
                  "short write on reproducer test: " + cc_path);
  }
  return json_path;
}

}  // namespace streamshare::testing
