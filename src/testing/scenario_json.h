// JSON replay format for fuzz scenarios. ToJson/FromJson round-trip a
// FuzzScenario bit-identically, so a failure found in CI ships as a small
// file that `streamshare_fuzz --scenario=FILE` re-executes anywhere. The
// parser handles exactly the JSON this writer produces (objects, arrays,
// strings without exotic escapes, finite numbers) — it is a replay codec,
// not a general JSON library.

#ifndef STREAMSHARE_TESTING_SCENARIO_JSON_H_
#define STREAMSHARE_TESTING_SCENARIO_JSON_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "testing/fuzz_scenario.h"

namespace streamshare::testing {

/// Serializes the scenario (stable field order, round-trip exact).
std::string ToJson(const FuzzScenario& scenario);

/// Parses a scenario previously produced by ToJson.
Result<FuzzScenario> FromJson(std::string_view json);

/// File convenience wrappers.
Status WriteScenarioFile(const FuzzScenario& scenario,
                         const std::string& path);
Result<FuzzScenario> ReadScenarioFile(const std::string& path);

}  // namespace streamshare::testing

#endif  // STREAMSHARE_TESTING_SCENARIO_JSON_H_
