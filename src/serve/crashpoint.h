// Crashpoint injection for the durability plane. A crashpoint is a named
// program point inside the daemon's write-ahead/checkpoint machinery
// where the process can be made to die by SIGKILL — not exit(), not an
// exception: the same instant, unflushable death a power cut or OOM kill
// delivers, with whatever bytes earlier write() calls already handed the
// page cache surviving and everything after the point lost. The crash
// harnesses (streamshare_fuzz --crash, scripts/crash_smoke.sh,
// tests/test_crash_recovery.cc) arm one point per daemon life and assert
// the recovered state is indistinguishable from a drain for every
// acknowledged operation.
//
// Arming: Arm("name") kills at the first hit, Arm("name:3") at the
// third; ArmFromEnv() reads the STREAMSHARE_CRASHPOINT environment
// variable (how scripts arm a spawned streamshare_serve). Disarmed (the
// default), every MaybeCrash call is a single relaxed atomic load.

#ifndef STREAMSHARE_SERVE_CRASHPOINT_H_
#define STREAMSHARE_SERVE_CRASHPOINT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace streamshare::serve::crashpoint {

// The catalogue. Names are stable: docs/ROBUSTNESS.md documents each
// one's window and scripts/CI arm them by string.
inline constexpr const char* kWalPreAppend = "wal-pre-append";
inline constexpr const char* kWalMidRecord = "wal-mid-record";
inline constexpr const char* kWalPostAppendPreSync =
    "wal-post-append-pre-sync";
inline constexpr const char* kWalPostSyncPreAck = "wal-post-sync-pre-ack";
inline constexpr const char* kFeedPostFeedPreLog = "feed-post-feed-pre-log";
inline constexpr const char* kCkptPreTempWrite = "ckpt-pre-temp-write";
inline constexpr const char* kCkptMidTempWrite = "ckpt-mid-temp-write";
inline constexpr const char* kCkptPreRename = "ckpt-pre-rename";
inline constexpr const char* kCkptPostRenamePreWalReset =
    "ckpt-post-rename-pre-wal-reset";
inline constexpr const char* kDrainPreCheckpoint = "drain-pre-checkpoint";
inline constexpr const char* kRecoverPostFoldPreListen =
    "recover-post-fold-pre-listen";

/// Every named point, in catalogue order (harnesses sweep this).
const std::vector<std::string>& AllPoints();

/// Arms `spec` = "name" or "name:N" (SIGKILL on the Nth hit, N >= 1).
/// An empty spec disarms. Replaces any previous arming.
Status Arm(const std::string& spec);
void Disarm();

/// Arms from $STREAMSHARE_CRASHPOINT when set (ignores errors beyond
/// returning them; an unset variable is Ok and leaves the table alone).
Status ArmFromEnv();

/// Dies by SIGKILL when `point` is the armed point and its hit count is
/// reached. No-op (one atomic load) when disarmed.
void MaybeCrash(const char* point);

}  // namespace streamshare::serve::crashpoint

#endif  // STREAMSHARE_SERVE_CRASHPOINT_H_
