#include "serve/crashpoint.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>

namespace streamshare::serve::crashpoint {

namespace {

// The armed point. `remaining` counts down on each hit of the armed
// name; reaching zero kills. `armed` gates the fast path so a disarmed
// process pays one relaxed load per MaybeCrash.
std::atomic<bool> g_armed{false};
std::atomic<int> g_remaining{0};
std::string g_point;  // written only while disarmed

}  // namespace

const std::vector<std::string>& AllPoints() {
  static const std::vector<std::string> points = {
      kWalPreAppend,
      kWalMidRecord,
      kWalPostAppendPreSync,
      kWalPostSyncPreAck,
      kFeedPostFeedPreLog,
      kCkptPreTempWrite,
      kCkptMidTempWrite,
      kCkptPreRename,
      kCkptPostRenamePreWalReset,
      kDrainPreCheckpoint,
      kRecoverPostFoldPreListen,
  };
  return points;
}

Status Arm(const std::string& spec) {
  Disarm();
  if (spec.empty()) return Status::Ok();
  std::string name = spec;
  int count = 1;
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    name = spec.substr(0, colon);
    char* end = nullptr;
    long parsed = std::strtol(spec.c_str() + colon + 1, &end, 10);
    if (end == nullptr || *end != '\0' || parsed < 1) {
      return Status::InvalidArgument("bad crashpoint hit count in \"" +
                                     spec + "\"");
    }
    count = static_cast<int>(parsed);
  }
  bool known = false;
  for (const std::string& point : AllPoints()) known = known || point == name;
  if (!known) {
    return Status::InvalidArgument("unknown crashpoint \"" + name + "\"");
  }
  g_point = name;
  g_remaining.store(count, std::memory_order_relaxed);
  g_armed.store(true, std::memory_order_release);
  return Status::Ok();
}

void Disarm() {
  g_armed.store(false, std::memory_order_release);
  g_point.clear();
  g_remaining.store(0, std::memory_order_relaxed);
}

Status ArmFromEnv() {
  const char* spec = std::getenv("STREAMSHARE_CRASHPOINT");
  if (spec == nullptr || *spec == '\0') return Status::Ok();
  return Arm(spec);
}

void MaybeCrash(const char* point) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  if (g_point != point) return;
  if (g_remaining.fetch_sub(1, std::memory_order_relaxed) > 1) return;
  // SIGKILL, not abort(): no atexit handlers, no stdio flush, no core —
  // the closest a process can get to losing power.
  ::kill(::getpid(), SIGKILL);
  ::pause();  // unreachable; quiets "noreturn" expectations
}

}  // namespace streamshare::serve::crashpoint
