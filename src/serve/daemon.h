// streamshare_serve's core: a long-lived service hosting one
// StreamShareSystem with the engine running continuously, driven by a
// single-threaded poll loop that multiplexes the CONTROL plane (Hello /
// Subscribe / Unsubscribe / FailPeer / CutLink / Stats / Feed / Drain /
// Detach), the RESULTS plane (per-query sink deliveries forwarded to
// attached clients through the item codec with latency stamps), and the
// scenario's deterministic photon generators.
//
// Every state mutation — control verb or feed tick — happens on the loop
// thread between engine feeds, which is exactly the epoch-safe handover
// Subscribe already relies on, so the system needs no locking. Live
// Subscribe goes through the real planner with admission control: an E6
// overload rejection comes back to the client as a structured kOverload
// response (reject reason included) and leaves every installed
// subscription untouched. Unsubscribe — explicit, or implicit when a
// serving client's connection drops — triggers the refcounted stream GC.
//
// Graceful drain (SIGTERM via RequestDrain, or the Drain verb) stops
// admitting, then either checkpoints the registration/churn event log
// for a later restart (restartable drain; in-flight windows deliberately
// stay unflushed — they are reconstructed on resume) or flushes all
// in-flight windows and ends the service (final drain). A restarted
// daemon resumes per ResumeFlavor: kReplay rebuilds the exact pre-drain
// engine state by replaying the event log against regenerated items
// (pgcopydb's snapshot → catchup → live: re-attached clients catch up
// from their last seen sequence and total delivered output is
// byte-identical to an uninterrupted run), kGap skips the history and
// re-installs subscriptions in resume mode (windows re-anchor at the
// next boundary — gap, not garbage).

#ifndef STREAMSHARE_SERVE_DAEMON_H_
#define STREAMSHARE_SERVE_DAEMON_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "obs/metrics_registry.h"
#include "serve/checkpoint.h"
#include "serve/control.h"
#include "serve/net.h"
#include "serve/wal.h"
#include "sharing/system.h"
#include "transport/codec.h"
#include "workload/photon_gen.h"
#include "workload/scenario.h"

namespace streamshare::serve {

enum class ResumeFlavor {
  kReplay,  // rebuild exact pre-drain state from the event log
  kGap,     // resume at the checkpoint offset, windows re-anchor
};

struct DaemonOptions {
  /// TCP port to listen on; 0 binds an ephemeral port (read port()).
  int port = 0;
  /// Path of the drain checkpoint. Empty disables durability entirely:
  /// no checkpoint, no write-ahead log, and Drain with final=false is
  /// rejected. Set, the daemon is crash-consistent — every acknowledged
  /// control mutation is fsync'd to the WAL beside this path before its
  /// ACK leaves the process, and startup recovers checkpoint + WAL tail
  /// (a torn final record is detected and truncated).
  std::string checkpoint_path;
  /// Write-ahead log path; empty derives DefaultWalPath(checkpoint_path).
  std::string wal_path;
  /// Compaction threshold: when the WAL exceeds this many record bytes,
  /// the loop folds it into a fresh checkpoint (write-temp → fsync →
  /// rename) and starts an empty log, keeping recovery cost bounded.
  uint64_t wal_compact_bytes = 1 << 20;
  ResumeFlavor resume = ResumeFlavor::kReplay;
  /// Engine configuration. keep_results is forced on (sinks are the
  /// delivery log RESULT forwarding reads from).
  sharing::SystemConfig system;
  /// Poll granularity of the event loop; bounds drain-signal latency.
  int poll_interval_ms = 50;
};

/// Counters the serve.* gauges export (one coherent snapshot).
struct DaemonStats {
  uint64_t epoch = 0;
  bool draining = false;
  uint64_t attached_clients = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t unsubscribed = 0;
  uint64_t items_fed = 0;
  uint64_t results_forwarded = 0;
  uint64_t control_requests = 0;
  uint64_t unsupported_frames = 0;
  uint64_t drain_micros = 0;
  /// Durability plane (serve.wal.* metrics). Cumulative across the WAL
  /// resets a compaction or recovery fold performs.
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_fsync_us = 0;
  uint64_t wal_compactions = 0;
  uint64_t wal_recovered_records = 0;
  uint64_t wal_torn_tail_truncations = 0;
};

class ServeDaemon {
 public:
  ServeDaemon(workload::ScenarioSpec scenario, DaemonOptions options);
  ~ServeDaemon();
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;

  /// Builds (or restores from checkpoint) the system, binds the
  /// listener, and starts the loop thread. Synchronous: on return the
  /// daemon accepts connections (or the error says why not).
  Status Start();

  /// Bound port (valid after Start).
  int port() const { return listener_.port(); }

  /// Service life counter: 0 for a fresh start, checkpoint epoch + 1
  /// after a resume.
  uint64_t epoch() const { return epoch_; }

  /// Requests a graceful drain from any thread or a signal handler
  /// (atomic flag; the loop notices within poll_interval_ms). `final`
  /// flushes in-flight windows and ends the service; otherwise the
  /// daemon checkpoints for a restart.
  void RequestDrain(bool final_drain);

  /// Blocks until the loop thread exits (after a drain).
  void Join();

  /// Terminal status of the loop (valid after Join).
  Status loop_status() const;

  DaemonStats stats() const;

  /// Folds serve.* gauges plus the hosted system's metrics into
  /// `registry`.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

 private:
  struct Attachment {
    /// Next sink-delivery index to forward to the attached client.
    uint64_t next_index = 0;
  };

  struct ClientState {
    FrameConn conn;
    transport::ItemEncoder encoder;
    std::string name;
    bool hello_done = false;
    /// query id -> forwarding cursor. A query is attached to at most one
    /// connection (the one that subscribed or re-attached it).
    std::map<int, Attachment> subs;
    uint64_t results_forwarded = 0;
  };

  /// Per-query forwarding bookkeeping shared across client lives.
  struct QueryChannel {
    /// Tick (NowUs) at which each sink delivery was first observed by
    /// the loop; parallel to the sink's kept items.
    std::vector<uint64_t> observed_us;
  };

  bool durable() const { return !options_.checkpoint_path.empty(); }
  std::string WalPathOrDefault() const;
  /// Startup with durability on: load checkpoint + scan WAL, validate
  /// generations, replay both, fold into a fresh checkpoint when the WAL
  /// carried records, and open an empty log for this life.
  Status RecoverDurableState();
  /// Replays recovered WAL records on top of the checkpoint state (feed
  /// ranges interleaved for kReplay; events only + generator skip for
  /// kGap).
  Status ApplyWalRecords(const std::vector<WalRecord>& records);
  /// Appends one record to the WAL and fsyncs; called before the ACK of
  /// the operation it records. A failure here is fatal to the loop (the
  /// mutation is applied but cannot be made durable, so no ACK may ever
  /// leave) — handlers return the error response, HandleRequest drops it
  /// and surfaces wal_error_ instead.
  void DurableAppend(const WalRecord& record);
  /// Folds the WAL into a fresh checkpoint and restarts the log.
  Status CompactWal();

  Status BuildFreshSystem();
  Status RestoreFromCheckpoint(const Checkpoint& checkpoint);
  Status ReplayEvents(const Checkpoint& checkpoint);
  Status ApplyLoggedEvent(const LogEvent& event);
  /// Feeds `count` freshly generated items per stream (advances
  /// items_fed_).
  Status FeedItems(uint64_t count);
  /// Regenerates and feeds items [from, to) per stream (replay path).
  Status FeedRange(uint64_t from, uint64_t to);

  void LoopMain();
  Status LoopOnce();
  Status HandleReadable(ClientState* client);
  Status HandleRequest(ClientState* client,
                       const transport::Frame& frame);
  ControlResponse Dispatch(ClientState* client,
                           const ControlRequest& request);
  ControlResponse DoHello(ClientState* client,
                          const ControlRequest& request);
  ControlResponse DoSubscribe(ClientState* client,
                              const ControlRequest& request);
  ControlResponse DoSubscribeBatch(ClientState* client,
                                   const ControlRequest& request);
  ControlResponse DoReoptimize(const ControlRequest& request);
  ControlResponse DoUnsubscribe(ClientState* client,
                                const ControlRequest& request);
  ControlResponse DoFailPeer(const ControlRequest& request);
  ControlResponse DoCutLink(const ControlRequest& request);
  ControlResponse DoStats(const ControlRequest& request);
  ControlResponse DoFeed(const ControlRequest& request);
  ControlResponse DoDrain(ClientState* client,
                          const ControlRequest& request);
  ControlResponse DoDetach(ClientState* client);

  /// Notes deliveries that appeared at the sinks since the last scan and
  /// forwards them to the attached clients.
  Status ForwardNewResults();
  Status ForwardTo(ClientState* client, int query_id,
                   Attachment* attachment);
  /// Drops a client's attachments; with `unsubscribe` the queries leave
  /// the system too (refcounted GC) — the implicit-disconnect semantics.
  void DetachClient(ClientState* client, bool unsubscribe);
  Status PerformDrain(bool final_drain);
  Checkpoint BuildCheckpoint() const;

  workload::ScenarioSpec scenario_;
  DaemonOptions options_;
  uint64_t epoch_ = 0;
  /// Generation of the checkpoint currently on disk (see
  /// Checkpoint::generation); the open WAL extends exactly this one.
  uint64_t generation_ = 0;

  std::unique_ptr<sharing::StreamShareSystem> system_;
  std::vector<workload::PhotonGenerator> generators_;
  uint64_t items_fed_ = 0;
  std::vector<LogEvent> event_log_;
  std::map<int, QueryChannel> channels_;

  WriteAheadLog wal_;
  /// First WAL append failure; fatal to the loop (no ACK may follow an
  /// operation that could not be made durable).
  Status wal_error_;

  Listener listener_;
  std::vector<std::unique_ptr<ClientState>> clients_;

  std::thread loop_thread_;
  std::atomic<int> drain_request_{0};  // 0 none, 1 restartable, 2 final
  std::atomic<bool> draining_{false};
  Status loop_status_;

  mutable std::mutex stats_mutex_;
  DaemonStats stats_;
};

}  // namespace streamshare::serve

#endif  // STREAMSHARE_SERVE_DAEMON_H_
