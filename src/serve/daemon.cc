#include "serve/daemon.h"

#include <poll.h>

#include <algorithm>
#include <cstdio>
#include <utility>

#include "engine/latency.h"
#include "obs/event_log.h"
#include "serve/crashpoint.h"

namespace streamshare::serve {

namespace {

using engine::latency::NowUs;
using sharing::RegistrationResult;
using sharing::Strategy;

Strategy StrategyFromByte(uint8_t strategy) {
  switch (strategy) {
    case 0:
      return Strategy::kDataShipping;
    case 1:
      return Strategy::kQueryShipping;
    default:
      return Strategy::kStreamSharing;
  }
}

ControlResponse ErrorResponse(uint64_t request_id, const Status& status) {
  ControlResponse response;
  response.request_id = request_id;
  response.code = static_cast<uint64_t>(status.code());
  response.message = status.message();
  return response;
}

ControlResponse OkResponse(uint64_t request_id, std::string payload) {
  ControlResponse response;
  response.request_id = request_id;
  response.payload = std::move(payload);
  return response;
}

}  // namespace

ServeDaemon::ServeDaemon(workload::ScenarioSpec scenario,
                         DaemonOptions options)
    : scenario_(std::move(scenario)), options_(std::move(options)) {
  // Sinks double as the delivery log RESULT forwarding replays from.
  options_.system.keep_results = true;
}

ServeDaemon::~ServeDaemon() {
  if (loop_thread_.joinable()) {
    RequestDrain(/*final_drain=*/true);
    Join();
  }
}

Status ServeDaemon::Start() {
  if (scenario_.streams.empty()) {
    return Status::InvalidArgument("scenario has no streams");
  }
  if (durable()) {
    SS_RETURN_IF_ERROR(RecoverDurableState());
  } else {
    SS_RETURN_IF_ERROR(BuildFreshSystem());
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.epoch = epoch_;
    stats_.items_fed = items_fed_;
  }
  crashpoint::MaybeCrash(crashpoint::kRecoverPostFoldPreListen);
  SS_RETURN_IF_ERROR(listener_.Bind(options_.port));
  loop_thread_ = std::thread([this] { LoopMain(); });
  return Status::Ok();
}

std::string ServeDaemon::WalPathOrDefault() const {
  return options_.wal_path.empty()
             ? DefaultWalPath(options_.checkpoint_path)
             : options_.wal_path;
}

Status ServeDaemon::RecoverDurableState() {
  const std::string wal_path = WalPathOrDefault();

  Checkpoint checkpoint;
  bool have_checkpoint = false;
  {
    Result<Checkpoint> loaded = LoadCheckpoint(options_.checkpoint_path);
    if (loaded.ok()) {
      checkpoint = std::move(*loaded);
      have_checkpoint = true;
    } else if (!loaded.status().IsNotFound()) {
      return loaded.status();
    }
  }

  WalRecovery wal;
  bool have_wal = false;
  {
    Result<WalRecovery> scanned = RecoverWal(wal_path);
    if (scanned.ok()) {
      wal = std::move(*scanned);
      have_wal = true;
    } else if (!scanned.status().IsNotFound()) {
      return scanned.status();
    }
  }

  uint64_t torn_truncations = 0;
  bool use_wal_records = false;
  if (have_wal && !wal.torn_header) {
    if (wal.header.scenario_fingerprint != ScenarioFingerprint(scenario_)) {
      return Status::InvalidArgument(
          "wal " + wal_path + " was written by a different scenario");
    }
    uint64_t base = have_checkpoint ? checkpoint.generation : 0;
    if (wal.header.base_generation == base) {
      use_wal_records = true;
      if (wal.torn_tail) ++torn_truncations;
    } else if (wal.header.base_generation < base) {
      // Stale log: a compaction or drain renamed its folded checkpoint
      // into place but died before truncating the log. Every record in
      // it is already inside the checkpoint — discard whole.
      obs::EventLog& log = obs::EventLog::Default();
      if (log.ShouldLog(obs::Severity::kInfo)) {
        log.Log(obs::Severity::kInfo, "serve",
                "dropping stale wal (already folded)",
                {obs::F("wal_generation", wal.header.base_generation),
                 obs::F("checkpoint_generation", base)});
      }
    } else {
      return Status::InvalidArgument(
          "wal " + wal_path + " extends checkpoint generation " +
          std::to_string(wal.header.base_generation) +
          " but the checkpoint on disk is generation " +
          std::to_string(base) + " — the checkpoint was lost");
    }
  } else if (have_wal && wal.torn_header) {
    // Crash during the log's own creation: it never held a record, and
    // Create only runs right after the checkpoint was brought current.
    ++torn_truncations;
  }

  if (have_checkpoint) {
    SS_RETURN_IF_ERROR(RestoreFromCheckpoint(checkpoint));
  } else {
    SS_RETURN_IF_ERROR(BuildFreshSystem());
  }
  size_t applied_records = 0;
  if (use_wal_records) {
    SS_RETURN_IF_ERROR(ApplyWalRecords(wal.records));
    applied_records = wal.records.size();
    // The log may outlive the checkpoint by whole service lives (every
    // life without a compaction extends the same base).
    if (wal.header.epoch + 1 > epoch_) epoch_ = wal.header.epoch + 1;
  }

  // Fold: a fresh checkpoint capturing everything the WAL added, then an
  // empty log extending it. Without records the checkpoint is already
  // current — only the (possibly missing or torn) log needs recreating.
  generation_ = have_checkpoint ? checkpoint.generation : 0;
  if (!have_checkpoint || applied_records != 0) {
    ++generation_;
    SS_RETURN_IF_ERROR(
        SaveCheckpoint(options_.checkpoint_path, BuildCheckpoint()));
  }
  crashpoint::MaybeCrash(crashpoint::kCkptPostRenamePreWalReset);
  WalHeader header;
  header.scenario_fingerprint = ScenarioFingerprint(scenario_);
  header.epoch = epoch_;
  header.base_generation = generation_;
  SS_ASSIGN_OR_RETURN(wal_, WriteAheadLog::Create(wal_path, header));

  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.wal_recovered_records += applied_records;
  stats_.wal_torn_tail_truncations += torn_truncations;
  return Status::Ok();
}

Status ServeDaemon::ApplyWalRecords(const std::vector<WalRecord>& records) {
  if (options_.resume == ResumeFlavor::kReplay) {
    // Same interleaving as ReplayEvents, continued past the checkpoint:
    // regenerate the fed ranges and apply each logged mutation at the
    // offset it originally ran at.
    uint64_t fed = items_fed_;
    for (const WalRecord& record : records) {
      uint64_t at = record.kind == WalRecord::Kind::kFeed
                        ? record.items_fed
                        : record.event.at_items;
      if (at > fed) {
        SS_RETURN_IF_ERROR(FeedRange(fed, at));
        fed = at;
      }
      if (record.kind == WalRecord::Kind::kEvent) {
        SS_RETURN_IF_ERROR(ApplyLoggedEvent(record.event));
        event_log_.push_back(record.event);
      }
    }
    items_fed_ = fed;
    return Status::Ok();
  }

  // Gap flavor: events only, then skip the generators past the furthest
  // fed offset (windows re-anchor; see ReplayEvents).
  uint64_t fed = items_fed_;
  for (const WalRecord& record : records) {
    if (record.kind == WalRecord::Kind::kEvent) {
      SS_RETURN_IF_ERROR(ApplyLoggedEvent(record.event));
      event_log_.push_back(record.event);
      if (record.event.at_items > fed) fed = record.event.at_items;
    } else if (record.items_fed > fed) {
      fed = record.items_fed;
    }
  }
  for (workload::PhotonGenerator& generator : generators_) {
    for (uint64_t i = items_fed_; i < fed; ++i) generator.NextRecord();
  }
  items_fed_ = fed;
  return Status::Ok();
}

void ServeDaemon::DurableAppend(const WalRecord& record) {
  if (!durable() || !wal_error_.ok()) return;
  WalCounters before = wal_.counters();
  Status appended = wal_.Append(record);
  if (!appended.ok()) {
    wal_error_ = appended;
    return;
  }
  crashpoint::MaybeCrash(crashpoint::kWalPostSyncPreAck);
  const WalCounters& after = wal_.counters();
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.wal_appends += after.appends - before.appends;
  stats_.wal_bytes += after.bytes - before.bytes;
  stats_.wal_fsync_us += after.fsync_us - before.fsync_us;
}

Status ServeDaemon::CompactWal() {
  ++generation_;
  SS_RETURN_IF_ERROR(
      SaveCheckpoint(options_.checkpoint_path, BuildCheckpoint()));
  crashpoint::MaybeCrash(crashpoint::kCkptPostRenamePreWalReset);
  WalHeader header;
  header.scenario_fingerprint = ScenarioFingerprint(scenario_);
  header.epoch = epoch_;
  header.base_generation = generation_;
  SS_ASSIGN_OR_RETURN(wal_, WriteAheadLog::Create(WalPathOrDefault(),
                                                  header));
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++stats_.wal_compactions;
  return Status::Ok();
}

Status ServeDaemon::BuildFreshSystem() {
  SS_ASSIGN_OR_RETURN(system_,
                      workload::BuildSystem(scenario_, options_.system));
  generators_.clear();
  generators_.reserve(scenario_.streams.size());
  for (const workload::StreamSpec& stream : scenario_.streams) {
    generators_.emplace_back(stream.gen);
  }
  return Status::Ok();
}

Status ServeDaemon::RestoreFromCheckpoint(const Checkpoint& checkpoint) {
  if (checkpoint.scenario_fingerprint !=
      ScenarioFingerprint(scenario_)) {
    return Status::InvalidArgument(
        "checkpoint " + options_.checkpoint_path +
        " was written by a different scenario");
  }
  epoch_ = checkpoint.epoch + 1;
  sharing::SystemConfig saved = options_.system;
  if (options_.resume == ResumeFlavor::kGap) {
    // Gap-not-garbage: windows re-anchor at the next boundary at or
    // after the first post-restart item; planning restricts itself to
    // epoch-safe reuse (SystemConfig::resume_mode).
    options_.system.resume_mode = true;
  }
  Status built = BuildFreshSystem();
  options_.system = saved;
  SS_RETURN_IF_ERROR(built);
  SS_RETURN_IF_ERROR(ReplayEvents(checkpoint));
  event_log_ = checkpoint.events;
  items_fed_ = checkpoint.items_fed;
  return Status::Ok();
}

Status ServeDaemon::ReplayEvents(const Checkpoint& checkpoint) {
  if (options_.resume == ResumeFlavor::kReplay) {
    // pgcopydb's catchup: regenerate the fed item history and interleave
    // the logged control events at their recorded offsets — the engine
    // (open windows included) lands in the exact pre-drain state, and
    // the sinks re-accumulate the full delivery log so re-attached
    // clients can catch up from any sequence they already hold.
    uint64_t fed = 0;
    for (const LogEvent& event : checkpoint.events) {
      if (event.at_items > fed) {
        SS_RETURN_IF_ERROR(FeedRange(fed, event.at_items));
        fed = event.at_items;
      }
      SS_RETURN_IF_ERROR(ApplyLoggedEvent(event));
    }
    if (checkpoint.items_fed > fed) {
      SS_RETURN_IF_ERROR(FeedRange(fed, checkpoint.items_fed));
    }
    // Consistency check: the replayed deliveries must reproduce the
    // drained daemon's per-query counts and hashes exactly.
    const std::vector<RegistrationResult>& registrations =
        system_->registrations();
    for (const DeliverySnapshot& snapshot : checkpoint.deliveries) {
      if (snapshot.query_id < 0 ||
          static_cast<size_t>(snapshot.query_id) >= registrations.size()) {
        return Status::Internal(
            "checkpoint names query " +
            std::to_string(snapshot.query_id) +
            " the replay never registered");
      }
      const engine::SinkOp* sink =
          registrations[snapshot.query_id].sink;
      uint64_t items = sink == nullptr ? 0 : sink->item_count();
      uint64_t hash = sink == nullptr ? 0 : sink->content_hash();
      if (items != snapshot.items || hash != snapshot.content_hash) {
        return Status::Internal(
            "replay diverged on query " +
            std::to_string(snapshot.query_id) + ": checkpoint items=" +
            std::to_string(snapshot.items) + " hash=" +
            std::to_string(snapshot.content_hash) + ", replay items=" +
            std::to_string(items) + " hash=" + std::to_string(hash));
      }
    }
    return Status::Ok();
  }

  // Gap flavor: reinstall the control history without item history. The
  // installed population (query ids included) matches the drained
  // daemon; window operators start empty and re-anchor.
  for (const LogEvent& event : checkpoint.events) {
    SS_RETURN_IF_ERROR(ApplyLoggedEvent(event));
  }
  // Advance the generators past the already-consumed prefix so the
  // post-restart stream continues where the drained daemon stopped.
  for (workload::PhotonGenerator& generator : generators_) {
    for (uint64_t i = 0; i < checkpoint.items_fed; ++i) {
      generator.NextRecord();
    }
  }
  return Status::Ok();
}

Status ServeDaemon::ApplyLoggedEvent(const LogEvent& event) {
  switch (event.kind) {
    case LogEvent::Kind::kSubscribe: {
      SS_ASSIGN_OR_RETURN(
          RegistrationResult result,
          system_->RegisterQuery(event.query_text,
                                 static_cast<network::NodeId>(event.vq),
                                 StrategyFromByte(event.strategy)));
      if (result.sink != nullptr) result.sink->EnableContentHash();
      return Status::Ok();
    }
    case LogEvent::Kind::kUnsubscribe:
      return system_->Unsubscribe(static_cast<int>(event.query_id));
    case LogEvent::Kind::kFailPeer:
      return system_
          ->FailPeer(static_cast<network::NodeId>(event.peer))
          .status();
    case LogEvent::Kind::kCutLink:
      return system_
          ->CutLink(static_cast<network::NodeId>(event.link_a),
                    static_cast<network::NodeId>(event.link_b))
          .status();
    case LogEvent::Kind::kReoptimize:
      // Deterministic given the replayed state: reproduces the exact
      // plan migrations of the original pass.
      return system_
          ->Reoptimize(static_cast<int>(event.max_migrations))
          .status();
  }
  return Status::Internal("unknown logged event kind");
}

Status ServeDaemon::FeedItems(uint64_t count) {
  SS_RETURN_IF_ERROR(FeedRange(items_fed_, items_fed_ + count));
  items_fed_ += count;
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.items_fed = items_fed_;
  return Status::Ok();
}

Status ServeDaemon::FeedRange(uint64_t from, uint64_t to) {
  if (to <= from) return Status::Ok();
  std::map<std::string, std::vector<engine::ItemPtr>> items;
  for (size_t s = 0; s < scenario_.streams.size(); ++s) {
    items[scenario_.streams[s].name] =
        generators_[s].Generate(to - from);
  }
  return system_->Feed(items);
}

void ServeDaemon::RequestDrain(bool final_drain) {
  int want = final_drain ? 2 : 1;
  int current = drain_request_.load(std::memory_order_relaxed);
  // A final drain overrides a pending restartable one, never vice versa.
  while (current < want &&
         !drain_request_.compare_exchange_weak(
             current, want, std::memory_order_relaxed)) {
  }
}

void ServeDaemon::Join() {
  if (loop_thread_.joinable()) loop_thread_.join();
}

Status ServeDaemon::loop_status() const { return loop_status_; }

DaemonStats ServeDaemon::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void ServeDaemon::ExportMetrics(obs::MetricsRegistry* registry) const {
  DaemonStats snapshot = stats();
  auto gauge = [registry](const char* name, double value) {
    registry->GetGauge(name)->Set(value);
  };
  gauge("serve.epoch", static_cast<double>(snapshot.epoch));
  gauge("serve.clients.attached",
        static_cast<double>(snapshot.attached_clients));
  gauge("serve.subscriptions.admitted",
        static_cast<double>(snapshot.admitted));
  gauge("serve.subscriptions.rejected",
        static_cast<double>(snapshot.rejected));
  gauge("serve.subscriptions.unsubscribed",
        static_cast<double>(snapshot.unsubscribed));
  gauge("serve.items.fed", static_cast<double>(snapshot.items_fed));
  gauge("serve.results.forwarded",
        static_cast<double>(snapshot.results_forwarded));
  gauge("serve.control.requests",
        static_cast<double>(snapshot.control_requests));
  gauge("serve.control.unsupported",
        static_cast<double>(snapshot.unsupported_frames));
  gauge("serve.drain.micros",
        static_cast<double>(snapshot.drain_micros));
  gauge("serve.wal.appends", static_cast<double>(snapshot.wal_appends));
  gauge("serve.wal.bytes", static_cast<double>(snapshot.wal_bytes));
  gauge("serve.wal.fsync_us", static_cast<double>(snapshot.wal_fsync_us));
  gauge("serve.wal.compactions",
        static_cast<double>(snapshot.wal_compactions));
  gauge("serve.wal.recovered_records",
        static_cast<double>(snapshot.wal_recovered_records));
  gauge("serve.wal.torn_tail_truncations",
        static_cast<double>(snapshot.wal_torn_tail_truncations));
  // The engine/network/latency planes of the hosted system. Only safe
  // once the loop has stopped mutating it (call after Join).
  if (system_ != nullptr && !loop_thread_.joinable()) {
    system_->ExportMetrics(registry);
  }
}

void ServeDaemon::LoopMain() {
  loop_status_ = [this] {
    while (true) {
      int drain = drain_request_.load(std::memory_order_relaxed);
      if (drain != 0) return PerformDrain(drain == 2);
      SS_RETURN_IF_ERROR(LoopOnce());
    }
  }();
  if (!loop_status_.ok()) {
    obs::EventLog& log = obs::EventLog::Default();
    if (log.ShouldLog(obs::Severity::kError)) {
      log.Log(obs::Severity::kError, "serve", "daemon loop failed",
              {obs::F("error", loop_status_.ToString())});
    }
    listener_.Close();
    for (std::unique_ptr<ClientState>& client : clients_) {
      client->conn.Close();
    }
  }
}

Status ServeDaemon::LoopOnce() {
  std::vector<struct pollfd> fds;
  fds.push_back({listener_.fd(), POLLIN, 0});
  for (const std::unique_ptr<ClientState>& client : clients_) {
    short events = POLLIN;
    if (client->conn.has_pending_output()) events |= POLLOUT;
    fds.push_back({client->conn.fd(), events, 0});
  }
  int ready = ::poll(fds.data(), fds.size(), options_.poll_interval_ms);
  if (ready < 0) {
    if (errno == EINTR) return Status::Ok();
    return Status::Internal("serve poll failed");
  }
  if (ready == 0) return Status::Ok();

  if ((fds[0].revents & POLLIN) != 0) {
    while (true) {
      Result<FrameConn> accepted = listener_.Accept();
      if (!accepted.ok()) break;
      auto client = std::make_unique<ClientState>();
      client->conn = std::move(*accepted);
      clients_.push_back(std::move(client));
    }
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.attached_clients = clients_.size();
  }

  std::vector<size_t> closed;
  for (size_t i = 0; i < clients_.size(); ++i) {
    ClientState* client = clients_[i].get();
    short revents = fds[i + 1].revents;
    if (revents == 0) continue;
    if ((revents & POLLOUT) != 0) {
      Status flush = client->conn.FlushSome();
      if (!flush.ok()) {
        DetachClient(client, /*unsubscribe=*/true);
        closed.push_back(i);
        continue;
      }
    }
    if ((revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
      Status handled = HandleReadable(client);
      if (!handled.ok()) {
        // A vanished client implicitly unsubscribes everything it was
        // serving (refcounted stream GC); protocol garbage does too.
        DetachClient(client, /*unsubscribe=*/true);
        closed.push_back(i);
      }
    }
  }
  for (auto it = closed.rbegin(); it != closed.rend(); ++it) {
    clients_.erase(clients_.begin() + static_cast<long>(*it));
  }
  if (!closed.empty()) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.attached_clients = clients_.size();
  }
  if (!wal_error_.ok()) {
    // An applied mutation could not be made durable — stop serving
    // rather than ACK it (crash-consistent failure).
    return wal_error_;
  }
  if (durable() && wal_.open() &&
      wal_.counters().bytes > options_.wal_compact_bytes) {
    SS_RETURN_IF_ERROR(CompactWal());
  }
  return Status::Ok();
}

Status ServeDaemon::HandleReadable(ClientState* client) {
  SS_RETURN_IF_ERROR(client->conn.ReadSome());
  while (true) {
    transport::Frame frame;
    SS_ASSIGN_OR_RETURN(ConnEvent event, client->conn.TryParse(&frame));
    if (event == ConnEvent::kNeedMore) return Status::Ok();
    if (event == ConnEvent::kUnsupported) {
      // Satellite of the wire change: a frame this daemon cannot
      // dispatch (newer client, or an old client poking a newer daemon)
      // gets a decodable "unsupported" answer instead of a teardown.
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.unsupported_frames;
      }
      ControlResponse response = ErrorResponse(
          0, Status::Unsupported(
                 "unsupported frame (version " +
                 std::to_string(frame.version) + ", type " +
                 std::to_string(frame.raw_type) + ")"));
      SS_RETURN_IF_ERROR(client->conn.QueueFrame(
          transport::FrameType::kControlAck, EncodeResponse(response)));
      continue;
    }
    SS_RETURN_IF_ERROR(HandleRequest(client, frame));
  }
}

Status ServeDaemon::HandleRequest(ClientState* client,
                                  const transport::Frame& frame) {
  if (frame.type != transport::FrameType::kControl) {
    ControlResponse response = ErrorResponse(
        0, Status::InvalidArgument(
               "only CONTROL frames flow client-to-daemon (got type " +
               std::to_string(frame.raw_type) + ")"));
    return client->conn.QueueFrame(transport::FrameType::kControlAck,
                                   EncodeResponse(response));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.control_requests;
  }
  Result<ControlRequest> request = DecodeRequest(frame.body);
  ControlResponse response =
      request.ok() ? Dispatch(client, *request)
                   : ErrorResponse(0, request.status());
  if (!wal_error_.ok()) {
    // The mutation is applied in memory but could not be made durable:
    // acknowledging would break crash ≡ drain. No ACK leaves; the loop
    // dies with the append error (a crash-consistent stop — recovery
    // sees exactly the pre-mutation durable state).
    return wal_error_;
  }
  return client->conn.QueueFrame(transport::FrameType::kControlAck,
                                 EncodeResponse(response));
}

ControlResponse ServeDaemon::Dispatch(ClientState* client,
                                      const ControlRequest& request) {
  if (!client->hello_done && request.verb != Verb::kHello) {
    return ErrorResponse(
        request.request_id,
        Status::InvalidArgument("say hello before " +
                                std::to_string(static_cast<int>(
                                    request.verb))));
  }
  switch (request.verb) {
    case Verb::kHello:
      return DoHello(client, request);
    case Verb::kSubscribe:
      return DoSubscribe(client, request);
    case Verb::kUnsubscribe:
      return DoUnsubscribe(client, request);
    case Verb::kFailPeer:
      return DoFailPeer(request);
    case Verb::kCutLink:
      return DoCutLink(request);
    case Verb::kStats:
      return DoStats(request);
    case Verb::kFeed:
      return DoFeed(request);
    case Verb::kDrain:
      return DoDrain(client, request);
    case Verb::kDetach:
      return DoDetach(client);
    case Verb::kSubscribeBatch:
      return DoSubscribeBatch(client, request);
    case Verb::kReoptimize:
      return DoReoptimize(request);
  }
  return ErrorResponse(request.request_id,
                       Status::Internal("unhandled verb"));
}

ControlResponse ServeDaemon::DoHello(ClientState* client,
                                     const ControlRequest& request) {
  if (request.protocol != kServeProtocolVersion) {
    return ErrorResponse(
        request.request_id,
        Status::Unsupported("serve protocol " +
                            std::to_string(request.protocol) +
                            " (this daemon speaks " +
                            std::to_string(kServeProtocolVersion) + ")"));
  }
  client->hello_done = true;
  client->name = request.client_name;
  HelloReply reply;
  reply.epoch = epoch_;
  reply.items_fed = items_fed_;
  reply.draining = draining_.load(std::memory_order_relaxed);
  return OkResponse(request.request_id, EncodeHelloReply(reply));
}

ControlResponse ServeDaemon::DoSubscribe(ClientState* client,
                                         const ControlRequest& request) {
  if (draining_.load(std::memory_order_relaxed)) {
    return ErrorResponse(request.request_id,
                         Status::Unavailable("daemon is draining"));
  }

  if (request.attach_query_plus1 != 0) {
    // Re-attach to a subscription that survived this client's absence
    // (or a daemon restart): forward from where the client left off.
    int query_id = static_cast<int>(request.attach_query_plus1 - 1);
    Status active = system_->CheckActiveSubscription(query_id);
    if (!active.ok()) return ErrorResponse(request.request_id, active);
    for (const std::unique_ptr<ClientState>& other : clients_) {
      if (other->subs.count(query_id) != 0) {
        return ErrorResponse(
            request.request_id,
            Status::AlreadyExists("query " + std::to_string(query_id) +
                                  " is attached to another client"));
      }
    }
    const engine::SinkOp* sink =
        system_->registrations()[query_id].sink;
    uint64_t have = sink == nullptr ? 0 : sink->item_count();
    Attachment attachment;
    attachment.next_index = std::min(request.resume_from, have);
    client->subs[query_id] = attachment;
    SubscribeReply reply;
    reply.query_id = query_id;
    reply.accepted = true;
    reply.forward_from = attachment.next_index;
    return OkResponse(request.request_id, EncodeSubscribeReply(reply));
  }

  Result<RegistrationResult> result = system_->RegisterQuery(
      request.query_text, static_cast<network::NodeId>(request.vq),
      StrategyFromByte(request.strategy));
  if (!result.ok()) {
    // Parse/analysis failure: no query id was consumed, nothing to log.
    return ErrorResponse(request.request_id, result.status());
  }
  // Accepted or admission-rejected, the registration consumed a query
  // id — log it (and make it durable before the ACK) so a replay
  // reassigns identical ids.
  LogEvent event;
  event.kind = LogEvent::Kind::kSubscribe;
  event.at_items = items_fed_;
  event.query_text = request.query_text;
  event.vq = request.vq;
  event.strategy = request.strategy;
  event_log_.push_back(event);
  DurableAppend(WalRecord::Event(std::move(event)));

  SubscribeReply reply;
  reply.query_id = result->query_id;
  reply.accepted = result->accepted;
  reply.reject_reason = result->reject_reason;
  if (result->accepted && result->sink != nullptr) {
    result->sink->EnableContentHash();
    Attachment attachment;
    attachment.next_index =
        std::min(request.resume_from,
                 static_cast<uint64_t>(result->sink->item_count()));
    reply.forward_from = attachment.next_index;
    client->subs[result->query_id] = attachment;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (result->accepted) {
      ++stats_.admitted;
    } else {
      // The E6 admission-control path: a structured rejection, with the
      // deployment untouched and the daemon still serving.
      ++stats_.rejected;
    }
  }
  return OkResponse(request.request_id, EncodeSubscribeReply(reply));
}

ControlResponse ServeDaemon::DoSubscribeBatch(
    ClientState* client, const ControlRequest& request) {
  if (draining_.load(std::memory_order_relaxed)) {
    return ErrorResponse(request.request_id,
                         Status::Unavailable("daemon is draining"));
  }
  std::vector<sharing::StreamShareSystem::BatchQuery> queries;
  queries.reserve(request.batch.size());
  for (const ControlRequest::BatchEntry& entry : request.batch) {
    sharing::StreamShareSystem::BatchQuery query;
    query.text = entry.query_text;
    query.vq = static_cast<network::NodeId>(entry.vq);
    query.strategy = StrategyFromByte(entry.strategy);
    queries.push_back(std::move(query));
  }
  sharing::StreamShareSystem::BatchStats batch_stats;
  Result<std::vector<RegistrationResult>> results =
      system_->SubscribeBatch(queries, &batch_stats);
  // Every registration that consumed a query id — the whole batch, or
  // the installed prefix before a hard error — logs as a plain
  // subscribe: batch == sequential is the determinism invariant, so a
  // replay through individual registrations rebuilds identical state.
  for (int i = 0; i < batch_stats.registered; ++i) {
    LogEvent event;
    event.kind = LogEvent::Kind::kSubscribe;
    event.at_items = items_fed_;
    event.query_text = request.batch[i].query_text;
    event.vq = request.batch[i].vq;
    event.strategy = request.batch[i].strategy;
    event_log_.push_back(event);
    DurableAppend(WalRecord::Event(std::move(event)));
  }
  if (!results.ok()) {
    return ErrorResponse(request.request_id, results.status());
  }

  SubscribeBatchReply reply;
  reply.analyze_cache_hits =
      static_cast<uint64_t>(batch_stats.analyze_cache_hits);
  reply.plan_memo_hits = static_cast<uint64_t>(batch_stats.plan_memo_hits);
  reply.entries.reserve(results->size());
  uint64_t admitted = 0, rejected = 0;
  for (const RegistrationResult& result : *results) {
    SubscribeReply entry;
    entry.query_id = result.query_id;
    entry.accepted = result.accepted;
    entry.reject_reason = result.reject_reason;
    if (result.accepted && result.sink != nullptr) {
      result.sink->EnableContentHash();
      client->subs[result.query_id] = Attachment{};
      ++admitted;
    }
    if (!result.accepted) ++rejected;
    reply.entries.push_back(std::move(entry));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.admitted += admitted;
    stats_.rejected += rejected;
  }
  return OkResponse(request.request_id,
                    EncodeSubscribeBatchReply(reply));
}

ControlResponse ServeDaemon::DoReoptimize(const ControlRequest& request) {
  if (draining_.load(std::memory_order_relaxed)) {
    return ErrorResponse(request.request_id,
                         Status::Unavailable("daemon is draining"));
  }
  Result<sharing::StreamShareSystem::ReoptimizeReport> report =
      system_->Reoptimize(static_cast<int>(request.max_migrations));
  if (!report.ok()) {
    return ErrorResponse(request.request_id, report.status());
  }
  LogEvent event;
  event.kind = LogEvent::Kind::kReoptimize;
  event.at_items = items_fed_;
  event.max_migrations = request.max_migrations;
  event_log_.push_back(event);
  DurableAppend(WalRecord::Event(std::move(event)));
  ReoptimizeReply reply;
  reply.examined = static_cast<uint64_t>(report->examined);
  reply.migrated = static_cast<uint64_t>(report->migrated);
  reply.torn_down = static_cast<uint64_t>(report->torn_down);
  reply.lost_windows = report->lost_windows;
  reply.cost_before = report->cost_before;
  reply.cost_after = report->cost_after;
  return OkResponse(request.request_id, EncodeReoptimizeReply(reply));
}

ControlResponse ServeDaemon::DoUnsubscribe(ClientState* client,
                                           const ControlRequest& request) {
  int query_id = static_cast<int>(request.query_id);
  Status status = system_->Unsubscribe(query_id);
  if (!status.ok()) return ErrorResponse(request.request_id, status);
  LogEvent event;
  event.kind = LogEvent::Kind::kUnsubscribe;
  event.at_items = items_fed_;
  event.query_id = request.query_id;
  event_log_.push_back(event);
  DurableAppend(WalRecord::Event(std::move(event)));
  client->subs.erase(query_id);
  for (const std::unique_ptr<ClientState>& other : clients_) {
    other->subs.erase(query_id);
  }
  channels_.erase(query_id);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++stats_.unsubscribed;
  }
  return OkResponse(request.request_id, std::string());
}

ControlResponse ServeDaemon::DoFailPeer(const ControlRequest& request) {
  Result<recover::RecoveryReport> report =
      system_->FailPeer(static_cast<network::NodeId>(request.peer));
  if (!report.ok()) return ErrorResponse(request.request_id,
                                         report.status());
  LogEvent event;
  event.kind = LogEvent::Kind::kFailPeer;
  event.at_items = items_fed_;
  event.peer = request.peer;
  event_log_.push_back(event);
  DurableAppend(WalRecord::Event(std::move(event)));
  RecoveryReply reply;
  reply.replans = report->replans;
  reply.lost_queries = report->lost_queries;
  reply.dead_targets = report->dead_targets;
  reply.lost_windows = report->lost_windows;
  return OkResponse(request.request_id, EncodeRecoveryReply(reply));
}

ControlResponse ServeDaemon::DoCutLink(const ControlRequest& request) {
  Result<recover::RecoveryReport> report = system_->CutLink(
      static_cast<network::NodeId>(request.link_a),
      static_cast<network::NodeId>(request.link_b));
  if (!report.ok()) return ErrorResponse(request.request_id,
                                         report.status());
  LogEvent event;
  event.kind = LogEvent::Kind::kCutLink;
  event.at_items = items_fed_;
  event.link_a = request.link_a;
  event.link_b = request.link_b;
  event_log_.push_back(event);
  DurableAppend(WalRecord::Event(std::move(event)));
  RecoveryReply reply;
  reply.replans = report->replans;
  reply.lost_queries = report->lost_queries;
  reply.dead_targets = report->dead_targets;
  reply.lost_windows = report->lost_windows;
  return OkResponse(request.request_id, EncodeRecoveryReply(reply));
}

ControlResponse ServeDaemon::DoStats(const ControlRequest& request) {
  StatsReply reply;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    reply.attached_clients = stats_.attached_clients;
    reply.admitted = stats_.admitted;
    reply.rejected = stats_.rejected;
    reply.results_forwarded = stats_.results_forwarded;
    reply.wal_appends = stats_.wal_appends;
    reply.wal_bytes = stats_.wal_bytes;
    reply.wal_fsync_us = stats_.wal_fsync_us;
    reply.wal_compactions = stats_.wal_compactions;
    reply.wal_recovered_records = stats_.wal_recovered_records;
    reply.wal_torn_tail_truncations = stats_.wal_torn_tail_truncations;
  }
  reply.epoch = epoch_;
  reply.draining = draining_.load(std::memory_order_relaxed);
  reply.items_fed = items_fed_;
  const std::vector<RegistrationResult>& registrations =
      system_->registrations();
  reply.queries.reserve(registrations.size());
  for (const RegistrationResult& registration : registrations) {
    QueryStat query;
    query.query_id = registration.query_id;
    query.accepted = registration.accepted;
    query.active = system_->IsActive(registration.query_id);
    if (registration.sink != nullptr) {
      query.items = registration.sink->item_count();
      query.bytes = registration.sink->total_bytes();
      query.content_hash = registration.sink->content_hash();
    }
    reply.queries.push_back(query);
  }
  return OkResponse(request.request_id, EncodeStatsReply(reply));
}

ControlResponse ServeDaemon::DoFeed(const ControlRequest& request) {
  if (draining_.load(std::memory_order_relaxed)) {
    return ErrorResponse(request.request_id,
                         Status::Unavailable("daemon is draining"));
  }
  Status fed = FeedItems(request.feed_items);
  if (!fed.ok()) return ErrorResponse(request.request_id, fed);
  crashpoint::MaybeCrash(crashpoint::kFeedPostFeedPreLog);
  // Durability before visibility: the feed offset syncs to the WAL
  // before any of its deliveries (or the ACK) leave the process, so a
  // client can never hold results of a feed a recovered daemon does not
  // know about.
  DurableAppend(WalRecord::Feed(items_fed_));
  if (!wal_error_.ok()) {
    return ErrorResponse(request.request_id, wal_error_);
  }
  Status forwarded = ForwardNewResults();
  if (!forwarded.ok()) {
    return ErrorResponse(request.request_id, forwarded);
  }
  FeedReply reply;
  reply.items_fed = items_fed_;
  return OkResponse(request.request_id, EncodeFeedReply(reply));
}

ControlResponse ServeDaemon::DoDrain(ClientState* client,
                                     const ControlRequest& request) {
  (void)client;
  if (!request.final_drain && options_.checkpoint_path.empty()) {
    return ErrorResponse(
        request.request_id,
        Status::InvalidArgument(
            "restartable drain needs a --checkpoint path"));
  }
  RequestDrain(request.final_drain);
  DrainReply reply;
  reply.final_drain = request.final_drain;
  reply.epoch = epoch_;
  return OkResponse(request.request_id, EncodeDrainReply(reply));
}

ControlResponse ServeDaemon::DoDetach(ClientState* client) {
  DetachClient(client, /*unsubscribe=*/false);
  return OkResponse(0, std::string());
}

Status ServeDaemon::ForwardNewResults() {
  // Note the observation tick of every delivery that appeared since the
  // last scan (the "ingress" of the forwarding plane).
  uint64_t now = NowUs();
  for (const RegistrationResult& registration :
       system_->registrations()) {
    if (registration.sink == nullptr || !registration.accepted) continue;
    QueryChannel& channel = channels_[registration.query_id];
    size_t delivered = registration.sink->items().size();
    while (channel.observed_us.size() < delivered) {
      channel.observed_us.push_back(now);
    }
  }
  for (std::unique_ptr<ClientState>& client : clients_) {
    for (auto& [query_id, attachment] : client->subs) {
      SS_RETURN_IF_ERROR(
          ForwardTo(client.get(), query_id, &attachment));
    }
  }
  return Status::Ok();
}

Status ServeDaemon::ForwardTo(ClientState* client, int query_id,
                              Attachment* attachment) {
  if (!system_->IsActive(query_id)) return Status::Ok();
  const engine::SinkOp* sink = system_->registrations()[query_id].sink;
  if (sink == nullptr) return Status::Ok();
  const std::vector<engine::ItemPtr>& items = sink->items();
  const QueryChannel& channel = channels_[query_id];
  uint64_t forwarded = 0;
  std::string encoded;
  while (attachment->next_index < items.size()) {
    uint64_t index = attachment->next_index;
    encoded.clear();
    client->encoder.Encode(*items[index], &encoded);
    uint64_t delivery_us = index < channel.observed_us.size()
                               ? channel.observed_us[index]
                               : NowUs();
    std::string body = EncodeResultFrame(query_id, index, delivery_us,
                                         NowUs(), encoded);
    SS_RETURN_IF_ERROR(client->conn.QueueFrame(
        transport::FrameType::kResult, body, transport::kWireVersion));
    ++attachment->next_index;
    ++forwarded;
  }
  if (forwarded != 0) {
    client->results_forwarded += forwarded;
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.results_forwarded += forwarded;
  }
  return Status::Ok();
}

void ServeDaemon::DetachClient(ClientState* client, bool unsubscribe) {
  if (unsubscribe) {
    for (const auto& [query_id, attachment] : client->subs) {
      (void)attachment;
      if (!system_->IsActive(query_id)) continue;
      if (system_->Unsubscribe(query_id).ok()) {
        LogEvent event;
        event.kind = LogEvent::Kind::kUnsubscribe;
        event.at_items = items_fed_;
        event.query_id = query_id;
        event_log_.push_back(event);
        DurableAppend(WalRecord::Event(std::move(event)));
        channels_.erase(query_id);
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++stats_.unsubscribed;
      }
    }
  }
  client->subs.clear();
}

Checkpoint ServeDaemon::BuildCheckpoint() const {
  Checkpoint checkpoint;
  checkpoint.scenario_fingerprint = ScenarioFingerprint(scenario_);
  checkpoint.epoch = epoch_;
  checkpoint.generation = generation_;
  checkpoint.items_fed = items_fed_;
  checkpoint.events = event_log_;
  for (const RegistrationResult& registration :
       system_->registrations()) {
    if (registration.sink == nullptr || !registration.accepted) continue;
    if (!system_->IsActive(registration.query_id)) continue;
    DeliverySnapshot snapshot;
    snapshot.query_id = registration.query_id;
    snapshot.items = registration.sink->item_count();
    snapshot.content_hash = registration.sink->content_hash();
    checkpoint.deliveries.push_back(snapshot);
  }
  return checkpoint;
}

Status ServeDaemon::PerformDrain(bool final_drain) {
  uint64_t start = NowUs();
  draining_.store(true, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.draining = true;
  }
  listener_.Close();

  if (final_drain) {
    // End of service: flush every in-flight window and forward the
    // flushed deliveries before saying goodbye. The durable files go
    // too — the service life is complete, and a leftover mid-life
    // compaction checkpoint must not resurrect a flushed-and-ended
    // deployment on the next start.
    SS_RETURN_IF_ERROR(system_->Shutdown());
    SS_RETURN_IF_ERROR(ForwardNewResults());
    if (durable()) {
      wal_.Close();
      std::remove(WalPathOrDefault().c_str());
      std::remove(options_.checkpoint_path.c_str());
    }
  } else {
    // Restartable drain: fold the event log into a fresh-generation
    // checkpoint, then retire the WAL (its records are all inside). A
    // crash between the two leaves a stale log the next recovery
    // recognizes by generation and discards. In-flight windows
    // deliberately stay unflushed — the replay resume reconstructs
    // them, so the eventual output is identical to an uninterrupted
    // run (flushing here would emit partials an uninterrupted run
    // never emits).
    crashpoint::MaybeCrash(crashpoint::kDrainPreCheckpoint);
    ++generation_;
    SS_RETURN_IF_ERROR(
        SaveCheckpoint(options_.checkpoint_path, BuildCheckpoint()));
    crashpoint::MaybeCrash(crashpoint::kCkptPostRenamePreWalReset);
    wal_.Close();
    std::remove(WalPathOrDefault().c_str());
  }

  for (std::unique_ptr<ClientState>& client : clients_) {
    if (!client->conn.open()) continue;
    ServeEos eos;
    eos.results_forwarded = client->results_forwarded;
    eos.final_drain = final_drain;
    // Best effort: a client that already vanished must not stall the
    // drain of the others.
    (void)client->conn.QueueFrame(transport::FrameType::kEos,
                                  EncodeServeEos(eos));
    (void)client->conn.FlushAll(/*timeout_ms=*/2000);
    client->conn.Close();
  }
  clients_.clear();

  obs::EventLog& log = obs::EventLog::Default();
  if (log.ShouldLog(obs::Severity::kInfo)) {
    log.Log(obs::Severity::kInfo, "serve",
            final_drain ? "final drain complete"
                        : "restartable drain complete",
            {obs::F("epoch", epoch_), obs::F("items_fed", items_fed_)});
  }
  std::lock_guard<std::mutex> lock(stats_mutex_);
  stats_.drain_micros = NowUs() - start;
  stats_.attached_clients = 0;
  return Status::Ok();
}

}  // namespace streamshare::serve
