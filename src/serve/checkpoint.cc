#include "serve/checkpoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "transport/wire.h"

namespace streamshare::serve {

namespace {

using transport::GetVarint;
using transport::PutVarint;

constexpr char kMagic[] = "SSCKPT01";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

uint64_t Mix(uint64_t h, uint64_t v) {
  // splitmix64 finalizer as the fold step.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  uint64_t z = h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t MixString(uint64_t h, std::string_view text) {
  h = Mix(h, text.size());
  for (char c : text) h = Mix(h, static_cast<unsigned char>(c));
  return h;
}

uint64_t MixDouble(uint64_t h, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return Mix(h, bits);
}

void PutString(std::string* out, std::string_view text) {
  PutVarint(out, text.size());
  out->append(text);
}

bool GetString(std::string_view* data, std::string* out) {
  uint64_t length = 0;
  if (!GetVarint(data, &length) || data->size() < length) return false;
  out->assign(data->substr(0, length));
  data->remove_prefix(length);
  return true;
}

uint64_t Zig(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t Unzig(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

bool GetSigned(std::string_view* data, int64_t* out) {
  uint64_t raw = 0;
  if (!GetVarint(data, &raw)) return false;
  *out = Unzig(raw);
  return true;
}

}  // namespace

uint64_t ScenarioFingerprint(const workload::ScenarioSpec& scenario) {
  uint64_t h = 0x5353464Eull;  // "SSFN"
  h = MixString(h, scenario.name);
  h = Mix(h, scenario.topology.peer_count());
  h = Mix(h, scenario.topology.link_count());
  for (const network::Link& link : scenario.topology.links()) {
    h = Mix(h, static_cast<uint64_t>(link.a));
    h = Mix(h, static_cast<uint64_t>(link.b));
    h = MixDouble(h, link.bandwidth_kbps);
  }
  for (const network::Peer& peer : scenario.topology.peers()) {
    h = MixString(h, peer.name);
    h = MixDouble(h, peer.max_load);
  }
  h = Mix(h, scenario.streams.size());
  for (const workload::StreamSpec& stream : scenario.streams) {
    h = MixString(h, stream.name);
    h = Mix(h, static_cast<uint64_t>(stream.source));
    h = Mix(h, stream.gen.seed);
    h = MixDouble(h, stream.gen.frequency_hz);
    h = MixDouble(h, stream.gen.det_time_increment_mean);
    h = Mix(h, stream.gen.hot_regions.size());
    for (const workload::SkyBox& box : stream.gen.hot_regions) {
      h = MixDouble(h, box.ra_min);
      h = MixDouble(h, box.ra_max);
      h = MixDouble(h, box.dec_min);
      h = MixDouble(h, box.dec_max);
    }
    for (double weight : stream.gen.hot_weights) {
      h = MixDouble(h, weight);
    }
  }
  return h == 0 ? 1 : h;
}

Status SaveCheckpoint(const std::string& path,
                      const Checkpoint& checkpoint) {
  std::string out(kMagic, kMagicLen);
  PutVarint(&out, checkpoint.scenario_fingerprint);
  PutVarint(&out, checkpoint.epoch);
  PutVarint(&out, checkpoint.items_fed);
  PutVarint(&out, checkpoint.events.size());
  for (const LogEvent& event : checkpoint.events) {
    PutVarint(&out, static_cast<uint64_t>(event.kind));
    PutVarint(&out, event.at_items);
    switch (event.kind) {
      case LogEvent::Kind::kSubscribe:
        PutVarint(&out, Zig(event.vq));
        PutVarint(&out, event.strategy);
        PutString(&out, event.query_text);
        break;
      case LogEvent::Kind::kUnsubscribe:
        PutVarint(&out, Zig(event.query_id));
        break;
      case LogEvent::Kind::kFailPeer:
        PutVarint(&out, Zig(event.peer));
        break;
      case LogEvent::Kind::kCutLink:
        PutVarint(&out, Zig(event.link_a));
        PutVarint(&out, Zig(event.link_b));
        break;
      case LogEvent::Kind::kReoptimize:
        PutVarint(&out, Zig(event.max_migrations));
        break;
    }
  }
  PutVarint(&out, checkpoint.deliveries.size());
  for (const DeliverySnapshot& delivery : checkpoint.deliveries) {
    PutVarint(&out, Zig(delivery.query_id));
    PutVarint(&out, delivery.items);
    PutVarint(&out, delivery.content_hash);
  }

  std::string temp = path + ".tmp";
  std::FILE* file = std::fopen(temp.c_str(), "wb");
  if (file == nullptr) {
    return Status::Internal("cannot write checkpoint " + temp + ": " +
                            std::strerror(errno));
  }
  size_t written = std::fwrite(out.data(), 1, out.size(), file);
  bool flushed = std::fflush(file) == 0;
  std::fclose(file);
  if (written != out.size() || !flushed) {
    std::remove(temp.c_str());
    return Status::Internal("short write on checkpoint " + temp);
  }
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::Internal("cannot rename checkpoint into place: " +
                            std::string(std::strerror(errno)));
  }
  return Status::Ok();
}

Result<Checkpoint> LoadCheckpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("no checkpoint at " + path);
  }
  std::string bytes;
  char chunk[16384];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.append(chunk, n);
  }
  std::fclose(file);

  std::string_view data = bytes;
  if (data.size() < kMagicLen ||
      data.substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen)) {
    return Status::ParseError(path + " is not a streamshare checkpoint");
  }
  data.remove_prefix(kMagicLen);

  auto truncated = [&path]() {
    return Status::ParseError("truncated checkpoint " + path);
  };
  Checkpoint checkpoint;
  uint64_t event_count = 0;
  if (!GetVarint(&data, &checkpoint.scenario_fingerprint) ||
      !GetVarint(&data, &checkpoint.epoch) ||
      !GetVarint(&data, &checkpoint.items_fed) ||
      !GetVarint(&data, &event_count)) {
    return truncated();
  }
  checkpoint.events.reserve(event_count);
  for (uint64_t i = 0; i < event_count; ++i) {
    LogEvent event;
    uint64_t kind = 0, strategy = 0;
    if (!GetVarint(&data, &kind) || !GetVarint(&data, &event.at_items)) {
      return truncated();
    }
    if (kind < static_cast<uint64_t>(LogEvent::Kind::kSubscribe) ||
        kind > static_cast<uint64_t>(LogEvent::Kind::kReoptimize)) {
      return Status::ParseError("unknown checkpoint event kind " +
                                std::to_string(kind));
    }
    event.kind = static_cast<LogEvent::Kind>(kind);
    switch (event.kind) {
      case LogEvent::Kind::kSubscribe:
        if (!GetSigned(&data, &event.vq) ||
            !GetVarint(&data, &strategy) ||
            !GetString(&data, &event.query_text)) {
          return truncated();
        }
        event.strategy = static_cast<uint8_t>(strategy);
        break;
      case LogEvent::Kind::kUnsubscribe:
        if (!GetSigned(&data, &event.query_id)) return truncated();
        break;
      case LogEvent::Kind::kFailPeer:
        if (!GetSigned(&data, &event.peer)) return truncated();
        break;
      case LogEvent::Kind::kCutLink:
        if (!GetSigned(&data, &event.link_a) ||
            !GetSigned(&data, &event.link_b)) {
          return truncated();
        }
        break;
      case LogEvent::Kind::kReoptimize:
        if (!GetSigned(&data, &event.max_migrations)) return truncated();
        break;
    }
    checkpoint.events.push_back(std::move(event));
  }
  uint64_t delivery_count = 0;
  if (!GetVarint(&data, &delivery_count)) return truncated();
  checkpoint.deliveries.reserve(delivery_count);
  for (uint64_t i = 0; i < delivery_count; ++i) {
    DeliverySnapshot delivery;
    if (!GetSigned(&data, &delivery.query_id) ||
        !GetVarint(&data, &delivery.items) ||
        !GetVarint(&data, &delivery.content_hash)) {
      return truncated();
    }
    checkpoint.deliveries.push_back(delivery);
  }
  if (!data.empty()) {
    return Status::ParseError("trailing bytes in checkpoint " + path);
  }
  return checkpoint;
}

}  // namespace streamshare::serve
