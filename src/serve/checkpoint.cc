#include "serve/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "serve/crashpoint.h"
#include "transport/wire.h"

namespace streamshare::serve {

namespace {

using transport::GetVarint;
using transport::PutVarint;

constexpr char kMagic[] = "SSCKPT02";
constexpr size_t kMagicLen = sizeof(kMagic) - 1;

uint64_t Mix(uint64_t h, uint64_t v) {
  // splitmix64 finalizer as the fold step.
  h ^= v + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  uint64_t z = h;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

uint64_t MixString(uint64_t h, std::string_view text) {
  h = Mix(h, text.size());
  for (char c : text) h = Mix(h, static_cast<unsigned char>(c));
  return h;
}

uint64_t MixDouble(uint64_t h, double value) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return Mix(h, bits);
}

void PutString(std::string* out, std::string_view text) {
  PutVarint(out, text.size());
  out->append(text);
}

bool GetString(std::string_view* data, std::string* out) {
  uint64_t length = 0;
  if (!GetVarint(data, &length) || data->size() < length) return false;
  out->assign(data->substr(0, length));
  data->remove_prefix(length);
  return true;
}

uint64_t Zig(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t Unzig(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

bool GetSigned(std::string_view* data, int64_t* out) {
  uint64_t raw = 0;
  if (!GetVarint(data, &raw)) return false;
  *out = Unzig(raw);
  return true;
}

}  // namespace

uint64_t ScenarioFingerprint(const workload::ScenarioSpec& scenario) {
  uint64_t h = 0x5353464Eull;  // "SSFN"
  h = MixString(h, scenario.name);
  h = Mix(h, scenario.topology.peer_count());
  h = Mix(h, scenario.topology.link_count());
  for (const network::Link& link : scenario.topology.links()) {
    h = Mix(h, static_cast<uint64_t>(link.a));
    h = Mix(h, static_cast<uint64_t>(link.b));
    h = MixDouble(h, link.bandwidth_kbps);
  }
  for (const network::Peer& peer : scenario.topology.peers()) {
    h = MixString(h, peer.name);
    h = MixDouble(h, peer.max_load);
  }
  h = Mix(h, scenario.streams.size());
  for (const workload::StreamSpec& stream : scenario.streams) {
    h = MixString(h, stream.name);
    h = Mix(h, static_cast<uint64_t>(stream.source));
    h = Mix(h, stream.gen.seed);
    h = MixDouble(h, stream.gen.frequency_hz);
    h = MixDouble(h, stream.gen.det_time_increment_mean);
    h = Mix(h, stream.gen.hot_regions.size());
    for (const workload::SkyBox& box : stream.gen.hot_regions) {
      h = MixDouble(h, box.ra_min);
      h = MixDouble(h, box.ra_max);
      h = MixDouble(h, box.dec_min);
      h = MixDouble(h, box.dec_max);
    }
    for (double weight : stream.gen.hot_weights) {
      h = MixDouble(h, weight);
    }
  }
  return h == 0 ? 1 : h;
}

namespace {

/// Fsyncs the directory holding `path`, making a just-renamed entry
/// durable (the rename itself lives in directory metadata).
Status SyncParentDir(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("cannot open directory " + dir + ": " +
                            std::strerror(errno));
  }
  int synced = ::fsync(fd);
  ::close(fd);
  if (synced != 0) {
    return Status::Internal("fsync of directory " + dir + " failed: " +
                            std::strerror(errno));
  }
  return Status::Ok();
}

/// The crash-atomic writer: temp file in the same directory, fsync the
/// file, rename over the target, fsync the directory. `fail_after_bytes`
/// is the unit-test fault seam — writing stops there and the call errors
/// out with the partial temp file left behind, exactly what a crash
/// mid-write leaves.
Status WriteFileAtomic(const std::string& path, std::string_view bytes,
                       size_t fail_after_bytes) {
  std::string temp = path + ".tmp";
  crashpoint::MaybeCrash(crashpoint::kCkptPreTempWrite);
  int fd = ::open(temp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot write checkpoint " + temp + ": " +
                            std::strerror(errno));
  }
  // Two write halves with the mid-write crashpoint between them: the
  // bytes of the first half really reach the kernel before the kill.
  size_t total = std::min(bytes.size(), fail_after_bytes);
  size_t half = total / 2;
  auto write_all = [fd](const char* data, size_t n) {
    size_t done = 0;
    while (done < n) {
      ssize_t wrote = ::write(fd, data + done, n - done);
      if (wrote < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      done += static_cast<size_t>(wrote);
    }
    return true;
  };
  bool ok = write_all(bytes.data(), half);
  crashpoint::MaybeCrash(crashpoint::kCkptMidTempWrite);
  ok = ok && write_all(bytes.data() + half, total - half);
  if (fail_after_bytes < bytes.size()) {
    // Fault injection: die here (without cleanup — a crash would not
    // clean up either).
    ::close(fd);
    return Status::Internal("fault injection: checkpoint write stopped after " +
                            std::to_string(total) + " bytes");
  }
  ok = ok && ::fsync(fd) == 0;
  ::close(fd);
  if (!ok) {
    std::remove(temp.c_str());
    return Status::Internal("short write on checkpoint " + temp);
  }
  crashpoint::MaybeCrash(crashpoint::kCkptPreRename);
  if (std::rename(temp.c_str(), path.c_str()) != 0) {
    std::remove(temp.c_str());
    return Status::Internal("cannot rename checkpoint into place: " +
                            std::string(std::strerror(errno)));
  }
  return SyncParentDir(path);
}

std::string EncodeCheckpoint(const Checkpoint& checkpoint) {
  std::string out(kMagic, kMagicLen);
  PutVarint(&out, checkpoint.scenario_fingerprint);
  PutVarint(&out, checkpoint.epoch);
  PutVarint(&out, checkpoint.generation);
  PutVarint(&out, checkpoint.items_fed);
  PutVarint(&out, checkpoint.events.size());
  for (const LogEvent& event : checkpoint.events) {
    AppendLogEvent(&out, event);
  }
  PutVarint(&out, checkpoint.deliveries.size());
  for (const DeliverySnapshot& delivery : checkpoint.deliveries) {
    PutVarint(&out, Zig(delivery.query_id));
    PutVarint(&out, delivery.items);
    PutVarint(&out, delivery.content_hash);
  }
  return out;
}

}  // namespace

void AppendLogEvent(std::string* out, const LogEvent& event) {
  PutVarint(out, static_cast<uint64_t>(event.kind));
  PutVarint(out, event.at_items);
  switch (event.kind) {
    case LogEvent::Kind::kSubscribe:
      PutVarint(out, Zig(event.vq));
      PutVarint(out, event.strategy);
      PutString(out, event.query_text);
      break;
    case LogEvent::Kind::kUnsubscribe:
      PutVarint(out, Zig(event.query_id));
      break;
    case LogEvent::Kind::kFailPeer:
      PutVarint(out, Zig(event.peer));
      break;
    case LogEvent::Kind::kCutLink:
      PutVarint(out, Zig(event.link_a));
      PutVarint(out, Zig(event.link_b));
      break;
    case LogEvent::Kind::kReoptimize:
      PutVarint(out, Zig(event.max_migrations));
      break;
  }
}

bool ParseLogEvent(std::string_view* data, LogEvent* event) {
  uint64_t kind = 0, strategy = 0;
  if (!GetVarint(data, &kind) || !GetVarint(data, &event->at_items)) {
    return false;
  }
  if (kind < static_cast<uint64_t>(LogEvent::Kind::kSubscribe) ||
      kind > static_cast<uint64_t>(LogEvent::Kind::kReoptimize)) {
    return false;
  }
  event->kind = static_cast<LogEvent::Kind>(kind);
  switch (event->kind) {
    case LogEvent::Kind::kSubscribe:
      if (!GetSigned(data, &event->vq) || !GetVarint(data, &strategy) ||
          !GetString(data, &event->query_text)) {
        return false;
      }
      event->strategy = static_cast<uint8_t>(strategy);
      break;
    case LogEvent::Kind::kUnsubscribe:
      if (!GetSigned(data, &event->query_id)) return false;
      break;
    case LogEvent::Kind::kFailPeer:
      if (!GetSigned(data, &event->peer)) return false;
      break;
    case LogEvent::Kind::kCutLink:
      if (!GetSigned(data, &event->link_a) ||
          !GetSigned(data, &event->link_b)) {
        return false;
      }
      break;
    case LogEvent::Kind::kReoptimize:
      if (!GetSigned(data, &event->max_migrations)) return false;
      break;
  }
  return true;
}

Status SaveCheckpoint(const std::string& path,
                      const Checkpoint& checkpoint) {
  return WriteFileAtomic(path, EncodeCheckpoint(checkpoint),
                         static_cast<size_t>(-1));
}

Status SaveCheckpointFaulted(const std::string& path,
                             const Checkpoint& checkpoint,
                             size_t fail_after_bytes) {
  std::string encoded = EncodeCheckpoint(checkpoint);
  if (fail_after_bytes >= encoded.size()) {
    return Status::InvalidArgument(
        "fault offset past the end of the encoding (" +
        std::to_string(encoded.size()) + " bytes) would not fault");
  }
  return WriteFileAtomic(path, encoded, fail_after_bytes);
}

Result<Checkpoint> LoadCheckpoint(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("no checkpoint at " + path);
  }
  std::string bytes;
  char chunk[16384];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.append(chunk, n);
  }
  std::fclose(file);

  std::string_view data = bytes;
  if (data.size() < kMagicLen ||
      data.substr(0, kMagicLen) != std::string_view(kMagic, kMagicLen)) {
    return Status::ParseError(path + " is not a streamshare checkpoint");
  }
  data.remove_prefix(kMagicLen);

  auto truncated = [&path]() {
    return Status::ParseError("truncated checkpoint " + path);
  };
  Checkpoint checkpoint;
  uint64_t event_count = 0;
  if (!GetVarint(&data, &checkpoint.scenario_fingerprint) ||
      !GetVarint(&data, &checkpoint.epoch) ||
      !GetVarint(&data, &checkpoint.generation) ||
      !GetVarint(&data, &checkpoint.items_fed) ||
      !GetVarint(&data, &event_count)) {
    return truncated();
  }
  checkpoint.events.reserve(event_count);
  for (uint64_t i = 0; i < event_count; ++i) {
    LogEvent event;
    if (!ParseLogEvent(&data, &event)) return truncated();
    checkpoint.events.push_back(std::move(event));
  }
  uint64_t delivery_count = 0;
  if (!GetVarint(&data, &delivery_count)) return truncated();
  checkpoint.deliveries.reserve(delivery_count);
  for (uint64_t i = 0; i < delivery_count; ++i) {
    DeliverySnapshot delivery;
    if (!GetSigned(&data, &delivery.query_id) ||
        !GetVarint(&data, &delivery.items) ||
        !GetVarint(&data, &delivery.content_hash)) {
      return truncated();
    }
    checkpoint.deliveries.push_back(delivery);
  }
  if (!data.empty()) {
    return Status::ParseError("trailing bytes in checkpoint " + path);
  }
  return checkpoint;
}

}  // namespace streamshare::serve
