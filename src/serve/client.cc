#include "serve/client.h"

#include <poll.h>

#include <algorithm>
#include <utility>

#include "engine/latency.h"
#include "engine/operator.h"
#include "xml/xml_node.h"

namespace streamshare::serve {

namespace {

using engine::latency::NowUs;

// The failures a reconnect can heal: the peer vanished (EOF, refused,
// reset — Unavailable) or the socket broke mid-request (errno paths
// surface as Internal). Structured rejections keep their codes and are
// never retried.
bool IsConnectionLoss(const Status& status) {
  return status.IsUnavailable() || status.IsInternal();
}

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

ServeClient::ServeClient(ClientOptions options)
    : options_(std::move(options)) {
  jitter_state_ = options_.reconnect.jitter_seed;
}

Status ServeClient::Connect() {
  DialOptions dial = options_.dial;
  dial.timeout_ms = options_.timeout_ms;
  SS_ASSIGN_OR_RETURN(conn_, ConnectTcp(options_.host, options_.port, dial));
  decoder_.Reset();
  ControlRequest hello;
  hello.verb = Verb::kHello;
  hello.protocol = kServeProtocolVersion;
  hello.client_name = options_.name;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(hello));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  SS_ASSIGN_OR_RETURN(hello_, DecodeHelloReply(response.payload));
  return Status::Ok();
}

void ServeClient::Close() { conn_.Close(); }

Result<SubscribeReply> ServeClient::Subscribe(const std::string& query_text,
                                              int64_t vq,
                                              uint8_t strategy) {
  ControlRequest request;
  request.verb = Verb::kSubscribe;
  request.query_text = query_text;
  request.vq = vq;
  request.strategy = strategy;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  SS_ASSIGN_OR_RETURN(SubscribeReply reply,
                      DecodeSubscribeReply(response.payload));
  if (reply.accepted) attached_.insert(reply.query_id);
  return reply;
}

Result<SubscribeReply> ServeClient::Attach(int64_t query_id,
                                           uint64_t resume_from) {
  ControlRequest request;
  request.verb = Verb::kSubscribe;
  request.attach_query_plus1 = static_cast<uint64_t>(query_id) + 1;
  request.resume_from = resume_from;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  SS_ASSIGN_OR_RETURN(SubscribeReply reply,
                      DecodeSubscribeReply(response.payload));
  if (reply.accepted) attached_.insert(reply.query_id);
  return reply;
}

Result<SubscribeBatchReply> ServeClient::SubscribeBatch(
    const std::vector<ControlRequest::BatchEntry>& entries) {
  ControlRequest request;
  request.verb = Verb::kSubscribeBatch;
  request.batch = entries;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  SS_ASSIGN_OR_RETURN(SubscribeBatchReply reply,
                      DecodeSubscribeBatchReply(response.payload));
  for (const SubscribeReply& entry : reply.entries) {
    if (entry.accepted) attached_.insert(entry.query_id);
  }
  return reply;
}

Result<ReoptimizeReply> ServeClient::Reoptimize(int64_t max_migrations) {
  ControlRequest request;
  request.verb = Verb::kReoptimize;
  request.max_migrations = max_migrations;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeReoptimizeReply(response.payload);
}

Status ServeClient::Unsubscribe(int64_t query_id) {
  ControlRequest request;
  request.verb = Verb::kUnsubscribe;
  request.query_id = query_id;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  Status acked = ResponseStatus(response);
  if (acked.ok()) attached_.erase(query_id);
  return acked;
}

Result<RecoveryReply> ServeClient::FailPeer(int64_t peer) {
  ControlRequest request;
  request.verb = Verb::kFailPeer;
  request.peer = peer;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeRecoveryReply(response.payload);
}

Result<RecoveryReply> ServeClient::CutLink(int64_t link_a, int64_t link_b) {
  ControlRequest request;
  request.verb = Verb::kCutLink;
  request.link_a = link_a;
  request.link_b = link_b;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeRecoveryReply(response.payload);
}

Result<StatsReply> ServeClient::Stats() {
  ControlRequest request;
  request.verb = Verb::kStats;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeStatsReply(response.payload);
}

Result<FeedReply> ServeClient::Feed(uint64_t count) {
  ControlRequest request;
  request.verb = Verb::kFeed;
  request.feed_items = count;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeFeedReply(response.payload);
}

Result<DrainReply> ServeClient::Drain(bool final_drain) {
  ControlRequest request;
  request.verb = Verb::kDrain;
  request.final_drain = final_drain;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeDrainReply(response.payload);
}

Status ServeClient::Detach() {
  ControlRequest request;
  request.verb = Verb::kDetach;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  Status acked = ResponseStatus(response);
  if (acked.ok()) attached_.clear();
  return acked;
}

int ServeClient::NextBackoffMs(int* backoff_ms) {
  const ReconnectOptions& r = options_.reconnect;
  int base = *backoff_ms;
  *backoff_ms = std::min(base * 2, std::max(1, r.max_backoff_ms));
  double jitter = std::min(std::max(r.jitter, 0.0), 1.0);
  // uniform in [1 - jitter, 1]
  double u = static_cast<double>(SplitMix64(&jitter_state_) >> 11) /
             static_cast<double>(1ull << 53);
  double scale = 1.0 - jitter * u;
  return std::max(1, static_cast<int>(base * scale));
}

Status ServeClient::Reconnect() {
  Close();
  int backoff_ms = std::max(1, options_.reconnect.initial_backoff_ms);
  Status last = Status::Unavailable("reconnect never attempted");
  for (int attempt = 0; attempt < options_.reconnect.max_attempts;
       ++attempt) {
    if (attempt > 0) ::poll(nullptr, 0, NextBackoffMs(&backoff_ms));
    last = Connect();
    if (!last.ok()) {
      if (IsConnectionLoss(last)) continue;
      return last;
    }
    // Re-attach everything this client was serving, each resuming at
    // the first delivery the accumulated observation does not hold.
    std::set<int64_t> attached = attached_;
    bool lost_mid_attach = false;
    for (int64_t query_id : attached) {
      Result<SubscribeReply> reply =
          Attach(query_id, results(query_id).next_seq);
      if (reply.ok()) continue;
      if (reply.status().IsNotFound()) {
        // The recovered daemon has no such query (it was never acked
        // durable); our attachment claim is stale, not the daemon.
        attached_.erase(query_id);
        continue;
      }
      last = reply.status();
      if (IsConnectionLoss(last)) {
        lost_mid_attach = true;
        break;
      }
      return last;
    }
    if (lost_mid_attach) {
      Close();
      continue;
    }
    return Status::Ok();
  }
  return Status::Unavailable(
      "reconnect gave up after " +
      std::to_string(options_.reconnect.max_attempts) +
      " attempts: " + last.message());
}

Status ServeClient::RunWithReconnect(const std::function<Status()>& op) {
  Status last = op();
  for (int attempt = 0;
       !last.ok() && IsConnectionLoss(last) &&
       attempt < options_.reconnect.max_attempts;
       ++attempt) {
    SS_RETURN_IF_ERROR(Reconnect());
    last = op();
  }
  return last;
}

Status ServeClient::PollResults(int timeout_ms) {
  int wait_ms = timeout_ms;
  while (true) {
    transport::Frame frame;
    Result<ConnEvent> event = conn_.RecvFrame(&frame, wait_ms);
    if (!event.ok()) {
      // Silence means everything in flight has arrived.
      if (event.status().IsDeadlineExceeded()) return Status::Ok();
      return event.status();
    }
    if (*event == ConnEvent::kUnsupported) continue;
    if (frame.type == transport::FrameType::kResult) {
      SS_RETURN_IF_ERROR(AccumulateResult(frame));
      // Once deliveries are flowing, the rest follow back-to-back.
      wait_ms = 50;
      continue;
    }
    return Status::Internal("unexpected frame type " +
                            std::to_string(frame.raw_type) +
                            " while polling results");
  }
}

Result<ServeEos> ServeClient::WaitEos(int timeout_ms) {
  while (true) {
    transport::Frame frame;
    SS_ASSIGN_OR_RETURN(ConnEvent event,
                        conn_.RecvFrame(&frame, timeout_ms));
    if (event == ConnEvent::kUnsupported) continue;
    if (frame.type == transport::FrameType::kResult) {
      SS_RETURN_IF_ERROR(AccumulateResult(frame));
      continue;
    }
    if (frame.type == transport::FrameType::kEos) {
      return DecodeServeEos(frame.body);
    }
    return Status::Internal("unexpected frame type " +
                            std::to_string(frame.raw_type) +
                            " while waiting for EOS");
  }
}

ClientQueryResults ServeClient::results(int64_t query_id) const {
  auto it = results_.find(query_id);
  return it == results_.end() ? ClientQueryResults() : it->second;
}

Result<ControlResponse> ServeClient::Call(const ControlRequest& request) {
  ControlRequest stamped = request;
  stamped.request_id = next_request_id_++;
  SS_RETURN_IF_ERROR(conn_.QueueFrame(transport::FrameType::kControl,
                                      EncodeRequest(stamped)));
  SS_RETURN_IF_ERROR(conn_.FlushAll(options_.timeout_ms));
  while (true) {
    transport::Frame frame;
    SS_ASSIGN_OR_RETURN(ConnEvent event,
                        conn_.RecvFrame(&frame, options_.timeout_ms));
    if (event == ConnEvent::kUnsupported) {
      // A daemon never initiates traffic we can't decode; drop it.
      continue;
    }
    if (frame.type == transport::FrameType::kResult) {
      // Deliveries interleave freely with the ACK we are waiting for.
      SS_RETURN_IF_ERROR(AccumulateResult(frame));
      continue;
    }
    if (frame.type == transport::FrameType::kControlAck) {
      SS_ASSIGN_OR_RETURN(ControlResponse response,
                          DecodeResponse(frame.body));
      if (response.request_id != 0 &&
          response.request_id != stamped.request_id) {
        return Status::Internal(
            "response for request " +
            std::to_string(response.request_id) + " while waiting on " +
            std::to_string(stamped.request_id));
      }
      return response;
    }
    if (frame.type == transport::FrameType::kEos) {
      SS_ASSIGN_OR_RETURN(ServeEos eos, DecodeServeEos(frame.body));
      return Status::Unavailable(
          eos.final_drain ? "daemon drained (final)"
                          : "daemon drained (restartable)");
    }
    return Status::Internal("unexpected frame type " +
                            std::to_string(frame.raw_type) +
                            " while waiting for an ACK");
  }
}

Status ServeClient::AccumulateResult(const transport::Frame& frame) {
  uint64_t received_us = NowUs();
  SS_ASSIGN_OR_RETURN(ResultFrame result, DecodeResultFrame(frame.body));
  std::unique_ptr<xml::XmlNode> item;
  SS_RETURN_IF_ERROR(decoder_.Decode(result.item, &item));
  ClientQueryResults& query = results_[result.query_id];
  if (result.seq < query.next_seq) {
    // Re-delivery of a sequence this observation already holds (a
    // reconnect that resumed below next_seq). The sink history is
    // deterministic and append-only, so the bytes are identical to what
    // was counted the first time — drop it after the decode above (the
    // codec must stay in lockstep with the daemon's encoder).
    return Status::Ok();
  }
  // Mirror SinkOp::Process exactly so live observations diff cleanly
  // against a batch run's sink.
  query.items += 1;
  query.bytes += item->SerializedSize();
  query.content_hash += engine::HashItemContent(*item);
  if (result.seq + 1 > query.next_seq) query.next_seq = result.seq + 1;
  if (result.stamped) {
    uint64_t wire_us =
        received_us > result.send_us ? received_us - result.send_us : 0;
    query.residency_us.push_back(result.residency_us);
    query.total_us.push_back(result.residency_us + result.transport_us +
                             wire_us);
  }
  return Status::Ok();
}

}  // namespace streamshare::serve
