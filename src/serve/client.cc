#include "serve/client.h"

#include <utility>

#include "engine/latency.h"
#include "engine/operator.h"
#include "xml/xml_node.h"

namespace streamshare::serve {

namespace {

using engine::latency::NowUs;

}  // namespace

ServeClient::ServeClient(ClientOptions options)
    : options_(std::move(options)) {}

Status ServeClient::Connect() {
  SS_ASSIGN_OR_RETURN(
      conn_, ConnectTcp(options_.host, options_.port, options_.timeout_ms));
  decoder_.Reset();
  ControlRequest hello;
  hello.verb = Verb::kHello;
  hello.protocol = kServeProtocolVersion;
  hello.client_name = options_.name;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(hello));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  SS_ASSIGN_OR_RETURN(hello_, DecodeHelloReply(response.payload));
  return Status::Ok();
}

void ServeClient::Close() { conn_.Close(); }

Result<SubscribeReply> ServeClient::Subscribe(const std::string& query_text,
                                              int64_t vq,
                                              uint8_t strategy) {
  ControlRequest request;
  request.verb = Verb::kSubscribe;
  request.query_text = query_text;
  request.vq = vq;
  request.strategy = strategy;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeSubscribeReply(response.payload);
}

Result<SubscribeReply> ServeClient::Attach(int64_t query_id,
                                           uint64_t resume_from) {
  ControlRequest request;
  request.verb = Verb::kSubscribe;
  request.attach_query_plus1 = static_cast<uint64_t>(query_id) + 1;
  request.resume_from = resume_from;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeSubscribeReply(response.payload);
}

Result<SubscribeBatchReply> ServeClient::SubscribeBatch(
    const std::vector<ControlRequest::BatchEntry>& entries) {
  ControlRequest request;
  request.verb = Verb::kSubscribeBatch;
  request.batch = entries;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeSubscribeBatchReply(response.payload);
}

Result<ReoptimizeReply> ServeClient::Reoptimize(int64_t max_migrations) {
  ControlRequest request;
  request.verb = Verb::kReoptimize;
  request.max_migrations = max_migrations;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeReoptimizeReply(response.payload);
}

Status ServeClient::Unsubscribe(int64_t query_id) {
  ControlRequest request;
  request.verb = Verb::kUnsubscribe;
  request.query_id = query_id;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  return ResponseStatus(response);
}

Result<RecoveryReply> ServeClient::FailPeer(int64_t peer) {
  ControlRequest request;
  request.verb = Verb::kFailPeer;
  request.peer = peer;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeRecoveryReply(response.payload);
}

Result<RecoveryReply> ServeClient::CutLink(int64_t link_a, int64_t link_b) {
  ControlRequest request;
  request.verb = Verb::kCutLink;
  request.link_a = link_a;
  request.link_b = link_b;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeRecoveryReply(response.payload);
}

Result<StatsReply> ServeClient::Stats() {
  ControlRequest request;
  request.verb = Verb::kStats;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeStatsReply(response.payload);
}

Result<FeedReply> ServeClient::Feed(uint64_t count) {
  ControlRequest request;
  request.verb = Verb::kFeed;
  request.feed_items = count;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeFeedReply(response.payload);
}

Result<DrainReply> ServeClient::Drain(bool final_drain) {
  ControlRequest request;
  request.verb = Verb::kDrain;
  request.final_drain = final_drain;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  SS_RETURN_IF_ERROR(ResponseStatus(response));
  return DecodeDrainReply(response.payload);
}

Status ServeClient::Detach() {
  ControlRequest request;
  request.verb = Verb::kDetach;
  SS_ASSIGN_OR_RETURN(ControlResponse response, Call(request));
  return ResponseStatus(response);
}

Status ServeClient::PollResults(int timeout_ms) {
  int wait_ms = timeout_ms;
  while (true) {
    transport::Frame frame;
    Result<ConnEvent> event = conn_.RecvFrame(&frame, wait_ms);
    if (!event.ok()) {
      // Silence means everything in flight has arrived.
      if (event.status().IsDeadlineExceeded()) return Status::Ok();
      return event.status();
    }
    if (*event == ConnEvent::kUnsupported) continue;
    if (frame.type == transport::FrameType::kResult) {
      SS_RETURN_IF_ERROR(AccumulateResult(frame));
      // Once deliveries are flowing, the rest follow back-to-back.
      wait_ms = 50;
      continue;
    }
    return Status::Internal("unexpected frame type " +
                            std::to_string(frame.raw_type) +
                            " while polling results");
  }
}

Result<ServeEos> ServeClient::WaitEos(int timeout_ms) {
  while (true) {
    transport::Frame frame;
    SS_ASSIGN_OR_RETURN(ConnEvent event,
                        conn_.RecvFrame(&frame, timeout_ms));
    if (event == ConnEvent::kUnsupported) continue;
    if (frame.type == transport::FrameType::kResult) {
      SS_RETURN_IF_ERROR(AccumulateResult(frame));
      continue;
    }
    if (frame.type == transport::FrameType::kEos) {
      return DecodeServeEos(frame.body);
    }
    return Status::Internal("unexpected frame type " +
                            std::to_string(frame.raw_type) +
                            " while waiting for EOS");
  }
}

ClientQueryResults ServeClient::results(int64_t query_id) const {
  auto it = results_.find(query_id);
  return it == results_.end() ? ClientQueryResults() : it->second;
}

Result<ControlResponse> ServeClient::Call(const ControlRequest& request) {
  ControlRequest stamped = request;
  stamped.request_id = next_request_id_++;
  SS_RETURN_IF_ERROR(conn_.QueueFrame(transport::FrameType::kControl,
                                      EncodeRequest(stamped)));
  SS_RETURN_IF_ERROR(conn_.FlushAll(options_.timeout_ms));
  while (true) {
    transport::Frame frame;
    SS_ASSIGN_OR_RETURN(ConnEvent event,
                        conn_.RecvFrame(&frame, options_.timeout_ms));
    if (event == ConnEvent::kUnsupported) {
      // A daemon never initiates traffic we can't decode; drop it.
      continue;
    }
    if (frame.type == transport::FrameType::kResult) {
      // Deliveries interleave freely with the ACK we are waiting for.
      SS_RETURN_IF_ERROR(AccumulateResult(frame));
      continue;
    }
    if (frame.type == transport::FrameType::kControlAck) {
      SS_ASSIGN_OR_RETURN(ControlResponse response,
                          DecodeResponse(frame.body));
      if (response.request_id != 0 &&
          response.request_id != stamped.request_id) {
        return Status::Internal(
            "response for request " +
            std::to_string(response.request_id) + " while waiting on " +
            std::to_string(stamped.request_id));
      }
      return response;
    }
    if (frame.type == transport::FrameType::kEos) {
      SS_ASSIGN_OR_RETURN(ServeEos eos, DecodeServeEos(frame.body));
      return Status::Unavailable(
          eos.final_drain ? "daemon drained (final)"
                          : "daemon drained (restartable)");
    }
    return Status::Internal("unexpected frame type " +
                            std::to_string(frame.raw_type) +
                            " while waiting for an ACK");
  }
}

Status ServeClient::AccumulateResult(const transport::Frame& frame) {
  uint64_t received_us = NowUs();
  SS_ASSIGN_OR_RETURN(ResultFrame result, DecodeResultFrame(frame.body));
  std::unique_ptr<xml::XmlNode> item;
  SS_RETURN_IF_ERROR(decoder_.Decode(result.item, &item));
  ClientQueryResults& query = results_[result.query_id];
  // Mirror SinkOp::Process exactly so live observations diff cleanly
  // against a batch run's sink.
  query.items += 1;
  query.bytes += item->SerializedSize();
  query.content_hash += engine::HashItemContent(*item);
  if (result.seq + 1 > query.next_seq) query.next_seq = result.seq + 1;
  if (result.stamped) {
    uint64_t wire_us =
        received_us > result.send_us ? received_us - result.send_us : 0;
    query.residency_us.push_back(result.residency_us);
    query.total_us.push_back(result.residency_us + result.transport_us +
                             wire_us);
  }
  return Status::Ok();
}

}  // namespace streamshare::serve
