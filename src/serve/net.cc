#include "serve/net.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <utility>

namespace streamshare::serve {

namespace {

using Clock = std::chrono::steady_clock;

Status Errno(const std::string& what) {
  return Status::Internal(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

}  // namespace

FrameConn::FrameConn(int fd, std::string label)
    : fd_(fd), label_(std::move(label)) {}

FrameConn::~FrameConn() { Close(); }

FrameConn::FrameConn(FrameConn&& other) noexcept
    : fd_(other.fd_),
      label_(std::move(other.label_)),
      rx_buffer_(std::move(other.rx_buffer_)),
      tx_buffer_(std::move(other.tx_buffer_)),
      current_frame_(std::move(other.current_frame_)),
      bytes_sent_(other.bytes_sent_),
      bytes_received_(other.bytes_received_) {
  other.fd_ = -1;
}

FrameConn& FrameConn::operator=(FrameConn&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    label_ = std::move(other.label_);
    rx_buffer_ = std::move(other.rx_buffer_);
    tx_buffer_ = std::move(other.tx_buffer_);
    current_frame_ = std::move(other.current_frame_);
    bytes_sent_ = other.bytes_sent_;
    bytes_received_ = other.bytes_received_;
    other.fd_ = -1;
  }
  return *this;
}

void FrameConn::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status FrameConn::QueueFrame(transport::FrameType type,
                             std::string_view body, uint8_t version) {
  if (fd_ < 0) return Status::Unavailable(label_ + ": connection closed");
  transport::AppendFrame(&tx_buffer_, type, body, version);
  return FlushSome();
}

Status FrameConn::FlushSome() {
  if (fd_ < 0) return Status::Unavailable(label_ + ": connection closed");
  while (!tx_buffer_.empty()) {
    // MSG_NOSIGNAL: a vanished peer must surface as a Status, not a
    // process-killing SIGPIPE.
    ssize_t n = ::send(fd_, tx_buffer_.data(), tx_buffer_.size(),
                       MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable(label_ + ": peer closed connection");
      }
      return Errno(label_ + ": send");
    }
    bytes_sent_ += static_cast<uint64_t>(n);
    tx_buffer_.erase(0, static_cast<size_t>(n));
  }
  return Status::Ok();
}

Status FrameConn::FlushAll(int timeout_ms) {
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    SS_RETURN_IF_ERROR(FlushSome());
    if (tx_buffer_.empty()) return Status::Ok();
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) {
      return Status::DeadlineExceeded(label_ + ": flush timed out");
    }
    struct pollfd pfd = {fd_, POLLOUT, 0};
    if (::poll(&pfd, 1, static_cast<int>(left.count())) < 0 &&
        errno != EINTR) {
      return Errno(label_ + ": poll");
    }
  }
}

Status FrameConn::ReadSome() {
  if (fd_ < 0) return Status::Unavailable(label_ + ": connection closed");
  char chunk[16384];
  while (true) {
    ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      rx_buffer_.append(chunk, static_cast<size_t>(n));
      bytes_received_ += static_cast<uint64_t>(n);
      if (static_cast<size_t>(n) < sizeof(chunk)) return Status::Ok();
      continue;
    }
    if (n == 0) {
      return Status::Unavailable(label_ + ": peer closed connection");
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return Status::Ok();
    if (errno == ECONNRESET) {
      return Status::Unavailable(label_ + ": connection reset");
    }
    return Errno(label_ + ": recv");
  }
}

Result<ConnEvent> FrameConn::TryParse(transport::Frame* frame) {
  size_t consumed = 0;
  transport::ParseResult parsed =
      transport::ParseFrame(rx_buffer_, frame, &consumed);
  switch (parsed) {
    case transport::ParseResult::kFrame:
    case transport::ParseResult::kUnsupported: {
      // Move the frame bytes into the scratch buffer so the body view
      // stays valid after rx_buffer_ shifts.
      current_frame_.assign(rx_buffer_, 0, consumed);
      rx_buffer_.erase(0, consumed);
      size_t body_offset = current_frame_.size() - frame->body.size();
      frame->body = std::string_view(current_frame_)
                        .substr(body_offset, frame->body.size());
      return parsed == transport::ParseResult::kUnsupported
                 ? ConnEvent::kUnsupported
                 : ConnEvent::kFrame;
    }
    case transport::ParseResult::kNeedMore:
      return ConnEvent::kNeedMore;
    case transport::ParseResult::kMalformed:
      return Status::ParseError(label_ + ": malformed frame");
  }
  return Status::Internal(label_ + ": unreachable parse state");
}

Result<ConnEvent> FrameConn::RecvFrame(transport::Frame* frame,
                                       int timeout_ms) {
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(timeout_ms);
  while (true) {
    SS_ASSIGN_OR_RETURN(ConnEvent event, TryParse(frame));
    if (event != ConnEvent::kNeedMore) return event;
    int wait_ms = -1;
    if (timeout_ms >= 0) {
      auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - Clock::now());
      wait_ms = static_cast<int>(left.count());
      if (wait_ms < 0) wait_ms = 0;
    }
    struct pollfd pfd = {fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, wait_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Errno(label_ + ": poll");
    }
    if (ready == 0) {
      return Status::DeadlineExceeded(label_ + ": recv timed out");
    }
    SS_RETURN_IF_ERROR(ReadSome());
  }
}

Listener::~Listener() { Close(); }

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status Listener::Bind(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    ::close(fd);
    return Errno("bind");
  }
  if (::listen(fd, 16) < 0) {
    ::close(fd);
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) <
      0) {
    ::close(fd);
    return Errno("getsockname");
  }
  Status nonblock = SetNonBlocking(fd);
  if (!nonblock.ok()) {
    ::close(fd);
    return nonblock;
  }
  fd_ = fd;
  port_ = ntohs(addr.sin_port);
  return Status::Ok();
}

Result<FrameConn> Listener::Accept() {
  struct sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  int fd = ::accept(fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  if (fd < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::Unavailable("no pending connection");
    }
    return Errno("accept");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Status nonblock = SetNonBlocking(fd);
  if (!nonblock.ok()) {
    ::close(fd);
    return nonblock;
  }
  return FrameConn(fd, "serve-conn-" + std::to_string(fd));
}

Result<FrameConn> ConnectTcp(const std::string& host, int port,
                             int timeout_ms) {
  DialOptions options;
  options.timeout_ms = timeout_ms;
  return ConnectTcp(host, port, options);
}

Result<FrameConn> ConnectTcp(const std::string& host, int port,
                             const DialOptions& options) {
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options.timeout_ms);
  int backoff_ms = std::max(1, options.initial_backoff_ms);
  while (true) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Errno("socket");
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      ::close(fd);
      return Status::InvalidArgument("bad host address: " + host);
    }
    if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      Status nonblock = SetNonBlocking(fd);
      if (!nonblock.ok()) {
        ::close(fd);
        return nonblock;
      }
      return FrameConn(fd, "serve-client-" + std::to_string(fd));
    }
    int saved = errno;
    ::close(fd);
    if (Clock::now() + std::chrono::milliseconds(backoff_ms) > deadline) {
      return Status::Unavailable("connect to " + host + ":" +
                                 std::to_string(port) + " failed: " +
                                 std::strerror(saved));
    }
    ::poll(nullptr, 0, backoff_ms);
    backoff_ms = std::min(backoff_ms * 2, std::max(1, options.max_backoff_ms));
  }
}

}  // namespace streamshare::serve
