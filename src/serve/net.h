// Minimal socket plumbing for the service plane: a localhost TCP
// listener and a buffered frame connection speaking the wire format of
// transport/wire.h. Unlike the data-plane TcpPipeEnd, a FrameConn
// tolerates kUnsupported frames (it surfaces them to the caller so the
// daemon can answer "unsupported" instead of dropping the connection)
// and separates buffered non-blocking sends (the daemon's event loop
// must never block on a slow client) from blocking receives (the
// client's request/response calls).

#ifndef STREAMSHARE_SERVE_NET_H_
#define STREAMSHARE_SERVE_NET_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "transport/wire.h"

namespace streamshare::serve {

/// What FrameConn::TryParse produced.
enum class ConnEvent {
  kFrame,        // a dispatchable frame
  kUnsupported,  // well-framed but unknown version/type — answer it
  kNeedMore,     // read more bytes first
};

/// One TCP connection carrying wire frames. Owns the fd.
class FrameConn {
 public:
  FrameConn() = default;
  explicit FrameConn(int fd, std::string label);
  ~FrameConn();
  FrameConn(FrameConn&& other) noexcept;
  FrameConn& operator=(FrameConn&& other) noexcept;
  FrameConn(const FrameConn&) = delete;
  FrameConn& operator=(const FrameConn&) = delete;

  bool open() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  const std::string& label() const { return label_; }

  /// Appends one frame to the send buffer and attempts to flush without
  /// blocking. Bytes that do not fit stay buffered; call FlushSome when
  /// the fd polls writable.
  Status QueueFrame(transport::FrameType type, std::string_view body,
                    uint8_t version = transport::kBaseWireVersion);

  /// Writes as much buffered output as the socket accepts right now.
  Status FlushSome();
  /// Blocks until the send buffer is empty (or `timeout_ms` passes).
  Status FlushAll(int timeout_ms);
  bool has_pending_output() const { return !tx_buffer_.empty(); }

  /// Appends freshly received bytes to the parse buffer. Returns
  /// Unavailable on orderly peer close (EOF), Ok when bytes were read or
  /// the read would block.
  Status ReadSome();

  /// Parses the next frame out of the receive buffer. On kFrame and
  /// kUnsupported, `frame` is filled (body aliases an internal buffer
  /// valid until the next TryParse/Recv call) and the bytes consumed.
  Result<ConnEvent> TryParse(transport::Frame* frame);

  /// Blocking receive of the next frame (kUnsupported surfaces as a
  /// kUnsupported ConnEvent too). Used by the client.
  Result<ConnEvent> RecvFrame(transport::Frame* frame, int timeout_ms);

  void Close();

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  int fd_ = -1;
  std::string label_;
  std::string rx_buffer_;
  std::string tx_buffer_;
  /// Scratch holding the bytes of the frame most recently returned by
  /// TryParse, so its body stays valid after rx_buffer_ shifts.
  std::string current_frame_;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

/// Listening localhost socket. Port 0 binds an ephemeral port.
class Listener {
 public:
  Listener() = default;
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  Status Bind(int port);
  /// Accepts one pending connection (non-blocking; call after poll).
  Result<FrameConn> Accept();
  int fd() const { return fd_; }
  int port() const { return port_; }
  void Close();

 private:
  int fd_ = -1;
  int port_ = 0;
};

/// Dial tuning for ConnectTcp. The connect loop retries with doubling
/// sleeps from initial_backoff_ms capped at max_backoff_ms until
/// timeout_ms expires.
struct DialOptions {
  int timeout_ms = 5000;
  int initial_backoff_ms = 5;
  int max_backoff_ms = 200;
};

/// Blocking localhost connect with retries (the daemon may still be
/// binding when a client starts).
Result<FrameConn> ConnectTcp(const std::string& host, int port,
                             const DialOptions& options);
Result<FrameConn> ConnectTcp(const std::string& host, int port,
                             int timeout_ms);

}  // namespace streamshare::serve

#endif  // STREAMSHARE_SERVE_NET_H_
