#include "serve/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "engine/latency.h"
#include "serve/crashpoint.h"
#include "transport/wire.h"

namespace streamshare::serve {

namespace {

using engine::latency::NowUs;
using transport::GetVarint;
using transport::PutVarint;

constexpr char kWalMagic[] = "SSWAL001";
constexpr size_t kWalMagicLen = sizeof(kWalMagic) - 1;
// magic + three 8-byte LE fields + 4-byte CRC of those 24 bytes.
constexpr size_t kWalHeaderLen = kWalMagicLen + 24 + 4;
// A record longer than this is treated as corruption, not a record.
constexpr uint64_t kMaxRecordLen = 16u << 20;

void PutLe32(std::string* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

void PutLe64(std::string* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint32_t GetLe32(std::string_view bytes) {
  uint32_t value = 0;
  for (int i = 3; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(bytes[i]);
  }
  return value;
}

uint64_t GetLe64(std::string_view bytes) {
  uint64_t value = 0;
  for (int i = 7; i >= 0; --i) {
    value = (value << 8) | static_cast<unsigned char>(bytes[i]);
  }
  return value;
}

Status WriteAll(int fd, const char* data, size_t n) {
  size_t done = 0;
  while (done < n) {
    ssize_t wrote = ::write(fd, data + done, n - done);
    if (wrote < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("wal write failed: ") +
                              std::strerror(errno));
    }
    done += static_cast<size_t>(wrote);
  }
  return Status::Ok();
}

Status SyncFd(int fd, const std::string& path) {
  if (::fsync(fd) != 0) {
    return Status::Internal("fsync of " + path + " failed: " +
                            std::strerror(errno));
  }
  return Status::Ok();
}

Status SyncDirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::Internal("cannot open directory " + dir + ": " +
                            std::strerror(errno));
  }
  Status synced = SyncFd(fd, dir);
  ::close(fd);
  return synced;
}

std::string EncodeWalPayload(const WalRecord& record) {
  std::string payload;
  PutVarint(&payload, static_cast<uint64_t>(record.kind));
  if (record.kind == WalRecord::Kind::kEvent) {
    AppendLogEvent(&payload, record.event);
  } else {
    PutVarint(&payload, record.items_fed);
  }
  return payload;
}

bool ParseWalPayload(std::string_view payload, WalRecord* record) {
  uint64_t kind = 0;
  if (!GetVarint(&payload, &kind)) return false;
  if (kind == static_cast<uint64_t>(WalRecord::Kind::kEvent)) {
    record->kind = WalRecord::Kind::kEvent;
    if (!ParseLogEvent(&payload, &record->event)) return false;
  } else if (kind == static_cast<uint64_t>(WalRecord::Kind::kFeed)) {
    record->kind = WalRecord::Kind::kFeed;
    if (!GetVarint(&payload, &record->items_fed)) return false;
  } else {
    return false;
  }
  return payload.empty();
}

}  // namespace

uint32_t Crc32(std::string_view bytes) {
  static const uint32_t* table = [] {
    static uint32_t entries[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) != 0 ? 0xedb88320u : 0u);
      }
      entries[i] = crc;
    }
    return entries;
  }();
  uint32_t crc = 0xffffffffu;
  for (char c : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ static_cast<unsigned char>(c)) & 0xff];
  }
  return crc ^ 0xffffffffu;
}

std::string DefaultWalPath(const std::string& checkpoint_path) {
  return checkpoint_path + ".wal";
}

std::string EncodeWalRecord(const WalRecord& record) {
  std::string payload = EncodeWalPayload(record);
  std::string framed;
  framed.reserve(8 + payload.size());
  PutLe32(&framed, static_cast<uint32_t>(payload.size()));
  PutLe32(&framed, Crc32(payload));
  framed.append(payload);
  return framed;
}

WriteAheadLog::~WriteAheadLog() { Close(); }

WriteAheadLog::WriteAheadLog(WriteAheadLog&& other) noexcept
    : fd_(other.fd_),
      path_(std::move(other.path_)),
      counters_(other.counters_) {
  other.fd_ = -1;
}

WriteAheadLog& WriteAheadLog::operator=(WriteAheadLog&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    counters_ = other.counters_;
    other.fd_ = -1;
  }
  return *this;
}

void WriteAheadLog::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WriteAheadLog> WriteAheadLog::Create(const std::string& path,
                                            const WalHeader& header) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::Internal("cannot create wal " + path + ": " +
                            std::strerror(errno));
  }
  std::string fields;
  PutLe64(&fields, header.scenario_fingerprint);
  PutLe64(&fields, header.epoch);
  PutLe64(&fields, header.base_generation);
  std::string bytes(kWalMagic, kWalMagicLen);
  bytes.append(fields);
  PutLe32(&bytes, Crc32(fields));
  Status written = WriteAll(fd, bytes.data(), bytes.size());
  if (written.ok()) written = SyncFd(fd, path);
  if (!written.ok()) {
    ::close(fd);
    return written;
  }
  SS_RETURN_IF_ERROR(SyncDirOf(path));
  WriteAheadLog wal;
  wal.fd_ = fd;
  wal.path_ = path;
  return wal;
}

Status WriteAheadLog::Append(const WalRecord& record) {
  if (fd_ < 0) return Status::Internal("wal is not open");
  crashpoint::MaybeCrash(crashpoint::kWalPreAppend);
  std::string framed = EncodeWalRecord(record);
  // Two write halves with the mid-record crashpoint between them: the
  // first half genuinely reaches the kernel before the kill, producing a
  // real torn tail for recovery to truncate.
  size_t half = framed.size() / 2;
  SS_RETURN_IF_ERROR(WriteAll(fd_, framed.data(), half));
  crashpoint::MaybeCrash(crashpoint::kWalMidRecord);
  SS_RETURN_IF_ERROR(
      WriteAll(fd_, framed.data() + half, framed.size() - half));
  crashpoint::MaybeCrash(crashpoint::kWalPostAppendPreSync);
  uint64_t start = NowUs();
  SS_RETURN_IF_ERROR(SyncFd(fd_, path_));
  counters_.fsync_us += NowUs() - start;
  counters_.appends += 1;
  counters_.bytes += framed.size();
  return Status::Ok();
}

Result<WalRecovery> RecoverWal(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound("no wal at " + path);
  }
  std::string bytes;
  char chunk[16384];
  size_t n = 0;
  while ((n = std::fread(chunk, 1, sizeof(chunk), file)) > 0) {
    bytes.append(chunk, n);
  }
  std::fclose(file);

  WalRecovery recovery;
  std::string_view data = bytes;
  size_t magic_probe = std::min(data.size(), kWalMagicLen);
  if (data.substr(0, magic_probe) !=
      std::string_view(kWalMagic, magic_probe)) {
    return Status::ParseError(path + " is not a streamshare wal");
  }
  if (data.size() < kWalHeaderLen) {
    // Crash during Create: the log never held a record; the checkpoint
    // beside it is the complete durable history.
    recovery.torn_header = true;
    recovery.torn_tail = true;
    recovery.torn_bytes = data.size();
    return recovery;
  }
  std::string_view fields = data.substr(kWalMagicLen, 24);
  uint32_t crc = GetLe32(data.substr(kWalMagicLen + 24, 4));
  if (crc != Crc32(fields)) {
    recovery.torn_header = true;
    recovery.torn_tail = true;
    recovery.torn_bytes = data.size();
    return recovery;
  }
  recovery.header.scenario_fingerprint = GetLe64(fields.substr(0, 8));
  recovery.header.epoch = GetLe64(fields.substr(8, 8));
  recovery.header.base_generation = GetLe64(fields.substr(16, 8));
  recovery.valid_bytes = kWalHeaderLen;

  data.remove_prefix(kWalHeaderLen);
  while (!data.empty()) {
    // Any mismatch from here on is a torn tail: stop at the last fully
    // valid record — the prefix property ("acknowledged operations
    // replay exactly, nothing half-applies") is what recovery promises.
    if (data.size() < 8) break;
    uint64_t length = GetLe32(data.substr(0, 4));
    uint32_t want_crc = GetLe32(data.substr(4, 4));
    if (length > kMaxRecordLen || data.size() < 8 + length) break;
    std::string_view payload = data.substr(8, length);
    if (Crc32(payload) != want_crc) break;
    WalRecord record;
    if (!ParseWalPayload(payload, &record)) break;
    recovery.records.push_back(std::move(record));
    recovery.valid_bytes += 8 + length;
    data.remove_prefix(8 + length);
  }
  recovery.torn_bytes = bytes.size() - recovery.valid_bytes;
  recovery.torn_tail = recovery.torn_bytes != 0;
  return recovery;
}

}  // namespace streamshare::serve
