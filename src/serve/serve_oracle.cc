#include "serve/serve_oracle.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <utility>

#include "serve/client.h"

namespace streamshare::serve {

namespace {

/// Feeds items in chunks up to `target` items per stream. Deliveries
/// arrive interleaved with each Feed ACK, so the client accumulates them
/// inside Feed() itself.
Status FeedTo(ServeClient* client, size_t* fed, size_t target,
              size_t chunk) {
  while (*fed < target) {
    size_t n = std::min(chunk, target - *fed);
    SS_ASSIGN_OR_RETURN(FeedReply reply, client->Feed(n));
    (void)reply;
    *fed += n;
  }
  return Status::Ok();
}

Status ApplyChurn(ServeClient* client,
                  const workload::ChurnEvent& event) {
  if (event.kind == workload::ChurnEvent::Kind::kFailPeer) {
    return client->FailPeer(event.peer).status();
  }
  return client->CutLink(event.link_a, event.link_b).status();
}

}  // namespace

Result<ServeRunReport> RunScenarioThroughDaemon(
    const workload::ScenarioSpec& scenario,
    const ServeRunOptions& options) {
  if (options.drain_at > 0 && options.checkpoint_path.empty()) {
    return Status::InvalidArgument(
        "drain_at needs a checkpoint_path to restart from");
  }
  if (!options.checkpoint_path.empty()) {
    // A stale checkpoint (or its WAL) from an earlier run must not
    // hijack the fresh start.
    std::remove(options.checkpoint_path.c_str());
    std::remove(DefaultWalPath(options.checkpoint_path).c_str());
  }

  std::vector<workload::ChurnEvent> churn = options.churn;
  std::stable_sort(churn.begin(), churn.end(),
                   [](const workload::ChurnEvent& a,
                      const workload::ChurnEvent& b) {
                     return a.at_offset < b.at_offset;
                   });

  DaemonOptions daemon_options;
  daemon_options.port = 0;
  daemon_options.checkpoint_path = options.checkpoint_path;
  daemon_options.resume = options.resume;
  daemon_options.system = options.system;

  auto daemon = std::make_unique<ServeDaemon>(scenario, daemon_options);
  SS_RETURN_IF_ERROR(daemon->Start());

  ClientOptions client_options;
  client_options.port = daemon->port();
  client_options.name = "serve-oracle";
  ServeClient client(client_options);
  SS_RETURN_IF_ERROR(client.Connect());

  // Subscribe every scenario query live, through the real planner.
  std::vector<SubscribeReply> subscriptions;
  subscriptions.reserve(scenario.queries.size());
  for (const workload::QuerySpec& query : scenario.queries) {
    SS_ASSIGN_OR_RETURN(
        SubscribeReply reply,
        client.Subscribe(query.text, query.target, options.strategy));
    subscriptions.push_back(std::move(reply));
  }

  ServeRunReport report;
  size_t fed = 0;
  size_t churn_index = 0;
  size_t total = options.items_per_stream;

  auto run_until = [&](size_t stop) -> Status {
    while (churn_index < churn.size() &&
           std::min(churn[churn_index].at_offset, total) <= stop) {
      size_t at = std::min(churn[churn_index].at_offset, total);
      SS_RETURN_IF_ERROR(FeedTo(&client, &fed, at, options.feed_chunk));
      SS_RETURN_IF_ERROR(ApplyChurn(&client, churn[churn_index]));
      ++churn_index;
    }
    return FeedTo(&client, &fed, stop, options.feed_chunk);
  };

  if (options.drain_at > 0 && options.drain_at < total) {
    SS_RETURN_IF_ERROR(run_until(options.drain_at));

    // Restartable drain: checkpoint, EOS to every client, loop exit.
    SS_ASSIGN_OR_RETURN(DrainReply drained,
                        client.Drain(/*final_drain=*/false));
    (void)drained;
    SS_ASSIGN_OR_RETURN(ServeEos eos, client.WaitEos(10000));
    if (eos.final_drain) {
      return Status::Internal(
          "restartable drain answered with a final EOS");
    }
    client.Close();
    daemon->Join();
    SS_RETURN_IF_ERROR(daemon->loop_status());

    // Second service life: resume from the checkpoint.
    daemon = std::make_unique<ServeDaemon>(scenario, daemon_options);
    SS_RETURN_IF_ERROR(daemon->Start());
    report.epochs = daemon->epoch() + 1;

    client.set_port(daemon->port());
    SS_RETURN_IF_ERROR(client.Connect());

    // Re-attach every query that survived (admission rejects never
    // deployed; churn may have torn some down — those stay detached).
    for (const SubscribeReply& subscription : subscriptions) {
      if (!subscription.accepted) continue;
      Result<SubscribeReply> attach = client.Attach(
          subscription.query_id,
          client.results(subscription.query_id).next_seq);
      if (!attach.ok() && !attach.status().IsNotFound()) {
        return attach.status();
      }
    }
  }

  SS_RETURN_IF_ERROR(run_until(total));

  // Final drain flushes every in-flight window and forwards the tail.
  SS_ASSIGN_OR_RETURN(DrainReply drained,
                      client.Drain(/*final_drain=*/true));
  (void)drained;
  SS_ASSIGN_OR_RETURN(ServeEos eos, client.WaitEos(10000));
  if (!eos.final_drain) {
    return Status::Internal("final drain answered with a restartable EOS");
  }
  client.Close();
  daemon->Join();
  SS_RETURN_IF_ERROR(daemon->loop_status());

  DaemonStats stats = daemon->stats();
  report.items_fed = stats.items_fed;
  report.results_forwarded = stats.results_forwarded;
  report.queries.reserve(subscriptions.size());
  for (const SubscribeReply& subscription : subscriptions) {
    ServeQueryObservation observation;
    observation.query_id = subscription.query_id;
    observation.accepted = subscription.accepted;
    observation.reject_reason = subscription.reject_reason;
    if (subscription.accepted) {
      ClientQueryResults results = client.results(subscription.query_id);
      observation.items = results.items;
      observation.bytes = results.bytes;
      observation.content_hash = results.content_hash;
    }
    report.queries.push_back(std::move(observation));
  }
  return report;
}

}  // namespace streamshare::serve
