// Runs a whole scenario end-to-end through a real daemon + client over
// localhost TCP and reports what each query delivered to the client —
// field-for-field comparable with a batch run's sinks (same counts, same
// bytes, same order-insensitive content hash). This is the harness the
// serve e2e tests, the serve_smoke CI job, and the fuzz oracle's fifth
// arm all share: if the daemon's forwarding plane, codec handshake,
// admission control, churn verbs, or drain/resume logic drop, duplicate,
// or corrupt a single item, the report diverges from the serial
// reference.

#ifndef STREAMSHARE_SERVE_SERVE_ORACLE_H_
#define STREAMSHARE_SERVE_SERVE_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/daemon.h"
#include "workload/scenario.h"

namespace streamshare::serve {

struct ServeRunOptions {
  size_t items_per_stream = 0;
  /// Fed in chunks of this many items per stream (exercises incremental
  /// forwarding; the last chunk may be smaller).
  size_t feed_chunk = 16;
  /// Failures applied at their offsets via the FailPeer/CutLink verbs.
  std::vector<workload::ChurnEvent> churn;
  /// Restartable-drain the daemon after this many items per stream,
  /// restart it from the checkpoint, re-attach, and keep going.
  /// 0 disables the drain/restart exercise.
  size_t drain_at = 0;
  /// Needed when drain_at > 0.
  std::string checkpoint_path;
  ResumeFlavor resume = ResumeFlavor::kReplay;
  /// Engine configuration for the hosted system (enforce_limits etc.).
  sharing::SystemConfig system;
  uint8_t strategy = 2;  // sharing::Strategy::kStreamSharing
};

/// What one scenario query delivered to the client, plus how its
/// registration went.
struct ServeQueryObservation {
  int64_t query_id = -1;
  bool accepted = false;
  std::string reject_reason;
  uint64_t items = 0;
  uint64_t bytes = 0;
  uint64_t content_hash = 0;
};

struct ServeRunReport {
  /// One entry per scenario query, in scenario order.
  std::vector<ServeQueryObservation> queries;
  /// Service lives the run spanned (1, or 2 with drain_at).
  uint64_t epochs = 1;
  uint64_t items_fed = 0;
  uint64_t results_forwarded = 0;
};

/// Starts a daemon on an ephemeral port, attaches a client, subscribes
/// every scenario query, feeds the full workload (churn and optional
/// drain/restart included), final-drains, and reports.
Result<ServeRunReport> RunScenarioThroughDaemon(
    const workload::ScenarioSpec& scenario, const ServeRunOptions& options);

}  // namespace streamshare::serve

#endif  // STREAMSHARE_SERVE_SERVE_ORACLE_H_
