// The CONTROL plane of streamshare_serve, multiplexed over the existing
// length-prefixed wire format (transport/wire.h). Three frame types carry
// the whole service protocol:
//
//   CONTROL     varint request id | varint verb | verb payload
//   ACK         varint request id | varint status code |
//               varint(message length) | message | verb reply payload
//   RESULT      varint query id | varint seq | varint flags |
//               varint send tick µs | varint (send − delivery tick) |
//               varint daemon-residency µs | varint transport µs |
//               encoded item (transport/codec.h, per-connection encoder)
//
// Requests and responses correlate by request id (client-chosen,
// monotonically increasing per connection); RESULT frames interleave
// freely between a request and its ACK, so a client processes deliveries
// while waiting. The RESULT stamp mirrors the DATA v2 latency extension
// byte-for-byte (flags, send tick, delta-encoded earlier tick, queue µs,
// transport µs) with serve-plane semantics: the "ingress" tick is the
// moment the daemon observed the item at the query's sink, queue µs is
// the residency between that observation and the forward, and transport
// µs accumulates on the client wire. EOS on this plane carries
// `varint results forwarded to this connection | varint final` — final 0
// is a restartable drain (reconnect after the daemon resumes), final 1
// means the service flushed and is gone.
//
// See docs/SERVICE.md for the protocol table and lifecycle.

#ifndef STREAMSHARE_SERVE_CONTROL_H_
#define STREAMSHARE_SERVE_CONTROL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace streamshare::serve {

/// Bumped when a verb payload changes incompatibly. Hello carries it;
/// a daemon rejects clients speaking a different version.
/// v2: StatsReply grew the serve.wal.* durability counters.
inline constexpr uint64_t kServeProtocolVersion = 2;

enum class Verb : uint8_t {
  kHello = 1,        // protocol handshake; first request on a connection
  kSubscribe = 2,    // register (or re-attach to) a continuous query
  kUnsubscribe = 3,  // remove a subscription (refcounted stream GC)
  kFailPeer = 4,     // declare a super-peer dead (chaos / operations)
  kCutLink = 5,      // sever one link
  kStats = 6,        // deployment + per-query sink counters
  kFeed = 7,         // advance the scenario generators n items per stream
  kDrain = 8,        // stop admitting; checkpoint (restartable) or flush
  kDetach = 9,       // drop this connection's attachments, keep the
                     // subscriptions installed (re-attach later)
  kSubscribeBatch = 10,  // register many queries in one planned pass
  kReoptimize = 11,  // background re-optimization pass (plan migration)
};

/// One decoded control request. Verb-specific fields are only meaningful
/// for their verb; everything else keeps its default.
struct ControlRequest {
  uint64_t request_id = 0;
  Verb verb = Verb::kHello;

  // kHello
  uint64_t protocol = kServeProtocolVersion;
  std::string client_name;

  // kSubscribe
  std::string query_text;
  int64_t vq = 0;
  uint8_t strategy = 2;  // sharing::Strategy value; 2 = kStreamSharing
  /// Re-attach to an existing query instead of registering: the query id
  /// plus one (0 = fresh registration).
  uint64_t attach_query_plus1 = 0;
  /// Forward sink deliveries starting at this index (what the client
  /// already holds from a previous life).
  uint64_t resume_from = 0;

  // kUnsubscribe
  int64_t query_id = -1;

  // kFailPeer / kCutLink
  int64_t peer = -1;
  int64_t link_a = -1, link_b = -1;

  // kFeed
  uint64_t feed_items = 0;

  // kDrain
  bool final_drain = false;

  // kSubscribeBatch: the queries, registered in order with sequential
  // semantics (identical ids/plans/results to one kSubscribe per entry).
  struct BatchEntry {
    std::string query_text;
    int64_t vq = 0;
    uint8_t strategy = 2;
  };
  std::vector<BatchEntry> batch;

  // kReoptimize: migration cap per pass (-1 = unbounded).
  int64_t max_migrations = -1;
};

std::string EncodeRequest(const ControlRequest& request);
Result<ControlRequest> DecodeRequest(std::string_view body);

/// One control response. `code` is the remote StatusCode (0 = ok);
/// `payload` is the verb-specific reply body, empty on error.
struct ControlResponse {
  uint64_t request_id = 0;
  uint64_t code = 0;
  std::string message;
  std::string payload;
};

std::string EncodeResponse(const ControlResponse& response);
Result<ControlResponse> DecodeResponse(std::string_view body);

/// Turns a response's code/message back into a Status (Ok for code 0).
Status ResponseStatus(const ControlResponse& response);

// --- Verb reply payloads -------------------------------------------------

struct HelloReply {
  uint64_t protocol = kServeProtocolVersion;
  uint64_t epoch = 0;  // service life counter (restarts increment it)
  uint64_t items_fed = 0;
  bool draining = false;
};

struct SubscribeReply {
  int64_t query_id = -1;
  bool accepted = false;
  std::string reject_reason;
  /// Index forwarding starts at (== request.resume_from, clamped to the
  /// sink's delivery count).
  uint64_t forward_from = 0;
};

struct FeedReply {
  uint64_t items_fed = 0;  // cumulative items per stream after this feed
};

struct RecoveryReply {
  uint64_t replans = 0;
  uint64_t lost_queries = 0;
  uint64_t dead_targets = 0;
  uint64_t lost_windows = 0;
};

struct DrainReply {
  bool final_drain = false;
  uint64_t epoch = 0;
};

struct QueryStat {
  int64_t query_id = -1;
  bool accepted = false;
  bool active = false;
  uint64_t items = 0;
  uint64_t bytes = 0;
  uint64_t content_hash = 0;
};

struct StatsReply {
  uint64_t epoch = 0;
  bool draining = false;
  uint64_t items_fed = 0;
  uint64_t attached_clients = 0;
  uint64_t admitted = 0;
  uint64_t rejected = 0;
  uint64_t results_forwarded = 0;
  /// Durability plane: write-ahead log counters (zero when the daemon
  /// runs without a checkpoint path).
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_fsync_us = 0;
  uint64_t wal_compactions = 0;
  uint64_t wal_recovered_records = 0;
  uint64_t wal_torn_tail_truncations = 0;
  std::vector<QueryStat> queries;
};

struct SubscribeBatchReply {
  /// One entry per batch query, in request order.
  std::vector<SubscribeReply> entries;
  /// Clustering counters (sharing::StreamShareSystem::BatchStats).
  uint64_t analyze_cache_hits = 0;
  uint64_t plan_memo_hits = 0;
};

struct ReoptimizeReply {
  uint64_t examined = 0;
  uint64_t migrated = 0;
  uint64_t torn_down = 0;
  uint64_t lost_windows = 0;
  double cost_before = 0.0;
  double cost_after = 0.0;
};

std::string EncodeHelloReply(const HelloReply& reply);
Result<HelloReply> DecodeHelloReply(std::string_view payload);
std::string EncodeSubscribeReply(const SubscribeReply& reply);
Result<SubscribeReply> DecodeSubscribeReply(std::string_view payload);
std::string EncodeFeedReply(const FeedReply& reply);
Result<FeedReply> DecodeFeedReply(std::string_view payload);
std::string EncodeRecoveryReply(const RecoveryReply& reply);
Result<RecoveryReply> DecodeRecoveryReply(std::string_view payload);
std::string EncodeDrainReply(const DrainReply& reply);
Result<DrainReply> DecodeDrainReply(std::string_view payload);
std::string EncodeStatsReply(const StatsReply& reply);
Result<StatsReply> DecodeStatsReply(std::string_view payload);
std::string EncodeSubscribeBatchReply(const SubscribeBatchReply& reply);
Result<SubscribeBatchReply> DecodeSubscribeBatchReply(
    std::string_view payload);
std::string EncodeReoptimizeReply(const ReoptimizeReply& reply);
Result<ReoptimizeReply> DecodeReoptimizeReply(std::string_view payload);

// --- RESULT frames -------------------------------------------------------

/// Decoded header of one RESULT frame; `item` aliases the frame body.
struct ResultFrame {
  int64_t query_id = -1;
  uint64_t seq = 0;
  bool stamped = false;
  uint64_t send_us = 0;      // daemon tick at forward time
  uint64_t delivery_us = 0;  // daemon tick when the sink delivery was seen
  uint64_t residency_us = 0; // forward − delivery (daemon queueing)
  uint64_t transport_us = 0; // accumulated wire time (client adds its hop)
  std::string_view item;     // encoded item bytes
};

/// Encodes header + `encoded_item` into a RESULT frame body.
std::string EncodeResultFrame(int64_t query_id, uint64_t seq,
                              uint64_t delivery_us, uint64_t send_us,
                              std::string_view encoded_item);
Result<ResultFrame> DecodeResultFrame(std::string_view body);

/// EOS body on the serve plane.
struct ServeEos {
  uint64_t results_forwarded = 0;
  bool final_drain = false;
};

std::string EncodeServeEos(const ServeEos& eos);
Result<ServeEos> DecodeServeEos(std::string_view body);

}  // namespace streamshare::serve

#endif  // STREAMSHARE_SERVE_CONTROL_H_
