// The write-ahead event log that makes the daemon crash-consistent. The
// drain checkpoint (serve/checkpoint.h) records the daemon's input
// history at one instant; the WAL extends that instant continuously:
// every id-consuming registration (accepted and rejected alike),
// Unsubscribe, FailPeer/CutLink, Reoptimize, and per-stream feed offset
// is appended as a CRC32-framed, length-prefixed record and fsync'd
// before the daemon's CONTROL ACK leaves the process — an acknowledged
// operation survives kill -9 by construction. Recovery scans checkpoint
// + WAL, stops at the first torn or CRC-corrupt record (the valid prefix
// is exactly the acknowledged history), truncates the tail, and replays
// through the same snapshot → catchup machinery a drain/restart uses.
//
// On-disk layout:
//   header   "SSWAL001" | 8B LE scenario fingerprint | 8B LE epoch |
//            8B LE base generation | 4B LE CRC32 of the 24 field bytes
//   record*  4B LE payload length | 4B LE CRC32(payload) | payload
//   payload  varint kind | kind body
//            kind 1 (event): serve/checkpoint.h LogEvent encoding
//            kind 2 (feed):  varint absolute items-per-stream offset
//
// `base generation` names the checkpoint generation this log extends: a
// log whose base is older than the on-disk checkpoint is stale (its
// records were already folded into that checkpoint by a compaction or a
// drain that died before truncating the log) and is discarded whole; a
// log whose base is newer means the checkpoint was lost — a decodable
// refusal, never a silent divergence.

#ifndef STREAMSHARE_SERVE_WAL_H_
#define STREAMSHARE_SERVE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "serve/checkpoint.h"

namespace streamshare::serve {

/// CRC-32 (ISO-HDLC polynomial, the zlib one). Exposed so the torn-tail
/// tests can frame records and corrupt them deliberately.
uint32_t Crc32(std::string_view bytes);

/// The conventional WAL path riding beside a checkpoint.
std::string DefaultWalPath(const std::string& checkpoint_path);

struct WalHeader {
  uint64_t scenario_fingerprint = 0;
  /// Service life that wrote this log.
  uint64_t epoch = 0;
  /// Checkpoint generation the log extends (0 = no checkpoint existed).
  uint64_t base_generation = 0;
};

struct WalRecord {
  enum class Kind : uint8_t {
    kEvent = 1,  // one logged control mutation
    kFeed = 2,   // feed advanced to this absolute per-stream offset
  };
  Kind kind = Kind::kEvent;
  LogEvent event;          // kEvent
  uint64_t items_fed = 0;  // kFeed

  static WalRecord Event(LogEvent event) {
    WalRecord record;
    record.kind = Kind::kEvent;
    record.event = std::move(event);
    return record;
  }
  static WalRecord Feed(uint64_t items_fed) {
    WalRecord record;
    record.kind = Kind::kFeed;
    record.items_fed = items_fed;
    return record;
  }
};

/// Frames one record (length | CRC | payload) — shared by Append and the
/// tests that build corrupt logs byte by byte.
std::string EncodeWalRecord(const WalRecord& record);

struct WalCounters {
  uint64_t appends = 0;
  uint64_t bytes = 0;  // record bytes written (header excluded)
  uint64_t fsync_us = 0;
};

/// The writer. Raw fds and explicit fsync — Append returning Ok means
/// the record is on stable storage.
class WriteAheadLog {
 public:
  WriteAheadLog() = default;
  ~WriteAheadLog();
  WriteAheadLog(WriteAheadLog&& other) noexcept;
  WriteAheadLog& operator=(WriteAheadLog&& other) noexcept;
  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  /// Truncates/creates `path`, writes the header, fsyncs file and
  /// directory. An existing log at the path is discarded (callers fold
  /// it into a checkpoint first).
  static Result<WriteAheadLog> Create(const std::string& path,
                                      const WalHeader& header);

  /// Appends one framed record and fsyncs before returning.
  Status Append(const WalRecord& record);

  bool open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  const WalCounters& counters() const { return counters_; }
  void Close();

 private:
  int fd_ = -1;
  std::string path_;
  WalCounters counters_;
};

/// What a recovery scan found.
struct WalRecovery {
  WalHeader header;
  std::vector<WalRecord> records;
  /// Bytes of header + fully valid records (everything past this offset
  /// is the torn tail).
  uint64_t valid_bytes = 0;
  /// The file ended in a torn or CRC-corrupt record (dropped).
  bool torn_tail = false;
  uint64_t torn_bytes = 0;
  /// The header itself was torn (a crash during Create). The log carries
  /// no usable state — but that is fine: Create only ever runs right
  /// after the checkpoint was brought current, so the checkpoint alone
  /// is the complete durable history.
  bool torn_header = false;
};

/// Scans the log, stopping at the first invalid record. NotFound when no
/// file exists; ParseError only when the file is not a WAL at all (bad
/// magic) — torn tails and torn headers are normal crash outcomes, not
/// errors.
Result<WalRecovery> RecoverWal(const std::string& path);

}  // namespace streamshare::serve

#endif  // STREAMSHARE_SERVE_WAL_H_
