#include "serve/crash_oracle.h"

#include <poll.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <functional>
#include <utility>

#include "serve/client.h"
#include "serve/crashpoint.h"
#include "serve/daemon.h"
#include "serve/wal.h"

namespace streamshare::serve {

namespace {

// A dropped connection is the only signal the parent gets that the
// armed crashpoint fired (Unavailable for EOF/refused, Internal for the
// errno paths of a socket that died mid-request). Structured rejections
// keep their codes and are never treated as a crash.
bool IsConnectionLoss(const Status& status) {
  return status.IsUnavailable() || status.IsInternal();
}

// Churn verbs are not idempotent on the wire, but their durable effect
// is: a retried FailPeer/CutLink whose first send was acked-and-logged
// answers "is already dead"/"is already down" — that is the success we
// were waiting to hear about.
bool IsAlreadyApplied(const Status& status) {
  return status.IsInvalidArgument() &&
         (status.message().find("already dead") != std::string::npos ||
          status.message().find("already down") != std::string::npos);
}

[[noreturn]] void RunDaemonChild(const workload::ScenarioSpec& scenario,
                                 const DaemonOptions& options,
                                 const std::string& crash_spec,
                                 int port_pipe_wr) {
  if (!crash_spec.empty() && !crashpoint::Arm(crash_spec).ok()) _exit(64);
  ServeDaemon daemon(scenario, options);
  if (!daemon.Start().ok()) _exit(65);
  int32_t port = daemon.port();
  ssize_t wrote = ::write(port_pipe_wr, &port, sizeof(port));
  ::close(port_pipe_wr);
  if (wrote != static_cast<ssize_t>(sizeof(port))) _exit(66);
  daemon.Join();
  _exit(daemon.loop_status().ok() ? 0 : 67);
}

Status FeedTo(ServeClient* client, size_t* fed, size_t target,
              size_t chunk) {
  while (*fed < target) {
    size_t n = std::min(chunk, target - *fed);
    SS_ASSIGN_OR_RETURN(FeedReply reply, client->Feed(n));
    *fed = reply.items_fed;
  }
  return Status::Ok();
}

}  // namespace

Result<CrashRunReport> RunCrashScenario(
    const workload::ScenarioSpec& scenario,
    const CrashRunOptions& options) {
  if (options.state_dir.empty()) {
    return Status::InvalidArgument("crash oracle needs a state_dir");
  }
  const std::string checkpoint_path = options.state_dir + "/checkpoint";
  std::remove(checkpoint_path.c_str());
  std::remove(DefaultWalPath(checkpoint_path).c_str());

  std::vector<workload::ChurnEvent> churn = options.churn;
  std::stable_sort(churn.begin(), churn.end(),
                   [](const workload::ChurnEvent& a,
                      const workload::ChurnEvent& b) {
                     return a.at_offset < b.at_offset;
                   });

  DaemonOptions daemon_options;
  daemon_options.port = 0;
  daemon_options.checkpoint_path = checkpoint_path;
  daemon_options.resume = ResumeFlavor::kReplay;
  daemon_options.wal_compact_bytes = options.wal_compact_bytes;
  daemon_options.system = options.system;

  ClientOptions client_options;
  client_options.name = "crash-oracle";
  client_options.timeout_ms = 10000;
  client_options.reconnect.max_attempts = 4;
  client_options.reconnect.initial_backoff_ms = 5;
  client_options.reconnect.max_backoff_ms = 100;
  ServeClient client(client_options);

  CrashRunReport report;
  pid_t child = -1;
  int next_life = 0;

  // Spawns daemon lives until one survives its own startup (a crashpoint
  // armed inside the recovery path kills the child before it ever
  // listens — that death is part of the exercise, not a failure).
  auto spawn_next_life = [&]() -> Status {
    while (true) {
      if (next_life >= options.max_lives) {
        return Status::Internal(
            "crash oracle exceeded " + std::to_string(options.max_lives) +
            " daemon lives without finishing the workload");
      }
      std::string spec = static_cast<size_t>(next_life) <
                                 options.crash_specs.size()
                             ? options.crash_specs[next_life]
                             : std::string();
      ++next_life;
      ++report.lives;
      int fds[2];
      if (::pipe(fds) != 0) return Status::Internal("pipe failed");
      pid_t pid = ::fork();
      if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return Status::Internal("fork failed");
      }
      if (pid == 0) {
        ::close(fds[0]);
        RunDaemonChild(scenario, daemon_options, spec, fds[1]);
      }
      ::close(fds[1]);
      int32_t port = 0;
      ssize_t got = ::read(fds[0], &port, sizeof(port));
      ::close(fds[0]);
      if (got == static_cast<ssize_t>(sizeof(port))) {
        child = pid;
        client.set_port(port);
        return Status::Ok();
      }
      // No port: the life died before listening. Reap it and decide —
      // a SIGKILL is the armed crashpoint doing its job; a clean exit
      // code is a startup refusal worth surfacing.
      int wstatus = 0;
      ::waitpid(pid, &wstatus, 0);
      if (WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL) {
        ++report.crashes;
        continue;
      }
      return Status::Internal(
          "daemon life refused to start (exit " +
          std::to_string(WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -1) +
          ")");
    }
  };

  // After a connection loss, the child must actually be dead before we
  // respawn over its state files. The SIGKILL it sent itself can race
  // the parent's read error by a scheduling quantum.
  auto confirm_dead = [&]() -> Status {
    if (child < 0) return Status::Ok();
    int wstatus = 0;
    for (int i = 0; i < 500; ++i) {
      pid_t got = ::waitpid(child, &wstatus, WNOHANG);
      if (got == child) {
        child = -1;
        return Status::Ok();
      }
      if (got < 0) {
        child = -1;
        return Status::Ok();
      }
      ::poll(nullptr, 0, 10);
    }
    ::kill(child, SIGKILL);
    ::waitpid(child, &wstatus, 0);
    child = -1;
    return Status::Internal(
        "daemon survived the connection loss that was blamed on it");
  };

  std::vector<SubscribeReply> subscriptions;
  size_t fed = 0;

  // Brings the client back in sync with a freshly recovered daemon:
  // reconnect + re-attach (the client resumes each query at next_seq),
  // re-read the durable feed offset, and adopt any registration whose
  // ACK the crash swallowed — the WAL syncs before the ACK leaves, so
  // the daemon's registration list is the authoritative prefix of ours.
  auto resync = [&]() -> Status {
    SS_RETURN_IF_ERROR(client.Reconnect());
    fed = client.hello().items_fed;
    SS_ASSIGN_OR_RETURN(StatsReply stats, client.Stats());
    while (subscriptions.size() < stats.queries.size()) {
      const QueryStat& stat = stats.queries[subscriptions.size()];
      SubscribeReply adopted;
      adopted.query_id = stat.query_id;
      adopted.accepted = stat.accepted;
      if (!stat.accepted) adopted.reject_reason = "rejected (crash ate the ack)";
      if (stat.accepted) {
        SS_ASSIGN_OR_RETURN(
            SubscribeReply attach,
            client.Attach(stat.query_id,
                          client.results(stat.query_id).next_seq));
        (void)attach;
      }
      subscriptions.push_back(std::move(adopted));
    }
    return Status::Ok();
  };

  // Runs one workload step, absorbing however many crash/recover rounds
  // it takes. Ops must be written to consult the resynced state
  // (subscriptions, fed) so a retry never double-applies.
  auto guarded = [&](const std::function<Status()>& op) -> Status {
    Status status = op();
    while (!status.ok() && IsConnectionLoss(status)) {
      SS_RETURN_IF_ERROR(confirm_dead());
      ++report.crashes;
      SS_RETURN_IF_ERROR(spawn_next_life());
      Status synced = resync();
      if (!synced.ok()) {
        if (IsConnectionLoss(synced)) {
          status = synced;  // crashed again mid-resync; go around
          continue;
        }
        return synced;
      }
      status = op();
    }
    return status;
  };

  SS_RETURN_IF_ERROR(spawn_next_life());
  SS_RETURN_IF_ERROR(guarded([&]() -> Status { return client.Connect(); }));

  for (size_t i = 0; i < scenario.queries.size(); ++i) {
    SS_RETURN_IF_ERROR(guarded([&]() -> Status {
      if (subscriptions.size() > i) return Status::Ok();  // adopted
      SS_ASSIGN_OR_RETURN(
          SubscribeReply reply,
          client.Subscribe(scenario.queries[i].text,
                           scenario.queries[i].target, options.strategy));
      subscriptions.push_back(std::move(reply));
      return Status::Ok();
    }));
  }

  size_t churn_index = 0;
  size_t total = options.items_per_stream;
  auto run_until = [&](size_t stop) -> Status {
    while (churn_index < churn.size() &&
           std::min(churn[churn_index].at_offset, total) <= stop) {
      size_t at = std::min(churn[churn_index].at_offset, total);
      SS_RETURN_IF_ERROR(guarded([&]() -> Status {
        return FeedTo(&client, &fed, at, options.feed_chunk);
      }));
      const workload::ChurnEvent& event = churn[churn_index];
      SS_RETURN_IF_ERROR(guarded([&]() -> Status {
        Status applied =
            event.kind == workload::ChurnEvent::Kind::kFailPeer
                ? client.FailPeer(event.peer).status()
                : client.CutLink(event.link_a, event.link_b).status();
        if (IsAlreadyApplied(applied)) return Status::Ok();
        return applied;
      }));
      ++churn_index;
    }
    return guarded([&]() -> Status {
      return FeedTo(&client, &fed, stop, options.feed_chunk);
    });
  };
  SS_RETURN_IF_ERROR(run_until(total));

  SS_RETURN_IF_ERROR(guarded([&]() -> Status {
    SS_ASSIGN_OR_RETURN(DrainReply drained,
                        client.Drain(/*final_drain=*/true));
    (void)drained;
    SS_ASSIGN_OR_RETURN(ServeEos eos, client.WaitEos(10000));
    if (!eos.final_drain) {
      return Status::Internal("final drain answered with a restartable EOS");
    }
    return Status::Ok();
  }));
  client.Close();
  if (child >= 0) {
    int wstatus = 0;
    ::waitpid(child, &wstatus, 0);
    child = -1;
  }

  report.items_fed = fed;
  report.queries.reserve(subscriptions.size());
  for (const SubscribeReply& subscription : subscriptions) {
    ServeQueryObservation observation;
    observation.query_id = subscription.query_id;
    observation.accepted = subscription.accepted;
    observation.reject_reason = subscription.reject_reason;
    if (subscription.accepted) {
      ClientQueryResults results = client.results(subscription.query_id);
      observation.items = results.items;
      observation.bytes = results.bytes;
      observation.content_hash = results.content_hash;
    }
    report.queries.push_back(std::move(observation));
  }
  return report;
}

}  // namespace streamshare::serve
