// The kill-9 analogue of serve_oracle.h: runs a scenario through a real
// daemon hosted in a forked child process, arms one crashpoint
// (serve/crashpoint.h) per service life, and when the child SIGKILLs
// itself mid-operation the parent verifies death, respawns the daemon
// from its checkpoint + write-ahead log, reconnects with the client's
// backoff/resume machinery, and drives the workload to completion. The
// resulting per-query observations are field-for-field comparable with a
// batch run's sinks — the durability invariant under test is that a
// crash is indistinguishable from a drain for every acknowledged
// operation: the recovered history replays acked operations exactly and
// contains no trace of half-applied ones.

#ifndef STREAMSHARE_SERVE_CRASH_ORACLE_H_
#define STREAMSHARE_SERVE_CRASH_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/serve_oracle.h"
#include "workload/scenario.h"

namespace streamshare::serve {

struct CrashRunOptions {
  size_t items_per_stream = 0;
  /// Fed in chunks of this many items per stream (odd on purpose: record
  /// boundaries land mid-chunk, so torn tails cut real records).
  size_t feed_chunk = 13;
  std::vector<workload::ChurnEvent> churn;
  /// Directory holding checkpoint + WAL across lives. Must exist; the
  /// oracle wipes its own files at the start.
  std::string state_dir;
  /// Crashpoint spec ("name" or "name:N", serve/crashpoint.h) armed in
  /// service life i. Lives beyond the list run unarmed; an empty entry
  /// leaves that life unarmed too. A life whose point never fires simply
  /// completes the run.
  std::vector<std::string> crash_specs;
  /// Engine configuration for the hosted system.
  sharing::SystemConfig system;
  uint8_t strategy = 2;  // sharing::Strategy::kStreamSharing
  /// Small on purpose so compaction (and its crashpoints) trigger
  /// mid-run.
  uint64_t wal_compact_bytes = 512;
  /// Hard cap on daemon (re)spawns — a recovery loop that keeps dying is
  /// a bug, not progress.
  int max_lives = 16;
};

struct CrashRunReport {
  /// One entry per scenario query, in scenario order — diff these
  /// against the uninterrupted serial run.
  std::vector<ServeQueryObservation> queries;
  /// Daemon processes spawned (1 = never crashed).
  uint64_t lives = 0;
  /// SIGKILL deaths the parent confirmed and recovered from.
  uint64_t crashes = 0;
  uint64_t items_fed = 0;
};

/// Runs the scenario to completion across however many daemon lives the
/// armed crashpoints cost, and reports what the client accumulated.
Result<CrashRunReport> RunCrashScenario(
    const workload::ScenarioSpec& scenario, const CrashRunOptions& options);

}  // namespace streamshare::serve

#endif  // STREAMSHARE_SERVE_CRASH_ORACLE_H_
