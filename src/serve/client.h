// The attach/subscribe side of the serve plane. A ServeClient owns one
// FrameConn to a daemon and exposes the control verbs as blocking
// request/response calls; RESULT frames that interleave with an ACK are
// accumulated on the fly into per-query observations (count, bytes,
// order-insensitive content hash — computed exactly like engine::SinkOp
// so a client-side observation is directly comparable to a batch run's
// sink). The item decoder mirrors the daemon's per-connection encoder in
// lockstep, so reconnecting means a fresh codec on both sides.

#ifndef STREAMSHARE_SERVE_CLIENT_H_
#define STREAMSHARE_SERVE_CLIENT_H_

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.h"
#include "serve/control.h"
#include "serve/net.h"
#include "transport/codec.h"

namespace streamshare::serve {

/// What one query delivered to this client, accumulated from RESULT
/// frames. Comparable field-for-field with a batch run's SinkOp.
struct ClientQueryResults {
  uint64_t items = 0;
  uint64_t bytes = 0;
  uint64_t content_hash = 0;
  /// Highest delivery sequence received plus one (== the daemon-side
  /// sink index to resume_from after a reconnect).
  uint64_t next_seq = 0;
  /// Measured per-delivery latencies (µs), from the RESULT stamps:
  /// daemon residency and total (residency + client-measured wire hop).
  std::vector<uint64_t> residency_us;
  std::vector<uint64_t> total_us;
};

/// Redial policy for Reconnect / RunWithReconnect: exponential backoff
/// with multiplicative jitter so a herd of clients does not redial a
/// restarting daemon in lockstep.
struct ReconnectOptions {
  /// Redial attempts per Reconnect (and op retries per RunWithReconnect).
  int max_attempts = 8;
  int initial_backoff_ms = 25;
  int max_backoff_ms = 2000;
  /// Each sleep is backoff × uniform[1 − jitter, 1].
  double jitter = 0.5;
  /// Seed of the deterministic jitter PRNG (tests pin it).
  uint64_t jitter_seed = 0x9e3779b97f4a7c15ull;
};

struct ClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::string name = "streamshare_client";
  /// Per-request reply deadline (also the dial deadline).
  int timeout_ms = 30000;
  /// Connect-loop tuning (timeout_ms above overrides dial.timeout_ms).
  DialOptions dial;
  ReconnectOptions reconnect;
};

class ServeClient {
 public:
  explicit ServeClient(ClientOptions options);
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;

  /// Connects and performs the Hello handshake. Reconnecting (after a
  /// daemon restart) keeps the accumulated results; the item codec
  /// resets on both ends with the connection.
  Status Connect();
  void Close();

  /// Points the next Connect at a different port (a restarted daemon
  /// binds a fresh ephemeral port).
  void set_port(int port) { options_.port = port; }

  const HelloReply& hello() const { return hello_; }

  /// Registers a fresh continuous query. On Ok, the reply says whether
  /// admission control accepted it (`accepted` false = structured E6
  /// rejection, reject_reason says why — the connection stays usable).
  Result<SubscribeReply> Subscribe(const std::string& query_text,
                                   int64_t vq, uint8_t strategy = 2);

  /// Re-attaches to an already-installed query, resuming delivery at
  /// `resume_from` (use results(query_id).next_seq after a reconnect).
  Result<SubscribeReply> Attach(int64_t query_id, uint64_t resume_from);

  /// Registers a batch of fresh queries in one request. Sequential
  /// semantics (same ids/plans/results as one Subscribe per entry); the
  /// reply carries per-entry outcomes plus the daemon's clustering
  /// counters.
  Result<SubscribeBatchReply> SubscribeBatch(
      const std::vector<ControlRequest::BatchEntry>& entries);

  /// Runs one background re-optimization pass on the daemon (at most
  /// `max_migrations` plan migrations; -1 = unbounded).
  Result<ReoptimizeReply> Reoptimize(int64_t max_migrations = -1);

  Status Unsubscribe(int64_t query_id);
  Result<RecoveryReply> FailPeer(int64_t peer);
  Result<RecoveryReply> CutLink(int64_t link_a, int64_t link_b);
  Result<StatsReply> Stats();
  /// Asks the daemon to feed `count` freshly generated items per stream
  /// and forward the resulting deliveries.
  Result<FeedReply> Feed(uint64_t count);
  Result<DrainReply> Drain(bool final_drain);
  /// Drops this connection's attachments but keeps the subscriptions
  /// installed server-side.
  Status Detach();

  /// Redials a daemon that dropped the connection (crash, restartable
  /// drain): closes, retries Connect under the ReconnectOptions backoff
  /// schedule, then re-attaches every query this client was serving at
  /// its results(id).next_seq — deliveries resume exactly where the
  /// accumulated observation ends. A query the recovered daemon no
  /// longer knows (NotFound) is dropped from the attachment set, not an
  /// error: the daemon's durable history is authoritative.
  Status Reconnect();

  /// Runs `op`, and on a connection-loss failure reconnects (with
  /// re-attachment) and retries it, up to reconnect.max_attempts times.
  /// Non-connection errors (rejections, invalid arguments) surface
  /// immediately. The op must be idempotent under retry — the verbs here
  /// are: re-attach resumes at next_seq, and AccumulateResult drops
  /// deliveries below it, so a retried call never double-counts.
  Status RunWithReconnect(const std::function<Status()>& op);

  /// Drains buffered RESULT frames without issuing a request (useful
  /// after Feed when deliveries may still be in flight). Waits up to
  /// `timeout_ms` for the first frame, then keeps reading while more
  /// arrive back-to-back.
  Status PollResults(int timeout_ms);

  /// Reads until the daemon's EOS (sent at drain), accumulating any
  /// remaining RESULT frames.
  Result<ServeEos> WaitEos(int timeout_ms);

  /// Accumulated deliveries of one query (zero observation if none).
  ClientQueryResults results(int64_t query_id) const;
  const std::map<int64_t, ClientQueryResults>& all_results() const {
    return results_;
  }

  /// Query ids this connection is serving (accepted Subscribe/Attach,
  /// minus Unsubscribe/Detach) — what Reconnect re-attaches.
  const std::set<int64_t>& attached() const { return attached_; }

 private:
  /// Sends one request and reads frames until its ACK, folding RESULT
  /// frames into results_ along the way.
  Result<ControlResponse> Call(const ControlRequest& request);
  Status AccumulateResult(const transport::Frame& frame);
  /// Next jittered sleep of the backoff schedule (deterministic PRNG).
  int NextBackoffMs(int* backoff_ms);

  ClientOptions options_;
  FrameConn conn_;
  transport::ItemDecoder decoder_;
  HelloReply hello_;
  uint64_t next_request_id_ = 1;
  std::map<int64_t, ClientQueryResults> results_;
  std::set<int64_t> attached_;
  uint64_t jitter_state_ = 0;
};

}  // namespace streamshare::serve

#endif  // STREAMSHARE_SERVE_CLIENT_H_
