#include "serve/control.h"

#include <bit>

#include "transport/wire.h"

namespace streamshare::serve {

namespace {

using transport::GetVarint;
using transport::PutVarint;

// Signed fields (ids that may be -1) travel zigzag-encoded.
uint64_t Zig(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}

int64_t Unzig(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

void PutString(std::string* out, std::string_view text) {
  PutVarint(out, text.size());
  out->append(text);
}

bool GetString(std::string_view* data, std::string* out) {
  uint64_t length = 0;
  if (!GetVarint(data, &length) || data->size() < length) return false;
  out->assign(data->substr(0, length));
  data->remove_prefix(length);
  return true;
}

bool GetSigned(std::string_view* data, int64_t* out) {
  uint64_t raw = 0;
  if (!GetVarint(data, &raw)) return false;
  *out = Unzig(raw);
  return true;
}

Status Truncated(const char* what) {
  return Status::ParseError(std::string("truncated ") + what);
}

}  // namespace

std::string EncodeRequest(const ControlRequest& request) {
  std::string out;
  PutVarint(&out, request.request_id);
  PutVarint(&out, static_cast<uint64_t>(request.verb));
  switch (request.verb) {
    case Verb::kHello:
      PutVarint(&out, request.protocol);
      PutString(&out, request.client_name);
      break;
    case Verb::kSubscribe:
      PutVarint(&out, Zig(request.vq));
      PutVarint(&out, request.strategy);
      PutVarint(&out, request.attach_query_plus1);
      PutVarint(&out, request.resume_from);
      PutString(&out, request.query_text);
      break;
    case Verb::kUnsubscribe:
      PutVarint(&out, Zig(request.query_id));
      break;
    case Verb::kFailPeer:
      PutVarint(&out, Zig(request.peer));
      break;
    case Verb::kCutLink:
      PutVarint(&out, Zig(request.link_a));
      PutVarint(&out, Zig(request.link_b));
      break;
    case Verb::kFeed:
      PutVarint(&out, request.feed_items);
      break;
    case Verb::kDrain:
      PutVarint(&out, request.final_drain ? 1 : 0);
      break;
    case Verb::kSubscribeBatch:
      PutVarint(&out, request.batch.size());
      for (const ControlRequest::BatchEntry& entry : request.batch) {
        PutVarint(&out, Zig(entry.vq));
        PutVarint(&out, entry.strategy);
        PutString(&out, entry.query_text);
      }
      break;
    case Verb::kReoptimize:
      PutVarint(&out, Zig(request.max_migrations));
      break;
    case Verb::kStats:
    case Verb::kDetach:
      break;
  }
  return out;
}

Result<ControlRequest> DecodeRequest(std::string_view body) {
  ControlRequest request;
  uint64_t verb = 0;
  if (!GetVarint(&body, &request.request_id) || !GetVarint(&body, &verb)) {
    return Truncated("control request header");
  }
  if (verb < static_cast<uint64_t>(Verb::kHello) ||
      verb > static_cast<uint64_t>(Verb::kReoptimize)) {
    return Status::Unsupported("unknown control verb " +
                               std::to_string(verb));
  }
  request.verb = static_cast<Verb>(verb);
  uint64_t flag = 0;
  switch (request.verb) {
    case Verb::kHello:
      if (!GetVarint(&body, &request.protocol) ||
          !GetString(&body, &request.client_name)) {
        return Truncated("hello request");
      }
      break;
    case Verb::kSubscribe: {
      uint64_t strategy = 0;
      if (!GetSigned(&body, &request.vq) ||
          !GetVarint(&body, &strategy) ||
          !GetVarint(&body, &request.attach_query_plus1) ||
          !GetVarint(&body, &request.resume_from) ||
          !GetString(&body, &request.query_text)) {
        return Truncated("subscribe request");
      }
      if (strategy > 2) {
        return Status::InvalidArgument("unknown strategy " +
                                       std::to_string(strategy));
      }
      request.strategy = static_cast<uint8_t>(strategy);
      break;
    }
    case Verb::kUnsubscribe:
      if (!GetSigned(&body, &request.query_id)) {
        return Truncated("unsubscribe request");
      }
      break;
    case Verb::kFailPeer:
      if (!GetSigned(&body, &request.peer)) {
        return Truncated("fail-peer request");
      }
      break;
    case Verb::kCutLink:
      if (!GetSigned(&body, &request.link_a) ||
          !GetSigned(&body, &request.link_b)) {
        return Truncated("cut-link request");
      }
      break;
    case Verb::kFeed:
      if (!GetVarint(&body, &request.feed_items)) {
        return Truncated("feed request");
      }
      break;
    case Verb::kDrain:
      if (!GetVarint(&body, &flag)) return Truncated("drain request");
      request.final_drain = flag != 0;
      break;
    case Verb::kSubscribeBatch: {
      uint64_t count = 0;
      if (!GetVarint(&body, &count)) {
        return Truncated("subscribe-batch request");
      }
      request.batch.reserve(count);
      for (uint64_t i = 0; i < count; ++i) {
        ControlRequest::BatchEntry entry;
        uint64_t strategy = 0;
        if (!GetSigned(&body, &entry.vq) ||
            !GetVarint(&body, &strategy) ||
            !GetString(&body, &entry.query_text)) {
          return Truncated("subscribe-batch entry");
        }
        if (strategy > 2) {
          return Status::InvalidArgument("unknown strategy " +
                                         std::to_string(strategy));
        }
        entry.strategy = static_cast<uint8_t>(strategy);
        request.batch.push_back(std::move(entry));
      }
      break;
    }
    case Verb::kReoptimize:
      if (!GetSigned(&body, &request.max_migrations)) {
        return Truncated("reoptimize request");
      }
      break;
    case Verb::kStats:
    case Verb::kDetach:
      break;
  }
  if (!body.empty()) {
    return Status::ParseError("trailing bytes after control request");
  }
  return request;
}

std::string EncodeResponse(const ControlResponse& response) {
  std::string out;
  PutVarint(&out, response.request_id);
  PutVarint(&out, response.code);
  PutString(&out, response.message);
  out.append(response.payload);
  return out;
}

Result<ControlResponse> DecodeResponse(std::string_view body) {
  ControlResponse response;
  if (!GetVarint(&body, &response.request_id) ||
      !GetVarint(&body, &response.code) ||
      !GetString(&body, &response.message)) {
    return Truncated("control response");
  }
  response.payload.assign(body);
  return response;
}

Status ResponseStatus(const ControlResponse& response) {
  if (response.code == 0) return Status::Ok();
  // A code outside this build's StatusCode range (newer peer) degrades
  // to kInternal rather than a bogus enum value.
  uint64_t code = response.code;
  if (code > static_cast<uint64_t>(StatusCode::kUnavailable)) {
    code = static_cast<uint64_t>(StatusCode::kInternal);
  }
  return Status(static_cast<StatusCode>(code), response.message);
}

std::string EncodeHelloReply(const HelloReply& reply) {
  std::string out;
  PutVarint(&out, reply.protocol);
  PutVarint(&out, reply.epoch);
  PutVarint(&out, reply.items_fed);
  PutVarint(&out, reply.draining ? 1 : 0);
  return out;
}

Result<HelloReply> DecodeHelloReply(std::string_view payload) {
  HelloReply reply;
  uint64_t draining = 0;
  if (!GetVarint(&payload, &reply.protocol) ||
      !GetVarint(&payload, &reply.epoch) ||
      !GetVarint(&payload, &reply.items_fed) ||
      !GetVarint(&payload, &draining)) {
    return Truncated("hello reply");
  }
  reply.draining = draining != 0;
  return reply;
}

std::string EncodeSubscribeReply(const SubscribeReply& reply) {
  std::string out;
  PutVarint(&out, Zig(reply.query_id));
  PutVarint(&out, reply.accepted ? 1 : 0);
  PutVarint(&out, reply.forward_from);
  PutString(&out, reply.reject_reason);
  return out;
}

Result<SubscribeReply> DecodeSubscribeReply(std::string_view payload) {
  SubscribeReply reply;
  uint64_t accepted = 0;
  if (!GetSigned(&payload, &reply.query_id) ||
      !GetVarint(&payload, &accepted) ||
      !GetVarint(&payload, &reply.forward_from) ||
      !GetString(&payload, &reply.reject_reason)) {
    return Truncated("subscribe reply");
  }
  reply.accepted = accepted != 0;
  return reply;
}

std::string EncodeFeedReply(const FeedReply& reply) {
  std::string out;
  PutVarint(&out, reply.items_fed);
  return out;
}

Result<FeedReply> DecodeFeedReply(std::string_view payload) {
  FeedReply reply;
  if (!GetVarint(&payload, &reply.items_fed)) {
    return Truncated("feed reply");
  }
  return reply;
}

std::string EncodeRecoveryReply(const RecoveryReply& reply) {
  std::string out;
  PutVarint(&out, reply.replans);
  PutVarint(&out, reply.lost_queries);
  PutVarint(&out, reply.dead_targets);
  PutVarint(&out, reply.lost_windows);
  return out;
}

Result<RecoveryReply> DecodeRecoveryReply(std::string_view payload) {
  RecoveryReply reply;
  if (!GetVarint(&payload, &reply.replans) ||
      !GetVarint(&payload, &reply.lost_queries) ||
      !GetVarint(&payload, &reply.dead_targets) ||
      !GetVarint(&payload, &reply.lost_windows)) {
    return Truncated("recovery reply");
  }
  return reply;
}

std::string EncodeDrainReply(const DrainReply& reply) {
  std::string out;
  PutVarint(&out, reply.final_drain ? 1 : 0);
  PutVarint(&out, reply.epoch);
  return out;
}

Result<DrainReply> DecodeDrainReply(std::string_view payload) {
  DrainReply reply;
  uint64_t final_drain = 0;
  if (!GetVarint(&payload, &final_drain) ||
      !GetVarint(&payload, &reply.epoch)) {
    return Truncated("drain reply");
  }
  reply.final_drain = final_drain != 0;
  return reply;
}

std::string EncodeStatsReply(const StatsReply& reply) {
  std::string out;
  PutVarint(&out, reply.epoch);
  PutVarint(&out, reply.draining ? 1 : 0);
  PutVarint(&out, reply.items_fed);
  PutVarint(&out, reply.attached_clients);
  PutVarint(&out, reply.admitted);
  PutVarint(&out, reply.rejected);
  PutVarint(&out, reply.results_forwarded);
  PutVarint(&out, reply.wal_appends);
  PutVarint(&out, reply.wal_bytes);
  PutVarint(&out, reply.wal_fsync_us);
  PutVarint(&out, reply.wal_compactions);
  PutVarint(&out, reply.wal_recovered_records);
  PutVarint(&out, reply.wal_torn_tail_truncations);
  PutVarint(&out, reply.queries.size());
  for (const QueryStat& query : reply.queries) {
    PutVarint(&out, Zig(query.query_id));
    PutVarint(&out, query.accepted ? 1 : 0);
    PutVarint(&out, query.active ? 1 : 0);
    PutVarint(&out, query.items);
    PutVarint(&out, query.bytes);
    PutVarint(&out, query.content_hash);
  }
  return out;
}

Result<StatsReply> DecodeStatsReply(std::string_view payload) {
  StatsReply reply;
  uint64_t draining = 0, count = 0;
  if (!GetVarint(&payload, &reply.epoch) ||
      !GetVarint(&payload, &draining) ||
      !GetVarint(&payload, &reply.items_fed) ||
      !GetVarint(&payload, &reply.attached_clients) ||
      !GetVarint(&payload, &reply.admitted) ||
      !GetVarint(&payload, &reply.rejected) ||
      !GetVarint(&payload, &reply.results_forwarded) ||
      !GetVarint(&payload, &reply.wal_appends) ||
      !GetVarint(&payload, &reply.wal_bytes) ||
      !GetVarint(&payload, &reply.wal_fsync_us) ||
      !GetVarint(&payload, &reply.wal_compactions) ||
      !GetVarint(&payload, &reply.wal_recovered_records) ||
      !GetVarint(&payload, &reply.wal_torn_tail_truncations) ||
      !GetVarint(&payload, &count)) {
    return Truncated("stats reply");
  }
  reply.draining = draining != 0;
  reply.queries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    QueryStat query;
    uint64_t accepted = 0, active = 0;
    if (!GetSigned(&payload, &query.query_id) ||
        !GetVarint(&payload, &accepted) ||
        !GetVarint(&payload, &active) ||
        !GetVarint(&payload, &query.items) ||
        !GetVarint(&payload, &query.bytes) ||
        !GetVarint(&payload, &query.content_hash)) {
      return Truncated("stats reply query entry");
    }
    query.accepted = accepted != 0;
    query.active = active != 0;
    reply.queries.push_back(query);
  }
  return reply;
}

std::string EncodeSubscribeBatchReply(const SubscribeBatchReply& reply) {
  std::string out;
  PutVarint(&out, reply.entries.size());
  for (const SubscribeReply& entry : reply.entries) {
    PutVarint(&out, Zig(entry.query_id));
    PutVarint(&out, entry.accepted ? 1 : 0);
    PutVarint(&out, entry.forward_from);
    PutString(&out, entry.reject_reason);
  }
  PutVarint(&out, reply.analyze_cache_hits);
  PutVarint(&out, reply.plan_memo_hits);
  return out;
}

Result<SubscribeBatchReply> DecodeSubscribeBatchReply(
    std::string_view payload) {
  SubscribeBatchReply reply;
  uint64_t count = 0;
  if (!GetVarint(&payload, &count)) {
    return Truncated("subscribe-batch reply");
  }
  reply.entries.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    SubscribeReply entry;
    uint64_t accepted = 0;
    if (!GetSigned(&payload, &entry.query_id) ||
        !GetVarint(&payload, &accepted) ||
        !GetVarint(&payload, &entry.forward_from) ||
        !GetString(&payload, &entry.reject_reason)) {
      return Truncated("subscribe-batch reply entry");
    }
    entry.accepted = accepted != 0;
    reply.entries.push_back(std::move(entry));
  }
  if (!GetVarint(&payload, &reply.analyze_cache_hits) ||
      !GetVarint(&payload, &reply.plan_memo_hits)) {
    return Truncated("subscribe-batch reply counters");
  }
  return reply;
}

// Costs travel as the double's bit pattern: exact round-trip, no
// locale/precision concerns.
std::string EncodeReoptimizeReply(const ReoptimizeReply& reply) {
  std::string out;
  PutVarint(&out, reply.examined);
  PutVarint(&out, reply.migrated);
  PutVarint(&out, reply.torn_down);
  PutVarint(&out, reply.lost_windows);
  PutVarint(&out, std::bit_cast<uint64_t>(reply.cost_before));
  PutVarint(&out, std::bit_cast<uint64_t>(reply.cost_after));
  return out;
}

Result<ReoptimizeReply> DecodeReoptimizeReply(std::string_view payload) {
  ReoptimizeReply reply;
  uint64_t before = 0, after = 0;
  if (!GetVarint(&payload, &reply.examined) ||
      !GetVarint(&payload, &reply.migrated) ||
      !GetVarint(&payload, &reply.torn_down) ||
      !GetVarint(&payload, &reply.lost_windows) ||
      !GetVarint(&payload, &before) || !GetVarint(&payload, &after)) {
    return Truncated("reoptimize reply");
  }
  reply.cost_before = std::bit_cast<double>(before);
  reply.cost_after = std::bit_cast<double>(after);
  return reply;
}

std::string EncodeResultFrame(int64_t query_id, uint64_t seq,
                              uint64_t delivery_us, uint64_t send_us,
                              std::string_view encoded_item) {
  std::string out;
  PutVarint(&out, Zig(query_id));
  PutVarint(&out, seq);
  // The DATA v2 stamp layout: flags, send tick, delta to the earlier
  // tick, queue µs, transport µs — stateless per frame.
  PutVarint(&out, 1);  // flags bit 0: stamped
  PutVarint(&out, send_us);
  PutVarint(&out, send_us >= delivery_us ? send_us - delivery_us : 0);
  PutVarint(&out, send_us >= delivery_us ? send_us - delivery_us : 0);
  PutVarint(&out, 0);  // transport µs accumulates on the client wire
  out.append(encoded_item);
  return out;
}

Result<ResultFrame> DecodeResultFrame(std::string_view body) {
  ResultFrame frame;
  uint64_t flags = 0, delta = 0;
  if (!GetSigned(&body, &frame.query_id) ||
      !GetVarint(&body, &frame.seq) || !GetVarint(&body, &flags) ||
      !GetVarint(&body, &frame.send_us) || !GetVarint(&body, &delta) ||
      !GetVarint(&body, &frame.residency_us) ||
      !GetVarint(&body, &frame.transport_us)) {
    return Truncated("result frame");
  }
  frame.stamped = (flags & 1) != 0;
  frame.delivery_us =
      frame.send_us >= delta ? frame.send_us - delta : 0;
  frame.item = body;
  return frame;
}

std::string EncodeServeEos(const ServeEos& eos) {
  std::string out;
  PutVarint(&out, eos.results_forwarded);
  PutVarint(&out, eos.final_drain ? 1 : 0);
  return out;
}

Result<ServeEos> DecodeServeEos(std::string_view body) {
  ServeEos eos;
  uint64_t final_drain = 0;
  if (!GetVarint(&body, &eos.results_forwarded) ||
      !GetVarint(&body, &final_drain)) {
    return Truncated("serve EOS");
  }
  eos.final_drain = final_drain != 0;
  return eos;
}

}  // namespace streamshare::serve
