// The daemon's drain checkpoint: an event log in the pgcopydb sentinel
// spirit. Instead of serializing engine state (open windows, dictionary
// positions), the checkpoint records the *inputs* that produced it —
// every subscription registration (accepted or admission-rejected, so
// query-id assignment replays identically), every unsubscribe, every
// FailPeer/CutLink, each positioned at the per-stream item offset it was
// applied at, plus how many items each stream had fed. Because stream
// items come from seeded deterministic generators, a restarted daemon
// can rebuild the exact pre-drain engine state by replaying the log
// interleaved with regenerated items (ResumeFlavor::kReplay), or skip
// the history and resume gap-not-garbage at the recorded offset
// (ResumeFlavor::kGap). Per-query delivered counts/hashes ride along as
// a consistency check on the replay.

#ifndef STREAMSHARE_SERVE_CHECKPOINT_H_
#define STREAMSHARE_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/scenario.h"

namespace streamshare::serve {

struct LogEvent {
  enum class Kind : uint8_t {
    kSubscribe = 1,
    kUnsubscribe = 2,
    kFailPeer = 3,
    kCutLink = 4,
    kReoptimize = 5,
  };

  Kind kind = Kind::kSubscribe;
  /// Items per stream that had been fed when the event was applied.
  uint64_t at_items = 0;

  // kSubscribe
  std::string query_text;
  int64_t vq = 0;
  uint8_t strategy = 2;

  // kUnsubscribe
  int64_t query_id = -1;

  // kFailPeer / kCutLink
  int64_t peer = -1;
  int64_t link_a = -1, link_b = -1;

  // kReoptimize. A re-optimization pass is deterministic given the
  // system state it ran against, so logging (offset, cap) is enough for
  // a replay to reproduce the exact plan migrations.
  int64_t max_migrations = -1;
};

/// Delivered-output fingerprint of one query at drain time (replay
/// consistency check; not needed to rebuild state).
struct DeliverySnapshot {
  int64_t query_id = -1;
  uint64_t items = 0;
  uint64_t content_hash = 0;
};

struct Checkpoint {
  /// Guards against resuming a different scenario's checkpoint.
  uint64_t scenario_fingerprint = 0;
  /// Service life this checkpoint was written in (a restarted daemon
  /// runs at least epoch + 1).
  uint64_t epoch = 0;
  /// Monotonic write counter across the daemon's whole on-disk history
  /// (drain checkpoints and WAL compactions alike). The write-ahead log
  /// names the generation it extends, which disambiguates a crash that
  /// lands between "new checkpoint renamed into place" and "old WAL
  /// truncated": a WAL whose base generation is older than the
  /// checkpoint is stale — its records are already folded in.
  uint64_t generation = 0;
  /// Items per stream fed before the checkpoint was cut.
  uint64_t items_fed = 0;
  std::vector<LogEvent> events;
  std::vector<DeliverySnapshot> deliveries;
};

/// Stable hash of what determines the daemon's deterministic input:
/// topology shape, stream names/sources/generator seeds, capacities.
uint64_t ScenarioFingerprint(const workload::ScenarioSpec& scenario);

/// Event codec shared by the checkpoint body and the write-ahead log's
/// records (serve/wal.h), so the two planes can never drift apart.
void AppendLogEvent(std::string* out, const LogEvent& event);
/// Consumes one event off `data`; false on truncation or an unknown
/// kind (with `data` left mid-event — callers treat that as torn).
bool ParseLogEvent(std::string_view* data, LogEvent* event);

/// Writes crash-atomically: temp file in the same directory, fsync the
/// file, rename over the target, fsync the directory. A crash at any
/// instant leaves either the previous checkpoint or the new one — never
/// a torn hybrid (tests/test_wal.cc proves it with the fault seam
/// below).
Status SaveCheckpoint(const std::string& path,
                      const Checkpoint& checkpoint);
Result<Checkpoint> LoadCheckpoint(const std::string& path);

/// Test seam: behaves like SaveCheckpoint up to `fail_after_bytes` of
/// the temp file, then returns an error without renaming — the unit-test
/// form of a crash mid-write, leaving the partial temp file behind.
Status SaveCheckpointFaulted(const std::string& path,
                             const Checkpoint& checkpoint,
                             size_t fail_after_bytes);

}  // namespace streamshare::serve

#endif  // STREAMSHARE_SERVE_CHECKPOINT_H_
