// The daemon's drain checkpoint: an event log in the pgcopydb sentinel
// spirit. Instead of serializing engine state (open windows, dictionary
// positions), the checkpoint records the *inputs* that produced it —
// every subscription registration (accepted or admission-rejected, so
// query-id assignment replays identically), every unsubscribe, every
// FailPeer/CutLink, each positioned at the per-stream item offset it was
// applied at, plus how many items each stream had fed. Because stream
// items come from seeded deterministic generators, a restarted daemon
// can rebuild the exact pre-drain engine state by replaying the log
// interleaved with regenerated items (ResumeFlavor::kReplay), or skip
// the history and resume gap-not-garbage at the recorded offset
// (ResumeFlavor::kGap). Per-query delivered counts/hashes ride along as
// a consistency check on the replay.

#ifndef STREAMSHARE_SERVE_CHECKPOINT_H_
#define STREAMSHARE_SERVE_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/scenario.h"

namespace streamshare::serve {

struct LogEvent {
  enum class Kind : uint8_t {
    kSubscribe = 1,
    kUnsubscribe = 2,
    kFailPeer = 3,
    kCutLink = 4,
    kReoptimize = 5,
  };

  Kind kind = Kind::kSubscribe;
  /// Items per stream that had been fed when the event was applied.
  uint64_t at_items = 0;

  // kSubscribe
  std::string query_text;
  int64_t vq = 0;
  uint8_t strategy = 2;

  // kUnsubscribe
  int64_t query_id = -1;

  // kFailPeer / kCutLink
  int64_t peer = -1;
  int64_t link_a = -1, link_b = -1;

  // kReoptimize. A re-optimization pass is deterministic given the
  // system state it ran against, so logging (offset, cap) is enough for
  // a replay to reproduce the exact plan migrations.
  int64_t max_migrations = -1;
};

/// Delivered-output fingerprint of one query at drain time (replay
/// consistency check; not needed to rebuild state).
struct DeliverySnapshot {
  int64_t query_id = -1;
  uint64_t items = 0;
  uint64_t content_hash = 0;
};

struct Checkpoint {
  /// Guards against resuming a different scenario's checkpoint.
  uint64_t scenario_fingerprint = 0;
  /// Service life this checkpoint ends (the restarted daemon runs
  /// epoch + 1).
  uint64_t epoch = 0;
  /// Items per stream fed before the drain.
  uint64_t items_fed = 0;
  std::vector<LogEvent> events;
  std::vector<DeliverySnapshot> deliveries;
};

/// Stable hash of what determines the daemon's deterministic input:
/// topology shape, stream names/sources/generator seeds, capacities.
uint64_t ScenarioFingerprint(const workload::ScenarioSpec& scenario);

/// Writes atomically (temp file + rename): a drain interrupted mid-write
/// leaves the previous checkpoint intact.
Status SaveCheckpoint(const std::string& path,
                      const Checkpoint& checkpoint);
Result<Checkpoint> LoadCheckpoint(const std::string& path);

}  // namespace streamshare::serve

#endif  // STREAMSHARE_SERVE_CHECKPOINT_H_
