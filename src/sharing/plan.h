// Query evaluation plans (the P of Algorithm 1): which stream to reuse at
// which node, which operators to install where, which new stream to route
// through the network, and what that costs. Plans are pure descriptions —
// deployment into the engine happens in StreamShareSystem after the
// winning plan is chosen.

#ifndef STREAMSHARE_SHARING_PLAN_H_
#define STREAMSHARE_SHARING_PLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "network/stream_registry.h"
#include "network/topology.h"
#include "predicate/atomic.h"
#include "properties/operators.h"
#include "properties/window.h"
#include "xml/path.h"

namespace streamshare::sharing {

/// One executable operator the plan installs, with its placement.
struct EngineOpSpec {
  enum class Kind {
    kSelect,          // σ on items
    kProject,         // Π on items
    kWindowAgg,       // window aggregation over items
    kAggCombine,      // recombination of a finer aggregate stream (Fig. 5)
    kAggFilter,       // result filter on aggregate values
    kWindowContents,  // materialization of window contents (no aggregate)
  };

  Kind kind;
  network::NodeId node = -1;
  /// Compensation operators belong to a query's private chain behind the
  /// shared stream (they re-enforce the query's own predicates so that
  /// widening the stream upstream never changes delivered results); they
  /// deploy after the stream's registered tap points regardless of node.
  bool compensation = false;

  // Parameters (used per kind):
  std::vector<predicate::AtomicPredicate> predicates;  // select, aggfilter
  std::vector<xml::Path> output_paths;                 // project
  properties::AggregateFunc func = properties::AggregateFunc::kAvg;
  xml::Path aggregated_element;      // windowagg
  properties::WindowSpec window;      // windowagg / combine target
  properties::WindowSpec fine_window; // combine source

  std::string ToString() const;
};

/// The new shareable stream a plan creates (absent when the plan taps an
/// existing stream at the target node without transforming it).
struct NewStreamSpec {
  /// Content description (registered in the stream registry on deploy).
  properties::InputStreamProperties props;
  network::NodeId source_node = -1;
  network::NodeId target_node = -1;
  std::vector<network::NodeId> route;  // source..target inclusive
  /// Estimated rate, for availability accounting.
  double rate_kbps = 0.0;
};

/// In-place modification of an already-deployed stream so that it regains
/// the data a new subscription needs — the stream-widening extension
/// (paper §6). The stream's selection is relaxed to the DBM join of the
/// old and the new predicates, and its projection keeps the union of the
/// old and the new paths; every consumer re-filters behind its own
/// compensation operators, so widening only ever *adds* items upstream.
struct WideningSpec {
  network::StreamId stream = -1;
  /// The stream's content description after widening.
  properties::InputStreamProperties widened_props;
  /// New predicates / output paths for the deployed σ / Π operators. An
  /// output consisting of the single empty path keeps whole items.
  std::vector<predicate::AtomicPredicate> widened_selection;
  std::vector<xml::Path> widened_output;
  /// Rate/frequency before and after widening; the deltas are billed to
  /// the stream's existing route.
  double old_rate_kbps = 0.0;
  double new_rate_kbps = 0.0;
  double old_freq_hz = 0.0;
  double new_freq_hz = 0.0;
};

/// Plan for answering one input stream of a subscription.
struct InputPlan {
  std::string input_stream_name;
  /// The stream chosen for reuse and the node where it is tapped.
  network::StreamId reused_stream = -1;
  network::NodeId reuse_node = -1;
  /// Set when the reused stream must first be widened.
  std::optional<WideningSpec> widening;
  /// Operators to install (chain order; nodes are reuse_node or the
  /// query's target node).
  std::vector<EngineOpSpec> ops;
  std::optional<NewStreamSpec> new_stream;
  /// Whether the flow routed over new_stream.route is the raw reused
  /// stream (data shipping) rather than the transformed one.
  bool ships_raw_stream = false;

  double cost = 0.0;
  bool feasible = true;
  /// Estimated one-way delivery latency (ms) from the original data
  /// source through the reused stream chain to the query's super-peer.
  double estimated_latency_ms = 0.0;

  /// Resource deltas this plan commits on deployment.
  std::vector<std::pair<network::LinkId, double>> added_bandwidth_kbps;
  std::vector<std::pair<network::NodeId, double>> added_load;

  std::string ToString() const;
};

/// The full evaluation plan of a subscription (one entry per input).
struct EvaluationPlan {
  std::vector<InputPlan> inputs;

  double TotalCost() const;
  bool Feasible() const;
  std::string ToString() const;
};

/// Base load factor bload(o) for an engine operator kind.
double BaseLoadFor(EngineOpSpec::Kind kind, const cost::CostParams& params);

}  // namespace streamshare::sharing

#endif  // STREAMSHARE_SHARING_PLAN_H_
