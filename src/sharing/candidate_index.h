// The candidate index: replaces Algorithm 1's per-node linear scan of the
// stream registry (StreamRegistry::AvailableAt) with hash-bucket lookup.
//
// Structure. Streams are bucketed by (variant-of stream name, route node) —
// the exact key AvailableAt filters on — and, inside a bucket, grouped by
// *dominance class*: interned property shape (exact structural equality of
// the per-input properties entry) × tap-point latency bit pattern. Two live
// streams in the same class are interchangeable for planning: the cost
// model estimates rates from properties alone, and the only other
// stream-dependent cost input is source latency up to the tap node, so
// every member yields a bit-identical candidate plan except for the stream
// id. The planner therefore examines one representative (the lowest live
// id — exactly the member the flat scan's deterministic tie-break would
// pick) and counts the rest as suppressed. Each group also carries the
// union of its members' route nodes so the BFS frontier stays identical
// to the flat walk (a matched stream contributes all its route nodes).
//
// Shapes are interned once and carry a properties::StreamSignature, a
// conservative pre-filter (window-divisor compatibility, zero-incident
// predicate-graph bounds, projection coverage, UDF identity) that is
// *necessary* for MatchProperties: groups whose signature refutes the
// subscription probe are pruned without touching the matcher.
//
// Maintenance is incremental: the index implements RegistryListener and
// tracks install (OnStreamRegistered), GC/unsubscribe/failure retirement
// (OnStreamRetired), and in-place widening rewrites (OnStreamUpdated).
//
// Invariant (ARCHITECTURE.md #10): the index never changes planning
// outcomes, only the set of candidates examined. Grouped lookup is used
// only when all peers are healthy and widening is off; otherwise Collect
// degrades to per-stream entries (still signature-pruned, except that
// widenable streams survive pruning while widening is enabled, because the
// planner generates widening plans from *non-matching* streams). The flat
// scan stays available behind SystemConfig::candidate_index=false as the
// differential oracle.

#ifndef STREAMSHARE_SHARING_CANDIDATE_INDEX_H_
#define STREAMSHARE_SHARING_CANDIDATE_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "network/stream_registry.h"
#include "network/topology.h"
#include "properties/signature.h"

namespace streamshare::sharing {

/// Necessary condition for matching::MatchProperties(stream, sub) under
/// either predicate mode: false means no match is possible. Exposed for
/// the differential tests.
bool SignatureCouldMatch(const properties::StreamSignature& stream,
                         const properties::SubscriptionProbe& probe);

class CandidateIndex : public network::RegistryListener {
 public:
  /// Both pointers must outlive the index. Existing registry contents are
  /// indexed immediately (recovery/resume construct systems with streams
  /// already registered).
  CandidateIndex(const network::Topology* topology,
                 const network::StreamRegistry* registry);

  // RegistryListener:
  void OnStreamRegistered(network::StreamId id) override;
  void OnStreamRetired(network::StreamId id) override;
  void OnStreamUpdated(network::StreamId id) override;

  /// One candidate the planner should examine.
  struct Entry {
    const network::RegisteredStream* stream = nullptr;
    /// BFS frontier contribution: the union of the dominance group's
    /// member routes; nullptr means "use stream->route" (per-stream mode).
    const std::vector<network::NodeId>* frontier = nullptr;
    /// Dominated duplicates this entry stands in for.
    int suppressed = 0;
    /// Interned shape id of the stream's properties. Two entries with the
    /// same shape have structurally identical props, so shape-keyed
    /// verdicts (full property match against one subscription) can be
    /// memoized across entries without changing any outcome.
    int shape = -1;
  };

  /// Scratch memo for one planner search: SignatureCouldMatch verdicts
  /// per interned shape, with the structural half of each verdict hoisted
  /// to the shape's *family* (the signature with selection bound constants
  /// stripped). First touch of a family pays the full structural check
  /// (operator kinds, UDFs, aggregations, projection coverage, bound-path
  /// alignment); every further shape in it only compares bound constants
  /// through the precomputed alignment. Valid only while the probe it was
  /// filled against is alive and unchanged — the planner allocates one per
  /// subscription input. Purely an effort saver: every verdict is a pure
  /// function of (shape, probe).
  struct ProbeCache {
    /// Per shape: 0 = untested, 1 = could match, 2 = refuted.
    std::vector<int8_t> verdicts;
    /// For one stream-side selection slot: each option is a structurally
    /// compatible probe selection, as probe intervals aligned index-for-
    /// index with the slot's stream intervals (nullptr where the stream
    /// interval carries no bounds).
    struct ProbeAlignment {
      std::vector<std::vector<const properties::PathInterval*>> options;
    };
    struct FamilyEntry {
      /// 0 = untested, 1 = structurally compatible, 2 = refuted.
      int8_t verdict = 0;
      /// True once `matching` has been computed for this probe.
      bool matching_ready = false;
      /// Per stream-selection alignment; filled when verdict == 1.
      std::vector<ProbeAlignment> selections;
      /// Member shapes whose full signature matches the probe, computed
      /// through the family's interval index (most selective bound slot
      /// first, then exact per-shape verification).
      std::vector<int> matching;
    };
    std::vector<FamilyEntry> families;
  };

  struct LookupStats {
    /// Live streams pruned because their shape signature refutes the probe.
    int pruned = 0;
    /// Live streams skipped as dominated duplicates of a returned entry.
    int suppressed = 0;
  };

  /// All candidates available at `node` for `variant_of`, pre-filtered
  /// against `probe` and ordered by ascending representative stream id.
  /// `epoch_safe_only` drops aggregate/UDF shapes (the planner would skip
  /// them); `widening` keeps non-matching widenable streams and forces
  /// per-stream entries; `grouped=false` (degraded health) also forces
  /// per-stream entries. `cache` (optional) memoizes signature verdicts
  /// across the calls of one search; pruning counts in `stats` are
  /// unaffected by cache hits.
  std::vector<Entry> Collect(network::NodeId node, std::string_view variant_of,
                             const properties::SubscriptionProbe& probe,
                             bool epoch_safe_only, bool widening, bool grouped,
                             ProbeCache* cache, LookupStats* stats) const;

  /// Number of interned property shapes (tests/observability).
  size_t shape_count() const { return shapes_.size(); }
  /// Number of interned shape families (tests/observability). Grows with
  /// the structural variety of the workload, not with its population —
  /// the property the registration-scaling gate leans on.
  size_t family_count() const { return families_.size(); }
  /// Number of indexed live streams.
  size_t live_count() const { return live_count_; }

 private:
  struct Shape {
    properties::InputStreamProperties props;
    properties::StreamSignature signature;
    /// Family: shapes identical up to selection bound constants.
    int family = -1;
  };
  struct Family {
    /// First shape interned into the family; its signature carries the
    /// family's structure (every member's is identical minus constants).
    int shape = -1;
    /// Every shape interned into the family, in intern order (shapes are
    /// never removed, so this only grows).
    std::vector<int> member_shapes;
    /// Interval-index slot: one bound side of one selection interval,
    /// with all members sorted ascending by their constant. A probe bound
    /// implies a member bound only when probe.value ≤ member.value, so
    /// the passing members of a slot form a suffix — lookups scan the
    /// most selective suffix instead of every member.
    struct Slot {
      size_t selection = 0;
      size_t interval = 0;
      bool upper = false;
      /// (bound constant, shape), ascending by constant.
      std::vector<std::pair<Decimal, int>> sorted;
    };
    std::vector<Slot> slots;
  };
  struct Group {
    int shape = -1;
    /// Bit pattern of (source_latency_ms + route-prefix latency to the
    /// bucket node): the stream-dependent part of the cost model's latency
    /// term. Grouping on the exact bits keeps member plans bit-identical.
    uint64_t latency_key = 0;
    /// Ascending live member ids; members[0] is the representative.
    std::vector<network::StreamId> members;
    /// Sorted-unique union of member routes (BFS frontier contribution).
    std::vector<network::NodeId> frontier;
  };
  /// Groups of one family within one bucket. Partitioning by family lets
  /// a lookup refute or skip (epoch-unsafe) every member group with one
  /// family-level test instead of touching each shape.
  struct FamilyGroups {
    int family = -1;
    /// Sorted by (shape, latency_key) so a matching-shape lookup can
    /// binary-search its groups instead of scanning the partition.
    std::vector<Group> groups;
    /// Total live members across groups (exact pruning accounting when a
    /// lookup never touches the refuted groups).
    int member_count = 0;
  };
  struct Bucket {
    std::vector<FamilyGroups> partitions;
  };
  /// Per-stream bookkeeping for O(route) removal.
  struct StreamInfo {
    bool indexed = false;
    int shape = -1;
    /// Group latency key per route position.
    std::vector<uint64_t> latency_keys;
  };

  int InternShape(const properties::InputStreamProperties& props);
  int InternFamily(const properties::StreamSignature& signature, int shape);
  void Insert(network::StreamId id);
  void Remove(network::StreamId id);
  uint64_t LatencyKey(const network::RegisteredStream& stream,
                      size_t route_prefix_len) const;
  /// Memoized SignatureCouldMatch: family structure first, then the
  /// shape's bound constants through the family's probe alignment.
  bool ShapeCouldMatch(int shape, const properties::SubscriptionProbe& probe,
                       ProbeCache& cache) const;
  /// Member shapes of `family` whose full signature matches the probe
  /// (exact, memoized per probe): candidates come from the most selective
  /// interval-index slot suffix, then each is verified by ShapeCouldMatch.
  /// Requires the family's structural verdict to be 1.
  const std::vector<int>& MatchingShapes(
      int family, const properties::SubscriptionProbe& probe,
      ProbeCache& cache) const;

  const network::Topology* topology_;
  const network::StreamRegistry* registry_;

  std::vector<Shape> shapes_;
  /// props-fingerprint → shape indices (collisions resolved by equality).
  std::unordered_map<uint64_t, std::vector<int>> shape_lookup_;
  std::vector<Family> families_;
  /// family-key fingerprint → family indices (collisions by key equality).
  std::unordered_map<uint64_t, std::vector<int>> family_lookup_;
  /// Interned family keys, parallel to families_ (collision resolution).
  std::vector<std::string> family_keys_;
  /// variant_of → node → bucket.
  std::map<std::string, std::unordered_map<network::NodeId, Bucket>,
           std::less<>>
      buckets_;
  std::vector<StreamInfo> stream_info_;
  size_t live_count_ = 0;
};

}  // namespace streamshare::sharing

#endif  // STREAMSHARE_SHARING_CANDIDATE_INDEX_H_
