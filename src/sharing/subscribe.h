// Algorithm 1 (Subscribe) and plan generation. The Planner produces
// evaluation plans under the three strategies the paper evaluates:
//
//   * data shipping   — route the raw input stream to the query's node,
//                       evaluate everything there;
//   * query shipping  — evaluate everything at the stream's source node,
//                       route the result;
//   * stream sharing  — Algorithm 1: breadth-first search over the network
//                       for reusable (possibly preprocessed) streams,
//                       properties matching, cost-based plan choice,
//                       residual operators installed at the reuse node.
//
// One deviation from the paper's pseudo-code, documented in DESIGN.md: when
// a stream matches, we enqueue every node on its route (not only its target
// node) into LV — a stream is available along its whole route, and this is
// what lets Query 2 tap Query 1's stream at the intermediate super-peer SP5
// in the paper's own running example.

#ifndef STREAMSHARE_SHARING_SUBSCRIBE_H_
#define STREAMSHARE_SHARING_SUBSCRIBE_H_

#include <optional>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "cost/cost_model.h"
#include "matching/match_properties.h"
#include "network/state.h"
#include "network/stream_registry.h"
#include "network/topology.h"
#include "sharing/plan.h"
#include "wxquery/analyzer.h"

namespace streamshare::sharing {

struct PlannerOptions {
  matching::MatchOptions match_options;
  /// Algorithm 1's search pruning: only nodes reached via matching streams
  /// are explored. When false, the BFS also walks topology neighbors
  /// (ablation A1).
  bool prune_search = true;
  /// When true, plans that overload a peer or connection are only chosen
  /// if no feasible plan exists (and the system will reject the query).
  bool prefer_feasible = true;
  /// Stream widening (paper §6, future work): when a candidate stream
  /// does not contain everything a new subscription needs, consider
  /// relaxing the deployed stream's selection/projection so that it does,
  /// paying the bandwidth delta on its existing route. Every plain query
  /// then carries compensation operators in front of its restructuring
  /// step, so widening upstream never changes delivered results. Must be
  /// chosen for the lifetime of a system, not toggled per query.
  bool enable_widening = false;
  /// Restrict reuse to epoch-safe candidates: skip deployed streams that
  /// carry aggregation or window-contents operators, and skip widening.
  /// Failure recovery re-plans under this restriction so a query rebuilt
  /// mid-stream depends only on post-recovery items — a shared aggregate
  /// stream's in-flight windows may straddle the recovery point, which
  /// would break the gap-not-garbage guarantee (windowed residual ops
  /// are instead rebuilt fresh in resume mode).
  bool epoch_safe_only = false;
};

/// One plan the search generated and costed, in generation order. The
/// final choice per input is flagged `chosen`; the rest are the
/// alternatives it beat — the raw material of `--explain`.
struct CandidatePlanInfo {
  std::string input_stream;
  network::StreamId reused_stream = -1;
  network::NodeId reuse_node = -1;
  /// C(P) as computed by cost::CostModel (latency-weighted).
  double cost = 0.0;
  bool feasible = false;
  /// Plan widens a deployed stream (paper §6) before reusing it.
  bool widening = false;
  bool chosen = false;
  /// The no-sharing fallback (original stream shipped to vq, all
  /// evaluation there). Always recorded first per input; the
  /// differential oracle compares the chosen plan's C(P) against it.
  bool baseline = false;
};

/// Search-effort counters of one Subscribe run.
struct SearchStats {
  int nodes_visited = 0;
  int candidates_examined = 0;
  int candidates_matched = 0;
  int plans_generated = 0;
  /// Index-only counters (zero on the flat path): live streams the
  /// candidate index pruned by signature before MatchProperties ran, and
  /// dominated duplicates it collapsed into a group representative.
  int candidates_pruned = 0;
  int candidates_suppressed = 0;
  /// Every costed plan, including the initial ship-to-vq fallback.
  std::vector<CandidatePlanInfo> candidates;
};

class CandidateIndex;

class Planner {
 public:
  /// Scratch memo for one Subscribe input's BFS on the indexed path. Every
  /// entry is a pure function of (interned candidate shape, this input's
  /// binding and canonical properties, the tap node), so all candidates of
  /// one search share it; a hit returns the exact value the plain
  /// computation would, including error statuses — nothing here changes a
  /// planning outcome. The flat oracle path never uses one.
  struct PlanMemo {
    /// EstimateStream(reused.props), keyed by the candidate's shape.
    std::unordered_map<int, Result<cost::StreamEstimate>> reused_estimates;
    /// EstimateStream(sub_props) — the new stream every shared plan ships.
    std::optional<Result<cost::StreamEstimate>> sub_estimate;
    /// PropsEquivalent(reused.props, sub_props), keyed by shape.
    std::unordered_map<int, bool> equivalent;
    /// Selectivity of the residual σ — ResidualOps/BuildPlan emit kSelect
    /// only over binding.item_predicates, so one value serves every plan.
    std::optional<Result<double>> select_selectivity;
    /// WindowUpdateDivisor(binding.stream_name, *binding.window) — the
    /// only window ResidualOps installs as kWindowAgg/kWindowContents.
    std::optional<Result<double>> window_divisor;
    /// RoutePath(v, vq), keyed by tap node v (vq is fixed per search).
    std::unordered_map<network::NodeId,
                       Result<std::vector<network::NodeId>>>
        routes;
    /// LinksOnPath(route of RoutePath(v, vq)), keyed by tap node v.
    std::unordered_map<network::NodeId,
                       Result<std::vector<network::LinkId>>>
        route_links;
    /// PathLatencyMs(route of RoutePath(v, vq)), keyed by tap node v.
    std::unordered_map<network::NodeId, Result<double>> route_latency;
    /// The plan's operator chain, keyed by shape: residual ops built with
    /// the tap node left as -1 (CostPlan substitutes the candidate's
    /// reuse node) plus any compensation ops at vq. Memoized plans carry
    /// an empty `ops` vector and are scored against this template; the
    /// search regenerates the one winning plan in full.
    std::unordered_map<int, Result<std::vector<EngineOpSpec>>>
        ops_template;
    /// Scratch for CostPlan's per-peer load accumulation (indexed by
    /// node id, reset via `touched_peers` between plans). Replaces a
    /// std::map on the memoized path; summation order is kept identical
    /// by draining touched peers in ascending node order.
    std::vector<double> load_scratch;
    std::vector<char> load_mark;
    std::vector<network::NodeId> touched_peers;
  };

  Planner(const network::Topology* topology,
          const network::NetworkState* state,
          const network::StreamRegistry* registry,
          const cost::CostModel* cost_model, PlannerOptions options)
      : topology_(topology),
        state_(state),
        registry_(registry),
        cost_model_(cost_model),
        options_(options) {}

  const network::StreamRegistry& registry() const { return *registry_; }

  /// Installs (or clears) the candidate index Subscribe consults instead
  /// of the flat per-node registry scan. The index must stay consistent
  /// with the registry (it subscribes to registry mutations); planning
  /// outcomes are identical either way — only the candidates examined
  /// change (ARCHITECTURE.md invariant 10).
  void set_candidate_index(const CandidateIndex* index) { index_ = index; }
  const CandidateIndex* candidate_index() const { return index_; }

  /// Algorithm 1. `vq` is the super-peer the query registers at. When
  /// `allowed_nodes` is non-null the breadth-first search only visits
  /// those peers (the hierarchical-subnet optimization restricts the
  /// search to the query's subnet plus the input's source); the initial
  /// plan — original stream to vq — is always available regardless.
  Result<EvaluationPlan> Subscribe(
      const wxquery::AnalyzedQuery& query, network::NodeId vq,
      SearchStats* stats = nullptr,
      const std::set<network::NodeId>* allowed_nodes = nullptr) const;

  /// Baseline: raw stream to vq, all evaluation at vq.
  Result<EvaluationPlan> DataShipping(const wxquery::AnalyzedQuery& query,
                                      network::NodeId vq) const;

  /// Baseline: all evaluation at the source super-peer, result to vq.
  Result<EvaluationPlan> QueryShipping(const wxquery::AnalyzedQuery& query,
                                       network::NodeId vq) const;

  /// generatePlan(p_b, v_b, v_q): plan reusing stream `reused` tapped at
  /// `v`, residual operators at `v`, result routed to `vq`.
  /// `shape`/`memo` (indexed BFS only) memoize the shape- and node-pure
  /// parts of plan generation across the candidates of one search; pass
  /// the defaults everywhere else.
  Result<InputPlan> GenerateSharedPlan(
      const network::RegisteredStream& reused, network::NodeId v,
      network::NodeId vq, const wxquery::StreamBinding& binding,
      const properties::InputStreamProperties& sub_props, int shape = -1,
      PlanMemo* memo = nullptr) const;

  /// Plan that first widens `narrow` (a deployed stream that does NOT
  /// match the subscription) so that it covers the subscription's needs,
  /// then reuses it at `v`. Fails with kUnsupported when the stream is
  /// not widenable (aggregate/window streams, originals, or an upstream
  /// that no longer covers the widened content).
  Result<InputPlan> GenerateWideningPlan(
      const network::RegisteredStream& narrow, network::NodeId v,
      network::NodeId vq, const wxquery::StreamBinding& binding,
      const properties::InputStreamProperties& sub_props) const;

 private:
  /// ShortestPath that routes around dead peers and down links (per
  /// state_->health()); identical to the plain path while all-healthy.
  Result<std::vector<network::NodeId>> RoutePath(network::NodeId from,
                                                 network::NodeId to) const;

  /// False when the stream's route crosses a dead peer or a down link —
  /// the stream no longer flows and must not be reused.
  bool StreamUsable(const network::RegisteredStream& stream) const;

  Result<InputPlan> BuildPlan(const network::RegisteredStream& reused,
                              network::NodeId v, network::NodeId vq,
                              const wxquery::StreamBinding& binding,
                              const properties::InputStreamProperties&
                                  sub_props,
                              std::optional<WideningSpec> widening,
                              int shape = -1,
                              PlanMemo* memo = nullptr) const;
  /// Builds the residual operator chain that turns the reused stream into
  /// the subscription's canonical stream; ops are placed at `node`.
  Result<std::vector<EngineOpSpec>> ResidualOps(
      const network::RegisteredStream& reused,
      const wxquery::StreamBinding& binding, network::NodeId node,
      bool reused_is_equivalent) const;

  /// Fills cost / feasibility / resource-delta fields of a plan whose ops
  /// and new_stream are set. `flow_rate_kbps` is the rate of the stream on
  /// the plan's route.
  Status CostPlan(InputPlan* plan, const wxquery::StreamBinding& binding,
                  const network::RegisteredStream& reused,
                  network::NodeId vq, int shape = -1,
                  PlanMemo* memo = nullptr) const;

  /// True if the reused stream's content is already exactly what the
  /// subscription's canonical stream would be.
  bool PropsEquivalent(const properties::InputStreamProperties& a,
                       const properties::InputStreamProperties& b) const;

  const network::Topology* topology_;
  const network::NetworkState* state_;
  const network::StreamRegistry* registry_;
  const cost::CostModel* cost_model_;
  PlannerOptions options_;
  const CandidateIndex* index_ = nullptr;
};

}  // namespace streamshare::sharing

#endif  // STREAMSHARE_SHARING_SUBSCRIBE_H_
