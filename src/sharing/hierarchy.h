// Hierarchical query registration — the paper's scalability future work
// (§6): instead of searching the whole network for shareable streams, the
// Subscribe search runs within the registering query's subnet first (plus
// the input stream's source node, so the fallback plan and streams
// crossing into the subnet remain reachable), and escalates to the global
// search only when the local one finds no derived stream to reuse.

#ifndef STREAMSHARE_SHARING_HIERARCHY_H_
#define STREAMSHARE_SHARING_HIERARCHY_H_

#include "network/subnet.h"
#include "sharing/subscribe.h"

namespace streamshare::sharing {

struct HierarchicalOptions {
  /// Escalate to a global search when the subnet-local search reuses
  /// nothing but the original stream. Disabling trades plan quality for
  /// strictly subnet-local registration effort.
  bool fallback_to_global = true;
};

class HierarchicalPlanner {
 public:
  HierarchicalPlanner(const Planner* planner,
                      const network::SubnetPartition* partition,
                      HierarchicalOptions options = {})
      : planner_(planner), partition_(partition), options_(options) {}

  /// Algorithm 1 with a subnet-restricted search.
  Result<EvaluationPlan> Subscribe(const wxquery::AnalyzedQuery& query,
                                   network::NodeId vq,
                                   SearchStats* stats = nullptr) const;

 private:
  const Planner* planner_;
  const network::SubnetPartition* partition_;
  HierarchicalOptions options_;
};

}  // namespace streamshare::sharing

#endif  // STREAMSHARE_SHARING_HIERARCHY_H_
