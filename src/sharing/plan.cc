#include "sharing/plan.h"

#include "common/string_util.h"

namespace streamshare::sharing {

double BaseLoadFor(EngineOpSpec::Kind kind, const cost::CostParams& params) {
  switch (kind) {
    case EngineOpSpec::Kind::kSelect:
      return params.bload_selection;
    case EngineOpSpec::Kind::kProject:
      return params.bload_projection;
    case EngineOpSpec::Kind::kWindowAgg:
      return params.bload_aggregation;
    case EngineOpSpec::Kind::kAggCombine:
      return params.bload_window_combine;
    case EngineOpSpec::Kind::kAggFilter:
      // The result filter is a selection on aggregate values.
      return params.bload_selection;
    case EngineOpSpec::Kind::kWindowContents:
      // Buffering plus one wrapper construction per window.
      return params.bload_window_combine;
  }
  return 1.0;
}

std::string EngineOpSpec::ToString() const {
  std::string out;
  switch (kind) {
    case Kind::kSelect: {
      std::vector<std::string> parts;
      parts.reserve(predicates.size());
      for (const auto& pred : predicates) parts.push_back(pred.ToString());
      out = "select[" + Join(parts, " and ") + "]";
      break;
    }
    case Kind::kProject: {
      std::vector<std::string> parts;
      parts.reserve(output_paths.size());
      for (const auto& path : output_paths) {
        parts.push_back(path.ToString());
      }
      out = "project{" + Join(parts, ", ") + "}";
      break;
    }
    case Kind::kWindowAgg:
      out = std::string("window-agg ") +
            std::string(properties::AggregateFuncToString(func)) + "(" +
            aggregated_element.ToString() + ") " + window.ToString();
      break;
    case Kind::kAggCombine:
      out = "agg-combine " + fine_window.ToString() + " -> " +
            window.ToString();
      break;
    case Kind::kAggFilter: {
      std::vector<std::string> parts;
      parts.reserve(predicates.size());
      for (const auto& pred : predicates) parts.push_back(pred.ToString());
      out = "agg-filter[" + Join(parts, " and ") + "]";
      break;
    }
    case Kind::kWindowContents:
      out = "window-contents " + window.ToString();
      break;
  }
  out += " @node" + std::to_string(node);
  return out;
}

std::string InputPlan::ToString() const {
  std::string out = "InputPlan{input='" + input_stream_name + "', reuse=";
  out += reused_stream >= 0 ? "stream#" + std::to_string(reused_stream)
                            : std::string("none");
  out += "@node" + std::to_string(reuse_node);
  for (const EngineOpSpec& op : ops) {
    out += "; " + op.ToString();
  }
  if (new_stream.has_value()) {
    out += "; route=[";
    for (size_t i = 0; i < new_stream->route.size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(new_stream->route[i]);
    }
    out += "]";
  }
  out += "; cost=" + std::to_string(cost);
  out += feasible ? "" : " INFEASIBLE";
  out += "}";
  return out;
}

double EvaluationPlan::TotalCost() const {
  double total = 0.0;
  for (const InputPlan& input : inputs) total += input.cost;
  return total;
}

bool EvaluationPlan::Feasible() const {
  for (const InputPlan& input : inputs) {
    if (!input.feasible) return false;
  }
  return true;
}

std::string EvaluationPlan::ToString() const {
  std::string out = "EvaluationPlan{\n";
  for (const InputPlan& input : inputs) {
    out += "  " + input.ToString() + "\n";
  }
  out += "}";
  return out;
}

}  // namespace streamshare::sharing
