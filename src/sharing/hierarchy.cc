#include "sharing/hierarchy.h"

#include <iterator>

namespace streamshare::sharing {

Result<EvaluationPlan> HierarchicalPlanner::Subscribe(
    const wxquery::AnalyzedQuery& query, network::NodeId vq,
    SearchStats* stats) const {
  // Search scope: the registering subnet plus the source node of each
  // referenced input stream (the initial data-shipping plan needs it, and
  // it is the root of the stream-route exploration).
  int subnet = partition_->subnet_of(vq);
  std::set<network::NodeId> allowed(partition_->nodes_in(subnet).begin(),
                                    partition_->nodes_in(subnet).end());
  for (const wxquery::StreamBinding& binding : query.bindings) {
    const network::RegisteredStream* original =
        planner_->registry().FindOriginal(binding.stream_name);
    if (original != nullptr) allowed.insert(original->source_node);
  }

  SearchStats local_stats;
  SS_ASSIGN_OR_RETURN(EvaluationPlan plan,
                      planner_->Subscribe(query, vq, &local_stats,
                                          &allowed));

  if (options_.fallback_to_global) {
    bool reused_derived = false;
    for (const InputPlan& input : plan.inputs) {
      if (input.reused_stream >= 0 &&
          !planner_->registry().stream(input.reused_stream).IsOriginal()) {
        reused_derived = true;
      }
    }
    if (!reused_derived) {
      // Nothing shareable in the subnet: escalate to the global search.
      SearchStats global_stats;
      SS_ASSIGN_OR_RETURN(
          EvaluationPlan global_plan,
          planner_->Subscribe(query, vq, &global_stats));
      local_stats.nodes_visited += global_stats.nodes_visited;
      local_stats.candidates_examined += global_stats.candidates_examined;
      local_stats.candidates_matched += global_stats.candidates_matched;
      local_stats.plans_generated += global_stats.plans_generated;
      bool global_wins = global_plan.TotalCost() < plan.TotalCost();
      // Exactly one candidate per input stays chosen: the losing search's
      // chosen flags are cleared before the candidate lists concatenate.
      for (CandidatePlanInfo& candidate :
           global_wins ? local_stats.candidates : global_stats.candidates) {
        candidate.chosen = false;
      }
      local_stats.candidates.insert(
          local_stats.candidates.end(),
          std::make_move_iterator(global_stats.candidates.begin()),
          std::make_move_iterator(global_stats.candidates.end()));
      if (global_wins) plan = std::move(global_plan);
    }
  }
  if (stats != nullptr) *stats = local_stats;
  return plan;
}

}  // namespace streamshare::sharing
