// StreamShareSystem: the StreamGlobe-style facade tying everything
// together. It owns the network (topology + utilization state), the stream
// registry and statistics, the cost model and planner, and a running
// engine deployment. Streams are registered once; continuous queries are
// registered incrementally under one of the three strategies, the winning
// plan is deployed into the live operator network, and new shareable
// streams become candidates for later subscriptions — the paper's
// multi-subscription optimization.

#ifndef STREAMSHARE_SHARING_SYSTEM_H_
#define STREAMSHARE_SHARING_SYSTEM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "cost/statistics.h"
#include "engine/executor.h"
#include "engine/metrics.h"
#include "engine/operator.h"
#include "engine/parallel_executor.h"
#include "network/state.h"
#include "network/stream_registry.h"
#include "network/subnet.h"
#include "network/topology.h"
#include "obs/metrics_registry.h"
#include "sharing/hierarchy.h"
#include "sharing/plan.h"
#include "sharing/subscribe.h"
#include "transport/runner.h"
#include "wxquery/analyzer.h"

namespace streamshare::sharing {

enum class Strategy { kDataShipping, kQueryShipping, kStreamSharing };

std::string_view StrategyToString(Strategy strategy);

/// How Run() drives the deployed operator network: serial on the calling
/// thread (the default and the correctness oracle), partitioned by
/// super-peer across worker threads with bounded queues on the peer
/// boundaries, or partitioned across a transport (binary codec +
/// credit-based flow control; with config.transport = "tcp" and
/// transport_processes, each partition becomes its own OS process).
enum class ExecutorKind { kSerial, kParallel, kTransport };

struct SystemConfig {
  cost::CostParams cost_params;
  PlannerOptions planner;
  /// Reject subscriptions whose best plan overloads a peer or connection
  /// (the paper's capacity-limited experiment).
  bool enforce_limits = false;
  /// Keep result items in query sinks (tests/examples; benches leave this
  /// off to bound memory).
  bool keep_results = false;
  /// Hierarchical organization (paper §6): when non-empty, assigns every
  /// peer to a subnet and stream-sharing registrations search the query's
  /// subnet first, escalating per `hierarchy` options.
  std::vector<int> subnet_assignment;
  HierarchicalOptions hierarchy;
  /// Executor Run() uses; RunParallel() forces kParallel regardless.
  ExecutorKind executor = ExecutorKind::kSerial;
  /// Queue capacity / dispatch batching for the parallel executor.
  engine::ParallelOptions parallel;
  /// Transport RunTransport() uses: "loopback" (in-process frame pipes,
  /// the default) or "tcp" (one localhost TCP connection per
  /// cross-worker channel).
  std::string transport = "loopback";
  /// Run each worker partition as its own OS process instead of a
  /// thread. Requires a transport whose pipes survive fork ("tcp").
  bool transport_processes = false;
  /// Credit window / timeouts and fault injection for RunTransport().
  transport::FlowOptions flow;
  transport::FaultPlan faults;
};

/// Outcome of registering one continuous query.
struct RegistrationResult {
  int query_id = -1;
  bool accepted = false;
  std::string reject_reason;
  EvaluationPlan plan;
  SearchStats search;
  /// Wall-clock registration latency (parse + analyze + plan + deploy).
  double registration_micros = 0.0;
  /// Result collector of this query (borrowed; valid while the system
  /// lives). nullptr if rejected.
  engine::SinkOp* sink = nullptr;
};

class StreamShareSystem {
 public:
  StreamShareSystem(network::Topology topology, SystemConfig config);

  /// Registers an original data stream produced at `source`.
  Status RegisterStream(const std::string& name,
                        std::shared_ptr<const xml::StreamSchema> schema,
                        double item_frequency_hz,
                        network::NodeId source);

  /// Registers an original data stream with fully collected statistics
  /// (schema, frequency, ranges, increments) — the natural companion of
  /// cost::StatisticsCollector.
  Status RegisterStream(const std::string& name,
                        cost::StreamStatistics statistics,
                        network::NodeId source);

  /// Statistics hooks (value ranges, reference-element increments) for a
  /// registered stream; call before registering queries.
  Status SetRange(const std::string& stream, const xml::Path& path,
                  cost::ValueRange range);
  Status SetAvgIncrement(const std::string& stream, const xml::Path& path,
                         double increment);

  /// Registers a continuous query at super-peer `vq` under `strategy`.
  /// Returns the registration outcome (also retained in registrations()).
  /// A parse/analysis error fails the call; an overload rejection returns
  /// accepted = false.
  Result<RegistrationResult> RegisterQuery(std::string_view query_text,
                                           network::NodeId vq,
                                           Strategy strategy);

  /// Deregisters a continuous query: detaches its operator chains from the
  /// shared streams, retires the streams it registered, and releases the
  /// bandwidth and load its plan committed. Fails with kInvalidArgument
  /// when another active subscription still consumes one of the query's
  /// streams (deregister the consumers first), or when the query's plan
  /// widened a stream (widening is irreversible while consumers may rely
  /// on the widened content).
  Status UnregisterQuery(int query_id);

  /// True while the query is deployed (false after UnregisterQuery or for
  /// rejected registrations).
  bool IsActive(int query_id) const;

  /// Single-shot run: feeds items of the named original streams through
  /// the deployed network (round-robin across streams), then signals end
  /// of stream — window operators flush their partial windows. Use
  /// Feed/Shutdown instead for continuous operation across multiple
  /// batches.
  Status Run(const std::map<std::string, std::vector<engine::ItemPtr>>&
                 items_by_stream);

  /// Single-shot run on the peer-partitioned parallel executor (one
  /// worker thread per super-peer partition, bounded queues on the peer
  /// boundaries), regardless of the configured ExecutorKind. Results and
  /// merged metrics match a serial Run of the same items.
  Status RunParallel(
      const std::map<std::string, std::vector<engine::ItemPtr>>&
          items_by_stream);

  /// Per-worker queue/blocking stats of the most recent parallel run
  /// (empty if no parallel run happened yet).
  const std::vector<engine::ParallelWorkerStats>& parallel_stats() const {
    return parallel_stats_;
  }

  /// Single-shot run over the configured transport (config.transport,
  /// config.transport_processes): the partitioned operator network
  /// exchanges encoded items through flow-controlled channels,
  /// optionally with every worker in its own OS process. Results and
  /// merged metrics match a serial Run of the same items.
  Status RunTransport(
      const std::map<std::string, std::vector<engine::ItemPtr>>&
          items_by_stream);

  /// Traffic measured by the most recent RunTransport (bytes-on-wire per
  /// channel, encoded bytes per cross edge, credit stalls). Empty
  /// transport name if no transport run happened yet.
  const transport::TransportRunStats& transport_stats() const {
    return transport_stats_;
  }

  /// Continuous operation: feeds a batch without signalling end of
  /// stream. Subscriptions may be registered and deregistered between
  /// batches; window state carries across.
  Status Feed(const std::map<std::string, std::vector<engine::ItemPtr>>&
                  items_by_stream);

  /// Ends all streams: flushes buffered window state to every active
  /// subscription. One-shot; after shutdown no further Feed is
  /// meaningful.
  Status Shutdown();

  const network::Topology& topology() const { return topology_; }
  const network::NetworkState& state() const { return state_; }
  const network::StreamRegistry& registry() const { return registry_; }
  const engine::Metrics& metrics() const { return metrics_; }
  const cost::CostModel& cost_model() const { return *cost_model_; }
  const std::vector<RegistrationResult>& registrations() const {
    return registrations_;
  }

  int accepted_count() const;
  int rejected_count() const;

  /// Human-readable snapshot of the deployment: every stream flowing in
  /// the network (content, route, rate, consumers) and every active
  /// subscription.
  std::string DescribeDeployment() const;

  /// Folds the system's own measurements into named registry series:
  /// engine.link.<a>-<b>.bytes and engine.peer.<name>.{work,items} from
  /// the deployment's Metrics, engine.worker.<i>.* from the most recent
  /// parallel run, network.{link,peer}.<...>.utilization gauges from
  /// the committed plan usage, and — after a RunTransport —
  /// transport.link.<a>-<b>.{encoded_bytes,predicted_kbps} gauges that
  /// put measured bytes-on-wire next to the cost model's committed
  /// bandwidth u_b(e). Call before exporting a snapshot.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

 private:
  Status DeployPlan(const EvaluationPlan& plan,
                    std::shared_ptr<const wxquery::AnalyzedQuery> query,
                    network::NodeId vq, Strategy strategy,
                    RegistrationResult* result);
  /// Wires one input's operator chain from its tap point to the query's
  /// terminal stage (restructuring, or a combination port).
  /// How one registered query is wired into the engine (for later
  /// deregistration).
  struct QueryDeployment {
    struct InputWiring {
      engine::Operator* tap = nullptr;    // shared stream's tap operator
      engine::Operator* first = nullptr;  // head of the private chain
      network::StreamId registered_stream = -1;  // -1 if none registered
      network::StreamId reused_stream = -1;
    };
    std::vector<InputWiring> inputs;
    bool active = false;
    bool widened_a_stream = false;
  };

  Status WireInput(const InputPlan& input,
                   std::shared_ptr<const wxquery::AnalyzedQuery> query,
                   network::NodeId vq, Strategy strategy, int query_id,
                   engine::Operator* terminal,
                   QueryDeployment::InputWiring* wiring);

  network::Topology topology_;
  SystemConfig config_;
  network::NetworkState state_;
  network::StreamRegistry registry_;
  cost::StatisticsRegistry statistics_;
  std::unique_ptr<cost::CostModel> cost_model_;
  std::unique_ptr<Planner> planner_;
  std::unique_ptr<network::SubnetPartition> partition_;
  std::unique_ptr<HierarchicalPlanner> hierarchical_planner_;
  engine::OperatorGraph graph_;
  engine::Metrics metrics_;
  /// Engine-side footprint of a registered stream: its tap operators
  /// (taps[i] materializes the stream at route node i) and, for widenable
  /// streams, the reconfigurable producer operators.
  struct DeployedStream {
    std::vector<engine::Operator*> taps;
    engine::SelectOp* select = nullptr;
    engine::ProjectOp* project = nullptr;
  };
  std::map<network::StreamId, DeployedStream> taps_;
  /// Entry operator per original stream name (fed by Run()).
  std::map<std::string, engine::Operator*> stream_entries_;
  std::vector<std::shared_ptr<const wxquery::AnalyzedQuery>> queries_;
  std::vector<RegistrationResult> registrations_;
  /// Indexed by query id (one entry per registration, rejected included).
  std::vector<QueryDeployment> deployments_;
  std::vector<engine::ParallelWorkerStats> parallel_stats_;
  transport::TransportRunStats transport_stats_;
};

}  // namespace streamshare::sharing

#endif  // STREAMSHARE_SHARING_SYSTEM_H_
