// StreamShareSystem: the StreamGlobe-style facade tying everything
// together. It owns the network (topology + utilization state), the stream
// registry and statistics, the cost model and planner, and a running
// engine deployment. Streams are registered once; continuous queries are
// registered incrementally under one of the three strategies, the winning
// plan is deployed into the live operator network, and new shareable
// streams become candidates for later subscriptions — the paper's
// multi-subscription optimization.

#ifndef STREAMSHARE_SHARING_SYSTEM_H_
#define STREAMSHARE_SHARING_SYSTEM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "cost/statistics.h"
#include "engine/executor.h"
#include "engine/metrics.h"
#include "engine/operator.h"
#include "engine/parallel_executor.h"
#include "network/state.h"
#include "network/stream_registry.h"
#include "network/subnet.h"
#include "network/topology.h"
#include "obs/metrics_registry.h"
#include "recover/report.h"
#include "sharing/candidate_index.h"
#include "sharing/hierarchy.h"
#include "sharing/plan.h"
#include "sharing/subscribe.h"
#include "transport/runner.h"
#include "transport/tcp.h"
#include "wxquery/analyzer.h"

namespace streamshare::sharing {

enum class Strategy { kDataShipping, kQueryShipping, kStreamSharing };

std::string_view StrategyToString(Strategy strategy);

/// How Run() drives the deployed operator network: serial on the calling
/// thread (the default and the correctness oracle), partitioned by
/// super-peer across worker threads with bounded queues on the peer
/// boundaries, or partitioned across a transport (binary codec +
/// credit-based flow control; with config.transport = "tcp" and
/// transport_processes, each partition becomes its own OS process).
enum class ExecutorKind { kSerial, kParallel, kTransport };

struct SystemConfig {
  cost::CostParams cost_params;
  PlannerOptions planner;
  /// Reject subscriptions whose best plan overloads a peer or connection
  /// (the paper's capacity-limited experiment).
  bool enforce_limits = false;
  /// Keep result items in query sinks (tests/examples; benches leave this
  /// off to bound memory).
  bool keep_results = false;
  /// Hierarchical organization (paper §6): when non-empty, assigns every
  /// peer to a subnet and stream-sharing registrations search the query's
  /// subnet first, escalating per `hierarchy` options.
  std::vector<int> subnet_assignment;
  HierarchicalOptions hierarchy;
  /// Executor Run() uses; RunParallel() forces kParallel regardless.
  ExecutorKind executor = ExecutorKind::kSerial;
  /// Queue capacity / dispatch batching for the parallel executor.
  engine::ParallelOptions parallel;
  /// Indexed candidate lookup: Subscribe consults a CandidateIndex
  /// (hash buckets on (variant stream, route node), dominance-grouped by
  /// property shape and tap latency, signature-pruned) instead of the
  /// flat per-node registry scan. Planning outcomes are identical either
  /// way (ARCHITECTURE.md invariant 10); false keeps the flat BFS as the
  /// differential oracle reference.
  bool candidate_index = true;
  /// Master switch for the compact-record hot path: serial runs chunk
  /// items into batches and adopt photon-conforming items into
  /// PhotonRecords, and the parallel/transport executors do the same
  /// while feeding. Off, every run drives items one by one through the
  /// DOM evaluation path — the differential oracle's reference mode.
  bool record_path = true;
  /// Transport RunTransport() uses: "loopback" (in-process frame pipes,
  /// the default) or "tcp" (one localhost TCP connection per
  /// cross-worker channel).
  std::string transport = "loopback";
  /// Run each worker partition as its own OS process instead of a
  /// thread. Requires a transport whose pipes survive fork ("tcp").
  bool transport_processes = false;
  /// Credit window / timeouts and fault injection for RunTransport().
  transport::FlowOptions flow;
  transport::FaultPlan faults;
  /// Connect retry/backoff for the "tcp" transport.
  transport::TcpOptions tcp;
  /// Resume mode: the system is (re)started mid-stream — item positions do
  /// not begin at zero. Every deployed window operator anchors at the first
  /// window that STARTS at or after the first item it sees (straddling
  /// windows are suppressed, gap-not-garbage), and planning is restricted
  /// to epoch-safe reuse. The differential oracle uses this to build the
  /// fresh reference run a recovered deployment must match over
  /// post-recovery epochs.
  bool resume_mode = false;
  /// Measured-latency plane: stamp every item at ingress and record
  /// per-query end-to-end latency histograms at the sinks (exported as
  /// latency.query.* / latency.audit.* metrics). Stamping never changes
  /// results — only metrics — but costs one clock read per item, so
  /// throughput benchmarks may switch it off.
  bool measure_latency = true;
};

/// Outcome of registering one continuous query.
struct RegistrationResult {
  int query_id = -1;
  bool accepted = false;
  std::string reject_reason;
  EvaluationPlan plan;
  SearchStats search;
  /// Wall-clock registration latency (parse + analyze + plan + deploy).
  double registration_micros = 0.0;
  /// Result collector of this query (borrowed; valid while the system
  /// lives). nullptr if rejected.
  engine::SinkOp* sink = nullptr;
  /// Super-peer the query registered at; failure recovery tears the query
  /// down (instead of re-planning) when this peer dies.
  network::NodeId vq = -1;
  /// Strategy the query registered under; recovery re-plans under the
  /// same strategy family (stream sharing re-registers shareable streams,
  /// the shipping baselines do not).
  Strategy strategy = Strategy::kStreamSharing;
};

class StreamShareSystem {
 public:
  StreamShareSystem(network::Topology topology, SystemConfig config);

  /// Registers an original data stream produced at `source`.
  Status RegisterStream(const std::string& name,
                        std::shared_ptr<const xml::StreamSchema> schema,
                        double item_frequency_hz,
                        network::NodeId source);

  /// Registers an original data stream with fully collected statistics
  /// (schema, frequency, ranges, increments) — the natural companion of
  /// cost::StatisticsCollector.
  Status RegisterStream(const std::string& name,
                        cost::StreamStatistics statistics,
                        network::NodeId source);

  /// Statistics hooks (value ranges, reference-element increments) for a
  /// registered stream; call before registering queries.
  Status SetRange(const std::string& stream, const xml::Path& path,
                  cost::ValueRange range);
  Status SetAvgIncrement(const std::string& stream, const xml::Path& path,
                         double increment);

  /// Registers a continuous query at super-peer `vq` under `strategy`.
  /// Returns the registration outcome (also retained in registrations()).
  /// A parse/analysis error fails the call; an overload rejection returns
  /// accepted = false.
  Result<RegistrationResult> RegisterQuery(std::string_view query_text,
                                           network::NodeId vq,
                                           Strategy strategy);

  /// One query of a registration batch.
  struct BatchQuery {
    std::string text;
    network::NodeId vq = -1;
    Strategy strategy = Strategy::kStreamSharing;
  };
  /// Work-saving counters of one SubscribeBatch call.
  struct BatchStats {
    int queries = 0;
    /// Identical query texts parsed/analyzed once.
    int analyze_cache_hits = 0;
    /// (text, vq, strategy) triples re-planned from the batch memo — valid
    /// only while no accepted registration changed planner-visible state.
    int plan_memo_hits = 0;
    /// Registrations that consumed a query id (accepted or
    /// admission-rejected). On a mid-batch hard error this is the length
    /// of the installed prefix — the batch behaves exactly like the
    /// sequential calls it replaces, so earlier registrations remain.
    int registered = 0;
  };

  /// Registers a batch of queries. Semantically identical to calling
  /// RegisterQuery on each element in order — same installed plans, same
  /// acceptance decisions, same sink results — but clusters the batch:
  /// duplicate texts are analyzed once, and plans are reused across
  /// template-identical queries as long as no intervening acceptance
  /// invalidated them. Stops at the first hard error (parse failure,
  /// unregistered stream); admission-control rejections are per-query
  /// results, not errors, and do not stop the batch.
  Result<std::vector<RegistrationResult>> SubscribeBatch(
      const std::vector<BatchQuery>& queries, BatchStats* stats = nullptr);

  /// Outcome of one background re-optimization pass.
  struct ReoptimizeReport {
    /// Active stream-sharing queries whose plan was re-evaluated.
    int examined = 0;
    /// Queries migrated to a strictly cheaper plan.
    int migrated = 0;
    /// Queries lost because the post-park re-plan failed (degraded
    /// topology mid-pass; effectively unreachable on a healthy network).
    int torn_down = 0;
    /// Σ C(P) over examined queries before/after the pass.
    double cost_before = 0.0;
    double cost_after = 0.0;
    /// Open windows destroyed by migrations (gap-not-garbage: migrated
    /// queries resume at the next window boundary).
    uint64_t lost_windows = 0;
  };

  /// Background re-optimization: re-plans every active stream-sharing
  /// query against today's stream population (arrival-order incremental
  /// planning leaves traffic on the table — the A6 gap) and migrates
  /// queries whose re-plan is strictly cheaper, using the same epoch-safe
  /// stream-handover machinery as failure recovery: the old wiring is
  /// parked (shared segments keep flowing for their consumers), the query
  /// is re-planned under epoch-safe reuse post-park, rebuilt in resume
  /// mode onto its existing sink, and orphaned streams are
  /// garbage-collected. `max_migrations` bounds the number of queries
  /// moved per pass (< 0: unbounded). Call between feeds — the handover
  /// is epoch-safe at feed boundaries, exactly like recovery.
  Result<ReoptimizeReport> Reoptimize(int max_migrations = -1);

  /// Deregisters a continuous query: detaches its operator chains from the
  /// shared streams, retires the streams it registered, and releases the
  /// bandwidth and load its plan committed. Fails with kInvalidArgument
  /// when another active subscription still consumes one of the query's
  /// streams (deregister the consumers first), or when the query's plan
  /// widened a stream (widening is irreversible while consumers may rely
  /// on the widened content).
  Status UnregisterQuery(int query_id);

  /// Refcounted deregistration: the query leaves immediately, but a shared
  /// stream it registered keeps flowing while other subscriptions still
  /// consume it — only the query's private tail is cut. Once the last
  /// consumer of such a stream leaves, the stream and its whole deferred
  /// chain are garbage-collected (cascading up the reuse chain) and the
  /// resources released. Unlike UnregisterQuery this never refuses for
  /// live consumers; it still refuses for queries that widened a stream
  /// (widening is irreversible).
  Status Unsubscribe(int query_id);

  /// Declares a super-peer dead (operator intervention, or promotion of a
  /// transport liveness verdict): marks it dead in the health view, cuts
  /// its incident links, and recovers every subscription that transitively
  /// depended on it — orphaned queries are re-planned against the
  /// surviving topology under epoch-safe reuse, with windowed residual
  /// operators rebuilt in resume mode so each recovered query resumes at
  /// the next window boundary (gap-not-garbage); queries with no surviving
  /// plan, and queries registered AT the dead peer, are torn down. Shared
  /// streams whose last consumer left are garbage-collected. Idempotent
  /// per peer (failing a dead peer is an error).
  Result<recover::RecoveryReport> FailPeer(network::NodeId peer);
  Result<recover::RecoveryReport> FailPeer(const std::string& peer_name);

  /// Severs one link (both peers stay alive) and recovers every
  /// subscription whose plan routed over it, with the same semantics as
  /// FailPeer. Cutting a link that is already down is an error.
  Result<recover::RecoveryReport> CutLink(network::NodeId a,
                                          network::NodeId b);

  /// Reports of every FailPeer / CutLink event, in order.
  const std::vector<recover::RecoveryReport>& recovery_reports() const {
    return recovery_reports_;
  }

  /// True while the query is deployed (false after UnregisterQuery or for
  /// rejected registrations).
  bool IsActive(int query_id) const;

  /// NotFound with a message naming why `query_id` is not an active
  /// subscription — never registered, rejected at admission, or already
  /// removed — or Ok while it is deployed. UnregisterQuery and
  /// Unsubscribe both gate on this, so a double-unsubscribe is NotFound
  /// everywhere, not whatever the registry walk happens to hit.
  Status CheckActiveSubscription(int query_id) const;

  /// Single-shot run: feeds items of the named original streams through
  /// the deployed network (round-robin across streams), then signals end
  /// of stream — window operators flush their partial windows. Use
  /// Feed/Shutdown instead for continuous operation across multiple
  /// batches.
  Status Run(const std::map<std::string, std::vector<engine::ItemPtr>>&
                 items_by_stream);

  /// Single-shot serial run fed straight from pre-built record batches
  /// (PhotonGenerator::GenerateBatches or a decoder) — the end-to-end
  /// compact path that never builds a source DOM. Batches are consumed
  /// in place (their lazy materialization caches may fill). Serial
  /// executor only.
  Status RunBatches(
      std::map<std::string, std::vector<engine::ItemBatch>>*
          batches_by_stream);

  /// Single-shot run on the peer-partitioned parallel executor (one
  /// worker thread per super-peer partition, bounded queues on the peer
  /// boundaries), regardless of the configured ExecutorKind. Results and
  /// merged metrics match a serial Run of the same items.
  Status RunParallel(
      const std::map<std::string, std::vector<engine::ItemPtr>>&
          items_by_stream);

  /// Per-worker queue/blocking stats of the most recent parallel run
  /// (empty if no parallel run happened yet).
  const std::vector<engine::ParallelWorkerStats>& parallel_stats() const {
    return parallel_stats_;
  }

  /// Single-shot run over the configured transport (config.transport,
  /// config.transport_processes): the partitioned operator network
  /// exchanges encoded items through flow-controlled channels,
  /// optionally with every worker in its own OS process. Results and
  /// merged metrics match a serial Run of the same items.
  Status RunTransport(
      const std::map<std::string, std::vector<engine::ItemPtr>>&
          items_by_stream);

  /// Traffic measured by the most recent RunTransport (bytes-on-wire per
  /// channel, encoded bytes per cross edge, credit stalls). Empty
  /// transport name if no transport run happened yet.
  const transport::TransportRunStats& transport_stats() const {
    return transport_stats_;
  }

  /// Continuous operation: feeds a batch without signalling end of
  /// stream. Subscriptions may be registered and deregistered between
  /// batches; window state carries across.
  Status Feed(const std::map<std::string, std::vector<engine::ItemPtr>>&
                  items_by_stream);

  /// Ends all streams: flushes buffered window state to every active
  /// subscription. One-shot; after shutdown no further Feed is
  /// meaningful.
  Status Shutdown();

  const network::Topology& topology() const { return topology_; }
  const network::NetworkState& state() const { return state_; }
  const network::StreamRegistry& registry() const { return registry_; }
  /// The candidate index, or nullptr when config.candidate_index=false.
  const CandidateIndex* candidate_index() const {
    return candidate_index_.get();
  }
  const engine::Metrics& metrics() const { return metrics_; }
  const cost::CostModel& cost_model() const { return *cost_model_; }
  const std::vector<RegistrationResult>& registrations() const {
    return registrations_;
  }

  int accepted_count() const;
  int rejected_count() const;

  /// Human-readable snapshot of the deployment: every stream flowing in
  /// the network (content, route, rate, consumers) and every active
  /// subscription.
  std::string DescribeDeployment() const;

  /// Folds the system's own measurements into named registry series:
  /// engine.link.<a>-<b>.bytes and engine.peer.<name>.{work,items} from
  /// the deployment's Metrics, engine.worker.<i>.* from the most recent
  /// parallel run, network.{link,peer}.<...>.utilization gauges from
  /// the committed plan usage, and — after a RunTransport —
  /// transport.link.<a>-<b>.{encoded_bytes,predicted_kbps} gauges that
  /// put measured bytes-on-wire next to the cost model's committed
  /// bandwidth u_b(e). Call before exporting a snapshot.
  void ExportMetrics(obs::MetricsRegistry* registry) const;

 private:
  /// How one registered query is wired into the engine (for later
  /// deregistration and failure recovery).
  struct QueryDeployment {
    struct InputWiring {
      engine::Operator* tap = nullptr;    // shared stream's tap operator
      engine::Operator* first = nullptr;  // head of the private chain
      network::StreamId registered_stream = -1;  // -1 if none registered
      network::StreamId reused_stream = -1;
      /// Last operator of the segment that produces registered_stream
      /// (the stream's final tap); everything attached after it is
      /// private to this query.
      engine::Operator* stream_tail = nullptr;
      /// First operator attached after stream_tail (a vq-side residual op
      /// or the query's terminal stage).
      engine::Operator* private_head = nullptr;
      /// Every operator this wiring created, in wire order; window
      /// operators among them are what recovery counts as lost.
      std::vector<engine::Operator*> private_ops;
      /// Index into private_ops where the private tail begins (ops before
      /// it produce registered_stream and may outlive the query).
      size_t tail_boundary = 0;
      bool tail_cut = false;       // private tail detached (deferred GC)
      bool tail_counted = false;   // tail's lost windows already tallied
    };
    std::vector<InputWiring> inputs;
    /// The analyzed query this deployment evaluates (recovery re-plans
    /// from it). Null for rejected placeholders.
    std::shared_ptr<const wxquery::AnalyzedQuery> query;
    bool active = false;
    bool widened_a_stream = false;
  };

  /// A dismantled-but-deferred wiring: its registered stream still has
  /// consumers, so the shared segment keeps flowing after the owning
  /// query left. Carries the resource deltas of the plan input that
  /// deployed it, released when the wiring finally goes.
  struct ParkedWiring {
    int query_id = -1;
    QueryDeployment::InputWiring wiring;
    std::vector<std::pair<network::LinkId, double>> added_bandwidth_kbps;
    std::vector<std::pair<network::NodeId, double>> added_load;
  };

  /// Per-batch caches shared across the registrations of one
  /// SubscribeBatch call (see BatchStats).
  struct BatchContext {
    std::map<std::string, std::shared_ptr<const wxquery::AnalyzedQuery>,
             std::less<>>
        analyzed;
    struct PlanMemo {
      EvaluationPlan plan;
      SearchStats search;
      /// plan_epoch_ at memo time; a mismatch means planner-visible state
      /// changed and the memo entry is dead.
      uint64_t epoch = 0;
    };
    std::map<std::tuple<std::string, network::NodeId, int>, PlanMemo> plans;
    BatchStats stats;
  };

  /// RegisterQuery body; `batch` (may be null) carries the intra-batch
  /// caches of SubscribeBatch.
  Result<RegistrationResult> RegisterQueryImpl(std::string_view query_text,
                                               network::NodeId vq,
                                               Strategy strategy,
                                               BatchContext* batch);

  Status DeployPlan(const EvaluationPlan& plan,
                    std::shared_ptr<const wxquery::AnalyzedQuery> query,
                    network::NodeId vq, Strategy strategy,
                    RegistrationResult* result);
  /// Builds the terminal stage + input chains of `plan` and attaches them
  /// to `sink` (created fresh when null, reused across a recovery
  /// re-plan otherwise). With `resume` true, window operators anchor at
  /// the next window boundary at or after their first item. Fills
  /// `deployment` (not pushed — caller decides whether this is a new
  /// deployment or replaces an existing one's wiring).
  Status BuildDeployment(const EvaluationPlan& plan,
                         std::shared_ptr<const wxquery::AnalyzedQuery> query,
                         network::NodeId vq, Strategy strategy, int query_id,
                         bool resume, engine::SinkOp** sink,
                         QueryDeployment* deployment);
  /// Wires one input's operator chain from its tap point to the query's
  /// terminal stage (restructuring, or a combination port).
  Status WireInput(const InputPlan& input,
                   std::shared_ptr<const wxquery::AnalyzedQuery> query,
                   network::NodeId vq, Strategy strategy, int query_id,
                   bool resume, engine::Operator* terminal,
                   QueryDeployment::InputWiring* wiring);

  /// Detaches a wiring from the operator network if nothing else consumes
  /// its registered stream (retiring the stream, releasing the parked
  /// resources, dropping the consumer ref on the reused stream); otherwise
  /// cuts only the private tail. Returns true when fully dismantled.
  /// `lost_windows`, when non-null, accumulates open windows destroyed.
  bool TryDismantle(ParkedWiring* parked, uint64_t* lost_windows);
  /// Moves every wiring of `deployment` into parked_ (dismantling the
  /// ones nothing depends on), releasing resources per the plan inputs in
  /// `plan`. The deployment's wiring list is cleared.
  void ParkWirings(int query_id, QueryDeployment* deployment,
                   const EvaluationPlan& plan, uint64_t* lost_windows);
  /// Fixed point over parked_: dismantles every parked wiring whose
  /// registered stream lost its last consumer; cascades up reuse chains.
  uint64_t GcStreams();
  /// Shared implementation of FailPeer / CutLink: after the health view
  /// has been mutated, severs dead streams, classifies and recovers
  /// affected queries, GCs, snapshots sinks, and records the report.
  Result<recover::RecoveryReport> RecoverAfter(std::string trigger);
  /// Route crosses a dead peer or a down link (the stream stopped
  /// flowing), or its upstream chain does.
  bool StreamSevered(network::StreamId id,
                     const std::vector<bool>& severed) const;
  /// config_.parallel with adopt_records gated on config_.record_path
  /// (the master switch wins over the per-executor knob).
  engine::ParallelOptions EffectiveParallelOptions() const;
  /// Shared body of RunTransport and transport-mode Feed.
  Status RunTransportImpl(
      const std::vector<engine::Operator*>& entries,
      const std::vector<std::vector<engine::ItemPtr>>& item_lists,
      bool finish);

  network::Topology topology_;
  SystemConfig config_;
  network::NetworkState state_;
  network::StreamRegistry registry_;
  cost::StatisticsRegistry statistics_;
  std::unique_ptr<cost::CostModel> cost_model_;
  /// Incrementally maintained candidate lookup (null when disabled); it
  /// listens on registry_ mutations and is consulted by every planner.
  std::unique_ptr<CandidateIndex> candidate_index_;
  std::unique_ptr<Planner> planner_;
  std::unique_ptr<network::SubnetPartition> partition_;
  std::unique_ptr<HierarchicalPlanner> hierarchical_planner_;
  engine::OperatorGraph graph_;
  engine::Metrics metrics_;
  /// Engine-side footprint of a registered stream: its tap operators
  /// (taps[i] materializes the stream at route node i) and, for widenable
  /// streams, the reconfigurable producer operators.
  struct DeployedStream {
    std::vector<engine::Operator*> taps;
    engine::SelectOp* select = nullptr;
    engine::ProjectOp* project = nullptr;
  };
  std::map<network::StreamId, DeployedStream> taps_;
  /// Entry operator per original stream name (fed by Run()).
  std::map<std::string, engine::Operator*> stream_entries_;
  std::vector<std::shared_ptr<const wxquery::AnalyzedQuery>> queries_;
  std::vector<RegistrationResult> registrations_;
  /// Indexed by query id (one entry per registration, rejected included).
  std::vector<QueryDeployment> deployments_;
  /// Wirings of departed queries whose registered streams still feed
  /// other subscriptions (see ParkedWiring).
  std::vector<ParkedWiring> parked_;
  std::vector<recover::RecoveryReport> recovery_reports_;
  std::vector<engine::ParallelWorkerStats> parallel_stats_;
  transport::TransportRunStats transport_stats_;
  /// Bumped whenever planner-visible state changes (deployments, GC,
  /// recovery, re-optimization); guards SubscribeBatch's plan memo.
  uint64_t plan_epoch_ = 0;
};

}  // namespace streamshare::sharing

#endif  // STREAMSHARE_SHARING_SYSTEM_H_
