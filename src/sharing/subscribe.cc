#include "sharing/subscribe.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "obs/trace.h"
#include "properties/signature.h"
#include "sharing/candidate_index.h"

namespace streamshare::sharing {

using network::NodeId;
using network::RegisteredStream;
using properties::AggregationOp;
using properties::InputStreamProperties;
using wxquery::AnalyzedQuery;
using wxquery::StreamBinding;

namespace {

/// Reuse of the stream leaves no window state behind the recovery point:
/// plain σ/Π streams are item-by-item, but aggregate and window-contents
/// streams carry windows possibly straddling an epoch boundary.
bool EpochSafeReuse(const RegisteredStream& stream) {
  for (const properties::Operator& op : stream.props.operators) {
    switch (properties::KindOf(op)) {
      case properties::OperatorKind::kAggregation:
      case properties::OperatorKind::kUserDefined:
        return false;
      case properties::OperatorKind::kSelection:
      case properties::OperatorKind::kProjection:
        break;
    }
  }
  return true;
}

}  // namespace

Result<std::vector<NodeId>> Planner::RoutePath(NodeId from,
                                               NodeId to) const {
  const network::PeerHealth& health = state_->health();
  if (health.AllHealthy()) return topology_->ShortestPath(from, to);
  return topology_->ShortestPath(
      from, to,
      [&health](NodeId node) { return health.RoutesThrough(node); },
      [&health](network::LinkId link) { return health.LinkUp(link); });
}

bool Planner::StreamUsable(const RegisteredStream& stream) const {
  const network::PeerHealth& health = state_->health();
  if (health.AllHealthy()) return true;
  for (NodeId node : stream.route) {
    if (!health.RoutesThrough(node)) return false;
  }
  Result<std::vector<network::LinkId>> links =
      topology_->LinksOnPath(stream.route);
  if (!links.ok()) return false;
  for (network::LinkId link : *links) {
    if (!health.LinkUp(link)) return false;
  }
  return true;
}

bool Planner::PropsEquivalent(const InputStreamProperties& a,
                              const InputStreamProperties& b) const {
  matching::MatchOptions complete;
  complete.edge_local_predicates = false;
  return matching::MatchProperties(a, b, complete) &&
         matching::MatchProperties(b, a, complete);
}

Result<std::vector<EngineOpSpec>> Planner::ResidualOps(
    const RegisteredStream& reused, const StreamBinding& binding,
    NodeId node, bool reused_is_equivalent) const {
  std::vector<EngineOpSpec> ops;
  if (reused_is_equivalent) return ops;  // content already exact

  if (binding.aggregate.has_value()) {
    const AggregationOp* reused_agg = reused.props.aggregation();
    if (reused_agg != nullptr) {
      // Reusing an existing aggregate stream: recombine windows if they
      // differ (Fig. 5), re-filter if the subscription filters harder.
      if (reused_agg->window != *binding.window) {
        EngineOpSpec combine;
        combine.kind = EngineOpSpec::Kind::kAggCombine;
        combine.node = node;
        combine.func = binding.aggregate->func;
        combine.fine_window = reused_agg->window;
        combine.window = *binding.window;
        ops.push_back(std::move(combine));
      }
      if (!binding.result_filter.empty() &&
          reused_agg->result_filter != binding.result_filter) {
        EngineOpSpec filter;
        filter.kind = EngineOpSpec::Kind::kAggFilter;
        filter.node = node;
        filter.func = binding.aggregate->func;
        filter.predicates = binding.result_filter;
        ops.push_back(std::move(filter));
      }
      return ops;
    }
    // Reusing a plain (original or filtered/projected) stream: the full
    // aggregation chain runs at the reuse node.
    if (!binding.item_predicates.empty()) {
      EngineOpSpec select;
      select.kind = EngineOpSpec::Kind::kSelect;
      select.node = node;
      select.predicates = binding.item_predicates;
      ops.push_back(std::move(select));
    }
    EngineOpSpec agg;
    agg.kind = EngineOpSpec::Kind::kWindowAgg;
    agg.node = node;
    agg.func = binding.aggregate->func;
    agg.aggregated_element = binding.aggregate->path;
    agg.window = *binding.window;
    ops.push_back(std::move(agg));
    if (!binding.result_filter.empty()) {
      EngineOpSpec filter;
      filter.kind = EngineOpSpec::Kind::kAggFilter;
      filter.node = node;
      filter.func = binding.aggregate->func;
      filter.predicates = binding.result_filter;
      ops.push_back(std::move(filter));
    }
    return ops;
  }

  if (binding.window.has_value()) {
    // Window-contents query: the shared stream carries whole windows.
    // From a window-contents stream only identical content is reusable
    // (filtering inside materialized windows would change neither window
    // boundaries nor membership consistently), so any non-equivalent
    // window stream is unplannable — Subscribe skips such candidates.
    for (const properties::Operator& op : reused.props.operators) {
      if (std::holds_alternative<properties::UserDefinedOp>(op)) {
        return Status::Unsupported(
            "window-contents streams are reusable only when identical");
      }
    }
    if (!binding.item_predicates.empty()) {
      EngineOpSpec select;
      select.kind = EngineOpSpec::Kind::kSelect;
      select.node = node;
      select.predicates = binding.item_predicates;
      ops.push_back(std::move(select));
    }
    if (!binding.returns_whole_item) {
      EngineOpSpec project;
      project.kind = EngineOpSpec::Kind::kProject;
      project.node = node;
      project.output_paths = binding.referenced_paths;
      ops.push_back(std::move(project));
    }
    EngineOpSpec contents;
    contents.kind = EngineOpSpec::Kind::kWindowContents;
    contents.node = node;
    contents.window = *binding.window;
    ops.push_back(std::move(contents));
    return ops;
  }

  // Plain selection/projection query.
  if (!binding.item_predicates.empty()) {
    EngineOpSpec select;
    select.kind = EngineOpSpec::Kind::kSelect;
    select.node = node;
    select.predicates = binding.item_predicates;
    ops.push_back(std::move(select));
  }
  if (!binding.returns_whole_item) {
    EngineOpSpec project;
    project.kind = EngineOpSpec::Kind::kProject;
    project.node = node;
    project.output_paths = binding.referenced_paths;
    ops.push_back(std::move(project));
  }
  return ops;
}

Status Planner::CostPlan(InputPlan* plan, const StreamBinding& binding,
                         const RegisteredStream& reused,
                         NodeId vq, int shape, PlanMemo* memo) const {
  const cost::CostParams& params = cost_model_->params();

  cost::StreamEstimate est_reused;
  if (memo != nullptr && shape >= 0) {
    auto it = memo->reused_estimates.find(shape);
    if (it == memo->reused_estimates.end()) {
      it = memo->reused_estimates
               .emplace(shape, cost_model_->EstimateStream(reused.props))
               .first;
    }
    SS_RETURN_IF_ERROR(it->second.status());
    est_reused = *it->second;
  } else {
    SS_ASSIGN_OR_RETURN(est_reused,
                        cost_model_->EstimateStream(reused.props));
  }

  // Rate and final frequency of the stream this plan materializes. On the
  // memoized path the new stream always carries sub_props (BuildPlan sets
  // it so, and the raw-shipping initial plan never passes a memo).
  cost::StreamEstimate est_final = est_reused;
  if (plan->new_stream.has_value()) {
    if (memo != nullptr) {
      if (!memo->sub_estimate.has_value()) {
        memo->sub_estimate =
            cost_model_->EstimateStream(plan->new_stream->props);
      }
      SS_RETURN_IF_ERROR(memo->sub_estimate->status());
      est_final = **memo->sub_estimate;
    } else {
      SS_ASSIGN_OR_RETURN(
          est_final, cost_model_->EstimateStream(plan->new_stream->props));
    }
    plan->new_stream->rate_kbps =
        plan->ships_raw_stream ? est_reused.RateKbps()
                               : est_final.RateKbps();
  }

  // Per-peer load added by the plan's operators, tracking the running
  // input frequency along the chain. The accumulated selectivity feeds
  // the time-window math: selection thins items but stretches the
  // survivor increment, leaving the window-update frequency invariant.
  // On the memoized path the accumulator is a flat scratch array reset
  // between plans; it is drained in ascending node order, so sums are
  // bit-identical to the std::map the unmemoized path keeps.
  std::map<NodeId, double> load_by_peer;
  const bool use_scratch = memo != nullptr;
  if (use_scratch) {
    if (memo->load_scratch.size() < topology_->peer_count()) {
      memo->load_scratch.assign(topology_->peer_count(), 0.0);
      memo->load_mark.assign(topology_->peer_count(), 0);
    }
    memo->touched_peers.clear();
  }
  auto add_load = [&](NodeId peer, double amount) {
    if (use_scratch) {
      if (memo->load_mark[peer] == 0) {
        memo->load_mark[peer] = 1;
        memo->load_scratch[peer] = 0.0;
        memo->touched_peers.push_back(peer);
      }
      memo->load_scratch[peer] += amount;
    } else {
      load_by_peer[peer] += amount;
    }
  };

  // Memoized plans carry an empty ops vector and are scored against
  // their shape's ops template; a template op's node of -1 stands for
  // the plan's reuse node.
  const std::vector<EngineOpSpec>* ops = &plan->ops;
  if (memo != nullptr && shape >= 0) {
    auto it = memo->ops_template.find(shape);
    if (it != memo->ops_template.end() && it->second.ok()) {
      ops = &*it->second;
    }
  }
  double freq = est_reused.frequency_hz;
  double selectivity_so_far = 1.0;
  for (const EngineOpSpec& op : *ops) {
    double input_freq = freq;
    switch (op.kind) {
      case EngineOpSpec::Kind::kSelect: {
        // Plan generation emits kSelect only over binding.item_predicates
        // (residual and compensation alike), so the memo holds one value.
        double selectivity;
        if (memo != nullptr) {
          if (!memo->select_selectivity.has_value()) {
            predicate::PredicateGraph graph =
                predicate::PredicateGraph::Build(op.predicates);
            memo->select_selectivity =
                cost_model_->SelectivityFor(binding.stream_name, graph);
          }
          SS_RETURN_IF_ERROR(memo->select_selectivity->status());
          selectivity = **memo->select_selectivity;
        } else {
          predicate::PredicateGraph graph =
              predicate::PredicateGraph::Build(op.predicates);
          SS_ASSIGN_OR_RETURN(
              selectivity,
              cost_model_->SelectivityFor(binding.stream_name, graph));
        }
        freq *= selectivity;
        selectivity_so_far *= selectivity;
        break;
      }
      case EngineOpSpec::Kind::kProject:
        break;
      case EngineOpSpec::Kind::kWindowAgg: {
        // Plan generation installs only *binding.window here, so the memo
        // holds one divisor.
        double divisor;
        if (memo != nullptr) {
          if (!memo->window_divisor.has_value()) {
            memo->window_divisor = cost_model_->WindowUpdateDivisor(
                binding.stream_name, op.window);
          }
          SS_RETURN_IF_ERROR(memo->window_divisor->status());
          divisor = **memo->window_divisor;
        } else {
          SS_ASSIGN_OR_RETURN(divisor,
                              cost_model_->WindowUpdateDivisor(
                                  binding.stream_name, op.window));
        }
        if (op.window.type == properties::WindowType::kDiff) {
          divisor *= selectivity_so_far;
        }
        freq /= std::max(1e-9, divisor);
        break;
      }
      case EngineOpSpec::Kind::kAggCombine:
        freq *= op.fine_window.step.ToDouble() /
                std::max(1e-9, op.window.step.ToDouble());
        break;
      case EngineOpSpec::Kind::kAggFilter:
        break;
      case EngineOpSpec::Kind::kWindowContents: {
        double divisor;
        if (memo != nullptr) {
          if (!memo->window_divisor.has_value()) {
            memo->window_divisor = cost_model_->WindowUpdateDivisor(
                binding.stream_name, op.window);
          }
          SS_RETURN_IF_ERROR(memo->window_divisor->status());
          divisor = **memo->window_divisor;
        } else {
          SS_ASSIGN_OR_RETURN(divisor,
                              cost_model_->WindowUpdateDivisor(
                                  binding.stream_name, op.window));
        }
        if (op.window.type == properties::WindowType::kDiff) {
          divisor *= selectivity_so_far;
        }
        freq /= std::max(1e-9, divisor);
        break;
      }
    }
    NodeId op_node = op.node < 0 ? plan->reuse_node : op.node;
    double pindex = topology_->peer(op_node).pindex;
    add_load(op_node, BaseLoadFor(op.kind, params) * pindex * input_freq);
  }

  // The restructuring step always runs at the query's super-peer.
  add_load(vq, params.bload_restructure * topology_->peer(vq).pindex *
                   est_final.frequency_hz);

  // Transport: forwarding work at each sending peer, bandwidth per link.
  std::vector<cost::ResourceUsage> connection_usage;

  // A widening plan additionally pays the rate delta of the widened
  // stream on its whole existing route.
  if (plan->widening.has_value()) {
    const WideningSpec& widening = *plan->widening;
    const network::RegisteredStream& target =
        registry_->stream(widening.stream);
    double delta_rate =
        std::max(0.0, widening.new_rate_kbps - widening.old_rate_kbps);
    double delta_freq =
        std::max(0.0, widening.new_freq_hz - widening.old_freq_hz);
    SS_ASSIGN_OR_RETURN(std::vector<network::LinkId> links,
                        topology_->LinksOnPath(target.route));
    for (size_t i = 0; i < links.size(); ++i) {
      NodeId sender = target.route[i];
      add_load(sender, params.bload_transport *
                           topology_->peer(sender).pindex * delta_freq);
      double capacity = topology_->link(links[i]).bandwidth_kbps;
      cost::ResourceUsage usage;
      usage.added = capacity > 0.0 ? delta_rate / capacity : 0.0;
      usage.available = state_->AvailableBandwidth(links[i]);
      connection_usage.push_back(usage);
      plan->added_bandwidth_kbps.emplace_back(links[i], delta_rate);
    }
  }
  if (plan->new_stream.has_value()) {
    const NewStreamSpec& stream = *plan->new_stream;
    double flow_freq = plan->ships_raw_stream ? est_reused.frequency_hz
                                              : est_final.frequency_hz;
    std::vector<network::LinkId> links;
    if (memo != nullptr) {
      // The route is a pure function of its source node within one search.
      auto it = memo->route_links.find(stream.source_node);
      if (it == memo->route_links.end()) {
        it = memo->route_links
                 .emplace(stream.source_node,
                          topology_->LinksOnPath(stream.route))
                 .first;
      }
      SS_RETURN_IF_ERROR(it->second.status());
      links = *it->second;
    } else {
      SS_ASSIGN_OR_RETURN(links, topology_->LinksOnPath(stream.route));
    }
    for (size_t i = 0; i < links.size(); ++i) {
      NodeId sender = stream.route[i];
      add_load(sender, params.bload_transport *
                           topology_->peer(sender).pindex * flow_freq);
      double capacity = topology_->link(links[i]).bandwidth_kbps;
      cost::ResourceUsage usage;
      usage.added = capacity > 0.0 ? stream.rate_kbps / capacity : 0.0;
      usage.available = state_->AvailableBandwidth(links[i]);
      connection_usage.push_back(usage);
      // Memoized plans are scored, not deployed — the search regenerates
      // the winner in full, so resource bookkeeping is skipped here.
      if (memo == nullptr) {
        plan->added_bandwidth_kbps.emplace_back(links[i],
                                                stream.rate_kbps);
      }
    }
  }

  std::vector<cost::ResourceUsage> peer_usage;
  auto usage_for = [&](NodeId peer, double load) {
    double capacity = topology_->peer(peer).max_load;
    cost::ResourceUsage usage;
    usage.added = capacity > 0.0 ? load / capacity : 0.0;
    usage.available = state_->AvailableLoad(peer);
    peer_usage.push_back(usage);
    if (memo == nullptr) plan->added_load.emplace_back(peer, load);
  };
  if (use_scratch) {
    std::sort(memo->touched_peers.begin(), memo->touched_peers.end());
    for (NodeId peer : memo->touched_peers) {
      usage_for(peer, memo->load_scratch[peer]);
      memo->load_mark[peer] = 0;
    }
  } else {
    for (const auto& [peer, load] : load_by_peer) usage_for(peer, load);
  }

  plan->feasible = true;
  for (const cost::ResourceUsage& usage : connection_usage) {
    if (usage.added > usage.available + 1e-9) plan->feasible = false;
  }
  for (const cost::ResourceUsage& usage : peer_usage) {
    if (usage.added > usage.available + 1e-9) plan->feasible = false;
  }

  // End-to-end delivery latency: source → reused stream's first node →
  // tap node → query super-peer.
  {
    double latency = reused.source_latency_ms;
    auto tap_it = std::find(reused.route.begin(), reused.route.end(),
                            plan->reuse_node);
    if (tap_it != reused.route.end()) {
      std::vector<NodeId> prefix(reused.route.begin(), tap_it + 1);
      SS_ASSIGN_OR_RETURN(double prefix_latency,
                          topology_->PathLatencyMs(prefix));
      latency += prefix_latency;
    }
    if (plan->new_stream.has_value()) {
      double route_latency;
      if (memo != nullptr) {
        // On the memoized path the route is RoutePath(source_node, vq),
        // a pure function of its source node within one search.
        NodeId source = plan->new_stream->source_node;
        auto it = memo->route_latency.find(source);
        if (it == memo->route_latency.end()) {
          it = memo->route_latency
                   .emplace(source,
                            topology_->PathLatencyMs(
                                plan->new_stream->route))
                   .first;
        }
        SS_RETURN_IF_ERROR(it->second.status());
        route_latency = *it->second;
      } else {
        SS_ASSIGN_OR_RETURN(
            route_latency,
            topology_->PathLatencyMs(plan->new_stream->route));
      }
      latency += route_latency;
    }
    plan->estimated_latency_ms = latency;
  }

  plan->cost = cost::PlanCost(connection_usage, peer_usage, params.gamma) +
               params.latency_weight * plan->estimated_latency_ms;
  return Status::Ok();
}

Result<InputPlan> Planner::GenerateSharedPlan(
    const RegisteredStream& reused, NodeId v, NodeId vq,
    const StreamBinding& binding,
    const InputStreamProperties& sub_props, int shape,
    PlanMemo* memo) const {
  return BuildPlan(reused, v, vq, binding, sub_props, std::nullopt, shape,
                   memo);
}

Result<InputPlan> Planner::BuildPlan(
    const RegisteredStream& reused, NodeId v, NodeId vq,
    const StreamBinding& binding, const InputStreamProperties& sub_props,
    std::optional<WideningSpec> widening, int shape,
    PlanMemo* memo) const {
  InputPlan plan;
  plan.input_stream_name = binding.stream_name;
  plan.reused_stream = reused.id;
  plan.reuse_node = v;
  plan.widening = std::move(widening);

  bool equivalent;
  if (memo != nullptr && shape >= 0) {
    auto it = memo->equivalent.find(shape);
    if (it == memo->equivalent.end()) {
      it = memo->equivalent
               .emplace(shape, PropsEquivalent(reused.props, sub_props))
               .first;
    }
    equivalent = it->second;
  } else {
    equivalent = PropsEquivalent(reused.props, sub_props);
  }
  // Appends the compensation operators BuildPlan installs in front of
  // the restructuring step when widening is enabled (see below).
  auto append_compensation = [&](std::vector<EngineOpSpec>* ops) {
    if (!options_.enable_widening || binding.aggregate.has_value() ||
        binding.window.has_value()) {
      return;
    }
    if (!binding.item_predicates.empty()) {
      EngineOpSpec select;
      select.kind = EngineOpSpec::Kind::kSelect;
      select.node = vq;
      select.compensation = true;
      select.predicates = binding.item_predicates;
      ops->push_back(std::move(select));
    }
    if (!binding.returns_whole_item) {
      EngineOpSpec project;
      project.kind = EngineOpSpec::Kind::kProject;
      project.node = vq;
      project.compensation = true;
      project.output_paths = binding.referenced_paths;
      ops->push_back(std::move(project));
    }
  };

  if (memo != nullptr && shape >= 0) {
    // Memoized plans never materialize their operator chain: streams of
    // one shape share an ops template (tap node stored as -1, CostPlan
    // substitutes the reuse node), so per-candidate predicate and path
    // copies vanish from the hot loop. The winning plan is regenerated
    // in full by Subscribe once the search settles.
    auto it = memo->ops_template.find(shape);
    if (it == memo->ops_template.end()) {
      Result<std::vector<EngineOpSpec>> tmpl =
          ResidualOps(reused, binding, /*node=*/-1, equivalent);
      if (tmpl.ok()) append_compensation(&*tmpl);
      it = memo->ops_template.emplace(shape, std::move(tmpl)).first;
    }
    SS_RETURN_IF_ERROR(it->second.status());
  } else {
    // With widening enabled, every plain query re-enforces its own
    // predicates right before restructuring; upstream streams may then
    // be relaxed at any time without changing any subscriber's results.
    SS_ASSIGN_OR_RETURN(plan.ops,
                        ResidualOps(reused, binding, v, equivalent));
    append_compensation(&plan.ops);
  }

  if (!(equivalent && v == vq)) {
    NewStreamSpec stream;
    // Deep-copying sub_props per examined candidate is the single largest
    // constant in the BFS hot loop, and CostPlan's memoized path never
    // reads it — so memoized plans are built without it and the search
    // copies it into the one winning plan (Subscribe's patch step). The
    // memo's estimate of it is filled here, where sub_props is in scope.
    if (memo == nullptr) {
      stream.props = sub_props;
    } else if (!memo->sub_estimate.has_value()) {
      memo->sub_estimate = cost_model_->EstimateStream(sub_props);
    }
    stream.source_node = v;
    stream.target_node = vq;
    if (memo != nullptr) {
      auto it = memo->routes.find(v);
      if (it == memo->routes.end()) {
        it = memo->routes.emplace(v, RoutePath(v, vq)).first;
      }
      SS_RETURN_IF_ERROR(it->second.status());
      stream.route = *it->second;
    } else {
      SS_ASSIGN_OR_RETURN(stream.route, RoutePath(v, vq));
    }
    plan.new_stream = std::move(stream);
  }
  SS_RETURN_IF_ERROR(CostPlan(&plan, binding, reused, vq, shape, memo));
  return plan;
}

Result<InputPlan> Planner::GenerateWideningPlan(
    const RegisteredStream& narrow, NodeId v, NodeId vq,
    const StreamBinding& binding,
    const InputStreamProperties& sub_props) const {
  if (!options_.enable_widening) {
    return Status::Unsupported("stream widening is disabled");
  }
  if (narrow.IsOriginal() || narrow.upstream < 0) {
    return Status::Unsupported("original streams cannot be widened");
  }
  const properties::SelectionOp* narrow_selection = nullptr;
  const properties::ProjectionOp* narrow_projection = nullptr;
  for (const properties::Operator& op : narrow.props.operators) {
    switch (properties::KindOf(op)) {
      case properties::OperatorKind::kSelection:
        narrow_selection = &std::get<properties::SelectionOp>(op);
        break;
      case properties::OperatorKind::kProjection:
        narrow_projection = &std::get<properties::ProjectionOp>(op);
        break;
      case properties::OperatorKind::kAggregation:
      case properties::OperatorKind::kUserDefined:
        return Status::Unsupported(
            "aggregate and window streams are not widenable");
    }
  }

  WideningSpec spec;
  spec.stream = narrow.id;
  spec.widened_props.stream_name = narrow.props.stream_name;

  // Widened selection: the DBM join of the stream's and the
  // subscription's predicates — or no selection at all if the
  // subscription filters nothing.
  if (narrow_selection != nullptr) {
    if (!binding.item_predicates.empty()) {
      predicate::PredicateGraph sub_graph =
          predicate::PredicateGraph::Build(binding.item_predicates);
      if (!sub_graph.IsSatisfiable()) {
        return Status::Unsatisfiable("subscription predicates");
      }
      predicate::PredicateGraph widened_graph =
          predicate::PredicateGraph::UnionOf(narrow_selection->graph,
                                             sub_graph);
      spec.widened_selection = widened_graph.ToPredicates();
    }
    if (!spec.widened_selection.empty()) {
      SS_ASSIGN_OR_RETURN(
          properties::SelectionOp widened_sel,
          properties::SelectionOp::Create(spec.widened_selection));
      spec.widened_props.operators.emplace_back(std::move(widened_sel));
    }
  }

  // Widened projection: the union of kept paths; a whole-item consumer
  // widens the projection to the empty path (keep everything).
  if (narrow_projection != nullptr) {
    std::vector<xml::Path> merged = narrow_projection->output;
    if (binding.returns_whole_item) {
      merged = {xml::Path()};
    } else {
      for (const xml::Path& path : binding.referenced_paths) {
        merged.push_back(path);
      }
      // Prune paths covered by another (prefix subsumption).
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()),
                   merged.end());
      std::vector<xml::Path> pruned;
      for (const xml::Path& path : merged) {
        bool covered = false;
        for (const xml::Path& other : merged) {
          if (!(other == path) && other.IsPrefixOf(path)) {
            covered = true;
            break;
          }
        }
        if (!covered) pruned.push_back(path);
      }
      merged = std::move(pruned);
    }
    spec.widened_output = merged;
    properties::ProjectionOp widened_proj;
    widened_proj.output = merged;
    widened_proj.referenced = merged;
    spec.widened_props.operators.emplace_back(std::move(widened_proj));
  }

  // The widened stream must still be derivable from its upstream, and
  // must actually cover the subscription (sanity of the construction).
  matching::MatchOptions complete;
  complete.edge_local_predicates = false;
  const RegisteredStream& upstream = registry_->stream(narrow.upstream);
  if (!matching::MatchProperties(upstream.props, spec.widened_props,
                                 complete)) {
    return Status::Unsupported(
        "upstream stream no longer covers the widened content");
  }
  if (!matching::MatchProperties(spec.widened_props, sub_props,
                                 complete)) {
    return Status::Unsupported(
        "widening cannot make this stream cover the subscription");
  }

  SS_ASSIGN_OR_RETURN(cost::StreamEstimate old_estimate,
                      cost_model_->EstimateStream(narrow.props));
  SS_ASSIGN_OR_RETURN(cost::StreamEstimate new_estimate,
                      cost_model_->EstimateStream(spec.widened_props));
  spec.old_rate_kbps = old_estimate.RateKbps();
  spec.new_rate_kbps = new_estimate.RateKbps();
  spec.old_freq_hz = old_estimate.frequency_hz;
  spec.new_freq_hz = new_estimate.frequency_hz;

  // Plan against the stream as it will look after widening.
  RegisteredStream widened = narrow;
  widened.props = spec.widened_props;
  widened.rate_kbps = spec.new_rate_kbps;
  return BuildPlan(widened, v, vq, binding, sub_props, std::move(spec));
}

Result<EvaluationPlan> Planner::DataShipping(const AnalyzedQuery& query,
                                             NodeId vq) const {
  EvaluationPlan plan;
  for (size_t i = 0; i < query.bindings.size(); ++i) {
    const StreamBinding& binding = query.bindings[i];
    const RegisteredStream* original =
        registry_->FindOriginal(binding.stream_name);
    if (original == nullptr) {
      return Status::NotFound("query references unregistered stream '" +
                              binding.stream_name + "'");
    }
    if (original->retired ||
        state_->health().IsDead(original->source_node)) {
      return Status::Unavailable(
          "input stream '" + binding.stream_name + "' is lost: source " +
          topology_->peer(original->source_node).name + " failed");
    }
    InputPlan input;
    input.input_stream_name = binding.stream_name;
    input.reused_stream = original->id;
    input.reuse_node = original->source_node;
    input.ships_raw_stream = true;
    SS_ASSIGN_OR_RETURN(
        input.ops,
        ResidualOps(*original, binding, vq, /*reused_is_equivalent=*/false));
    NewStreamSpec stream;
    stream.props = original->props;  // the raw stream is what flows
    stream.source_node = original->source_node;
    stream.target_node = vq;
    SS_ASSIGN_OR_RETURN(stream.route,
                        RoutePath(stream.source_node, vq));
    input.new_stream = std::move(stream);
    SS_RETURN_IF_ERROR(CostPlan(&input, binding, *original, vq));
    plan.inputs.push_back(std::move(input));
  }
  return plan;
}

Result<EvaluationPlan> Planner::QueryShipping(const AnalyzedQuery& query,
                                              NodeId vq) const {
  EvaluationPlan plan;
  for (size_t i = 0; i < query.bindings.size(); ++i) {
    const StreamBinding& binding = query.bindings[i];
    const RegisteredStream* original =
        registry_->FindOriginal(binding.stream_name);
    if (original == nullptr) {
      return Status::NotFound("query references unregistered stream '" +
                              binding.stream_name + "'");
    }
    if (original->retired ||
        state_->health().IsDead(original->source_node)) {
      return Status::Unavailable(
          "input stream '" + binding.stream_name + "' is lost: source " +
          topology_->peer(original->source_node).name + " failed");
    }
    SS_ASSIGN_OR_RETURN(
        InputPlan input,
        GenerateSharedPlan(*original, original->source_node, vq, binding,
                           query.props.inputs()[i]));
    plan.inputs.push_back(std::move(input));
  }
  return plan;
}

Result<EvaluationPlan> Planner::Subscribe(
    const AnalyzedQuery& query, NodeId vq, SearchStats* stats,
    const std::set<NodeId>* allowed_nodes) const {
  auto allowed = [&](NodeId node) {
    return (allowed_nodes == nullptr || allowed_nodes->count(node) != 0) &&
           state_->health().RoutesThrough(node);
  };
  SearchStats local_stats;
  // Appends one candidate record and returns its index in `candidates`.
  auto record_candidate = [&local_stats](const StreamBinding& binding,
                                         const InputPlan& candidate,
                                         bool widening,
                                         bool baseline = false) {
    CandidatePlanInfo info;
    info.input_stream = binding.stream_name;
    info.reused_stream = candidate.reused_stream;
    info.reuse_node = candidate.reuse_node;
    info.cost = candidate.cost;
    info.feasible = candidate.feasible;
    info.widening = widening;
    info.baseline = baseline;
    local_stats.candidates.push_back(std::move(info));
    return local_stats.candidates.size() - 1;
  };
  EvaluationPlan plan;  // line 1: P ← ∅
  // Line 2: iterate over the subscription's input streams.
  for (size_t i = 0; i < query.bindings.size(); ++i) {
    const StreamBinding& binding = query.bindings[i];
    const InputStreamProperties& sub_props = query.props.inputs()[i];
    obs::TraceSpan input_span(&obs::TraceRecorder::Default(),
                              "Subscribe:" + binding.stream_name,
                              "sharing");
    const RegisteredStream* original =
        registry_->FindOriginal(binding.stream_name);
    if (original == nullptr) {
      return Status::NotFound("query references unregistered stream '" +
                              binding.stream_name + "'");
    }
    if (original->retired ||
        state_->health().IsDead(original->source_node)) {
      return Status::Unavailable(
          "input stream '" + binding.stream_name + "' is lost: source " +
          topology_->peer(original->source_node).name + " failed");
    }

    // Lines 3–6: initial plan — the original input stream routed to vq
    // via a shortest path, all evaluation at the target peer.
    NodeId vb = original->target_node;
    InputPlan best;
    {
      InputPlan initial;
      initial.input_stream_name = binding.stream_name;
      initial.reused_stream = original->id;
      initial.reuse_node = vb;
      initial.ships_raw_stream = true;
      SS_ASSIGN_OR_RETURN(initial.ops,
                          ResidualOps(*original, binding, vq,
                                      /*reused_is_equivalent=*/false));
      NewStreamSpec stream;
      stream.props = original->props;
      stream.source_node = vb;
      stream.target_node = vq;
      SS_ASSIGN_OR_RETURN(stream.route, RoutePath(vb, vq));
      initial.new_stream = std::move(stream);
      SS_RETURN_IF_ERROR(CostPlan(&initial, binding, *original, vq));
      best = std::move(initial);
      ++local_stats.plans_generated;
    }
    size_t best_candidate = record_candidate(binding, best,
                                             /*widening=*/false,
                                             /*baseline=*/true);
    // True while `best` was built through the memoized path, whose plans
    // defer the new stream's props copy until the search settles.
    bool best_needs_props = false;

    // A candidate replaces the incumbent if it is strictly better by C —
    // preferring feasible plans when configured (the overload test). Exact
    // ties break deterministically toward the lower stream id, then the
    // lower tap node, so the chosen plan is independent of examination
    // order — the property that keeps the indexed and flat search paths
    // bit-identical (ARCHITECTURE.md invariant 10).
    auto better = [&](const InputPlan& candidate, const InputPlan& incumbent) {
      if (options_.prefer_feasible &&
          candidate.feasible != incumbent.feasible) {
        return candidate.feasible;
      }
      if (candidate.cost != incumbent.cost) {
        return candidate.cost < incumbent.cost;
      }
      if (candidate.reused_stream != incumbent.reused_stream) {
        return candidate.reused_stream < incumbent.reused_stream;
      }
      return candidate.reuse_node < incumbent.reuse_node;
    };

    // Indexed lookup: the subscription-side probe is computed once per
    // input; widening needs non-matching candidates, and degraded health
    // needs per-stream usability checks, so dominance grouping is only
    // used when neither applies.
    const bool widening_active =
        options_.enable_widening && !options_.epoch_safe_only;
    const bool grouped_lookup =
        index_ != nullptr && state_->health().AllHealthy();
    properties::SubscriptionProbe probe;
    CandidateIndex::ProbeCache probe_cache;
    // Full-match verdicts per interned shape, valid for this input's whole
    // BFS: streams of one shape have structurally identical properties and
    // sub_props/match_options are fixed, so MatchProperties is a pure
    // function of the shape here. 0 = untested, 1 = matched, 2 = refuted.
    std::vector<int8_t> match_memo;
    // Shape-keyed memo for the pure parts of plan generation (stream
    // estimates, equivalence, residual selectivity, routes). Indexed path
    // only — the flat oracle keeps the unmemoized reference computation.
    PlanMemo plan_memo;
    if (index_ != nullptr) {
      probe = properties::ComputeSubscriptionProbe(sub_props);
      match_memo.assign(index_->shape_count(), 0);
    }
    // One candidate the BFS examines at a node: the stream plus the set
    // of route nodes it contributes to the frontier (its own route, or
    // its dominance group's route union on the indexed path), and its
    // interned shape id (-1 on the flat path).
    struct Candidate {
      const RegisteredStream* stream;
      const std::vector<NodeId>* frontier;  // nullptr → stream->route
      int shape = -1;
    };

    // Lines 7–25: breadth-first search from the input stream's node.
    // Marked/enqueued are flat per-node flags (node ids index the peer
    // table), so frontier probes are O(1) per route node.
    std::deque<NodeId> lv{vb};
    std::vector<char> marked(topology_->peer_count(), 0);
    std::vector<char> enqueued(topology_->peer_count(), 0);
    enqueued[vb] = 1;
    while (!lv.empty()) {
      NodeId v = lv.front();
      lv.pop_front();
      if (marked[v] != 0) continue;
      marked[v] = 1;
      ++local_stats.nodes_visited;

      std::vector<Candidate> candidates;
      if (index_ != nullptr) {
        CandidateIndex::LookupStats lookup;
        for (const CandidateIndex::Entry& entry : index_->Collect(
                 v, binding.stream_name, probe, options_.epoch_safe_only,
                 widening_active, grouped_lookup, &probe_cache, &lookup)) {
          candidates.push_back(
              Candidate{entry.stream, entry.frontier, entry.shape});
        }
        local_stats.candidates_pruned += lookup.pruned;
        local_stats.candidates_suppressed += lookup.suppressed;
      } else {
        for (const RegisteredStream* p :
             registry_->AvailableAt(v, binding.stream_name)) {
          candidates.push_back(Candidate{p, nullptr});
        }
      }
      for (const Candidate& c : candidates) {
        const RegisteredStream* p = c.stream;
        ++local_stats.candidates_examined;
        // A stream whose route crosses a dead peer or down link no
        // longer flows; under epoch-safe re-planning, windowed streams
        // are excluded from reuse entirely.
        if (!StreamUsable(*p)) continue;
        if (options_.epoch_safe_only && !EpochSafeReuse(*p)) continue;
        bool matched;
        if (c.shape >= 0 &&
            static_cast<size_t>(c.shape) < match_memo.size()) {
          int8_t& verdict = match_memo[c.shape];
          if (verdict == 0) {
            verdict = matching::MatchProperties(p->props, sub_props,
                                                options_.match_options)
                          ? 1
                          : 2;
          }
          matched = verdict == 1;
        } else {
          matched = matching::MatchProperties(p->props, sub_props,
                                              options_.match_options);
        }
        if (!matched) {
          // Non-matching streams do not extend the search — but with
          // widening enabled, a too-narrow stream may still be usable
          // after relaxing its operators (paper §6).
          if (options_.enable_widening && !options_.epoch_safe_only &&
              p->widenable) {
            Result<InputPlan> widened =
                GenerateWideningPlan(*p, v, vq, binding, sub_props);
            if (widened.ok()) {
              ++local_stats.plans_generated;
              size_t idx =
                  record_candidate(binding, *widened, /*widening=*/true);
              if (better(*widened, best)) {
                best = std::move(*widened);
                best_candidate = idx;
                best_needs_props = false;
              }
            } else if (!widened.status().IsUnsupported()) {
              return widened.status();
            }
          }
          continue;
        }
        ++local_stats.candidates_matched;
        // The stream is available along its whole route; explore it. An
        // indexed group entry contributes the union of its members'
        // routes, keeping the frontier identical to the flat walk.
        for (NodeId n : c.frontier != nullptr ? *c.frontier : p->route) {
          if (marked[n] == 0 && enqueued[n] == 0 && allowed(n)) {
            lv.push_back(n);
            enqueued[n] = 1;
          }
        }
        Result<InputPlan> candidate = GenerateSharedPlan(
            *p, v, vq, binding, sub_props, c.shape,
            index_ != nullptr ? &plan_memo : nullptr);
        if (!candidate.ok()) {
          // A matching stream can still be unplannable (e.g. a
          // non-identical window-contents stream); skip it.
          if (candidate.status().IsUnsupported()) continue;
          return candidate.status();
        }
        ++local_stats.plans_generated;
        size_t idx =
            record_candidate(binding, *candidate, /*widening=*/false);
        if (better(*candidate, best)) {
          best = std::move(*candidate);
          best_candidate = idx;
          best_needs_props = index_ != nullptr;
        }
      }

      if (!options_.prune_search) {
        // Ablation A1: unpruned BFS walks all topology neighbors too.
        for (NodeId n : topology_->Neighbors(v)) {
          if (marked[n] == 0 && enqueued[n] == 0 && allowed(n)) {
            lv.push_back(n);
            enqueued[n] = 1;
          }
        }
      }
    }
    // Memoized plans are score-only skeletons (no ops payloads, no
    // new-stream props, no resource bookkeeping). Regenerate the one
    // that won through the unmemoized path — every memoized value is a
    // pure function of the same inputs, so the regenerated plan carries
    // the identical cost the search compared.
    if (best_needs_props) {
      SS_ASSIGN_OR_RETURN(
          best, GenerateSharedPlan(registry_->stream(best.reused_stream),
                                   best.reuse_node, vq, binding,
                                   sub_props));
    }
    local_stats.candidates[best_candidate].chosen = true;
    if (input_span.active()) {
      input_span.AddArg(obs::TraceArg::Num("C(P)", best.cost));
      input_span.AddArg(obs::TraceArg::Num(
          "plans", static_cast<double>(local_stats.plans_generated)));
      input_span.AddArg(obs::TraceArg::Num(
          "nodes_visited",
          static_cast<double>(local_stats.nodes_visited)));
      input_span.AddArg(obs::TraceArg::Str(
          "reuse_node", "SP" + std::to_string(best.reuse_node)));
    }
    plan.inputs.push_back(std::move(best));
  }
  if (stats != nullptr) *stats = std::move(local_stats);
  return plan;
}

}  // namespace streamshare::sharing
