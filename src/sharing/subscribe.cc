#include "sharing/subscribe.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>

#include "obs/trace.h"

namespace streamshare::sharing {

using network::NodeId;
using network::RegisteredStream;
using properties::AggregationOp;
using properties::InputStreamProperties;
using wxquery::AnalyzedQuery;
using wxquery::StreamBinding;

namespace {

/// Reuse of the stream leaves no window state behind the recovery point:
/// plain σ/Π streams are item-by-item, but aggregate and window-contents
/// streams carry windows possibly straddling an epoch boundary.
bool EpochSafeReuse(const RegisteredStream& stream) {
  for (const properties::Operator& op : stream.props.operators) {
    switch (properties::KindOf(op)) {
      case properties::OperatorKind::kAggregation:
      case properties::OperatorKind::kUserDefined:
        return false;
      case properties::OperatorKind::kSelection:
      case properties::OperatorKind::kProjection:
        break;
    }
  }
  return true;
}

}  // namespace

Result<std::vector<NodeId>> Planner::RoutePath(NodeId from,
                                               NodeId to) const {
  const network::PeerHealth& health = state_->health();
  if (health.AllHealthy()) return topology_->ShortestPath(from, to);
  return topology_->ShortestPath(
      from, to,
      [&health](NodeId node) { return health.RoutesThrough(node); },
      [&health](network::LinkId link) { return health.LinkUp(link); });
}

bool Planner::StreamUsable(const RegisteredStream& stream) const {
  const network::PeerHealth& health = state_->health();
  if (health.AllHealthy()) return true;
  for (NodeId node : stream.route) {
    if (!health.RoutesThrough(node)) return false;
  }
  Result<std::vector<network::LinkId>> links =
      topology_->LinksOnPath(stream.route);
  if (!links.ok()) return false;
  for (network::LinkId link : *links) {
    if (!health.LinkUp(link)) return false;
  }
  return true;
}

bool Planner::PropsEquivalent(const InputStreamProperties& a,
                              const InputStreamProperties& b) const {
  matching::MatchOptions complete;
  complete.edge_local_predicates = false;
  return matching::MatchProperties(a, b, complete) &&
         matching::MatchProperties(b, a, complete);
}

Result<std::vector<EngineOpSpec>> Planner::ResidualOps(
    const RegisteredStream& reused, const StreamBinding& binding,
    NodeId node, bool reused_is_equivalent) const {
  std::vector<EngineOpSpec> ops;
  if (reused_is_equivalent) return ops;  // content already exact

  if (binding.aggregate.has_value()) {
    const AggregationOp* reused_agg = reused.props.aggregation();
    if (reused_agg != nullptr) {
      // Reusing an existing aggregate stream: recombine windows if they
      // differ (Fig. 5), re-filter if the subscription filters harder.
      if (reused_agg->window != *binding.window) {
        EngineOpSpec combine;
        combine.kind = EngineOpSpec::Kind::kAggCombine;
        combine.node = node;
        combine.func = binding.aggregate->func;
        combine.fine_window = reused_agg->window;
        combine.window = *binding.window;
        ops.push_back(std::move(combine));
      }
      if (!binding.result_filter.empty() &&
          reused_agg->result_filter != binding.result_filter) {
        EngineOpSpec filter;
        filter.kind = EngineOpSpec::Kind::kAggFilter;
        filter.node = node;
        filter.func = binding.aggregate->func;
        filter.predicates = binding.result_filter;
        ops.push_back(std::move(filter));
      }
      return ops;
    }
    // Reusing a plain (original or filtered/projected) stream: the full
    // aggregation chain runs at the reuse node.
    if (!binding.item_predicates.empty()) {
      EngineOpSpec select;
      select.kind = EngineOpSpec::Kind::kSelect;
      select.node = node;
      select.predicates = binding.item_predicates;
      ops.push_back(std::move(select));
    }
    EngineOpSpec agg;
    agg.kind = EngineOpSpec::Kind::kWindowAgg;
    agg.node = node;
    agg.func = binding.aggregate->func;
    agg.aggregated_element = binding.aggregate->path;
    agg.window = *binding.window;
    ops.push_back(std::move(agg));
    if (!binding.result_filter.empty()) {
      EngineOpSpec filter;
      filter.kind = EngineOpSpec::Kind::kAggFilter;
      filter.node = node;
      filter.func = binding.aggregate->func;
      filter.predicates = binding.result_filter;
      ops.push_back(std::move(filter));
    }
    return ops;
  }

  if (binding.window.has_value()) {
    // Window-contents query: the shared stream carries whole windows.
    // From a window-contents stream only identical content is reusable
    // (filtering inside materialized windows would change neither window
    // boundaries nor membership consistently), so any non-equivalent
    // window stream is unplannable — Subscribe skips such candidates.
    for (const properties::Operator& op : reused.props.operators) {
      if (std::holds_alternative<properties::UserDefinedOp>(op)) {
        return Status::Unsupported(
            "window-contents streams are reusable only when identical");
      }
    }
    if (!binding.item_predicates.empty()) {
      EngineOpSpec select;
      select.kind = EngineOpSpec::Kind::kSelect;
      select.node = node;
      select.predicates = binding.item_predicates;
      ops.push_back(std::move(select));
    }
    if (!binding.returns_whole_item) {
      EngineOpSpec project;
      project.kind = EngineOpSpec::Kind::kProject;
      project.node = node;
      project.output_paths = binding.referenced_paths;
      ops.push_back(std::move(project));
    }
    EngineOpSpec contents;
    contents.kind = EngineOpSpec::Kind::kWindowContents;
    contents.node = node;
    contents.window = *binding.window;
    ops.push_back(std::move(contents));
    return ops;
  }

  // Plain selection/projection query.
  if (!binding.item_predicates.empty()) {
    EngineOpSpec select;
    select.kind = EngineOpSpec::Kind::kSelect;
    select.node = node;
    select.predicates = binding.item_predicates;
    ops.push_back(std::move(select));
  }
  if (!binding.returns_whole_item) {
    EngineOpSpec project;
    project.kind = EngineOpSpec::Kind::kProject;
    project.node = node;
    project.output_paths = binding.referenced_paths;
    ops.push_back(std::move(project));
  }
  return ops;
}

Status Planner::CostPlan(InputPlan* plan, const StreamBinding& binding,
                         const RegisteredStream& reused,
                         NodeId vq) const {
  const cost::CostParams& params = cost_model_->params();

  SS_ASSIGN_OR_RETURN(cost::StreamEstimate est_reused,
                      cost_model_->EstimateStream(reused.props));

  // Rate and final frequency of the stream this plan materializes.
  cost::StreamEstimate est_final = est_reused;
  if (plan->new_stream.has_value()) {
    SS_ASSIGN_OR_RETURN(est_final,
                        cost_model_->EstimateStream(plan->new_stream->props));
    plan->new_stream->rate_kbps =
        plan->ships_raw_stream ? est_reused.RateKbps()
                               : est_final.RateKbps();
  }

  // Per-peer load added by the plan's operators, tracking the running
  // input frequency along the chain. The accumulated selectivity feeds
  // the time-window math: selection thins items but stretches the
  // survivor increment, leaving the window-update frequency invariant.
  std::map<NodeId, double> load_by_peer;
  double freq = est_reused.frequency_hz;
  double selectivity_so_far = 1.0;
  for (const EngineOpSpec& op : plan->ops) {
    double input_freq = freq;
    switch (op.kind) {
      case EngineOpSpec::Kind::kSelect: {
        predicate::PredicateGraph graph =
            predicate::PredicateGraph::Build(op.predicates);
        SS_ASSIGN_OR_RETURN(
            double selectivity,
            cost_model_->SelectivityFor(binding.stream_name, graph));
        freq *= selectivity;
        selectivity_so_far *= selectivity;
        break;
      }
      case EngineOpSpec::Kind::kProject:
        break;
      case EngineOpSpec::Kind::kWindowAgg: {
        SS_ASSIGN_OR_RETURN(double divisor,
                            cost_model_->WindowUpdateDivisor(
                                binding.stream_name, op.window));
        if (op.window.type == properties::WindowType::kDiff) {
          divisor *= selectivity_so_far;
        }
        freq /= std::max(1e-9, divisor);
        break;
      }
      case EngineOpSpec::Kind::kAggCombine:
        freq *= op.fine_window.step.ToDouble() /
                std::max(1e-9, op.window.step.ToDouble());
        break;
      case EngineOpSpec::Kind::kAggFilter:
        break;
      case EngineOpSpec::Kind::kWindowContents: {
        SS_ASSIGN_OR_RETURN(double divisor,
                            cost_model_->WindowUpdateDivisor(
                                binding.stream_name, op.window));
        if (op.window.type == properties::WindowType::kDiff) {
          divisor *= selectivity_so_far;
        }
        freq /= std::max(1e-9, divisor);
        break;
      }
    }
    double pindex = topology_->peer(op.node).pindex;
    load_by_peer[op.node] +=
        BaseLoadFor(op.kind, params) * pindex * input_freq;
  }

  // The restructuring step always runs at the query's super-peer.
  load_by_peer[vq] += params.bload_restructure *
                      topology_->peer(vq).pindex *
                      est_final.frequency_hz;

  // Transport: forwarding work at each sending peer, bandwidth per link.
  std::vector<cost::ResourceUsage> connection_usage;

  // A widening plan additionally pays the rate delta of the widened
  // stream on its whole existing route.
  if (plan->widening.has_value()) {
    const WideningSpec& widening = *plan->widening;
    const network::RegisteredStream& target =
        registry_->stream(widening.stream);
    double delta_rate =
        std::max(0.0, widening.new_rate_kbps - widening.old_rate_kbps);
    double delta_freq =
        std::max(0.0, widening.new_freq_hz - widening.old_freq_hz);
    SS_ASSIGN_OR_RETURN(std::vector<network::LinkId> links,
                        topology_->LinksOnPath(target.route));
    for (size_t i = 0; i < links.size(); ++i) {
      NodeId sender = target.route[i];
      load_by_peer[sender] += params.bload_transport *
                              topology_->peer(sender).pindex * delta_freq;
      double capacity = topology_->link(links[i]).bandwidth_kbps;
      cost::ResourceUsage usage;
      usage.added = capacity > 0.0 ? delta_rate / capacity : 0.0;
      usage.available = state_->AvailableBandwidth(links[i]);
      connection_usage.push_back(usage);
      plan->added_bandwidth_kbps.emplace_back(links[i], delta_rate);
    }
  }
  if (plan->new_stream.has_value()) {
    const NewStreamSpec& stream = *plan->new_stream;
    double flow_freq = plan->ships_raw_stream ? est_reused.frequency_hz
                                              : est_final.frequency_hz;
    SS_ASSIGN_OR_RETURN(std::vector<network::LinkId> links,
                        topology_->LinksOnPath(stream.route));
    for (size_t i = 0; i < links.size(); ++i) {
      NodeId sender = stream.route[i];
      load_by_peer[sender] += params.bload_transport *
                              topology_->peer(sender).pindex * flow_freq;
      double capacity = topology_->link(links[i]).bandwidth_kbps;
      cost::ResourceUsage usage;
      usage.added = capacity > 0.0 ? stream.rate_kbps / capacity : 0.0;
      usage.available = state_->AvailableBandwidth(links[i]);
      connection_usage.push_back(usage);
      plan->added_bandwidth_kbps.emplace_back(links[i], stream.rate_kbps);
    }
  }

  std::vector<cost::ResourceUsage> peer_usage;
  for (const auto& [peer, load] : load_by_peer) {
    double capacity = topology_->peer(peer).max_load;
    cost::ResourceUsage usage;
    usage.added = capacity > 0.0 ? load / capacity : 0.0;
    usage.available = state_->AvailableLoad(peer);
    peer_usage.push_back(usage);
    plan->added_load.emplace_back(peer, load);
  }

  plan->feasible = true;
  for (const cost::ResourceUsage& usage : connection_usage) {
    if (usage.added > usage.available + 1e-9) plan->feasible = false;
  }
  for (const cost::ResourceUsage& usage : peer_usage) {
    if (usage.added > usage.available + 1e-9) plan->feasible = false;
  }

  // End-to-end delivery latency: source → reused stream's first node →
  // tap node → query super-peer.
  {
    double latency = reused.source_latency_ms;
    auto tap_it = std::find(reused.route.begin(), reused.route.end(),
                            plan->reuse_node);
    if (tap_it != reused.route.end()) {
      std::vector<NodeId> prefix(reused.route.begin(), tap_it + 1);
      SS_ASSIGN_OR_RETURN(double prefix_latency,
                          topology_->PathLatencyMs(prefix));
      latency += prefix_latency;
    }
    if (plan->new_stream.has_value()) {
      SS_ASSIGN_OR_RETURN(
          double route_latency,
          topology_->PathLatencyMs(plan->new_stream->route));
      latency += route_latency;
    }
    plan->estimated_latency_ms = latency;
  }

  plan->cost = cost::PlanCost(connection_usage, peer_usage, params.gamma) +
               params.latency_weight * plan->estimated_latency_ms;
  return Status::Ok();
}

Result<InputPlan> Planner::GenerateSharedPlan(
    const RegisteredStream& reused, NodeId v, NodeId vq,
    const StreamBinding& binding,
    const InputStreamProperties& sub_props) const {
  return BuildPlan(reused, v, vq, binding, sub_props, std::nullopt);
}

Result<InputPlan> Planner::BuildPlan(
    const RegisteredStream& reused, NodeId v, NodeId vq,
    const StreamBinding& binding, const InputStreamProperties& sub_props,
    std::optional<WideningSpec> widening) const {
  InputPlan plan;
  plan.input_stream_name = binding.stream_name;
  plan.reused_stream = reused.id;
  plan.reuse_node = v;
  plan.widening = std::move(widening);

  bool equivalent = PropsEquivalent(reused.props, sub_props);
  SS_ASSIGN_OR_RETURN(plan.ops,
                      ResidualOps(reused, binding, v, equivalent));

  // With widening enabled, every plain query re-enforces its own
  // predicates right before restructuring; upstream streams may then be
  // relaxed at any time without changing any subscriber's results.
  if (options_.enable_widening && !binding.aggregate.has_value() &&
      !binding.window.has_value()) {
    if (!binding.item_predicates.empty()) {
      EngineOpSpec select;
      select.kind = EngineOpSpec::Kind::kSelect;
      select.node = vq;
      select.compensation = true;
      select.predicates = binding.item_predicates;
      plan.ops.push_back(std::move(select));
    }
    if (!binding.returns_whole_item) {
      EngineOpSpec project;
      project.kind = EngineOpSpec::Kind::kProject;
      project.node = vq;
      project.compensation = true;
      project.output_paths = binding.referenced_paths;
      plan.ops.push_back(std::move(project));
    }
  }

  if (!(equivalent && v == vq)) {
    NewStreamSpec stream;
    stream.props = sub_props;
    stream.source_node = v;
    stream.target_node = vq;
    SS_ASSIGN_OR_RETURN(stream.route, RoutePath(v, vq));
    plan.new_stream = std::move(stream);
  }
  SS_RETURN_IF_ERROR(CostPlan(&plan, binding, reused, vq));
  return plan;
}

Result<InputPlan> Planner::GenerateWideningPlan(
    const RegisteredStream& narrow, NodeId v, NodeId vq,
    const StreamBinding& binding,
    const InputStreamProperties& sub_props) const {
  if (!options_.enable_widening) {
    return Status::Unsupported("stream widening is disabled");
  }
  if (narrow.IsOriginal() || narrow.upstream < 0) {
    return Status::Unsupported("original streams cannot be widened");
  }
  const properties::SelectionOp* narrow_selection = nullptr;
  const properties::ProjectionOp* narrow_projection = nullptr;
  for (const properties::Operator& op : narrow.props.operators) {
    switch (properties::KindOf(op)) {
      case properties::OperatorKind::kSelection:
        narrow_selection = &std::get<properties::SelectionOp>(op);
        break;
      case properties::OperatorKind::kProjection:
        narrow_projection = &std::get<properties::ProjectionOp>(op);
        break;
      case properties::OperatorKind::kAggregation:
      case properties::OperatorKind::kUserDefined:
        return Status::Unsupported(
            "aggregate and window streams are not widenable");
    }
  }

  WideningSpec spec;
  spec.stream = narrow.id;
  spec.widened_props.stream_name = narrow.props.stream_name;

  // Widened selection: the DBM join of the stream's and the
  // subscription's predicates — or no selection at all if the
  // subscription filters nothing.
  if (narrow_selection != nullptr) {
    if (!binding.item_predicates.empty()) {
      predicate::PredicateGraph sub_graph =
          predicate::PredicateGraph::Build(binding.item_predicates);
      if (!sub_graph.IsSatisfiable()) {
        return Status::Unsatisfiable("subscription predicates");
      }
      predicate::PredicateGraph widened_graph =
          predicate::PredicateGraph::UnionOf(narrow_selection->graph,
                                             sub_graph);
      spec.widened_selection = widened_graph.ToPredicates();
    }
    if (!spec.widened_selection.empty()) {
      SS_ASSIGN_OR_RETURN(
          properties::SelectionOp widened_sel,
          properties::SelectionOp::Create(spec.widened_selection));
      spec.widened_props.operators.emplace_back(std::move(widened_sel));
    }
  }

  // Widened projection: the union of kept paths; a whole-item consumer
  // widens the projection to the empty path (keep everything).
  if (narrow_projection != nullptr) {
    std::vector<xml::Path> merged = narrow_projection->output;
    if (binding.returns_whole_item) {
      merged = {xml::Path()};
    } else {
      for (const xml::Path& path : binding.referenced_paths) {
        merged.push_back(path);
      }
      // Prune paths covered by another (prefix subsumption).
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()),
                   merged.end());
      std::vector<xml::Path> pruned;
      for (const xml::Path& path : merged) {
        bool covered = false;
        for (const xml::Path& other : merged) {
          if (!(other == path) && other.IsPrefixOf(path)) {
            covered = true;
            break;
          }
        }
        if (!covered) pruned.push_back(path);
      }
      merged = std::move(pruned);
    }
    spec.widened_output = merged;
    properties::ProjectionOp widened_proj;
    widened_proj.output = merged;
    widened_proj.referenced = merged;
    spec.widened_props.operators.emplace_back(std::move(widened_proj));
  }

  // The widened stream must still be derivable from its upstream, and
  // must actually cover the subscription (sanity of the construction).
  matching::MatchOptions complete;
  complete.edge_local_predicates = false;
  const RegisteredStream& upstream = registry_->stream(narrow.upstream);
  if (!matching::MatchProperties(upstream.props, spec.widened_props,
                                 complete)) {
    return Status::Unsupported(
        "upstream stream no longer covers the widened content");
  }
  if (!matching::MatchProperties(spec.widened_props, sub_props,
                                 complete)) {
    return Status::Unsupported(
        "widening cannot make this stream cover the subscription");
  }

  SS_ASSIGN_OR_RETURN(cost::StreamEstimate old_estimate,
                      cost_model_->EstimateStream(narrow.props));
  SS_ASSIGN_OR_RETURN(cost::StreamEstimate new_estimate,
                      cost_model_->EstimateStream(spec.widened_props));
  spec.old_rate_kbps = old_estimate.RateKbps();
  spec.new_rate_kbps = new_estimate.RateKbps();
  spec.old_freq_hz = old_estimate.frequency_hz;
  spec.new_freq_hz = new_estimate.frequency_hz;

  // Plan against the stream as it will look after widening.
  RegisteredStream widened = narrow;
  widened.props = spec.widened_props;
  widened.rate_kbps = spec.new_rate_kbps;
  return BuildPlan(widened, v, vq, binding, sub_props, std::move(spec));
}

Result<EvaluationPlan> Planner::DataShipping(const AnalyzedQuery& query,
                                             NodeId vq) const {
  EvaluationPlan plan;
  for (size_t i = 0; i < query.bindings.size(); ++i) {
    const StreamBinding& binding = query.bindings[i];
    const RegisteredStream* original =
        registry_->FindOriginal(binding.stream_name);
    if (original == nullptr) {
      return Status::NotFound("query references unregistered stream '" +
                              binding.stream_name + "'");
    }
    if (original->retired ||
        state_->health().IsDead(original->source_node)) {
      return Status::Unavailable(
          "input stream '" + binding.stream_name + "' is lost: source " +
          topology_->peer(original->source_node).name + " failed");
    }
    InputPlan input;
    input.input_stream_name = binding.stream_name;
    input.reused_stream = original->id;
    input.reuse_node = original->source_node;
    input.ships_raw_stream = true;
    SS_ASSIGN_OR_RETURN(
        input.ops,
        ResidualOps(*original, binding, vq, /*reused_is_equivalent=*/false));
    NewStreamSpec stream;
    stream.props = original->props;  // the raw stream is what flows
    stream.source_node = original->source_node;
    stream.target_node = vq;
    SS_ASSIGN_OR_RETURN(stream.route,
                        RoutePath(stream.source_node, vq));
    input.new_stream = std::move(stream);
    SS_RETURN_IF_ERROR(CostPlan(&input, binding, *original, vq));
    plan.inputs.push_back(std::move(input));
  }
  return plan;
}

Result<EvaluationPlan> Planner::QueryShipping(const AnalyzedQuery& query,
                                              NodeId vq) const {
  EvaluationPlan plan;
  for (size_t i = 0; i < query.bindings.size(); ++i) {
    const StreamBinding& binding = query.bindings[i];
    const RegisteredStream* original =
        registry_->FindOriginal(binding.stream_name);
    if (original == nullptr) {
      return Status::NotFound("query references unregistered stream '" +
                              binding.stream_name + "'");
    }
    if (original->retired ||
        state_->health().IsDead(original->source_node)) {
      return Status::Unavailable(
          "input stream '" + binding.stream_name + "' is lost: source " +
          topology_->peer(original->source_node).name + " failed");
    }
    SS_ASSIGN_OR_RETURN(
        InputPlan input,
        GenerateSharedPlan(*original, original->source_node, vq, binding,
                           query.props.inputs()[i]));
    plan.inputs.push_back(std::move(input));
  }
  return plan;
}

Result<EvaluationPlan> Planner::Subscribe(
    const AnalyzedQuery& query, NodeId vq, SearchStats* stats,
    const std::set<NodeId>* allowed_nodes) const {
  auto allowed = [&](NodeId node) {
    return (allowed_nodes == nullptr || allowed_nodes->count(node) != 0) &&
           state_->health().RoutesThrough(node);
  };
  SearchStats local_stats;
  // Appends one candidate record and returns its index in `candidates`.
  auto record_candidate = [&local_stats](const StreamBinding& binding,
                                         const InputPlan& candidate,
                                         bool widening,
                                         bool baseline = false) {
    CandidatePlanInfo info;
    info.input_stream = binding.stream_name;
    info.reused_stream = candidate.reused_stream;
    info.reuse_node = candidate.reuse_node;
    info.cost = candidate.cost;
    info.feasible = candidate.feasible;
    info.widening = widening;
    info.baseline = baseline;
    local_stats.candidates.push_back(std::move(info));
    return local_stats.candidates.size() - 1;
  };
  EvaluationPlan plan;  // line 1: P ← ∅
  // Line 2: iterate over the subscription's input streams.
  for (size_t i = 0; i < query.bindings.size(); ++i) {
    const StreamBinding& binding = query.bindings[i];
    const InputStreamProperties& sub_props = query.props.inputs()[i];
    obs::TraceSpan input_span(&obs::TraceRecorder::Default(),
                              "Subscribe:" + binding.stream_name,
                              "sharing");
    const RegisteredStream* original =
        registry_->FindOriginal(binding.stream_name);
    if (original == nullptr) {
      return Status::NotFound("query references unregistered stream '" +
                              binding.stream_name + "'");
    }
    if (original->retired ||
        state_->health().IsDead(original->source_node)) {
      return Status::Unavailable(
          "input stream '" + binding.stream_name + "' is lost: source " +
          topology_->peer(original->source_node).name + " failed");
    }

    // Lines 3–6: initial plan — the original input stream routed to vq
    // via a shortest path, all evaluation at the target peer.
    NodeId vb = original->target_node;
    InputPlan best;
    {
      InputPlan initial;
      initial.input_stream_name = binding.stream_name;
      initial.reused_stream = original->id;
      initial.reuse_node = vb;
      initial.ships_raw_stream = true;
      SS_ASSIGN_OR_RETURN(initial.ops,
                          ResidualOps(*original, binding, vq,
                                      /*reused_is_equivalent=*/false));
      NewStreamSpec stream;
      stream.props = original->props;
      stream.source_node = vb;
      stream.target_node = vq;
      SS_ASSIGN_OR_RETURN(stream.route, RoutePath(vb, vq));
      initial.new_stream = std::move(stream);
      SS_RETURN_IF_ERROR(CostPlan(&initial, binding, *original, vq));
      best = std::move(initial);
      ++local_stats.plans_generated;
    }
    size_t best_candidate = record_candidate(binding, best,
                                             /*widening=*/false,
                                             /*baseline=*/true);

    // A candidate replaces the incumbent if it is strictly better by C —
    // preferring feasible plans when configured (the overload test).
    auto better = [&](const InputPlan& candidate, const InputPlan& incumbent) {
      if (options_.prefer_feasible &&
          candidate.feasible != incumbent.feasible) {
        return candidate.feasible;
      }
      return candidate.cost < incumbent.cost;
    };

    // Lines 7–25: breadth-first search from the input stream's node.
    std::deque<NodeId> lv{vb};
    std::set<NodeId> marked;
    std::set<NodeId> enqueued{vb};
    while (!lv.empty()) {
      NodeId v = lv.front();
      lv.pop_front();
      if (marked.count(v) != 0) continue;
      marked.insert(v);
      ++local_stats.nodes_visited;

      std::vector<const RegisteredStream*> candidates =
          registry_->AvailableAt(v, binding.stream_name);
      for (const RegisteredStream* p : candidates) {
        ++local_stats.candidates_examined;
        // A stream whose route crosses a dead peer or down link no
        // longer flows; under epoch-safe re-planning, windowed streams
        // are excluded from reuse entirely.
        if (!StreamUsable(*p)) continue;
        if (options_.epoch_safe_only && !EpochSafeReuse(*p)) continue;
        if (!matching::MatchProperties(p->props, sub_props,
                                       options_.match_options)) {
          // Non-matching streams do not extend the search — but with
          // widening enabled, a too-narrow stream may still be usable
          // after relaxing its operators (paper §6).
          if (options_.enable_widening && !options_.epoch_safe_only &&
              p->widenable) {
            Result<InputPlan> widened =
                GenerateWideningPlan(*p, v, vq, binding, sub_props);
            if (widened.ok()) {
              ++local_stats.plans_generated;
              size_t idx =
                  record_candidate(binding, *widened, /*widening=*/true);
              if (better(*widened, best)) {
                best = std::move(*widened);
                best_candidate = idx;
              }
            } else if (!widened.status().IsUnsupported()) {
              return widened.status();
            }
          }
          continue;
        }
        ++local_stats.candidates_matched;
        // The stream is available along its whole route; explore it.
        for (NodeId n : p->route) {
          if (allowed(n) && marked.count(n) == 0 &&
              enqueued.count(n) == 0) {
            lv.push_back(n);
            enqueued.insert(n);
          }
        }
        Result<InputPlan> candidate =
            GenerateSharedPlan(*p, v, vq, binding, sub_props);
        if (!candidate.ok()) {
          // A matching stream can still be unplannable (e.g. a
          // non-identical window-contents stream); skip it.
          if (candidate.status().IsUnsupported()) continue;
          return candidate.status();
        }
        ++local_stats.plans_generated;
        size_t idx =
            record_candidate(binding, *candidate, /*widening=*/false);
        if (better(*candidate, best)) {
          best = std::move(*candidate);
          best_candidate = idx;
        }
      }

      if (!options_.prune_search) {
        // Ablation A1: unpruned BFS walks all topology neighbors too.
        for (NodeId n : topology_->Neighbors(v)) {
          if (allowed(n) && marked.count(n) == 0 &&
              enqueued.count(n) == 0) {
            lv.push_back(n);
            enqueued.insert(n);
          }
        }
      }
    }
    local_stats.candidates[best_candidate].chosen = true;
    if (input_span.active()) {
      input_span.AddArg(obs::TraceArg::Num("C(P)", best.cost));
      input_span.AddArg(obs::TraceArg::Num(
          "plans", static_cast<double>(local_stats.plans_generated)));
      input_span.AddArg(obs::TraceArg::Num(
          "nodes_visited",
          static_cast<double>(local_stats.nodes_visited)));
      input_span.AddArg(obs::TraceArg::Str(
          "reuse_node", "SP" + std::to_string(best.reuse_node)));
    }
    plan.inputs.push_back(std::move(best));
  }
  if (stats != nullptr) *stats = std::move(local_stats);
  return plan;
}

}  // namespace streamshare::sharing
