#include "sharing/candidate_index.h"

#include <algorithm>
#include <bit>
#include <functional>

#include "matching/match_aggregations.h"
#include "matching/match_properties.h"

namespace streamshare::sharing {

namespace {

using network::NodeId;
using network::RegisteredStream;
using network::StreamId;
using properties::PathInterval;
using properties::SelectionSignature;
using properties::StreamSignature;
using properties::SubscriptionProbe;

/// True if the probe selection could imply every zero-incident edge of the
/// stream selection: for each stream bound the probe must derive a bound
/// between the same endpoints that is at least as tight.
bool SelectionImpliable(const SelectionSignature& stream,
                        const SelectionSignature& probe) {
  for (const PathInterval& need : stream.intervals) {
    const PathInterval* have = nullptr;
    for (const PathInterval& interval : probe.intervals) {
      if (interval.path == need.path) {
        have = &interval;
        break;
      }
    }
    if (need.upper) {
      if (have == nullptr || !have->upper ||
          !have->upper->ImpliesBound(*need.upper)) {
        return false;
      }
    }
    if (need.lower) {
      if (have == nullptr || !have->lower ||
          !have->lower->ImpliesBound(*need.lower)) {
        return false;
      }
    }
  }
  return true;
}

/// Canonical key of a signature's structure: everything SignatureCouldMatch
/// consults except the selection bound *constants* (values/strictness).
/// Shapes sharing a key differ only in those constants, so the structural
/// half of the verdict — and the bound-path alignment against a probe —
/// can be computed once per family instead of once per shape.
std::string FamilyKey(const StreamSignature& signature) {
  std::string key = std::to_string(signature.kind_mask);
  key += signature.epoch_safe ? "|1" : "|0";
  for (const properties::UserDefinedOp& udf : signature.udfs) {
    key += "|u";
    key += udf.ToString();
  }
  for (const properties::AggregationSignature& agg : signature.aggregations) {
    key += "|a";
    key += std::to_string(static_cast<int>(agg.func));
    key += agg.aggregated_element.ToString();
    key += agg.window.ToString();
  }
  for (const std::vector<xml::Path>& output : signature.projection_outputs) {
    key += "|p";
    for (const xml::Path& path : output) {
      key += path.ToString();
      key += ",";
    }
  }
  for (const SelectionSignature& selection : signature.selections) {
    key += "|s";
    for (const PathInterval& interval : selection.intervals) {
      key += interval.path.ToString();
      key += interval.upper ? "U" : "-";
      key += interval.lower ? "L" : "-";
      key += ";";
    }
  }
  return key;
}

/// Constant-level half of SelectionImpliable: `aligned[i]` is the probe
/// interval path-matched to the stream selection's interval i (structure
/// already verified at the family level).
bool AlignedBoundsImply(const SelectionSignature& stream,
                        const std::vector<const PathInterval*>& aligned) {
  for (size_t i = 0; i < stream.intervals.size(); ++i) {
    const PathInterval& need = stream.intervals[i];
    const PathInterval* have = aligned[i];
    if (need.upper &&
        (have == nullptr || !have->upper ||
         !have->upper->ImpliesBound(*need.upper))) {
      return false;
    }
    if (need.lower &&
        (have == nullptr || !have->lower ||
         !have->lower->ImpliesBound(*need.lower))) {
      return false;
    }
  }
  return true;
}

/// Structural half of SignatureCouldMatch for a whole family, evaluated on
/// the family's representative signature. On success fills `entry` with
/// the per-selection probe alignments the constant-level check needs; on
/// failure every member shape is refuted regardless of its constants.
bool FamilyCouldMatch(const StreamSignature& representative,
                      const SubscriptionProbe& probe,
                      CandidateIndex::ProbeCache::FamilyEntry* entry) {
  if ((representative.kind_mask & ~probe.kind_mask) != 0) return false;
  for (const properties::UserDefinedOp& udf : representative.udfs) {
    bool found = false;
    for (const properties::UserDefinedOp& other : probe.udfs) {
      if (udf == other) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  for (const properties::AggregationSignature& agg :
       representative.aggregations) {
    bool found = false;
    for (const properties::AggregationSignature& other : probe.aggregations) {
      if (matching::AggregateFuncsCompatible(agg.func, other.func) &&
          agg.aggregated_element == other.aggregated_element &&
          matching::WindowsCompatible(agg.window, other.window)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  for (const std::vector<xml::Path>& output :
       representative.projection_outputs) {
    bool found = false;
    for (const std::vector<xml::Path>& referenced :
         probe.projection_referenced) {
      if (matching::ProjectionCovers(output, referenced)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  // Selections: find, per stream selection, every probe selection whose
  // intervals cover the needed paths and sides. Which (if any) implies a
  // member's bounds depends on constants, so all structurally compatible
  // options are kept for the per-shape check. No option at all refutes
  // the family outright — exactly SelectionImpliable's path/side failure.
  entry->selections.assign(representative.selections.size(), {});
  for (size_t s = 0; s < representative.selections.size(); ++s) {
    const SelectionSignature& selection = representative.selections[s];
    for (const SelectionSignature& other : probe.selections) {
      std::vector<const PathInterval*> aligned(selection.intervals.size(),
                                               nullptr);
      bool compatible = true;
      for (size_t i = 0; i < selection.intervals.size(); ++i) {
        const PathInterval& need = selection.intervals[i];
        for (const PathInterval& interval : other.intervals) {
          if (interval.path == need.path) {
            aligned[i] = &interval;
            break;
          }
        }
        if ((need.upper && (aligned[i] == nullptr || !aligned[i]->upper)) ||
            (need.lower && (aligned[i] == nullptr || !aligned[i]->lower))) {
          compatible = false;
          break;
        }
      }
      if (compatible) {
        entry->selections[s].options.push_back(std::move(aligned));
      }
    }
    if (entry->selections[s].options.empty()) return false;
  }
  return true;
}

/// Sorted-unique merge of `route` into `frontier`.
void MergeFrontier(std::vector<NodeId>& frontier,
                   const std::vector<NodeId>& route) {
  for (NodeId node : route) {
    auto it = std::lower_bound(frontier.begin(), frontier.end(), node);
    if (it == frontier.end() || *it != node) frontier.insert(it, node);
  }
}

}  // namespace

bool SignatureCouldMatch(const StreamSignature& stream,
                         const SubscriptionProbe& probe) {
  // Every operator kind on the stream needs a counterpart on the sub.
  if ((stream.kind_mask & ~probe.kind_mask) != 0) return false;
  // UDFs must be repeated verbatim (§3.3 case 4).
  for (const properties::UserDefinedOp& udf : stream.udfs) {
    bool found = false;
    for (const properties::UserDefinedOp& other : probe.udfs) {
      if (udf == other) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  // Aggregations: function, aggregated element, and window-divisor
  // compatibility are required by every MatchAggregations branch.
  for (const properties::AggregationSignature& agg : stream.aggregations) {
    bool found = false;
    for (const properties::AggregationSignature& other : probe.aggregations) {
      if (matching::AggregateFuncsCompatible(agg.func, other.func) &&
          agg.aggregated_element == other.aggregated_element &&
          matching::WindowsCompatible(agg.window, other.window)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  // Projections: the stream's output must cover what some sub projection
  // references.
  for (const std::vector<xml::Path>& output : stream.projection_outputs) {
    bool found = false;
    for (const std::vector<xml::Path>& referenced :
         probe.projection_referenced) {
      if (matching::ProjectionCovers(output, referenced)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  // Selections: some sub selection must imply the stream's zero-incident
  // bounds (a necessary slice of the full implication test).
  for (const SelectionSignature& selection : stream.selections) {
    bool found = false;
    for (const SelectionSignature& other : probe.selections) {
      if (SelectionImpliable(selection, other)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

CandidateIndex::CandidateIndex(const network::Topology* topology,
                               const network::StreamRegistry* registry)
    : topology_(topology), registry_(registry) {
  for (const RegisteredStream& stream : registry_->streams()) {
    if (!stream.retired) Insert(stream.id);
  }
}

void CandidateIndex::OnStreamRegistered(StreamId id) { Insert(id); }

void CandidateIndex::OnStreamRetired(StreamId id) { Remove(id); }

void CandidateIndex::OnStreamUpdated(StreamId id) {
  // Widening rewrites props/rate in place; route and latency are
  // unchanged, but the shape (and thus the dominance group) moves.
  Remove(id);
  if (!registry_->stream(id).retired) Insert(id);
}

int CandidateIndex::InternShape(
    const properties::InputStreamProperties& props) {
  uint64_t fingerprint = std::hash<std::string>{}(props.ToString());
  std::vector<int>& ids = shape_lookup_[fingerprint];
  for (int shape : ids) {
    if (shapes_[shape].props == props) return shape;
  }
  int shape = static_cast<int>(shapes_.size());
  shapes_.push_back(
      Shape{props, properties::ComputeStreamSignature(props)});
  shapes_.back().family = InternFamily(shapes_.back().signature, shape);
  ids.push_back(shape);
  return shape;
}

int CandidateIndex::InternFamily(
    const properties::StreamSignature& signature, int shape) {
  std::string key = FamilyKey(signature);
  uint64_t fingerprint = std::hash<std::string>{}(key);
  std::vector<int>& ids = family_lookup_[fingerprint];
  int family = -1;
  for (int candidate : ids) {
    if (family_keys_[candidate] == key) {
      family = candidate;
      break;
    }
  }
  if (family < 0) {
    family = static_cast<int>(families_.size());
    families_.push_back(Family{shape});
    family_keys_.push_back(std::move(key));
    ids.push_back(family);
    // One interval-index slot per bound side the structure carries; every
    // later member has the identical structure (that is what the family
    // key pins down), so slot positions stay aligned across members.
    for (size_t s = 0; s < signature.selections.size(); ++s) {
      const SelectionSignature& selection = signature.selections[s];
      for (size_t i = 0; i < selection.intervals.size(); ++i) {
        if (selection.intervals[i].upper) {
          families_[family].slots.push_back(Family::Slot{s, i, true, {}});
        }
        if (selection.intervals[i].lower) {
          families_[family].slots.push_back(Family::Slot{s, i, false, {}});
        }
      }
    }
  }
  Family& entry = families_[family];
  entry.member_shapes.push_back(shape);
  for (Family::Slot& slot : entry.slots) {
    const PathInterval& interval =
        signature.selections[slot.selection].intervals[slot.interval];
    Decimal value =
        slot.upper ? interval.upper->value : interval.lower->value;
    auto it = std::lower_bound(
        slot.sorted.begin(), slot.sorted.end(), std::pair(value, shape),
        [](const std::pair<Decimal, int>& a, const std::pair<Decimal, int>& b) {
          return a.first == b.first ? a.second < b.second : a.first < b.first;
        });
    slot.sorted.insert(it, std::pair(value, shape));
  }
  return family;
}

const std::vector<int>& CandidateIndex::MatchingShapes(
    int family_id, const SubscriptionProbe& probe, ProbeCache& cache) const {
  ProbeCache::FamilyEntry& entry = cache.families[family_id];
  if (entry.matching_ready) return entry.matching;
  entry.matching_ready = true;
  const Family& family = families_[family_id];
  std::vector<int> candidates;
  if (family.slots.empty()) {
    // No bound constants to discriminate on: structure pass means every
    // member could match (the per-shape check is vacuous but still run —
    // it is the single source of truth).
    candidates = family.member_shapes;
  } else {
    // A shape matching selection s via probe option o passes *every* slot
    // suffix of s under o, so the most selective slot per option — summed
    // over the options of the best selection — is a complete candidate
    // superset. Exactness comes from per-shape verification below.
    size_t best_total = family.member_shapes.size() + 1;
    std::vector<std::pair<const Family::Slot*, size_t>> best_starts;
    for (size_t s = 0; s < entry.selections.size(); ++s) {
      bool has_slot = false;
      for (const Family::Slot& slot : family.slots) {
        if (slot.selection == s) {
          has_slot = true;
          break;
        }
      }
      if (!has_slot) continue;
      size_t total = 0;
      std::vector<std::pair<const Family::Slot*, size_t>> starts;
      for (const std::vector<const PathInterval*>& option :
           entry.selections[s].options) {
        const Family::Slot* best_slot = nullptr;
        size_t best_start = 0;
        size_t best_size = family.member_shapes.size() + 1;
        for (const Family::Slot& slot : family.slots) {
          if (slot.selection != s) continue;
          const PathInterval* have = option[slot.interval];
          const predicate::Bound& bound =
              slot.upper ? *have->upper : *have->lower;
          auto it = std::lower_bound(
              slot.sorted.begin(), slot.sorted.end(), bound.value,
              [](const std::pair<Decimal, int>& a, const Decimal& value) {
                return a.first < value;
              });
          size_t start = static_cast<size_t>(it - slot.sorted.begin());
          size_t size = slot.sorted.size() - start;
          if (size < best_size) {
            best_size = size;
            best_slot = &slot;
            best_start = start;
          }
        }
        total += best_size;
        starts.emplace_back(best_slot, best_start);
      }
      if (total < best_total) {
        best_total = total;
        best_starts = std::move(starts);
      }
    }
    for (const auto& [slot, start] : best_starts) {
      for (size_t k = start; k < slot->sorted.size(); ++k) {
        candidates.push_back(slot->sorted[k].second);
      }
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());
  }
  for (int shape : candidates) {
    int8_t& verdict = cache.verdicts[shape];
    if (verdict == 0) verdict = ShapeCouldMatch(shape, probe, cache) ? 1 : 2;
    if (verdict == 1) entry.matching.push_back(shape);
  }
  return entry.matching;
}

bool CandidateIndex::ShapeCouldMatch(int shape,
                                     const SubscriptionProbe& probe,
                                     ProbeCache& cache) const {
  const Shape& entry = shapes_[shape];
  ProbeCache::FamilyEntry& family = cache.families[entry.family];
  if (family.verdict == 0) {
    family.verdict =
        FamilyCouldMatch(shapes_[families_[entry.family].shape].signature,
                         probe, &family)
            ? 1
            : 2;
  }
  if (family.verdict == 2) return false;
  for (size_t s = 0; s < entry.signature.selections.size(); ++s) {
    bool implied = false;
    for (const std::vector<const PathInterval*>& aligned :
         family.selections[s].options) {
      if (AlignedBoundsImply(entry.signature.selections[s], aligned)) {
        implied = true;
        break;
      }
    }
    if (!implied) return false;
  }
  return true;
}

uint64_t CandidateIndex::LatencyKey(const RegisteredStream& stream,
                                    size_t route_prefix_len) const {
  std::vector<NodeId> prefix(stream.route.begin(),
                             stream.route.begin() + route_prefix_len);
  Result<double> latency = topology_->PathLatencyMs(prefix);
  if (!latency.ok()) {
    // Degenerate route: never group (unique key per stream/position).
    return 0x8000000000000000ull ^
           (static_cast<uint64_t>(stream.id) << 16 | route_prefix_len);
  }
  // Same accumulation order as the cost model's tap-latency term.
  return std::bit_cast<uint64_t>(stream.source_latency_ms + *latency);
}

void CandidateIndex::Insert(StreamId id) {
  const RegisteredStream& stream = registry_->stream(id);
  if (stream_info_.size() <= static_cast<size_t>(id)) {
    stream_info_.resize(id + 1);
  }
  StreamInfo& info = stream_info_[id];
  info.indexed = true;
  info.shape = InternShape(stream.props);
  info.latency_keys.assign(stream.route.size(), 0);
  auto& nodes = buckets_[stream.variant_of];
  for (size_t i = 0; i < stream.route.size(); ++i) {
    uint64_t key = LatencyKey(stream, i + 1);
    info.latency_keys[i] = key;
    Bucket& bucket = nodes[stream.route[i]];
    FamilyGroups* partition = nullptr;
    for (FamilyGroups& candidate : bucket.partitions) {
      if (candidate.family == shapes_[info.shape].family) {
        partition = &candidate;
        break;
      }
    }
    if (partition == nullptr) {
      bucket.partitions.push_back(FamilyGroups{shapes_[info.shape].family, {}});
      partition = &bucket.partitions.back();
    }
    auto pos = std::lower_bound(
        partition->groups.begin(), partition->groups.end(),
        std::pair(info.shape, key),
        [](const Group& g, const std::pair<int, uint64_t>& k) {
          return g.shape != k.first ? g.shape < k.first
                                    : g.latency_key < k.second;
        });
    Group* group;
    if (pos != partition->groups.end() && pos->shape == info.shape &&
        pos->latency_key == key) {
      group = &*pos;
    } else {
      group = &*partition->groups.insert(pos, Group{info.shape, key, {}, {}});
    }
    auto it = std::lower_bound(group->members.begin(), group->members.end(),
                               id);
    if (it == group->members.end() || *it != id) {
      group->members.insert(it, id);
      ++partition->member_count;
    }
    MergeFrontier(group->frontier, stream.route);
  }
  ++live_count_;
}

void CandidateIndex::Remove(StreamId id) {
  if (static_cast<size_t>(id) >= stream_info_.size() ||
      !stream_info_[id].indexed) {
    return;
  }
  StreamInfo& info = stream_info_[id];
  const RegisteredStream& stream = registry_->stream(id);
  auto variant_it = buckets_.find(stream.variant_of);
  if (variant_it != buckets_.end()) {
    for (size_t i = 0; i < stream.route.size() && i < info.latency_keys.size();
         ++i) {
      auto bucket_it = variant_it->second.find(stream.route[i]);
      if (bucket_it == variant_it->second.end()) continue;
      std::vector<FamilyGroups>& partitions = bucket_it->second.partitions;
      for (size_t p = 0; p < partitions.size(); ++p) {
        if (partitions[p].family != shapes_[info.shape].family) continue;
        std::vector<Group>& groups = partitions[p].groups;
        for (size_t g = 0; g < groups.size(); ++g) {
          Group& group = groups[g];
          if (group.shape != info.shape ||
              group.latency_key != info.latency_keys[i]) {
            continue;
          }
          auto member_it =
              std::lower_bound(group.members.begin(), group.members.end(), id);
          if (member_it == group.members.end() || *member_it != id) break;
          group.members.erase(member_it);
          --partitions[p].member_count;
          if (group.members.empty()) {
            groups.erase(groups.begin() + g);
          } else {
            // Rebuild the frontier union from the remaining members so the
            // BFS never visits nodes the flat walk would not.
            group.frontier.clear();
            for (StreamId member : group.members) {
              MergeFrontier(group.frontier, registry_->stream(member).route);
            }
          }
          break;
        }
        if (groups.empty()) partitions.erase(partitions.begin() + p);
        break;
      }
    }
  }
  info.indexed = false;
  info.latency_keys.clear();
  --live_count_;
}

std::vector<CandidateIndex::Entry> CandidateIndex::Collect(
    NodeId node, std::string_view variant_of, const SubscriptionProbe& probe,
    bool epoch_safe_only, bool widening, bool grouped, ProbeCache* cache,
    LookupStats* stats) const {
  std::vector<Entry> entries;
  auto variant_it = buckets_.find(variant_of);
  if (variant_it == buckets_.end()) return entries;
  auto bucket_it = variant_it->second.find(node);
  if (bucket_it == variant_it->second.end()) return entries;
  if (cache != nullptr) {
    if (cache->verdicts.size() < shapes_.size()) {
      cache->verdicts.resize(shapes_.size(), 0);
    }
    if (cache->families.size() < families_.size()) {
      cache->families.resize(families_.size());
    }
  }
  bool per_stream = widening || !grouped;
  for (const FamilyGroups& partition : bucket_it->second.partitions) {
    // Epoch safety and structural compatibility are family-level facts:
    // one test skips (or refutes) every member group of the partition.
    // Widening is the exception — non-matching widenable streams must
    // survive pruning — so refuted families are still walked then.
    const StreamSignature& family_signature =
        shapes_[families_[partition.family].shape].signature;
    // The planner skips aggregate/UDF streams under epoch-safe-only
    // planning before matching, so the index may drop them outright.
    if (epoch_safe_only && !family_signature.epoch_safe) continue;
    if (cache != nullptr && !widening) {
      ProbeCache::FamilyEntry& family = cache->families[partition.family];
      if (family.verdict == 0) {
        family.verdict =
            FamilyCouldMatch(family_signature, probe, &family) ? 1 : 2;
      }
      if (family.verdict == 2) {
        if (stats != nullptr) stats->pruned += partition.member_count;
        continue;
      }
      if (!per_stream) {
        // Matching shapes come from the interval index (shared across
        // buckets for this probe); after it runs, a verdict of 0 means
        // "outside every candidate suffix", i.e. refuted, so both walks
        // below are exact. Touch whichever side is smaller — the probe's
        // family-wide match set or this partition's group list.
        const std::vector<int>& matching =
            MatchingShapes(partition.family, probe, *cache);
        int matched_members = 0;
        auto emit = [&](const Group& group) {
          entries.push_back(Entry{&registry_->stream(group.members.front()),
                                  &group.frontier,
                                  static_cast<int>(group.members.size()) - 1,
                                  group.shape});
          matched_members += static_cast<int>(group.members.size());
          if (stats != nullptr) {
            stats->suppressed += static_cast<int>(group.members.size()) - 1;
          }
        };
        if (matching.size() < partition.groups.size()) {
          for (int shape : matching) {
            auto it = std::lower_bound(
                partition.groups.begin(), partition.groups.end(), shape,
                [](const Group& g, int s) { return g.shape < s; });
            for (; it != partition.groups.end() && it->shape == shape; ++it) {
              emit(*it);
            }
          }
        } else {
          for (const Group& group : partition.groups) {
            if (cache->verdicts[group.shape] == 1) emit(group);
          }
        }
        if (stats != nullptr) {
          stats->pruned += partition.member_count - matched_members;
        }
        continue;
      }
    }
    for (const Group& group : partition.groups) {
      bool could_match;
      if (cache != nullptr) {
        int8_t& verdict = cache->verdicts[group.shape];
        if (verdict == 0) {
          verdict = ShapeCouldMatch(group.shape, probe, *cache) ? 1 : 2;
        }
        could_match = verdict == 1;
      } else {
        could_match =
            SignatureCouldMatch(shapes_[group.shape].signature, probe);
      }
      if (!per_stream) {
        if (!could_match) {
          if (stats != nullptr) {
            stats->pruned += static_cast<int>(group.members.size());
          }
          continue;
        }
        entries.push_back(Entry{&registry_->stream(group.members.front()),
                                &group.frontier,
                                static_cast<int>(group.members.size()) - 1,
                                group.shape});
        if (stats != nullptr) {
          stats->suppressed += static_cast<int>(group.members.size()) - 1;
        }
      } else {
        for (StreamId id : group.members) {
          const RegisteredStream& stream = registry_->stream(id);
          // Widening derives plans from non-matching widenable streams, so
          // those survive the signature prune while widening is enabled.
          if (!could_match && !(widening && stream.widenable)) {
            if (stats != nullptr) ++stats->pruned;
            continue;
          }
          entries.push_back(Entry{&stream, nullptr, 0, group.shape});
        }
      }
    }
  }
  std::sort(entries.begin(), entries.end(), [](const Entry& a, const Entry& b) {
    return a.stream->id < b.stream->id;
  });
  return entries;
}

}  // namespace streamshare::sharing
