#include "sharing/system.h"

#include <algorithm>
#include <chrono>
#include <functional>
#include <map>
#include <set>

#include "engine/combine.h"
#include "engine/latency.h"
#include "engine/restructure.h"
#include "engine/window_agg.h"
#include "obs/event_log.h"
#include "sharing/latency_audit.h"
#include "obs/trace.h"
#include "transport/loopback.h"
#include "transport/tcp.h"

namespace streamshare::sharing {

using network::NodeId;
using network::RegisteredStream;
using network::StreamId;

std::string_view StrategyToString(Strategy strategy) {
  switch (strategy) {
    case Strategy::kDataShipping:
      return "data shipping";
    case Strategy::kQueryShipping:
      return "query shipping";
    case Strategy::kStreamSharing:
      return "stream sharing";
  }
  return "?";
}

StreamShareSystem::StreamShareSystem(network::Topology topology,
                                     SystemConfig config)
    : topology_(std::move(topology)),
      config_(config),
      state_(&topology_),
      metrics_(topology_) {
  // A resumed system must not reuse aggregate streams whose windows may
  // straddle the resume point — see PlannerOptions::epoch_safe_only.
  if (config_.resume_mode) config_.planner.epoch_safe_only = true;
  cost_model_ =
      std::make_unique<cost::CostModel>(&statistics_, config_.cost_params);
  if (config_.candidate_index) {
    candidate_index_ = std::make_unique<CandidateIndex>(&topology_,
                                                        &registry_);
    registry_.set_listener(candidate_index_.get());
  }
  planner_ = std::make_unique<Planner>(&topology_, &state_, &registry_,
                                       cost_model_.get(), config_.planner);
  planner_->set_candidate_index(candidate_index_.get());
  if (!config_.subnet_assignment.empty()) {
    Result<network::SubnetPartition> partition =
        network::SubnetPartition::Create(&topology_,
                                         config_.subnet_assignment);
    if (partition.ok()) {
      partition_ = std::make_unique<network::SubnetPartition>(
          std::move(partition).value());
      hierarchical_planner_ = std::make_unique<HierarchicalPlanner>(
          planner_.get(), partition_.get(), config_.hierarchy);
    }
    // An invalid assignment silently falls back to flat planning; the
    // constructor cannot report errors, and flat plans are always valid.
  }
}

Status StreamShareSystem::RegisterStream(
    const std::string& name,
    std::shared_ptr<const xml::StreamSchema> schema,
    double item_frequency_hz, NodeId source) {
  return RegisterStream(
      name, cost::StreamStatistics(std::move(schema), item_frequency_hz),
      source);
}

Status StreamShareSystem::RegisterStream(
    const std::string& name, cost::StreamStatistics statistics,
    NodeId source) {
  if (registry_.FindOriginal(name) != nullptr) {
    return Status::AlreadyExists("stream '" + name +
                                 "' is already registered");
  }
  if (source < 0 || source >= static_cast<NodeId>(topology_.peer_count())) {
    return Status::InvalidArgument("source peer out of range");
  }
  statistics_.Register(name, std::move(statistics));

  RegisteredStream stream;
  stream.variant_of = name;
  stream.props.stream_name = name;
  stream.source_node = source;
  stream.target_node = source;
  stream.route = {source};
  SS_ASSIGN_OR_RETURN(cost::StreamEstimate estimate,
                      cost_model_->EstimateStream(stream.props));
  stream.rate_kbps = estimate.RateKbps();
  StreamId id = registry_.Register(std::move(stream));

  engine::Operator* entry =
      graph_.Add<engine::PassOp>("source:" + name);
  taps_[id].taps = {entry};
  stream_entries_[name] = entry;
  ++plan_epoch_;
  obs::EventLog& log = obs::EventLog::Default();
  if (log.ShouldLog(obs::Severity::kInfo)) {
    log.Log(obs::Severity::kInfo, "sharing", "stream registered",
            {obs::F("stream", name),
             obs::F("source", topology_.peer(source).name),
             obs::F("rate_kbps", registry_.stream(id).rate_kbps)});
  }
  return Status::Ok();
}

Status StreamShareSystem::SetRange(const std::string& stream,
                                   const xml::Path& path,
                                   cost::ValueRange range) {
  // StatisticsRegistry stores by value; mutate through a fresh copy.
  const cost::StreamStatistics* stats = statistics_.Find(stream);
  if (stats == nullptr) {
    return Status::NotFound("stream '" + stream + "' is not registered");
  }
  cost::StreamStatistics updated = *stats;
  updated.SetRange(path, range);
  statistics_.Register(stream, std::move(updated));
  return Status::Ok();
}

Status StreamShareSystem::SetAvgIncrement(const std::string& stream,
                                          const xml::Path& path,
                                          double increment) {
  const cost::StreamStatistics* stats = statistics_.Find(stream);
  if (stats == nullptr) {
    return Status::NotFound("stream '" + stream + "' is not registered");
  }
  cost::StreamStatistics updated = *stats;
  updated.SetAvgIncrement(path, increment);
  statistics_.Register(stream, std::move(updated));
  return Status::Ok();
}

Result<RegistrationResult> StreamShareSystem::RegisterQuery(
    std::string_view query_text, NodeId vq, Strategy strategy) {
  return RegisterQueryImpl(query_text, vq, strategy, /*batch=*/nullptr);
}

Result<std::vector<RegistrationResult>> StreamShareSystem::SubscribeBatch(
    const std::vector<BatchQuery>& queries, BatchStats* stats) {
  BatchContext batch;
  batch.stats.queries = static_cast<int>(queries.size());
  std::vector<RegistrationResult> results;
  results.reserve(queries.size());
  for (const BatchQuery& query : queries) {
    Result<RegistrationResult> result =
        RegisterQueryImpl(query.text, query.vq, query.strategy, &batch);
    if (!result.ok()) {
      // Sequential semantics: the installed prefix stays; the stats tell
      // the caller how many registrations consumed a query id.
      if (stats != nullptr) *stats = batch.stats;
      return result.status();
    }
    ++batch.stats.registered;
    results.push_back(std::move(result).value());
  }
  if (stats != nullptr) *stats = batch.stats;
  return results;
}

Result<RegistrationResult> StreamShareSystem::RegisterQueryImpl(
    std::string_view query_text, NodeId vq, Strategy strategy,
    BatchContext* batch) {
  if (vq < 0 || vq >= static_cast<NodeId>(topology_.peer_count())) {
    return Status::InvalidArgument("query target peer out of range");
  }
  auto start = std::chrono::steady_clock::now();
  obs::TraceSpan span(&obs::TraceRecorder::Default(), "RegisterQuery",
                      "sharing");
  span.AddArg(obs::TraceArg::Str("strategy",
                                 std::string(StrategyToString(strategy))));
  span.AddArg(obs::TraceArg::Str("vq", topology_.peer(vq).name));

  RegistrationResult result;
  result.query_id = static_cast<int>(registrations_.size());
  result.vq = vq;
  result.strategy = strategy;

  // Template clustering: identical texts in a batch analyze once
  // (ParseAndAnalyze is a pure function of the text).
  std::shared_ptr<const wxquery::AnalyzedQuery> query;
  if (batch != nullptr) {
    auto it = batch->analyzed.find(query_text);
    if (it != batch->analyzed.end()) {
      query = it->second;
      ++batch->stats.analyze_cache_hits;
    }
  }
  if (query == nullptr) {
    SS_ASSIGN_OR_RETURN(wxquery::AnalyzedQuery analyzed,
                        wxquery::ParseAndAnalyze(query_text));
    query = std::make_shared<const wxquery::AnalyzedQuery>(
        std::move(analyzed));
    if (batch != nullptr) {
      batch->analyzed.emplace(std::string(query_text), query);
    }
  }

  // Intra-batch plan reuse: planning is a deterministic function of
  // (query, vq, strategy) and planner-visible state; a memo entry stamped
  // with the current plan epoch yields exactly what re-planning would.
  const std::tuple<std::string, NodeId, int> memo_key(
      std::string(query_text), vq, static_cast<int>(strategy));
  bool memo_hit = false;
  if (batch != nullptr) {
    auto it = batch->plans.find(memo_key);
    if (it != batch->plans.end() && it->second.epoch == plan_epoch_) {
      result.plan = it->second.plan;
      result.search = it->second.search;
      memo_hit = true;
      ++batch->stats.plan_memo_hits;
    }
  }
  if (!memo_hit) {
    Result<EvaluationPlan> plan = [&]() -> Result<EvaluationPlan> {
      switch (strategy) {
        case Strategy::kDataShipping:
          return planner_->DataShipping(*query, vq);
        case Strategy::kQueryShipping:
          return planner_->QueryShipping(*query, vq);
        case Strategy::kStreamSharing:
          if (hierarchical_planner_ != nullptr) {
            return hierarchical_planner_->Subscribe(*query, vq,
                                                    &result.search);
          }
          return planner_->Subscribe(*query, vq, &result.search);
      }
      return Status::Internal("unknown strategy");
    }();
    SS_RETURN_IF_ERROR(plan.status());
    result.plan = std::move(plan).value();
    if (batch != nullptr) {
      batch->plans[memo_key] =
          BatchContext::PlanMemo{result.plan, result.search, plan_epoch_};
    }
  }

  if (config_.enforce_limits && !result.plan.Feasible()) {
    result.accepted = false;
    result.reject_reason =
        "no evaluation plan without overload on peers or connections";
    deployments_.emplace_back();  // inactive placeholder
  } else {
    SS_RETURN_IF_ERROR(
        DeployPlan(result.plan, query, vq, strategy, &result));
    result.accepted = true;
    queries_.push_back(query);
    // An accepted deployment commits resources and may register streams:
    // any batch plan memo is now stale.
    ++plan_epoch_;
  }

  auto end = std::chrono::steady_clock::now();
  result.registration_micros =
      std::chrono::duration<double, std::micro>(end - start).count();

  span.AddArg(obs::TraceArg::Num("C(P)", result.plan.TotalCost()));
  span.AddArg(obs::TraceArg::Num(
      "plans_generated",
      static_cast<double>(result.search.plans_generated)));
  span.AddArg(obs::TraceArg::Str("accepted",
                                 result.accepted ? "true" : "false"));
  if (obs::Enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    static obs::Histogram* micros = registry.GetHistogram(
        "sharing.subscribe.micros",
        obs::Histogram::ExponentialBounds(10, 4, 10));
    static obs::Histogram* costs = registry.GetHistogram(
        "sharing.plan.cost",
        obs::Histogram::ExponentialBounds(0.001, 4, 14));
    static obs::Counter* accepted =
        registry.GetCounter("sharing.queries.accepted");
    static obs::Counter* rejected =
        registry.GetCounter("sharing.queries.rejected");
    micros->Observe(result.registration_micros);
    costs->Observe(result.plan.TotalCost());
    (result.accepted ? accepted : rejected)->Add(1);
  }
  obs::EventLog& log = obs::EventLog::Default();
  if (log.ShouldLog(obs::Severity::kInfo)) {
    std::vector<obs::LogField> fields = {
        obs::F("query", result.query_id),
        obs::F("strategy", StrategyToString(strategy)),
        obs::F("vq", topology_.peer(vq).name),
        obs::F("cost", result.plan.TotalCost()),
        obs::F("accepted", result.accepted)};
    if (!result.accepted) {
      fields.push_back(obs::F("reason", result.reject_reason));
    }
    log.Log(obs::Severity::kInfo, "sharing", "query registered",
            std::move(fields));
  }

  registrations_.push_back(result);
  return result;
}

bool StreamShareSystem::IsActive(int query_id) const {
  return query_id >= 0 &&
         static_cast<size_t>(query_id) < deployments_.size() &&
         deployments_[query_id].active;
}

Status StreamShareSystem::CheckActiveSubscription(int query_id) const {
  if (query_id < 0 ||
      static_cast<size_t>(query_id) >= deployments_.size()) {
    return Status::NotFound("query " + std::to_string(query_id) +
                            " was never registered");
  }
  if (deployments_[query_id].active) return Status::Ok();
  if (static_cast<size_t>(query_id) < registrations_.size() &&
      !registrations_[query_id].accepted) {
    return Status::NotFound("query " + std::to_string(query_id) +
                            " was rejected at admission and never deployed");
  }
  return Status::NotFound("query " + std::to_string(query_id) +
                          " was already unsubscribed");
}

Status StreamShareSystem::UnregisterQuery(int query_id) {
  SS_RETURN_IF_ERROR(CheckActiveSubscription(query_id));
  QueryDeployment& deployment = deployments_[query_id];
  if (deployment.widened_a_stream) {
    return Status::InvalidArgument(
        "query " + std::to_string(query_id) +
        " widened a shared stream; widening is irreversible while later "
        "subscriptions may rely on the widened content");
  }
  // The query's own streams must have no remaining consumers (active
  // subscriptions, or deferred chains of departed ones).
  for (const QueryDeployment::InputWiring& wiring : deployment.inputs) {
    if (wiring.registered_stream < 0) continue;
    for (size_t other = 0; other < deployments_.size(); ++other) {
      if (static_cast<int>(other) == query_id ||
          !deployments_[other].active) {
        continue;
      }
      for (const QueryDeployment::InputWiring& consumer :
           deployments_[other].inputs) {
        if (consumer.reused_stream == wiring.registered_stream) {
          return Status::InvalidArgument(
              "stream #" + std::to_string(wiring.registered_stream) +
              " registered by query " + std::to_string(query_id) +
              " is still consumed by query " + std::to_string(other) +
              "; deregister consumers first");
        }
      }
    }
    if (registry_.stream(wiring.registered_stream).consumers > 0) {
      return Status::InvalidArgument(
          "stream #" + std::to_string(wiring.registered_stream) +
          " registered by query " + std::to_string(query_id) +
          " still feeds a departed subscription's deferred chain; "
          "deregister consumers first");
    }
  }

  // With no consumers left, every wiring dismantles immediately: private
  // chains detach from the shared taps, the query's streams retire, and
  // the plan's committed resources are released per input.
  deployment.active = false;
  ParkWirings(query_id, &deployment, registrations_[query_id].plan,
              nullptr);
  GcStreams();
  ++plan_epoch_;
  obs::EventLog& log = obs::EventLog::Default();
  if (log.ShouldLog(obs::Severity::kInfo)) {
    log.Log(obs::Severity::kInfo, "sharing", "query deregistered",
            {obs::F("query", query_id)});
  }
  return Status::Ok();
}

Result<StreamShareSystem::ReoptimizeReport> StreamShareSystem::Reoptimize(
    int max_migrations) {
  ReoptimizeReport report;
  // Re-optimization uses the recovery planner profile: epoch-safe reuse
  // only (a migrated query must depend only on post-migration items) and
  // no widening (irreversible, so never triggered in the background).
  PlannerOptions reopt_options = config_.planner;
  reopt_options.epoch_safe_only = true;
  reopt_options.enable_widening = false;
  Planner planner(&topology_, &state_, &registry_, cost_model_.get(),
                  reopt_options);
  planner.set_candidate_index(candidate_index_.get());

  for (int query_id = 0;
       query_id < static_cast<int>(deployments_.size()); ++query_id) {
    if (max_migrations >= 0 && report.migrated >= max_migrations) break;
    QueryDeployment& deployment = deployments_[query_id];
    if (!deployment.active || deployment.query == nullptr) continue;
    RegistrationResult& reg = registrations_[query_id];
    if (reg.strategy != Strategy::kStreamSharing) continue;
    // A query that widened a stream cannot hand its wiring over (the
    // widening is irreversible while consumers may rely on it).
    if (deployment.widened_a_stream) continue;
    ++report.examined;
    double old_cost = reg.plan.TotalCost();
    report.cost_before += old_cost;

    // Phase 1, read-only: is a strictly cheaper epoch-safe plan available
    // against today's stream population? The estimate is pessimistic —
    // the query's own committed resources still count against
    // availability — so the pass only ever migrates less, never more,
    // than a from-scratch replan would.
    Result<EvaluationPlan> estimate =
        planner.Subscribe(*deployment.query, reg.vq);
    if (!estimate.ok() ||
        !(estimate->TotalCost() < old_cost * (1.0 - 1e-9)) ||
        (config_.enforce_limits && !estimate->Feasible())) {
      report.cost_after += old_cost;
      continue;
    }

    // The estimate must not count on a stream that parking this query
    // would retire — its own orphaned streams, or a departed query's
    // stream this query keeps alive as last consumer. Such a plan can
    // never be realized (phase 2 re-plans post-park, after the GC), so
    // migrating on its promise would tear down windows for a handover
    // that lands back at the old cost — and a background pass would
    // repeat that churn forever. The retirement cascade is simulated
    // against a copy of the consumer counts, exactly TryDismantle's
    // rules, without touching the registry.
    std::map<StreamId, int> consumer_counts;
    auto count = [&](StreamId stream) -> int& {
      auto [it, inserted] = consumer_counts.try_emplace(
          stream, registry_.stream(stream).consumers);
      return it->second;
    };
    std::set<StreamId> would_retire;
    std::function<void(StreamId)> release = [&](StreamId stream) {
      if (stream < 0) return;
      if (--count(stream) > 0) return;
      // Streams with an active owner survive at zero consumers; only a
      // parked owner wiring dismantles when its last consumer leaves.
      for (const ParkedWiring& parked : parked_) {
        if (parked.wiring.registered_stream != stream ||
            would_retire.count(stream) != 0) {
          continue;
        }
        would_retire.insert(stream);
        release(parked.wiring.reused_stream);
        return;
      }
    };
    for (const QueryDeployment::InputWiring& wiring : deployment.inputs) {
      if (wiring.registered_stream >= 0 &&
          count(wiring.registered_stream) > 0) {
        continue;  // still tapped: the wiring parks intact, refs held
      }
      if (wiring.registered_stream >= 0) {
        would_retire.insert(wiring.registered_stream);
      }
      release(wiring.reused_stream);
    }
    bool self_dependent = false;
    for (const InputPlan& input : estimate->inputs) {
      if (would_retire.count(input.reused_stream) != 0) {
        self_dependent = true;
        break;
      }
    }
    if (self_dependent) {
      report.cost_after += old_cost;
      continue;
    }

    // Phase 2: the epoch-safe stream handover, exactly the recovery
    // pattern — park the old wiring (shared segments keep flowing for
    // their consumers), re-plan against the post-park state (the
    // query's resources are released and its orphaned streams retired,
    // so the plan is built from what actually survives), rebuild onto
    // the existing sink in resume mode, and GC what lost its last
    // consumer. Gap-not-garbage: the query resumes at the next window
    // boundary.
    uint64_t lost_here = 0;
    deployment.active = false;
    ParkWirings(query_id, &deployment, reg.plan, &lost_here);
    SearchStats search;
    Result<EvaluationPlan> plan =
        planner.Subscribe(*deployment.query, reg.vq, &search);
    bool restored = false;
    if (plan.ok() && (!config_.enforce_limits || plan->Feasible())) {
      engine::SinkOp* sink = reg.sink;
      Status built = BuildDeployment(*plan, deployment.query, reg.vq,
                                     reg.strategy, query_id,
                                     /*resume=*/true, &sink, &deployment);
      if (built.ok()) {
        reg.plan = std::move(plan).value();
        reg.search = std::move(search);
        restored = true;
      } else {
        deployment.active = false;
      }
    }
    lost_here += GcStreams();
    report.lost_windows += lost_here;
    ++plan_epoch_;
    if (restored) {
      ++report.migrated;
      report.cost_after += reg.plan.TotalCost();
    } else {
      ++report.torn_down;
    }
  }

  if (obs::Enabled()) {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Default();
    registry.GetCounter("sharing.reoptimize.passes")->Add(1);
    registry.GetCounter("sharing.reoptimize.migrated")->Add(report.migrated);
    registry.GetCounter("sharing.reoptimize.lost_windows")
        ->Add(report.lost_windows);
  }
  obs::EventLog& log = obs::EventLog::Default();
  if (log.ShouldLog(obs::Severity::kInfo)) {
    log.Log(obs::Severity::kInfo, "sharing", "reoptimize pass",
            {obs::F("examined", report.examined),
             obs::F("migrated", report.migrated),
             obs::F("cost_before", report.cost_before),
             obs::F("cost_after", report.cost_after),
             obs::F("lost_windows", report.lost_windows)});
  }
  return report;
}

Status StreamShareSystem::WireInput(
    const InputPlan& input,
    std::shared_ptr<const wxquery::AnalyzedQuery> query, NodeId vq,
    Strategy strategy, int query_id, bool resume,
    engine::Operator* terminal, QueryDeployment::InputWiring* wiring) {
  const cost::CostParams& params = cost_model_->params();
  (void)query;
  (void)vq;
  wiring->reused_stream = input.reused_stream;
  registry_.AddConsumer(input.reused_stream);

  // Stream widening: relax the deployed producer operators and update the
  // registry before the new subscription attaches. Consumers are immune
  // by construction (their residual/compensation operators re-filter).
  if (input.widening.has_value()) {
    const WideningSpec& widening = *input.widening;
    DeployedStream& deployed = taps_[widening.stream];
    if (deployed.select != nullptr) {
      deployed.select->set_predicates(widening.widened_selection);
    }
    if (deployed.project != nullptr && !widening.widened_output.empty()) {
      deployed.project->set_output_paths(widening.widened_output);
    }
    RegisteredStream& record = registry_.mutable_stream(widening.stream);
    record.props = widening.widened_props;
    record.rate_kbps = widening.new_rate_kbps;
    registry_.NotifyUpdated(widening.stream);
  }

  // Locate the tap operator where the reused stream is intercepted.
  const RegisteredStream& reused = registry_.stream(input.reused_stream);
  auto route_it = std::find(reused.route.begin(), reused.route.end(),
                            input.reuse_node);
  if (route_it == reused.route.end()) {
    return Status::Internal("reuse node is not on the reused stream's "
                            "route");
  }
  size_t tap_index =
      static_cast<size_t>(route_it - reused.route.begin());
  engine::Operator* const tap =
      taps_[input.reused_stream].taps[tap_index];
  engine::Operator* current = tap;
  wiring->tap = tap;

  // Records the head of this query's private chain — the operator the tap
  // must shed on deregistration — and, once past the stream tail, the
  // head of the private tail behind a registered shared stream.
  bool past_tail = false;
  auto attach = [&](engine::Operator* op) {
    if (current == tap && wiring->first == nullptr) wiring->first = op;
    if (past_tail && wiring->private_head == nullptr) {
      wiring->private_head = op;
    }
    current->AddDownstream(op);
    current = op;
    wiring->private_ops.push_back(op);
  };

  auto make_engine_op =
      [&](const EngineOpSpec& spec) -> Result<engine::Operator*> {
    engine::Operator* op = nullptr;
    std::string label =
        "q" + std::to_string(query_id) + ":" + spec.ToString();
    switch (spec.kind) {
      case EngineOpSpec::Kind::kSelect:
        op = graph_.Add<engine::SelectOp>(label, spec.predicates);
        break;
      case EngineOpSpec::Kind::kProject:
        op = graph_.Add<engine::ProjectOp>(label, spec.output_paths);
        break;
      case EngineOpSpec::Kind::kWindowAgg:
        op = graph_.Add<engine::WindowAggOp>(
            label, spec.func, spec.aggregated_element, spec.window,
            resume);
        break;
      case EngineOpSpec::Kind::kAggCombine:
        op = graph_.Add<engine::AggCombineOp>(label, spec.func,
                                              spec.fine_window, spec.window);
        break;
      case EngineOpSpec::Kind::kAggFilter:
        op = graph_.Add<engine::AggFilterOp>(label, spec.func,
                                             spec.predicates);
        break;
      case EngineOpSpec::Kind::kWindowContents:
        op = graph_.Add<engine::WindowContentsOp>(label, spec.window,
                                                  resume);
        break;
    }
    op->SetAccounting(&metrics_, spec.node,
                      BaseLoadFor(spec.kind, params) *
                          topology_.peer(spec.node).pindex);
    return op;
  };

  // Operators at the reuse node run before transmission; compensation
  // operators never do (they belong behind the shared tap points).
  engine::SelectOp* producer_select = nullptr;
  engine::ProjectOp* producer_project = nullptr;
  for (const EngineOpSpec& spec : input.ops) {
    if (spec.compensation || spec.node != input.reuse_node ||
        input.ships_raw_stream) {
      continue;
    }
    SS_ASSIGN_OR_RETURN(engine::Operator * op, make_engine_op(spec));
    if (spec.kind == EngineOpSpec::Kind::kSelect) {
      producer_select = static_cast<engine::SelectOp*>(op);
    }
    if (spec.kind == EngineOpSpec::Kind::kProject) {
      producer_project = static_cast<engine::ProjectOp*>(op);
    }
    attach(op);
  }

  // Transmission along the route: one LinkOp per hop, billed to the
  // sending peer.
  std::vector<engine::Operator*> new_taps{current};
  if (input.new_stream.has_value()) {
    const std::vector<NodeId>& route = input.new_stream->route;
    SS_ASSIGN_OR_RETURN(std::vector<network::LinkId> links,
                        topology_.LinksOnPath(route));
    for (size_t i = 0; i < links.size(); ++i) {
      NodeId sender = route[i];
      engine::Operator* link_op = graph_.Add<engine::LinkOp>(
          "link:" + topology_.peer(sender).name + "->" +
              topology_.peer(route[i + 1]).name,
          &metrics_, links[i]);
      link_op->SetAccounting(&metrics_, sender,
                             params.bload_transport *
                                 topology_.peer(sender).pindex);
      attach(link_op);
      new_taps.push_back(link_op);
    }
  }

  // Everything attached from here on is private to this query even when
  // it registers a shared stream — `current` is the stream's final tap,
  // and Unsubscribe cuts behind it while other consumers remain.
  wiring->stream_tail = current;
  wiring->tail_boundary = wiring->private_ops.size();
  past_tail = true;

  // Operators at the query's super-peer: data shipping places everything
  // here, and compensation operators always deploy behind the tap points.
  for (const EngineOpSpec& spec : input.ops) {
    if (!spec.compensation && spec.node == input.reuse_node &&
        !input.ships_raw_stream) {
      continue;
    }
    SS_ASSIGN_OR_RETURN(engine::Operator * op, make_engine_op(spec));
    attach(op);
  }

  // Hand the input's stream to the query's terminal (the restructuring
  // operator, or one combination port for multi-input subscriptions).
  if (current == tap && wiring->first == nullptr) wiring->first = terminal;
  if (wiring->private_head == nullptr) wiring->private_head = terminal;
  current->AddDownstream(terminal);

  // Under stream sharing, the new (pre-restructuring) stream becomes a
  // reuse candidate for later subscriptions.
  if (strategy == Strategy::kStreamSharing &&
      input.new_stream.has_value()) {
    RegisteredStream stream;
    stream.variant_of = input.input_stream_name;
    stream.props = input.new_stream->props;
    stream.source_node = input.new_stream->source_node;
    stream.target_node = input.new_stream->target_node;
    stream.route = input.new_stream->route;
    stream.rate_kbps = input.new_stream->rate_kbps;
    stream.upstream = input.reused_stream;
    // Source latency of the new stream: the reused stream's own source
    // latency plus the route prefix up to the tap node.
    stream.source_latency_ms = reused.source_latency_ms;
    {
      auto tap_it = std::find(reused.route.begin(), reused.route.end(),
                              input.reuse_node);
      if (tap_it != reused.route.end()) {
        std::vector<NodeId> prefix(reused.route.begin(), tap_it + 1);
        Result<double> prefix_latency = topology_.PathLatencyMs(prefix);
        if (prefix_latency.ok()) {
          stream.source_latency_ms += *prefix_latency;
        }
      }
    }
    // Widenable: the stream owns reconfigurable σ/Π producers and is not
    // an aggregate/window stream.
    bool plain = stream.props.aggregation() == nullptr;
    for (const properties::Operator& op : stream.props.operators) {
      if (std::holds_alternative<properties::UserDefinedOp>(op)) {
        plain = false;
      }
    }
    stream.widenable =
        plain && (producer_select != nullptr || producer_project != nullptr);
    StreamId id = registry_.Register(std::move(stream));
    wiring->registered_stream = id;
    DeployedStream& deployed = taps_[id];
    deployed.taps = new_taps;
    deployed.select = producer_select;
    deployed.project = producer_project;
  }

  // Commit the input's resource usage to the network state.
  for (const auto& [link, kbps] : input.added_bandwidth_kbps) {
    state_.AddBandwidth(link, kbps);
  }
  for (const auto& [peer, load] : input.added_load) {
    state_.AddLoad(peer, load);
  }
  return Status::Ok();
}

Status StreamShareSystem::BuildDeployment(
    const EvaluationPlan& plan,
    std::shared_ptr<const wxquery::AnalyzedQuery> query, NodeId vq,
    Strategy strategy, int query_id, bool resume, engine::SinkOp** sink,
    QueryDeployment* deployment) {
  const cost::CostParams& params = cost_model_->params();
  if (plan.inputs.size() != query->bindings.size()) {
    return Status::Internal("plan inputs do not match query bindings");
  }

  // The query's terminal stage: a restructuring operator for single-input
  // subscriptions, or a combination operator with one port per input (the
  // paper's final post-processing step, whose output is never shared).
  std::vector<engine::Operator*> terminals;
  engine::Operator* sink_parent = nullptr;
  if (query->bindings.size() == 1) {
    engine::Operator* restructure = graph_.Add<engine::RestructureOp>(
        "q" + std::to_string(query_id) + ":restructure", query);
    restructure->SetAccounting(
        &metrics_, vq,
        params.bload_restructure * topology_.peer(vq).pindex);
    terminals.push_back(restructure);
    sink_parent = restructure;
  } else {
    auto* combiner = graph_.Add<engine::CombineOp>(
        "q" + std::to_string(query_id) + ":combine", query);
    for (size_t i = 0; i < query->bindings.size(); ++i) {
      engine::Operator* port = graph_.Add<engine::CombinePortOp>(
          "q" + std::to_string(query_id) + ":port" + std::to_string(i),
          combiner, i);
      port->SetAccounting(
          &metrics_, vq,
          params.bload_restructure * topology_.peer(vq).pindex);
      terminals.push_back(port);
    }
    sink_parent = combiner;
  }
  // Recovery re-plans into the query's existing sink so its counters (and
  // anything holding a pointer to it) survive the failure.
  if (*sink == nullptr) {
    *sink = graph_.Add<engine::SinkOp>(
        "q" + std::to_string(query_id) + ":sink", config_.keep_results);
    if (config_.measure_latency) {
      (*sink)->EnableLatencyRecording("q" + std::to_string(query_id));
    }
  }
  sink_parent->AddDownstream(*sink);

  deployment->query = query;
  deployment->inputs.clear();
  deployment->inputs.resize(plan.inputs.size());
  deployment->widened_a_stream = false;
  for (size_t i = 0; i < plan.inputs.size(); ++i) {
    SS_RETURN_IF_ERROR(WireInput(plan.inputs[i], query, vq, strategy,
                                 query_id, resume, terminals[i],
                                 &deployment->inputs[i]));
    if (plan.inputs[i].widening.has_value()) {
      deployment->widened_a_stream = true;
    }
  }
  deployment->active = true;
  return Status::Ok();
}

Status StreamShareSystem::DeployPlan(
    const EvaluationPlan& plan,
    std::shared_ptr<const wxquery::AnalyzedQuery> query, NodeId vq,
    Strategy strategy, RegistrationResult* result) {
  engine::SinkOp* sink = nullptr;
  QueryDeployment deployment;
  SS_RETURN_IF_ERROR(BuildDeployment(plan, query, vq, strategy,
                                     result->query_id,
                                     config_.resume_mode, &sink,
                                     &deployment));
  result->sink = sink;
  deployments_.push_back(std::move(deployment));
  return Status::Ok();
}

namespace {

Status CollectEntries(
    const std::map<std::string, engine::Operator*>& stream_entries,
    const std::map<std::string, std::vector<engine::ItemPtr>>&
        items_by_stream,
    std::vector<engine::Operator*>* entries,
    std::vector<std::vector<engine::ItemPtr>>* item_lists) {
  for (const auto& [name, items] : items_by_stream) {
    auto it = stream_entries.find(name);
    if (it == stream_entries.end()) {
      return Status::NotFound("stream '" + name + "' is not registered");
    }
    entries->push_back(it->second);
    item_lists->push_back(items);
  }
  return Status::Ok();
}

}  // namespace

Status StreamShareSystem::Run(
    const std::map<std::string, std::vector<engine::ItemPtr>>&
        items_by_stream) {
  engine::latency::ScopedEnabled stamping(config_.measure_latency);
  if (config_.executor == ExecutorKind::kParallel) {
    return RunParallel(items_by_stream);
  }
  if (config_.executor == ExecutorKind::kTransport) {
    return RunTransport(items_by_stream);
  }
  std::vector<engine::Operator*> entries;
  std::vector<std::vector<engine::ItemPtr>> item_lists;
  SS_RETURN_IF_ERROR(CollectEntries(stream_entries_, items_by_stream,
                                    &entries, &item_lists));
  if (config_.record_path) {
    return engine::RunStreamsBatched(entries, item_lists,
                                     config_.parallel.batch_size,
                                     /*adopt=*/true, /*finish=*/true);
  }
  return engine::RunStreams(entries, item_lists, /*finish=*/true);
}

Status StreamShareSystem::RunBatches(
    std::map<std::string, std::vector<engine::ItemBatch>>*
        batches_by_stream) {
  engine::latency::ScopedEnabled stamping(config_.measure_latency);
  if (config_.executor != ExecutorKind::kSerial) {
    return Status::InvalidArgument(
        "RunBatches supports the serial executor only");
  }
  std::vector<engine::Operator*> entries;
  std::vector<std::vector<engine::ItemBatch>> batch_lists;
  for (auto& [name, batches] : *batches_by_stream) {
    auto it = stream_entries_.find(name);
    if (it == stream_entries_.end()) {
      return Status::NotFound("no registered stream named '" + name + "'");
    }
    entries.push_back(it->second);
    batch_lists.push_back(std::move(batches));
  }
  return engine::RunBatchStreams(entries, &batch_lists, /*finish=*/true);
}

engine::ParallelOptions StreamShareSystem::EffectiveParallelOptions() const {
  engine::ParallelOptions options = config_.parallel;
  options.adopt_records = options.adopt_records && config_.record_path;
  return options;
}

Status StreamShareSystem::RunParallel(
    const std::map<std::string, std::vector<engine::ItemPtr>>&
        items_by_stream) {
  engine::latency::ScopedEnabled stamping(config_.measure_latency);
  std::vector<engine::Operator*> entries;
  std::vector<std::vector<engine::ItemPtr>> item_lists;
  SS_RETURN_IF_ERROR(CollectEntries(stream_entries_, items_by_stream,
                                    &entries, &item_lists));
  engine::ParallelExecutor executor(EffectiveParallelOptions());
  Status status = executor.Run(entries, item_lists);
  parallel_stats_ = executor.worker_stats();
  return status;
}

Status StreamShareSystem::RunTransport(
    const std::map<std::string, std::vector<engine::ItemPtr>>&
        items_by_stream) {
  std::vector<engine::Operator*> entries;
  std::vector<std::vector<engine::ItemPtr>> item_lists;
  SS_RETURN_IF_ERROR(CollectEntries(stream_entries_, items_by_stream,
                                    &entries, &item_lists));
  return RunTransportImpl(entries, item_lists, /*finish=*/true);
}

Status StreamShareSystem::RunTransportImpl(
    const std::vector<engine::Operator*>& entries,
    const std::vector<std::vector<engine::ItemPtr>>& item_lists,
    bool finish) {
  engine::latency::ScopedEnabled stamping(config_.measure_latency);
  std::unique_ptr<transport::Transport> transport;
  if (config_.transport == "loopback") {
    transport = std::make_unique<transport::LoopbackTransport>();
  } else if (config_.transport == "tcp") {
    transport = std::make_unique<transport::TcpTransport>(config_.tcp);
  } else {
    return Status::InvalidArgument("unknown transport '" +
                                   config_.transport +
                                   "' (expected loopback or tcp)");
  }
  transport::RunnerOptions options;
  options.parallel = EffectiveParallelOptions();
  options.flow = config_.flow;
  options.faults = config_.faults;
  options.mode = config_.transport_processes
                     ? transport::RunnerOptions::Mode::kProcesses
                     : transport::RunnerOptions::Mode::kThreads;
  transport::PartitionedRunner runner(transport.get(), options);
  Status status = runner.Run(entries, item_lists, finish);
  transport_stats_ = runner.run_stats();
  // The transport runner's workers mirror the parallel executor's, so
  // their queue stats export through the same engine.worker.* gauges.
  parallel_stats_ = transport_stats_.workers;
  // Liveness detection: a sender that exhausted its credit-wait retries
  // observed a stalled-or-gone receiver. Promote the symptom into
  // suspicion of the receiving worker's peers — advisory only (routing is
  // unchanged); FailPeer confirms and commits recovery.
  if (status.IsDeadlineExceeded()) {
    for (const transport::ChannelTrafficStats& channel :
         transport_stats_.channels) {
      if (channel.stats.deadline_failures == 0) continue;
      if (channel.target_worker >= transport_stats_.workers.size()) {
        continue;
      }
      for (network::NodeId peer :
           transport_stats_.workers[channel.target_worker].peers) {
        state_.mutable_health().MarkSuspect(
            peer, "transport: " + status.message());
      }
    }
  }
  return status;
}

Status StreamShareSystem::Feed(
    const std::map<std::string, std::vector<engine::ItemPtr>>&
        items_by_stream) {
  engine::latency::ScopedEnabled stamping(config_.measure_latency);
  std::vector<engine::Operator*> entries;
  std::vector<std::vector<engine::ItemPtr>> item_lists;
  // A stream whose source peer failed no longer produces: its batches are
  // dropped so the harness can keep feeding one item map across a failure.
  for (const auto& [name, items] : items_by_stream) {
    const RegisteredStream* original = registry_.FindOriginal(name);
    if (original == nullptr) {
      return Status::NotFound("stream '" + name + "' is not registered");
    }
    if (original->retired) continue;
    entries.push_back(stream_entries_.at(name));
    item_lists.push_back(items);
  }
  switch (config_.executor) {
    case ExecutorKind::kSerial:
      if (config_.record_path) {
        return engine::RunStreamsBatched(entries, item_lists,
                                         config_.parallel.batch_size,
                                         /*adopt=*/true, /*finish=*/false);
      }
      return engine::RunStreams(entries, item_lists, /*finish=*/false);
    case ExecutorKind::kParallel: {
      engine::ParallelExecutor executor(EffectiveParallelOptions());
      Status status = executor.Run(entries, item_lists, /*finish=*/false);
      parallel_stats_ = executor.worker_stats();
      return status;
    }
    case ExecutorKind::kTransport:
      return RunTransportImpl(entries, item_lists, /*finish=*/false);
  }
  return Status::Internal("unknown executor kind");
}

Status StreamShareSystem::Shutdown() {
  for (const auto& [name, entry] : stream_entries_) {
    SS_RETURN_IF_ERROR(entry->Finish());
  }
  return Status::Ok();
}

int StreamShareSystem::accepted_count() const {
  int count = 0;
  for (const RegistrationResult& result : registrations_) {
    if (result.accepted) ++count;
  }
  return count;
}

int StreamShareSystem::rejected_count() const {
  return static_cast<int>(registrations_.size()) - accepted_count();
}

std::string StreamShareSystem::DescribeDeployment() const {
  std::string out = "=== streams ===\n";
  for (const RegisteredStream& stream : registry_.streams()) {
    out += "#" + std::to_string(stream.id) + " ";
    if (stream.retired) out += "[retired] ";
    if (stream.IsOriginal()) {
      out += "original '" + stream.variant_of + "'";
    } else {
      out += stream.props.ToString();
    }
    out += "\n    route [";
    for (size_t i = 0; i < stream.route.size(); ++i) {
      if (i > 0) out += ",";
      out += topology_.peer(stream.route[i]).name;
    }
    out += "]  ~" + std::to_string(stream.rate_kbps) + " kbps";
    // Active consumers.
    std::string consumers;
    for (size_t q = 0; q < deployments_.size(); ++q) {
      if (!deployments_[q].active) continue;
      for (const QueryDeployment::InputWiring& wiring :
           deployments_[q].inputs) {
        if (wiring.reused_stream == stream.id) {
          if (!consumers.empty()) consumers += ",";
          consumers += "q" + std::to_string(q);
        }
      }
    }
    if (!consumers.empty()) out += "  consumers {" + consumers + "}";
    out += "\n";
  }
  out += "=== subscriptions ===\n";
  for (size_t q = 0; q < registrations_.size(); ++q) {
    const RegistrationResult& registration = registrations_[q];
    out += "q" + std::to_string(q) + " ";
    if (!registration.accepted) {
      out += "[rejected: " + registration.reject_reason + "]\n";
      continue;
    }
    out += IsActive(static_cast<int>(q)) ? "[active] " : "[deregistered] ";
    out += registration.plan.ToString() + "\n";
  }
  return out;
}

void StreamShareSystem::ExportMetrics(obs::MetricsRegistry* registry) const {
  // Absolute measurements re-exported on every call: gauges, not
  // counters, so repeated exports overwrite instead of double-counting.
  for (size_t l = 0; l < topology_.link_count(); ++l) {
    network::LinkId link = static_cast<network::LinkId>(l);
    const network::Link& edge = topology_.link(link);
    std::string name = topology_.peer(edge.a).name + "-" +
                       topology_.peer(edge.b).name;
    registry->GetGauge("engine.link." + name + ".bytes")
        ->Set(static_cast<double>(metrics_.BytesOnLink(link)));
    registry->GetGauge("network.link." + name + ".utilization")
        ->Set(state_.RelativeBandwidthUse(link));
    registry->GetGauge("network.link." + name + ".peak_kbps")
        ->Set(state_.PeakBandwidthKbps(link));
    registry->GetGauge("network.link." + name + ".up")
        ->Set(state_.health().LinkUp(link) ? 1.0 : 0.0);
  }
  for (size_t p = 0; p < topology_.peer_count(); ++p) {
    network::NodeId peer = static_cast<network::NodeId>(p);
    const std::string& name = topology_.peer(peer).name;
    registry->GetGauge("engine.peer." + name + ".work")
        ->Set(metrics_.WorkAtPeer(peer));
    registry->GetGauge("engine.peer." + name + ".items")
        ->Set(static_cast<double>(
            metrics_.OperatorInvocationsAtPeer(peer)));
    registry->GetGauge("network.peer." + name + ".utilization")
        ->Set(state_.RelativeLoadUse(peer));
    registry->GetGauge("network.peer." + name + ".peak_load")
        ->Set(state_.PeakLoad(peer));
    // 0 = alive, 1 = suspect, 2 = dead.
    registry->GetGauge("network.peer." + name + ".health")
        ->Set(static_cast<double>(state_.health().status(peer)));
  }
  // Transport measurements of the most recent RunTransport: measured
  // traffic per topology link, next to the committed bandwidth u_b(e)
  // the cost model predicted for that link.
  if (!transport_stats_.transport.empty()) {
    std::map<int, uint64_t> encoded_per_link;
    std::map<int, uint64_t> items_per_link;
    for (const transport::EdgeTrafficStats& edge : transport_stats_.edges) {
      if (edge.link < 0) continue;
      encoded_per_link[edge.link] += edge.encoded_bytes;
      items_per_link[edge.link] += edge.items;
    }
    for (const auto& [link, encoded_bytes] : encoded_per_link) {
      const network::Link& edge =
          topology_.link(static_cast<network::LinkId>(link));
      std::string name = topology_.peer(edge.a).name + "-" +
                         topology_.peer(edge.b).name;
      registry->GetGauge("transport.link." + name + ".encoded_bytes")
          ->Set(static_cast<double>(encoded_bytes));
      registry->GetGauge("transport.link." + name + ".items")
          ->Set(static_cast<double>(items_per_link[link]));
      registry->GetGauge("transport.link." + name + ".predicted_kbps")
          ->Set(state_.UsedBandwidthKbps(
              static_cast<network::LinkId>(link)));
    }
    uint64_t wire_bytes = 0, frames = 0, stalls = 0, stall_ns = 0;
    for (const transport::ChannelTrafficStats& channel :
         transport_stats_.channels) {
      wire_bytes += channel.stats.bytes_sent;
      frames += channel.stats.frames_sent;
      stalls += channel.stats.credit_stalls;
      stall_ns += channel.stats.credit_stall_ns;
    }
    registry->GetGauge("transport.run.wire_bytes")
        ->Set(static_cast<double>(wire_bytes));
    registry->GetGauge("transport.run.frames")
        ->Set(static_cast<double>(frames));
    registry->GetGauge("transport.run.credit_stalls")
        ->Set(static_cast<double>(stalls));
    registry->GetGauge("transport.run.credit_stall_ns")
        ->Set(static_cast<double>(stall_ns));
    registry->GetGauge("transport.run.processes")
        ->Set(static_cast<double>(transport_stats_.process_count));
  }
  // Batching configuration in effect, so a metrics snapshot records the
  // knobs a run's queue/blocking numbers were measured under.
  registry->GetGauge("engine.queue.capacity")
      ->Set(static_cast<double>(config_.parallel.queue_capacity));
  registry->GetGauge("engine.batch.size")
      ->Set(static_cast<double>(config_.parallel.batch_size));
  registry->GetGauge("engine.record_path")
      ->Set(config_.record_path ? 1.0 : 0.0);
  for (size_t w = 0; w < parallel_stats_.size(); ++w) {
    const engine::ParallelWorkerStats& stats = parallel_stats_[w];
    std::string prefix = "engine.worker." + std::to_string(w);
    registry->GetGauge(prefix + ".entries_received")
        ->Set(static_cast<double>(stats.entries_received));
    registry->GetGauge(prefix + ".producer_blocked_ns")
        ->Set(static_cast<double>(stats.producer_blocked_ns));
    registry->GetGauge(prefix + ".consumer_blocked_ns")
        ->Set(static_cast<double>(stats.consumer_blocked_ns));
    registry->GetGauge(prefix + ".max_queue_depth")
        ->Set(static_cast<double>(stats.max_queue_depth));
  }
  // Measured end-to-end latency per query. The sink histograms record
  // microseconds (merged across worker processes in transport-process
  // mode); the summary quantiles re-export as millisecond gauges so a
  // JSON/CSV snapshot carries per-query p50/p95/p99 without the reader
  // having to interpolate buckets itself.
  for (const RegistrationResult& registration : registrations_) {
    if (!registration.accepted || registration.sink == nullptr) continue;
    const obs::Histogram* hist = registration.sink->latency_histogram();
    if (hist == nullptr || hist->Count() == 0) continue;
    std::string prefix =
        "latency.query.q" + std::to_string(registration.query_id);
    registry->GetGauge(prefix + ".p50_ms")
        ->Set(hist->Quantile(0.50) / 1000.0);
    registry->GetGauge(prefix + ".p95_ms")
        ->Set(hist->Quantile(0.95) / 1000.0);
    registry->GetGauge(prefix + ".p99_ms")
        ->Set(hist->Quantile(0.99) / 1000.0);
    registry->GetGauge(prefix + ".max_ms")->Set(hist->Max() / 1000.0);
    registry->GetGauge(prefix + ".stamped_items")
        ->Set(static_cast<double>(hist->Count()));
  }
  ExportLatencyAudit(CollectLatencyAudit(registrations_), registry);
}

}  // namespace streamshare::sharing
