#include "sharing/latency_audit.h"

#include <cmath>
#include <cstdio>

namespace streamshare::sharing {

std::vector<QueryLatencyAudit> CollectLatencyAudit(
    const std::vector<RegistrationResult>& registrations) {
  std::vector<QueryLatencyAudit> audits;
  for (const RegistrationResult& registration : registrations) {
    if (!registration.accepted || registration.sink == nullptr) continue;
    QueryLatencyAudit audit;
    audit.query_id = registration.query_id;
    for (const InputPlan& input : registration.plan.inputs) {
      if (input.estimated_latency_ms > audit.predicted_ms) {
        audit.predicted_ms = input.estimated_latency_ms;
      }
    }
    const obs::Histogram* hist = registration.sink->latency_histogram();
    if (hist != nullptr && hist->Count() > 0) {
      audit.stamped_items = hist->Count();
      audit.measured_p50_ms = hist->Quantile(0.50) / 1000.0;
      audit.measured_p99_ms = hist->Quantile(0.99) / 1000.0;
      audit.abs_error_ms =
          std::fabs(audit.measured_p50_ms - audit.predicted_ms);
      if (audit.predicted_ms > 0.0) {
        audit.ratio = audit.measured_p50_ms / audit.predicted_ms;
      }
    }
    audits.push_back(audit);
  }
  return audits;
}

void ExportLatencyAudit(const std::vector<QueryLatencyAudit>& audits,
                        obs::MetricsRegistry* registry) {
  for (const QueryLatencyAudit& audit : audits) {
    if (!audit.has_measurement()) continue;
    std::string prefix = "latency.audit.q" + std::to_string(audit.query_id);
    registry->GetGauge(prefix + ".predicted_ms")->Set(audit.predicted_ms);
    registry->GetGauge(prefix + ".measured_p50_ms")
        ->Set(audit.measured_p50_ms);
    registry->GetGauge(prefix + ".measured_p99_ms")
        ->Set(audit.measured_p99_ms);
    registry->GetGauge(prefix + ".abs_error_ms")->Set(audit.abs_error_ms);
    registry->GetGauge(prefix + ".ratio")->Set(audit.ratio);
  }
}

std::string FormatLatencyReport(
    const std::vector<QueryLatencyAudit>& audits) {
  std::string out = "=== latency audit (predicted vs measured) ===\n";
  char line[160];
  std::snprintf(line, sizeof(line), "%-6s %12s %12s %12s %10s %8s %8s\n",
                "query", "predicted_ms", "meas_p50_ms", "meas_p99_ms",
                "items", "err_ms", "ratio");
  out += line;
  for (const QueryLatencyAudit& audit : audits) {
    if (!audit.has_measurement()) {
      std::snprintf(line, sizeof(line), "q%-5d %12.3f %12s %12s %10s\n",
                    audit.query_id, audit.predicted_ms, "-", "-",
                    "(no stamps)");
      out += line;
      continue;
    }
    std::snprintf(
        line, sizeof(line),
        "q%-5d %12.3f %12.3f %12.3f %10llu %8.3f %8.2f\n", audit.query_id,
        audit.predicted_ms, audit.measured_p50_ms, audit.measured_p99_ms,
        static_cast<unsigned long long>(audit.stamped_items),
        audit.abs_error_ms, audit.ratio);
    out += line;
  }
  if (audits.empty()) out += "(no accepted queries)\n";
  return out;
}

}  // namespace streamshare::sharing
