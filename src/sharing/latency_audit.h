// Predicted-vs-measured latency audit (the cost-model feedback loop).
//
// Planning estimates a one-way delivery latency for every input it wires
// (InputPlan::estimated_latency_ms, from link latencies along the reuse
// chain). The measured-latency plane (engine/latency.h) independently
// measures what actually happened: every item is stamped at ingress and
// its end-to-end latency recorded into the query sink's histogram. The
// audit pairs the two per query, so a systematic gap between the cost
// model and reality is a number in a metrics snapshot — not a hunch.
//
// Prediction and measurement deliberately measure different clocks: the
// prediction is modeled network propagation over the simulated topology,
// the measurement is real wall time through this process's operators,
// queues, and transport pipes. The audit's value is the trend (ratio
// stability across queries and runs), not absolute agreement.

#ifndef STREAMSHARE_SHARING_LATENCY_AUDIT_H_
#define STREAMSHARE_SHARING_LATENCY_AUDIT_H_

#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "sharing/system.h"

namespace streamshare::sharing {

/// One query's predicted-vs-measured pairing.
struct QueryLatencyAudit {
  int query_id = -1;
  /// The plan's estimate: max over the query's inputs (the slowest input
  /// gates a multi-input query's results).
  double predicted_ms = 0.0;
  /// Measured at the sink, bucket-interpolated from the e2e histogram.
  /// 0 when no stamped item reached the sink (stamping off, or no run).
  double measured_p50_ms = 0.0;
  double measured_p99_ms = 0.0;
  uint64_t stamped_items = 0;
  double abs_error_ms = 0.0;  ///< |measured_p50 - predicted|
  /// measured_p50 / predicted; 0 when predicted is 0 (co-located input).
  double ratio = 0.0;

  bool has_measurement() const { return stamped_items > 0; }
};

/// Pairs every accepted registration's plan estimate with its sink's
/// measured histogram. Rejected / torn-down queries are skipped.
std::vector<QueryLatencyAudit> CollectLatencyAudit(
    const std::vector<RegistrationResult>& registrations);

/// Exports audits as latency.audit.q<id>.{predicted_ms, measured_p50_ms,
/// measured_p99_ms, abs_error_ms, ratio} gauges.
void ExportLatencyAudit(const std::vector<QueryLatencyAudit>& audits,
                        obs::MetricsRegistry* registry);

/// Human-readable audit table (streamshare_sim --latency-report).
std::string FormatLatencyReport(
    const std::vector<QueryLatencyAudit>& audits);

}  // namespace streamshare::sharing

#endif  // STREAMSHARE_SHARING_LATENCY_AUDIT_H_
