// Pluggable peer-to-peer transports. A Transport manufactures duplex
// frame pipes; the flow-control layer (flow.h) runs the DATA/EOS/CREDIT/
// ERROR protocol over one pipe per cross-worker channel, so every
// transport gets credit-based backpressure, timeouts, and fault
// injection for free.

#ifndef STREAMSHARE_TRANSPORT_TRANSPORT_H_
#define STREAMSHARE_TRANSPORT_TRANSPORT_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "transport/wire.h"

namespace streamshare::transport {

/// One end of a duplex frame pipe. Each end is driven by exactly one
/// thread (or, after fork, one process); the two ends may live in
/// different threads or processes depending on the transport.
class PipeEnd {
 public:
  virtual ~PipeEnd() = default;

  /// Sends one frame at `version` (kBaseWireVersion for extension-free
  /// frames, kWireVersion for DATA with a latency stamp). Blocks until
  /// the transport accepted it. Unavailable once the peer end is closed.
  virtual Status SendFrame(FrameType type, std::string_view body,
                           uint8_t version) = 0;
  Status SendFrame(FrameType type, std::string_view body) {
    return SendFrame(type, body, kBaseWireVersion);
  }

  /// Receives the next frame sent by the peer end into *type / *body,
  /// and its wire version into *version (may be null when the caller
  /// does not care). Blocks up to `timeout_ms` (<0 = forever).
  /// DeadlineExceeded on timeout, Unavailable when the peer closed with
  /// nothing left to read.
  virtual Status RecvFrame(FrameType* type, std::string* body,
                           int timeout_ms, uint8_t* version) = 0;
  Status RecvFrame(FrameType* type, std::string* body, int timeout_ms) {
    return RecvFrame(type, body, timeout_ms, nullptr);
  }

  /// Closes this end; the peer's RecvFrame drains then reports
  /// Unavailable, its SendFrame may fail. Idempotent.
  virtual void Close() = 0;

  /// Bytes this end has put on the wire (frame overhead included). The
  /// loopback transport hands frames over without a byte copy and
  /// truthfully reports 0.
  virtual uint64_t wire_bytes_sent() const = 0;
};

/// A connected duplex pipe: ends[0] talks to ends[1].
struct PipePair {
  std::unique_ptr<PipeEnd> ends[2];
};

class Transport {
 public:
  virtual ~Transport() = default;

  virtual const char* name() const = 0;

  /// Creates a connected pipe. `label` names it in errors.
  virtual Status CreatePipe(const std::string& label, PipePair* pair) = 0;

  /// True if the two ends of a pipe stay usable when split across
  /// fork()ed processes (each process keeping one end).
  virtual bool SupportsProcesses() const = 0;
};

}  // namespace streamshare::transport

#endif  // STREAMSHARE_TRANSPORT_TRANSPORT_H_
