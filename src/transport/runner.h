// Executes a deployed operator network over a pluggable transport. The
// operator graph is partitioned with engine::PlanPeerPartitions (the same
// planner the in-process parallel executor uses), one channel —
// flow-controlled per flow.h — connects every pair of workers joined by a
// cross edge, and each worker drains a bounded LinkQueue exactly like a
// parallel-executor worker. Two modes:
//
//   kThreads    every worker is a thread of this process (any transport;
//               this is how the TCP stack runs under TSAN)
//   kProcesses  every worker fork()s into its own OS process (requires a
//               transport whose pipes survive fork, i.e. TCP); children
//               report metrics shards, sink counts, and traffic stats
//               back over a pipe and the parent merges them
//
// Operator indices from the partition plan double as cross-process
// operator ids: discovery order is deterministic, so parent and children
// agree on every index without any registration protocol.

#ifndef STREAMSHARE_TRANSPORT_RUNNER_H_
#define STREAMSHARE_TRANSPORT_RUNNER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "engine/parallel_executor.h"
#include "engine/partition.h"
#include "transport/flow.h"
#include "transport/transport.h"

namespace streamshare::transport {

struct RunnerOptions {
  engine::ParallelOptions parallel;
  FlowOptions flow;
  /// Applied to every channel's sender (drop/delay/duplicate frames);
  /// wired to the robustness tests.
  FaultPlan faults;

  enum class Mode { kThreads, kProcesses };
  Mode mode = Mode::kThreads;
};

/// Traffic of one cross-worker edge in the last run.
struct EdgeTrafficStats {
  size_t source_op = 0;  ///< partition-plan op index
  size_t target_op = 0;
  size_t source_worker = 0;
  size_t target_worker = 0;
  /// Topology link the source operator transmits over, if the source is
  /// a LinkOp; -1 otherwise.
  int link = -1;
  uint64_t items = 0;
  uint64_t encoded_bytes = 0;  ///< codec output, before frame overhead
};

/// Traffic of one worker-pair channel in the last run (sender side).
struct ChannelTrafficStats {
  size_t source_worker = 0;
  size_t target_worker = 0;
  ChannelStats stats;
};

/// Everything the last Run measured, for System::ExportMetrics.
struct TransportRunStats {
  std::string transport;
  size_t process_count = 0;  ///< children forked (0 in thread mode)
  std::vector<EdgeTrafficStats> edges;
  std::vector<ChannelTrafficStats> channels;
  std::vector<engine::ParallelWorkerStats> workers;
};

class PartitionedRunner {
 public:
  /// `transport` must outlive the runner.
  PartitionedRunner(Transport* transport, RunnerOptions options);

  /// Feeds `item_lists[s]` into `entries[s]` and runs to end of stream —
  /// the same contract as ParallelExecutor::Run. The graph is restored
  /// to its serial wiring before returning. In kProcesses mode, metrics,
  /// sink counts, and content hashes measured in the children are merged
  /// into this process's objects before returning. With finish=false the
  /// workers skip Finish() so windowed state survives for a later
  /// segment (mid-run churn); only kThreads supports it — a forked child
  /// takes its operator state to the grave.
  Status Run(const std::vector<engine::Operator*>& entries,
             const std::vector<std::vector<engine::ItemPtr>>& item_lists,
             bool finish = true);

  const TransportRunStats& run_stats() const { return run_stats_; }

 private:
  Transport* transport_;
  RunnerOptions options_;
  TransportRunStats run_stats_;
};

}  // namespace streamshare::transport

#endif  // STREAMSHARE_TRANSPORT_RUNNER_H_
