// Compact binary codec for stream items. One XmlNode serializes as
//
//   tag | varint(text length) | text bytes, raw | varint(#children) | children…
//
// where `tag` is a varint: an even value (id+1)<<1 references a name the
// link has seen before (~1 byte for the repeated element names that
// dominate stream items), an odd value (len<<1)|1 announces a literal
// name of `len` bytes that follows — and registers it, on both ends, in
// the link's dictionary while there is room. Text travels raw (no XML
// entity escaping), which together with the dictionary is where the
// bytes-on-wire win over xml_writer text comes from.
//
// Encoder and decoder dictionaries stay in lockstep because registration
// is deterministic: first-literal-appearance order, capped at the same
// size on both sides. A link restart must Reset() both ends together —
// a one-sided reset shows up as a decode error, not silent corruption.
//
// PhotonRecords encode and decode without touching a DOM: EncodeRecord
// walks the schema tables and produces the byte-identical wire form of
// the record's materialized tree (same dictionary registrations, same
// bytes), and DecodeSlot recognizes photon-conforming frames directly
// into a record, falling back to the generic tree decode — with the
// dictionary rolled back first, so both paths register names
// identically — for everything else.

#ifndef STREAMSHARE_TRANSPORT_CODEC_H_
#define STREAMSHARE_TRANSPORT_CODEC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "engine/record.h"
#include "xml/xml_node.h"

namespace streamshare::transport {

/// Names a link remembers per direction; beyond this, names travel
/// literally every time. Both ends enforce the same cap.
inline constexpr size_t kMaxDictionaryNames = 4096;

/// Decoder safety rail against corrupted frames.
inline constexpr size_t kMaxDecodeDepth = 512;

/// Encodes items for one link. Not thread-safe; one encoder per channel,
/// driven by the sending worker's thread.
class ItemEncoder {
 public:
  /// Appends the encoding of `node` to *out. Reserves using
  /// XmlNode::SerializedSize() — the text form bounds the binary form.
  void Encode(const xml::XmlNode& node, std::string* out);

  /// Appends the encoding of `record` to *out: byte-identical to
  /// Encode() of the record's materialized tree, dictionary state
  /// included, without building the tree.
  void EncodeRecord(const engine::PhotonRecord& record, std::string* out);

  /// Drops the dictionary (link restart). The peer decoder must reset in
  /// the same place in the stream.
  void Reset();

  size_t dictionary_size() const { return ids_.size(); }

 private:
  struct NameHash {
    using is_transparent = void;
    size_t operator()(std::string_view name) const {
      return std::hash<std::string_view>{}(name);
    }
  };

  void EncodeName(std::string_view name, std::string* out);
  void EncodeNode(const xml::XmlNode& node, std::string* out);
  void EncodeRecordNode(const engine::PhotonRecord& record, int node,
                        std::string* out);

  std::unordered_map<std::string, uint64_t, NameHash, std::equal_to<>> ids_;
};

/// Decodes items from one link. Mirror-image dictionary of the peer's
/// ItemEncoder. Not thread-safe.
class ItemDecoder {
 public:
  /// Decodes one item occupying all of `data`. Fails on truncation,
  /// trailing bytes, unknown dictionary references (the symptom of a
  /// one-sided dictionary reset), or over-deep nesting.
  Status Decode(std::string_view data, std::unique_ptr<xml::XmlNode>* out);

  /// Decodes one item into a batch slot: frames whose tree conforms to
  /// the photon schema become records directly (no DOM); everything else
  /// takes the generic tree decode. Either way the dictionary ends up in
  /// the exact state Decode() would have left it in.
  Status DecodeSlot(std::string_view data, engine::ItemBatch::Slot* out);

  /// Drops the dictionary (link restart).
  void Reset();

  size_t dictionary_size() const { return names_.size(); }

 private:
  Status DecodeNode(std::string_view* data, size_t depth,
                    std::unique_ptr<xml::XmlNode>* out);
  bool DecodeNameView(std::string_view* data, std::string_view* name);
  bool DecodeRecordBody(std::string_view* data, int node,
                        engine::PhotonRecord* record);

  std::vector<std::string> names_;
};

}  // namespace streamshare::transport

#endif  // STREAMSHARE_TRANSPORT_CODEC_H_
