// Localhost TCP transport. Every pipe is one TCP connection on
// 127.0.0.1 (an ephemeral listener per pipe, closed after the
// connect/accept handshake), so the two ends survive fork() into
// different processes — this is what backs `streamshare_sim
// --transport=tcp` running each super-peer partition as its own OS
// process.

#ifndef STREAMSHARE_TRANSPORT_TCP_H_
#define STREAMSHARE_TRANSPORT_TCP_H_

#include "transport/transport.h"

namespace streamshare::transport {

class TcpTransport final : public Transport {
 public:
  const char* name() const override { return "tcp"; }
  Status CreatePipe(const std::string& label, PipePair* pair) override;
  bool SupportsProcesses() const override { return true; }
};

}  // namespace streamshare::transport

#endif  // STREAMSHARE_TRANSPORT_TCP_H_
