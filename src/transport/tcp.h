// Localhost TCP transport. Every pipe is one TCP connection on
// 127.0.0.1 (an ephemeral listener per pipe, closed after the
// connect/accept handshake), so the two ends survive fork() into
// different processes — this is what backs `streamshare_sim
// --transport=tcp` running each super-peer partition as its own OS
// process.

#ifndef STREAMSHARE_TRANSPORT_TCP_H_
#define STREAMSHARE_TRANSPORT_TCP_H_

#include "transport/transport.h"

namespace streamshare::transport {

struct TcpOptions {
  /// connect() attempts beyond the first before giving up. The
  /// listener exists before connect is issued, so on a healthy host the
  /// first attempt succeeds; retries absorb transient refusals under
  /// load (backlog overflow) instead of failing the whole run.
  int connect_retries = 2;
  /// Backoff added per retry: retry k sleeps k * this before connecting.
  int connect_backoff_ms = 20;
};

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(TcpOptions options = {}) : options_(options) {}

  const char* name() const override { return "tcp"; }
  Status CreatePipe(const std::string& label, PipePair* pair) override;
  bool SupportsProcesses() const override { return true; }

 private:
  TcpOptions options_;
};

}  // namespace streamshare::transport

#endif  // STREAMSHARE_TRANSPORT_TCP_H_
