#include "transport/loopback.h"

#include <chrono>
#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>

namespace streamshare::transport {

namespace {

/// State shared by the two ends. frames[i] holds frames destined for end
/// i. The deques are unbounded here because the flow-control layer above
/// bounds DATA frames in flight by the credit window. Loopback never
/// serializes frames, so the wire version rides in the queued entry.
struct LoopbackState {
  struct QueuedFrame {
    FrameType type;
    std::string body;
    uint8_t version;
  };
  std::mutex mu;
  std::condition_variable cv[2];
  std::deque<QueuedFrame> frames[2];
  bool end_closed[2] = {false, false};
};

class LoopbackEnd final : public PipeEnd {
 public:
  LoopbackEnd(std::shared_ptr<LoopbackState> state, int side)
      : state_(std::move(state)), side_(side) {}

  ~LoopbackEnd() override { Close(); }

  Status SendFrame(FrameType type, std::string_view body,
                   uint8_t version) override {
    int peer = 1 - side_;
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->end_closed[side_] || state_->end_closed[peer]) {
      return Status::Unavailable("loopback pipe closed");
    }
    state_->frames[peer].push_back(
        LoopbackState::QueuedFrame{type, std::string(body), version});
    state_->cv[peer].notify_one();
    return Status::Ok();
  }

  Status RecvFrame(FrameType* type, std::string* body, int timeout_ms,
                   uint8_t* version) override {
    std::unique_lock<std::mutex> lock(state_->mu);
    auto ready = [this] {
      return !state_->frames[side_].empty() ||
             state_->end_closed[side_] || state_->end_closed[1 - side_];
    };
    if (timeout_ms < 0) {
      state_->cv[side_].wait(lock, ready);
    } else if (!state_->cv[side_].wait_for(
                   lock, std::chrono::milliseconds(timeout_ms), ready)) {
      return Status::DeadlineExceeded("loopback recv timed out");
    }
    if (state_->frames[side_].empty()) {
      return Status::Unavailable("loopback pipe closed");
    }
    auto& front = state_->frames[side_].front();
    *type = front.type;
    *body = std::move(front.body);
    if (version != nullptr) *version = front.version;
    state_->frames[side_].pop_front();
    return Status::Ok();
  }

  void Close() override {
    std::lock_guard<std::mutex> lock(state_->mu);
    state_->end_closed[side_] = true;
    state_->cv[0].notify_all();
    state_->cv[1].notify_all();
  }

  /// Zero-copy handoff: nothing crosses a wire.
  uint64_t wire_bytes_sent() const override { return 0; }

 private:
  std::shared_ptr<LoopbackState> state_;
  int side_;
};

}  // namespace

Status LoopbackTransport::CreatePipe(const std::string& label,
                                     PipePair* pair) {
  (void)label;
  auto state = std::make_shared<LoopbackState>();
  pair->ends[0] = std::make_unique<LoopbackEnd>(state, 0);
  pair->ends[1] = std::make_unique<LoopbackEnd>(state, 1);
  return Status::Ok();
}

}  // namespace streamshare::transport
