// In-process transport: frames are handed between ends as moved strings
// under a mutex — no serialization to a wire, no byte copies beyond the
// frame body itself. The default transport; also what lets the whole
// flow-control protocol run under TSAN in one process.

#ifndef STREAMSHARE_TRANSPORT_LOOPBACK_H_
#define STREAMSHARE_TRANSPORT_LOOPBACK_H_

#include "transport/transport.h"

namespace streamshare::transport {

class LoopbackTransport final : public Transport {
 public:
  const char* name() const override { return "loopback"; }
  Status CreatePipe(const std::string& label, PipePair* pair) override;
  bool SupportsProcesses() const override { return false; }
};

}  // namespace streamshare::transport

#endif  // STREAMSHARE_TRANSPORT_LOOPBACK_H_
