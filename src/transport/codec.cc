#include "transport/codec.h"

#include <algorithm>

#include "common/decimal.h"
#include "common/string_util.h"
#include "transport/wire.h"

namespace streamshare::transport {

using engine::PhotonRecord;
using engine::PhotonSchema;

void ItemEncoder::Encode(const xml::XmlNode& node, std::string* out) {
  out->reserve(out->size() + node.SerializedSize());
  EncodeNode(node, out);
}

void ItemEncoder::EncodeName(std::string_view name, std::string* out) {
  auto it = ids_.find(name);
  if (it != ids_.end()) {
    PutVarint(out, (it->second + 1) << 1);
  } else {
    PutVarint(out, (static_cast<uint64_t>(name.size()) << 1) | 1);
    out->append(name);
    if (ids_.size() < kMaxDictionaryNames) {
      ids_.emplace(std::string(name), ids_.size());
    }
  }
}

void ItemEncoder::EncodeNode(const xml::XmlNode& node, std::string* out) {
  EncodeName(node.name(), out);
  PutVarint(out, node.text().size());
  out->append(node.text());
  PutVarint(out, node.children().size());
  for (const auto& child : node.children()) {
    EncodeNode(*child, out);
  }
}

void ItemEncoder::EncodeRecord(const PhotonRecord& record, std::string* out) {
  out->reserve(out->size() + record.SerializedSize());
  EncodeRecordNode(record, PhotonSchema::kPhoton, out);
}

void ItemEncoder::EncodeRecordNode(const PhotonRecord& record, int node,
                                   std::string* out) {
  EncodeName(PhotonSchema::Name(node), out);
  int field = PhotonSchema::FieldOf(node);
  std::string_view text =
      field >= 0 ? record.text(field) : std::string_view();
  PutVarint(out, text.size());
  out->append(text);
  uint64_t child_count = 0;
  for (int child : PhotonSchema::Children(node)) {
    if (record.has_node(child)) ++child_count;
  }
  PutVarint(out, child_count);
  for (int child : PhotonSchema::Children(node)) {
    if (record.has_node(child)) EncodeRecordNode(record, child, out);
  }
}

void ItemEncoder::Reset() { ids_.clear(); }

Status ItemDecoder::Decode(std::string_view data,
                           std::unique_ptr<xml::XmlNode>* out) {
  SS_RETURN_IF_ERROR(DecodeNode(&data, 0, out));
  if (!data.empty()) {
    return Status::ParseError("item decode: trailing bytes after tree");
  }
  return Status::Ok();
}

Status ItemDecoder::DecodeNode(std::string_view* data, size_t depth,
                               std::unique_ptr<xml::XmlNode>* out) {
  if (depth > kMaxDecodeDepth) {
    return Status::ParseError("item decode: nesting too deep");
  }
  uint64_t tag = 0;
  if (!GetVarint(data, &tag) || tag == 0) {
    return Status::ParseError("item decode: bad tag varint");
  }
  std::string name;
  if (tag & 1) {
    uint64_t len = tag >> 1;
    if (len == 0 || len > data->size()) {
      return Status::ParseError("item decode: bad literal name length");
    }
    name.assign(data->substr(0, len));
    data->remove_prefix(len);
    if (names_.size() < kMaxDictionaryNames) names_.push_back(name);
  } else {
    uint64_t id = (tag >> 1) - 1;
    if (id >= names_.size()) {
      return Status::ParseError(
          "item decode: unknown dictionary reference (dictionaries out of "
          "sync — one-sided link reset?)");
    }
    name = names_[id];
  }
  auto node = std::make_unique<xml::XmlNode>(std::move(name));
  uint64_t text_len = 0;
  if (!GetVarint(data, &text_len) || text_len > data->size()) {
    return Status::ParseError("item decode: bad text length");
  }
  if (text_len > 0) {
    node->set_text(std::string(data->substr(0, text_len)));
    data->remove_prefix(text_len);
  }
  uint64_t child_count = 0;
  if (!GetVarint(data, &child_count) || child_count > data->size()) {
    // Every child costs at least one byte, so a count beyond the
    // remaining bytes is corruption — reject before looping on it.
    return Status::ParseError("item decode: bad child count");
  }
  // A child is at least 3 bytes (tag, text length, child count), which
  // bounds how much reserving up front can over-allocate on a frame that
  // lies about its count.
  node->ReserveChildren(
      std::min<uint64_t>(child_count, data->size() / 3 + 1));
  for (uint64_t i = 0; i < child_count; ++i) {
    std::unique_ptr<xml::XmlNode> child;
    SS_RETURN_IF_ERROR(DecodeNode(data, depth + 1, &child));
    node->AddChild(std::move(child));
  }
  *out = std::move(node);
  return Status::Ok();
}

bool ItemDecoder::DecodeNameView(std::string_view* data,
                                 std::string_view* name) {
  uint64_t tag = 0;
  if (!GetVarint(data, &tag) || tag == 0) return false;
  if (tag & 1) {
    uint64_t len = tag >> 1;
    if (len == 0 || len > data->size()) return false;
    std::string_view literal = data->substr(0, len);
    data->remove_prefix(len);
    if (names_.size() < kMaxDictionaryNames) names_.emplace_back(literal);
    // The view aliases the frame buffer, which outlives the decode.
    *name = literal;
    return true;
  }
  uint64_t id = (tag >> 1) - 1;
  if (id >= names_.size()) return false;
  // Aliases the dictionary entry: valid only until the next literal
  // registration, so callers must consume it before decoding further.
  *name = names_[id];
  return true;
}

bool ItemDecoder::DecodeRecordBody(std::string_view* data, int node,
                                   PhotonRecord* record) {
  uint64_t text_len = 0;
  if (!GetVarint(data, &text_len) || text_len > data->size()) return false;
  int field = PhotonSchema::FieldOf(node);
  if (field >= 0) {
    if (text_len > PhotonRecord::kMaxFieldText) return false;
    std::string_view text = data->substr(0, text_len);
    data->remove_prefix(text_len);
    Result<Decimal> value = Decimal::Parse(Trim(text));
    if (!value.ok()) return false;
    uint64_t child_count = 0;
    if (!GetVarint(data, &child_count) || child_count != 0) return false;
    record->SetField(field, text, *value);
    return true;
  }
  if (text_len != 0) return false;
  record->MarkNode(node);
  uint64_t child_count = 0;
  if (!GetVarint(data, &child_count) || child_count > data->size()) {
    return false;
  }
  // Same subsequence-in-document-order rule as PhotonRecord::FromXml.
  std::span<const int> schema_children = PhotonSchema::Children(node);
  size_t k = 0;
  for (uint64_t i = 0; i < child_count; ++i) {
    std::string_view name;
    if (!DecodeNameView(data, &name)) return false;
    while (k < schema_children.size() &&
           PhotonSchema::Name(schema_children[k]) != name) {
      ++k;
    }
    if (k == schema_children.size()) return false;
    if (!DecodeRecordBody(data, schema_children[k], record)) return false;
    ++k;
  }
  return true;
}

Status ItemDecoder::DecodeSlot(std::string_view data,
                               engine::ItemBatch::Slot* out) {
  const size_t dict_before = names_.size();
  std::string_view cursor = data;
  std::string_view root;
  out->record = PhotonRecord();  // decode in place, no copy on success
  if (DecodeNameView(&cursor, &root) &&
      root == PhotonSchema::Name(PhotonSchema::kPhoton) &&
      DecodeRecordBody(&cursor, PhotonSchema::kPhoton, &out->record) &&
      cursor.empty()) {
    out->item = nullptr;
    out->is_record = true;
    return Status::Ok();
  }
  // Non-conforming or corrupt: roll the dictionary back to the frame
  // start and take the generic path, which registers names identically
  // and raises the exact tree-decode error on corruption.
  names_.resize(dict_before);
  std::unique_ptr<xml::XmlNode> node;
  SS_RETURN_IF_ERROR(Decode(data, &node));
  out->item = engine::MakeItem(std::move(node));
  out->is_record = false;
  return Status::Ok();
}

void ItemDecoder::Reset() { names_.clear(); }

}  // namespace streamshare::transport
