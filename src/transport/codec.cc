#include "transport/codec.h"

#include "transport/wire.h"

namespace streamshare::transport {

void ItemEncoder::Encode(const xml::XmlNode& node, std::string* out) {
  out->reserve(out->size() + node.SerializedSize());
  EncodeNode(node, out);
}

void ItemEncoder::EncodeNode(const xml::XmlNode& node, std::string* out) {
  auto it = ids_.find(node.name());
  if (it != ids_.end()) {
    PutVarint(out, (it->second + 1) << 1);
  } else {
    PutVarint(out, (static_cast<uint64_t>(node.name().size()) << 1) | 1);
    out->append(node.name());
    if (ids_.size() < kMaxDictionaryNames) {
      ids_.emplace(node.name(), ids_.size());
    }
  }
  PutVarint(out, node.text().size());
  out->append(node.text());
  PutVarint(out, node.children().size());
  for (const auto& child : node.children()) {
    EncodeNode(*child, out);
  }
}

void ItemEncoder::Reset() { ids_.clear(); }

Status ItemDecoder::Decode(std::string_view data,
                           std::unique_ptr<xml::XmlNode>* out) {
  SS_RETURN_IF_ERROR(DecodeNode(&data, 0, out));
  if (!data.empty()) {
    return Status::ParseError("item decode: trailing bytes after tree");
  }
  return Status::Ok();
}

Status ItemDecoder::DecodeNode(std::string_view* data, size_t depth,
                               std::unique_ptr<xml::XmlNode>* out) {
  if (depth > kMaxDecodeDepth) {
    return Status::ParseError("item decode: nesting too deep");
  }
  uint64_t tag = 0;
  if (!GetVarint(data, &tag) || tag == 0) {
    return Status::ParseError("item decode: bad tag varint");
  }
  std::string name;
  if (tag & 1) {
    uint64_t len = tag >> 1;
    if (len == 0 || len > data->size()) {
      return Status::ParseError("item decode: bad literal name length");
    }
    name.assign(data->substr(0, len));
    data->remove_prefix(len);
    if (names_.size() < kMaxDictionaryNames) names_.push_back(name);
  } else {
    uint64_t id = (tag >> 1) - 1;
    if (id >= names_.size()) {
      return Status::ParseError(
          "item decode: unknown dictionary reference (dictionaries out of "
          "sync — one-sided link reset?)");
    }
    name = names_[id];
  }
  auto node = std::make_unique<xml::XmlNode>(std::move(name));
  uint64_t text_len = 0;
  if (!GetVarint(data, &text_len) || text_len > data->size()) {
    return Status::ParseError("item decode: bad text length");
  }
  if (text_len > 0) {
    node->set_text(std::string(data->substr(0, text_len)));
    data->remove_prefix(text_len);
  }
  uint64_t child_count = 0;
  if (!GetVarint(data, &child_count) || child_count > data->size()) {
    // Every child costs at least one byte, so a count beyond the
    // remaining bytes is corruption — reject before looping on it.
    return Status::ParseError("item decode: bad child count");
  }
  for (uint64_t i = 0; i < child_count; ++i) {
    std::unique_ptr<xml::XmlNode> child;
    SS_RETURN_IF_ERROR(DecodeNode(data, depth + 1, &child));
    node->AddChild(std::move(child));
  }
  *out = std::move(node);
  return Status::Ok();
}

void ItemDecoder::Reset() { names_.clear(); }

}  // namespace streamshare::transport
