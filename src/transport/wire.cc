#include "transport/wire.h"

namespace streamshare::transport {

void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

bool GetVarint(const uint8_t** pos, const uint8_t* end, uint64_t* value) {
  uint64_t result = 0;
  int shift = 0;
  const uint8_t* p = *pos;
  while (p < end && shift < 64) {
    uint8_t byte = *p++;
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *pos = p;
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;  // truncated, or continuation bits past 64 bits
}

bool GetVarint(std::string_view* data, uint64_t* value) {
  const uint8_t* pos = reinterpret_cast<const uint8_t*>(data->data());
  const uint8_t* end = pos + data->size();
  if (!GetVarint(&pos, end, value)) return false;
  data->remove_prefix(
      static_cast<size_t>(pos -
                          reinterpret_cast<const uint8_t*>(data->data())));
  return true;
}

void AppendFrame(std::string* out, FrameType type, std::string_view body,
                 uint8_t version) {
  PutVarint(out, body.size() + 2);  // version + type
  out->push_back(static_cast<char>(version));
  out->push_back(static_cast<char>(type));
  out->append(body);
}

ParseResult ParseFrame(std::string_view buffer, Frame* frame,
                       size_t* consumed) {
  std::string_view rest = buffer;
  uint64_t length = 0;
  if (!GetVarint(&rest, &length)) {
    // A varint never needs more than 10 bytes; more without termination
    // means garbage, not a short read.
    return buffer.size() >= 10 ? ParseResult::kMalformed
                               : ParseResult::kNeedMore;
  }
  if (length < 2 || length > kMaxFramePayload + 2) {
    return ParseResult::kMalformed;
  }
  if (rest.size() < length) return ParseResult::kNeedMore;
  uint8_t version = static_cast<uint8_t>(rest[0]);
  uint8_t type = static_cast<uint8_t>(rest[1]);
  frame->raw_type = type;
  frame->version = version;
  frame->body = rest.substr(2, length - 2);
  *consumed = (buffer.size() - rest.size()) + length;
  // The length prefix framed this correctly, so an unknown version or
  // type is a vocabulary mismatch, not corruption: report it skippable
  // and let the receiver answer with a decodable error.
  if (version < kBaseWireVersion || version > kWireVersion ||
      type < static_cast<uint8_t>(FrameType::kData) ||
      type > kMaxKnownFrameType) {
    return ParseResult::kUnsupported;
  }
  frame->type = static_cast<FrameType>(type);
  return ParseResult::kFrame;
}

}  // namespace streamshare::transport
