#include "transport/flow.h"

#include <chrono>
#include <thread>

namespace streamshare::transport {

namespace {

using Clock = std::chrono::steady_clock;

uint64_t ElapsedNs(Clock::time_point since) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                           since)
          .count());
}

}  // namespace

ChannelSender::ChannelSender(std::string label,
                             std::unique_ptr<PipeEnd> end,
                             FlowOptions options, FaultPlan faults)
    : label_(std::move(label)),
      end_(std::move(end)),
      options_(options),
      faults_(faults),
      credits_(options.initial_credits == 0 ? 1
                                            : options.initial_credits) {}

Status ChannelSender::AwaitCredit() {
  if (credits_ > 0) return Status::Ok();
  ++stats_.credit_stalls;
  Clock::time_point stall_start = Clock::now();
  for (int attempt = 0; attempt <= options_.max_retries; ++attempt) {
    int timeout_ms =
        options_.send_timeout_ms + attempt * options_.retry_backoff_ms;
    FrameType type;
    std::string body;
    Status status = end_->RecvFrame(&type, &body, timeout_ms);
    if (status.IsDeadlineExceeded()) {
      ++stats_.retries;
      continue;
    }
    if (!status.ok()) {
      stats_.credit_stall_ns += ElapsedNs(stall_start);
      return status.WithContext("channel " + label_);
    }
    if (type != FrameType::kCredit) {
      stats_.credit_stall_ns += ElapsedNs(stall_start);
      return Status::Internal("channel " + label_ +
                              ": non-CREDIT frame on the reverse path");
    }
    std::string_view view = body;
    uint64_t amount = 0;
    if (!GetVarint(&view, &amount) || amount == 0) {
      stats_.credit_stall_ns += ElapsedNs(stall_start);
      return Status::ParseError("channel " + label_ +
                                ": malformed CREDIT frame");
    }
    credits_ += amount;
    stats_.credit_stall_ns += ElapsedNs(stall_start);
    return Status::Ok();
  }
  stats_.credit_stall_ns += ElapsedNs(stall_start);
  ++stats_.deadline_failures;
  return Status::DeadlineExceeded(
      "channel " + label_ + ": no credit after " +
      std::to_string(options_.max_retries + 1) + " waits of " +
      std::to_string(options_.send_timeout_ms) +
      "ms+ — receiver stalled or gone");
}

Status ChannelSender::SendItem(uint64_t target,
                               std::string_view encoded_item,
                               const engine::latency::ItemStamp& stamp) {
  SS_RETURN_IF_ERROR(AwaitCredit());
  --credits_;
  uint64_t seq = next_seq_++;

  // Fault injection (DATA frames only); periods count from frame 1.
  if (faults_.drop_period != 0 && (seq + 1) % faults_.drop_period == 0) {
    ++stats_.faults_dropped;  // seq advanced: the receiver sees a gap
    return Status::Ok();
  }
  if (faults_.delay_period != 0 && (seq + 1) % faults_.delay_period == 0) {
    ++stats_.faults_delayed;
    std::this_thread::sleep_for(
        std::chrono::milliseconds(faults_.delay_ms));
  }

  uint8_t version = kBaseWireVersion;
  std::string body;
  body.reserve(encoded_item.size() + 48);
  PutVarint(&body, seq);
  PutVarint(&body, target);
  if (stamp.stamped() && engine::latency::Enabled()) {
    // The v2 stamp extension, stateless per frame: the ingress tick is
    // delta-encoded against this frame's own send tick (small varint),
    // so an injected duplicate or drop cannot desynchronize decoding.
    version = kWireVersion;
    uint64_t send_tick = engine::latency::NowUs();
    uint64_t ingress_delta =
        send_tick > stamp.ingress_us ? send_tick - stamp.ingress_us : 0;
    PutVarint(&body, 1);  // flags, bit 0 = stamped
    PutVarint(&body, send_tick);
    PutVarint(&body, ingress_delta);
    PutVarint(&body, stamp.queue_us);
    PutVarint(&body, stamp.transport_us);
  }
  body.append(encoded_item);
  Status status = end_->SendFrame(FrameType::kData, body, version);
  if (!status.ok()) return status.WithContext("channel " + label_);
  ++stats_.frames_sent;
  if (faults_.duplicate_period != 0 &&
      (seq + 1) % faults_.duplicate_period == 0) {
    ++stats_.faults_duplicated;
    status = end_->SendFrame(FrameType::kData, body, version);
    if (!status.ok()) return status.WithContext("channel " + label_);
    ++stats_.frames_sent;
  }
  stats_.bytes_sent = end_->wire_bytes_sent();
  return Status::Ok();
}

Status ChannelSender::SendEos() {
  std::string body;
  PutVarint(&body, next_seq_);
  Status status = end_->SendFrame(FrameType::kEos, body);
  stats_.bytes_sent = end_->wire_bytes_sent();
  if (!status.ok()) return status.WithContext("channel " + label_);
  return Status::Ok();
}

Status ChannelSender::SendError(std::string_view message) {
  Status status = end_->SendFrame(FrameType::kError, message);
  stats_.bytes_sent = end_->wire_bytes_sent();
  if (!status.ok()) return status.WithContext("channel " + label_);
  return Status::Ok();
}

void ChannelSender::DrainUntilPeerClose() {
  Clock::time_point deadline =
      Clock::now() + std::chrono::milliseconds(options_.send_timeout_ms);
  while (true) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) return;
    FrameType type;
    std::string body;
    Status status =
        end_->RecvFrame(&type, &body, static_cast<int>(left.count()));
    if (!status.ok()) return;  // peer closed (the goal) or timed out
  }
}

ChannelReceiver::ChannelReceiver(std::string label,
                                 std::unique_ptr<PipeEnd> end,
                                 FlowOptions options, FaultPlan faults)
    : label_(std::move(label)),
      end_(std::move(end)),
      options_(options),
      faults_(faults) {}

Status ChannelReceiver::Recv(Incoming* out) {
  while (true) {
    FrameType type;
    std::string body;
    uint8_t version = kBaseWireVersion;
    Status status =
        end_->RecvFrame(&type, &body, /*timeout_ms=*/-1, &version);
    if (!status.ok()) return status.WithContext("channel " + label_);
    std::string_view view = body;
    switch (type) {
      case FrameType::kData: {
        uint64_t seq = 0, target = 0;
        if (!GetVarint(&view, &seq) || !GetVarint(&view, &target)) {
          return Status::ParseError("channel " + label_ +
                                    ": malformed DATA frame");
        }
        if (seq < expected_seq_) {  // retransmit or injected duplicate
          ++stats_.duplicates_discarded;
          continue;
        }
        if (seq > expected_seq_) {
          return Status::Unavailable(
              "channel " + label_ + ": frame loss detected (expected seq " +
              std::to_string(expected_seq_) + ", got " +
              std::to_string(seq) + ")");
        }
        out->stamp = engine::latency::ItemStamp{};
        if (version >= kWireVersion) {
          uint64_t flags = 0, send_tick = 0, ingress_delta = 0;
          uint64_t queue_us = 0, transport_us = 0;
          if (!GetVarint(&view, &flags) || !GetVarint(&view, &send_tick) ||
              !GetVarint(&view, &ingress_delta) ||
              !GetVarint(&view, &queue_us) ||
              !GetVarint(&view, &transport_us)) {
            return Status::ParseError("channel " + label_ +
                                      ": malformed DATA stamp extension");
          }
          if ((flags & 1) != 0) {
            uint64_t now = engine::latency::NowUs();
            out->stamp.ingress_us =
                send_tick > ingress_delta ? send_tick - ingress_delta : 1;
            out->stamp.queue_us = queue_us;
            // This hop's wire time; the steady clock is system-wide, so
            // the send tick of a fork-per-worker peer compares directly.
            out->stamp.transport_us =
                transport_us + (now > send_tick ? now - send_tick : 0);
          }
        }
        ++expected_seq_;
        ++stats_.items_delivered;
        out->type = FrameType::kData;
        out->target = target;
        out->item_bytes.assign(view);
        return Status::Ok();
      }
      case FrameType::kEos: {
        uint64_t total = 0;
        if (!GetVarint(&view, &total)) {
          return Status::ParseError("channel " + label_ +
                                    ": malformed EOS frame");
        }
        if (total != expected_seq_) {
          return Status::Unavailable(
              "channel " + label_ + ": frame loss detected (" +
              std::to_string(expected_seq_) + " of " +
              std::to_string(total) + " DATA frames arrived)");
        }
        out->type = FrameType::kEos;
        return Status::Ok();
      }
      case FrameType::kError: {
        out->type = FrameType::kError;
        out->error.assign(body);
        return Status::Ok();
      }
      case FrameType::kCredit:
        return Status::Internal("channel " + label_ +
                                ": CREDIT frame on the forward path");
      case FrameType::kControl:
      case FrameType::kControlAck:
      case FrameType::kResult:
        // Serve-plane frames never flow on a data channel.
        return Status::Internal("channel " + label_ +
                                ": serve-plane frame on a data channel");
    }
  }
}

void ChannelReceiver::GrantCredit(uint64_t count) {
  ++credit_frames_;
  if (faults_.credit_drop_period != 0 &&
      credit_frames_ % faults_.credit_drop_period == 0) {
    // Swallow the grant: the sender must survive via timeout/retry and,
    // when no later grant arrives, fail with DeadlineExceeded — not hang.
    ++stats_.faults_credits_dropped;
    return;
  }
  std::string body;
  PutVarint(&body, count);
  // A failed grant means the sender is gone; it has its own error path.
  end_->SendFrame(FrameType::kCredit, body).ok();
}

}  // namespace streamshare::transport
